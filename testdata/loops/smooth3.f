c Three-point smoothing with store-to-load feedback.
      subroutine smooth3(n, a, b)
      real a(1002), b(1002)
      integer n, i
      do i = 2, n
        b(i) = 0.25*b(i-1) + 0.5*a(i) + 0.25*a(i+1)
      end do
      end
