c Indirect gather with scaling: conservative memory dependences.
      subroutine gatherscale(n, q, ind, a, b)
      integer n, i, ind(1001)
      real a(1001), b(1001), q
      do i = 1, n
        b(i) = q*a(ind(i))
      end do
      end
