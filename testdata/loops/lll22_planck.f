c Livermore kernel 22: Planckian distribution (exp replaced by a
c sqrt-based surrogate with the same operation mix: divide-heavy).
      subroutine lll22(n, u, v, w, x, y)
      real u(1001), v(1001), w(1001), x(1001), y(1001)
      integer n, k
      do k = 1, n
        y(k) = u(k)/v(k)
        w(k) = x(k)/(sqrt(y(k)) + 1.0)
      end do
      end
