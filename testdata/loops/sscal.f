c BLAS sscal: x = a*x.
      subroutine sscal(n, a, x)
      real x(1024), a
      integer n, i
      do i = 1, n
        x(i) = a*x(i)
      end do
      end
