c Livermore kernel 10 (flattened): difference predictors over split
c predictor arrays.
      subroutine lll10(n, cx, px1, px2, px3, px4, px5)
      real cx(1024), px1(1024), px2(1024), px3(1024)
      real px4(1024), px5(1024)
      integer n, i
      real ar, br, cr
      do i = 1, n
        ar = cx(i)
        br = ar - px1(i)
        px1(i) = ar
        cr = br - px2(i)
        px2(i) = br
        px3(i) = cr - px3(i)
        px4(i) = px3(i) + px4(i)
        px5(i) = px4(i) - px5(i)
      end do
      end
