c Second-order linear recurrence (two-deep loop carry).
      subroutine wavefront(n, a, b, x)
      real x(1002), a(1002), b(1002)
      integer n, i
      do i = 3, n
        x(i) = a(i)*x(i-1) + b(i)*x(i-2)
      end do
      end
