c Livermore kernel 11: first sum (prefix sum recurrence).
      subroutine lll11(n, x, y)
      real x(1001), y(1001)
      integer n, k
      do k = 2, n
        x(k) = x(k-1) + y(k)
      end do
      end
