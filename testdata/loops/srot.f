c BLAS srot: apply a plane rotation to two vectors.
      subroutine srot(n, cc, ss, x, y)
      real x(1024), y(1024), cc, ss
      integer n, i
      real t0
      do i = 1, n
        t0 = cc*x(i) + ss*y(i)
        y(i) = cc*y(i) - ss*x(i)
        x(i) = t0
      end do
      end
