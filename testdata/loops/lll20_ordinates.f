c Livermore kernel 20: discrete ordinates transport (divide in a
c recurrence).
      subroutine lll20(n, s, t, u, v, w, x, y, z, g, xx)
      real u(1001), v(1001), w(1001), x(1001), y(1001), z(1001)
      real g(1001), xx(1002), s, t
      integer n, k
      real di, dn
      do k = 1, n
        di = y(k) - g(k)/(xx(k) + w(k))
        dn = 0.2
        if (di .gt. 0.01) then
          dn = z(k)/di
          dn = amin1(dn, 0.2)
          dn = amax1(dn, s)
        end if
        x(k) = ((w(k) + v(k)*dn)*xx(k) + u(k))/(v(k) + t*dn)
        xx(k+1) = (x(k) - xx(k))*dn + xx(k)
      end do
      end
