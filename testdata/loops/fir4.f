c 4-tap FIR filter: load-load forwarding across three taps.
      subroutine fir4(n, c0, c1, c2, c3, x, y)
      real x(1004), y(1001), c0, c1, c2, c3
      integer n, i
      do i = 1, n
        y(i) = c0*x(i) + c1*x(i+1) + c2*x(i+2) + c3*x(i+3)
      end do
      end
