c Exponential-decay state update stored per sample.
      subroutine expdecay(n, alpha, s, x, y)
      real x(1001), y(1001), alpha, s
      integer n, i
      do i = 1, n
        s = alpha*s + (1.0 - alpha)*x(i)
        y(i) = s
      end do
      end
