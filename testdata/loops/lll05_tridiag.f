c Livermore kernel 5: tri-diagonal elimination, below diagonal.
      subroutine lll05(n, x, y, z)
      real x(1001), y(1001), z(1001)
      integer n, i
      do i = 2, n
        x(i) = z(i)*(y(i) - x(i-1))
      end do
      end
