c Complex vector multiply (split arrays).
      subroutine cmplxmul(n, ar, ai, br, bi, cr, ci)
      real ar(1001), ai(1001), br(1001), bi(1001)
      real cr(1001), ci(1001)
      integer n, i
      do i = 1, n
        cr(i) = ar(i)*br(i) - ai(i)*bi(i)
        ci(i) = ar(i)*bi(i) + ai(i)*br(i)
      end do
      end
