c Red-black-free 1-D relaxation sweep with conditional damping.
      subroutine relax(n, omega, thresh, u, f)
      real u(1026), f(1026), omega, thresh
      integer n, i
      real r0
      do i = 2, n
        r0 = f(i) - 2.0*u(i) + u(i-1) + u(i+1)
        if (abs(r0) .gt. thresh) then
          u(i) = u(i) + omega*r0
        end if
      end do
      end
