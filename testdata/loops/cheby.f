c Chebyshev-style three-term recurrence stored per step.
      subroutine cheby(n, t2, s0, s1, w)
      real w(1024), t2, s0, s1
      integer n, i
      real snew
      do i = 1, n
        snew = t2*s1 - s0
        s0 = s1
        s1 = snew
        w(i) = snew
      end do
      end
