c Sum of absolute values with a conditional accumulator pair.
      subroutine sumabs(n, sp, sn, x)
      real x(1001), sp, sn
      integer n, i
      do i = 1, n
        if (x(i) .ge. 0.0) then
          sp = sp + x(i)
        else
          sn = sn - x(i)
        end if
      end do
      end
