c Livermore kernel 2 (fragment): ICCG excerpt with stride-2 access,
c expressed over the flattened vector.
      subroutine lll02(ipntp, ipnt, ii2, x, v)
      real x(2048), v(2048)
      integer ipntp, ipnt, ii2, i, k
      do i = ipnt+2, ipntp, 2
        k = i - ipnt
        x(ipntp+k/2) = x(i) - v(i)*x(i-1) - v(i+1)*x(i+1)
      end do
      end
