c Horner evaluation as a scalar multiply-add recurrence.
      subroutine horner(n, t, s, c)
      real c(1001), t, s
      integer n, i
      do i = 1, n
        s = s*t + c(i)
      end do
      end
