// Quickstart: compile the paper's running example (Figure 1), modulo
// schedule it with the lifetime-sensitive bidirectional slack scheduler,
// and print everything the compiler knows about it — bounds, schedule,
// register pressure against the MinAvg bound, and the generated
// rotating-register kernel.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/frontend"
	"repro/internal/ir"
	"repro/internal/machine"
)

const src = `
      subroutine sample(n, x, y)
      real x(200), y(200)
      integer n, i
      do i = 3, n
        x(i) = x(i-1) + y(i-2)
        y(i) = y(i-1) + x(i-2)
      end do
      end
`

func main() {
	m := machine.Cydra()
	_, loops, err := frontend.Compile(src, m)
	if err != nil {
		log.Fatal(err)
	}
	cl := loops[0]
	if cl.Ineligible != nil {
		log.Fatalf("loop not eligible: %v", cl.Ineligible)
	}

	fmt.Println("— loop IR after if-conversion, load/store elimination, SSA —")
	fmt.Print(cl.Loop.String())

	c, err := core.Compile(cl.Loop, core.Options{Scheduler: core.SchedSlack})
	if err != nil {
		log.Fatal(err)
	}
	b := c.Result.Bounds
	fmt.Printf("\nlower bounds: ResMII=%d RecMII=%d → MII=%d\n", b.ResMII, b.RecMII, b.MII)
	fmt.Printf("achieved II=%d (the paper schedules this loop at II=2)\n\n", c.Result.Schedule.II)

	fmt.Println("— modulo schedule —")
	fmt.Print(c.Result.Schedule.String())

	fmt.Printf("\nregister pressure: MaxLive=%d, schedule-independent bound MinAvg=%d\n",
		c.RR.MaxLive, c.MinAvg)
	fmt.Printf("loop invariants (GPR file): %d, ICR predicates: %d\n\n", c.GPRs, c.ICR)

	fmt.Println("— kernel-only VLIW code (rotating register specifiers) —")
	fmt.Print(c.Kernel.String())

	// Execute it: build a concrete environment and check the generated
	// kernel against the sequential interpreter.
	env, _, trips, err := cl.BuildEnv(frontend.Binding{
		Ints: map[string]int64{"n": 40},
		Fill: func(array string, idx int) ir.Scalar {
			return ir.FloatS(float64(idx) * 0.5)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := core.VerifyExecution(c, env, trips); err != nil {
		log.Fatalf("differential check failed: %v", err)
	}
	fmt.Printf("\ndifferential check: VLIW simulation of %d iterations matches the interpreter ✓\n", trips)
}
