// Pipeline-sim: execute a generated kernel on the cycle-accurate VLIW
// simulator and watch the software pipeline fill, run at steady state,
// and drain. The example compiles a daxpy loop, prints the kernel, runs
// it for a handful of iterations, verifies the rotating-register
// allocation by brute force, and checks the results against the
// sequential interpreter.
//
// Run with:
//
//	go run ./examples/pipeline-sim
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/frontend"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lifetime"
	"repro/internal/machine"
	"repro/internal/regalloc"
	"repro/internal/semantics"
	"repro/internal/vliw"
)

const src = `
      subroutine daxpy(n, a, x, y)
      real x(100), y(100), a
      integer n, i
      do i = 1, n
        y(i) = y(i) + a*x(i)
      end do
      end
`

func main() {
	m := coreMachine()
	_, loops, err := frontend.Compile(src, m)
	if err != nil {
		log.Fatal(err)
	}
	cl := loops[0]
	c, err := core.Compile(cl.Loop, core.Options{})
	if err != nil || !c.OK() {
		log.Fatal("compilation failed")
	}
	k := c.Kernel
	fmt.Printf("daxpy kernel: II=%d, %d stages → pipeline ramps over %d passes\n",
		k.II, k.Stages, k.Stages-1)
	fmt.Print(k.String())

	// Verify the rotating allocation independently (brute force over
	// every iteration alignment).
	ranges := lifetime.Ranges(cl.Loop, c.Result.Schedule, ir.RR)
	if err := regalloc.Verify(ranges, k.II, k.RR); err != nil {
		log.Fatalf("allocation unsound: %v", err)
	}
	fmt.Printf("\nrotating allocation verified: %d RR registers for %d values (MaxLive %d)\n",
		k.NRR, len(ranges), c.RR.MaxLive)

	// Run it.
	const trips = 12
	env, _, _, err := cl.BuildEnv(frontend.Binding{
		Ints:  map[string]int64{"n": trips},
		Reals: map[string]float64{"a": 2.0},
		Fill: func(array string, idx int) ir.Scalar {
			if array == "x" {
				return ir.FloatS(float64(idx))
			}
			return ir.FloatS(100 + float64(idx))
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	want, err := interp.Run(cl.Loop, env, trips)
	if err != nil {
		log.Fatal(err)
	}
	got, err := vliw.Run(k, env, trips, vliw.Config{Paranoid: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated %d iterations over %d kernel passes (%d cycles)\n",
		trips, trips+k.Stages-1, (trips+k.Stages-1)*k.II)
	fmt.Printf("operations executed: interpreter %d, VLIW %d\n", want.Executed, got.Executed)

	mismatches := 0
	for i := range want.Mem {
		if !semantics.Equal(want.Mem[i], got.Mem[i]) {
			mismatches++
		}
	}
	fmt.Printf("memory mismatches: %d\n", mismatches)
	fmt.Println("\ny after the pipeline (first 12 elements):")
	base := int64(0)
	for name, b := range mapBases(cl) {
		if name == "y" {
			base = b
		}
	}
	for i := 0; i < trips; i++ {
		fmt.Printf("  y(%2d) = %6.1f\n", i+1, got.Mem[base+int64(i)].F)
	}
}

func mapBases(cl *frontend.CompiledLoop) map[string]int64 {
	_, layout, _, err := cl.BuildEnv(frontend.Binding{
		Ints:  map[string]int64{"n": 1},
		Reals: map[string]float64{"a": 0},
	})
	if err != nil {
		log.Fatal(err)
	}
	return layout.Base
}

func coreMachine() *machine.Desc { return machine.Cydra() }
