// Pressure: the paper's core claim, demonstrated on one loop. An
// imbalanced body — one cheap load consumed only after a long multiply
// chain — is scheduled three ways: bidirectionally (the paper's
// lifetime-sensitive heuristic), early-only with the same dynamic
// priorities (the ablation), and with the Cydrome baseline. All three
// reach the same II; only the bidirectional placement keeps the cheap
// value's lifetime short, which is exactly Section 5's point.
//
// Run with:
//
//	go run ./examples/pressure
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/frontend"
	"repro/internal/ir"
	"repro/internal/lifetime"
	"repro/internal/machine"
	"repro/internal/stats"
)

const src = `
      subroutine imbalanced(n, a, b, c, d, e, w)
      real a(200), b(200), c(200), d(200), e(200), w(200)
      integer n, i
      do i = 1, n
        w(i) = a(i) + ((b(i) * c(i)) * d(i)) * e(i)
      end do
      end
`

func main() {
	m := machine.Cydra()
	_, loops, err := frontend.Compile(src, m)
	if err != nil {
		log.Fatal(err)
	}
	l := loops[0].Loop

	t := stats.NewTable("Scheduler", "II", "MaxLive", "MinAvg", "Gap")
	for _, name := range []core.SchedulerName{core.SchedSlack, core.SchedSlackUni, core.SchedCydrome} {
		c, err := core.Compile(l, core.Options{Scheduler: name, SkipCodegen: true})
		if err != nil || !c.OK() {
			log.Fatalf("%s failed", name)
		}
		t.Row(string(name), c.Result.Schedule.II, c.RR.MaxLive, c.MinAvg, c.RR.MaxLive-c.MinAvg)
	}
	fmt.Print(t.String())

	// Show where the pressure goes: the lifetime of each value under
	// bidirectional vs early-only placement.
	fmt.Println("\nper-value lifetimes (cycles live):")
	for _, name := range []core.SchedulerName{core.SchedSlack, core.SchedSlackUni} {
		c, _ := core.Compile(l, core.Options{Scheduler: name, SkipCodegen: true})
		fmt.Printf("  %s:\n", name)
		for _, r := range lifetime.Ranges(l, c.Result.Schedule, ir.RR) {
			fmt.Printf("    %-8s [%3d,%3d)  len %d\n", l.Value(r.Val).Name, r.Start, r.End, r.Len())
		}
	}
	fmt.Println("\nthe a(i) load: early-only placement issues it at cycle ~0 and leaves")
	fmt.Println("its value live across the whole multiply chain; the bidirectional")
	fmt.Println("heuristic sinks it next to its single use.")
}
