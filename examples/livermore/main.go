// Livermore: compile and schedule the embedded kernel corpus (the
// Lawrence Livermore loops and classic vector kernels written in the
// mini-FORTRAN dialect), reporting for each loop the paper's key
// quantities — MII decomposition, achieved II, and register pressure
// against the schedule-independent MinAvg bound.
//
// Run with:
//
//	go run ./examples/livermore
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/stats"
)

func main() {
	m := machine.Cydra()
	kernels, err := loopgen.Kernels(m)
	if err != nil {
		log.Fatal(err)
	}

	t := stats.NewTable("Kernel", "Ops", "ResMII", "RecMII", "MII", "II", "MaxLive", "MinAvg", "GPRs")
	optimal := 0
	for _, k := range kernels {
		c, err := core.Compile(k.CL.Loop, core.Options{SkipCodegen: true})
		if err != nil {
			log.Fatalf("%s: %v", k.Name, err)
		}
		if !c.OK() {
			log.Fatalf("%s: scheduler gave up", k.Name)
		}
		b := c.Result.Bounds
		ii := c.Result.Schedule.II
		if ii == b.MII {
			optimal++
		}
		t.Row(k.Name, len(k.CL.Loop.Ops), b.ResMII, b.RecMII, b.MII, ii, c.RR.MaxLive, c.MinAvg, c.GPRs)
	}
	fmt.Print(t.String())
	fmt.Printf("\n%d/%d kernels scheduled at their MII lower bound\n", optimal, len(kernels))
}
