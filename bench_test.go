// Top-level benchmark harness: one testing.B benchmark per table and
// figure of the paper (run with `go test -bench=. -benchmem`). Each
// benchmark reports its headline numbers as custom metrics so the paper
// comparison is visible straight from the bench output; EXPERIMENTS.md
// records the full paper-vs-measured accounting.
//
// The workload defaults to the paper's population size (1,525 loops);
// set LSMS_BENCH_SIZE to shrink it for quick runs.
package repro

import (
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/mindist"
	"repro/internal/sched"
)

const defaultSeed = 1993

func benchSize() int {
	if v := os.Getenv("LSMS_BENCH_SIZE"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 1525
}

var (
	suiteOnce sync.Once
	suiteVal  *bench.Suite
	suiteErr  error
)

func suite(b *testing.B) *bench.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suiteVal, suiteErr = bench.NewSuite(loopgen.Options{Size: benchSize(), Seed: defaultSeed})
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suiteVal
}

// BenchmarkTable2 measures the workload-characterization pass.
func BenchmarkTable2(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		r, err := bench.Table2(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Rows["MII"].P50), "MII-p50")
		b.ReportMetric(float64(r.Rows["# Operations"].P50), "ops-p50")
	}
}

// BenchmarkTable3 reproduces the slack scheduler's performance table.
func BenchmarkTable3(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		r, err := bench.Table34(s, core.SchedSlack)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*float64(r.Total.Opt)/float64(r.Total.All), "%optimal")
		b.ReportMetric(float64(r.Total.SumII)/float64(r.Total.SumMII), "II/MII")
	}
}

// BenchmarkTable4 reproduces the Cydrome baseline's performance table.
func BenchmarkTable4(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		r, err := bench.Table34(s, core.SchedCydrome)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*float64(r.Total.Opt)/float64(r.Total.All), "%optimal")
		b.ReportMetric(float64(r.Failures), "failures")
	}
}

// BenchmarkFigure5 measures the MaxLive − MinAvg distributions.
func BenchmarkFigure5(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		r, err := bench.Figure5(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Pct("New Scheduler", 0), "new-%at-bound")
		b.ReportMetric(r.Pct("Old Scheduler", 0), "old-%at-bound")
	}
}

// BenchmarkFigure6 measures the MaxLive distributions.
func BenchmarkFigure6(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		r, err := bench.Figure6(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Pct("New Scheduler", 32), "new-%≤32RR")
		b.ReportMetric(r.Pct("Old Scheduler", 32), "old-%≤32RR")
	}
}

// BenchmarkFigure7 measures GPR and combined pressure distributions.
func BenchmarkFigure7(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		r, err := bench.Figure7(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Pct("GPRs", 16), "%GPR≤16")
		b.ReportMetric(r.Pct("(New) GPRs+MaxLive", 32), "%comb≤32")
	}
}

// BenchmarkFigure8 measures ICR predicate usage.
func BenchmarkFigure8(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		r, err := bench.Figure8(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Pct("New Scheduler", 32), "%≤32ICR")
	}
}

// BenchmarkEffort aggregates the Section 6 backtracking counters.
func BenchmarkEffort(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		slack, err := bench.Effort(s, core.SchedSlack)
		if err != nil {
			b.Fatal(err)
		}
		cyd, err := bench.Effort(s, core.SchedCydrome)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(slack.Ejections), "slack-ejections")
		if slack.Ejections > 0 {
			b.ReportMetric(float64(cyd.Ejections)/float64(slack.Ejections), "cyd/slack-eject")
		}
	}
}

// BenchmarkHeadline computes the Section 7 summary.
func BenchmarkHeadline(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		r, err := bench.Headline(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.PctOptimal, "%optimal")
		b.ReportMetric(r.SpeedupVsOld, "speedup")
		b.ReportMetric(r.TimeVsMinimum, "II/MII")
	}
}

// BenchmarkAblation compares bidirectional vs early-only pressure.
func BenchmarkAblation(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		r, err := bench.Ablation(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.SumSlack), "bidir-pressure")
		b.ReportMetric(float64(r.SumUni), "earlyonly-pressure")
	}
}

// BenchmarkRegalloc measures rotating-register allocation quality.
func BenchmarkRegalloc(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		rs, err := bench.Regalloc(s)
		if err != nil {
			b.Fatal(err)
		}
		within := 0
		for _, d := range rs[0].Deltas {
			if d <= 1 {
				within++
			}
		}
		b.ReportMetric(100*float64(within)/float64(len(rs[0].Deltas)), "%within+1")
	}
}

// BenchmarkIIStep compares the II increment policies (footnote 6) on a
// reduced workload (it schedules everything twice).
func BenchmarkIIStep(b *testing.B) {
	size := benchSize()
	if size > 400 {
		size = 400
	}
	for i := 0; i < b.N; i++ {
		r, err := bench.IIStep(loopgen.Options{Size: size, Seed: defaultSeed})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.SumIIPct-r.SumIIOne), "ΔΣII")
	}
}

// BenchmarkLatencies re-runs the headline across machine variants
// (Section 8 robustness) on a reduced workload.
func BenchmarkLatencies(b *testing.B) {
	size := benchSize()
	if size > 400 {
		size = 400
	}
	for i := 0; i < b.N; i++ {
		rows, err := bench.Latencies(size, defaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.PctOptimal, r.Machine+"-%opt")
		}
	}
}

// BenchmarkSlackScheduleSample microbenchmarks one scheduling run of the
// paper's Figure 1 loop.
func BenchmarkSlackScheduleSample(b *testing.B) {
	m := machine.Cydra()
	l := fixture.Sample(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sched.Slack(sched.Config{}).Schedule(l)
		if err != nil || !res.OK() {
			b.Fatal("scheduling failed")
		}
	}
}

// BenchmarkMinDist microbenchmarks the all-pairs longest-path kernel on
// the largest fixture.
func BenchmarkMinDist(b *testing.B) {
	m := machine.Cydra()
	l := fixture.Divide(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mindist.Compute(l, 38); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEnd compiles, schedules, generates code for, and
// simulates the daxpy fixture — the full pipeline cost.
func BenchmarkEndToEnd(b *testing.B) {
	m := machine.Cydra()
	r := fixture.RunnableDaxpy(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := core.Compile(r.Loop, core.Options{})
		if err != nil || !c.OK() {
			b.Fatal("compile failed")
		}
		if err := core.VerifyExecution(c, r.Env, r.Trips); err != nil {
			b.Fatal(err)
		}
	}
}
