// Per-compile hot-path benchmarks: one op is one core.Compile of one
// workload loop (round-robin over the corpus, scheduling + pressure, no
// codegen — the lsmsd serving shape). These are the benchmarks whose
// ns/op, B/op, and allocs/op feed BENCH_history.jsonl; run with
//
//	go test -bench 'BenchmarkCompile' -benchmem
//
// The NoPool variant runs the identical code path on virgin memory per
// compile, so the pair quantifies exactly what arena pooling saves.
package repro

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
)

func benchCompile(b *testing.B, cfg sched.Config) {
	s := suite(b)
	for _, name := range core.Schedulers() {
		b.Run(string(name), func(b *testing.B) {
			opt := core.Options{Scheduler: name, Config: cfg, SkipCodegen: true}
			loops := s.Loops
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Compile(loops[i%len(loops)].CL.Loop, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompile measures one pooled compilation per op, per policy.
func BenchmarkCompile(b *testing.B) {
	benchCompile(b, sched.Config{})
}

// BenchmarkCompileNoPool is BenchmarkCompile with the arena pool
// bypassed — the differential baseline for allocation accounting.
func BenchmarkCompileNoPool(b *testing.B) {
	benchCompile(b, sched.Config{NoPool: true})
}

// BenchmarkCompileInto measures the caller-owned-buffer entry point:
// identical work to BenchmarkCompile, but one Compiled is recycled
// across ops (core.CompileInto), so the result objects — sched.Result,
// Schedule.Time, the MinDist clone — cost nothing after warm-up. What
// remains per op is the pipeline's allocation floor.
func BenchmarkCompileInto(b *testing.B) {
	s := suite(b)
	ctx := context.Background()
	for _, name := range core.Schedulers() {
		b.Run(string(name), func(b *testing.B) {
			opt := core.Options{Scheduler: name, SkipCodegen: true}
			loops := s.Loops
			var c core.Compiled
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := core.CompileInto(ctx, &c, loops[i%len(loops)].CL.Loop, opt)
				if err != nil && !errors.Is(err, sched.ErrInfeasible) {
					b.Fatal(err)
				}
			}
		})
	}
}
