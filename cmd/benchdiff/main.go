// Command benchdiff compares the head of a benchmark trajectory against
// its last committed record and fails on regression — the CI tripwire
// that keeps the per-compile hot path from quietly re-growing the
// allocations the arena work removed.
//
// Usage:
//
//	benchdiff [-history BENCH_history.jsonl] [-head FILE]
//	          [-ns 0.10] [-bytes 0.10] [-ns-exact 1.0]
//
// With only -history, the last record is the head and the one before it
// the baseline. With -head, the head comes from the last record of that
// file (CI measures into a temp file) and the baseline is the last
// record of -history whose (size, seed, nopool) match — records at a
// different workload are incomparable and skipped.
//
// Three regression classes, strictest first:
//
//   - Any effort-counter drift (ii_attempts, central_iters, placements,
//     forces, ejections, restarts) is a CORRECTNESS alarm: the counters
//     are deterministic schedule work at a fixed (size, seed), identical
//     across machines, so a drift means the scheduler computes something
//     different, not that the machine was slow.
//   - Any allocs/op increase fails: allocation counts are deterministic,
//     so there is no noise to tolerate.
//   - ns/op (and B/op) may regress up to their thresholds; CI machines
//     are heterogeneous, so -ns is deliberately loose there. The exact
//     backend's benchmarks ("…/exact") use the separate, much looser
//     -ns-exact ns/op threshold: a branch-and-bound search's wall
//     clock swings with memory pressure far more than the heuristic
//     hot path does, while its effort counters and allocs/op stay
//     deterministic and keep their strict checks.
//
// Exit status: 0 clean, 1 regression, 2 usage or I/O trouble.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	history := flag.String("history", "BENCH_history.jsonl", "committed trajectory file (the baseline)")
	headFile := flag.String("head", "", "JSONL file whose last record is the head measurement (default: last record of -history)")
	nsTol := flag.Float64("ns", 0.10, "tolerated fractional ns/op regression (0.10 = +10%)")
	bTol := flag.Float64("bytes", 0.10, "tolerated fractional B/op regression")
	nsExactTol := flag.Float64("ns-exact", 1.0, "tolerated fractional ns/op regression for the exact backend's benchmarks")
	flag.Parse()

	hist, err := bench.ReadHistory(*history)
	if err != nil {
		fatalf("reading %s: %v", *history, err)
	}

	var head *bench.HistoryRecord
	if *headFile != "" {
		hs, err := bench.ReadHistory(*headFile)
		if err != nil {
			fatalf("reading %s: %v", *headFile, err)
		}
		if len(hs) == 0 {
			fatalf("%s holds no records", *headFile)
		}
		head = hs[len(hs)-1]
	} else {
		if len(hist) < 2 {
			fatalf("%s holds %d record(s); need two to diff (or pass -head)", *history, len(hist))
		}
		head = hist[len(hist)-1]
		hist = hist[:len(hist)-1]
	}

	base := baselineFor(hist, head)
	if base == nil {
		fatalf("no comparable baseline in %s for size=%d seed=%d machine=%s nopool=%v",
			*history, head.Size, head.Seed, orPaper(head.Machine), head.NoPool)
	}

	fmt.Printf("baseline: %s %s (%s)\nhead:     %s %s (%s)\n\n",
		base.SHA, base.Date, orDash(base.Note), head.SHA, head.Date, orDash(head.Note))
	regressions := diff(os.Stdout, base, head, *nsTol, *bTol, *nsExactTol)
	if regressions > 0 {
		fmt.Printf("\nbenchdiff: %d regression(s)\n", regressions)
		os.Exit(1)
	}
	fmt.Println("\nbenchdiff: clean")
}

// baselineFor picks the most recent record measuring the same workload
// as the head; records at other sizes/seeds are not comparable, and
// records from different machines never are — a target with other unit
// mixes or latencies does different schedule work, so neither its
// effort counters nor its per-compile costs can baseline this head's.
// An empty machine is the paper machine (records predate the field).
func baselineFor(hist []*bench.HistoryRecord, head *bench.HistoryRecord) *bench.HistoryRecord {
	for i := len(hist) - 1; i >= 0; i-- {
		r := hist[i]
		if r.Size == head.Size && r.Seed == head.Seed && r.NoPool == head.NoPool &&
			orPaper(r.Machine) == orPaper(head.Machine) {
			return r
		}
	}
	return nil
}

// orPaper canonicalizes the historical empty machine field.
func orPaper(m string) string {
	if m == "" {
		return "cydra"
	}
	return m
}

// diff prints one row per benchmark and returns the regression count.
func diff(w *os.File, base, head *bench.HistoryRecord, nsTol, bTol, nsExactTol float64) int {
	baseBy := map[string]bench.BenchRecord{}
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	fmt.Fprintf(w, "%-30s %14s %14s %12s   %s\n", "benchmark", "ns/op", "B/op", "allocs/op", "verdict")
	bad := 0
	for _, h := range head.Benchmarks {
		b, ok := baseBy[h.Name]
		if !ok {
			fmt.Fprintf(w, "%-30s %44s   new (no baseline)\n", h.Name, "")
			continue
		}
		tol := nsTol
		if strings.HasSuffix(h.Name, "/exact") {
			tol = nsExactTol
		}
		verdict := "ok"
		if msg := counterDrift(b, h); msg != "" {
			verdict = "COUNTER DRIFT: " + msg
			bad++
		} else if h.AllocsPerOp > b.AllocsPerOp {
			verdict = fmt.Sprintf("ALLOC REGRESSION: %.1f -> %.1f allocs/op", b.AllocsPerOp, h.AllocsPerOp)
			bad++
		} else if b.NsPerOp > 0 && h.NsPerOp > b.NsPerOp*(1+tol) {
			verdict = fmt.Sprintf("NS REGRESSION: %+.1f%% ns/op (tolerance %.0f%%)",
				100*(h.NsPerOp/b.NsPerOp-1), 100*tol)
			bad++
		} else if b.BytesPerOp > 0 && h.BytesPerOp > b.BytesPerOp*(1+bTol) {
			verdict = fmt.Sprintf("BYTES REGRESSION: %+.1f%% B/op (tolerance %.0f%%)",
				100*(h.BytesPerOp/b.BytesPerOp-1), 100*bTol)
			bad++
		}
		fmt.Fprintf(w, "%-30s %6.0f -> %5.0f %6.0f -> %5.0f %5.1f -> %4.1f   %s\n",
			h.Name, b.NsPerOp, h.NsPerOp, b.BytesPerOp, h.BytesPerOp, b.AllocsPerOp, h.AllocsPerOp, verdict)
	}
	for _, b := range base.Benchmarks {
		if _, ok := has(head.Benchmarks, b.Name); !ok {
			fmt.Fprintf(w, "%-30s %44s   MISSING from head\n", b.Name, "")
			bad++
		}
	}
	return bad
}

// counterDrift reports the first deterministic effort counter that
// moved, or "" when all match.
func counterDrift(b, h bench.BenchRecord) string {
	type c struct {
		name       string
		base, head int64
	}
	for _, x := range []c{
		{"ii_attempts", b.IIAttempts, h.IIAttempts},
		{"central_iters", b.CentralIters, h.CentralIters},
		{"placements", b.Placements, h.Placements},
		{"forces", b.Forces, h.Forces},
		{"ejections", b.Ejections, h.Ejections},
		{"restarts", b.Restarts, h.Restarts},
	} {
		if x.base != x.head {
			return fmt.Sprintf("%s %d -> %d", x.name, x.base, x.head)
		}
	}
	return ""
}

func has(recs []bench.BenchRecord, name string) (bench.BenchRecord, bool) {
	for _, r := range recs {
		if r.Name == name {
			return r, true
		}
	}
	return bench.BenchRecord{}, false
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(2)
}
