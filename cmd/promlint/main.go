// Command promlint checks a Prometheus exposition — classic 0.0.4 text
// or OpenMetrics (bare counter family names, "# EOF") — for the format
// errors that break real scrapers: samples without HELP/TYPE, duplicate
// series, counter samples not suffixed _total, histograms with missing
// or non-cumulative le buckets. It also enforces the cardinality
// discipline tracing introduces: OpenMetrics exemplar sections
// (`# {trace_id="..."} value`) must be syntactically valid and may only
// annotate _bucket/_total samples, while trace/span-ID-shaped values
// and per-request identifier names (trace_id, span_id, request_id) are
// rejected as series labels — correlation belongs in exemplars, never
// in the label space. It reads a file (or stdin) and exits 1 when it
// finds anything, printing one issue per line — the shape CI wants for
// gating /metrics:
//
//	curl -s localhost:8577/metrics | promlint
//	promlint scrape.txt
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	var in io.Reader = os.Stdin
	name := "<stdin>"
	switch len(os.Args) {
	case 1:
	case 2:
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintf(os.Stderr, "promlint: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		in, name = f, os.Args[1]
	default:
		fmt.Fprintln(os.Stderr, "usage: promlint [exposition.txt]")
		os.Exit(2)
	}
	issues := obs.LintExposition(in)
	for _, issue := range issues {
		fmt.Fprintf(os.Stderr, "promlint: %s: %v\n", name, issue)
	}
	if len(issues) > 0 {
		os.Exit(1)
	}
	fmt.Printf("promlint: %s: ok\n", name)
}
