package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/wire"
)

// warmCorpus is the -warm-start document. Either section (or both) may
// be present:
//
//	{
//	  "generate": {"size": 48, "seed": 1993, "scheduler": "slack", "machine": "cydra"},
//	  "requests": [ ...full wire.Request documents... ]
//	}
//
// "generate" expands to the embedded kernel corpus plus synthetic loops
// (loopgen.Build) — the same workload lsms-bench sweeps — encoded as
// compile requests; "requests" carries literal wire documents for
// custom warm sets.
type warmCorpus struct {
	Generate *warmGenerate   `json:"generate,omitempty"`
	Requests []*wire.Request `json:"requests,omitempty"`
}

type warmGenerate struct {
	Size      int    `json:"size"`
	Seed      int64  `json:"seed"`
	Scheduler string `json:"scheduler,omitempty"`
	Machine   string `json:"machine,omitempty"`
}

// loadWarmCorpus reads and expands a -warm-start file into the request
// list WarmStart consumes.
func loadWarmCorpus(path string) ([]*wire.Request, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("warm-start: %w", err)
	}
	var doc warmCorpus
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("warm-start: parsing %s: %w", path, err)
	}
	if doc.Generate == nil && len(doc.Requests) == 0 {
		return nil, fmt.Errorf("warm-start: %s has neither \"generate\" nor \"requests\"", path)
	}
	var reqs []*wire.Request
	if g := doc.Generate; g != nil {
		mach := machine.Cydra()
		if g.Machine != "" {
			m, ok := machine.Lookup(g.Machine)
			if !ok {
				return nil, fmt.Errorf("warm-start: unknown machine %q", g.Machine)
			}
			mach = m
		}
		suite, err := loopgen.Build(loopgen.Options{Size: g.Size, Seed: g.Seed, Mach: mach})
		if err != nil {
			return nil, fmt.Errorf("warm-start: building corpus: %w", err)
		}
		for _, l := range suite.Loops {
			req, err := wire.NewRequest(l.CL.Loop, g.Scheduler, wire.Options{})
			if err != nil {
				return nil, fmt.Errorf("warm-start: encoding %s: %w", l.Name, err)
			}
			reqs = append(reqs, req)
		}
	}
	reqs = append(reqs, doc.Requests...)
	return reqs, nil
}
