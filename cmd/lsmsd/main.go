// Command lsmsd serves modulo-scheduling compilations over HTTP: the
// governed pipeline (core.CompileContext + sched.Budget) behind a
// bounded worker pool with admission control, a content-addressed
// result cache, singleflight deduplication, and graceful shutdown.
//
// Usage:
//
//	lsmsd [-addr :8577] [-workers N] [-queue 64] [-cache 1024]
//	      [-store-dir DIR] [-store-max-bytes N] [-warm-start corpus.json]
//	      [-default-deadline 30s] [-max-deadline 2m] [-retry-after 1s]
//	      [-debug-addr :8578] [-flight 64] [-log json|none]
//	      [-machines spec.json,spec2.json]
//	      [-refine] [-refine-workers 1] [-refine-deadline 5s]
//	      [-refine-nodes N]
//	      [-trace-dir DIR | -trace-collector URL] [-trace-sample N]
//	      [-slo-objective 0.99] [-slo-latency 500ms] [-slo-burn 10]
//
// -machines registers extra targets from declarative machine.Spec
// documents at startup, alongside the built-in family; clients then
// select them by name like any registered machine.
//
// -refine turns on the background exact-refinement tier (README
// "Refining in the background"): cold compiles are re-searched by the
// exact branch-and-bound backend under -refine-deadline /
// -refine-nodes, and a strict improvement — lower II, or equal II with
// lower MaxLive — upgrades the stored record in place, so later hits
// serve the better schedule under the X-Lsmsd-Refined header. Note
// that with refinement on, the bytes served for a key can improve
// between hits; clients relying on byte-identity across a key's whole
// lifetime should leave it off.
//
// -trace-dir (or -trace-collector) turns on distributed tracing (README
// "Tracing a request across the service"): POST /v1/compile honors an
// incoming W3C traceparent header (minting a fresh trace when absent),
// answers with the server's own traceparent and a per-stage
// Server-Timing header, and ships sampled traces — request root span
// plus one child span per pipeline phase, with span links tying refine
// and warm-start work back to the requests that caused it — as
// lsms-trace/1 (OTLP/JSON) documents to the spool directory or
// collector endpoint. -trace-sample=N head-samples 1-in-N
// deterministically by trace ID; requests whose caller already sampled
// are always exported.
//
// The SLO tracker is always on: every compile response lands in rolling
// 5-minute and 1-hour windows scored against -slo-objective (success
// rate) and -slo-latency. When the error-budget burn rate exceeds
// -slo-burn in BOTH windows, /readyz degrades to 503 while /healthz
// stays 200 — load balancers route away before anything restarts the
// process. /debug/slo (debug listener) serves the full tracker state.
//
// -store-dir adds a persistent tier behind the in-memory result cache:
// an append-only, checksummed log (README "Surviving restarts") that
// answers repeat requests byte-identically across process restarts.
// Corrupt records found on load are skipped and counted, never served.
// -store-max-bytes bounds the log (0 = unbounded); -warm-start
// precompiles a corpus through the normal worker pool at boot, so the
// store is hot before the first real request arrives.
//
// Endpoints (see README "Running the service"):
//
//	POST /v1/compile    — wire.Request (mini-FORTRAN source or IR form)
//	GET  /v1/schedulers — registered scheduling policies
//	GET  /v1/machines   — registered targets and their unit mixes
//	GET  /healthz       — liveness and pool occupancy
//	GET  /readyz        — readiness (degrades on SLO burn before
//	                      /healthz fails)
//	GET  /metrics       — Prometheus text exposition
//
// With -debug-addr a second listener serves the introspection surface,
// kept off the compile port so it is never publicly reachable:
//
//	GET  /debug/pprof/...       — the standard net/http/pprof handlers
//	GET  /debug/flightrecorder  — the last -flight compile traces
//	                              (?trace=<id> filters to one W3C trace)
//	GET  /debug/slo             — SLO window counts, burn rates, verdict
//
// SIGQUIT dumps the flight recorder to stderr and keeps serving — the
// "what was this process just doing" question, answerable without
// stopping it. SIGINT/SIGTERM trigger a graceful shutdown: the listener
// closes, new compiles get 503, and in-flight compiles drain (up to
// -drain-timeout) before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/machine"
	"repro/internal/server"
	"repro/internal/wire"
)

func main() {
	addr := flag.String("addr", ":8577", "listen address")
	workers := flag.Int("workers", 0, "concurrent compile workers (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth beyond the workers (-1 = none)")
	cache := flag.Int("cache", 1024, "in-memory result-store entries (-1 disables the memory tier)")
	storeDir := flag.String("store-dir", "", "directory for the persistent result store (empty = memory only)")
	storeMaxBytes := flag.Int64("store-max-bytes", 0, "bound on the persistent store's log size (0 = unbounded)")
	warmStart := flag.String("warm-start", "", "corpus file to precompile at boot (JSON; see cmd/lsmsd/warm.go)")
	defDeadline := flag.Duration("default-deadline", 30*time.Second, "deadline applied to requests that carry none (-1ns = unbudgeted)")
	maxDeadline := flag.Duration("max-deadline", 2*time.Minute, "cap on any requested deadline")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint returned with 429")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight compiles")
	debugAddr := flag.String("debug-addr", "", "separate listener for /debug/pprof and /debug/flightrecorder (empty = disabled)")
	flight := flag.Int("flight", 0, "flight-recorder entries (0 = default 64)")
	logMode := flag.String("log", "json", `request logging: "json" (structured, stderr) or "none"`)
	machineFiles := flag.String("machines", "", "comma-separated machine spec files (JSON) to register at startup")
	refine := flag.Bool("refine", false, "background exact refinement: upgrade stored results in place when the exact backend beats them")
	refineWorkers := flag.Int("refine-workers", 0, "concurrent background refinements (0 = default 1)")
	refineDeadline := flag.Duration("refine-deadline", 0, "wall-clock budget of one refinement (0 = default 5s)")
	refineNodes := flag.Int64("refine-nodes", 0, "search-node budget of one refinement (0 = default 1<<20)")
	traceDir := flag.String("trace-dir", "", "spool sampled request traces as lsms-trace/1 JSON files into this directory")
	traceCollector := flag.String("trace-collector", "", "POST sampled traces to this HTTP collector endpoint (-trace-dir wins when both are set)")
	traceSample := flag.Int("trace-sample", 1, "head-sample 1-in-N traces deterministically by trace ID (1 = all, negative = none)")
	traceQueue := flag.Int("trace-queue", 0, "trace export queue depth; a full queue drops (0 = default 256)")
	sloObjective := flag.Float64("slo-objective", 0, "success-rate objective in (0,1) (0 = default 0.99)")
	sloLatency := flag.Duration("slo-latency", 0, "per-request latency objective (0 = default 500ms)")
	sloBurn := flag.Float64("slo-burn", 0, "burn rate above which /readyz degrades, both windows (0 = default 10, negative disables)")
	flag.Parse()

	if *machineFiles != "" {
		for _, path := range strings.Split(*machineFiles, ",") {
			d, err := machine.LoadFile(path)
			if err != nil {
				fatalf("%v", err)
			}
			machine.Register(d)
			fmt.Printf("lsmsd: registered machine %q from %s\n", d.Name, path)
		}
	}

	var logger *slog.Logger
	switch *logMode {
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "none":
	default:
		fatalf("unknown -log mode %q (supported: json, none)", *logMode)
	}

	// Load and expand the warm-start corpus before serving, so a broken
	// corpus file fails the boot instead of a background goroutine.
	var warmReqs []*wire.Request
	if *warmStart != "" {
		var err error
		warmReqs, err = loadWarmCorpus(*warmStart)
		if err != nil {
			fatalf("%v", err)
		}
	}

	srv, err := server.New(server.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheEntries:     *cache,
		StoreDir:         *storeDir,
		StoreMaxBytes:    *storeMaxBytes,
		DefaultDeadline:  *defDeadline,
		MaxDeadline:      *maxDeadline,
		RetryAfter:       *retryAfter,
		FlightEntries:    *flight,
		Refine:           *refine,
		RefineWorkers:    *refineWorkers,
		RefineDeadline:   *refineDeadline,
		RefineNodes:      *refineNodes,
		TraceDir:         *traceDir,
		TraceCollector:   *traceCollector,
		TraceSample:      *traceSample,
		TraceQueue:       *traceQueue,
		SLOObjective:     *sloObjective,
		SLOLatency:       *sloLatency,
		SLOBurnThreshold: *sloBurn,
		Logger:           logger,
	})
	if err != nil {
		fatalf("%v", err)
	}
	if loaded, rejected, ok := srv.StoreLoadReport(); ok {
		fmt.Printf("lsmsd: store %s: %d record(s) loaded, %d rejected by verification\n",
			*storeDir, loaded, rejected)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 2)
	go func() {
		fmt.Printf("lsmsd: listening on %s\n", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	if len(warmReqs) > 0 {
		go func() {
			t0 := time.Now()
			stats, err := srv.WarmStart(context.Background(), warmReqs)
			fmt.Printf("lsmsd: warm-start %s in %v\n", stats, time.Since(t0).Round(time.Millisecond))
			if err != nil {
				fmt.Fprintf(os.Stderr, "lsmsd: warm-start: %v\n", err)
			}
		}()
	}

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           srv.DebugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			fmt.Printf("lsmsd: debug listener on %s\n", *debugAddr)
			errc <- debugSrv.ListenAndServe()
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM, syscall.SIGQUIT)
loop:
	for {
		select {
		case err := <-errc:
			fatalf("serve: %v", err)
		case sig := <-sigc:
			if sig == syscall.SIGQUIT {
				// Dump and keep serving: SIGQUIT is the in-production
				// "show me the last N compiles" lever.
				fmt.Fprintf(os.Stderr, "lsmsd: SIGQUIT — flight recorder dump\n")
				if err := srv.FlightRecorder().WriteJSON(os.Stderr); err != nil {
					fmt.Fprintf(os.Stderr, "lsmsd: flight dump: %v\n", err)
				}
				continue
			}
			fmt.Printf("lsmsd: %v — draining\n", sig)
			break loop
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Close the listeners and let active handlers finish, then wait for
	// the app-level drain (compiles started before the signal).
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "lsmsd: http shutdown: %v\n", err)
	}
	if debugSrv != nil {
		if err := debugSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "lsmsd: debug shutdown: %v\n", err)
		}
	}
	if err := srv.Shutdown(ctx); err != nil {
		fatalf("drain: %v", err)
	}
	fmt.Println("lsmsd: drained cleanly")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lsmsd: "+format+"\n", args...)
	os.Exit(1)
}
