package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/loopgen"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/wire"
)

// loadOptions configures the load-generator mode (-server).
type loadOptions struct {
	Server      string        // base URL of a running lsmsd
	Requests    int           // total requests to issue
	Concurrency int           // concurrent client workers
	Scheduler   string        // scheduling policy to request
	Deadline    time.Duration // per-request deadline carried in the wire options
	Size        int           // corpus size (loopgen)
	Seed        int64         // corpus seed
	Trace       bool          // send a sampled traceparent per request
}

// loadResult is one request's observation.
type loadResult struct {
	status  int
	cache   string // X-Lsmsd-Cache: hit, hit-disk, miss, dedup, or ""
	latency time.Duration
	timing  string // the server's Server-Timing breakdown (tracing mode)
	stitch  bool   // the response traceparent carried our TraceID back
	err     error
}

// runLoad replays the fixture/loopgen corpus against a running lsmsd
// and reports throughput, latency quantiles, status counts, and the
// cache/dedup split. The corpus is wire-encoded once up front so the
// measured latency is pure client→server round trip.
func runLoad(opt loadOptions) error {
	suite, err := loopgen.Build(loopgen.Options{Size: opt.Size, Seed: opt.Seed})
	if err != nil {
		return fmt.Errorf("building corpus: %w", err)
	}
	wopt := wire.Options{}
	if opt.Deadline > 0 {
		wopt.DeadlineMS = opt.Deadline.Milliseconds()
	}
	bodies := make([][]byte, 0, len(suite.Loops))
	for _, l := range suite.Loops {
		req, err := wire.NewRequest(l.CL.Loop, opt.Scheduler, wopt)
		if err != nil {
			return fmt.Errorf("encoding %s: %w", l.Name, err)
		}
		b, err := json.Marshal(req)
		if err != nil {
			return fmt.Errorf("marshalling %s: %w", l.Name, err)
		}
		bodies = append(bodies, b)
	}
	if opt.Requests <= 0 {
		opt.Requests = len(bodies)
	}
	if opt.Concurrency <= 0 {
		opt.Concurrency = 8
	}
	url := strings.TrimRight(opt.Server, "/") + "/v1/compile"
	fmt.Printf("load: %d requests over %d distinct loops, %d workers → %s\n",
		opt.Requests, len(bodies), opt.Concurrency, url)

	client := &http.Client{}
	results := make([]loadResult, opt.Requests)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < opt.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= opt.Requests {
					return
				}
				results[i] = shoot(client, url, bodies[i%len(bodies)], opt.Trace)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	return reportLoad(results, wall, opt.Trace)
}

// shoot issues one compile request and records its observation. With
// trace on it plays the upstream service: a fresh sampled traceparent
// goes out, and the response's traceparent must carry the same TraceID
// back (the cross-process stitch every real caller depends on).
func shoot(client *http.Client, url string, body []byte, trace bool) loadResult {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return loadResult{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	var sent obs.SpanContext
	if trace {
		sent = obs.NewSpanContext()
		sent.Sampled = true
		req.Header.Set("traceparent", sent.Traceparent())
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return loadResult{err: err, latency: time.Since(t0)}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	out := loadResult{
		status:  resp.StatusCode,
		cache:   resp.Header.Get("X-Lsmsd-Cache"),
		latency: time.Since(t0),
	}
	if trace {
		out.timing = resp.Header.Get("Server-Timing")
		if got, err := obs.ParseTraceparent(resp.Header.Get("Traceparent")); err == nil {
			out.stitch = got.TraceID == sent.TraceID
		}
	}
	return out
}

// stageTimings folds every response's Server-Timing header
// (`name;dur=ms`, comma-separated) into per-stage totals.
func stageTimings(results []loadResult) (names []string, totalMS map[string]float64, counts map[string]int) {
	totalMS = map[string]float64{}
	counts = map[string]int{}
	for _, r := range results {
		for _, part := range strings.Split(r.timing, ",") {
			name, durStr, ok := strings.Cut(strings.TrimSpace(part), ";dur=")
			if !ok || name == "" {
				continue
			}
			var ms float64
			if _, err := fmt.Sscanf(durStr, "%g", &ms); err != nil {
				continue
			}
			if counts[name] == 0 {
				names = append(names, name)
			}
			totalMS[name] += ms
			counts[name]++
		}
	}
	sort.Strings(names)
	return names, totalMS, counts
}

// reportLoad prints throughput, latency quantiles (overall, for the
// cache-miss population — the one that actually scheduled — and for
// disk-tier hits), the status / cache-state breakdowns, and the
// warm-vs-cold split. Against a restarted lsmsd with -store-dir, the
// first replay pass shows up as hit-disk (warm: served from the
// persistent tier without scheduling) and later passes as hit; a cold
// server shows misses instead.
func reportLoad(results []loadResult, wall time.Duration, trace bool) error {
	var lats, missLats, diskLats []int // microseconds
	statuses := map[int]int{}
	caches := map[string]int{}
	errs := 0
	var firstErr error
	for _, r := range results {
		if r.err != nil {
			errs++
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		lats = append(lats, int(r.latency.Microseconds()))
		statuses[r.status]++
		if r.cache != "" {
			caches[r.cache]++
		}
		switch r.cache {
		case "miss":
			missLats = append(missLats, int(r.latency.Microseconds()))
		case "hit-disk":
			diskLats = append(diskLats, int(r.latency.Microseconds()))
		}
	}
	done := len(results) - errs
	fmt.Printf("load: %d responses in %v (%.1f req/s), %d transport error(s)\n",
		done, wall.Round(time.Millisecond), float64(done)/wall.Seconds(), errs)
	if errs > 0 {
		return fmt.Errorf("transport: %w", firstErr)
	}

	printQuants := func(label string, xs []int) {
		if len(xs) == 0 {
			return
		}
		q := stats.Quants(xs)
		fmt.Printf("latency %-10s (µs, n=%d): min %d  p50 %d  p90 %d  max %d\n",
			label, len(xs), q.Min, q.P50, q.P90, q.Max)
	}
	printQuants("all", lats)
	printQuants("cache-miss", missLats)
	printQuants("hit-disk", diskLats)

	codes := make([]int, 0, len(statuses))
	for c := range statuses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	var parts []string
	for _, c := range codes {
		parts = append(parts, fmt.Sprintf("%d×%d", c, statuses[c]))
	}
	fmt.Printf("status: %s\n", strings.Join(parts, "  "))
	fmt.Printf("cache:  hit=%d hit-disk=%d miss=%d dedup=%d\n",
		caches["hit"], caches["hit-disk"], caches["miss"], caches["dedup"])
	if done > 0 {
		warm := caches["hit"] + caches["hit-disk"] + caches["dedup"]
		fmt.Printf("warm:   %.1f%% served without scheduling (%.1f%% from the persistent tier), %.1f%% cold\n",
			100*float64(warm)/float64(done),
			100*float64(caches["hit-disk"])/float64(done),
			100*float64(caches["miss"])/float64(done))
	}
	if trace && done > 0 {
		stitched := 0
		for _, r := range results {
			if r.stitch {
				stitched++
			}
		}
		fmt.Printf("trace:  %d/%d responses stitched our TraceID back\n", stitched, done)
		names, totalMS, counts := stageTimings(results)
		for _, n := range names {
			fmt.Printf("stage %-14s n=%-5d total %.1fms  mean %.3fms\n",
				n, counts[n], totalMS[n], totalMS[n]/float64(counts[n]))
		}
	}
	return nil
}
