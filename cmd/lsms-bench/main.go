// Command lsms-bench regenerates the paper's evaluation (Sections 6-7):
// every table and figure, plus the extra ablations DESIGN.md documents.
//
// Usage:
//
//	lsms-bench [-size 1525] [-seed 1993] [-exp all] [-parallel N]
//	           [-benchjson BENCH_sched.json] [-metricsjson BENCH_metrics.json]
//	           [-tracedir DIR] [-deadline 0] [-degrade]
//
// -tracedir traces every compilation in the sweep and writes one Chrome
// trace_event document per policy (DIR/<policy>.trace.json) — open in
// Perfetto to see which loops and pipeline phases dominate a sweep.
//
// Experiments: table1 table2 table3 table4 fig5 fig6 fig7 fig8 effort
// headline ablation regalloc iistep expansion predshare straightline
// latencies targets gap perf metrics all
//
// The "gap" experiment re-searches the corpus with the exact
// branch-and-bound backend under a per-loop budget (-gap-deadline,
// -gap-nodes) and reports the heuristic's optimality gap per target:
// how often slack was provably optimal, where the exact search won II
// or MaxLive, and the timeout rate. Like "targets" it honors -targets
// and prints console and Markdown tables.
//
// -machine runs the whole evaluation on another registered target (or
// a spec file: any argument containing a path separator or .json is
// loaded as a declarative machine document). The "targets" experiment
// sweeps the corpus on every registered target instead (-targets picks
// a subset) and prints both console and Markdown tables — the latter
// is what EXPERIMENTS.md publishes.
//
// With -server it instead becomes a load generator for a running lsmsd:
// the corpus is wire-encoded and replayed over -concurrency workers,
// reporting throughput, latency quantiles, and the cache/dedup split.
//
//	lsms-bench -server http://localhost:8577 [-requests N]
//	           [-concurrency 8] [-scheduler slack] [-deadline 0]
//	           [-size 200] [-seed 1993]
//
// With -history it instead measures the per-compile hot path (ns/op,
// B/op, allocs/op per policy plus the deterministic effort counters)
// and appends one trajectory record to the given JSONL file — the
// BENCH_history.jsonl format cmd/benchdiff consumes:
//
//	lsms-bench -history BENCH_history.jsonl [-sha $(git rev-parse --short HEAD)]
//	           [-note "arena pooling"] [-size 120] [-seed 1993] [-nopool]
//
// -nopool bypasses the scratch-arena pool everywhere (every compile on
// virgin memory) — the escape hatch mirroring -nofastpaths, and the
// differential baseline for allocation accounting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sched"
)

func main() {
	size := flag.Int("size", 1525, "number of workload loops (paper: 1,525)")
	seed := flag.Int64("seed", 1993, "workload generator seed")
	exp := flag.String("exp", "all", "comma-separated experiment ids")
	par := flag.Int("parallel", 0, "worker pool for the scheduling sweep (0 = GOMAXPROCS, 1 = sequential)")
	benchjson := flag.String("benchjson", "", "write the perf experiment's JSON record here (implies -exp perf)")
	metricsjson := flag.String("metricsjson", "", "write the merged event-stream metrics JSON here (implies -exp metrics)")
	tracedir := flag.String("tracedir", "", "write one Chrome trace_event file per policy into this directory")
	noFast := flag.Bool("nofastpaths", false, "disable parametric MinDist reuse and incremental bounds (perf attribution baseline)")
	noPool := flag.Bool("nopool", false, "bypass the scratch-arena pool: every compile on virgin memory (allocation-accounting baseline)")
	history := flag.String("history", "", "append one per-compile benchmark record to this JSONL trajectory file and exit")
	sha := flag.String("sha", "unknown", "git commit the -history record describes")
	note := flag.String("note", "", "free-form annotation for the -history record")
	deadline := flag.Duration("deadline", 0, "per-loop scheduling deadline (0 = unbudgeted)")
	degrade := flag.Bool("degrade", false, "fall back to the list scheduler when a loop exhausts its deadline")
	serverURL := flag.String("server", "", "lsmsd base URL; switches to load-generator mode")
	requests := flag.Int("requests", 0, "load mode: total requests to issue (0 = one per corpus loop)")
	concurrency := flag.Int("concurrency", 8, "load mode: concurrent client workers")
	scheduler := flag.String("scheduler", "slack", "load mode: scheduling policy to request")
	trace := flag.Bool("trace", false, "load mode: send a sampled W3C traceparent per request and report the server's per-stage Server-Timing breakdown")
	machName := flag.String("machine", "", "target machine: a registered name or a spec file (default: the paper machine)")
	targets := flag.String("targets", "", "targets/gap experiments: comma-separated machine names (default: every registered target)")
	gapDeadline := flag.Duration("gap-deadline", 2*time.Second, "gap experiment: per-loop exact-search wall-clock budget")
	gapNodes := flag.Int64("gap-nodes", 1<<20, "gap experiment: per-loop exact-search node budget")
	flag.Parse()

	mach := resolveMachine(*machName)

	if *history != "" {
		benches, err := bench.CompileBench(*size, *seed, sched.Config{NoPool: *noPool}, mach)
		check(err)
		machRec := ""
		if mach != nil {
			machRec = mach.Name
		}
		rec := bench.NewHistoryRecord(*sha, time.Now().UTC().Format("2006-01-02"), *note,
			*size, *seed, machRec, *noPool, benches)
		check(bench.AppendHistory(*history, rec))
		fmt.Println(rec)
		fmt.Printf("history record appended to %s\n", *history)
		return
	}

	if *serverURL != "" {
		n := *size
		if n == 1525 {
			n = 200 // load mode defaults to a lighter corpus than the paper sweep
		}
		check(runLoad(loadOptions{
			Server:      *serverURL,
			Requests:    *requests,
			Concurrency: *concurrency,
			Scheduler:   *scheduler,
			Deadline:    *deadline,
			Size:        n,
			Seed:        *seed,
			Trace:       *trace,
		}))
		return
	}

	wants := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		wants[strings.TrimSpace(e)] = true
	}
	want := func(id string) bool { return wants["all"] || wants[id] }

	var s *bench.Suite
	suite := func() *bench.Suite {
		if s == nil {
			var err error
			s, err = bench.NewSuite(loopgen.Options{Size: *size, Seed: *seed, Mach: mach})
			if err != nil {
				fatalf("building workload: %v", err)
			}
			s.Parallel = *par
			s.Degrade = *degrade
			s.Trace = *tracedir != ""
			if *noFast || *noPool || *deadline > 0 {
				cfg := sched.Config{
					NoFastPaths: *noFast,
					NoPool:      *noPool,
					Budget:      sched.Budget{Deadline: *deadline},
				}
				for _, n := range core.Schedulers() {
					s.Configure(n, cfg)
				}
			}
			fmt.Printf("workload: %d loops (seed %d) on machine %q\n\n", s.Size(), *seed, s.Mach.Name)
		}
		return s
	}

	if want("table1") {
		fmt.Println(bench.Table1(machine.Cydra()))
	}
	if want("table2") {
		r, err := bench.Table2(suite())
		check(err)
		fmt.Println(r)
	}
	if want("table3") {
		r, err := bench.Table34(suite(), core.SchedSlack)
		check(err)
		fmt.Println("Table 3 — " + r.String())
	}
	if want("table4") {
		r, err := bench.Table34(suite(), core.SchedCydrome)
		check(err)
		fmt.Println("Table 4 — " + r.String())
	}
	if want("fig5") {
		r, err := bench.Figure5(suite())
		check(err)
		fmt.Println(r)
	}
	if want("fig6") {
		r, err := bench.Figure6(suite())
		check(err)
		fmt.Println(r)
	}
	if want("fig7") {
		r, err := bench.Figure7(suite())
		check(err)
		fmt.Println(r)
	}
	if want("fig8") {
		r, err := bench.Figure8(suite())
		check(err)
		fmt.Println(r)
	}
	if want("effort") {
		for _, n := range []core.SchedulerName{core.SchedSlack, core.SchedCydrome} {
			r, err := bench.Effort(suite(), n)
			check(err)
			fmt.Println(r)
		}
	}
	if want("headline") {
		r, err := bench.Headline(suite())
		check(err)
		fmt.Println(r)
	}
	if want("ablation") {
		r, err := bench.Ablation(suite())
		check(err)
		fmt.Println(r)
	}
	if want("regalloc") {
		r, err := bench.Regalloc(suite())
		check(err)
		fmt.Println(bench.RenderRegalloc(r))
	}
	if want("iistep") {
		n := *size
		if n > 400 {
			n = 400 // two full suite runs; keep the ablation affordable
		}
		r, err := bench.IIStep(loopgen.Options{Size: n, Seed: *seed})
		check(err)
		fmt.Println(r)
	}
	if want("expansion") {
		r, err := bench.CodeExpansion(suite())
		check(err)
		fmt.Println(r)
	}
	if want("predshare") {
		r, err := bench.PredicateSharing(suite())
		check(err)
		fmt.Println(r)
	}
	if want("straightline") {
		r, err := bench.Straightline(suite())
		check(err)
		fmt.Println(r)
	}
	if want("latencies") {
		n := *size
		if n > 400 {
			n = 400
		}
		rows, err := bench.Latencies(n, *seed)
		check(err)
		fmt.Println(bench.RenderLatencies(rows))
	}
	if want("targets") {
		names := machine.Names()
		if *targets != "" {
			names = nil
			for _, t := range strings.Split(*targets, ",") {
				names = append(names, strings.TrimSpace(t))
			}
		}
		rows, err := bench.TargetSweep(*size, *seed, *par, names)
		check(err)
		fmt.Println(bench.RenderTargetSweep(rows))
		fmt.Println("Markdown (EXPERIMENTS.md form):")
		fmt.Println(bench.MarkdownTargetSweep(rows))
	}
	if want("gap") {
		names := machine.Names()
		if *targets != "" {
			names = nil
			for _, t := range strings.Split(*targets, ",") {
				names = append(names, strings.TrimSpace(t))
			}
		}
		rows, err := bench.GapSweep(bench.GapOptions{
			Size: *size, Seed: *seed, Parallel: *par,
			Targets: names, Deadline: *gapDeadline, Nodes: *gapNodes,
		})
		check(err)
		fmt.Println(bench.RenderGap(rows))
		fmt.Println("Markdown (EXPERIMENTS.md form):")
		fmt.Println(bench.MarkdownGap(rows))
	}
	if want("perf") || *benchjson != "" {
		r, err := bench.Perf(suite())
		check(err)
		fmt.Println(r)
		if *benchjson != "" {
			check(r.WriteJSON(*benchjson))
			fmt.Printf("perf record written to %s\n", *benchjson)
		}
	}
	if want("metrics") || *metricsjson != "" {
		r, err := bench.CollectMetrics(suite())
		check(err)
		fmt.Println(r)
		if *metricsjson != "" {
			check(r.WriteJSON(*metricsjson))
			fmt.Printf("metrics record written to %s\n", *metricsjson)
		}
	}
	if *tracedir != "" {
		check(writeTraces(suite(), *tracedir))
	}
}

// writeTraces sweeps every policy (cached runs are reused) and writes
// each policy's per-loop span traces as one Chrome trace_event file.
func writeTraces(s *bench.Suite, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range core.Schedulers() {
		rs, err := s.Runs(name)
		if err != nil {
			return err
		}
		traces := make([]*obs.Trace, 0, len(rs))
		for _, r := range rs {
			if r.Trace != nil {
				traces = append(traces, r.Trace)
			}
		}
		path := filepath.Join(dir, string(name)+".trace.json")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := obs.WriteChromeTrace(f, traces); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace for %s (%d loops) written to %s\n", name, len(traces), path)
	}
	return nil
}

// resolveMachine turns the -machine argument into a description: empty
// means the paper machine (nil lets each harness default), a path-like
// argument is loaded as a spec document, anything else must be a
// registered name. File-loaded machines are registered so every part
// of the harness can find them by name.
func resolveMachine(arg string) *machine.Desc {
	if arg == "" {
		return nil
	}
	if m, ok := machine.Lookup(arg); ok {
		return m
	}
	if strings.ContainsAny(arg, "/\\") || strings.HasSuffix(arg, ".json") {
		m, err := machine.LoadFile(arg)
		if err != nil {
			fatalf("%v", err)
		}
		machine.Register(m)
		return m
	}
	fatalf("unknown machine %q (registered: %v; or pass a spec file)", arg, machine.Names())
	return nil
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lsms-bench: "+format+"\n", args...)
	os.Exit(1)
}
