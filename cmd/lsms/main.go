// Command lsms compiles mini-FORTRAN DO loops and modulo schedules them
// with the paper's lifetime-sensitive bidirectional slack scheduler (or
// any of the baselines), printing the loop IR, the II lower bounds, the
// schedule, its register pressure against the MinAvg bound, and the
// generated rotating-register kernel.
//
// Usage:
//
//	lsms [-scheduler slack|slack-unidirectional|cydrome|list|exact]
//	     [-machine <registered name>|path/to/spec.json]
//	     [-dump ir,sched,kernel,pressure]
//	     [-trace[=text|chrome]] [-traceout lsms-trace.json]
//	     [-deadline 0] [-degrade] file.f
//
// -trace (or -trace=text) prints the scheduler's per-iteration decision
// trace before each loop's report. -trace=chrome instead records each
// loop's compile-pipeline span trace and writes one Chrome trace_event
// document to -traceout — load it in Perfetto or chrome://tracing to
// see where the compile time went.
//
// -machine accepts any registered target name (see `lsmsd`'s GET
// /v1/machines, or the built-in family: cydra, shortmem, longops,
// pipediv, cluster2, simdwide, cgra4) or the path of a declarative
// machine.Spec JSON document — any argument with a path separator or a
// .json suffix is loaded as a file.
//
// With -emit json, lsms does not schedule: it prints each eligible
// loop's canonical wire-format compile request (lsms-wire/2) as one
// JSON line on stdout — ready to POST to lsmsd's /v1/compile — and the
// loop's content hash (the service's cache key) on stderr. For a
// file-loaded machine the request embeds the spec, so a server that
// has never heard of the target can still compile for it.
//
// Exit codes map the typed compilation errors so scripts can tell the
// failure modes apart:
//
//	0 — every eligible loop was scheduled (possibly degraded);
//	1 — generic failure (I/O, frontend, internal error);
//	2 — the -scheduler name has no registration (core.ErrUnknownScheduler);
//	3 — some loop was infeasible: the II ceiling was exhausted
//	    (sched.ErrInfeasible);
//	4 — some loop exhausted its -deadline budget without -degrade
//	    rescuing it (sched.ErrBudgetExhausted).
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/frontend"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/viz"
	"repro/internal/wire"
)

// The documented exit codes.
const (
	exitOK         = 0
	exitGeneric    = 1
	exitUnknown    = 2
	exitInfeasible = 3
	exitBudget     = 4
)

// traceFlag is the -trace mode: "" (off), "text" (the per-iteration
// decision trace), or "chrome" (trace_event spans to -traceout). It is
// boolean-shaped so the historical bare "-trace" keeps meaning text.
type traceFlag struct{ mode string }

func (f *traceFlag) String() string { return f.mode }

func (f *traceFlag) IsBoolFlag() bool { return true }

func (f *traceFlag) Set(s string) error {
	switch s {
	case "true":
		f.mode = "text"
	case "false":
		f.mode = ""
	case "text", "chrome":
		f.mode = s
	default:
		return fmt.Errorf("unknown trace mode %q (supported: text, chrome)", s)
	}
	return nil
}

func main() {
	schedName := flag.String("scheduler", "slack", "scheduling policy: slack, slack-unidirectional, cydrome, list, exact")
	machName := flag.String("machine", machine.PaperMachine, "target machine: a registered name or a spec file (JSON)")
	dump := flag.String("dump", "sched,pressure", "comma-separated: ir, sched, mrt, gantt, lifetimes, kernel, pressure")
	verify := flag.Bool("verify", false, "execute the generated kernel on the VLIW simulator against the interpreter (auto-generated inputs)")
	par := flag.Int("parallel", 0, "compile the file's loops on this many workers (0 = GOMAXPROCS, 1 = sequential); output order is unchanged")
	var trace traceFlag
	flag.Var(&trace, "trace", `trace mode: "text" prints the per-iteration scheduler trace, "chrome" writes pipeline spans to -traceout`)
	traceout := flag.String("traceout", "lsms-trace.json", "Chrome trace_event output path for -trace=chrome")
	deadline := flag.Duration("deadline", 0, "per-loop scheduling deadline (0 = unbudgeted)")
	degrade := flag.Bool("degrade", false, "fall back to the list scheduler when a loop exhausts its -deadline")
	emit := flag.String("emit", "", `emit "json": print each eligible loop's canonical wire request instead of scheduling`)
	flag.Parse()

	// A registered name resolves through the registry; a path-like
	// argument loads a declarative spec document. File-loaded machines
	// are deliberately NOT registered: wire.NewRequest then embeds the
	// spec in emitted requests, so -emit json output is self-contained.
	m, ok := machine.Lookup(*machName)
	if !ok {
		if strings.ContainsAny(*machName, "/\\") || strings.HasSuffix(*machName, ".json") {
			var err error
			if m, err = machine.LoadFile(*machName); err != nil {
				fatalf("%v", err)
			}
		} else {
			fatalf("unknown machine %q (registered: %v; or pass a spec file)", *machName, machine.Names())
		}
	}

	var src []byte
	var err error
	switch flag.NArg() {
	case 0:
		src, err = io.ReadAll(os.Stdin)
	case 1:
		src, err = os.ReadFile(flag.Arg(0))
	default:
		fatalf("usage: lsms [flags] [file.f]")
	}
	if err != nil {
		fatalf("reading source: %v", err)
	}

	unit, loops, err := frontend.Compile(string(src), m)
	if err != nil {
		fatalf("compile: %v", err)
	}

	if *emit != "" {
		if *emit != "json" {
			fatalf("unknown -emit format %q (supported: json)", *emit)
		}
		os.Exit(emitWire(loops, *schedName, *deadline, *degrade))
	}

	fmt.Printf("subroutine %s: %d innermost loop(s)\n", unit.Prog.Name, len(loops))

	wants := map[string]bool{}
	for _, d := range strings.Split(*dump, ",") {
		wants[strings.TrimSpace(d)] = true
	}

	// Compile every eligible loop up front — concurrently when -parallel
	// allows — then render the reports in source order. Each loop gets
	// its own trace buffer so parallel compilation cannot interleave the
	// event streams.
	compiled := make([]*core.Compiled, len(loops))
	cerrs := make([]error, len(loops))
	traces := make([]bytes.Buffer, len(loops))
	spans := make([]*obs.Trace, len(loops))
	compileAll(loops, *par, func(i int) {
		if loops[i].Ineligible != nil {
			return
		}
		opt := core.Options{
			Scheduler: core.SchedulerName(*schedName),
			Config:    sched.Config{Budget: sched.Budget{Deadline: *deadline}},
			Degrade:   *degrade,
		}
		if trace.mode == "text" {
			opt.Config.Observer = sched.TextObserver(&traces[i])
		}
		ctx := context.Background()
		if trace.mode == "chrome" {
			name := fmt.Sprintf("loop-%d", i+1)
			spans[i] = obs.NewTrace(name, name)
			ctx = obs.WithTrace(ctx, spans[i])
		}
		compiled[i], cerrs[i] = core.CompileContext(ctx, loops[i].Loop, opt)
		if spans[i] != nil {
			spans[i].Finish(compileOutcome(compiled[i], cerrs[i]))
		}
	})

	exit := exitOK
	worse := func(code int) {
		if code > exit {
			exit = code
		}
	}
	for i, cl := range loops {
		fmt.Printf("\n=== loop %d (line %d) ===\n", i+1, cl.Do.Pos())
		if cl.Ineligible != nil {
			fmt.Printf("not modulo scheduled: %v\n", cl.Ineligible)
			continue
		}
		if wants["ir"] {
			fmt.Print(cl.Loop.String())
		}
		if trace.mode == "text" && traces[i].Len() > 0 {
			os.Stdout.Write(traces[i].Bytes())
		}
		c, err := compiled[i], cerrs[i]
		if err != nil {
			var be *sched.BudgetError
			switch {
			case errors.Is(err, core.ErrUnknownScheduler):
				fmt.Fprintf(os.Stderr, "lsms: %v\n", err)
				os.Exit(exitUnknown)
			case errors.As(err, &be):
				fmt.Printf("scheduler %s exhausted its budget (%s) at II=%d (MII %d) after %d central iteration(s)\n",
					*schedName, be.Reason, be.LastII, be.MII, be.Stats.CentralIters)
				worse(exitBudget)
				continue
			case errors.Is(err, sched.ErrInfeasible):
				// Fall through: the partial result carries the give-up
				// evidence the report below prints.
			default:
				fatalf("scheduling: %v", err)
			}
		}
		b := c.Result.Bounds
		fmt.Printf("bounds: ResMII=%d RecMII=%d MII=%d\n", b.ResMII, b.RecMII, b.MII)
		if !c.OK() {
			fmt.Printf("scheduler %s gave up (last II attempted: %d)\n", *schedName, c.Result.FailedII)
			worse(exitInfeasible)
			continue
		}
		if c.Degraded {
			fmt.Printf("budget exhausted (%s); degraded to the list scheduler\n", c.BudgetErr.Reason)
		}
		s := c.Result.Schedule
		fmt.Printf("scheduled at II=%d (%s), length %d, %d stages\n",
			s.II, optimality(s.II, b.MII), s.Length(), s.Stages())
		if wants["sched"] {
			fmt.Print(s.String())
		}
		if wants["mrt"] {
			fmt.Print(viz.MRT(cl.Loop, s))
		}
		if wants["gantt"] {
			fmt.Print(viz.Gantt(cl.Loop, s))
		}
		if wants["lifetimes"] {
			fmt.Print(viz.Lifetimes(cl.Loop, s))
		}
		if wants["pressure"] {
			fmt.Printf("pressure: MaxLive=%d MinAvg=%d (gap %d), GPRs=%d, ICR=%d\n",
				c.RR.MaxLive, c.MinAvg, c.RR.MaxLive-c.MinAvg, c.GPRs, c.ICR)
		}
		if wants["kernel"] && c.Kernel != nil {
			fmt.Print(c.Kernel.String())
		}
		st := c.Result.Stats
		fmt.Printf("effort: %d II attempt(s), %d central iterations, %d forces, %d ejections, %v\n",
			st.IIAttempts, st.CentralIters, st.Forces, st.Ejections, st.Elapsed)
		if *verify {
			env, _, trips, err := cl.BuildEnv(loopgen.AutoBinding(cl))
			if err != nil {
				fmt.Printf("verify: cannot build an environment: %v\n", err)
				continue
			}
			if trips > 64 {
				trips = 64
			}
			if err := core.VerifyExecution(c, env, trips); err != nil {
				fatalf("verification FAILED: %v", err)
			}
			fmt.Printf("verify: %d iterations on the VLIW simulator match the interpreter\n", trips)
		}
	}
	if trace.mode == "chrome" {
		kept := make([]*obs.Trace, 0, len(spans))
		for _, tr := range spans {
			if tr != nil {
				kept = append(kept, tr)
			}
		}
		f, err := os.Create(*traceout)
		if err != nil {
			fatalf("trace output: %v", err)
		}
		if err := obs.WriteChromeTrace(f, kept); err != nil {
			fatalf("writing trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("writing trace: %v", err)
		}
		fmt.Printf("\nchrome trace (%d loop(s)) written to %s\n", len(kept), *traceout)
	}
	if exit != exitOK {
		os.Exit(exit)
	}
}

// compileOutcome names a finished compilation for its trace, matching
// the vocabulary the lsmsd flight recorder uses.
func compileOutcome(c *core.Compiled, err error) string {
	var be *sched.BudgetError
	switch {
	case errors.As(err, &be):
		if be.Reason != "" {
			return be.Reason
		}
		return obs.OutcomeBudgetExhausted
	case errors.Is(err, sched.ErrInfeasible):
		return obs.OutcomeInfeasible
	case err != nil:
		return obs.OutcomeError
	case c != nil && c.Degraded:
		return obs.OutcomeDegraded
	case c != nil && !c.OK():
		return obs.OutcomeInfeasible
	}
	return obs.OutcomeOK
}

// emitWire prints each eligible loop's canonical wire request as one
// JSON line on stdout and its content hash on stderr. Ineligible loops
// are reported on stderr and degrade the exit code to exitGeneric; the
// JSON stream stays clean either way.
func emitWire(loops []*frontend.CompiledLoop, scheduler string, deadline time.Duration, degrade bool) int {
	opt := wire.OptionsFrom(sched.Config{Budget: sched.Budget{Deadline: deadline}}, degrade)
	code := exitOK
	for i, cl := range loops {
		if cl.Ineligible != nil {
			fmt.Fprintf(os.Stderr, "lsms: loop %d (line %d) not modulo-schedulable: %v\n", i+1, cl.Do.Pos(), cl.Ineligible)
			code = exitGeneric
			continue
		}
		req, err := wire.NewRequest(cl.Loop, scheduler, opt)
		if err != nil {
			fatalf("loop %d: %v", i+1, err)
		}
		b, err := req.Canonical()
		if err != nil {
			fatalf("loop %d: %v", i+1, err)
		}
		hash, err := req.Hash()
		if err != nil {
			fatalf("loop %d: %v", i+1, err)
		}
		os.Stdout.Write(append(b, '\n'))
		fmt.Fprintf(os.Stderr, "lsms: loop %d (line %d): %s\n", i+1, cl.Do.Pos(), hash)
	}
	return code
}

// compileAll runs fn(i) for every loop index over a bounded worker pool.
func compileAll(loops []*frontend.CompiledLoop, par int, fn func(i int)) {
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(loops) {
		par = len(loops)
	}
	if par <= 1 {
		for i := range loops {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < par; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(loops) {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

func optimality(ii, mii int) string {
	if ii == mii {
		return "optimal: II = MII"
	}
	return fmt.Sprintf("MII + %d", ii-mii)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lsms: "+format+"\n", args...)
	os.Exit(1)
}
