// Command lsms compiles mini-FORTRAN DO loops and modulo schedules them
// with the paper's lifetime-sensitive bidirectional slack scheduler (or
// any of the baselines), printing the loop IR, the II lower bounds, the
// schedule, its register pressure against the MinAvg bound, and the
// generated rotating-register kernel.
//
// Usage:
//
//	lsms [-scheduler slack|slack-unidirectional|cydrome|list]
//	     [-machine cydra|shortmem|longops|pipediv]
//	     [-dump ir,sched,kernel,pressure] file.f
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/frontend"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/viz"
)

func main() {
	schedName := flag.String("scheduler", "slack", "scheduling policy: slack, slack-unidirectional, cydrome, list")
	machName := flag.String("machine", "cydra", "machine model: cydra, shortmem, longops, pipediv")
	dump := flag.String("dump", "sched,pressure", "comma-separated: ir, sched, mrt, gantt, lifetimes, kernel, pressure")
	verify := flag.Bool("verify", false, "execute the generated kernel on the VLIW simulator against the interpreter (auto-generated inputs)")
	par := flag.Int("parallel", 0, "compile the file's loops on this many workers (0 = GOMAXPROCS, 1 = sequential); output order is unchanged")
	flag.Parse()

	var m *machine.Desc
	for _, cand := range machine.Variants() {
		if cand.Name == *machName {
			m = cand
		}
	}
	if m == nil {
		fatalf("unknown machine %q", *machName)
	}

	var src []byte
	var err error
	switch flag.NArg() {
	case 0:
		src, err = io.ReadAll(os.Stdin)
	case 1:
		src, err = os.ReadFile(flag.Arg(0))
	default:
		fatalf("usage: lsms [flags] [file.f]")
	}
	if err != nil {
		fatalf("reading source: %v", err)
	}

	unit, loops, err := frontend.Compile(string(src), m)
	if err != nil {
		fatalf("compile: %v", err)
	}
	fmt.Printf("subroutine %s: %d innermost loop(s)\n", unit.Prog.Name, len(loops))

	wants := map[string]bool{}
	for _, d := range strings.Split(*dump, ",") {
		wants[strings.TrimSpace(d)] = true
	}

	// Compile every eligible loop up front — concurrently when -parallel
	// allows — then render the reports in source order.
	compiled := make([]*core.Compiled, len(loops))
	cerrs := make([]error, len(loops))
	compileAll(loops, *par, func(i int) {
		if loops[i].Ineligible != nil {
			return
		}
		compiled[i], cerrs[i] = core.Compile(loops[i].Loop, core.Options{Scheduler: core.SchedulerName(*schedName)})
	})

	for i, cl := range loops {
		fmt.Printf("\n=== loop %d (line %d) ===\n", i+1, cl.Do.Pos())
		if cl.Ineligible != nil {
			fmt.Printf("not modulo scheduled: %v\n", cl.Ineligible)
			continue
		}
		if wants["ir"] {
			fmt.Print(cl.Loop.String())
		}
		c, err := compiled[i], cerrs[i]
		if err != nil {
			fatalf("scheduling: %v", err)
		}
		b := c.Result.Bounds
		fmt.Printf("bounds: ResMII=%d RecMII=%d MII=%d\n", b.ResMII, b.RecMII, b.MII)
		if !c.OK() {
			fmt.Printf("scheduler %s gave up (last II attempted: %d)\n", *schedName, c.Result.FailedII)
			continue
		}
		s := c.Result.Schedule
		fmt.Printf("scheduled at II=%d (%s), length %d, %d stages\n",
			s.II, optimality(s.II, b.MII), s.Length(), s.Stages())
		if wants["sched"] {
			fmt.Print(s.String())
		}
		if wants["mrt"] {
			fmt.Print(viz.MRT(cl.Loop, s))
		}
		if wants["gantt"] {
			fmt.Print(viz.Gantt(cl.Loop, s))
		}
		if wants["lifetimes"] {
			fmt.Print(viz.Lifetimes(cl.Loop, s))
		}
		if wants["pressure"] {
			fmt.Printf("pressure: MaxLive=%d MinAvg=%d (gap %d), GPRs=%d, ICR=%d\n",
				c.RR.MaxLive, c.MinAvg, c.RR.MaxLive-c.MinAvg, c.GPRs, c.ICR)
		}
		if wants["kernel"] && c.Kernel != nil {
			fmt.Print(c.Kernel.String())
		}
		st := c.Result.Stats
		fmt.Printf("effort: %d II attempt(s), %d central iterations, %d forces, %d ejections, %v\n",
			st.IIAttempts, st.CentralIters, st.Forces, st.Ejections, st.Elapsed)
		if *verify {
			env, _, trips, err := cl.BuildEnv(loopgen.AutoBinding(cl))
			if err != nil {
				fmt.Printf("verify: cannot build an environment: %v\n", err)
				continue
			}
			if trips > 64 {
				trips = 64
			}
			if err := core.VerifyExecution(c, env, trips); err != nil {
				fatalf("verification FAILED: %v", err)
			}
			fmt.Printf("verify: %d iterations on the VLIW simulator match the interpreter\n", trips)
		}
	}
}

// compileAll runs fn(i) for every loop index over a bounded worker pool.
func compileAll(loops []*frontend.CompiledLoop, par int, fn func(i int)) {
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(loops) {
		par = len(loops)
	}
	if par <= 1 {
		for i := range loops {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < par; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(loops) {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

func optimality(ii, mii int) string {
	if ii == mii {
		return "optimal: II = MII"
	}
	return fmt.Sprintf("MII + %d", ii-mii)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lsms: "+format+"\n", args...)
	os.Exit(1)
}
