package regalloc

import (
	"math/rand"
	"testing"

	"repro/internal/fixture"
	"repro/internal/ir"
	"repro/internal/lifetime"
	"repro/internal/machine"
	"repro/internal/sched"
)

func strategies() []Strategy { return []Strategy{FirstFit, EndFit, BestFit} }
func orders() []Order        { return []Order{StartTime, Adjacency} }

// The paper's naive allocation of the sample loop (Figure 3) uses six
// rotating registers for x and y; the optimal uses four. Our allocator
// works on the full value set, but for the two-value core at the paper's
// placement it must land in [4, 6].
func TestSampleCoreAllocation(t *testing.T) {
	l := fixture.SampleCore(machine.Cydra())
	s := ir.NewSchedule(2, len(l.Ops))
	s.Time[0], s.Time[1] = 0, 1
	ranges := lifetime.Ranges(l, s, ir.RR)
	for _, strat := range strategies() {
		for _, ord := range orders() {
			a := Allocate(ranges, 2, strat, ord)
			if err := Verify(ranges, 2, a); err != nil {
				t.Errorf("%v/%v: %v", strat, ord, err)
			}
			if a.N < 4 || a.N > 6 {
				t.Errorf("%v/%v: N = %d, want 4..6 (paper: naive 6, optimal 4)", strat, ord, a.N)
			}
		}
	}
}

// Every strategy must produce verifiably sound allocations on scheduled
// fixture loops, within a small delta of MaxLive — the Rau et al. result
// the paper relies on (footnote 4: wands-only end-fit with adjacency
// ordering never needed more than MaxLive+1).
func TestFixtureAllocationsNearMaxLive(t *testing.T) {
	m := machine.Cydra()
	for _, l := range fixture.All(m) {
		res, err := sched.Slack(sched.Config{}).Schedule(l)
		if err != nil || !res.OK() {
			t.Fatalf("%s: scheduling failed", l.Name)
		}
		ranges := lifetime.Ranges(l, res.Schedule, ir.RR)
		maxlive := LowerBound(ranges, res.Schedule.II)
		for _, strat := range strategies() {
			for _, ord := range orders() {
				a := Allocate(ranges, res.Schedule.II, strat, ord)
				if err := Verify(ranges, res.Schedule.II, a); err != nil {
					t.Errorf("%s %v/%v: %v", l.Name, strat, ord, err)
				}
				// The primary allocator (first-fit, start-time order,
				// used by the code generator) must stay within the +5
				// delta Rau et al. report for their heuristics; the
				// alternative strategies are only compared, not relied
				// on, and the benchmark harness reports their deltas.
				if strat == FirstFit && ord == StartTime && a.N > maxlive+5 {
					t.Errorf("%s %v/%v: N = %d, MaxLive-bound = %d (delta > 5)",
						l.Name, strat, ord, a.N, maxlive)
				}
			}
		}
	}
}

// Property: on random interval sets the greedy allocation always
// verifies, and N never exceeds the trivial bound (one register per
// value instance in flight).
func TestRandomAllocationsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 80; trial++ {
		ii := 1 + rng.Intn(8)
		nv := 1 + rng.Intn(10)
		ranges := make([]lifetime.Range, nv)
		generous := 0
		for i := range ranges {
			start := rng.Intn(3 * ii)
			length := 1 + rng.Intn(5*ii)
			ranges[i] = lifetime.Range{Val: ir.ValueID(i), Start: start, End: start + length}
			// Each already-placed value can forbid at most span_v +
			// span_w + 2 residues against the next one, so twice the
			// total span plus a couple per value always suffices.
			generous += 2*((length+ii-1)/ii) + 2
		}
		strat := strategies()[rng.Intn(3)]
		ord := orders()[rng.Intn(2)]
		a := Allocate(ranges, ii, strat, ord)
		if err := Verify(ranges, ii, a); err != nil {
			t.Fatalf("trial %d (%v/%v): %v", trial, strat, ord, err)
		}
		if a.N > generous {
			t.Fatalf("trial %d (%v/%v): N = %d exceeds generous bound %d", trial, strat, ord, a.N, generous)
		}
		if a.N < LowerBound(ranges, ii) {
			t.Fatalf("trial %d: N = %d below lower bound", trial, a.N)
		}
	}
}

// Self-overlap: a single value living longer than N·II cannot fit; the
// allocator must grow the file to ⌈len/II⌉.
func TestLongLifetimeSpansRegisters(t *testing.T) {
	ranges := []lifetime.Range{{Val: 0, Start: 0, End: 47}}
	a := Allocate(ranges, 10, FirstFit, StartTime)
	if a.N != 5 {
		t.Errorf("N = %d, want ⌈47/10⌉ = 5", a.N)
	}
	if err := Verify(ranges, 10, a); err != nil {
		t.Error(err)
	}
}

// Verify must reject a deliberately broken allocation.
func TestVerifyCatchesCollision(t *testing.T) {
	ranges := []lifetime.Range{
		{Val: 0, Start: 0, End: 4},
		{Val: 1, Start: 0, End: 4},
	}
	bad := Allocation{N: 1, Offset: map[ir.ValueID]int{0: 0, 1: 0}}
	if err := Verify(ranges, 4, bad); err == nil {
		t.Error("two identical lifetimes in one register must collide")
	}
}

func TestZeroValues(t *testing.T) {
	a := Allocate(nil, 4, FirstFit, StartTime)
	if a.N != 0 {
		t.Errorf("empty allocation should use 0 registers, got %d", a.N)
	}
	if err := Verify(nil, 4, a); err != nil {
		t.Error(err)
	}
}
