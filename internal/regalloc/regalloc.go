// Package regalloc allocates rotating registers for modulo-scheduled
// loops (Section 2.3 and the allocation study of Rau, Lee, Tirumalai and
// Schlansker, PLDI 1992, whose headline result the paper leans on: good
// heuristics almost always reach the MaxLive lower bound).
//
// In a rotating file of N registers, the instance of value v produced by
// iteration i occupies physical register (r_v − i) mod N — the iteration
// control pointer decrements every II cycles — and is live over
// [s_v + i·II, e_v + i·II). Two values v and w with specifier offsets
// r_v, r_w collide exactly when
//
//	(r_w − r_v) mod N ∈ { m mod N : s_v − e_w < m·II < e_v − s_w },
//
// so allocation is a cyclic-residue packing problem. The allocator
// assigns offsets greedily under a configurable strategy and value
// ordering, growing N from the lower bound
// max(MaxLive, max_v ⌈len(v)/II⌉) until everything fits; Verify
// re-checks the result by brute-force simulation.
package regalloc

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/lifetime"
	"repro/internal/obs"
)

// Strategy selects how a feasible offset is chosen among candidates.
type Strategy int

const (
	// FirstFit takes the smallest feasible offset.
	FirstFit Strategy = iota
	// EndFit takes the feasible offset closest (cyclically, upward) to
	// where the previously allocated value's registers end, packing
	// wands end to end as in Rau et al.'s end-fit.
	EndFit
	// BestFit takes the feasible offset that, after placement, leaves
	// the fewest feasible offsets destroyed for the remaining values —
	// approximated by counting newly forbidden residues.
	BestFit
)

func (s Strategy) String() string {
	switch s {
	case FirstFit:
		return "first-fit"
	case EndFit:
		return "end-fit"
	case BestFit:
		return "best-fit"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Order selects the order values are allocated in.
type Order int

const (
	// StartTime allocates values in increasing lifetime start order
	// (Rau et al.'s start-time ordering).
	StartTime Order = iota
	// Adjacency allocates values in increasing start order but breaks
	// ties toward the value whose start abuts the previous end
	// (adjacency ordering).
	Adjacency
)

func (o Order) String() string {
	if o == Adjacency {
		return "adjacency"
	}
	return "start-time"
}

// Allocation maps each value to its rotating-register offset.
type Allocation struct {
	N      int // rotating registers consumed
	Offset map[ir.ValueID]int
}

// LowerBound returns the schedule-dependent lower bound on the rotating
// registers needed: MaxLive, but never less than any single value's
// ⌈lifetime/II⌉ span.
func LowerBound(ranges []lifetime.Range, ii int) int {
	vec := lifetime.LiveVector(ranges, ii)
	n := 0
	for _, c := range vec {
		if c > n {
			n = c
		}
	}
	for _, r := range ranges {
		if span := (r.Len() + ii - 1) / ii; span > n {
			n = span
		}
	}
	return n
}

// Allocate assigns offsets using the given strategy and ordering, trying
// file sizes from the lower bound upward. It returns the first size at
// which the greedy pass succeeds. Allocate panics only on nonsensical
// input (ii < 1); any range set gets some allocation since N can grow.
func Allocate(ranges []lifetime.Range, ii int, strat Strategy, order Order) Allocation {
	if ii < 1 {
		panic("regalloc: II must be positive")
	}
	if len(ranges) == 0 {
		return Allocation{N: 0, Offset: map[ir.ValueID]int{}}
	}
	ordered := orderValues(ranges, order)
	lo := LowerBound(ranges, ii)
	if lo < 1 {
		lo = 1
	}
	for n := lo; ; n++ {
		if alloc, ok := tryFit(ordered, ii, n, strat); ok {
			alloc.N = n
			return alloc
		}
	}
}

// AllocateContext is Allocate under a context: when the context carries
// an obs.Trace it records a "regalloc" span with the value count, the
// strategy, and the resulting file size.
func AllocateContext(ctx context.Context, ranges []lifetime.Range, ii int, strat Strategy, order Order) Allocation {
	sp := obs.FromContext(ctx).Start("regalloc").
		Int("values", int64(len(ranges))).
		Int("ii", int64(ii)).
		Str("strategy", strat.String())
	a := Allocate(ranges, ii, strat, order)
	sp.Int("registers", int64(a.N)).End(obs.OutcomeOK)
	return a
}

func orderValues(ranges []lifetime.Range, order Order) []lifetime.Range {
	out := append([]lifetime.Range(nil), ranges...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Val < out[j].Val
	})
	if order == Adjacency {
		// Greedy chaining: repeatedly pick the unplaced value whose start
		// is nearest at-or-after the previous pick's end.
		rem := out
		chained := make([]lifetime.Range, 0, len(rem))
		cur := rem[0]
		chained = append(chained, cur)
		rem = rem[1:]
		for len(rem) > 0 {
			best, bestGap := -1, 0
			for i, r := range rem {
				gap := r.Start - cur.End
				if gap < 0 {
					gap += 1 << 20 // prefer starts after the current end
				}
				if best == -1 || gap < bestGap {
					best, bestGap = i, gap
				}
			}
			cur = rem[best]
			chained = append(chained, cur)
			rem = append(rem[:best], rem[best+1:]...)
		}
		out = chained
	}
	return out
}

// tryFit attempts a greedy assignment into n registers.
func tryFit(ordered []lifetime.Range, ii, n int, strat Strategy) (Allocation, bool) {
	alloc := Allocation{Offset: make(map[ir.ValueID]int, len(ordered))}
	placed := make([]lifetime.Range, 0, len(ordered))
	prevEnd := 0
	for _, v := range ordered {
		var feasible []int
		for r := 0; r < n; r++ {
			if fits(v, r, placed, alloc.Offset, ii, n) {
				feasible = append(feasible, r)
			}
		}
		if len(feasible) == 0 {
			return Allocation{}, false
		}
		var pick int
		switch strat {
		case FirstFit:
			pick = feasible[0]
		case EndFit:
			// Closest at-or-above the previous wand's ending offset.
			pick = feasible[0]
			bestDist := cyclicUp(prevEnd, feasible[0], n)
			for _, r := range feasible[1:] {
				if d := cyclicUp(prevEnd, r, n); d < bestDist {
					pick, bestDist = r, d
				}
			}
		case BestFit:
			// Most-constrained placement: choose the offset that leaves
			// the fewest offsets open for a hypothetical copy of v —
			// i.e. pack v where it fits most snugly. Probing every
			// feasible offset is O(N²) per value; cap the candidate set
			// to keep large loops affordable.
			const bestFitCap = 24
			if len(feasible) > bestFitCap {
				feasible = feasible[:bestFitCap]
			}
			pick = feasible[0]
			bestCost := 1 << 30
			probe := v
			probe.Val = ir.ValueID(-1) // synthetic copy, distinct from v
			for _, r := range feasible {
				trial := append(placed[:len(placed):len(placed)], v)
				trialOff := alloc.Offset
				trialOff[v.Val] = r
				remaining := 0
				for q := 0; q < n; q++ {
					if fits(probe, q, trial, trialOff, ii, n) {
						remaining++
					}
				}
				delete(trialOff, v.Val)
				cost := remaining*n + cyclicUp(prevEnd, r, n)
				if cost < bestCost {
					pick, bestCost = r, cost
				}
			}
		}
		alloc.Offset[v.Val] = pick
		placed = append(placed, v)
		prevEnd = pick + (v.Len()+ii-1)/ii
	}
	return alloc, true
}

func cyclicUp(from, to, n int) int {
	d := (to - from) % n
	if d < 0 {
		d += n
	}
	return d
}

// fits reports whether offset r for v collides with any placed value, or
// with v's own later instances.
func fits(v lifetime.Range, r int, placed []lifetime.Range, off map[ir.ValueID]int, ii, n int) bool {
	// Self: instances i and i+kN share a register; they must not overlap.
	if n*ii < v.Len() {
		return false
	}
	for _, w := range placed {
		if w.Val == v.Val {
			continue
		}
		rw := off[w.Val]
		diff := (rw - r) % n
		if diff < 0 {
			diff += n
		}
		for _, m := range badResidues(v, w, ii, n) {
			if diff == m {
				return false
			}
		}
	}
	return true
}

// badResidues lists the residues (r_w − r_v) mod n that make v and w
// collide: all m with s_v − e_w < m·II < e_v − s_w, reduced mod n.
func badResidues(v, w lifetime.Range, ii, n int) []int {
	lo := floorDiv(v.Start-w.End, ii) + 1
	hi := ceilDiv(v.End-w.Start, ii) - 1
	var out []int
	seen := map[int]bool{}
	for m := lo; m <= hi; m++ {
		if m*ii <= v.Start-w.End || m*ii >= v.End-w.Start {
			continue
		}
		res := m % n
		if res < 0 {
			res += n
		}
		if !seen[res] {
			seen[res] = true
			out = append(out, res)
		}
	}
	return out
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func ceilDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) == (b < 0) {
		q++
	}
	return q
}

// Verify checks an allocation by brute force: it simulates enough
// iterations that every residue pattern repeats and checks that no
// physical register holds two live instances at once. It returns nil if
// the allocation is sound.
func Verify(ranges []lifetime.Range, ii int, alloc Allocation) error {
	if len(ranges) == 0 {
		return nil
	}
	n := alloc.N
	if n == 0 {
		return fmt.Errorf("regalloc: empty allocation for %d values", len(ranges))
	}
	maxEnd := 0
	for _, r := range ranges {
		if r.End > maxEnd {
			maxEnd = r.End
		}
	}
	spanIters := maxEnd/ii + 2
	iters := 2*n + 2*spanIters // covers all residue alignments
	type hold struct {
		val  ir.ValueID
		iter int
	}
	horizon := (iters + spanIters) * ii
	for t := 0; t < horizon; t++ {
		var perReg = make(map[int]hold)
		for _, r := range ranges {
			off, ok := alloc.Offset[r.Val]
			if !ok {
				return fmt.Errorf("regalloc: value %d not allocated", r.Val)
			}
			for i := 0; i <= iters; i++ {
				if t < r.Start+i*ii || t >= r.End+i*ii {
					continue
				}
				phys := (off - i) % n
				if phys < 0 {
					phys += n
				}
				if prev, busy := perReg[phys]; busy && !(prev.val == r.Val && prev.iter == i) {
					return fmt.Errorf("regalloc: collision at t=%d reg=%d: value %d iter %d vs value %d iter %d",
						t, phys, prev.val, prev.iter, r.Val, i)
				}
				perReg[phys] = hold{r.Val, i}
			}
		}
	}
	return nil
}
