package vliw

import (
	"testing"

	"repro/internal/codegen"
	"repro/internal/fixture"
	"repro/internal/interp"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/semantics"
)

// The MVE path must agree with both the interpreter and the rotating-
// register simulation on every runnable fixture — three independent
// executions of every schedule.
func TestMVEMatchesInterpreterAndRotating(t *testing.T) {
	m := machine.Cydra()
	for _, r := range fixture.Runnables(m) {
		res, err := sched.Slack(sched.Config{}).Schedule(r.Loop)
		if err != nil || !res.OK() {
			t.Fatalf("%s: scheduling failed", r.Loop.Name)
		}
		rot, err := codegen.Generate(r.Loop, res.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		mve, err := codegen.GenerateMVE(r.Loop, res.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		want, err := interp.Run(r.Loop, r.Env, r.Trips)
		if err != nil {
			t.Fatal(err)
		}
		gotRot, err := Run(rot, r.Env, r.Trips, Config{Paranoid: true})
		if err != nil {
			t.Fatalf("%s rotating: %v", r.Loop.Name, err)
		}
		gotMVE, err := RunMVE(mve, r.Env, r.Trips, Config{Paranoid: true})
		if err != nil {
			t.Fatalf("%s mve: %v", r.Loop.Name, err)
		}
		for i := range want.Mem {
			if !semantics.Equal(want.Mem[i], gotMVE.Mem[i]) {
				t.Fatalf("%s: mem[%d]: interp %+v mve %+v", r.Loop.Name, i, want.Mem[i], gotMVE.Mem[i])
			}
			if !semantics.Equal(gotRot.Mem[i], gotMVE.Mem[i]) {
				t.Fatalf("%s: mem[%d]: rotating %+v mve %+v", r.Loop.Name, i, gotRot.Mem[i], gotMVE.Mem[i])
			}
		}
		if want.Executed != gotMVE.Executed {
			t.Errorf("%s: executed %d vs %d", r.Loop.Name, gotMVE.Executed, want.Executed)
		}
		for v, w := range want.LiveOut {
			if g := gotMVE.LiveOut[v]; !semantics.Equal(w, g) {
				t.Errorf("%s: live-out %s: interp %+v mve %+v", r.Loop.Name, r.Loop.Value(v).Name, w, g)
			}
		}
	}
}

// Unroll factors: Figure 1's sample loop has values living > II (x and
// y need 3 registers each at II=2), so MVE must unroll; the unroll is
// the lcm of the per-value register counts.
func TestMVEUnrollFactor(t *testing.T) {
	m := machine.Cydra()
	l := fixture.Sample(m)
	res, err := sched.Slack(sched.Config{}).Schedule(l)
	if err != nil || !res.OK() {
		t.Fatal("scheduling failed")
	}
	k, err := codegen.GenerateMVE(l, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if k.Unroll < 2 {
		t.Errorf("unroll = %d; lifetimes exceeding II must force expansion", k.Unroll)
	}
	if k.TotalRegs < 4 {
		t.Errorf("static registers = %d, want at least the paper's optimal rotating count 4", k.TotalRegs)
	}
	// Code expansion is real: U·II words vs II for the rotating schema.
	if k.Unroll*k.II <= k.II {
		t.Error("MVE should expand the code")
	}
}

// Short trip counts through the MVE path (wrap-around of the unroll
// copies interacts with ramp-down squashing).
func TestMVEShortTrips(t *testing.T) {
	m := machine.Cydra()
	r := fixture.RunnableSample(m)
	res, err := sched.Slack(sched.Config{}).Schedule(r.Loop)
	if err != nil || !res.OK() {
		t.Fatal("scheduling failed")
	}
	k, err := codegen.GenerateMVE(r.Loop, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	for trips := 0; trips <= k.Stages+k.Unroll+1; trips++ {
		want, err := interp.Run(r.Loop, r.Env, trips)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunMVE(k, r.Env, trips, Config{Paranoid: true})
		if err != nil {
			t.Fatalf("trips=%d: %v", trips, err)
		}
		for i := range want.Mem {
			if !semantics.Equal(want.Mem[i], got.Mem[i]) {
				t.Fatalf("trips=%d: mem[%d] differs", trips, i)
			}
		}
	}
}
