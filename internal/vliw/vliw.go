// Package vliw is a cycle-accurate simulator for kernels produced by the
// code generator, modelling the paper's target machine (Section 2): VLIW
// issue, exact functional-unit latencies, the non-pipelined divider's
// reservation pattern, predicated execution, and rotating register files
// whose iteration control pointer decrements once per kernel pass.
//
// The simulator is the strongest validator in this repository: a
// schedule, allocation, or specifier bug shows up as a stale register
// read (caught immediately in paranoid mode, which is the default in
// tests) or as a memory/live-out mismatch against the sequential
// reference interpreter.
//
// Iteration control is idealized: instead of simulating brtop's counter
// arithmetic, the simulator turns the stage-σ predicate of kernel pass k
// on exactly when 0 ≤ k−σ < trips — precisely the predicate sequence
// brtop generates on the Cydra 5 (Section 2.3). Reads of instances from
// before iteration 0 are served from the environment's preheader state,
// standing in for the preheader's register initialization.
package vliw

import (
	"fmt"

	"repro/internal/codegen"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/rt"
	"repro/internal/semantics"
)

// Config tunes the simulation.
type Config struct {
	// Paranoid makes every rotating-register read verify that the
	// register holds exactly the value instance the dataflow expects;
	// a stale read (latency or allocation bug) fails fast. Default on
	// in all tests; turning it off simulates what the hardware would
	// actually do.
	Paranoid bool
	// MaxCycles caps the simulation; 0 derives a bound from the run.
	MaxCycles int
}

type cell struct {
	val    ir.Scalar
	tagVal ir.ValueID
	tagIt  int
	filled bool
}

type pendingReg struct {
	file ir.RegFile
	phys int
	val  ir.Scalar
	tagV ir.ValueID
	tagI int
}

type pendingMem struct {
	addr int64
	val  ir.Scalar
}

// Run executes trips iterations of the kernel and returns the outcome in
// the interpreter's result format for direct comparison.
func Run(k *codegen.Kernel, env *rt.Env, trips int, cfg Config) (*rt.Result, error) {
	if trips < 0 {
		return nil, fmt.Errorf("vliw: negative trip count")
	}
	mem := make(ir.Memory, len(env.Mem))
	copy(mem, env.Mem)

	rr := make([]cell, max(k.NRR, 1))
	icr := make([]cell, max(k.NICR, 1))
	fileOf := func(f ir.RegFile) []cell {
		if f == ir.ICR {
			return icr
		}
		return rr
	}

	passes := trips + k.Stages - 1
	if trips == 0 {
		passes = 0
	}
	maxLat := 0
	for _, op := range k.Loop.Ops {
		if lat := k.Loop.Mach.Latency(op.Opcode); lat > maxLat {
			maxLat = lat
		}
	}
	horizon := passes*k.II + maxLat + 1
	if cfg.MaxCycles > 0 && horizon > cfg.MaxCycles {
		return nil, fmt.Errorf("vliw: run needs %d cycles, cap is %d", horizon, cfg.MaxCycles)
	}

	regQ := make(map[int][]pendingReg)
	memQ := make(map[int][]pendingMem)
	// Structural-hazard watchdog: per functional-unit instance, the
	// cycle it frees up. A legal schedule never trips this.
	type fu struct {
		kind machine.FUKind
		inst int
	}
	busyUntil := map[fu]int{}

	res := &rt.Result{LiveOut: map[ir.ValueID]ir.Scalar{}}

	read := func(s codegen.Spec, stage, pass int) (ir.Scalar, error) {
		v := k.Loop.Value(s.Val)
		if s.File == ir.GPR {
			if v.ConstValid {
				return v.Const, nil
			}
			sc, ok := env.GPR[s.Val]
			if !ok {
				return ir.Scalar{}, fmt.Errorf("vliw: no live-in for invariant %s", v.Name)
			}
			return sc, nil
		}
		iter := pass - stage
		want := iter - s.Omega
		if want < 0 {
			// Preheader instance: served from the environment, standing
			// in for preheader register initialization.
			return env.Init[rt.InstKey{Val: s.Val, Iter: want}], nil
		}
		file := fileOf(s.File)
		phys := mod(s.Off-pass, len(file))
		c := file[phys]
		if cfg.Paranoid {
			if !c.filled {
				return ir.Scalar{}, fmt.Errorf("vliw: read of never-written %v register %d (value %s, want iter %d)", s.File, phys, v.Name, want)
			}
			if c.tagVal != s.Val || c.tagIt != want {
				return ir.Scalar{}, fmt.Errorf("vliw: stale read: %v[%d] holds value %d iter %d, want value %d iter %d",
					s.File, phys, c.tagVal, c.tagIt, s.Val, want)
			}
		}
		return c.val, nil
	}

	for cyc := 0; cyc < horizon; cyc++ {
		// Writebacks first: results and stores become visible at the
		// start of the cycle they complete in.
		for _, w := range regQ[cyc] {
			f := fileOf(w.file)
			f[w.phys] = cell{val: w.val, tagVal: w.tagV, tagIt: w.tagI, filled: true}
		}
		delete(regQ, cyc)
		for _, w := range memQ[cyc] {
			if err := mem.Store(w.addr, w.val); err != nil {
				return nil, fmt.Errorf("vliw: cycle %d: %w", cyc, err)
			}
		}
		delete(memQ, cyc)

		if cyc >= passes*k.II {
			continue
		}
		pass := cyc / k.II
		phi := cyc % k.II
		for _, in := range k.Words[phi] {
			iter := pass - in.Stage
			if iter < 0 || iter >= trips {
				continue // stage predicate off
			}
			if in.Op.Opcode == machine.BrTop {
				continue // iteration control is idealized
			}
			info := k.Loop.Mach.Info(in.Op.Opcode)
			unit := fu{info.Kind, in.Op.FU}
			if until, ok := busyUntil[unit]; ok && cyc < until {
				return nil, fmt.Errorf("vliw: structural hazard: %v.%d busy at cycle %d (op%d)",
					info.Kind, in.Op.FU, cyc, in.Op.ID)
			}
			busyUntil[unit] = cyc + info.Busy

			if in.Pred != nil {
				p, err := read(*in.Pred, in.Stage, pass)
				if err != nil {
					return nil, err
				}
				if p.B == in.Op.PredNeg {
					continue // squashed to a no-op
				}
			}
			res.Executed++

			args := make([]ir.Scalar, len(in.Srcs))
			for j, s := range in.Srcs {
				a, err := read(s, in.Stage, pass)
				if err != nil {
					return nil, fmt.Errorf("vliw: cycle %d op%d: %w", cyc, in.Op.ID, err)
				}
				args[j] = a
			}

			switch in.Op.Opcode {
			case machine.Load:
				v, err := mem.Load(args[0].I)
				if err != nil {
					return nil, fmt.Errorf("vliw: cycle %d op%d: %w", cyc, in.Op.ID, err)
				}
				scheduleWrite(regQ, cyc+info.Latency, in, iter, v, k)
			case machine.Store:
				memQ[cyc+info.Latency] = append(memQ[cyc+info.Latency], pendingMem{addr: args[0].I, val: args[1]})
			default:
				v, err := semantics.Eval(in.Op.Opcode, args)
				if err != nil {
					return nil, err
				}
				if in.Dst != nil {
					scheduleWrite(regQ, cyc+info.Latency, in, iter, v, k)
				}
			}
		}
	}

	res.Mem = mem
	for _, v := range k.Loop.Values {
		if !v.LiveOut || !v.IsVariant() || trips == 0 {
			continue
		}
		alloc := &k.RR
		file := rr
		if v.File == ir.ICR {
			alloc = &k.ICR
			file = icr
		}
		off, ok := alloc.Offset[v.ID]
		if !ok {
			return nil, fmt.Errorf("vliw: live-out %s has no allocation", v.Name)
		}
		phys := mod(off-(trips-1), len(file))
		c := file[phys]
		if cfg.Paranoid && (!c.filled || c.tagVal != v.ID || c.tagIt != trips-1) {
			return nil, fmt.Errorf("vliw: live-out %s: register %d holds value %d iter %d, want iter %d",
				v.Name, phys, c.tagVal, c.tagIt, trips-1)
		}
		res.LiveOut[v.ID] = c.val
	}
	return res, nil
}

func scheduleWrite(q map[int][]pendingReg, at int, in *codegen.Inst, iter int, v ir.Scalar, k *codegen.Kernel) {
	n := k.NRR
	if in.Dst.File == ir.ICR {
		n = k.NICR
	}
	// Destination address resolved at issue time: spec − pass, with
	// pass = iter + stage.
	phys := mod(in.Dst.Off-(iter+in.Stage), max(n, 1))
	q[at] = append(q[at], pendingReg{
		file: in.Dst.File, phys: phys, val: v, tagV: in.Dst.Val, tagI: iter,
	})
}

func mod(a, m int) int {
	if m <= 0 {
		return 0
	}
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
