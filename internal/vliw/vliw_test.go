package vliw

import (
	"strings"
	"testing"

	"repro/internal/codegen"
	"repro/internal/fixture"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/semantics"
)

func kernelFor(t *testing.T, r fixture.Runnable) *codegen.Kernel {
	t.Helper()
	res, err := sched.Slack(sched.Config{}).Schedule(r.Loop)
	if err != nil || !res.OK() {
		t.Fatalf("%s: scheduling failed", r.Loop.Name)
	}
	k, err := codegen.Generate(r.Loop, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// The simulator must match the interpreter exactly — memory, live-outs,
// and the count of operations that actually executed.
func TestMatchesInterpreter(t *testing.T) {
	m := machine.Cydra()
	for _, r := range fixture.Runnables(m) {
		k := kernelFor(t, r)
		want, err := interp.Run(r.Loop, r.Env, r.Trips)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(k, r.Env, r.Trips, Config{Paranoid: true})
		if err != nil {
			t.Fatalf("%s: %v", r.Loop.Name, err)
		}
		for i := range want.Mem {
			if !semantics.Equal(want.Mem[i], got.Mem[i]) {
				t.Fatalf("%s: mem[%d]: interp %+v vliw %+v", r.Loop.Name, i, want.Mem[i], got.Mem[i])
			}
		}
		if want.Executed != got.Executed {
			t.Errorf("%s: executed %d vs %d", r.Loop.Name, got.Executed, want.Executed)
		}
	}
}

// Paranoid mode must catch a deliberately corrupted specifier — the
// class of bug (wrong rotating offset) that silently reads a neighbouring
// iteration's value.
func TestParanoidCatchesBadSpecifier(t *testing.T) {
	m := machine.Cydra()
	r := fixture.RunnableSample(m)
	k := kernelFor(t, r)
	// Corrupt the first RR source specifier we find.
	done := false
	for _, word := range k.Words {
		for _, in := range word {
			for j := range in.Srcs {
				if in.Srcs[j].File == ir.RR && in.Srcs[j].Omega > 0 && !done {
					in.Srcs[j].Off = (in.Srcs[j].Off + 1) % k.NRR
					done = true
				}
			}
		}
	}
	if !done {
		t.Fatal("no specifier to corrupt")
	}
	if _, err := Run(k, r.Env, r.Trips, Config{Paranoid: true}); err == nil {
		t.Error("paranoid run must detect the stale read")
	} else if !strings.Contains(err.Error(), "stale") && !strings.Contains(err.Error(), "never-written") {
		t.Errorf("unexpected error kind: %v", err)
	}
}

// A schedule that violates a latency (hand-built, bypassing the
// scheduler) must be caught by the paranoid tag check: the consumer
// issues before the producer's writeback.
func TestParanoidCatchesLatencyViolation(t *testing.T) {
	m := machine.Cydra()
	r := fixture.RunnableDaxpy(m)
	res, err := sched.Slack(sched.Config{}).Schedule(r.Loop)
	if err != nil || !res.OK() {
		t.Fatal("scheduling failed")
	}
	s := res.Schedule
	// Find the fmul and yank it earlier so it reads the load's result
	// before the 13-cycle latency has elapsed.
	var mul ir.OpID = -1
	for _, op := range r.Loop.Ops {
		if op.Opcode == machine.FMul {
			mul = op.ID
		}
	}
	s.Time[mul] = 1 // the feeding load issues at ≥ 0, so 1 is far too soon
	k, err := codegen.Generate(r.Loop, s)
	if err != nil {
		t.Fatalf("codegen (expected to succeed; the bug is dynamic): %v", err)
	}
	if _, err := Run(k, r.Env, r.Trips, Config{Paranoid: true}); err == nil {
		t.Error("latency violation must be detected dynamically")
	}
}

// Without paranoia the same corrupted kernel runs to completion and
// produces wrong answers — which the differential comparison catches.
func TestNonParanoidDivergesQuietly(t *testing.T) {
	m := machine.Cydra()
	r := fixture.RunnableSample(m)
	k := kernelFor(t, r)
	for _, word := range k.Words {
		for _, in := range word {
			for j := range in.Srcs {
				if in.Srcs[j].File == ir.RR && in.Srcs[j].Omega > 0 {
					in.Srcs[j].Off = (in.Srcs[j].Off + 1) % k.NRR
				}
			}
		}
	}
	want, err := interp.Run(r.Loop, r.Env, r.Trips)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(k, r.Env, r.Trips, Config{Paranoid: false})
	if err != nil {
		// Non-paranoid runs may still fail on never-written cells read
		// as zero scalars — that is fine for this test's purpose.
		t.Skipf("non-paranoid run errored early: %v", err)
	}
	same := true
	for i := range want.Mem {
		if !semantics.Equal(want.Mem[i], got.Mem[i]) {
			same = false
		}
	}
	if same {
		t.Error("corrupted kernel should produce different memory")
	}
}

func TestZeroAndOneTrip(t *testing.T) {
	m := machine.Cydra()
	r := fixture.RunnableConditional(m)
	k := kernelFor(t, r)
	for trips := 0; trips <= 1; trips++ {
		want, err := interp.Run(r.Loop, r.Env, trips)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(k, r.Env, trips, Config{Paranoid: true})
		if err != nil {
			t.Fatalf("trips=%d: %v", trips, err)
		}
		if want.Executed != got.Executed {
			t.Errorf("trips=%d: executed %d vs %d", trips, got.Executed, want.Executed)
		}
	}
}

func TestNegativeTripsRejected(t *testing.T) {
	m := machine.Cydra()
	r := fixture.RunnableSample(m)
	k := kernelFor(t, r)
	if _, err := Run(k, r.Env, -1, Config{}); err == nil {
		t.Error("negative trips must be rejected")
	}
}
