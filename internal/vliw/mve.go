package vliw

import (
	"fmt"

	"repro/internal/codegen"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/rt"
	"repro/internal/semantics"
)

// RunMVE executes a modulo-variable-expanded kernel on a conventional
// (non-rotating) register file: each value owns its k_v static slots and
// kernel pass p runs unroll copy p mod U. Semantics, latencies, the
// structural-hazard watchdog, and the paranoid instance-tag checking
// mirror Run, so RunMVE and Run are mutually differential oracles on top
// of the interpreter.
func RunMVE(k *codegen.MVEKernel, env *rt.Env, trips int, cfg Config) (*rt.Result, error) {
	if trips < 0 {
		return nil, fmt.Errorf("vliw: negative trip count")
	}
	mem := make(ir.Memory, len(env.Mem))
	copy(mem, env.Mem)

	type slotKey struct {
		val  ir.ValueID
		slot int
	}
	regs := map[slotKey]cell{}

	passes := trips + k.Stages - 1
	if trips == 0 {
		passes = 0
	}
	maxLat := 0
	for _, op := range k.Loop.Ops {
		if lat := k.Loop.Mach.Latency(op.Opcode); lat > maxLat {
			maxLat = lat
		}
	}
	horizon := passes*k.II + maxLat + 1

	type pending struct {
		key  slotKey
		val  ir.Scalar
		tagI int
	}
	regQ := map[int][]pending{}
	memQ := map[int][]pendingMem{}
	type fu struct {
		kind machine.FUKind
		inst int
	}
	busyUntil := map[fu]int{}

	res := &rt.Result{LiveOut: map[ir.ValueID]ir.Scalar{}}

	read := func(vid ir.ValueID, slot, omega, iter int) (ir.Scalar, error) {
		v := k.Loop.Value(vid)
		if v.File == ir.GPR {
			if v.ConstValid {
				return v.Const, nil
			}
			sc, ok := env.GPR[vid]
			if !ok {
				return ir.Scalar{}, fmt.Errorf("vliw: no live-in for invariant %s", v.Name)
			}
			return sc, nil
		}
		want := iter - omega
		if want < 0 {
			return env.Init[rt.InstKey{Val: vid, Iter: want}], nil
		}
		c := regs[slotKey{vid, slot}]
		if cfg.Paranoid {
			if !c.filled {
				return ir.Scalar{}, fmt.Errorf("vliw: MVE read of never-written %s slot %d (want iter %d)", v.Name, slot, want)
			}
			if c.tagIt != want {
				return ir.Scalar{}, fmt.Errorf("vliw: MVE stale read: %s slot %d holds iter %d, want %d", v.Name, slot, c.tagIt, want)
			}
		}
		return c.val, nil
	}

	for cyc := 0; cyc < horizon; cyc++ {
		for _, w := range regQ[cyc] {
			regs[w.key] = cell{val: w.val, tagVal: w.key.val, tagIt: w.tagI, filled: true}
		}
		delete(regQ, cyc)
		for _, w := range memQ[cyc] {
			if err := mem.Store(w.addr, w.val); err != nil {
				return nil, fmt.Errorf("vliw: cycle %d: %w", cyc, err)
			}
		}
		delete(memQ, cyc)

		if cyc >= passes*k.II {
			continue
		}
		pass := cyc / k.II
		phi := cyc % k.II
		copyU := pass % k.Unroll
		for _, in := range k.Words[copyU][phi] {
			iter := pass - in.Stage
			if iter < 0 || iter >= trips {
				continue
			}
			if in.Op.Opcode == machine.BrTop {
				continue
			}
			info := k.Loop.Mach.Info(in.Op.Opcode)
			unit := fu{info.Kind, in.Op.FU}
			if until, ok := busyUntil[unit]; ok && cyc < until {
				return nil, fmt.Errorf("vliw: MVE structural hazard: %v.%d at cycle %d", info.Kind, in.Op.FU, cyc)
			}
			busyUntil[unit] = cyc + info.Busy

			if in.Pred >= 0 {
				p, err := read(in.Op.Pred.Val, in.Pred, in.Op.Pred.Omega, iter)
				if err != nil {
					return nil, err
				}
				if p.B == in.Op.PredNeg {
					continue
				}
			}
			res.Executed++

			args := make([]ir.Scalar, len(in.Srcs))
			for j := range in.Srcs {
				a := in.Op.Args[j]
				v, err := read(a.Val, in.Srcs[j], a.Omega, iter)
				if err != nil {
					return nil, fmt.Errorf("vliw: cycle %d op%d: %w", cyc, in.Op.ID, err)
				}
				args[j] = v
			}

			write := func(v ir.Scalar) {
				at := cyc + info.Latency
				regQ[at] = append(regQ[at], pending{
					key: slotKey{in.Op.Result, in.Dst}, val: v, tagI: iter,
				})
			}
			switch in.Op.Opcode {
			case machine.Load:
				v, err := mem.Load(args[0].I)
				if err != nil {
					return nil, fmt.Errorf("vliw: cycle %d op%d: %w", cyc, in.Op.ID, err)
				}
				write(v)
			case machine.Store:
				memQ[cyc+info.Latency] = append(memQ[cyc+info.Latency], pendingMem{addr: args[0].I, val: args[1]})
			default:
				v, err := semantics.Eval(in.Op.Opcode, args)
				if err != nil {
					return nil, err
				}
				if in.Dst >= 0 {
					write(v)
				}
			}
		}
	}

	res.Mem = mem
	for _, v := range k.Loop.Values {
		if !v.LiveOut || !v.IsVariant() || trips == 0 {
			continue
		}
		kv := k.Slots[v.ID]
		if kv == 0 {
			kv = 1
		}
		c := regs[slotKey{v.ID, mod((trips - 1), kv)}]
		if cfg.Paranoid && (!c.filled || c.tagIt != trips-1) {
			return nil, fmt.Errorf("vliw: MVE live-out %s: slot holds iter %d, want %d", v.Name, c.tagIt, trips-1)
		}
		res.LiveOut[v.ID] = c.val
	}
	return res, nil
}
