package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/wire"
)

// The test-only schedulers exercise the server's failure paths through
// the real registry. blockRelease gates "test-block": compiles park on
// it until the test closes it, which is how the saturation and drain
// tests hold worker slots deterministically.
var blockRelease chan struct{}

func init() {
	core.Register("test-block", func(cfg sched.Config) core.Runner {
		return core.RunnerFunc(func(ctx context.Context, l *ir.Loop) (*sched.Result, error) {
			select {
			case <-blockRelease:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return sched.Slack(cfg).ScheduleContext(ctx, l)
		})
	})
	core.Register("test-panic", func(cfg sched.Config) core.Runner {
		return core.RunnerFunc(func(ctx context.Context, l *ir.Loop) (*sched.Result, error) {
			panic("synthetic scheduler panic")
		})
	})
	core.Register("test-budget", func(cfg sched.Config) core.Runner {
		return core.RunnerFunc(func(ctx context.Context, l *ir.Loop) (*sched.Result, error) {
			return nil, &sched.BudgetError{
				Loop: l.Name, Policy: "test-budget", Reason: sched.ReasonDeadline, MII: 2, LastII: 3,
			}
		})
	})
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func requestBody(t *testing.T, l *ir.Loop, scheduler string, opt wire.Options) []byte {
	t.Helper()
	req, err := wire.NewRequest(l, scheduler, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func post(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func decodeResponse(t *testing.T, body []byte) *wire.Response {
	t.Helper()
	var r wire.Response
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatalf("bad response body %s: %v", body, err)
	}
	return &r
}

// metricValue scrapes one un-labelled counter/gauge from /metrics.
func metricValue(t *testing.T, url, name string) int64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(b), "\n") {
		if f := strings.Fields(line); len(f) == 2 && f[0] == name {
			v, err := strconv.ParseInt(f[1], 10, 64)
			if err != nil {
				t.Fatalf("metric %s: %v", name, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in exposition:\n%s", name, b)
	return 0
}

// TestCompileCacheHit is the acceptance test of ISSUE 4: the same loop
// compiled twice; the second response must be a byte-identical cache
// replay — cache-hit counter incremented, no new scheduler events.
func TestCompileCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	body := requestBody(t, fixture.Daxpy(machine.Cydra()), "slack", wire.Options{})

	r1, b1 := post(t, ts.URL, body)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("first compile: status %d, body %s", r1.StatusCode, b1)
	}
	if got := r1.Header.Get("X-Lsmsd-Cache"); got != "miss" {
		t.Errorf("first compile cache header: %q, want miss", got)
	}
	first := decodeResponse(t, b1)
	if !first.OK || first.II < first.Bounds.MII || len(first.Times) == 0 {
		t.Fatalf("first response implausible: %+v", first)
	}
	eventsAfterFirst := schedEventsTotal(s.Metrics())
	if eventsAfterFirst == 0 {
		t.Fatal("first compile produced no scheduler events")
	}
	hitsBefore := metricValue(t, ts.URL, "lsmsd_cache_hits_total")

	r2, b2 := post(t, ts.URL, body)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("second compile: status %d", r2.StatusCode)
	}
	if got := r2.Header.Get("X-Lsmsd-Cache"); got != "hit" {
		t.Errorf("second compile cache header: %q, want hit", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("cached response not byte-identical:\n%s\nvs\n%s", b1, b2)
	}
	if hits := metricValue(t, ts.URL, "lsmsd_cache_hits_total"); hits != hitsBefore+1 {
		t.Errorf("cache hits: %d, want %d", hits, hitsBefore+1)
	}
	if after := schedEventsTotal(s.Metrics()); after != eventsAfterFirst {
		t.Errorf("cache hit emitted scheduler events: %d before, %d after", eventsAfterFirst, after)
	}
}

// TestSourceAndIRFormsShareCacheEntry proves canonicalization: the
// mini-FORTRAN form and the IR form of the same loop hit one entry.
func TestSourceAndIRFormsShareCacheEntry(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	src := "      subroutine triad(n, q, a, b, c)\n" +
		"      real a(1001), b(1001), c(1001), q\n" +
		"      integer n, i\n" +
		"      do i = 1, 1000\n" +
		"        a(i) = b(i) + q*c(i)\n" +
		"      end do\n" +
		"      end\n"
	srcReq, _ := json.Marshal(&wire.Request{
		Version: wire.Version, Machine: "cydra", Scheduler: "slack", Source: src,
	})
	r1, b1 := post(t, ts.URL, srcReq)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("source-form compile: status %d, body %s", r1.StatusCode, b1)
	}

	parsed := &wire.Request{Version: wire.Version, Machine: "cydra", Scheduler: "slack", Source: src}
	norm, _, err := parsed.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	irReq, _ := json.Marshal(norm)
	r2, b2 := post(t, ts.URL, irReq)
	if got := r2.Header.Get("X-Lsmsd-Cache"); got != "hit" {
		t.Errorf("IR form after source form: cache %q, want hit", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("source- and IR-form responses differ")
	}
}

// TestSaturation floods a Workers=1, QueueDepth=1 server with six
// distinct blocked compiles: exactly two are admitted (one running,
// one queued), four are rejected 429 with Retry-After — and after the
// release, the admitted compiles complete with correct schedules.
func TestSaturation(t *testing.T) {
	blockRelease = make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	m := machine.Cydra()
	const n = 6
	bodies := make([][]byte, n)
	loops := make([]*ir.Loop, n)
	for i := range bodies {
		w, err := wire.EncodeLoop(fixture.Daxpy(m))
		if err != nil {
			t.Fatal(err)
		}
		w.Name = fmt.Sprintf("sat-%d", i) // distinct content hashes
		l, err := w.DecodeLoop(m)
		if err != nil {
			t.Fatal(err)
		}
		loops[i] = l
		bodies[i] = requestBody(t, l, "test-block", wire.Options{})
	}

	type reply struct {
		status     int
		retryAfter string
		resp       *wire.Response
	}
	replies := make(chan reply, n)
	for i := 0; i < n; i++ {
		go func(body []byte) {
			resp, out := post(t, ts.URL, body)
			replies <- reply{resp.StatusCode, resp.Header.Get("Retry-After"), decodeResponse(t, out)}
		}(bodies[i])
	}

	// All six requests park (2 admitted, 4 rejected); collect the 429s
	// first — they return immediately while the admitted ones block.
	var rejected []reply
	for len(rejected) < n-2 {
		r := <-replies
		if r.status != http.StatusTooManyRequests {
			t.Fatalf("got status %d before the release; want only 429s (resp %+v)", r.status, r.resp)
		}
		rejected = append(rejected, r)
	}
	for _, r := range rejected {
		if r.retryAfter == "" {
			t.Error("429 without Retry-After")
		}
		if r.resp.Error == nil || r.resp.Error.Kind != wire.ErrKindOverloaded {
			t.Errorf("429 error kind: %+v", r.resp.Error)
		}
	}
	if got := metricValue(t, ts.URL, "lsmsd_rejected_total"); got != int64(n-2) {
		t.Errorf("rejected counter: %d, want %d", got, n-2)
	}
	if running := s.adm.running(); running != 1 {
		t.Errorf("running gauge: %d, want 1", running)
	}

	close(blockRelease)
	byName := map[string]*ir.Loop{}
	for _, l := range loops {
		byName[l.Name] = l
	}
	for i := 0; i < 2; i++ {
		r := <-replies
		if r.status != http.StatusOK {
			t.Fatalf("admitted request failed: status %d, %+v", r.status, r.resp)
		}
		l := byName[r.resp.Loop]
		if l == nil {
			t.Fatalf("response names unknown loop %q", r.resp.Loop)
		}
		// The schedule must be complete and at a plausible II.
		if r.resp.II < r.resp.Bounds.MII || len(r.resp.Times) != len(l.Ops) {
			t.Errorf("%s: implausible schedule: II=%d MII=%d times=%d/%d",
				r.resp.Loop, r.resp.II, r.resp.Bounds.MII, len(r.resp.Times), len(l.Ops))
		}
		for op, c := range r.resp.Times {
			if c == ir.Unplaced {
				t.Errorf("%s: op %d unplaced in returned schedule", r.resp.Loop, op)
			}
		}
	}
}

// TestSingleflightDedup: two concurrent identical requests share one
// compilation; the follower's bytes match the leader's.
func TestSingleflightDedup(t *testing.T) {
	blockRelease = make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 2})
	body := requestBody(t, fixture.Reduction(machine.Cydra()), "test-block", wire.Options{})

	type reply struct {
		status int
		cache  string
		body   []byte
	}
	replies := make(chan reply, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, out := post(t, ts.URL, body)
			replies <- reply{resp.StatusCode, resp.Header.Get("X-Lsmsd-Cache"), out}
		}()
	}
	// Wait until both requests are in the server (one compiling, one
	// parked on the flight group), then release.
	deadline := time.Now().Add(5 * time.Second)
	for s.m.deduped.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := s.m.deduped.Value(); n != 1 {
		t.Fatalf("dedup counter: %v, want 1", n)
	}
	close(blockRelease)

	a, b := <-replies, <-replies
	if a.status != http.StatusOK || b.status != http.StatusOK {
		t.Fatalf("statuses %d/%d", a.status, b.status)
	}
	if !bytes.Equal(a.body, b.body) {
		t.Error("dedup follower got different bytes than the leader")
	}
	got := map[string]bool{a.cache: true, b.cache: true}
	if !got["miss"] || !got["dedup"] {
		t.Errorf("cache headers %q/%q, want one miss and one dedup", a.cache, b.cache)
	}
}

func TestErrorMapping(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	m := machine.Cydra()

	t.Run("bad json", func(t *testing.T) {
		resp, out := post(t, ts.URL, []byte("{not json"))
		r := decodeResponse(t, out)
		if resp.StatusCode != http.StatusBadRequest || r.Error == nil || r.Error.Kind != wire.ErrKindBadRequest {
			t.Errorf("status %d, error %+v", resp.StatusCode, r.Error)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		b := requestBody(t, fixture.Daxpy(m), "slack", wire.Options{})
		b = bytes.Replace(b, []byte(wire.Version), []byte("lsms-wire/99"), 1)
		resp, _ := post(t, ts.URL, b)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status %d, want 400", resp.StatusCode)
		}
	})
	t.Run("unknown scheduler", func(t *testing.T) {
		resp, out := post(t, ts.URL, requestBody(t, fixture.Daxpy(m), "quantum", wire.Options{}))
		r := decodeResponse(t, out)
		if resp.StatusCode != http.StatusBadRequest || r.Error == nil || r.Error.Kind != wire.ErrKindUnknownScheduler {
			t.Errorf("status %d, error %+v", resp.StatusCode, r.Error)
		}
	})
	t.Run("infeasible is 422 and cached", func(t *testing.T) {
		// MaxII below MII: the II search space is empty, so the verdict
		// is deterministic — and must be served from cache on repeat.
		body := requestBody(t, fixture.Daxpy(m), "slack", wire.Options{MaxII: 1})
		resp, out := post(t, ts.URL, body)
		r := decodeResponse(t, out)
		if resp.StatusCode != http.StatusUnprocessableEntity || r.Error == nil || r.Error.Kind != wire.ErrKindInfeasible {
			t.Fatalf("status %d, error %+v", resp.StatusCode, r.Error)
		}
		if r.Bounds.MII <= 1 {
			t.Errorf("expected MII > 1 in evidence, got %+v", r.Bounds)
		}
		resp2, out2 := post(t, ts.URL, body)
		if resp2.Header.Get("X-Lsmsd-Cache") != "hit" || !bytes.Equal(out, out2) {
			t.Error("infeasible verdict was not cached byte-identically")
		}
	})
	t.Run("budget exhausted is 504 and not cached", func(t *testing.T) {
		body := requestBody(t, fixture.Daxpy(m), "test-budget", wire.Options{})
		resp, out := post(t, ts.URL, body)
		r := decodeResponse(t, out)
		if resp.StatusCode != http.StatusGatewayTimeout || r.Error == nil || r.Error.Kind != wire.ErrKindBudgetExhausted {
			t.Fatalf("status %d, error %+v", resp.StatusCode, r.Error)
		}
		if r.Error.Reason != sched.ReasonDeadline || r.Error.LastII != 3 {
			t.Errorf("budget evidence not carried: %+v", r.Error)
		}
		resp2, _ := post(t, ts.URL, body)
		if resp2.Header.Get("X-Lsmsd-Cache") == "hit" {
			t.Error("budget-exhausted outcome must not be cached")
		}
	})
	t.Run("panic is isolated as 500", func(t *testing.T) {
		resp, out := post(t, ts.URL, requestBody(t, fixture.Daxpy(m), "test-panic", wire.Options{}))
		r := decodeResponse(t, out)
		if resp.StatusCode != http.StatusInternalServerError || r.Error == nil || r.Error.Kind != wire.ErrKindPanic {
			t.Fatalf("status %d, error %+v", resp.StatusCode, r.Error)
		}
		// The server survives: a healthy compile still works.
		resp2, _ := post(t, ts.URL, requestBody(t, fixture.Daxpy(m), "slack", wire.Options{}))
		if resp2.StatusCode != http.StatusOK {
			t.Errorf("server unhealthy after panic: %d", resp2.StatusCode)
		}
	})
}

func TestSchedulersEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/schedulers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Schedulers []string `json:"schedulers"`
		Default    string   `json:"default"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Default != "slack" || len(out.Schedulers) < 4 || out.Schedulers[0] != "slack" {
		t.Errorf("schedulers listing: %+v", out)
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	blockRelease = make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 1})
	body := requestBody(t, fixture.Daxpy(machine.Cydra()), "test-block", wire.Options{})

	done := make(chan int, 1)
	go func() {
		resp, _ := post(t, ts.URL, body)
		done <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.running() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.adm.running() != 1 {
		t.Fatal("compile never started")
	}

	// Drain must block on the in-flight compile...
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Error("Shutdown returned before the in-flight compile finished")
	}
	// ...and new work must be refused while draining.
	resp, out := post(t, ts.URL, body)
	if r := decodeResponse(t, out); resp.StatusCode != http.StatusServiceUnavailable || r.Error.Kind != wire.ErrKindShuttingDown {
		t.Errorf("draining server accepted work: %d %+v", resp.StatusCode, r.Error)
	}

	close(blockRelease)
	if status := <-done; status != http.StatusOK {
		t.Errorf("in-flight compile did not complete through the drain: %d", status)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := s.Shutdown(ctx2); err != nil {
		t.Errorf("final drain: %v", err)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Status != "ok" || out.Workers != 3 {
		t.Errorf("healthz: %+v", out)
	}
}

// TestMachinesEndpoint: GET /v1/machines lists the registered target
// family with unit mixes, paper machine first and marked default.
func TestMachinesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/machines")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var out struct {
		Machines []struct {
			Name  string `json:"name"`
			Units []struct {
				Name         string `json:"name"`
				Count        int    `json:"count"`
				NotPipelined bool   `json:"not_pipelined"`
			} `json:"units"`
		} `json:"machines"`
		Default string `json:"default"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("bad body %s: %v", b, err)
	}
	if out.Default != machine.PaperMachine {
		t.Errorf("default %q, want %q", out.Default, machine.PaperMachine)
	}
	if len(out.Machines) == 0 || out.Machines[0].Name != machine.PaperMachine {
		t.Fatalf("machines %v: want %q first", out.Machines, machine.PaperMachine)
	}
	listed := map[string]bool{}
	for _, m := range out.Machines {
		listed[m.Name] = true
	}
	for _, want := range []string{"cydra", "shortmem", "longops", "pipediv", "cluster2", "simdwide", "cgra4"} {
		if !listed[want] {
			t.Errorf("built-in %q missing from listing", want)
		}
	}
	cy := out.Machines[0]
	if len(cy.Units) != 6 || cy.Units[0].Name != "MemPort" || cy.Units[0].Count != 2 {
		t.Errorf("cydra unit mix wrong: %+v", cy.Units)
	}
	if !cy.Units[4].NotPipelined {
		t.Errorf("cydra divider not marked not_pipelined: %+v", cy.Units[4])
	}
}

// TestUnsupportedOpMaps422: a request whose ops the target cannot
// execute is unprocessable (422 unsupported-op), not a 400 or a
// panic-isolation 500.
func TestUnsupportedOpMaps422(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	l := fixture.Daxpy(machine.Cydra())
	req, err := wire.NewRequest(l, "slack", wire.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// An inline target with no Multiplier: daxpy's fmul cannot run.
	req.Machine = "no-mul"
	req.MachineSpec = &machine.Spec{
		Name:  "no-mul",
		Units: []machine.UnitSpec{{Name: "ALU", Count: 4}, {Name: "Mem", Count: 2}},
		Profiles: []machine.ProfileSpec{
			{Ops: []string{"load", "store"}, Unit: "Mem", Latency: 2},
			{Ops: []string{"fadd", "aadd", "brtop"}, Unit: "ALU", Latency: 1},
		},
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, ts.URL, b)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", resp.StatusCode, body)
	}
	r := decodeResponse(t, body)
	if r.Error == nil || r.Error.Kind != wire.ErrKindUnsupportedOp {
		t.Fatalf("error %+v, want kind %q", r.Error, wire.ErrKindUnsupportedOp)
	}
	if !strings.Contains(r.Error.Message, "fmul") {
		t.Errorf("message %q does not name the unsupported op", r.Error.Message)
	}
}

// TestInlineSpecCompile: a compile against a request-carried target
// works end to end, and distinct inline targets get distinct cache
// entries (the spec is folded into the content hash).
func TestInlineSpecCompile(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := machine.FamilySpec("inline-box", machine.CydraLatencies())
	spec.Units[machine.MemPort].Count = 1
	l := fixture.Daxpy(spec.MustBuild())
	body := requestBody(t, l, "slack", wire.Options{})
	resp, out := post(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	r := decodeResponse(t, out)
	if !r.OK || r.Machine != "inline-box" {
		t.Fatalf("response %+v: want ok on inline-box", r)
	}
	// Same loop on registered cydra: must be a different cache entry
	// with a different (here: lower) II, since cydra has 2 mem ports.
	respCy, outCy := post(t, ts.URL, requestBody(t, fixture.Daxpy(machine.Cydra()), "slack", wire.Options{}))
	if respCy.StatusCode != http.StatusOK {
		t.Fatalf("cydra status %d: %s", respCy.StatusCode, outCy)
	}
	rCy := decodeResponse(t, outCy)
	if rCy.Hash == r.Hash {
		t.Error("inline-box and cydra requests share a content address")
	}
	if r.II <= rCy.II {
		t.Errorf("II %d on one mem port should exceed II %d on two", r.II, rCy.II)
	}
}
