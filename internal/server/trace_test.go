package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fixture"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/wire"
)

const fixedTraceparent = "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01"

// postTraced posts a compile request carrying a traceparent header.
func postTraced(t *testing.T, url string, body []byte, traceparent string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/compile", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// spoolDocs polls dir until pred accepts at least one exported trace
// document (export is asynchronous), returning every accepted doc.
func spoolDocs(t *testing.T, dir string, pred func(*obs.TraceDoc) bool) []*obs.TraceDoc {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var hits []*obs.TraceDoc
		names, _ := filepath.Glob(filepath.Join(dir, "trace-*.json"))
		for _, name := range names {
			b, err := os.ReadFile(name)
			if err != nil {
				continue
			}
			doc, err := obs.UnmarshalTraceDoc(b)
			if err != nil {
				t.Fatalf("spool file %s is not lsms-trace/1: %v", name, err)
			}
			if pred(doc) {
				hits = append(hits, doc)
			}
		}
		if len(hits) > 0 {
			return hits
		}
		if time.Now().After(deadline) {
			t.Fatalf("no matching trace in spool %s (%d files)", dir, len(names))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func rootSpan(t *testing.T, doc *obs.TraceDoc) obs.SpanData {
	t.Helper()
	spans := doc.ResourceSpans[0].ScopeSpans[0].Spans
	if len(spans) == 0 {
		t.Fatal("trace document has no spans")
	}
	return spans[0]
}

// TestTraceparentEchoAndSpool is the tentpole's end-to-end contract: a
// request arriving with a sampled W3C traceparent keeps its TraceID
// through the whole pipeline — the response echoes it under a
// server-minted span, the spooled lsms-trace/1 document roots at it
// with the caller's span as parent, and the pipeline stages show up
// both as child spans and as a Server-Timing breakdown.
func TestTraceparentEchoAndSpool(t *testing.T) {
	spool := t.TempDir()
	_, ts := newTestServer(t, Config{Workers: 2, TraceDir: spool})
	body := requestBody(t, fixture.Daxpy(machine.Cydra()), "slack", wire.Options{})

	resp, out := postTraced(t, ts.URL, body, fixedTraceparent)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	echo, err := obs.ParseTraceparent(resp.Header.Get("Traceparent"))
	if err != nil {
		t.Fatalf("response traceparent: %v", err)
	}
	if echo.TraceID.String() != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("response joined the wrong trace: %s", echo.TraceID)
	}
	if echo.SpanID.String() == "0123456789abcdef" {
		t.Fatal("server must mint its own span, not echo the caller's")
	}
	if !echo.Sampled {
		t.Fatal("caller-sampled request lost its sampled flag")
	}
	st := resp.Header.Get("Server-Timing")
	if !strings.Contains(st, "schedule;dur=") {
		t.Fatalf("Server-Timing missing the schedule stage: %q", st)
	}

	docs := spoolDocs(t, spool, func(d *obs.TraceDoc) bool {
		return rootSpan(t, d).TraceID == "0123456789abcdef0123456789abcdef"
	})
	root := rootSpan(t, docs[0])
	if root.Name != "compile-request" {
		t.Fatalf("root span %q", root.Name)
	}
	if root.ParentSpanID != "0123456789abcdef" {
		t.Fatalf("root parent %q, want the caller's span", root.ParentSpanID)
	}
	if root.SpanID != echo.SpanID.String() {
		t.Fatalf("spooled root span %s != echoed span %s", root.SpanID, echo.SpanID)
	}
	var stages []string
	for _, sp := range docs[0].ResourceSpans[0].ScopeSpans[0].Spans[1:] {
		stages = append(stages, sp.Name)
	}
	joined := strings.Join(stages, " ")
	if !strings.Contains(joined, "schedule") || !strings.Contains(joined, "store-put") {
		t.Fatalf("pipeline stages missing from trace: %v", stages)
	}
}

// TestTraceRootGeneratedWhenAbsent: a bare request (no traceparent, or
// a malformed one) still gets a root trace and a valid response header.
func TestTraceRootGeneratedWhenAbsent(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	body := requestBody(t, fixture.Daxpy(machine.Cydra()), "slack", wire.Options{})

	resp, _ := post(t, ts.URL, body)
	sc, err := obs.ParseTraceparent(resp.Header.Get("Traceparent"))
	if err != nil {
		t.Fatalf("generated traceparent invalid: %v", err)
	}
	if sc.TraceID.IsZero() || sc.SpanID.IsZero() {
		t.Fatal("generated root has zero IDs")
	}

	resp2, _ := postTraced(t, ts.URL, body, "garbage-header")
	sc2, err := obs.ParseTraceparent(resp2.Header.Get("Traceparent"))
	if err != nil {
		t.Fatalf("traceparent after malformed input: %v", err)
	}
	if sc2.TraceID == sc.TraceID {
		t.Fatal("fresh trace expected for a malformed traceparent")
	}
}

// TestTraceSamplingNegativeDropsLocalRoots: -trace-sample < 0 turns off
// locally rooted sampling, but a caller-sampled traceparent still wins
// — the upstream already committed to the trace.
func TestTraceSamplingNegativeDropsLocalRoots(t *testing.T) {
	spool := t.TempDir()
	_, ts := newTestServer(t, Config{Workers: 2, TraceDir: spool, TraceSample: -1})
	body := requestBody(t, fixture.Daxpy(machine.Cydra()), "slack", wire.Options{})

	resp, _ := post(t, ts.URL, body)
	if sc, err := obs.ParseTraceparent(resp.Header.Get("Traceparent")); err != nil || sc.Sampled {
		t.Fatalf("local root should be unsampled (err %v)", err)
	}
	resp2, _ := postTraced(t, ts.URL, body, fixedTraceparent)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp2.StatusCode)
	}
	docs := spoolDocs(t, spool, func(d *obs.TraceDoc) bool { return true })
	for _, d := range docs {
		if id := rootSpan(t, d).TraceID; id != "0123456789abcdef0123456789abcdef" {
			t.Fatalf("unsampled trace %s leaked into the spool", id)
		}
	}
}

// TestRefineTraceLinked: the background refinement runs under its own
// TraceID (it outlives the request) but carries a span link back to the
// compile request that caused it — the async-causality half of the
// tracing story.
func TestRefineTraceLinked(t *testing.T) {
	spool := t.TempDir()
	_, ts := newTestServer(t, Config{Workers: 2, Refine: true, TraceDir: spool})
	body := requestBody(t, kernelLoop(t, "triad"), "slack", wire.Options{})

	resp, out := postTraced(t, ts.URL, body, fixedTraceparent)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	waitRefined(t, ts.URL, body)

	docs := spoolDocs(t, spool, func(d *obs.TraceDoc) bool {
		root := d.ResourceSpans[0].ScopeSpans[0].Spans[0]
		for _, l := range root.Links {
			if l.TraceID == "0123456789abcdef0123456789abcdef" {
				return true
			}
		}
		return false
	})
	root := rootSpan(t, docs[0])
	if root.TraceID == "0123456789abcdef0123456789abcdef" {
		t.Fatal("refine trace must root a fresh TraceID, not nest in the request's")
	}
	var refined bool
	for _, sp := range docs[0].ResourceSpans[0].ScopeSpans[0].Spans {
		if strings.Contains(sp.Name, "refine") {
			refined = true
		}
	}
	if !refined {
		t.Fatalf("linked trace has no refine span")
	}
}

// TestWarmStartTracesLinked: warm-start compiles trace like background
// work — fresh TraceIDs, linked to one shared warm-start root.
func TestWarmStartTracesLinked(t *testing.T) {
	spool := t.TempDir()
	s, _ := newTestServer(t, Config{Workers: 2, TraceDir: spool})
	req, err := wire.NewRequest(fixture.Daxpy(machine.Cydra()), "slack", wire.Options{})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := s.WarmStart(context.Background(), []*wire.Request{req})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Compiled != 1 {
		t.Fatalf("warm stats %+v", stats)
	}
	docs := spoolDocs(t, spool, func(d *obs.TraceDoc) bool {
		return len(rootSpan(t, d).Links) == 1
	})
	root := rootSpan(t, docs[0])
	if root.Links[0].TraceID == root.TraceID {
		t.Fatal("warm link must point outside the warm compile's own trace")
	}
}

// TestReadyzFlipsUnderErrorBurn: a sustained 5xx burn degrades /readyz
// (reason slo-burn) while /healthz stays 200 — readiness fails first,
// liveness only under drain. /debug/slo reports the burn with nonzero
// request counts.
func TestReadyzFlipsUnderErrorBurn(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, SLOBurnThreshold: 5})
	debug := httptest.NewServer(s.DebugHandler())
	defer debug.Close()

	getJSON := func(url string, out any) int {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode
	}

	var rz struct {
		Ready  bool    `json:"ready"`
		Reason string  `json:"reason"`
		Burn5m float64 `json:"burn_rate_5m"`
	}
	if code := getJSON(ts.URL+"/readyz", &rz); code != http.StatusOK || !rz.Ready {
		t.Fatalf("fresh server unready: %d %+v", code, rz)
	}

	// Every request 500s: error rate 1.0 against a 1% budget is a burn
	// rate of 100 in both windows (all traffic is recent), over any
	// sane threshold.
	body := requestBody(t, fixture.Daxpy(machine.Cydra()), "test-panic", wire.Options{})
	for i := 0; i < 5; i++ {
		resp, _ := post(t, ts.URL, body)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("test-panic returned %d", resp.StatusCode)
		}
	}

	if code := getJSON(ts.URL+"/readyz", &rz); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz %d %+v after full-burn traffic", code, rz)
	}
	if rz.Reason != "slo-burn" || rz.Burn5m < 5 {
		t.Fatalf("readyz verdict %+v", rz)
	}
	var hz struct {
		Status string `json:"status"`
	}
	if code := getJSON(ts.URL+"/healthz", &hz); code != http.StatusOK || hz.Status != "ok" {
		t.Fatalf("healthz should stay live under SLO burn: %d %+v", code, hz)
	}

	var slo struct {
		Short struct {
			Total  int64 `json:"total"`
			Errors int64 `json:"errors"`
		} `json:"short"`
		Ready  bool   `json:"ready"`
		Reason string `json:"reason"`
	}
	getJSON(debug.URL+"/debug/slo", &slo)
	if slo.Short.Total < 5 || slo.Short.Errors < 5 {
		t.Fatalf("/debug/slo counts %+v", slo)
	}
	if slo.Ready || slo.Reason != "slo-burn" {
		t.Fatalf("/debug/slo verdict %+v", slo)
	}

	if v := metricValue(t, ts.URL, "lsmsd_slo_ready"); v != 0 {
		t.Fatalf("lsmsd_slo_ready = %d during burn", v)
	}
}

// TestFlightRecorderTraceFilter: flight entries carry the W3C TraceID,
// and ?trace=<id> narrows the dump to one trace's entries.
func TestFlightRecorderTraceFilter(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	debug := httptest.NewServer(s.DebugHandler())
	defer debug.Close()

	body := requestBody(t, fixture.Daxpy(machine.Cydra()), "slack", wire.Options{})
	resp, _ := postTraced(t, ts.URL, body, fixedTraceparent)
	sc, err := obs.ParseTraceparent(resp.Header.Get("Traceparent"))
	if err != nil {
		t.Fatal(err)
	}
	// A second, unrelated compile to give the filter something to drop.
	post(t, ts.URL, requestBody(t, fixture.Reduction(machine.Cydra()), "slack", wire.Options{}))

	var dump struct {
		Total   int `json:"total_recorded"`
		Entries []struct {
			Ctx obs.SpanContext `json:"ctx"`
		} `json:"entries"`
	}
	get := func(url string) {
		t.Helper()
		r, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		dump.Entries = nil
		if err := json.NewDecoder(r.Body).Decode(&dump); err != nil {
			t.Fatal(err)
		}
	}
	get(debug.URL + "/debug/flightrecorder")
	if len(dump.Entries) != 2 {
		t.Fatalf("unfiltered dump has %d entries, want 2", len(dump.Entries))
	}
	get(debug.URL + "/debug/flightrecorder?trace=" + sc.TraceID.String())
	if len(dump.Entries) != 1 {
		t.Fatalf("filtered dump has %d entries, want 1", len(dump.Entries))
	}
	if got := dump.Entries[0].Ctx.TraceID.String(); got != sc.TraceID.String() {
		t.Fatalf("filtered entry belongs to trace %s", got)
	}
	if dump.Total != 2 {
		t.Fatalf("total_recorded %d should stay unfiltered", dump.Total)
	}
	get(debug.URL + "/debug/flightrecorder?trace=" + strings.Repeat("0", 32))
	if len(dump.Entries) != 0 {
		t.Fatalf("bogus trace ID matched %d entries", len(dump.Entries))
	}
}

// TestBuildInfoAndTraceMetrics: the build-info gauge and the trace
// exporter counters are on /metrics; a sampled compile lands an
// exemplar on the latency histogram, but only in the negotiated
// OpenMetrics render — the default classic 0.0.4 render must stay
// exemplar-free (exemplar syntax is illegal there and fails a stock
// Prometheus scrape). Both renders pass the linter.
func TestBuildInfoAndTraceMetrics(t *testing.T) {
	spool := t.TempDir()
	_, ts := newTestServer(t, Config{Workers: 2, TraceDir: spool})
	body := requestBody(t, fixture.Daxpy(machine.Cydra()), "slack", wire.Options{})
	postTraced(t, ts.URL, body, fixedTraceparent)
	spoolDocs(t, spool, func(d *obs.TraceDoc) bool { return true })

	scrape := func(accept string) (string, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b), resp.Header.Get("Content-Type")
	}

	exemplar := `# {trace_id="0123456789abcdef0123456789abcdef"}`

	out, ctype := scrape("")
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Fatalf("default scrape content type %q", ctype)
	}
	for _, want := range []string{
		"lsmsd_build_info{",
		"lsmsd_trace_exported_total 1",
		"lsmsd_trace_dropped_total 0",
		"lsmsd_slo_objective 0.99",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, exemplar) {
		t.Fatalf("classic 0.0.4 scrape carries an exemplar (illegal syntax there):\n%s", out)
	}
	if errs := obs.LintExposition(strings.NewReader(out)); len(errs) > 0 {
		t.Fatalf("/metrics fails promlint: %v", errs)
	}

	om, ctype := scrape("application/openmetrics-text;version=1.0.0")
	if !strings.HasPrefix(ctype, "application/openmetrics-text") {
		t.Fatalf("OpenMetrics scrape content type %q", ctype)
	}
	for _, want := range []string{
		"lsmsd_trace_exported_total 1",
		"# TYPE lsmsd_requests counter",
		exemplar,
		"# EOF\n",
	} {
		if !strings.Contains(om, want) {
			t.Fatalf("OpenMetrics /metrics missing %q:\n%s", want, om)
		}
	}
	if errs := obs.LintExposition(strings.NewReader(om)); len(errs) > 0 {
		t.Fatalf("OpenMetrics /metrics fails promlint: %v", errs)
	}
}
