package server

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/ir"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/wire"
)

// kernelLoop pulls one named loop out of the embedded kernel corpus.
// The refinement tests want loops with a known exact-vs-slack verdict:
// on cydra, slack schedules triad at (II=2, MaxLive=19) while the exact
// backend proves (II=2, MaxLive=18), and daxpy is already optimal.
func kernelLoop(t *testing.T, name string) *ir.Loop {
	t.Helper()
	ks, err := loopgen.Kernels(machine.Cydra())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ks {
		if k.Name == name {
			return k.CL.Loop
		}
	}
	t.Fatalf("kernel %q not in corpus", name)
	return nil
}

// waitRefined polls the compile endpoint until the hit carries
// X-Lsmsd-Refined, returning the refined body. Every poll is a store
// hit (the cold compile already cached a record), so polling never
// re-enqueues work — it just waits for the background upgrade to land.
func waitRefined(t *testing.T, url string, body []byte) []byte {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		r, b := post(t, url, body)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d: %s", r.StatusCode, b)
		}
		if r.Header.Get("X-Lsmsd-Refined") == "true" {
			return b
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatal("refinement never landed")
	return nil
}

// TestRefineUpgradesStoreEntry is the refinement tier's acceptance
// test: a cold compile answers immediately from slack, the background
// exact search strictly improves it, the store record is upgraded in
// place, and every later hit — including hits served from disk by a
// restarted server with refinement off — returns the refined bytes
// under the X-Lsmsd-Refined header.
func TestRefineUpgradesStoreEntry(t *testing.T) {
	dir := t.TempDir()
	body := requestBody(t, kernelLoop(t, "triad"), "slack", wire.Options{})

	s1, err := New(Config{Workers: 2, StoreDir: dir, Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())

	r0, b0 := post(t, ts1.URL, body)
	if r0.StatusCode != http.StatusOK {
		t.Fatalf("cold compile: status %d, body %s", r0.StatusCode, b0)
	}
	if got := r0.Header.Get("X-Lsmsd-Refined"); got != "" {
		t.Fatalf("cold compile already refined: %q", got)
	}
	base := decodeResponse(t, b0)
	if !base.OK || base.Refined {
		t.Fatalf("cold response: %+v", base)
	}

	refined := waitRefined(t, ts1.URL, body)
	got := decodeResponse(t, refined)
	if !got.OK || !got.Refined {
		t.Fatalf("refined response not marked: %+v", got)
	}
	if got.II > base.II || (got.II == base.II && got.MaxLive >= base.MaxLive) {
		t.Fatalf("refinement did not strictly improve: base (II=%d, ML=%d), refined (II=%d, ML=%d)",
			base.II, base.MaxLive, got.II, got.MaxLive)
	}
	if got.Hash != base.Hash {
		t.Fatalf("refinement changed the request hash: %q vs %q", base.Hash, got.Hash)
	}

	// Once upgraded, the served bytes are stable again.
	r2, b2 := post(t, ts1.URL, body)
	if r2.Header.Get("X-Lsmsd-Refined") != "true" || !bytes.Equal(b2, refined) {
		t.Fatalf("repeat hit unstable after refinement:\n%s\nvs\n%s", refined, b2)
	}

	if v := metricValue(t, ts1.URL, "lsmsd_refine_started_total"); v != 1 {
		t.Errorf("lsmsd_refine_started_total = %d, want 1", v)
	}
	if v := metricValue(t, ts1.URL, "lsmsd_refine_improved_total"); v != 1 {
		t.Errorf("lsmsd_refine_improved_total = %d, want 1", v)
	}

	// The refinement left a trace with a `refine` span in the recorder.
	var sawSpan bool
	for _, tr := range s1.FlightRecorder().Snapshot() {
		for _, sp := range tr.Spans {
			if sp.Name == "refine" && sp.Outcome == "improved" {
				sawSpan = true
			}
		}
	}
	if !sawSpan {
		t.Error("no refine span with outcome improved in the flight recorder")
	}

	ts1.Close()
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Restart without refinement: the upgrade is a property of the
	// stored record, not of the serving configuration.
	_, ts2 := newTestServer(t, Config{Workers: 2, StoreDir: dir})
	r3, b3 := post(t, ts2.URL, body)
	if got := r3.Header.Get("X-Lsmsd-Cache"); got != "hit-disk" {
		t.Fatalf("replay cache header: %q, want hit-disk", got)
	}
	if r3.Header.Get("X-Lsmsd-Refined") != "true" {
		t.Fatal("replayed record lost its refined marker")
	}
	if !bytes.Equal(b3, refined) {
		t.Fatalf("replay not byte-identical to refined body:\n%s\nvs\n%s", refined, b3)
	}
}

// TestRefineUnchangedLeavesRecord: when slack already found the exact
// optimum, the refinement records "unchanged" and the served bytes
// never move.
func TestRefineUnchangedLeavesRecord(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Refine: true})
	body := requestBody(t, kernelLoop(t, "daxpy"), "slack", wire.Options{})

	_, b0 := post(t, ts.URL, body)
	deadline := time.Now().Add(30 * time.Second)
	for metricValue(t, ts.URL, "lsmsd_refine_unchanged_total") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("refinement never finished")
		}
		time.Sleep(25 * time.Millisecond)
	}
	r, b := post(t, ts.URL, body)
	if got := r.Header.Get("X-Lsmsd-Refined"); got != "" {
		t.Fatalf("unchanged refinement set the refined header: %q", got)
	}
	if !bytes.Equal(b, b0) {
		t.Fatalf("unchanged refinement moved the served bytes:\n%s\nvs\n%s", b0, b)
	}
	if v := metricValue(t, ts.URL, "lsmsd_refine_improved_total"); v != 0 {
		t.Errorf("lsmsd_refine_improved_total = %d, want 0", v)
	}
}

// TestRefineSkipsExactRequests: a request that already asked for the
// exact backend has nothing to refine toward; the tier must not
// re-enqueue it.
func TestRefineSkipsExactRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Refine: true})
	body := requestBody(t, kernelLoop(t, "daxpy"), "exact", wire.Options{})
	r, b := post(t, ts.URL, body)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("exact compile: status %d, body %s", r.StatusCode, b)
	}
	// Give a would-be enqueue time to start before asserting none did.
	time.Sleep(100 * time.Millisecond)
	if v := metricValue(t, ts.URL, "lsmsd_refine_started_total"); v != 0 {
		t.Errorf("lsmsd_refine_started_total = %d, want 0", v)
	}
}
