// Package server implements lsmsd's HTTP service: modulo-scheduling
// compilation as admission-controlled, cached, observable traffic on
// top of the governed pipeline (core.CompileContext + sched.Budget).
//
// Endpoints:
//
//	POST /v1/compile    — compile one loop (wire.Request: source or IR form)
//	GET  /v1/schedulers — the registered scheduling policies
//	GET  /healthz       — liveness and pool occupancy
//	GET  /metrics       — Prometheus-style counters, including the
//	                      folded scheduler event stream
//
// Request handling is tiered: a content-addressed result store (keyed
// by the canonical wire hash; a per-node LRU in front of an optional
// crash-safe disk log, see package store) answers repeats without
// scheduling at all — across process restarts when the disk tier is
// configured; a singleflight group collapses concurrent identical
// requests into one compilation whose response bytes every waiter
// shares; everything else passes admission control — a non-blocking
// queue semaphore that rejects overload with 429 + Retry-After, then a
// worker semaphore that bounds concurrent compiles. Per-request
// deadlines map onto sched.Budget, panics are isolated per request
// (mirroring bench.LoopPanicError), and Shutdown drains in-flight
// compiles before returning, then closes the store.
//
// Error mapping (also in README "Running the service"):
//
//	400 bad-request / unknown-scheduler — malformed wire document,
//	     unknown machine, or unregistered policy
//	422 infeasible — the II ceiling was exhausted (deterministic
//	     verdict; cacheable, carries bounds + last II as evidence)
//	429 overloaded — admission queue full; Retry-After is set
//	500 panic / internal — isolated per-request failure
//	503 shutting-down — the server is draining
//	504 budget-exhausted — the per-request deadline or work cap ran
//	     out (carries the sched.BudgetError evidence; never cached)
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/wire"
)

// Config tunes the service; the zero value gets sensible defaults.
type Config struct {
	// Workers bounds concurrent compiles; default GOMAXPROCS.
	Workers int
	// QueueDepth bounds admitted-but-waiting requests; default 64.
	QueueDepth int
	// CacheEntries bounds the in-memory tier of the result store;
	// default 1024, negative disables the memory tier.
	CacheEntries int
	// StoreDir, when non-empty, adds a persistent disk tier behind the
	// memory tier: an append-only checksummed log (see store.Disk) that
	// answers repeats byte-identically across process restarts.
	StoreDir string
	// StoreMaxBytes bounds the disk tier's log size (compaction plus
	// oldest-first eviction); 0 means unbounded.
	StoreMaxBytes int64
	// Store, when non-nil, replaces the tiers the fields above would
	// build — the injection point for custom tier stacks. The server
	// owns it from New on and closes it during Shutdown.
	Store store.Tier
	// DefaultDeadline applies when a request carries no deadline_ms;
	// default 30s, negative means unbudgeted.
	DefaultDeadline time.Duration
	// MaxDeadline caps any requested deadline; default 2m.
	MaxDeadline time.Duration
	// RetryAfter is the hint returned with 429; default 1s.
	RetryAfter time.Duration
	// MaxBodyBytes bounds the request body; default 8 MiB.
	MaxBodyBytes int64
	// FlightEntries bounds the flight recorder's ring of recent compile
	// traces; default obs.DefaultFlightEntries.
	FlightEntries int
	// Refine enables the background exact-refinement tier: cold compiles
	// are re-searched by the exact backend under RefineDeadline /
	// RefineNodes, and a strict improvement upgrades the store record in
	// place (served with X-Lsmsd-Refined on subsequent hits). Off by
	// default: with refinement on, the bytes served for a key can change
	// (improve) between hits, which callers relying on replay
	// byte-identity across a key's whole lifetime must opt into.
	Refine bool
	// RefineWorkers bounds concurrent background refinements; default 1.
	RefineWorkers int
	// RefineDeadline is the wall-clock budget of one refinement; default
	// 5s.
	RefineDeadline time.Duration
	// RefineNodes caps one refinement's search nodes
	// (sched.Budget.MaxCentralIters for the exact backend); default
	// 1<<20.
	RefineNodes int64
	// RefineQueue bounds the pending-refinement queue; a full queue
	// drops new jobs (the served record stays valid, just unrefined).
	// Default 256.
	RefineQueue int
	// TraceDir, when non-empty, spools sampled request traces to disk as
	// lsms-trace/1 JSON documents, one file per trace (obs.Exporter).
	TraceDir string
	// TraceCollector, when non-empty, POSTs sampled traces to an HTTP
	// collector endpoint instead. TraceDir wins when both are set.
	TraceCollector string
	// TraceSample is the deterministic head-sampling rate for locally
	// rooted traces: 1-in-N by trace ID. 1 (the default) samples every
	// trace; negative disables local sampling. A request arriving with a
	// sampled traceparent is always sampled — the caller already paid
	// for the trace, this hop completes it.
	TraceSample int
	// TraceQueue bounds the trace exporter's backlog; default 256. A
	// full queue drops the trace and counts the drop — exporting never
	// blocks the request path.
	TraceQueue int
	// SLOObjective is the success-rate objective in (0,1); default 0.99.
	SLOObjective float64
	// SLOLatency is the per-request latency objective; default 500ms.
	SLOLatency time.Duration
	// SLOBurnThreshold is the error-budget burn rate above which /readyz
	// degrades (both the 5-minute and 1-hour windows must exceed it, the
	// multi-window rule); default 10, negative disables the check.
	SLOBurnThreshold float64
	// Logger, when non-nil, receives one structured record per compile
	// request (request ID, loop, scheduler, status, cache tier, outcome,
	// duration).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline == 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.RefineWorkers <= 0 {
		c.RefineWorkers = 1
	}
	if c.RefineDeadline <= 0 {
		c.RefineDeadline = 5 * time.Second
	}
	if c.RefineNodes <= 0 {
		c.RefineNodes = 1 << 20
	}
	if c.RefineQueue <= 0 {
		c.RefineQueue = 256
	}
	if c.TraceSample == 0 {
		c.TraceSample = 1
	}
	if c.SLOBurnThreshold == 0 {
		c.SLOBurnThreshold = 10
	}
	return c
}

// Server is the compilation service. Create with New, mount Handler,
// and call Shutdown to drain.
type Server struct {
	cfg       Config
	mux       *http.ServeMux
	adm       *admission
	store     *store.Tiered
	disk      *store.Disk // the persistent tier, nil when not configured
	flights   *flightGroup
	refine    *refiner // nil unless Config.Refine
	sm        *sched.SafeMetrics
	flight    *obs.FlightRecorder
	exporter  *obs.Exporter // nil unless tracing is configured
	slo       *obs.SLO
	m         *metrics
	logger    *slog.Logger
	started   time.Time
	gate      *drainGate
	reqSeq    atomic.Uint64
	closeOnce sync.Once
	closeErr  error
}

// New returns a ready-to-serve Server. The only error source is the
// persistent store tier (Config.StoreDir): an unopenable or unwritable
// store directory fails construction rather than silently serving
// without persistence.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		adm:     newAdmission(cfg.Workers, cfg.QueueDepth),
		flights: newFlightGroup(),
		sm:      &sched.SafeMetrics{},
		flight:  obs.NewFlightRecorder(cfg.FlightEntries),
		logger:  cfg.Logger,
		started: time.Now(),
		gate:    newDrainGate(),
	}
	if cfg.Store != nil {
		if tiered, ok := cfg.Store.(*store.Tiered); ok {
			s.store = tiered
		} else {
			s.store = store.NewTiered(cfg.Store)
		}
		for _, tier := range s.store.Tiers() {
			if d, ok := tier.(*store.Disk); ok {
				s.disk = d
				break
			}
		}
	} else {
		mem := store.NewMemory(cfg.CacheEntries)
		if cfg.StoreDir != "" {
			d, err := store.Open(cfg.StoreDir, cfg.StoreMaxBytes)
			if err != nil {
				return nil, err
			}
			s.disk = d
			s.store = store.NewTiered(mem, d)
		} else {
			s.store = store.NewTiered(mem)
		}
	}
	if cfg.TraceDir != "" || cfg.TraceCollector != "" {
		exp, err := obs.NewExporter(obs.ExporterConfig{
			Dir: cfg.TraceDir, URL: cfg.TraceCollector, Queue: cfg.TraceQueue,
		})
		if err != nil {
			s.store.Close()
			return nil, err
		}
		s.exporter = exp
	}
	s.slo = obs.NewSLO(obs.SLOConfig{
		Objective:        cfg.SLOObjective,
		LatencyObjective: cfg.SLOLatency,
	})
	s.m = newMetrics(s)
	if cfg.Refine {
		s.refine = newRefiner(s)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/compile", s.handleCompile)
	s.mux.HandleFunc("GET /v1/schedulers", s.handleSchedulers)
	s.mux.HandleFunc("GET /v1/machines", s.handleMachines)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown stops admitting new compiles (they get 503), waits for
// in-flight ones to drain or for ctx to expire, then closes the result
// store (syncing the disk tier). The store is closed even when the
// drain is interrupted: a record the disk tier has already absorbed
// survives the restart either way.
func (s *Server) Shutdown(ctx context.Context) error {
	s.gate.beginDrain()
	select {
	case <-s.gate.idle:
		return s.Close()
	case <-ctx.Done():
		err := fmt.Errorf("server: drain interrupted with %d request(s) in flight: %w",
			s.gate.inFlight(), ctx.Err())
		if cerr := s.Close(); cerr != nil {
			return errors.Join(err, cerr)
		}
		return err
	}
}

// Close releases the result store without draining — Shutdown's last
// step, and the test-friendly teardown. The refiner stops first (its
// in-flight upgrades either land in a live store or are dropped by the
// closed tiers), then the store closes. Idempotent.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		if s.refine != nil {
			s.refine.close()
		}
		// The exporter closes after the refiner (whose last traces it
		// drains) and before the store.
		s.exporter.Close()
		s.closeErr = s.store.Close()
	})
	return s.closeErr
}

// Metrics returns a snapshot of the folded scheduler event stream.
func (s *Server) Metrics() sched.Metrics { return s.sm.Snapshot() }

// CacheLen reports how many records the result store holds, summed
// over its tiers — a key resident in both the memory and disk tiers
// counts twice (store.Tiered.Len's contract).
func (s *Server) CacheLen() int { return s.store.Len() }

// Store returns the server's tiered result store — read-only use only
// (tests and warm-start probes); the server owns its lifecycle.
func (s *Server) Store() *store.Tiered { return s.store }

// StoreLoadReport reports what the persistent tier found on disk at
// Open time: records loaded and records rejected by verification.
// ok is false when no disk tier is configured.
func (s *Server) StoreLoadReport() (loaded int, rejected int64, ok bool) {
	if s.disk == nil {
		return 0, 0, false
	}
	loaded, rejected = s.disk.LoadReport()
	return loaded, rejected, true
}

// FlightRecorder exposes the ring of recent compile traces —
// /debug/flightrecorder serves it, and cmd/lsmsd dumps it on SIGQUIT.
func (s *Server) FlightRecorder() *obs.FlightRecorder { return s.flight }

// requestID returns the caller's X-Request-Id, or mints a
// process-unique one, so every log record and flight-recorder entry of
// this request shares a correlation key.
func (s *Server) requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); id != "" {
		return id
	}
	return fmt.Sprintf("req-%06d", s.reqSeq.Add(1))
}

// logRequest emits the one structured record per compile request.
func (s *Server) logRequest(reqID, loop, scheduler string, status int, cache, outcome string, d time.Duration) {
	if s.logger == nil {
		return
	}
	s.logger.Info("compile",
		"request_id", reqID,
		"loop", loop,
		"scheduler", scheduler,
		"status", status,
		"cache", cache,
		"outcome", outcome,
		"duration_ms", float64(d.Microseconds())/1000,
	)
}

// traceContext resolves the request's W3C trace context: the caller's
// traceparent when present and valid (an invalid header starts a fresh
// trace, per spec — it must never break the request), a fresh TraceID
// otherwise, and always a server-minted root SpanID. The sampling
// verdict is the caller's flag OR the deterministic 1-in-N head sample.
func (s *Server) traceContext(r *http.Request) (sctx, parent obs.SpanContext) {
	if h := r.Header.Get("traceparent"); h != "" {
		if sc, err := obs.ParseTraceparent(h); err == nil {
			parent = sc
		}
	}
	sctx = obs.SpanContext{TraceID: parent.TraceID, SpanID: obs.NewSpanID()}
	if sctx.TraceID.IsZero() {
		sctx.TraceID = obs.NewTraceID()
	}
	sctx.Sampled = parent.Sampled || obs.Sample(sctx.TraceID, s.cfg.TraceSample)
	return sctx, parent
}

// statusWriter captures the response status for the SLO tracker.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// exportTrace offers a finished trace to the exporter when the request
// was sampled, reporting whether the exporter accepted it. Nil-safe on
// every axis (no exporter, nil trace, unsampled: false).
func (s *Server) exportTrace(tr *obs.Trace) bool {
	if s.exporter != nil && tr != nil && tr.Ctx.Sampled {
		return s.exporter.Export(tr)
	}
	return false
}

// serverTiming renders a finished trace's spans as a Server-Timing
// header value (RFC 8941-ish: `name;dur=ms`, comma-separated), summing
// spans that share a name — the per-stage latency breakdown a caller
// sees without fetching the exported trace.
func serverTiming(tr *obs.Trace) string {
	if tr == nil || len(tr.Spans) == 0 {
		return ""
	}
	var names []string
	durs := map[string]time.Duration{}
	for _, sp := range tr.Spans {
		if _, ok := durs[sp.Name]; !ok {
			names = append(names, sp.Name)
		}
		durs[sp.Name] += sp.Dur
	}
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s;dur=%.3f", n, float64(durs[n].Microseconds())/1000)
	}
	return b.String()
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	reqID := s.requestID(r)
	sctx, parent := s.traceContext(r)
	w.Header().Set("X-Request-Id", reqID)
	// Echo the server's own span context so the caller can stitch this
	// hop into its trace — and assert the TraceID it sent came through.
	w.Header().Set("Traceparent", sctx.Traceparent())
	sw := &statusWriter{ResponseWriter: w}
	w = sw
	defer func() {
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		// 5xx spend error budget; 4xx are the caller's fault and do not.
		s.slo.Record(status < 500, time.Since(start))
	}()
	s.m.requests.Inc()
	if !s.gate.enter() {
		s.writeError(w, http.StatusServiceUnavailable, &wire.Error{
			Kind: wire.ErrKindShuttingDown, Message: "server is draining",
		}, "")
		return
	}
	defer s.gate.exit()

	scr := reqScratchPool.Get().(*reqScratch)
	defer scr.release()
	body, err := readBody(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1), &scr.body)
	if err != nil {
		s.badRequest(w, fmt.Errorf("reading body: %w", err))
		return
	}
	if int64(len(body)) > s.cfg.MaxBodyBytes {
		s.badRequest(w, fmt.Errorf("request body exceeds %d bytes", s.cfg.MaxBodyBytes))
		return
	}
	req, err := scr.dec.DecodeRequest(body)
	if err != nil {
		s.badRequest(w, err)
		return
	}
	norm, loop, err := req.Normalize()
	if err != nil {
		// Ops the target cannot execute are a well-formed request for
		// impossible work — unprocessable (422), not malformed (400).
		var ue *machine.UnsupportedOpError
		if errors.As(err, &ue) {
			s.m.badRequests.Inc()
			s.writeError(w, http.StatusUnprocessableEntity, &wire.Error{
				Kind:    wire.ErrKindUnsupportedOp,
				Message: err.Error(),
			}, "")
			return
		}
		s.badRequest(w, err)
		return
	}
	schedName := norm.Scheduler
	if schedName == "" {
		schedName = string(core.SchedSlack)
	}
	if _, ok := core.Lookup(core.SchedulerName(schedName)); !ok {
		s.m.badRequests.Inc()
		s.writeError(w, http.StatusBadRequest, &wire.Error{
			Kind:    wire.ErrKindUnknownScheduler,
			Message: fmt.Sprintf("unknown scheduler %q (registered: %v)", schedName, core.Schedulers()),
		}, "")
		return
	}
	hash, err := norm.Hash()
	if err != nil {
		s.badRequest(w, err)
		return
	}

	// Tier 1: the content-addressed result store. A memory-tier hit
	// keeps the pre-store "hit" label; a hit served from a deeper tier
	// is "hit-disk" — it did I/O, so it also leaves a store-get trace
	// in the flight recorder.
	if rec, tier, ok := s.store.GetTier(hash); ok {
		label := "hit"
		if tier > 0 {
			label = "hit-disk"
			s.m.storeHit()
		} else {
			s.m.cacheHit()
		}
		// Memory hits only pay for a trace when it will be exported; a
		// deeper-tier hit did I/O, so it also leaves a flight-recorder
		// entry unconditionally.
		if tier > 0 || (s.exporter != nil && sctx.Sampled) {
			tr := obs.NewTrace(reqID, loop.Name)
			tr.Scheduler = schedName
			tr.Ctx, tr.Parent = sctx, parent
			sp := tr.Start("store-get")
			sp.Int("tier", int64(tier)).Int("body_bytes", int64(len(rec.Body)))
			sp.End(obs.OutcomeOK)
			tr.Finish(obs.OutcomeOK)
			if tier > 0 {
				s.flight.Record(tr)
			}
			s.exportTrace(tr)
			if st := serverTiming(tr); st != "" {
				w.Header().Set("Server-Timing", st)
			}
		}
		if rec.Refined {
			// Header only: the stored body already says refined, and the
			// bytes must replay unchanged for the hit to stay byte-stable.
			w.Header().Set("X-Lsmsd-Refined", "true")
		}
		s.writeRaw(w, rec.Status, rec.Body, label)
		s.logRequest(reqID, loop.Name, schedName, rec.Status, label, "cache-hit", time.Since(start))
		return
	}
	s.m.storeMiss()

	// Tier 2: singleflight — concurrent identical requests share one
	// compilation and its response bytes.
	c, leader := s.flights.join(hash)
	if !leader {
		s.m.deduped.Inc()
		// The waiter's own trace: one span covering the wait, under the
		// caller's TraceID (the leader's compile has its own). Both are
		// opened before the select so the span measures the wait it is
		// named for; a cancelled wait just discards them (nil-safe).
		var wtr *obs.Trace
		var wsp *obs.Span
		if s.exporter != nil && sctx.Sampled {
			wtr = obs.NewTrace(reqID, loop.Name)
			wtr.Scheduler = schedName
			wtr.Ctx, wtr.Parent = sctx, parent
			wsp = wtr.Start("dedup-wait")
		}
		select {
		case <-c.done:
			wsp.End(obs.OutcomeOK)
			wtr.Finish(obs.OutcomeOK)
			s.exportTrace(wtr)
			s.writeRaw(w, c.out.status, c.out.body, "dedup")
			s.logRequest(reqID, loop.Name, schedName, c.out.status, "dedup", c.out.name, time.Since(start))
		case <-r.Context().Done():
			s.writeError(w, http.StatusServiceUnavailable, &wire.Error{
				Kind: wire.ErrKindInternal, Message: "client canceled while waiting for a duplicate in-flight compile",
			}, "")
		}
		return
	}

	// Tier 3: admission control, then a worker slot. admitAndCompile
	// writes cacheable outcomes through the store itself, finishes the
	// trace, and exports it when sampled.
	tr := obs.NewTrace(reqID, loop.Name)
	tr.Scheduler = schedName
	tr.Ctx, tr.Parent = sctx, parent
	out := s.admitAndCompile(r.Context(), norm, loop, schedName, hash, reqID, scr.tail, tr)
	s.flights.finish(hash, c, out)
	if s.refine != nil && out.cacheable && out.status == http.StatusOK &&
		out.name == obs.OutcomeOK && schedName != string(core.SchedExact) {
		// Background refinement rides on the cold compile that created the
		// store record. The job owns a copy of the raw request (the decode
		// scratch is pooled) and references the response bytes (immutable
		// once published). The request's span context rides along as the
		// link target: the refine trace is caused by this request without
		// being nested under it.
		s.refine.enqueue(refineJob{
			hash:      hash,
			reqID:     reqID,
			schedName: schedName,
			loopName:  loop.Name,
			rawReq:    append([]byte(nil), body...),
			baseBody:  out.body,
			link:      sctx,
		})
	}
	if st := serverTiming(tr); st != "" {
		w.Header().Set("Server-Timing", st)
	}
	s.writeRaw(w, out.status, out.body, "miss")
	s.logRequest(reqID, loop.Name, schedName, out.status, "miss", out.name, time.Since(start))
}

// reqScratch is the pooled per-request decode state: the body buffer,
// the wire decode scratch (envelope, loop document, request struct),
// and the event tail recorder. A worker that has served a request of a
// given size serves the next one of that size without allocating any of
// them. One scratch belongs to one request from Get to release; the
// response bytes it produces are freshly allocated (they outlive the
// request in the result cache and singleflight waiters), so nothing the
// scratch owns escapes the handler.
type reqScratch struct {
	body []byte
	dec  wire.Scratch
	tail *sched.TailRecorder
}

var reqScratchPool = sync.Pool{
	New: func() any { return &reqScratch{tail: sched.NewTailRecorder(0)} },
}

// release drops every reference to request data — decoded strings, the
// loop document's contents, the recorded event tail — while keeping the
// buffers' capacity, then returns the scratch to the pool.
func (scr *reqScratch) release() {
	scr.body = scr.body[:0]
	scr.dec.Reset()
	scr.tail.Reset()
	reqScratchPool.Put(scr)
}

// readBody reads r to EOF into *buf, reusing its capacity.
func readBody(r io.Reader, buf *[]byte) ([]byte, error) {
	b := (*buf)[:0]
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := r.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if err == io.EOF {
			*buf = b
			return b, nil
		}
		if err != nil {
			*buf = b
			return nil, err
		}
	}
}

// teeObserver fans the scheduler's event stream to the server-wide
// aggregate and the per-request tail recorder.
type teeObserver struct{ a, b sched.Observer }

func (t teeObserver) Event(e sched.Event) {
	t.a.Event(e)
	t.b.Event(e)
}

// admitAndCompile runs the admission-controlled compilation and
// serializes its outcome, recording the request's trace — spans from
// every pipeline stage plus, for failed or degraded runs, the tail of
// the scheduler event stream — into the flight recorder and, when the
// trace is sampled, the exporter. The caller builds tr (stamped with
// the request's span context); rejected or canceled-in-queue requests
// return before the trace starts and leave it unfinished.
func (s *Server) admitAndCompile(ctx context.Context, norm *wire.Request, loop *ir.Loop, schedName, hash, reqID string, tail *sched.TailRecorder, tr *obs.Trace) outcome {
	s.m.queueDepth.Observe(float64(s.adm.waiting()))
	if !s.adm.tryEnter() {
		s.m.rejected.Inc()
		return s.errOutcome(http.StatusTooManyRequests, &wire.Error{
			Kind:    wire.ErrKindOverloaded,
			Message: fmt.Sprintf("admission queue full (%d running, %d waiting)", s.adm.running(), s.adm.waiting()),
		})
	}
	defer s.adm.leave()
	if err := s.adm.acquireWorker(ctx); err != nil {
		return s.errOutcome(http.StatusServiceUnavailable, &wire.Error{
			Kind: wire.ErrKindInternal, Message: fmt.Sprintf("canceled while queued: %v", err),
		})
	}
	defer s.adm.releaseWorker()

	cfg := norm.Options.SchedConfig()
	cfg.Budget.Deadline = s.effectiveDeadline(cfg.Budget.Deadline)
	cfg.Observer = teeObserver{s.sm, tail}
	compiled, err := s.safeCompile(obs.WithTrace(ctx, tr), loop, core.Options{
		Scheduler:   core.SchedulerName(schedName),
		Config:      cfg,
		SkipCodegen: true,
		Degrade:     norm.Options.Degrade,
	})
	out := s.outcomeOf(norm, loop, schedName, hash, compiled, err)
	if out.cacheable {
		// Write-through under its own span: when the disk tier is
		// configured this is the request's only durable I/O, and the
		// flight recorder should show what it cost.
		sp := tr.Start("store-put")
		s.store.Put(hash, store.Record{Status: out.status, Machine: norm.Machine, Body: out.body})
		sp.Int("body_bytes", int64(len(out.body))).End(obs.OutcomeOK)
	}
	if err != nil {
		tr.Err = err.Error()
	}
	if out.name != obs.OutcomeOK {
		// Retention rule: only failed and degraded compiles carry their
		// event tail — that is where replaying the run matters.
		tail.AttachTail(tr)
	}
	tr.Finish(out.name)
	s.flight.Record(tr)
	exID := ""
	if s.exportTrace(tr) {
		// The exemplar on the latency histogram points at a trace the
		// exporter actually accepted — a dashboard bucket links straight
		// to a spooled trace document, never to an ID that resolves to
		// nothing (tracing off, or the trace dropped on a full queue).
		exID = tr.Ctx.TraceID.String()
	}
	s.m.compileDone(schedName, out.name, tr.Dur.Seconds(), exID)
	return out
}

// effectiveDeadline applies the server's default and cap to the
// request's wall-clock budget.
func (s *Server) effectiveDeadline(req time.Duration) time.Duration {
	d := req
	if d == 0 && s.cfg.DefaultDeadline > 0 {
		d = s.cfg.DefaultDeadline
	}
	if s.cfg.MaxDeadline > 0 && (d <= 0 || d > s.cfg.MaxDeadline) {
		d = s.cfg.MaxDeadline
	}
	if d < 0 {
		d = 0
	}
	return d
}

// panicError mirrors bench.LoopPanicError: one request's panic is
// recovered, stamped with its stack, and isolated to that request.
type panicError struct {
	Loop      string
	Recovered any
	Stack     []byte
}

func (e *panicError) Error() string {
	return fmt.Sprintf("server: %s: panic: %v", e.Loop, e.Recovered)
}

// safeCompile is CompileContext behind a panic barrier.
func (s *Server) safeCompile(ctx context.Context, l *ir.Loop, opt core.Options) (c *core.Compiled, err error) {
	defer func() {
		if r := recover(); r != nil {
			c, err = nil, &panicError{Loop: l.Name, Recovered: r, Stack: debug.Stack()}
		}
	}()
	return core.CompileContext(ctx, l, opt)
}

// outcomeOf maps a compilation result onto the wire response and HTTP
// status, and decides cacheability.
func (s *Server) outcomeOf(norm *wire.Request, loop *ir.Loop, schedName, hash string, c *core.Compiled, err error) outcome {
	resp := &wire.Response{
		Hash:      hash,
		Loop:      loop.Name,
		Machine:   norm.Machine,
		Scheduler: schedName,
	}
	if c != nil && c.Result != nil {
		b := c.Result.Bounds
		resp.Bounds = wire.Bounds{ResMII: b.ResMII, RecMII: b.RecMII, MII: b.MII}
		resp.Effort = wire.EffortOf(c.Result.Stats)
	}

	var pe *panicError
	var be *sched.BudgetError
	switch {
	case err == nil:
		// fall through to the success body below
	case errors.As(err, &pe):
		s.m.panics.Inc()
		return s.respOutcome(http.StatusInternalServerError, obs.OutcomePanic, resp, &wire.Error{
			Kind: wire.ErrKindPanic, Message: pe.Error(),
		}, false)
	case errors.As(err, &be):
		s.m.budgetExhausted.Inc()
		// The outcome label carries the exhausted bound (deadline,
		// central-iterations, ii-attempts, canceled), so the labelled
		// compile counters can tell cancellation from exhaustion.
		name := be.Reason
		if name == "" {
			name = obs.OutcomeBudgetExhausted
		}
		return s.respOutcome(http.StatusGatewayTimeout, name, resp, &wire.Error{
			Kind:    wire.ErrKindBudgetExhausted,
			Message: be.Error(),
			Reason:  be.Reason,
			MII:     be.MII,
			LastII:  be.LastII,
		}, false)
	case errors.Is(err, sched.ErrInfeasible):
		s.m.infeasible.Inc()
		var ie *sched.InfeasibleError
		e := &wire.Error{Kind: wire.ErrKindInfeasible, Message: err.Error()}
		if errors.As(err, &ie) {
			e.MII, e.LastII = ie.MII, ie.LastII
		}
		// An infeasible verdict is deterministic for a given request
		// (the II ceiling is part of the content hash), so cache it.
		return s.respOutcome(http.StatusUnprocessableEntity, obs.OutcomeInfeasible, resp, e, true)
	default:
		s.m.internalErrors.Inc()
		return s.respOutcome(http.StatusInternalServerError, obs.OutcomeError, resp, &wire.Error{
			Kind: wire.ErrKindInternal, Message: err.Error(),
		}, false)
	}

	res := c.Result
	resp.OK = c.OK()
	resp.Degraded = c.Degraded
	if !c.OK() {
		// Defensive: core.CompileContext reports infeasibility via err,
		// so this branch only guards external Result producers.
		s.m.infeasible.Inc()
		return s.respOutcome(http.StatusUnprocessableEntity, obs.OutcomeInfeasible, resp, &wire.Error{
			Kind:    wire.ErrKindInfeasible,
			Message: fmt.Sprintf("no feasible schedule (last II attempted %d)", res.FailedII),
			MII:     res.Bounds.MII,
			LastII:  res.FailedII,
		}, true)
	}
	s.m.compileOK.Inc()
	name := obs.OutcomeOK
	if c.Degraded {
		s.m.compileDegraded.Inc()
		name = obs.OutcomeDegraded
	}
	sc := res.Schedule
	resp.II = sc.II
	resp.Length = sc.Length()
	resp.Stages = sc.Stages()
	resp.Times = sc.Time
	resp.MaxLive = c.RR.MaxLive
	resp.MinAvg = c.MinAvg
	resp.ICR = c.ICR
	resp.GPRs = c.GPRs
	if mii := res.Bounds.MII; mii > 0 {
		s.m.iiOverMII.Observe(float64(sc.II) / float64(mii))
	}
	s.m.maxLive.Observe(float64(c.RR.MaxLive))
	// Degraded schedules come from a wall-clock fallback and are not
	// reproducible; keep them out of the cache.
	return s.respOutcome(http.StatusOK, name, resp, nil, !c.Degraded)
}

func (s *Server) respOutcome(status int, name string, resp *wire.Response, e *wire.Error, cacheable bool) outcome {
	resp.Error = e
	body, err := json.Marshal(resp)
	if err != nil {
		body = []byte(fmt.Sprintf(`{"error":{"kind":%q,"message":%q}}`, wire.ErrKindInternal, err.Error()))
		status, cacheable = http.StatusInternalServerError, false
	}
	return outcome{status: status, name: name, body: body, cacheable: cacheable}
}

func (s *Server) errOutcome(status int, e *wire.Error) outcome {
	body, _ := json.Marshal(&wire.Response{Error: e})
	return outcome{status: status, name: e.Kind, body: body}
}

func (s *Server) badRequest(w http.ResponseWriter, err error) {
	s.m.badRequests.Inc()
	s.writeError(w, http.StatusBadRequest, &wire.Error{
		Kind: wire.ErrKindBadRequest, Message: err.Error(),
	}, "")
}

func (s *Server) writeError(w http.ResponseWriter, status int, e *wire.Error, cacheState string) {
	body, _ := json.Marshal(&wire.Response{Error: e})
	s.writeRaw(w, status, body, cacheState)
}

// writeRaw writes a serialized response. cacheState ("hit", "miss",
// "dedup") lands in the X-Lsmsd-Cache header, never in the body, so
// cached replays stay byte-identical to the original response.
func (s *Server) writeRaw(w http.ResponseWriter, status int, body []byte, cacheState string) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	if cacheState != "" {
		h.Set("X-Lsmsd-Cache", cacheState)
	}
	if status == http.StatusTooManyRequests {
		secs := int(s.cfg.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		h.Set("Retry-After", strconv.Itoa(secs))
	}
	w.WriteHeader(status)
	w.Write(body)
}

func (s *Server) handleSchedulers(w http.ResponseWriter, r *http.Request) {
	names := core.Schedulers()
	out := struct {
		Schedulers []core.SchedulerName `json:"schedulers"`
		Default    core.SchedulerName   `json:"default"`
	}{Schedulers: names, Default: core.SchedSlack}
	body, _ := json.Marshal(out)
	s.writeRaw(w, http.StatusOK, body, "")
}

// handleMachines lists the registered targets with their unit mixes,
// mirroring /v1/schedulers: what can this daemon compile for, and with
// what resources. Clients with a target the daemon has never heard of
// embed a machine_spec in the compile request instead.
func (s *Server) handleMachines(w http.ResponseWriter, r *http.Request) {
	type unit struct {
		Name         string `json:"name"`
		Count        int    `json:"count"`
		NotPipelined bool   `json:"not_pipelined,omitempty"`
	}
	type target struct {
		Name  string `json:"name"`
		Units []unit `json:"units"`
	}
	descs := machine.Machines()
	out := struct {
		Machines []target `json:"machines"`
		Default  string   `json:"default"`
	}{Machines: make([]target, 0, len(descs)), Default: machine.PaperMachine}
	for _, d := range descs {
		t := target{Name: d.Name}
		for _, u := range d.Units() {
			t.Units = append(t.Units, unit{Name: u.Name, Count: u.Count, NotPipelined: u.NotPipelined})
		}
		out.Machines = append(out.Machines, t)
	}
	body, _ := json.Marshal(out)
	s.writeRaw(w, http.StatusOK, body, "")
}

// ready is the readiness verdict behind /readyz and lsmsd_slo_ready:
// the server is unready when draining, when the SLO burn rate exceeds
// the threshold in both windows, or when the refine queue is wedged
// solid. Each of these degrades readiness while /healthz (liveness)
// still answers 200 — the deploy orchestrator routes traffic away
// before anything restarts the process.
func (s *Server) ready() (bool, string) {
	if s.gate.isDraining() {
		return false, "draining"
	}
	if s.slo.Burning(s.cfg.SLOBurnThreshold) {
		return false, "slo-burn"
	}
	if s.refine != nil && cap(s.refine.jobs) > 0 && len(s.refine.jobs) == cap(s.refine.jobs) {
		return false, "refine-wedged"
	}
	return true, "ok"
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ready, reason := s.ready()
	code := http.StatusOK
	if !ready {
		code = http.StatusServiceUnavailable
	}
	snap := s.slo.Snapshot()
	out := struct {
		Ready     bool    `json:"ready"`
		Reason    string  `json:"reason"`
		BurnShort float64 `json:"burn_rate_5m"`
		BurnLong  float64 `json:"burn_rate_1h"`
		BurnMax   float64 `json:"burn_threshold"`
	}{ready, reason, snap.Short.BurnRate(), snap.Long.BurnRate(), s.cfg.SLOBurnThreshold}
	body, _ := json.Marshal(out)
	s.writeRaw(w, code, body, "")
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.gate.isDraining() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	out := struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		Workers       int     `json:"workers"`
		Running       int     `json:"running"`
		Waiting       int     `json:"waiting"`
		CacheEntries  int     `json:"cache_entries"`
	}{status, time.Since(s.started).Seconds(), s.cfg.Workers, s.adm.running(), s.adm.waiting(), s.store.Len()}
	body, _ := json.Marshal(out)
	s.writeRaw(w, code, body, "")
}
