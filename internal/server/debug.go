package server

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"

	"repro/internal/obs"
)

// DebugHandler serves the process-introspection surface: the standard
// net/http/pprof endpoints, the flight recorder, and the SLO tracker.
// It is deliberately not part of Handler() — cmd/lsmsd mounts it on a
// separate listener (-debug-addr) so profiling and trace dumps are
// never reachable from the public compile port.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/flightrecorder", s.handleFlightRecorder)
	mux.HandleFunc("/debug/slo", s.handleSLO)
	return mux
}

// handleFlightRecorder dumps the last-N compile traces, newest last,
// including the event tail retained for failed and degraded runs.
// ?trace=<32-hex-trace-id> narrows the dump to the entries belonging to
// one W3C trace — the "what did this request do on this node" query.
func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if id := r.URL.Query().Get("trace"); id != "" {
		s.flight.WriteJSONFilter(w, func(t *obs.Trace) bool {
			return t.Ctx.TraceID.String() == id
		})
		return
	}
	s.flight.WriteJSON(w)
}

// handleSLO serves the SLO tracker's full state: both windows' counts
// and burn rates, the configured objectives and threshold, and the
// current readiness verdict.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	ready, reason := s.ready()
	out := struct {
		obs.SLOSnapshot
		BurnThreshold float64 `json:"burn_threshold"`
		Ready         bool    `json:"ready"`
		Reason        string  `json:"reason"`
	}{s.slo.Snapshot(), s.cfg.SLOBurnThreshold, ready, reason}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}
