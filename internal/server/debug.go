package server

import (
	"net/http"
	"net/http/pprof"
)

// DebugHandler serves the process-introspection surface: the standard
// net/http/pprof endpoints and the flight recorder. It is deliberately
// not part of Handler() — cmd/lsmsd mounts it on a separate listener
// (-debug-addr) so profiling and trace dumps are never reachable from
// the public compile port.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/flightrecorder", s.handleFlightRecorder)
	return mux
}

// handleFlightRecorder dumps the last-N compile traces, newest last,
// including the event tail retained for failed and degraded runs.
func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.flight.WriteJSON(w)
}
