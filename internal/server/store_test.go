package server

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fixture"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/wire"
)

// corpusBodies wire-encodes the kernel portion of the loopgen corpus —
// the workload the restart tests replay.
func corpusBodies(t *testing.T) [][]byte {
	t.Helper()
	suite, err := loopgen.Build(loopgen.Options{Size: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	bodies := make([][]byte, 0, len(suite.Loops))
	for _, l := range suite.Loops {
		bodies = append(bodies, requestBody(t, l.CL.Loop, "slack", wire.Options{}))
	}
	if len(bodies) == 0 {
		t.Fatal("empty corpus")
	}
	return bodies
}

// TestRestartByteIdentity is the tentpole's acceptance test: compile
// the kernel corpus, shut the server down, start a new server over the
// same store directory, and replay — every response must be served
// from the disk tier ("hit-disk"), byte-identical to the pre-restart
// response, without scheduling anything.
func TestRestartByteIdentity(t *testing.T) {
	dir := t.TempDir()
	bodies := corpusBodies(t)

	s1, err := New(Config{Workers: 2, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	first := make([][]byte, len(bodies))
	for i, body := range bodies {
		r, b := post(t, ts1.URL, body)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("corpus compile %d: status %d, body %s", i, r.StatusCode, b)
		}
		first[i] = b
	}
	ts1.Close()
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newTestServer(t, Config{Workers: 2, StoreDir: dir})
	if loaded, rejected, ok := s2.StoreLoadReport(); !ok || loaded != len(bodies) || rejected != 0 {
		t.Fatalf("LoadReport = %d loaded, %d rejected, ok=%v; want %d, 0, true",
			loaded, rejected, ok, len(bodies))
	}
	eventsBefore := schedEventsTotal(s2.Metrics())
	for i, body := range bodies {
		r, b := post(t, ts2.URL, body)
		if got := r.Header.Get("X-Lsmsd-Cache"); got != "hit-disk" {
			t.Errorf("replay %d cache header: %q, want hit-disk", i, got)
		}
		if !bytes.Equal(b, first[i]) {
			t.Errorf("replay %d not byte-identical:\n%s\nvs\n%s", i, first[i], b)
		}
	}
	if after := schedEventsTotal(s2.Metrics()); after != eventsBefore {
		t.Errorf("disk replays emitted scheduler events: %d before, %d after", eventsBefore, after)
	}
	if hits := metricValue(t, ts2.URL, "lsmsd_store_hits_total"); hits != int64(len(bodies)) {
		t.Errorf("lsmsd_store_hits_total = %d, want %d", hits, len(bodies))
	}
	if recs := metricValue(t, ts2.URL, "lsmsd_store_records"); recs < int64(len(bodies)) {
		t.Errorf("lsmsd_store_records = %d, want >= %d", recs, len(bodies))
	}
}

// TestDiskHitPromotes proves the tier composition: the first replay
// after a restart answers from disk, the second from memory — the disk
// hit was promoted into the LRU tier.
func TestDiskHitPromotes(t *testing.T) {
	dir := t.TempDir()
	body := requestBody(t, fixture.Daxpy(machine.Cydra()), "slack", wire.Options{})

	s1, err := New(Config{Workers: 2, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	post(t, ts1.URL, body)
	ts1.Close()
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	_, ts2 := newTestServer(t, Config{Workers: 2, StoreDir: dir})
	r1, _ := post(t, ts2.URL, body)
	if got := r1.Header.Get("X-Lsmsd-Cache"); got != "hit-disk" {
		t.Fatalf("first replay: %q, want hit-disk", got)
	}
	r2, _ := post(t, ts2.URL, body)
	if got := r2.Header.Get("X-Lsmsd-Cache"); got != "hit" {
		t.Fatalf("second replay: %q, want hit (promoted to memory)", got)
	}
}

// TestMemoryTierDisabled runs disk-only (CacheEntries < 0): every
// repeat is a disk hit, and nothing is promoted.
func TestMemoryTierDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, CacheEntries: -1, StoreDir: t.TempDir()})
	body := requestBody(t, fixture.Daxpy(machine.Cydra()), "slack", wire.Options{})
	post(t, ts.URL, body)
	for i := 0; i < 2; i++ {
		r, _ := post(t, ts.URL, body)
		if got := r.Header.Get("X-Lsmsd-Cache"); got != "hit-disk" {
			t.Fatalf("repeat %d: %q, want hit-disk", i, got)
		}
	}
}

// TestServerCorruptStoreMisses is the service-level corruption story: a
// record damaged on disk between runs is never served — the request
// misses, recompiles, and the reject is visible in /metrics.
func TestServerCorruptStoreMisses(t *testing.T) {
	dir := t.TempDir()
	body := requestBody(t, fixture.Daxpy(machine.Cydra()), "slack", wire.Options{})

	s1, err := New(Config{Workers: 2, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	_, want := post(t, ts1.URL, body)
	ts1.Close()
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Flip the last byte of the log — inside the record's body, which
	// the CRC covers.
	path := filepath.Join(dir, "lsmsd.store")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newTestServer(t, Config{Workers: 2, StoreDir: dir})
	if _, rejected, ok := s2.StoreLoadReport(); !ok || rejected != 1 {
		t.Fatalf("rejected = %d, want 1", rejected)
	}
	r, b := post(t, ts2.URL, body)
	if got := r.Header.Get("X-Lsmsd-Cache"); got != "miss" {
		t.Fatalf("post-corruption request: %q, want miss (never serve damaged bytes)", got)
	}
	if r.StatusCode != http.StatusOK || !bytes.Equal(b, want) {
		t.Fatalf("recompile diverged: status %d", r.StatusCode)
	}
	if rej := metricValue(t, ts2.URL, "lsmsd_store_rejects_total"); rej != 1 {
		t.Errorf("lsmsd_store_rejects_total = %d, want 1", rej)
	}
}

// TestWarmStart exercises the precompile path: a cold warm-start
// compiles the corpus, a second pass finds everything warm, and after a
// restart over the same directory the disk tier alone satisfies it.
func TestWarmStart(t *testing.T) {
	dir := t.TempDir()
	suite, err := loopgen.Build(loopgen.Options{Size: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]*wire.Request, 0, len(suite.Loops))
	for _, l := range suite.Loops {
		req, err := wire.NewRequest(l.CL.Loop, "slack", wire.Options{})
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, req)
	}

	s1, err := New(Config{Workers: 2, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s1.WarmStart(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != len(reqs) || st.Compiled != len(reqs) || st.Warm != 0 || st.Failed != 0 {
		t.Fatalf("cold warm-start stats: %+v", st)
	}
	st, err = s1.WarmStart(context.Background(), reqs)
	if err != nil || st.Warm != len(reqs) || st.Compiled != 0 {
		t.Fatalf("second warm-start stats: %+v err=%v", st, err)
	}
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newTestServer(t, Config{Workers: 2, StoreDir: dir})
	st, err = s2.WarmStart(context.Background(), reqs)
	if err != nil || st.Warm != len(reqs) || st.Compiled != 0 || st.Failed != 0 {
		t.Fatalf("post-restart warm-start stats: %+v err=%v", st, err)
	}
	// And the warmed store serves traffic without scheduling.
	events := schedEventsTotal(s2.Metrics())
	r, _ := post(t, ts2.URL, requestBody(t, suite.Loops[0].CL.Loop, "slack", wire.Options{}))
	if got := r.Header.Get("X-Lsmsd-Cache"); got != "hit" && got != "hit-disk" {
		t.Fatalf("warmed request: %q, want a store hit", got)
	}
	if after := schedEventsTotal(s2.Metrics()); after != events {
		t.Error("warmed request scheduled")
	}
}
