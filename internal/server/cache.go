package server

import (
	"container/list"
	"sync"
)

// resultCache is a content-addressed LRU of serialized compile
// responses, keyed by the request's canonical wire hash. Values are
// the exact response bytes (plus status), so a hit replays the
// original response byte-identically; only deterministic outcomes are
// admitted (see outcome.cacheable).
type resultCache struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type cacheEntry struct {
	key    string
	status int
	body   []byte
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the cached response for key, refreshing its recency.
func (c *resultCache) get(key string) (status int, body []byte, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return 0, nil, false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.status, e.body, true
}

// add stores a response, evicting the least recently used entry when
// the cache is full. A max of 0 disables caching.
func (c *resultCache) add(key string, status int, body []byte) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.status, e.body = status, body
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, status: status, body: body})
	for c.ll.Len() > c.max {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.m, el.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached responses.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
