package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/wire"
)

// WarmStats summarizes one WarmStart pass over a corpus.
type WarmStats struct {
	// Total is the number of corpus requests considered.
	Total int
	// Warm counts requests whose result was already in the store — on a
	// restart with a populated disk tier, the whole corpus lands here
	// and nothing compiles.
	Warm int
	// Compiled counts requests compiled now whose (cacheable) result
	// entered the store.
	Compiled int
	// Failed counts requests that could not be normalized or whose
	// compile produced a non-cacheable outcome (degraded, budget
	// exhausted, internal error).
	Failed int
}

func (w WarmStats) String() string {
	return fmt.Sprintf("total=%d warm=%d compiled=%d failed=%d", w.Total, w.Warm, w.Compiled, w.Failed)
}

// WarmStart pushes a corpus of compile requests through the normal
// admission-controlled pipeline so their results populate the store
// before real traffic arrives. Requests already resident in the store
// (for example, loaded from the disk tier on restart) are skipped —
// warm-start verifies rather than recompiles. Corpus compiles run at
// most Config.Workers at a time and share the worker semaphore with
// live traffic, so a warm-start never starves real requests; it stops
// early when ctx is canceled or the server starts draining.
func (s *Server) WarmStart(ctx context.Context, reqs []*wire.Request) (WarmStats, error) {
	var warm, compiled, failed atomic.Int64
	var firstErr error
	var errOnce sync.Once
	fail := func(err error) {
		failed.Add(1)
		errOnce.Do(func() { firstErr = err })
	}

	workers := s.cfg.Workers
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers < 1 {
		workers = 1
	}
	// One root span context identifies this warm-start run; every corpus
	// compile traces under its own fresh TraceID with a span link back to
	// this root, so the run's traces group without pretending the
	// compiles nest inside one request.
	warmRoot := obs.NewSpanContext()
	warmRoot.Sampled = obs.Sample(warmRoot.TraceID, s.cfg.TraceSample)
	feed := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tail := sched.NewTailRecorder(0)
			for i := range feed {
				s.warmOne(ctx, reqs[i], i, warmRoot, tail, &warm, &compiled, fail)
				tail.Reset()
			}
		}()
	}
feeding:
	for i := range reqs {
		select {
		case feed <- i:
		case <-ctx.Done():
			errOnce.Do(func() { firstErr = ctx.Err() })
			break feeding
		}
	}
	close(feed)
	wg.Wait()

	stats := WarmStats{
		Total:    len(reqs),
		Warm:     int(warm.Load()),
		Compiled: int(compiled.Load()),
		Failed:   int(failed.Load()),
	}
	return stats, firstErr
}

// warmOne precompiles one corpus request: store probe first, then the
// same admitAndCompile path a live request takes.
func (s *Server) warmOne(ctx context.Context, req *wire.Request, i int, warmRoot obs.SpanContext,
	tail *sched.TailRecorder, warm, compiled *atomic.Int64, fail func(error)) {
	norm, loop, err := req.Normalize()
	if err != nil {
		fail(fmt.Errorf("warm-start request %d: %w", i, err))
		return
	}
	schedName := norm.Scheduler
	if schedName == "" {
		schedName = string(core.SchedSlack)
	}
	if _, ok := core.Lookup(core.SchedulerName(schedName)); !ok {
		fail(fmt.Errorf("warm-start request %d: unknown scheduler %q", i, schedName))
		return
	}
	hash, err := norm.Hash()
	if err != nil {
		fail(fmt.Errorf("warm-start request %d: %w", i, err))
		return
	}
	if _, ok := s.store.Get(hash); ok {
		warm.Add(1)
		return
	}
	if !s.gate.enter() {
		fail(fmt.Errorf("warm-start request %d: server is draining", i))
		return
	}
	defer s.gate.exit()
	c, leader := s.flights.join(hash)
	if !leader {
		// A live request is already compiling this key; its write-through
		// warms the store for us.
		select {
		case <-c.done:
			if c.out.cacheable {
				compiled.Add(1)
			} else {
				fail(fmt.Errorf("warm-start request %d: shared compile was not cacheable (%s)", i, c.out.name))
			}
		case <-ctx.Done():
			fail(fmt.Errorf("warm-start request %d: %w", i, ctx.Err()))
		}
		return
	}
	reqID := fmt.Sprintf("warm-%04d", i)
	tr := obs.NewTrace(reqID, loop.Name)
	tr.Scheduler = schedName
	tr.Ctx = obs.SpanContext{
		TraceID: obs.NewTraceID(),
		SpanID:  obs.NewSpanID(),
		Sampled: warmRoot.Sampled,
	}
	tr.Links = []obs.SpanContext{warmRoot}
	out := s.admitAndCompile(ctx, norm, loop, schedName, hash, reqID, tail, tr)
	s.flights.finish(hash, c, out)
	if out.cacheable {
		compiled.Add(1)
	} else {
		fail(fmt.Errorf("warm-start request %d (%s): %s outcome not cacheable", i, loop.Name, out.name))
	}
}
