package server

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/ir"
	"repro/internal/lifetime"
	"repro/internal/mindist"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/wire"
)

// The refinement tier (Config.Refine): requests are answered
// immediately by the scheduler they asked for, and a small background
// worker pool keeps searching with the exact backend under a long
// budget. When the exact result strictly improves on the served one —
// lower II, or equal II with lower MaxLive — the store record is
// upgraded in place (disk first, then memory, see store.Tiered.Upgrade)
// so every subsequent hit serves the refined schedule, flagged with the
// X-Lsmsd-Refined response header. A key is enqueued once, on the cold
// compile that created its record; hits never re-enqueue, so an
// exhausted refinement (budget ran out without an improvement) leaves
// the record as-is permanently — by then the exact search has had a far
// larger budget than the synchronous compile, and retrying it on every
// hit would burn the background pool on proven-unimprovable keys.

// refineJob is one queued refinement: a private copy of the raw request
// bytes (the handler's decode buffers are pooled and recycled, so the
// worker re-decodes from its own copy) plus the served response bytes
// for the strict-improvement comparison.
type refineJob struct {
	hash      string
	reqID     string
	schedName string
	loopName  string
	rawReq    []byte // owned copy of the request body
	baseBody  []byte // served response bytes (immutable by outcome contract)
	// link is the originating request's span context. The refinement runs
	// under a fresh TraceID — it outlives the request and belongs to no
	// caller — but its trace carries a span link back here, so a store
	// upgrade is attributable to the request that caused it.
	link obs.SpanContext
}

// refiner is the background worker pool. Workers honor ctx — Close
// cancels it and the exact search's budget guard observes it within
// one check stride — and drain nothing on shutdown: queued jobs are
// abandoned, which is safe because refinement is a pure optimization
// of already-correct records.
type refiner struct {
	s      *Server
	jobs   chan refineJob
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

func newRefiner(s *Server) *refiner {
	r := &refiner{s: s, jobs: make(chan refineJob, s.cfg.RefineQueue)}
	r.ctx, r.cancel = context.WithCancel(context.Background())
	for i := 0; i < s.cfg.RefineWorkers; i++ {
		r.wg.Add(1)
		go r.run()
	}
	return r
}

// enqueue offers a job without blocking the request path; a full queue
// drops the job (the record stays correct, just unrefined).
func (r *refiner) enqueue(job refineJob) bool {
	select {
	case r.jobs <- job:
		return true
	default:
		return false
	}
}

// close stops the workers and waits for the in-flight refinements to
// observe the cancellation. Called before the store closes, so an
// upgrade that already started either completes into a live store or
// is dropped by the closed tiers — never half-written (each tier's Put
// is atomic under its own lock).
func (r *refiner) close() {
	r.cancel()
	r.wg.Wait()
}

func (r *refiner) run() {
	defer r.wg.Done()
	var dec wire.Scratch
	for {
		select {
		case <-r.ctx.Done():
			return
		case job := <-r.jobs:
			r.process(&dec, job)
			dec.Reset()
		}
	}
}

// process runs one refinement end to end: re-decode, exact search,
// strict-improvement comparison, store upgrade. Every job leaves one
// `refine` trace in the flight recorder and bumps exactly one of the
// improved/unchanged/exhausted counters.
func (r *refiner) process(dec *wire.Scratch, job refineJob) {
	s := r.s
	start := time.Now()
	s.m.refineStarted.Inc()
	tr := obs.NewTrace(job.reqID, job.loopName)
	tr.Scheduler = string(core.SchedExact)
	tr.Ctx = obs.SpanContext{
		TraceID: obs.NewTraceID(),
		SpanID:  obs.NewSpanID(),
		Sampled: job.link.Sampled, // inherit the originating verdict
	}
	if !job.link.IsZero() {
		tr.Links = []obs.SpanContext{job.link}
	}
	sp := tr.Start("refine")

	outcome := "exhausted"
	defer func() {
		sp.End(outcome)
		tr.Finish(outcome)
		s.flight.Record(tr)
		s.exportTrace(tr)
		switch outcome {
		case "improved":
			s.m.refineImproved.Inc()
		case "unchanged":
			s.m.refineUnchanged.Inc()
		default:
			s.m.refineExhausted.Inc()
		}
		if s.logger != nil {
			s.logger.Info("refine",
				"request_id", job.reqID,
				"loop", job.loopName,
				"scheduler", job.schedName,
				"hash", job.hash,
				"outcome", outcome,
				"duration_ms", float64(time.Since(start).Microseconds())/1000,
			)
		}
	}()

	req, err := dec.DecodeRequest(job.rawReq)
	if err != nil {
		tr.Err = err.Error()
		return
	}
	norm, loop, err := req.Normalize()
	if err != nil {
		tr.Err = err.Error()
		return
	}
	var base wire.Response
	if err := json.Unmarshal(job.baseBody, &base); err != nil {
		tr.Err = err.Error()
		return
	}

	// The request's structural options (MaxII, StartII, increment mode)
	// still bind — a refined schedule must satisfy the same contract the
	// original answer did — but the synchronous deadline does not: the
	// whole point of the tier is searching under a longer budget.
	cfg := norm.Options.SchedConfig()
	cfg.Budget.Deadline = s.cfg.RefineDeadline
	cfg.Budget.MaxCentralIters = s.cfg.RefineNodes
	cfg.Budget.MaxIIAttempts = 0
	out, err := exact.New(cfg).Search(r.ctx, loop)
	if err != nil || out == nil || out.Result == nil || !out.Result.OK() {
		if err != nil {
			tr.Err = err.Error()
		}
		return
	}
	res := out.Result
	eII, eML := res.Schedule.II, out.MaxLive
	sp.Int("base_ii", int64(base.II)).Int("base_maxlive", int64(base.MaxLive))
	sp.Int("ii", int64(eII)).Int("maxlive", int64(eML))
	if out.Proven {
		sp.Int("proven", 1)
	}
	if eII > base.II || (eII == base.II && eML >= base.MaxLive) {
		outcome = "unchanged"
		return
	}

	md := res.MinDist
	if md == nil || md.II != res.Schedule.II {
		md, err = mindist.Compute(loop, res.Schedule.II)
		if err != nil {
			tr.Err = err.Error()
			return
		}
	}
	sc := res.Schedule
	b := res.Bounds
	resp := &wire.Response{
		Hash:      job.hash,
		Loop:      loop.Name,
		Machine:   norm.Machine,
		Scheduler: job.schedName,
		OK:        true,
		Bounds:    wire.Bounds{ResMII: b.ResMII, RecMII: b.RecMII, MII: b.MII},
		II:        sc.II,
		Length:    sc.Length(),
		Stages:    sc.Stages(),
		Times:     sc.Time,
		MaxLive:   eML,
		MinAvg:    mindist.MinAvg(loop, md, ir.RR),
		ICR:       lifetime.ICRUsage(loop, sc),
		GPRs:      loop.GPRCount(),
		Effort:    wire.EffortOf(res.Stats),
		Refined:   true,
	}
	body, err := json.Marshal(resp)
	if err != nil {
		tr.Err = err.Error()
		return
	}
	if r.ctx.Err() != nil {
		return // shutting down: don't race the store teardown
	}
	s.store.Upgrade(job.hash, store.Record{
		Status:  http.StatusOK,
		Machine: norm.Machine,
		Body:    body,
		Refined: true,
	})
	outcome = "improved"
}
