package server

import (
	"context"
	"sync"
)

// admission is the server's two-stage admission control. The queue
// semaphore bounds the total number of admitted compile requests
// (running plus waiting); entering it never blocks — when it is full
// the caller must reject with 429 rather than let a traffic spike grow
// an unbounded backlog. The worker semaphore bounds how many compiles
// actually run; admitted requests block here, forming the (bounded)
// wait queue.
type admission struct {
	queue   chan struct{}
	workers chan struct{}
}

func newAdmission(workers, queueDepth int) *admission {
	return &admission{
		queue:   make(chan struct{}, workers+queueDepth),
		workers: make(chan struct{}, workers),
	}
}

// tryEnter claims a queue slot without blocking; false means overload.
func (a *admission) tryEnter() bool {
	select {
	case a.queue <- struct{}{}:
		return true
	default:
		return false
	}
}

// leave releases the queue slot claimed by tryEnter.
func (a *admission) leave() { <-a.queue }

// acquireWorker blocks until a worker slot frees up or ctx ends.
func (a *admission) acquireWorker(ctx context.Context) error {
	select {
	case a.workers <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// releaseWorker frees the slot claimed by acquireWorker.
func (a *admission) releaseWorker() { <-a.workers }

// running reports how many compiles hold a worker slot.
func (a *admission) running() int { return len(a.workers) }

// waiting reports how many admitted requests are queued for a worker.
func (a *admission) waiting() int {
	n := len(a.queue) - len(a.workers)
	if n < 0 {
		n = 0
	}
	return n
}

// drainGate tracks in-flight requests for graceful shutdown. Unlike a
// WaitGroup it admits and drains under one lock, so enter can never
// race a concurrent Wait: once draining starts, enter refuses, and
// idle closes exactly when the last admitted request exits.
type drainGate struct {
	mu       sync.Mutex
	active   int
	draining bool
	idle     chan struct{} // closed when draining and active == 0
}

func newDrainGate() *drainGate { return &drainGate{idle: make(chan struct{})} }

// enter admits one request; false means the server is draining.
func (g *drainGate) enter() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return false
	}
	g.active++
	return true
}

// exit retires one admitted request.
func (g *drainGate) exit() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.active--
	if g.draining && g.active == 0 {
		g.closeIdleLocked()
	}
}

// beginDrain flips the gate; idempotent.
func (g *drainGate) beginDrain() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return
	}
	g.draining = true
	if g.active == 0 {
		g.closeIdleLocked()
	}
}

func (g *drainGate) closeIdleLocked() {
	select {
	case <-g.idle:
	default:
		close(g.idle)
	}
}

func (g *drainGate) isDraining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

func (g *drainGate) inFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.active
}

// outcome is the terminal state of one compile request, shared between
// a singleflight leader and its followers.
type outcome struct {
	status int
	// name is the obs outcome label for this terminal state — the value
	// stamped on the flight-recorder trace, the {outcome} metric label,
	// and the structured request log.
	name string
	body []byte
	// cacheable marks deterministic outcomes (success, infeasible)
	// that may enter the result cache; budget-exhausted, degraded, and
	// error outcomes are excluded (DESIGN.md §5c).
	cacheable bool
}

// call is one in-flight singleflight computation.
type call struct {
	done chan struct{}
	out  outcome
}

// flightGroup deduplicates concurrent identical requests (same content
// hash): the first becomes the leader and compiles; the rest wait for
// the leader's outcome and share its response bytes. Unlike a cache
// this holds no history — entries live only while the leader runs.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*call
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*call)}
}

// join returns the call for key and whether the caller is its leader.
func (g *flightGroup) join(key string) (*call, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c, false
	}
	c := &call{done: make(chan struct{})}
	g.m[key] = c
	return c, true
}

// finish publishes the leader's outcome and retires the call.
func (g *flightGroup) finish(key string, c *call, out outcome) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	c.out = out
	close(c.done)
}
