package server

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sched"
)

// metrics is the server's obs.Registry plus the handles the request
// path mutates. Every mutation and the whole scrape render run under
// the registry's one mutex, so a scrape observes a single consistent
// snapshot: a request counted in lsmsd_requests_total is also counted
// in exactly one tier/outcome counter — the guarantee the old
// per-atomic /metrics could not make (a scrape could land between the
// requests_total increment and the outcome increment and see totals
// that do not add up).
type metrics struct {
	reg *obs.Registry

	requests        *obs.Family
	cacheHitsC      *obs.Family
	cacheMissesC    *obs.Family
	storeHitsC      *obs.Family
	storeMissesC    *obs.Family
	deduped         *obs.Family
	rejected        *obs.Family
	panics          *obs.Family
	compileOK       *obs.Family
	compileDegraded *obs.Family
	infeasible      *obs.Family
	budgetExhausted *obs.Family
	badRequests     *obs.Family
	internalErrors  *obs.Family

	// Background refinement tier (Config.Refine); every started
	// refinement ends in exactly one of the three outcome counters.
	refineStarted   *obs.Family
	refineImproved  *obs.Family
	refineUnchanged *obs.Family
	refineExhausted *obs.Family

	// The scheduler/outcome-labelled view of finished compiles, and the
	// distribution histograms.
	compiles       *obs.Family // lsmsd_compiles_total{scheduler,outcome}
	compileSeconds *obs.Family // lsmsd_compile_seconds{scheduler,outcome}
	iiOverMII      *obs.Family // lsmsd_ii_over_mii
	maxLive        *obs.Family // lsmsd_maxlive
	queueDepth     *obs.Family // lsmsd_queue_depth

	// hits/lookups back the cache-hit-ratio gauge callback: a GaugeFunc
	// runs under the registry lock and therefore cannot read the
	// counter families, so the ratio derives from these mirrors.
	hits, lookups atomic.Int64
}

func newMetrics(s *Server) *metrics {
	r := obs.NewRegistry()
	m := &metrics{reg: r}
	m.requests = r.Counter("lsmsd_requests_total", "Compile requests received.")
	m.cacheHitsC = r.Counter("lsmsd_cache_hits_total", "Requests answered from the in-memory store tier.")
	m.cacheMissesC = r.Counter("lsmsd_cache_misses_total", "Requests that missed every result-store tier.")
	m.storeHitsC = r.Counter("lsmsd_store_hits_total", "Requests answered from a persistent store tier (served byte-identically across restarts).")
	m.storeMissesC = r.Counter("lsmsd_store_misses_total", "Requests that missed every result-store tier (alias of lsmsd_cache_misses_total, under the store naming).")
	m.deduped = r.Counter("lsmsd_dedup_total", "Requests collapsed onto an identical in-flight compile.")
	m.rejected = r.Counter("lsmsd_rejected_total", "Requests rejected 429 by admission control.")
	m.panics = r.Counter("lsmsd_panics_total", "Per-request panics isolated by the compile barrier.")
	m.compileOK = r.Counter("lsmsd_compile_ok_total", "Compilations that produced a feasible schedule.")
	m.compileDegraded = r.Counter("lsmsd_compile_degraded_total", "Compilations rescued by the list-scheduler fallback.")
	m.infeasible = r.Counter("lsmsd_compile_infeasible_total", "Compilations that exhausted the II ceiling.")
	m.budgetExhausted = r.Counter("lsmsd_compile_budget_exhausted_total", "Compilations that exhausted their budget.")
	m.badRequests = r.Counter("lsmsd_bad_requests_total", "Malformed or unresolvable requests.")
	m.internalErrors = r.Counter("lsmsd_internal_errors_total", "Internal failures.")
	m.refineStarted = r.Counter("lsmsd_refine_started_total", "Background exact refinements started.")
	m.refineImproved = r.Counter("lsmsd_refine_improved_total", "Refinements that strictly improved (II, MaxLive) and upgraded the store record.")
	m.refineUnchanged = r.Counter("lsmsd_refine_unchanged_total", "Refinements whose exact result did not beat the served schedule.")
	m.refineExhausted = r.Counter("lsmsd_refine_exhausted_total", "Refinements that ended without a usable exact result (budget, cancellation, decode failure).")

	m.compiles = r.Counter("lsmsd_compiles_total",
		"Finished compilations by scheduling policy and outcome.", "scheduler", "outcome")
	m.compileSeconds = r.Histogram("lsmsd_compile_seconds",
		"Wall time of one compilation, by scheduling policy and outcome.",
		obs.ExpBuckets(0.0005, 2, 16), "scheduler", "outcome")
	m.iiOverMII = r.Histogram("lsmsd_ii_over_mii",
		"Achieved II over the MII lower bound for feasible schedules (1 = optimal).",
		[]float64{1, 1.02, 1.05, 1.1, 1.2, 1.3, 1.5, 2, 3})
	m.maxLive = r.Histogram("lsmsd_maxlive",
		"MaxLive register pressure of feasible schedules.",
		obs.ExpBuckets(1, 2, 10))
	m.queueDepth = r.Histogram("lsmsd_queue_depth",
		"Admission queue depth observed as each request entered admission.",
		[]float64{0, 1, 2, 4, 8, 16, 32, 64, 128})

	r.GaugeFunc("lsmsd_running", "Compiles holding a worker slot.",
		func() float64 { return float64(s.adm.running()) })
	r.GaugeFunc("lsmsd_waiting", "Admitted requests queued for a worker.",
		func() float64 { return float64(s.adm.waiting()) })
	r.GaugeFunc("lsmsd_cache_entries", "Records held by the result store, summed over tiers.",
		func() float64 { return float64(s.store.Len()) })
	if s.disk != nil {
		r.GaugeFunc("lsmsd_store_records", "Records held by the persistent disk tier.",
			func() float64 { return float64(s.disk.Len()) })
		r.CounterFunc("lsmsd_store_rejects_total", "Store records rejected by checksum or framing verification (on load or on read); rejected records are never served.",
			func() float64 { return float64(s.disk.Stats().Rejects) })
	}
	r.GaugeFunc("lsmsd_cache_hit_ratio", "Cache hits over cache lookups since boot (0 before any lookup).",
		func() float64 {
			if n := m.lookups.Load(); n > 0 {
				return float64(m.hits.Load()) / float64(n)
			}
			return 0
		})
	r.GaugeFunc("lsmsd_flightrecorder_entries", "Compile traces held by the flight recorder.",
		func() float64 { return float64(s.flight.Len()) })
	// Arena pool health (process-wide: the sched arena pool is shared by
	// every compile in the process, not scoped to one Server).
	r.GaugeFunc("lsmsd_arena_inuse", "Pooled scheduler scratch arenas held by in-flight compiles.",
		func() float64 { inUse, _ := sched.ArenaStats(); return float64(inUse) })
	r.CounterFunc("lsmsd_arena_recycled_total", "Scheduler scratch arenas returned to the pool since process start.",
		func() float64 { _, recycled := sched.ArenaStats(); return float64(recycled) })

	// Build identity: the conventional *_build_info constant-1 gauge
	// whose labels say what is running where.
	obs.RegisterBuildInfo(r, "lsmsd_build_info",
		"Build identity of the running lsmsd binary (constant 1; the labels carry the information).",
		[]string{"machines"}, []string{strconv.Itoa(len(machine.Machines()))})

	// Trace exporter health. The closures read s.exporter at scrape time
	// (Stats is nil-safe), so a tracing-off daemon scrapes zeros.
	r.CounterFunc("lsmsd_trace_exported_total", "Traces written to the spool or posted to the collector.",
		func() float64 { return float64(s.exporter.Stats().Exported) })
	r.CounterFunc("lsmsd_trace_dropped_total", "Sampled traces dropped because the export queue was full.",
		func() float64 { return float64(s.exporter.Stats().Dropped) })
	r.CounterFunc("lsmsd_trace_export_failures_total", "Traces dequeued but not delivered (spool write or collector POST failed).",
		func() float64 { return float64(s.exporter.Stats().Failed) })

	// SLO families, derived from the rolling multi-window tracker. Each
	// GaugeFunc snapshots the ring at scrape time — scrape-rate work.
	r.GaugeFunc("lsmsd_slo_objective", "Configured success-rate objective.",
		func() float64 { return s.slo.Snapshot().Objective })
	r.GaugeFunc("lsmsd_slo_requests_1h", "Requests observed by the SLO tracker in the last hour.",
		func() float64 { return float64(s.slo.Snapshot().Long.Total) })
	r.GaugeFunc("lsmsd_slo_errors_1h", "Budget-spending (5xx) responses in the last hour.",
		func() float64 { return float64(s.slo.Snapshot().Long.Errors) })
	r.GaugeFunc("lsmsd_slo_success_ratio_5m", "Success ratio over the 5-minute window (1 when the window is empty).",
		func() float64 { return s.slo.Snapshot().Short.SuccessRate })
	r.GaugeFunc("lsmsd_slo_burn_rate_5m", "Error-budget burn rate over the 5-minute window (1 = sustainable pace; worse of error and latency burns).",
		func() float64 { return s.slo.Snapshot().Short.BurnRate() })
	r.GaugeFunc("lsmsd_slo_burn_rate_1h", "Error-budget burn rate over the 1-hour window.",
		func() float64 { return s.slo.Snapshot().Long.BurnRate() })
	r.GaugeFunc("lsmsd_slo_ready", "The /readyz verdict: 1 ready, 0 degraded (draining, burning, or wedged refine queue).",
		func() float64 {
			if ok, _ := s.ready(); ok {
				return 1
			}
			return 0
		})
	return m
}

// cacheHit / storeHit / storeMiss keep the hit-ratio mirrors in step
// with the counter families. A hit from any tier counts toward the
// ratio; the families split by depth (memory vs persistent).
func (m *metrics) cacheHit() {
	m.cacheHitsC.Inc()
	m.hits.Add(1)
	m.lookups.Add(1)
}

func (m *metrics) storeHit() {
	m.storeHitsC.Inc()
	m.hits.Add(1)
	m.lookups.Add(1)
}

func (m *metrics) storeMiss() {
	m.cacheMissesC.Inc()
	m.storeMissesC.Inc()
	m.lookups.Add(1)
}

// compileDone records the labelled counter and latency histogram for
// one finished compilation. traceID, when non-empty, becomes the
// exemplar on the histogram bucket the observation lands in — the
// trace-correlation channel that never touches label cardinality.
func (m *metrics) compileDone(scheduler, outcome string, seconds float64, traceID string) {
	m.compiles.Inc(scheduler, outcome)
	m.compileSeconds.ObserveExemplar(seconds, "trace_id", traceID, scheduler, outcome)
}

// handleMetrics renders the registry and the folded scheduler event
// stream in the Prometheus text exposition format — scrapeable,
// lintable (obs.LintExposition), and dependency-free. The registry
// renders under its one lock; the scheduler families render from one
// SafeMetrics snapshot, so each section is internally consistent.
//
// The format is negotiated: the default is the classic 0.0.4 text
// format, in which exemplar syntax is illegal and therefore omitted; a
// scraper whose Accept header asks for application/openmetrics-text
// gets the OpenMetrics render — histogram exemplars included,
// terminated by the mandatory "# EOF" line.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	om := obs.AcceptsOpenMetrics(r.Header.Get("Accept"))
	var b strings.Builder
	if om {
		s.m.reg.WriteOpenMetrics(&b)
	} else {
		s.m.reg.WriteText(&b)
	}
	writeSchedFamilies(&b, s.sm.Snapshot(), om)
	if om {
		b.WriteString("# EOF\n")
		w.Header().Set("Content-Type", obs.OpenMetricsContentType)
	} else {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	}
	w.Write([]byte(b.String()))
}

// writeSchedFamilies renders the scheduler event-stream aggregate: the
// per-kind event counters, the per-outcome attempt counters (the
// dimension that distinguishes budget-exhausted from cancelled
// attempts), and the flat effort counters. In OpenMetrics mode the
// counter families are declared without their _total suffix, matching
// the registry's render.
func writeSchedFamilies(b *strings.Builder, m sched.Metrics, openMetrics bool) {
	famName := func(name string) string {
		if openMetrics {
			return strings.TrimSuffix(name, "_total")
		}
		return name
	}
	labelled := func(name, help, label string, counts map[string]int64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n", famName(name), help, famName(name))
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(b, "%s{%s=%q} %d\n", name, label, k, counts[k])
		}
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", famName(name), help, famName(name), name, v)
	}
	labelled("lsmsd_sched_events_total",
		"Scheduler events folded across all requests, by kind.", "kind", m.EventCounts())
	labelled("lsmsd_sched_attempt_outcomes_total",
		"Finished II attempts by outcome (ok, give-up, budget bound, canceled).", "outcome", m.OutcomeCounts())
	counter("lsmsd_sched_attempts_total", "II attempts across all requests.", m.Attempts)
	counter("lsmsd_sched_attempts_ok_total", "Successful II attempts.", m.AttemptsOK)
	counter("lsmsd_sched_scan_failures_total", "Window scans that found no conflict-free cycle.", m.ScanFailures)
	counter("lsmsd_sched_degradations_total", "List-scheduler fallbacks observed in the event stream.", m.Degradations)
}

// schedEventsTotal sums the snapshot's per-kind counters; tests use it
// to prove a cache hit scheduled nothing.
func schedEventsTotal(m sched.Metrics) int64 {
	var n int64
	for _, v := range m.EventCounts() {
		n += v
	}
	return n
}
