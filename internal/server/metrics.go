package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"repro/internal/sched"
)

// handleMetrics renders the service counters and the folded scheduler
// event stream in the Prometheus text exposition format — scrapeable,
// greppable, and dependency-free.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	counter("lsmsd_requests_total", "Compile requests received.", s.requests.Load())
	counter("lsmsd_cache_hits_total", "Requests answered from the result cache.", s.cacheHits.Load())
	counter("lsmsd_cache_misses_total", "Requests that missed the result cache.", s.cacheMisses.Load())
	counter("lsmsd_dedup_total", "Requests collapsed onto an identical in-flight compile.", s.deduped.Load())
	counter("lsmsd_rejected_total", "Requests rejected 429 by admission control.", s.rejected.Load())
	counter("lsmsd_panics_total", "Per-request panics isolated by the compile barrier.", s.panics.Load())
	counter("lsmsd_compile_ok_total", "Compilations that produced a feasible schedule.", s.compileOK.Load())
	counter("lsmsd_compile_degraded_total", "Compilations rescued by the list-scheduler fallback.", s.compileDegraded.Load())
	counter("lsmsd_compile_infeasible_total", "Compilations that exhausted the II ceiling.", s.infeasible.Load())
	counter("lsmsd_compile_budget_exhausted_total", "Compilations that exhausted their budget.", s.budgetExhausted.Load())
	counter("lsmsd_bad_requests_total", "Malformed or unresolvable requests.", s.badRequests.Load())
	counter("lsmsd_internal_errors_total", "Internal failures.", s.internalErrors.Load())
	gauge("lsmsd_running", "Compiles holding a worker slot.", int64(s.adm.running()))
	gauge("lsmsd_waiting", "Admitted requests queued for a worker.", int64(s.adm.waiting()))
	gauge("lsmsd_cache_entries", "Responses held by the result cache.", int64(s.cache.len()))

	m := s.sm.Snapshot()
	fmt.Fprintf(&b, "# HELP lsmsd_sched_events_total Scheduler events folded across all requests, by kind.\n# TYPE lsmsd_sched_events_total counter\n")
	counts := m.EventCounts()
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, "lsmsd_sched_events_total{kind=%q} %d\n", k, counts[k])
	}
	counter("lsmsd_sched_attempts_total", "II attempts across all requests.", m.Attempts)
	counter("lsmsd_sched_attempts_ok_total", "Successful II attempts.", m.AttemptsOK)
	counter("lsmsd_sched_scan_failures_total", "Window scans that found no conflict-free cycle.", m.ScanFailures)
	counter("lsmsd_sched_degradations_total", "List-scheduler fallbacks observed in the event stream.", m.Degradations)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}

// schedEventsTotal sums the snapshot's per-kind counters; tests use it
// to prove a cache hit scheduled nothing.
func schedEventsTotal(m sched.Metrics) int64 {
	var n int64
	for _, v := range m.EventCounts() {
		n += v
	}
	return n
}
