package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/fixture"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/wire"
)

// newDebugServer mounts the debug surface the way cmd/lsmsd does: on
// its own listener, separate from the compile port.
func newDebugServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ds := httptest.NewServer(s.DebugHandler())
	t.Cleanup(ds.Close)
	return ds
}

// A scrape taken after traffic on every outcome path must pass the
// exposition lint: HELP/TYPE for every family, no duplicate samples,
// counters suffixed _total, histograms with cumulative le buckets.
func TestMetricsExpositionLints(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	m := machine.Cydra()

	// Success, cache hit, budget-exhausted, infeasible, bad request —
	// populate every family the lint will see.
	body := requestBody(t, fixture.Daxpy(m), "slack", wire.Options{})
	post(t, ts.URL, body)
	post(t, ts.URL, body)
	post(t, ts.URL, requestBody(t, fixture.Divide(m), "slack", budgetTripOptions))
	post(t, ts.URL, requestBody(t, fixture.Daxpy(m), "slack", wire.Options{MaxII: 1}))
	post(t, ts.URL, []byte("{not json"))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if issues := obs.LintExposition(bytes.NewReader(b)); len(issues) != 0 {
		t.Fatalf("exposition lint found %d issues in:\n%s\nissues: %v", len(issues), b, issues)
	}
	// The labelled compile counter must carry both dimensions.
	if !strings.Contains(string(b), `lsmsd_compiles_total{scheduler="slack",outcome="ok"}`) {
		t.Fatalf("no labelled ok compile sample in:\n%s", b)
	}
	if !strings.Contains(string(b), `lsmsd_compiles_total{scheduler="slack",outcome="central-iterations"}`) {
		t.Fatalf("no budget-reason outcome label in:\n%s", b)
	}
}

// budgetTripOptions make divide's first II attempt give up (one ejection
// and out) and the central-iteration cap trip at the attempt boundary —
// a deterministic mid-compile budget exhaustion with a real event tail.
var budgetTripOptions = wire.Options{EjectBudgetPerOp: 1, MinEjectBudget: 1, MaxCentralIters: 1}

// The flight recorder retains every compile's trace and, for non-ok
// outcomes, the tail of the scheduler event stream; the debug endpoint
// serves the dump as JSON.
func TestFlightRecorderEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	ds := newDebugServer(t, s)
	m := machine.Cydra()

	post(t, ts.URL, requestBody(t, fixture.Daxpy(m), "slack", wire.Options{}))
	post(t, ts.URL, requestBody(t, fixture.Divide(m), "slack", budgetTripOptions))

	resp, err := http.Get(ds.URL + "/debug/flightrecorder")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flightrecorder status %d", resp.StatusCode)
	}
	var dump struct {
		Total   uint64 `json:"total_recorded"`
		Entries []struct {
			ID      string `json:"id"`
			Name    string `json:"name"`
			Outcome string `json:"outcome"`
			Culprit string `json:"culprit"`
			Spans   []struct {
				Name string `json:"name"`
			} `json:"spans"`
			Tail []json.RawMessage `json:"tail"`
		} `json:"entries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if dump.Total != 2 || len(dump.Entries) != 2 {
		t.Fatalf("dump holds %d/%d traces, want 2", dump.Total, len(dump.Entries))
	}

	ok, failed := dump.Entries[0], dump.Entries[1]
	if ok.Outcome != obs.OutcomeOK || ok.Name != "daxpy" {
		t.Fatalf("first entry %+v, want ok daxpy", ok)
	}
	if len(ok.Spans) == 0 {
		t.Fatal("ok trace recorded no spans")
	}
	if len(ok.Tail) != 0 {
		t.Error("ok trace retained an event tail; retention is for non-ok runs only")
	}
	if ok.ID == "" {
		t.Error("trace missing its request ID")
	}

	if failed.Outcome != obs.OutcomeCentralIters {
		t.Fatalf("failed entry outcome %q, want %q", failed.Outcome, obs.OutcomeCentralIters)
	}
	if len(failed.Tail) == 0 {
		t.Fatal("failed trace retained no event tail")
	}
	if failed.Culprit == "" {
		t.Error("failed trace elected no culprit span")
	}

	if n := metricValue(t, ts.URL, "lsmsd_flightrecorder_entries"); n != 2 {
		t.Errorf("lsmsd_flightrecorder_entries = %d, want 2", n)
	}
}

// The pprof surface is mounted on the debug handler, not the compile
// handler.
func TestDebugPprof(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	ds := newDebugServer(t, s)

	resp, err := http.Get(ds.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("pprof reachable on the compile port")
	}
}

// Every compile response is stamped with a request ID (caller-supplied
// X-Request-Id wins), and the structured log carries it.
func TestRequestIDAndLogging(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	s, err := New(Config{Workers: 2, Logger: logger})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	body := requestBody(t, fixture.Daxpy(machine.Cydra()), "slack", wire.Options{})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/compile", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "caller-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "caller-7" {
		t.Errorf("request ID %q, want the caller's caller-7", got)
	}

	r2, _ := post(t, ts.URL, body) // cache hit, server-generated ID
	if got := r2.Header.Get("X-Request-Id"); got == "" || got == "caller-7" {
		t.Errorf("second request ID %q, want a fresh server-generated one", got)
	}

	var sawCompile, sawHit bool
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparseable log line %q: %v", line, err)
		}
		if rec["request_id"] == "caller-7" && rec["outcome"] == obs.OutcomeOK {
			sawCompile = true
		}
		if rec["cache"] == "hit" {
			sawHit = true
		}
	}
	if !sawCompile || !sawHit {
		t.Errorf("log stream missing compile/hit records:\n%s", logBuf.String())
	}
}
