package sched

import (
	"math/rand"
	"testing"

	"repro/internal/ir"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/mii"
	"repro/internal/mindist"
)

// boundsLoops returns the kernel corpus the incremental-bounds
// differential runs over.
func boundsLoops(t *testing.T) []*loopgen.Loop {
	t.Helper()
	ks, err := loopgen.Kernels(machine.Cydra())
	if err != nil {
		t.Fatal(err)
	}
	return ks
}

// checkFixpoint asserts the incremental bounds are a fixpoint of the
// full O(p·u) recomputation: running recomputeBounds must change
// nothing. Since recomputeBounds rebuilds every bound from scratch,
// equality here is equality with the direct path.
func checkFixpoint(t *testing.T, name string, step int, st *State) {
	t.Helper()
	es := append([]int(nil), st.estart...)
	ls := append([]int(nil), st.lstart...)
	times := append([]int(nil), st.time...)
	anchor := st.lstartStop
	st.recomputeBounds()
	if st.lstartStop != anchor {
		t.Fatalf("%s step %d: incremental left a stale Stop anchor: %d vs %d", name, step, anchor, st.lstartStop)
	}
	for x := 0; x <= st.n; x++ {
		if st.time[x] != times[x] {
			t.Fatalf("%s step %d: recompute moved placement of %d: %d vs %d", name, step, x, times[x], st.time[x])
		}
		if st.estart[x] != es[x] {
			t.Fatalf("%s step %d: Estart(%d) incremental %d, from scratch %d", name, step, x, es[x], st.estart[x])
		}
		if st.lstart[x] != ls[x] {
			t.Fatalf("%s step %d: Lstart(%d) incremental %d, from scratch %d", name, step, x, ls[x], st.lstart[x])
		}
	}
}

// TestIncrementalBoundsMatchRecompute drives a randomized
// placement/ejection sequence through the attempt state and checks,
// after every refreshBounds, that the incremental result equals the
// from-scratch recomputation.
func TestIncrementalBoundsMatchRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(1993))
	for _, wl := range boundsLoops(t) {
		l := wl.CL.Loop
		b, err := mii.Compute(l)
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		for _, dii := range []int{0, 1, 3} {
			ii := b.MII + dii
			md, err := mindist.Compute(l, ii)
			if err != nil {
				t.Fatalf("%s II=%d: %v", wl.Name, ii, err)
			}
			st := newState(l, ii, md)
			for step := 0; step < 4*(st.n+1); step++ {
				if st.allPlaced() {
					break
				}
				// Occasionally eject a random placed op, dirtying the
				// incremental state; the next refresh must fall back to
				// the full pass and still match.
				if st.unplacedCount < st.n && rng.Intn(6) == 0 {
					victim := -1
					for probe := 0; probe < 50; probe++ {
						x := rng.Intn(st.n + 1)
						if st.Placed(x) {
							victim = x
							break
						}
					}
					if victim >= 0 {
						st.eject(victim)
					}
				}
				// Place a random unplaced op at a random free cycle in
				// its engine window, exactly as step 2 would.
				x := -1
				for probe := 0; probe < 80; probe++ {
					c := rng.Intn(st.n + 1)
					if !st.Placed(c) {
						x = c
						break
					}
				}
				if x < 0 {
					continue
				}
				lo, hi := st.estart[x], st.lstart[x]
				if hi > lo+st.II-1 {
					hi = lo + st.II - 1
				}
				cycle := ir.Unplaced
				for c := lo; c <= hi; c++ {
					if st.free(x, c) {
						cycle = c
						break
					}
				}
				if cycle == ir.Unplaced {
					continue
				}
				st.place(x, cycle)
				st.refreshBounds(x)
				checkFixpoint(t, wl.Name, step, st)
			}
		}
	}
}

// TestResultMinDistAtFinalII asserts the satellite contract: every
// scheduler returns res.MinDist at exactly the II of the schedule it
// found, so core.Compile's defensive recompute never triggers.
func TestResultMinDistAtFinalII(t *testing.T) {
	for _, wl := range boundsLoops(t) {
		l := wl.CL.Loop
		for _, mk := range []func() (*Result, error){
			func() (*Result, error) { return Slack(Config{}).Schedule(l) },
			func() (*Result, error) { return SlackUnidirectional(Config{}).Schedule(l) },
			func() (*Result, error) { return Cydrome(Config{}).Schedule(l) },
			func() (*Result, error) { return ListSchedule(l, Config{}) },
		} {
			res, err := mk()
			if err != nil {
				t.Fatalf("%s: %v", wl.Name, err)
			}
			if !res.OK() {
				continue
			}
			if res.MinDist == nil || res.MinDist.II != res.Schedule.II {
				t.Fatalf("%s/%s: MinDist II %v, schedule II %d",
					wl.Name, res.Policy, res.MinDist, res.Schedule.II)
			}
		}
	}
}

// TestNoFastPathsEquivalence schedules the kernels with and without the
// optimized paths under every policy; IIs, stats-relevant outcomes and
// the schedules' issue cycles must be identical.
func TestNoFastPathsEquivalence(t *testing.T) {
	for _, wl := range boundsLoops(t) {
		l := wl.CL.Loop
		for _, mk := range []func(Config) (*Result, error){
			func(c Config) (*Result, error) { return Slack(c).Schedule(l) },
			func(c Config) (*Result, error) { return SlackUnidirectional(c).Schedule(l) },
			func(c Config) (*Result, error) { return Cydrome(c).Schedule(l) },
			func(c Config) (*Result, error) { return ListSchedule(l, c) },
		} {
			fast, err := mk(Config{})
			if err != nil {
				t.Fatalf("%s: %v", wl.Name, err)
			}
			slow, err := mk(Config{NoFastPaths: true})
			if err != nil {
				t.Fatalf("%s: %v", wl.Name, err)
			}
			if fast.OK() != slow.OK() || fast.II() != slow.II() {
				t.Fatalf("%s/%s: fast OK=%v II=%d, direct OK=%v II=%d",
					wl.Name, fast.Policy, fast.OK(), fast.II(), slow.OK(), slow.II())
			}
			if !fast.OK() {
				continue
			}
			for id, cf := range fast.Schedule.Time {
				if cs := slow.Schedule.Time[id]; cs != cf {
					t.Fatalf("%s/%s: op%d fast cycle %d, direct cycle %d",
						wl.Name, fast.Policy, id, cf, cs)
				}
			}
		}
	}
}
