package sched

// CydromePolicy reimplements the baseline "Old Scheduler" as Section 8
// describes it: the same backtracking operation-driven framework with
// very different heuristics. It relies on a static priority favouring
// operations whose initial slack is minimal; because a static scheme
// cannot detect when a recurrence circuit becomes fixed, it plays safe by
// placing all operations on recurrence circuits before any others. Like
// all prior schedulers it always places an operation as early as possible
// — the unidirectional habit whose lifetime cost the paper quantifies.
type CydromePolicy struct {
	staticPrio []int
}

// Name implements Policy.
func (p *CydromePolicy) Name() string { return "cydrome" }

// BeginAttempt snapshots each index's initial slack as its static
// priority for the whole attempt, in the attempt-scoped scratch buffer
// (every entry is overwritten, as PolicyScratch requires).
func (p *CydromePolicy) BeginAttempt(st *State) {
	p.staticPrio = st.PolicyScratch(st.n + 1)
	for x := 0; x <= st.n; x++ {
		p.staticPrio[x] = st.Slack(x)
	}
}

// ChooseOp picks the unplaced recurrence-circuit op with minimal static
// priority, or — once every recurrence op is placed — the minimal
// static priority op overall. Ties break by smaller current Lstart,
// then smaller id, keeping the baseline deterministic.
func (p *CydromePolicy) ChooseOp(st *State) int {
	pick := func(filter func(int) bool) int {
		best := -1
		for x := 0; x <= st.n; x++ {
			if st.Placed(x) || !filter(x) {
				continue
			}
			if best == -1 || p.staticPrio[x] < p.staticPrio[best] ||
				(p.staticPrio[x] == p.staticPrio[best] && st.Lstart(x) < st.Lstart(best)) {
				best = x
			}
		}
		return best
	}
	if x := pick(func(x int) bool { return x < st.n && st.L.Ops[x].OnRecurrence }); x != -1 {
		return x
	}
	return pick(func(int) bool { return true })
}

// ScanEarly implements the unidirectional legacy: always as early as
// possible.
func (p *CydromePolicy) ScanEarly(st *State, x int) bool { return true }
