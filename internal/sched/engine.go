package sched

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/ir"
	"repro/internal/mii"
	"repro/internal/mindist"
	"repro/internal/obs"
)

// Policy supplies the heuristic decisions of the central loop.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// BeginAttempt runs once per II attempt, after bounds initialization;
	// policies compute per-attempt data (e.g. static priorities) here.
	BeginAttempt(st *State)
	// ChooseOp picks the next unplaced index to place (an op id, or
	// st.StopIndex() for the Stop pseudo-op).
	ChooseOp(st *State) int
	// ScanEarly reports whether x's issue-cycle search should run from
	// Estart toward Lstart (true) or from Lstart toward Estart (false).
	ScanEarly(st *State, x int) bool
}

// Config tunes the framework. The zero value gives the paper's settings.
type Config struct {
	// IncrementByOne retries failed loops at II+1 instead of the paper's
	// II + max(⌊0.04·II⌋, 1) (Section 4.2, footnote 6 ablation).
	IncrementByOne bool
	// EjectBudgetPerOp scales the per-attempt ejection budget
	// ("operations ejected too many times", step 6). Default 16.
	EjectBudgetPerOp int
	// MinEjectBudget floors the budget for tiny loops. Default 64.
	MinEjectBudget int
	// MaxII caps the search; 0 derives a generous bound from the loop.
	MaxII int
	// StartII overrides the initial II (default: the loop's MII).
	StartII int
	// Budget bounds the work of one Schedule call (wall clock, central
	// iterations, II attempts); the zero value is unlimited. On
	// exhaustion ScheduleContext returns a *BudgetError.
	Budget Budget
	// Observer, when non-nil, receives the typed event stream of the
	// run (EvAttemptStart, EvPlace, EvForce, EvEject, EvRestart,
	// EvAttemptEnd); see Observer and TextObserver.
	Observer Observer
	// Trace, when non-nil, receives one formatted line per central-loop
	// placement event.
	//
	// Deprecated: use Observer; TextObserver reproduces this output
	// byte-for-byte from the typed events. Trace remains wired (through
	// an internal adapter) for existing callers.
	Trace func(format string, args ...any)
	// NoFastPaths disables the parametric MinDist cache and the
	// incremental Estart/Lstart maintenance, recomputing both from
	// scratch at every step. The optimized and direct paths are proven
	// equivalent by differential tests; this knob exists for them and
	// for perf attribution.
	NoFastPaths bool
	// Arena supplies the pooled per-compile scratch. Nil (the default)
	// makes each Schedule call acquire its own arena — from the
	// process-wide pool, or fresh when NoPool is set — and release it on
	// every exit path. A caller that sets Arena owns its lifecycle:
	// core.CompileContext acquires one arena per compilation so the
	// scheduler, the degrade fallback, and the pressure measurements
	// share scratch.
	Arena *Arena
	// NoPool bypasses the sync.Pool: every compile runs on virgin
	// memory through the same arena code path. The escape hatch mirrors
	// NoFastPaths — pooled and unpooled runs are proven byte-identical
	// by differential tests; this knob exists for them and for leak
	// triage.
	NoPool bool
}

func (c Config) withDefaults() Config {
	if c.EjectBudgetPerOp == 0 {
		c.EjectBudgetPerOp = 16
	}
	if c.MinEjectBudget == 0 {
		c.MinEjectBudget = 64
	}
	return c
}

// Stats instruments one Schedule call with the Section 6 counters.
type Stats struct {
	IIAttempts   int           // values of II tried
	CentralIters int64         // iterations of the central loop
	Placements   int64         // operations placed (including re-placements)
	Forces       int64         // step-3 invocations (no conflict-free slot)
	Ejections    int64         // operations ejected from partial schedules
	Restarts     int64         // step-6 invocations (budget exhausted)
	Elapsed      time.Duration // wall-clock scheduling time
	MinDistTime  time.Duration // of Elapsed: building MinDist tables
	CentralTime  time.Duration // of Elapsed: running the central loop
}

// Backtracked reports whether the loop needed any backtracking.
func (s Stats) Backtracked() bool { return s.Forces > 0 || s.Restarts > 0 }

// Result reports one scheduling run.
type Result struct {
	Loop     *ir.Loop
	Policy   string
	Bounds   mii.Bounds
	Schedule *ir.Schedule   // nil if the scheduler gave up
	MinDist  *mindist.Table // at the final (or last attempted) II
	Stats    Stats
	FailedII int // last II attempted when Schedule is nil
}

// OK reports whether a feasible schedule was found.
func (r *Result) OK() bool { return r.Schedule != nil }

// II returns the achieved II, or the last attempted II on failure (the
// convention of the paper's Table 4 for Cydrome's 14 failures).
func (r *Result) II() int {
	if r.Schedule != nil {
		return r.Schedule.II
	}
	return r.FailedII
}

// Scheduler runs the operation-driven framework under one policy.
type Scheduler struct {
	policy Policy
	cfg    Config
}

// New returns a scheduler with the given policy and configuration.
func New(policy Policy, cfg Config) *Scheduler {
	return &Scheduler{policy: policy, cfg: cfg.withDefaults()}
}

// Schedule modulo schedules the loop with a background context.
//
// For backward compatibility it keeps the legacy give-up contract:
// exhausting the II ceiling returns (res, nil) with res.OK() false.
// Budget exhaustion (only possible when Config.Budget is set) still
// surfaces as a *BudgetError. New callers should prefer
// ScheduleContext, whose error contract is uniform.
func (s *Scheduler) Schedule(l *ir.Loop) (*Result, error) {
	res, err := s.ScheduleContext(context.Background(), l)
	if errors.Is(err, ErrInfeasible) {
		err = nil
	}
	return res, err
}

// ScheduleContext modulo schedules the loop: it tries II = MII first
// and, when the heuristics give up, retries at increased II until
// success or the II ceiling (Section 4.2). The context and
// Config.Budget are checked at every II-attempt boundary and every few
// hundred central-loop iterations, so a hostile loop cannot hang the
// caller.
//
// On success the error is nil. On failure the returned *Result is
// still non-nil and carries the partial evidence (bounds, last II
// attempted, effort counters), and the error is:
//
//   - a *InfeasibleError (errors.Is ErrInfeasible) when the II ceiling
//     was exhausted;
//   - a *BudgetError (errors.Is ErrBudgetExhausted; also the context
//     error when canceled) when the budget or context ran out.
func (s *Scheduler) ScheduleContext(ctx context.Context, l *ir.Loop) (*Result, error) {
	res := &Result{}
	err := s.ScheduleInto(ctx, l, res)
	if res.Loop == nil {
		// Preflight failed before the result was populated — the legacy
		// nil-Result contract.
		return nil, err
	}
	return res, err
}

// ScheduleInto is ScheduleContext writing into a caller-owned Result:
// dst's previous contents are destroyed, but its Schedule.Time slice
// and MinDist backing array are reused when large enough, so a caller
// recycling one Result across compilations allocates nothing here in
// steady state (core.CompileInto's contract). On preflight failure
// (unfinalized loop, MII computation error) dst is zeroed and the
// error returned; otherwise dst carries exactly what ScheduleContext's
// Result would, with the same typed errors.
func (s *Scheduler) ScheduleInto(ctx context.Context, l *ir.Loop, dst *Result) error {
	prevSched, prevMD := dst.Schedule, dst.MinDist
	*dst = Result{}
	if !l.Finalized() {
		return fmt.Errorf("sched: loop %s not finalized", l.Name)
	}
	started := time.Now()
	tr := obs.FromContext(ctx)
	bounds, err := mii.ComputeContext(ctx, l)
	if err != nil {
		return fmt.Errorf("sched: loop %s: %w", l.Name, err)
	}
	res := dst
	*res = Result{Loop: l, Policy: s.policy.Name(), Bounds: bounds}

	ii := bounds.MII
	if s.cfg.StartII > ii {
		ii = s.cfg.StartII
	}
	maxII := s.cfg.MaxII
	if maxII == 0 {
		maxII = s.autoMaxII(l, bounds)
	}

	guard := newBudgetGuard(ctx, s.cfg.Budget)
	sink := s.cfg.EventSink()

	// Pooled scratch: everything per-attempt lives in the arena. When
	// the caller did not supply one, acquire here and release on every
	// exit path — including panics unwinding through this frame (the
	// arena is fully re-initialized on reuse, so a panic cannot leak
	// partial state into the next compile).
	a := s.cfg.Arena
	if a == nil {
		a = acquireArena(s.cfg.NoPool)
		defer a.Release()
	}
	// Fast-path MinDist tables alias arena storage that the next compile
	// overwrites, so the table escaping through res.MinDist is cloned at
	// exit (LIFO: this defer runs before the arena release above).
	defer func() {
		if !s.cfg.NoFastPaths && res.MinDist != nil {
			res.MinDist = res.MinDist.CloneInto(prevMD)
		}
	}()

	// The cache computes the first II directly and answers retries from
	// the parametric relation in O(n²), reusing one table's backing
	// store throughout; res.MinDist therefore always holds the table at
	// the final (achieved or last attempted) II. Under a budget the
	// cache polls the guard so even MinDist construction is bounded.
	cache := a.cacheFor(l)
	cache.SetStop(guard.stop())
	cache.SetTrace(tr)
	for ii <= maxII {
		if reason := guard.attemptExceeded(&res.Stats, res.Stats.IIAttempts); reason != "" {
			res.Stats.Elapsed = time.Since(started)
			return s.budgetError(ctx, l, reason, bounds, ii, res.Stats)
		}
		res.Stats.IIAttempts++
		mdStart := time.Now()
		var md *mindist.Table
		var err error
		if s.cfg.NoFastPaths {
			sp := tr.Start("mindist").Int("ii", int64(ii)).Str("mode", "direct")
			md, err = mindist.Compute(l, ii)
			sp.End(mindistOutcome(err))
		} else {
			md, err = cache.At(ii)
		}
		res.Stats.MinDistTime += time.Since(mdStart)
		if err != nil {
			if errors.Is(err, mindist.ErrStopped) {
				reason := guard.exceeded(&res.Stats)
				if reason == "" {
					reason = ReasonDeadline
				}
				res.Stats.Elapsed = time.Since(started)
				return s.budgetError(ctx, l, reason, bounds, ii, res.Stats)
			}
			// II below RecMII (possible only with StartII misuse): step up.
			res.FailedII = ii
			ii = s.nextII(ii)
			continue
		}
		res.MinDist = md
		caStart := time.Now()
		itersBefore := res.Stats.CentralIters
		spa := tr.Start("attempt").Int("ii", int64(ii))
		st := a.newState(l, ii, md)
		st.noIncremental = s.cfg.NoFastPaths
		if sink != nil {
			st.obs = sink
			st.evt = Event{Loop: l.Name, Policy: s.policy.Name(), II: ii, Op: -1}
			e := st.evt
			e.Kind = EvAttemptStart
			sink.Event(e)
		}
		ok, reason := s.attempt(st, &res.Stats, &guard, sink)
		res.Stats.CentralTime += time.Since(caStart)
		outcome := attemptOutcome(ok, reason)
		spa.Int("iters", res.Stats.CentralIters-itersBefore).
			Int("ejections", int64(st.ejections)).
			End(outcome.String())
		if sink != nil {
			e := st.evt
			e.Kind = EvAttemptEnd
			e.OK = ok
			e.Outcome = outcome
			e.Ejections = st.ejections
			sink.Event(e)
		}
		if reason != "" {
			res.FailedII = ii
			res.Stats.Elapsed = time.Since(started)
			return s.budgetError(ctx, l, reason, bounds, ii, res.Stats)
		}
		if ok {
			res.Schedule = st.mrt.ScheduleInto(prevSched)
			res.Stats.Elapsed = time.Since(started)
			return nil
		}
		res.Stats.Restarts++
		res.FailedII = ii
		if sink != nil {
			e := st.evt
			e.Kind = EvRestart
			e.Ejections = st.ejections
			sink.Event(e)
		}
		ii = s.nextII(ii)
	}
	res.Stats.Elapsed = time.Since(started)
	return &InfeasibleError{
		Loop:   l.Name,
		Policy: s.policy.Name(),
		MII:    bounds.MII,
		MaxII:  maxII,
		LastII: res.FailedII,
		Stats:  res.Stats,
	}
}

// mindistOutcome classifies a MinDist computation for its span: stopped
// tables mean the budget tripped mid-build; any other error means the II
// violated a recurrence (infeasible at this II).
func mindistOutcome(err error) string {
	switch {
	case err == nil:
		return obs.OutcomeOK
	case errors.Is(err, mindist.ErrStopped):
		return obs.OutcomeBudgetExhausted
	default:
		return obs.OutcomeInfeasible
	}
}

// budgetError builds the typed exhaustion error for the current state
// of the search.
func (s *Scheduler) budgetError(ctx context.Context, l *ir.Loop, reason string, b mii.Bounds, ii int, stats Stats) *BudgetError {
	e := &BudgetError{
		Loop:   l.Name,
		Policy: s.policy.Name(),
		Reason: reason,
		MII:    b.MII,
		LastII: ii,
		Stats:  stats,
	}
	if reason == ReasonCanceled {
		e.Cause = ctx.Err()
	}
	return e
}

// nextII implements the II increment policy of Section 4.2: by
// max(⌊0.04·II⌋, 1) to avoid excessive compile time on large loops, or
// by 1 under the footnote-6 ablation.
func (s *Scheduler) nextII(ii int) int {
	if s.cfg.IncrementByOne {
		return ii + 1
	}
	step := ii * 4 / 100
	if step < 1 {
		step = 1
	}
	return ii + step
}

// autoMaxII returns a ceiling at which scheduling is essentially
// unconstrained: at twice the total busy cycles every op can claim its
// own reservation window with room to spare.
func (s *Scheduler) autoMaxII(l *ir.Loop, b mii.Bounds) int {
	sum := 0
	for _, op := range l.Ops {
		sum += l.Mach.Info(op.Opcode).Busy
	}
	max := 2 * (sum + 16)
	if cp := 2*b.MII + 16; cp > max {
		max = cp
	}
	return max
}

// attempt runs the central loop (Section 4.2) at one II. It returns
// ok=true on a complete schedule and ok=false when the ejection budget
// is exhausted (step 6) or, defensively, when the iteration cap trips;
// a non-empty stopReason aborts the attempt because the caller's
// Budget or context ran out.
func (s *Scheduler) attempt(st *State, stats *Stats, g *budgetGuard, sink Observer) (ok bool, stopReason string) {
	budget := st.n * s.cfg.EjectBudgetPerOp
	if budget < s.cfg.MinEjectBudget {
		budget = s.cfg.MinEjectBudget
	}
	iterCap := 4*(st.n+budget) + 256

	s.policy.BeginAttempt(st)
	defer func() { stats.Ejections += int64(st.ejections) }()
	for iter := 0; ; iter++ {
		if st.allPlaced() {
			return true, ""
		}
		if iter > iterCap || st.ejections > budget {
			return false, ""
		}
		if g.active && iter%budgetCheckStride == 0 {
			if reason := g.exceeded(stats); reason != "" {
				return false, reason
			}
		}
		stats.CentralIters++

		// Step 1: choose a good operation (policy).
		x := s.policy.ChooseOp(st)
		if x < 0 || x > st.n || st.Placed(x) {
			panic(fmt.Sprintf("sched: policy %s chose invalid index %d", s.policy.Name(), x))
		}

		// Step 2: search for a conflict-free issue cycle within the
		// bounds; the modulo constraint means at most II consecutive
		// cycles need scanning (Section 5.2). The window anchors at the
		// end the scan starts from: [Estart, Estart+II) scanning early,
		// [Lstart−II+1, Lstart] scanning late — otherwise a "late"
		// placement would still be confined near Estart.
		cycle := ir.Unplaced
		lo := st.estart[x]
		hi := st.lstart[x]
		if lo <= hi {
			if s.policy.ScanEarly(st, x) {
				if hi > lo+st.II-1 {
					hi = lo + st.II - 1
				}
				for c := lo; c <= hi; c++ {
					if st.free(x, c) {
						cycle = c
						break
					}
				}
			} else {
				if lo < hi-st.II+1 {
					lo = hi - st.II + 1
				}
				for c := hi; c >= lo; c-- {
					if st.free(x, c) {
						cycle = c
						break
					}
				}
			}
		}

		if sink != nil {
			e := st.evt
			e.Kind = EvPlace
			e.Iter = iter
			e.Op = x
			e.Estart = st.estart[x]
			e.Lstart = st.lstart[x]
			e.Cycle = cycle
			sink.Event(e)
		}
		if cycle == ir.Unplaced {
			// Step 3: create room by ejection. Force the op into
			// max(Estart, 1 + its last placement) — successively later
			// cycles avoid livelock — ejecting every conflicting op,
			// except that brtop is never ejected (Section 4.4).
			stats.Forces++
			c := st.estart[x]
			if lp := st.lastPlace[x]; lp != ir.Unplaced && lp+1 > c {
				c = lp + 1
			}
			forced := false
			for tries := 0; tries < 4*st.II+4; tries++ {
				if s.forceAt(st, x, c) {
					cycle = c
					forced = true
					break
				}
				c++ // a victim was brtop: search successive cycles
			}
			if !forced {
				return false, "" // cannot avoid ejecting brtop: give up this II
			}
			if sink != nil {
				e := st.evt
				e.Kind = EvForce
				e.Iter = iter
				e.Op = x
				e.Cycle = cycle
				e.Ejections = st.ejections
				sink.Event(e)
			}
			st.place(x, cycle)
		} else {
			// Step 4: place the operation and update the resource table.
			st.place(x, cycle)
		}
		stats.Placements++

		// Step 5: refresh Estart/Lstart for unplaced ops — incrementally
		// after a clean placement, from scratch after ejections or a
		// Stop-anchor move (Section 4.4).
		st.refreshBounds(x)
	}
}

// forceAt ejects everything conflicting with x at cycle c and reports
// whether ejection was permissible (false if a victim is brtop, which
// cannot move because its placement determines the schedule's II).
func (s *Scheduler) forceAt(st *State, x, c int) bool {
	victims := st.victimBuf[:0]
	for _, id := range st.resourceVictims(x, c) {
		if int(id) == x {
			return false // op cannot fit at any cycle (busy > II)
		}
		victims = append(victims, int(id))
	}
	if c > st.lstart[x] {
		victims = append(victims, st.depVictims(x, c)...)
	}
	st.victimBuf = victims
	for _, y := range victims {
		if y == st.brtop {
			return false
		}
	}
	seen := st.scratch // all-false between calls
	for _, y := range victims {
		if !seen[y] && st.Placed(y) {
			seen[y] = true
			st.eject(y)
		}
	}
	for _, y := range victims {
		seen[y] = false
	}
	return true
}
