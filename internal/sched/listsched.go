package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/ir"
	"repro/internal/mii"
	"repro/internal/mindist"
	"repro/internal/mrt"
	"repro/internal/obs"
)

// ListSchedule is ListScheduleContext with a background context and the
// legacy give-up contract: exhausting the II ceiling returns (res, nil)
// with res.OK() false. Budget exhaustion still surfaces as a
// *BudgetError.
func ListSchedule(l *ir.Loop, cfg Config) (*Result, error) {
	res, err := ListScheduleContext(context.Background(), l, cfg)
	if errors.Is(err, ErrInfeasible) {
		err = nil
	}
	return res, err
}

// ListScheduleContext is a classic list scheduler adapted to the modulo
// constraint, with no backtracking: operations are placed in decreasing
// height order (longest dependence path to Stop), each as early as
// possible; if an operation has no feasible slot the whole attempt fails
// and II increases by one.
//
// It exists as the pedagogical baseline of Section 4: placing an
// operation commits resources at every cycle t + k·II, so an op that
// does not fit now may fit nowhere later, and "a list-scheduling compiler
// is not likely to find a feasible schedule at MII when recurrence
// circuits are present." The benchmark harness quantifies exactly that —
// and it is also the graceful-degradation fallback core.Compile uses
// when a budgeted run of a backtracking scheduler exhausts its budget,
// which is why it shares the context, Budget, typed-error, and Observer
// contracts of Scheduler.ScheduleContext.
func ListScheduleContext(ctx context.Context, l *ir.Loop, cfg Config) (*Result, error) {
	res := &Result{}
	err := ListScheduleInto(ctx, l, cfg, res)
	if res.Loop == nil {
		return nil, err
	}
	return res, err
}

// ListScheduleInto is ListScheduleContext writing into a caller-owned
// Result, with the same buffer-reuse contract as
// Scheduler.ScheduleInto: dst's previous contents are destroyed, its
// Schedule and MinDist backing storage are recycled, and on preflight
// failure dst is zeroed.
func ListScheduleInto(ctx context.Context, l *ir.Loop, cfg Config, dst *Result) error {
	prevSched, prevMD := dst.Schedule, dst.MinDist
	*dst = Result{}
	if !l.Finalized() {
		return fmt.Errorf("sched: loop %s not finalized", l.Name)
	}
	cfg = cfg.withDefaults()
	started := time.Now()
	tr := obs.FromContext(ctx)
	bounds, err := mii.ComputeContext(ctx, l)
	if err != nil {
		return fmt.Errorf("sched: loop %s: %w", l.Name, err)
	}
	res := dst
	*res = Result{Loop: l, Policy: "list", Bounds: bounds}

	maxII := cfg.MaxII
	if maxII == 0 {
		maxII = (&Scheduler{cfg: cfg}).autoMaxII(l, bounds)
	}
	n := len(l.Ops)

	guard := newBudgetGuard(ctx, cfg.Budget)
	sink := cfg.EventSink()
	budgetStop := func(reason string, ii int) error {
		res.Stats.Elapsed = time.Since(started)
		e := &BudgetError{
			Loop: l.Name, Policy: "list", Reason: reason,
			MII: bounds.MII, LastII: ii, Stats: res.Stats,
		}
		if reason == ReasonCanceled {
			e.Cause = ctx.Err()
		}
		return e
	}

	// Pooled scratch: the fallback shares the caller's arena when one is
	// configured (core passes the compile's arena through Config), else
	// acquires its own for this call.
	a := cfg.Arena
	if a == nil {
		a = acquireArena(cfg.NoPool)
		defer a.Release()
	}
	defer func() {
		if !cfg.NoFastPaths && res.MinDist != nil {
			res.MinDist = res.MinDist.CloneInto(prevMD)
		}
	}()

	cache := a.cacheFor(l)
	cache.SetStop(guard.stop())
	cache.SetTrace(tr)
	for ii := bounds.MII; ii <= maxII; ii++ {
		if reason := guard.attemptExceeded(&res.Stats, res.Stats.IIAttempts); reason != "" {
			return budgetStop(reason, ii)
		}
		res.Stats.IIAttempts++
		mdStart := time.Now()
		var md *mindist.Table
		var err error
		if cfg.NoFastPaths {
			md, err = mindist.Compute(l, ii)
		} else {
			md, err = cache.At(ii)
		}
		res.Stats.MinDistTime += time.Since(mdStart)
		if err != nil {
			if errors.Is(err, mindist.ErrStopped) {
				reason := guard.exceeded(&res.Stats)
				if reason == "" {
					reason = ReasonDeadline
				}
				return budgetStop(reason, ii)
			}
			res.FailedII = ii
			continue
		}
		res.MinDist = md

		evt := Event{Loop: l.Name, Policy: "list", II: ii, Op: -1}
		if sink != nil {
			e := evt
			e.Kind = EvAttemptStart
			sink.Event(e)
		}
		caStart := time.Now()
		itersBefore := res.Stats.CentralIters
		spa := tr.Start("attempt").Int("ii", int64(ii)).Str("policy", "list")
		// Height priority: longest path to Stop at this II.
		order, times := a.listScratch(n)
		for i := range order {
			order[i] = i
		}
		height := func(x int) int { return md.Dist(x, md.Stop()) }
		sort.SliceStable(order, func(x, y int) bool {
			ha, hb := height(order[x]), height(order[y])
			if ha != hb {
				return ha > hb
			}
			return order[x] < order[y]
		})

		table := mrt.NewIn(l, ii, a.mrtScratch())
		for i := range times {
			times[i] = ir.Unplaced
		}
		ok := true
		stopReason := ""
		for iter, x := range order {
			if guard.active && iter%budgetCheckStride == 0 {
				if reason := guard.exceeded(&res.Stats); reason != "" {
					stopReason = reason
					break
				}
			}
			res.Stats.CentralIters++
			// Earliest start from already-placed ops (both directions of
			// the MinDist constraint must hold against each).
			lo := 0
			if d := md.Dist(md.Start(), x); d != mindist.NoPath {
				lo = d
			}
			hi := -1
			for y := 0; y < n; y++ {
				if times[y] == ir.Unplaced {
					continue
				}
				if d := md.Dist(y, x); d != mindist.NoPath && times[y]+d > lo {
					lo = times[y] + d
				}
				if d := md.Dist(x, y); d != mindist.NoPath {
					if b := times[y] - d; hi == -1 || b < hi {
						hi = b
					}
				}
			}
			limit := lo + ii - 1
			if hi != -1 && hi < limit {
				limit = hi
			}
			placed := false
			for c := lo; c <= limit; c++ {
				if table.Free(l.Ops[x], c) {
					table.Place(l.Ops[x], c)
					times[x] = c
					res.Stats.Placements++
					placed = true
					break
				}
			}
			if sink != nil {
				e := evt
				e.Kind = EvPlace
				e.Iter = iter
				e.Op = x
				e.Estart = lo
				e.Lstart = limit
				if placed {
					e.Cycle = times[x]
				} else {
					e.Cycle = ir.Unplaced
				}
				sink.Event(e)
			}
			if !placed {
				ok = false
				break
			}
		}
		res.Stats.CentralTime += time.Since(caStart)
		outcome := attemptOutcome(ok && stopReason == "", stopReason)
		spa.Int("iters", res.Stats.CentralIters-itersBefore).End(outcome.String())
		if sink != nil {
			e := evt
			e.Kind = EvAttemptEnd
			e.OK = ok && stopReason == ""
			e.Outcome = outcome
			sink.Event(e)
		}
		if stopReason != "" {
			res.FailedII = ii
			return budgetStop(stopReason, ii)
		}
		if ok {
			res.Schedule = table.ScheduleInto(prevSched)
			res.Stats.Elapsed = time.Since(started)
			return nil
		}
		res.FailedII = ii
		if sink != nil {
			e := evt
			e.Kind = EvRestart
			sink.Event(e)
		}
	}
	res.Stats.Elapsed = time.Since(started)
	return &InfeasibleError{
		Loop:   l.Name,
		Policy: "list",
		MII:    bounds.MII,
		MaxII:  maxII,
		LastII: res.FailedII,
		Stats:  res.Stats,
	}
}
