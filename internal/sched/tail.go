package sched

import "repro/internal/obs"

// DefaultTailEvents is TailRecorder's default capacity: enough to hold
// the whole stream of a typical loop and the interesting end of a
// pathological one.
const DefaultTailEvents = 256

// TailRecorder is an Observer that keeps the last N events of a run in
// a ring buffer — the raw material of a flight-recorder entry. Append
// is an index increment and a struct store; no locking (one recorder
// per run, the Observer contract).
//
// The tail is lossless for runs shorter than the capacity, which is
// what makes flight-recorder replay exact: TextObserver over Tail()
// reproduces the trace of the original run byte for byte (a golden
// test holds this).
type TailRecorder struct {
	buf     []Event
	next    int
	total   int
	wrapped bool
}

// NewTailRecorder returns a recorder keeping the last max events
// (DefaultTailEvents when max <= 0).
func NewTailRecorder(max int) *TailRecorder {
	if max <= 0 {
		max = DefaultTailEvents
	}
	return &TailRecorder{buf: make([]Event, max)}
}

// Event implements Observer.
func (t *TailRecorder) Event(e Event) {
	t.buf[t.next] = e
	t.next++
	t.total++
	if t.next == len(t.buf) {
		t.next = 0
		t.wrapped = true
	}
}

// Tail returns the retained events oldest-first (a copy).
func (t *TailRecorder) Tail() []Event {
	if !t.wrapped {
		return append([]Event(nil), t.buf[:t.next]...)
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	return append(out, t.buf[:t.next]...)
}

// Reset clears the recorder for a new run, keeping the ring's storage
// but zeroing the retained events — a pooled recorder must not carry
// one request's loop and policy names into the next request's pool
// slot.
func (t *TailRecorder) Reset() {
	used := t.buf[:t.next]
	if t.wrapped {
		used = t.buf
	}
	for i := range used {
		used[i] = Event{}
	}
	t.next, t.total, t.wrapped = 0, 0, false
}

// Dropped reports how many events fell off the front of the ring.
func (t *TailRecorder) Dropped() int {
	if !t.wrapped {
		return 0
	}
	return t.total - len(t.buf)
}

// Total reports how many events the run emitted.
func (t *TailRecorder) Total() int { return t.total }

// AttachTail copies the retained events onto an obs.Trace — the flight
// recorder's retention rule is that failed and degraded compiles carry
// their event tail; callers invoke this only on those outcomes.
// Nil-safe on the trace.
func (t *TailRecorder) AttachTail(tr *obs.Trace) {
	if tr == nil || t == nil {
		return
	}
	tail := t.Tail()
	tr.Tail = make([]any, len(tail))
	for i := range tail {
		tr.Tail[i] = tail[i]
	}
	tr.TailDropped = t.Dropped()
}

// EventsFromTail recovers the typed events from a trace tail written by
// AttachTail, dropping anything foreign (a trace produced by another
// program version, say). The result replays through any Observer.
func EventsFromTail(tail []any) []Event {
	out := make([]Event, 0, len(tail))
	for _, v := range tail {
		if e, ok := v.(Event); ok {
			out = append(out, e)
		}
	}
	return out
}

// Replay feeds a recorded event sequence to an observer — flight
// recorder reconstruction: replaying a run's tail through TextObserver
// regenerates the exact trace text of the original run.
func Replay(events []Event, o Observer) {
	for _, e := range events {
		o.Event(e)
	}
}
