package sched

import (
	"sync"
	"testing"

	"repro/internal/fixture"
	"repro/internal/machine"
)

// TestSafeMetricsConcurrentStreams is the -race regression test for
// the server's shared-observer pattern: many concurrent scheduling
// runs feed one SafeMetrics. Totals must equal the sum of independent
// per-run Metrics, and the race detector must stay quiet.
func TestSafeMetricsConcurrentStreams(t *testing.T) {
	m := machine.Cydra()
	loops := fixture.All(m)

	// Reference: one quiet Metrics per (loop, policy) run, merged.
	want := &Metrics{}
	for _, l := range loops {
		mm := &Metrics{}
		if _, err := Slack(Config{Observer: mm}).Schedule(l); err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		want.Merge(mm)
	}

	const replicas = 8
	shared := &SafeMetrics{}
	var wg sync.WaitGroup
	for r := 0; r < replicas; r++ {
		for _, l := range loops {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := Slack(Config{Observer: shared}).Schedule(l); err != nil {
					t.Errorf("%s: %v", l.Name, err)
				}
			}()
		}
	}
	// Concurrent snapshots while events stream in must be safe too.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = shared.Snapshot()
		}
	}()
	wg.Wait()
	<-done

	got := shared.Snapshot()
	for k := EventKind(0); k < numEventKinds; k++ {
		if got.Events[k] != replicas*want.Events[k] {
			t.Errorf("event %v: got %d, want %d", k, got.Events[k], replicas*want.Events[k])
		}
	}
	if got.Attempts != replicas*want.Attempts || got.AttemptsOK != replicas*want.AttemptsOK {
		t.Errorf("attempts: got %d/%d, want %d/%d",
			got.Attempts, got.AttemptsOK, replicas*want.Attempts, replicas*want.AttemptsOK)
	}
	if got.ScanFailures != replicas*want.ScanFailures {
		t.Errorf("scan failures: got %d, want %d", got.ScanFailures, replicas*want.ScanFailures)
	}
	for b := range got.EjectionsPerAttempt {
		if got.EjectionsPerAttempt[b] != replicas*want.EjectionsPerAttempt[b] {
			t.Errorf("ejection bucket %d: got %d, want %d",
				b, got.EjectionsPerAttempt[b], replicas*want.EjectionsPerAttempt[b])
		}
	}

	// Merge must also be safe against concurrent Event streams.
	var wg2 sync.WaitGroup
	extra := &Metrics{Attempts: 1}
	for i := 0; i < 4; i++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			shared.Merge(extra)
		}()
	}
	wg2.Wait()
	if after := shared.Snapshot(); after.Attempts != got.Attempts+4 {
		t.Errorf("merge lost updates: got %d, want %d", after.Attempts, got.Attempts+4)
	}
}
