package sched

// Slack returns the paper's bidirectional slack scheduler (Sections 4-5).
func Slack(cfg Config) *Scheduler {
	return New(&SlackPolicy{}, cfg)
}

// SlackUnidirectional returns the ablated slack scheduler: the same
// dynamic-priority framework, always placing as early as possible.
func SlackUnidirectional(cfg Config) *Scheduler {
	return New(&SlackPolicy{Unidirectional: true}, cfg)
}

// Cydrome returns the reimplemented baseline "Old Scheduler" (Section 8).
func Cydrome(cfg Config) *Scheduler {
	return New(&CydromePolicy{}, cfg)
}
