package sched

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/fixture"
	"repro/internal/ir"
	"repro/internal/lifetime"
	"repro/internal/machine"
	"repro/internal/schedcheck"
)

func schedulers() map[string]func(*ir.Loop) (*Result, error) {
	return map[string]func(*ir.Loop) (*Result, error){
		"slack":    func(l *ir.Loop) (*Result, error) { return Slack(Config{}).Schedule(l) },
		"slack-1d": func(l *ir.Loop) (*Result, error) { return SlackUnidirectional(Config{}).Schedule(l) },
		"cydrome":  func(l *ir.Loop) (*Result, error) { return Cydrome(Config{}).Schedule(l) },
		"list":     func(l *ir.Loop) (*Result, error) { return ListSchedule(l, Config{}) },
	}
}

// Every scheduler must produce legal schedules on every fixture loop.
func TestFixturesLegal(t *testing.T) {
	m := machine.Cydra()
	for name, run := range schedulers() {
		for _, l := range fixture.All(m) {
			res, err := run(l)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, l.Name, err)
			}
			if !res.OK() {
				t.Fatalf("%s/%s: gave up (last II %d)", name, l.Name, res.FailedII)
			}
			if vs := schedcheck.Check(l, res.Schedule); vs != nil {
				t.Errorf("%s/%s: illegal schedule: %v\n%s", name, l.Name, vs[0], res.Schedule)
			}
			if res.Schedule.II < res.Bounds.MII {
				t.Errorf("%s/%s: II %d below MII %d", name, l.Name, res.Schedule.II, res.Bounds.MII)
			}
		}
	}
}

// The slack scheduler achieves MII on all the fixture loops (the paper:
// 96% of 1,525 loops; these simple bodies must all make it).
func TestSlackAchievesMII(t *testing.T) {
	m := machine.Cydra()
	for _, l := range fixture.All(m) {
		res, err := Slack(Config{}).Schedule(l)
		if err != nil {
			t.Fatal(err)
		}
		if res.Schedule == nil || res.Schedule.II != res.Bounds.MII {
			t.Errorf("%s: II = %v, want MII = %d", l.Name, res.II(), res.Bounds.MII)
		}
	}
}

// The paper's headline: bidirectional placement yields register pressure
// no worse — and in aggregate strictly better — than the always-early
// baselines, without giving up II.
func TestBidirectionalReducesPressure(t *testing.T) {
	m := machine.Cydra()
	slackSum, cydSum, uniSum := 0, 0, 0
	for _, l := range fixture.All(m) {
		rs, err := Slack(Config{}).Schedule(l)
		if err != nil || !rs.OK() {
			t.Fatalf("slack/%s failed", l.Name)
		}
		rc, err := Cydrome(Config{}).Schedule(l)
		if err != nil || !rc.OK() {
			t.Fatalf("cydrome/%s failed", l.Name)
		}
		ru, err := SlackUnidirectional(Config{}).Schedule(l)
		if err != nil || !ru.OK() {
			t.Fatalf("slack-1d/%s failed", l.Name)
		}
		slackSum += lifetime.MaxLive(l, rs.Schedule)
		cydSum += lifetime.MaxLive(l, rc.Schedule)
		uniSum += lifetime.MaxLive(l, ru.Schedule)
	}
	if slackSum > cydSum {
		t.Errorf("slack total pressure %d > cydrome %d", slackSum, cydSum)
	}
	if slackSum > uniSum {
		t.Errorf("slack total pressure %d > unidirectional %d", slackSum, uniSum)
	}
	if slackSum >= cydSum {
		t.Logf("note: no strict aggregate win on fixtures (slack=%d cydrome=%d)", slackSum, cydSum)
	}
}

// Determinism: the same loop schedules identically across runs.
func TestDeterministic(t *testing.T) {
	l := fixture.Sample(machine.Cydra())
	r1, err := Slack(Config{}).Schedule(l)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Slack(Config{}).Schedule(l)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Schedule, r2.Schedule) {
		t.Error("slack scheduling is not deterministic")
	}
}

// The sample loop of Figure 1 schedules at II = 2 with MaxLive close to
// the paper's hand allocation (the naive allocation uses 6 rotating
// registers, the optimal 4; MinAvg-anchored scheduling should stay ≤ 6
// for x, y plus the two address pointers).
func TestSamplePressureReasonable(t *testing.T) {
	l := fixture.Sample(machine.Cydra())
	res, err := Slack(Config{}).Schedule(l)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.II != 2 {
		t.Fatalf("II = %d, want 2", res.Schedule.II)
	}
	ml := lifetime.MaxLive(l, res.Schedule)
	if ml > 8 {
		t.Errorf("MaxLive = %d, suspiciously high for the sample loop", ml)
	}
}

// Recurrence-limited loop: a long-latency circuit that a cycle-by-cycle
// approach struggles with. The slack scheduler must hit RecMII exactly.
func TestTightRecurrence(t *testing.T) {
	m := machine.Cydra()
	l := ir.NewLoop("tight", m)
	a := l.NewValue("a", ir.RR, ir.Float)
	b := l.NewValue("b", ir.RR, ir.Float)
	c := l.NewValue("c", ir.RR, ir.Float)
	// a = b[-1] * c[-1]; b = a + a; c = load-ish chain kept on adders.
	l.NewOp(machine.FMul, []ir.Operand{{Val: b.ID, Omega: 1}, {Val: c.ID, Omega: 1}}, a.ID)
	l.NewOp(machine.FAdd, []ir.Operand{{Val: a.ID}, {Val: a.ID}}, b.ID)
	l.NewOp(machine.FSub, []ir.Operand{{Val: b.ID}, {Val: a.ID}}, c.ID)
	l.MustFinalize()
	res, err := Slack(Config{}).Schedule(l)
	if err != nil {
		t.Fatal(err)
	}
	// Circuit a→b→a: L=3 Ω=1 → RecMII ≥ 3; a→b→c→a: L=4, Ω=1 → 4.
	if res.Bounds.RecMII != 4 {
		t.Fatalf("RecMII = %d, want 4", res.Bounds.RecMII)
	}
	if !res.OK() || res.Schedule.II != 4 {
		t.Errorf("II = %v, want RecMII 4", res.II())
	}
	schedcheck.MustCheck(l, res.Schedule)
}

// Stress: random cyclic loops must always yield legal schedules, and the
// engine must never panic or loop forever.
func TestRandomLoopsLegal(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	codes := []machine.Opcode{
		machine.FAdd, machine.FMul, machine.FSub, machine.Load,
		machine.IAdd, machine.AAdd, machine.FDiv,
	}
	for trial := 0; trial < 120; trial++ {
		m := machine.Cydra()
		l := ir.NewLoop("rand", m)
		n := 2 + rng.Intn(12)
		vals := make([]*ir.Value, n)
		for i := range vals {
			vals[i] = l.NewValue(fmt.Sprintf("v%d", i), ir.RR, ir.Float)
		}
		for i := 0; i < n; i++ {
			var args []ir.Operand
			if i > 0 {
				args = append(args, ir.Operand{Val: vals[rng.Intn(i)].ID})
			} else {
				args = append(args, ir.Operand{Val: vals[n-1].ID, Omega: 1})
			}
			if rng.Intn(2) == 0 {
				j := rng.Intn(n)
				w := 0
				if j >= i {
					w = 1 + rng.Intn(2)
				}
				args = append(args, ir.Operand{Val: vals[j].ID, Omega: w})
			} else {
				args = append(args, args[0])
			}
			code := codes[rng.Intn(len(codes))]
			if code == machine.Load {
				args = args[:1]
			}
			l.NewOp(code, args, vals[i].ID)
		}
		l.MustFinalize()
		for name, run := range schedulers() {
			res, err := run(l)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if !res.OK() {
				// The no-backtracking list scheduler gives up routinely;
				// the static-priority Cydrome baseline fails on rare
				// divider-saturated circuits, as its real counterpart
				// failed on 14 of the paper's 1,525 loops (Table 4).
				// The slack schedulers must never fail.
				if name == "slack" || name == "slack-1d" {
					t.Fatalf("trial %d %s: gave up\n%s", trial, name, l)
				}
				continue
			}
			if vs := schedcheck.Check(l, res.Schedule); vs != nil {
				t.Fatalf("trial %d %s: illegal: %v\n%s%s", trial, name, vs[0], l, res.Schedule)
			}
		}
	}
}

// The divider's reservation pattern: two divider ops must end up exactly
// 17+ cycles apart modulo II, and the slack scheduler still reaches MII.
func TestDividerScheduling(t *testing.T) {
	l := fixture.Divide(machine.Cydra())
	res, err := Slack(Config{}).Schedule(l)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || res.Schedule.II != 38 {
		t.Fatalf("II = %v, want ResMII 38", res.II())
	}
	schedcheck.MustCheck(l, res.Schedule)
}

// Stats plumbing: a loop that schedules greedily reports no backtracking;
// counters are internally consistent.
func TestStatsConsistent(t *testing.T) {
	l := fixture.Reduction(machine.Cydra())
	res, err := Slack(Config{}).Schedule(l)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.IIAttempts < 1 || st.Placements < int64(len(l.Ops)) {
		t.Errorf("implausible stats: %+v", st)
	}
	if st.CentralIters < st.Placements {
		t.Errorf("central iterations %d < placements %d", st.CentralIters, st.Placements)
	}
	if st.Forces == 0 && st.Ejections != 0 {
		t.Errorf("ejections without forces: %+v", st)
	}
}

// The IncrementByOne ablation must yield II no larger than the default
// policy's on any single loop (it searches a superset of II values).
func TestIIStepAblation(t *testing.T) {
	l := fixture.Divide(machine.Cydra())
	d, err := Slack(Config{}).Schedule(l)
	if err != nil {
		t.Fatal(err)
	}
	o, err := Slack(Config{IncrementByOne: true}).Schedule(l)
	if err != nil {
		t.Fatal(err)
	}
	if o.OK() && d.OK() && o.Schedule.II > d.Schedule.II {
		t.Errorf("increment-by-one found II %d > default %d", o.Schedule.II, d.Schedule.II)
	}
}
