package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fixture"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/schedcheck"
)

// The exhaustive searcher must find MII schedules for the fixtures the
// slack scheduler handles, and its output must be legal.
func TestExhaustiveFindsFixtureSchedules(t *testing.T) {
	m := machine.Cydra()
	for _, l := range fixture.All(m) {
		if len(l.Ops) > 12 {
			continue
		}
		res, err := Slack(Config{}).Schedule(l)
		if err != nil || !res.OK() {
			t.Fatalf("%s: slack failed", l.Name)
		}
		s, err := FindAtII(l, res.Bounds.MII, 0, 2_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if s == nil {
			t.Errorf("%s: exhaustive search found nothing at MII %d though slack did", l.Name, res.Bounds.MII)
			continue
		}
		schedcheck.MustCheck(l, s)
	}
}

// Genuinely infeasible MII: a divider-saturated chain whose dependence
// spacing cannot tile the divider at MII within any horizon this short —
// the paper's "for some loops, the minimum feasible II is more than MII"
// (Section 3.1), witnessed by exhaustive search rather than asserted.
func TestExhaustiveConfirmsInfeasibleMII(t *testing.T) {
	m := machine.Cydra()
	l := ir.NewLoop("inf", m)
	a := l.NewValue("a", ir.RR, ir.Float)
	b := l.NewValue("b", ir.RR, ir.Float)
	c := l.NewValue("c", ir.RR, ir.Float)
	// Three divider ops with a latency-and-a-bit chain between the 2nd
	// and 3rd: div(17) → sqrt(21) → fadd(1) → div(17). ResMII = 55; the
	// exact tiling needs t_div2 ≡ t_sqrt+21 (mod 55) while dependences
	// force t_div2 ≥ t_sqrt+22, so II = 55 requires t_div2 = t_sqrt+76 —
	// and the 1-cycle fadd then misses every alignment (cf. lll22).
	l.NewOp(machine.FDiv, []ir.Operand{{Val: c.ID, Omega: 1}, {Val: c.ID, Omega: 1}}, a.ID)
	l.NewOp(machine.FSqrt, []ir.Operand{{Val: a.ID}}, b.ID)
	one := l.Const("one", ir.Float, ir.FloatS(1))
	mid := l.NewValue("mid", ir.RR, ir.Float)
	l.NewOp(machine.FAdd, []ir.Operand{{Val: b.ID}, {Val: one.ID}}, mid.ID)
	l.NewOp(machine.FDiv, []ir.Operand{{Val: mid.ID}, {Val: one.ID}}, c.ID)
	l.MustFinalize()

	// MII = 55 (3 divider reservations of 17+21+17).
	s55, err := FindAtII(l, 55, 400, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if s55 != nil {
		// The recurrence c (ω=1) through the whole chain actually forces
		// RecMII = 56 > 55, so a 55-cycle schedule would be a bug.
		t.Fatalf("II=55 should be infeasible, found:\n%s", s55)
	}
	res, err := Slack(Config{}).Schedule(l)
	if err != nil || !res.OK() {
		t.Fatal("slack failed entirely")
	}
	if res.Schedule.II <= 55 {
		t.Fatalf("slack achieved II=%d below the infeasibility witness", res.Schedule.II)
	}
	// And the exhaustive search agrees something at slack's II exists.
	s2, err := FindAtII(l, res.Schedule.II, 0, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if s2 == nil {
		t.Errorf("exhaustive search could not confirm feasibility at II=%d", res.Schedule.II)
	}
}

// On random tiny loops: wherever exhaustive search proves MII feasible,
// the slack scheduler should almost always achieve it (the paper: 96%).
func TestSlackNearOptimalOnTinyLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	codes := []machine.Opcode{machine.FAdd, machine.FMul, machine.Load, machine.FSub}
	feasible, matched := 0, 0
	for trial := 0; trial < 120; trial++ {
		m := machine.Cydra()
		l := ir.NewLoop(fmt.Sprintf("tiny%d", trial), m)
		n := 3 + rng.Intn(6)
		vals := make([]*ir.Value, n)
		for i := range vals {
			vals[i] = l.NewValue(fmt.Sprintf("v%d", i), ir.RR, ir.Float)
		}
		for i := 0; i < n; i++ {
			var args []ir.Operand
			if i > 0 {
				args = append(args, ir.Operand{Val: vals[rng.Intn(i)].ID})
			} else {
				args = append(args, ir.Operand{Val: vals[n-1].ID, Omega: 1})
			}
			if rng.Intn(2) == 0 {
				j := rng.Intn(n)
				w := 0
				if j >= i {
					w = 1 + rng.Intn(2)
				}
				args = append(args, ir.Operand{Val: vals[j].ID, Omega: w})
			} else {
				args = append(args, args[0])
			}
			code := codes[rng.Intn(len(codes))]
			if code == machine.Load {
				args = args[:1]
			}
			l.NewOp(code, args, vals[i].ID)
		}
		l.MustFinalize()

		res, err := Slack(Config{}).Schedule(l)
		if err != nil || !res.OK() {
			t.Fatalf("trial %d: slack failed", trial)
		}
		opt, err := FindAtII(l, res.Bounds.MII, 0, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if opt == nil {
			continue
		}
		schedcheck.MustCheck(l, opt)
		feasible++
		if res.Schedule.II == res.Bounds.MII {
			matched++
		}
	}
	if feasible < 60 {
		t.Fatalf("too few exhaustively-feasible trials: %d", feasible)
	}
	if pct := 100 * float64(matched) / float64(feasible); pct < 95 {
		t.Errorf("slack matched a provably-feasible MII on only %.1f%% of tiny loops", pct)
	}
}
