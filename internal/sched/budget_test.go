package sched

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/fixture"
	"repro/internal/ir"
	"repro/internal/machine"
)

// A near-zero deadline must surface ErrBudgetExhausted promptly on
// every loop and policy, with the partial result still attached.
func TestDeadlineExhaustsPromptly(t *testing.T) {
	m := machine.Cydra()
	cfg := Config{Budget: Budget{Deadline: time.Nanosecond}}
	ctx := context.Background()
	runs := map[string]func(*ir.Loop) (*Result, error){
		"slack":    func(l *ir.Loop) (*Result, error) { return Slack(cfg).ScheduleContext(ctx, l) },
		"slack-1d": func(l *ir.Loop) (*Result, error) { return SlackUnidirectional(cfg).ScheduleContext(ctx, l) },
		"cydrome":  func(l *ir.Loop) (*Result, error) { return Cydrome(cfg).ScheduleContext(ctx, l) },
		"list":     func(l *ir.Loop) (*Result, error) { return ListScheduleContext(ctx, l, cfg) },
	}
	for name, run := range runs {
		for _, l := range fixture.All(m) {
			start := time.Now()
			res, err := run(l)
			if elapsed := time.Since(start); elapsed > 5*time.Second {
				t.Fatalf("%s/%s: exhaustion took %v, not prompt", name, l.Name, elapsed)
			}
			if !errors.Is(err, ErrBudgetExhausted) {
				t.Fatalf("%s/%s: err = %v, want ErrBudgetExhausted", name, l.Name, err)
			}
			var be *BudgetError
			if !errors.As(err, &be) {
				t.Fatalf("%s/%s: err %T does not unwrap to *BudgetError", name, l.Name, err)
			}
			if be.Reason != ReasonDeadline {
				t.Fatalf("%s/%s: reason %q, want %q", name, l.Name, be.Reason, ReasonDeadline)
			}
			if be.Loop != l.Name || be.MII < 1 || be.LastII < be.MII {
				t.Fatalf("%s/%s: bad evidence: %+v", name, l.Name, be)
			}
			if res == nil {
				t.Fatalf("%s/%s: no partial result alongside the budget error", name, l.Name)
			}
		}
	}
}

// tinyEject makes divide backtrack across many II attempts, so the
// attempt- and iteration-cap budgets have something to trip on.
var tinyEject = Config{EjectBudgetPerOp: 1, MinEjectBudget: 1}

func TestMaxIIAttempts(t *testing.T) {
	l := fixture.Divide(machine.Cydra())
	cfg := tinyEject
	res, err := Slack(cfg).Schedule(l)
	if err != nil || !res.OK() {
		t.Fatalf("unbudgeted run failed: %v", err)
	}
	if res.Stats.IIAttempts < 2 {
		t.Fatalf("fixture took %d attempts; the cap test needs at least 2", res.Stats.IIAttempts)
	}
	cfg.Budget = Budget{MaxIIAttempts: 1}
	res, err = Slack(cfg).ScheduleContext(context.Background(), l)
	var be *BudgetError
	if !errors.As(err, &be) || be.Reason != ReasonIIAttempts {
		t.Fatalf("err = %v, want BudgetError(%s)", err, ReasonIIAttempts)
	}
	if res == nil || res.Stats.IIAttempts != 1 {
		t.Fatalf("partial result should record exactly one attempt: %+v", res)
	}
}

func TestMaxCentralIters(t *testing.T) {
	l := fixture.Divide(machine.Cydra())
	cfg := tinyEject
	cfg.Budget = Budget{MaxCentralIters: 50}
	res, err := Slack(cfg).ScheduleContext(context.Background(), l)
	var be *BudgetError
	if !errors.As(err, &be) || be.Reason != ReasonCentralIters {
		t.Fatalf("err = %v, want BudgetError(%s)", err, ReasonCentralIters)
	}
	if res == nil || res.Stats.CentralIters < 50 {
		t.Fatalf("partial result should have hit the cap: %+v", res)
	}
}

// A canceled context surfaces as a budget error that also matches the
// context's own error, so callers can tell cancellation from exhaustion.
func TestContextCancellation(t *testing.T) {
	l := fixture.Daxpy(machine.Cydra())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Slack(Config{}).ScheduleContext(ctx, l)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, should also match context.Canceled", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Reason != ReasonCanceled {
		t.Fatalf("err = %v, want BudgetError(%s)", err, ReasonCanceled)
	}
	if res == nil {
		t.Fatal("no partial result on cancellation")
	}
}

// A generous budget must not change any scheduling decision: the
// schedule and the deterministic effort counters are identical to an
// unbudgeted run.
func TestGenerousBudgetIsInvisible(t *testing.T) {
	m := machine.Cydra()
	generous := Budget{Deadline: time.Hour, MaxCentralIters: 1 << 40, MaxIIAttempts: 1 << 20}
	for _, l := range fixture.All(m) {
		plain, err := Slack(Config{}).Schedule(l)
		if err != nil || !plain.OK() {
			t.Fatalf("%s: %v", l.Name, err)
		}
		budgeted, err := Slack(Config{Budget: generous}).ScheduleContext(context.Background(), l)
		if err != nil || !budgeted.OK() {
			t.Fatalf("%s (budgeted): %v", l.Name, err)
		}
		if plain.Schedule.II != budgeted.Schedule.II {
			t.Fatalf("%s: II %d vs %d under a generous budget", l.Name, plain.Schedule.II, budgeted.Schedule.II)
		}
		ps, bs := plain.Stats, budgeted.Stats
		if ps.IIAttempts != bs.IIAttempts || ps.CentralIters != bs.CentralIters ||
			ps.Placements != bs.Placements || ps.Forces != bs.Forces ||
			ps.Ejections != bs.Ejections || ps.Restarts != bs.Restarts {
			t.Fatalf("%s: effort differs under a generous budget:\nplain    %+v\nbudgeted %+v", l.Name, ps, bs)
		}
		for x := range l.Ops {
			if plain.Schedule.Time[x] != budgeted.Schedule.Time[x] {
				t.Fatalf("%s: op%d placed at %d vs %d", l.Name, x, plain.Schedule.Time[x], budgeted.Schedule.Time[x])
			}
		}
	}
}
