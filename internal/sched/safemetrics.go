package sched

import "sync"

// SafeMetrics is a mutex-guarded Metrics for observers shared across
// concurrent scheduling runs. The bench harness avoids the lock by
// giving each loop its own Metrics and merging in loop order — an
// assumption that holds for a sweep over a fixed corpus but not for a
// server folding many simultaneous per-request event streams into one
// live aggregate. SafeMetrics trades the per-event lock for that
// use case; totals remain exact (each event is counted once), though
// of course the interleaving across requests is not deterministic.
type SafeMetrics struct {
	mu sync.Mutex
	m  Metrics
}

// Event implements Observer; safe for concurrent use.
func (s *SafeMetrics) Event(e Event) {
	s.mu.Lock()
	s.m.Event(e)
	s.mu.Unlock()
}

// Merge folds a (quiescent) per-run Metrics into the aggregate.
func (s *SafeMetrics) Merge(other *Metrics) {
	s.mu.Lock()
	s.m.Merge(other)
	s.mu.Unlock()
}

// Snapshot returns a copy of the current aggregate, safe to read while
// other goroutines keep feeding events.
func (s *SafeMetrics) Snapshot() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m
}
