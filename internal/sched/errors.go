package sched

import (
	"errors"
	"fmt"
)

// The package's sentinel errors. Both are carried by typed errors
// (InfeasibleError, BudgetError) holding the partial evidence of the
// run; match the class with errors.Is and recover the evidence with
// errors.As:
//
//	res, err := s.ScheduleContext(ctx, l)
//	var be *sched.BudgetError
//	switch {
//	case errors.As(err, &be):        // budget/deadline/cancellation; be.Stats has the effort
//	case errors.Is(err, sched.ErrInfeasible): // MaxII exhausted; res records the last II tried
//	}
var (
	// ErrInfeasible reports that no feasible schedule was found before
	// the II ceiling (Config.MaxII or its derived default).
	ErrInfeasible = errors.New("sched: no feasible schedule within the II ceiling")
	// ErrBudgetExhausted reports that the Config.Budget (or the
	// context's deadline/cancellation) ran out mid-search.
	ErrBudgetExhausted = errors.New("sched: scheduling budget exhausted")
)

// InfeasibleError is the typed carrier of ErrInfeasible: the scheduler
// exhausted every II up to the ceiling. The accompanying *Result is
// still returned and records the same evidence (FailedII, Stats) for
// callers that tabulate failures, the convention of the paper's
// Table 4.
type InfeasibleError struct {
	Loop   string
	Policy string
	MII    int
	MaxII  int // the ceiling that was exhausted
	LastII int // the last II attempted
	Stats  Stats
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("sched: %s: %s found no feasible schedule up to II=%d (MII %d, last attempted %d)",
		e.Loop, e.Policy, e.MaxII, e.MII, e.LastII)
}

// Is matches ErrInfeasible, so errors.Is(err, ErrInfeasible) holds.
func (e *InfeasibleError) Is(target error) bool { return target == ErrInfeasible }

// BudgetError is the typed carrier of ErrBudgetExhausted: the search
// stopped before reaching a verdict. It carries the partial evidence —
// the best (last) II attempted, the loop's MII, and the effort counters
// at the moment the budget tripped — so callers can log, degrade, or
// retry with a larger budget.
type BudgetError struct {
	Loop   string
	Policy string
	Reason string // one of the Reason* constants
	MII    int
	LastII int // the II being attempted when the budget tripped
	Stats  Stats
	// Cause is the context error when Reason is ReasonCanceled (so
	// errors.Is(err, context.Canceled) also matches); nil otherwise.
	Cause error
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("sched: %s: %s budget exhausted (%s) at II=%d after %d attempt(s), %d central iteration(s)",
		e.Loop, e.Policy, e.Reason, e.LastII, e.Stats.IIAttempts, e.Stats.CentralIters)
}

// Is matches ErrBudgetExhausted, so errors.Is(err, ErrBudgetExhausted)
// holds.
func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExhausted }

// Unwrap exposes the context error on cancellation.
func (e *BudgetError) Unwrap() error { return e.Cause }
