package sched

import (
	"testing"

	"repro/internal/loopgen"
	"repro/internal/machine"
)

// benchCorpus compiles the kernel corpus once per benchmark binary.
func benchCorpus(b *testing.B) []*loopgen.Loop {
	b.Helper()
	ks, err := loopgen.Kernels(machine.Cydra())
	if err != nil {
		b.Fatal(err)
	}
	return ks
}

func benchScheduleKernels(b *testing.B, cfg Config) {
	ks := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, wl := range ks {
			res, err := Slack(cfg).Schedule(wl.CL.Loop)
			if err != nil {
				b.Fatal(err)
			}
			_ = res.OK()
		}
	}
}

// BenchmarkScheduleKernels is the optimized pipeline: parametric
// MinDist reuse plus incremental Estart/Lstart maintenance.
func BenchmarkScheduleKernels(b *testing.B) {
	benchScheduleKernels(b, Config{})
}

// BenchmarkScheduleKernelsNoFastPaths recomputes MinDist and the bounds
// from scratch at every step — the pre-optimization baseline, kept as
// the denominator for the speedup trajectory.
func BenchmarkScheduleKernelsNoFastPaths(b *testing.B) {
	benchScheduleKernels(b, Config{NoFastPaths: true})
}

// BenchmarkScheduleKernelsIncrementByOne forces many II retries (the
// footnote-6 ablation), the regime where the parametric cache pays off
// most.
func BenchmarkScheduleKernelsIncrementByOne(b *testing.B) {
	benchScheduleKernels(b, Config{IncrementByOne: true})
}
