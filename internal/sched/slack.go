package sched

import "repro/internal/ir"

// SlackPolicy is the paper's contribution: slack scheduling with a
// dynamic priority scheme (Section 4.3) and — unless Unidirectional is
// set — the bidirectional, lifetime-sensitive issue-cycle heuristic of
// Section 5.2.
type SlackPolicy struct {
	// Unidirectional disables the bidirectional heuristic (Section 7's
	// ablation: "without them, the slack scheduler generates nearly the
	// same register pressure as Cydrome's scheduler").
	Unidirectional bool
}

// Name implements Policy.
func (p *SlackPolicy) Name() string {
	if p.Unidirectional {
		return "slack-unidirectional"
	}
	return "slack"
}

// BeginAttempt implements Policy; the slack policy is fully dynamic and
// needs no per-attempt preparation.
func (p *SlackPolicy) BeginAttempt(st *State) {}

// ChooseOp implements the dynamic priority scheme of Section 4.3: choose
// an operation with the minimum number of issue slots available to it,
// approximated by its slack — halved if the op uses a critical resource
// (an estimate of resource contention), halved again if it uses the
// divider (whose complex non-pipelined reservation pattern leaves few
// slots). Ties break toward the smallest Lstart: a top-down bias that
// interacts well with the backtracking policy.
func (p *SlackPolicy) ChooseOp(st *State) int {
	best := -1
	var bestPrio float64
	for x := 0; x <= st.n; x++ {
		if st.Placed(x) {
			continue
		}
		prio := float64(st.Slack(x))
		if st.Contention() && st.Critical(x) {
			prio /= 2
		}
		if st.UsesDivider(x) {
			prio /= 2
		}
		if best == -1 || prio < bestPrio ||
			(prio == bestPrio && st.Lstart(x) < st.Lstart(best)) {
			best = x
			bestPrio = prio
		}
	}
	return best
}

// ScanEarly implements the bidirectional heuristic of Section 5.2. The
// primary goal is minimizing value lifetimes: an operation goes to
// whichever end stretches fewer of them. Placing an op early stretches
// its outputs (the loop body is in SSA form, so the output lifetime ends
// at fixed uses); placing it late stretches those inputs that this op —
// and not some other use — would actually stretch.
func (p *SlackPolicy) ScanEarly(st *State, x int) bool {
	if p.Unidirectional || x == st.StopIndex() {
		return true
	}
	in, out := p.stretchable(st, x)
	switch {
	case in == 0 && out == 0:
		// No stretchable lifetimes at stake (e.g. an accumulator not
		// referenced until the loop exits): place early to minimize the
		// overall schedule length.
		return true
	case in > out:
		return true
	case in < out:
		return false
	}
	// Tie: placement cannot affect final pressure, but it can affect the
	// likelihood of finding a feasible schedule. Place near whichever
	// group — immediate predecessors or successors — has the larger
	// fraction placed, because that group is less likely to be ejected.
	fp, np := placedFraction(st, st.Preds(x))
	fs, ns := placedFraction(st, st.Succs(x))
	switch {
	case fp > fs:
		return true
	case fp < fs:
		return false
	}
	// Final tie: early if and only if no predecessor or successor has
	// yet been placed.
	return np == 0 && ns == 0
}

// placedFraction returns the fraction of the group currently placed and
// the count placed.
func placedFraction(st *State, group []int32) (float64, int) {
	if len(group) == 0 {
		return 0, 0
	}
	n := 0
	for _, y := range group {
		if st.Placed(int(y)) {
			n++
		}
	}
	return float64(n) / float64(len(group)), n
}

// stretchable counts the op's stretchable input and output lifetimes
// given the current partial schedule (Section 5.2). Only flow
// dependencies whose lengths can be stretched count; loop invariants
// (GPR file), duplicate inputs (a lifetime is not counted twice), and
// self-recurrences (fixed length ω·II) are ignored. Predicate guards
// live in the ICR file and are likewise outside the RR-pressure goal.
//
// An input v, defined by d and read by x at distance ω, cannot be
// stretched by x if even x's latest start leaves some other use holding
// the lifetime at least as long:
//
//	Estart(d) + MinLT(v) ≥ ω·II + Lstart(x).
func (p *SlackPolicy) stretchable(st *State, x int) (in, out int) {
	op := st.L.Ops[x]
	counted := map[ir.ValueID]bool{}
	for _, rd := range op.Args {
		v := st.L.Value(rd.Val)
		if v.File != ir.RR || !v.IsVariant() || counted[v.ID] {
			continue
		}
		self := false
		for _, d := range v.Defs {
			if int(d) == x {
				self = true
			}
		}
		if self {
			continue
		}
		counted[v.ID] = true
		for _, d := range v.Defs {
			if st.Estart(int(d))+st.MinLT(v.ID) < rd.Omega*st.II+st.Lstart(x) {
				in++
				break
			}
		}
	}
	if op.Result != ir.None {
		v := st.L.Value(op.Result)
		if v.File == ir.RR {
			for _, dep := range st.L.Deps {
				if dep.Kind == ir.DepFlow && dep.Val == v.ID && int(dep.To) != x {
					out = 1
					break
				}
			}
		}
	}
	return in, out
}
