package sched

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/mindist"
	"repro/internal/mrt"
)

// FindAtII searches exhaustively for any feasible schedule of the loop
// at exactly the given II, with all issue cycles inside [0, horizon).
// It is intended for small loops (≲ 12 operations): the search is a
// depth-first enumeration over op placements with Estart/Lstart-style
// pruning against already-placed ops and the modulo reservation table.
//
// A nil schedule means no feasible schedule exists *within the horizon*;
// the paper observes that "for some loops, the minimum feasible II is
// more than MII", and this searcher lets the test suite and the
// benchmark harness separate those loops from heuristic misses. A
// horizon of the critical path plus a few II is generous in practice —
// loops needing longer schedules exist (divider tilings shift whole
// stages), so callers pass the horizon explicitly and treat nil as
// "infeasible within horizon".
func FindAtII(l *ir.Loop, ii, horizon, maxNodes int) (*ir.Schedule, error) {
	if !l.Finalized() {
		return nil, fmt.Errorf("sched: loop %s not finalized", l.Name)
	}
	md, err := mindist.Compute(l, ii)
	if err != nil {
		return nil, nil // II below RecMII: trivially infeasible
	}
	n := len(l.Ops)
	if horizon < 1 {
		horizon = md.CriticalPath() + 3*ii + 1
	}
	table := mrt.New(l, ii)
	times := make([]int, n)
	for i := range times {
		times[i] = ir.Unplaced
	}

	// Order ops by ascending initial window size: most-constrained first.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	window := func(x int) int {
		lo := 0
		if d := md.Dist(md.Start(), x); d != mindist.NoPath {
			lo = d
		}
		return horizon - lo
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && window(order[j]) < window(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	nodes := 0
	var dfs func(k int) bool
	dfs = func(k int) bool {
		if k == n {
			return true
		}
		if nodes++; maxNodes > 0 && nodes > maxNodes {
			return false
		}
		x := order[k]
		lo := 0
		if d := md.Dist(md.Start(), x); d != mindist.NoPath {
			lo = d
		}
		hi := horizon - 1
		for y := 0; y < n; y++ {
			if times[y] == ir.Unplaced {
				continue
			}
			if d := md.Dist(y, x); d != mindist.NoPath && times[y]+d > lo {
				lo = times[y] + d
			}
			if d := md.Dist(x, y); d != mindist.NoPath && times[y]-d < hi {
				hi = times[y] - d
			}
		}
		for c := lo; c <= hi; c++ {
			if !table.Free(l.Ops[x], c) {
				continue
			}
			table.Place(l.Ops[x], c)
			times[x] = c
			if dfs(k + 1) {
				return true
			}
			table.Eject(l.Ops[x])
			times[x] = ir.Unplaced
		}
		return false
	}
	if !dfs(0) {
		return nil, nil
	}
	s := ir.NewSchedule(ii, n)
	copy(s.Time, times)
	return s, nil
}
