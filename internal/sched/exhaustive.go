// Exhaustive reference searchers. FindAtII answers "does any schedule
// exist at this II within the horizon"; BestAtII answers "what is the
// minimum MaxLive over every such schedule". Together they form the
// differential oracle for the exact backend (internal/exact): both
// explore the same space — issue cycles in [0, horizon), MinDist
// windows, MRT conflicts — but with deliberately naive machinery (full
// window rescans, from-scratch pressure bounds at every node), so a
// bug in the exact scheduler's incremental state is caught by
// disagreement rather than replicated.
package sched

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/lifetime"
	"repro/internal/mindist"
	"repro/internal/mrt"
)

// FindAtII searches exhaustively for any feasible schedule of the loop
// at exactly the given II, with all issue cycles inside [0, horizon).
// It is intended for small loops (≲ 12 operations): the search is a
// depth-first enumeration over op placements with Estart/Lstart-style
// pruning against already-placed ops and the modulo reservation table.
//
// A nil schedule means no feasible schedule exists *within the horizon*;
// the paper observes that "for some loops, the minimum feasible II is
// more than MII", and this searcher lets the test suite and the
// benchmark harness separate those loops from heuristic misses. A
// horizon of the critical path plus a few II is generous in practice —
// loops needing longer schedules exist (divider tilings shift whole
// stages), so callers pass the horizon explicitly and treat nil as
// "infeasible within horizon".
func FindAtII(l *ir.Loop, ii, horizon, maxNodes int) (*ir.Schedule, error) {
	if !l.Finalized() {
		return nil, fmt.Errorf("sched: loop %s not finalized", l.Name)
	}
	md, err := mindist.Compute(l, ii)
	if err != nil {
		return nil, nil // II below RecMII: trivially infeasible
	}
	n := len(l.Ops)
	if horizon < 1 {
		horizon = md.CriticalPath() + 3*ii + 1
	}
	table := mrt.New(l, ii)
	times := make([]int, n)
	for i := range times {
		times[i] = ir.Unplaced
	}

	// Order ops by ascending initial window size: most-constrained first.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	window := func(x int) int {
		lo := 0
		if d := md.Dist(md.Start(), x); d != mindist.NoPath {
			lo = d
		}
		return horizon - lo
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && window(order[j]) < window(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	nodes := 0
	var dfs func(k int) bool
	dfs = func(k int) bool {
		if k == n {
			return true
		}
		if nodes++; maxNodes > 0 && nodes > maxNodes {
			return false
		}
		x := order[k]
		lo := 0
		if d := md.Dist(md.Start(), x); d != mindist.NoPath {
			lo = d
		}
		hi := horizon - 1
		for y := 0; y < n; y++ {
			if times[y] == ir.Unplaced {
				continue
			}
			if d := md.Dist(y, x); d != mindist.NoPath && times[y]+d > lo {
				lo = times[y] + d
			}
			if d := md.Dist(x, y); d != mindist.NoPath && times[y]-d < hi {
				hi = times[y] - d
			}
		}
		for c := lo; c <= hi; c++ {
			if !table.Free(l.Ops[x], c) {
				continue
			}
			table.Place(l.Ops[x], c)
			times[x] = c
			if dfs(k + 1) {
				return true
			}
			table.Eject(l.Ops[x])
			times[x] = ir.Unplaced
		}
		return false
	}
	if !dfs(0) {
		return nil, nil
	}
	s := ir.NewSchedule(ii, n)
	copy(s.Time, times)
	return s, nil
}

// BestAtII exhaustively minimizes RR-file MaxLive over every feasible
// schedule of the loop at exactly the given II, with all issue cycles
// inside [0, horizon) (horizon < 1 derives the FindAtII default). It is
// the second half of the differential oracle: FindAtII decides
// feasibility, BestAtII decides the lexicographic second key.
//
// The search is a branch-and-bound enumeration whose only pressure
// pruning is the averaging bound recomputed naively from scratch at
// every node: MaxLive ≥ ⌈Σ_v max(MinLT(v), placed-span(v)) / II⌉, with
// each placed-span rescanned over the whole operation list. That keeps
// the oracle slow but structurally independent of the exact backend's
// incremental value-state machinery.
//
// A nil schedule means no feasible schedule exists within the horizon.
// complete reports that the enumeration finished (or provably reached
// the static floor) within maxNodes; when it is false the returned
// minimum is only an upper bound and callers must not treat it as the
// oracle verdict.
func BestAtII(l *ir.Loop, ii, horizon, maxNodes int) (best *ir.Schedule, maxLive int, complete bool, err error) {
	if !l.Finalized() {
		return nil, 0, false, fmt.Errorf("sched: loop %s not finalized", l.Name)
	}
	md, err := mindist.Compute(l, ii)
	if err != nil {
		return nil, 0, true, nil // II below RecMII: trivially infeasible
	}
	n := len(l.Ops)
	if horizon < 1 {
		horizon = md.CriticalPath() + 3*ii + 1
	}
	// The schedule-independent per-value floors, and the static averaging
	// floor no schedule at this II can beat.
	minLT := make(map[ir.ValueID]int)
	ltSum := 0
	for _, v := range l.Values {
		if v.File != ir.RR || !v.IsVariant() {
			continue
		}
		lt := mindist.MinLT(l, md, v.ID)
		minLT[v.ID] = lt
		ltSum += lt
	}
	floor := (ltSum + ii - 1) / ii

	// partialLB recomputes the averaging bound from scratch: for every
	// RR value, the larger of its static floor and the span its placed
	// defs/uses already pin down. Sound because a final schedule can only
	// move a value's earliest def earlier (more defs placed) and its
	// latest use later (more uses placed).
	partialLB := func(times []int) int {
		sum := 0
		for _, v := range l.Values {
			if v.File != ir.RR || !v.IsVariant() {
				continue
			}
			cur := minLT[v.ID]
			start := -1
			for _, d := range v.Defs {
				if t := times[d]; t != ir.Unplaced && (start == -1 || t < start) {
					start = t
				}
			}
			if start >= 0 {
				end := -1
				for _, op := range l.Ops {
					t := times[op.ID]
					if t == ir.Unplaced {
						continue
					}
					for _, rd := range op.Args {
						if rd.Val == v.ID {
							if u := t + rd.Omega*ii; u > end {
								end = u
							}
						}
					}
					if rd := op.Pred; rd != nil && rd.Val == v.ID {
						if u := t + rd.Omega*ii; u > end {
							end = u
						}
					}
				}
				if end >= 0 && end-start > cur {
					cur = end - start
				}
			}
			sum += cur
		}
		return (sum + ii - 1) / ii
	}

	table := mrt.New(l, ii)
	times := make([]int, n)
	for i := range times {
		times[i] = ir.Unplaced
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	window := func(x int) int {
		lo := 0
		if d := md.Dist(md.Start(), x); d != mindist.NoPath {
			lo = d
		}
		return horizon - lo
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && window(order[j]) < window(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	bound := int(^uint(0) >> 1) // strict upper bound: seeking MaxLive < bound
	var bestTimes []int
	leaf := ir.NewSchedule(ii, n)
	nodes, capped, atFloor := 0, false, false
	var dfs func(k int)
	dfs = func(k int) {
		if capped || atFloor {
			return
		}
		// Leaves count as nodes too: each one runs a full lifetime
		// measurement, so an interior-only cap would leave the dominant
		// cost unbounded.
		if nodes++; maxNodes > 0 && nodes > maxNodes {
			capped = true
			return
		}
		if k == n {
			copy(leaf.Time, times)
			if ml := lifetime.Measure(l, leaf, ir.RR).MaxLive; ml < bound {
				bound = ml
				if bestTimes == nil {
					bestTimes = make([]int, n)
				}
				copy(bestTimes, times)
				if bound <= floor {
					atFloor = true // provably optimal: no schedule beats the static floor
				}
			}
			return
		}
		x := order[k]
		lo := 0
		if d := md.Dist(md.Start(), x); d != mindist.NoPath {
			lo = d
		}
		hi := horizon - 1
		for y := 0; y < n; y++ {
			if times[y] == ir.Unplaced {
				continue
			}
			if d := md.Dist(y, x); d != mindist.NoPath && times[y]+d > lo {
				lo = times[y] + d
			}
			if d := md.Dist(x, y); d != mindist.NoPath && times[y]-d < hi {
				hi = times[y] - d
			}
		}
		for c := lo; c <= hi; c++ {
			if !table.Free(l.Ops[x], c) {
				continue
			}
			table.Place(l.Ops[x], c)
			times[x] = c
			if partialLB(times) < bound {
				dfs(k + 1)
			}
			table.Eject(l.Ops[x])
			times[x] = ir.Unplaced
			if capped || atFloor {
				return
			}
		}
	}
	dfs(0)
	if bestTimes == nil {
		return nil, 0, !capped, nil
	}
	s := ir.NewSchedule(ii, n)
	copy(s.Time, bestTimes)
	return s, bound, !capped || atFloor, nil
}
