package sched

import (
	"context"
	"time"
)

// Budget bounds the work one Schedule call may perform. The zero value
// is unlimited — the hot path then skips every check. A hostile loop
// (ejection storm, II escalation on a RecMII-hard recurrence) can
// therefore never hang a caller that sets any bound: the engine checks
// the budget at every II-attempt boundary and every budgetCheckStride
// iterations of the central loop, and on exhaustion returns a
// *BudgetError carrying the partial evidence gathered so far.
type Budget struct {
	// Deadline caps the wall-clock time of one Schedule call, measured
	// from its entry. 0 means unlimited.
	Deadline time.Duration
	// MaxCentralIters caps the central-loop iterations summed across
	// all II attempts. 0 means unlimited.
	MaxCentralIters int64
	// MaxIIAttempts caps how many II values are tried. 0 means
	// unlimited (the ceiling is then Config.MaxII or its derived
	// default).
	MaxIIAttempts int
}

// Limited reports whether any bound is set.
func (b Budget) Limited() bool {
	return b.Deadline > 0 || b.MaxCentralIters > 0 || b.MaxIIAttempts > 0
}

// budgetCheckStride is the central-loop iteration interval between
// deadline/cancellation polls: coarse enough that time.Now stays off
// the per-placement path, fine enough that one attempt can overshoot
// its deadline by at most a few hundred cheap iterations.
const budgetCheckStride = 256

// The exhaustion reasons reported in BudgetError.Reason.
const (
	ReasonDeadline     = "deadline"
	ReasonCentralIters = "central-iterations"
	ReasonIIAttempts   = "ii-attempts"
	ReasonCanceled     = "canceled"
)

// budgetGuard is the engine's per-call budget state. active is false
// for unbudgeted, uncancellable calls, which then pay one branch per
// stride and nothing else.
type budgetGuard struct {
	ctx      context.Context
	budget   Budget
	deadline time.Time // zero when no wall-clock bound applies
	active   bool
}

func newBudgetGuard(ctx context.Context, b Budget) budgetGuard {
	g := budgetGuard{ctx: ctx, budget: b}
	now := time.Time{}
	if b.Deadline > 0 {
		now = time.Now()
		g.deadline = now.Add(b.Deadline)
	}
	if d, ok := ctx.Deadline(); ok && (g.deadline.IsZero() || d.Before(g.deadline)) {
		g.deadline = d
	}
	g.active = b.Limited() || ctx.Done() != nil || !g.deadline.IsZero()
	return g
}

// exceeded reports why the budget is exhausted ("" if it is not),
// checking cancellation, the wall clock, and the central-iteration cap.
func (g *budgetGuard) exceeded(stats *Stats) string {
	if !g.active {
		return ""
	}
	if g.ctx.Err() != nil {
		return ReasonCanceled
	}
	if !g.deadline.IsZero() && !time.Now().Before(g.deadline) {
		return ReasonDeadline
	}
	if g.budget.MaxCentralIters > 0 && stats.CentralIters >= g.budget.MaxCentralIters {
		return ReasonCentralIters
	}
	return ""
}

// attemptExceeded runs the boundary check before an II attempt: the
// stride checks plus the attempt cap (attempted is the number already
// finished).
func (g *budgetGuard) attemptExceeded(stats *Stats, attempted int) string {
	if !g.active {
		return ""
	}
	if g.budget.MaxIIAttempts > 0 && attempted >= g.budget.MaxIIAttempts {
		return ReasonIIAttempts
	}
	return g.exceeded(stats)
}

// stop returns a poll function for long analyses (the MinDist cache),
// or nil when the guard is inactive.
func (g *budgetGuard) stop() func() bool {
	if !g.active {
		return nil
	}
	return func() bool { return g.exceeded(&Stats{}) != "" }
}
