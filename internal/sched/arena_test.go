package sched

import (
	"testing"

	"repro/internal/fixture"
	"repro/internal/machine"
)

// TestArenaReleaseRetainsNoRequestData holds the pool-hygiene
// invariant: after Release, a pooled arena keeps only pointer-free
// backing capacity — no loop, no MinDist tables bound to it, no MRT
// binding, no observer — so the sync.Pool never pins one request's data
// into the next request's working set.
func TestArenaReleaseRetainsNoRequestData(t *testing.T) {
	l := fixture.Divide(machine.Cydra())
	a := AcquireArena()
	cfg := Config{Arena: a}
	if _, err := Slack(cfg).Schedule(l); err != nil {
		t.Fatal(err)
	}
	if a.preparedFor != l {
		t.Fatalf("arena never bound to the loop it compiled")
	}
	inUse0, rec0 := ArenaStats()
	a.Release()
	inUse1, rec1 := ArenaStats()
	if inUse1 != inUse0-1 {
		t.Errorf("in-use gauge: %d -> %d, want a decrement", inUse0, inUse1)
	}
	if rec1 != rec0+1 {
		t.Errorf("recycled counter: %d -> %d, want an increment", rec0, rec1)
	}
	if a.held {
		t.Error("arena still held after Release")
	}
	if a.preparedFor != nil {
		t.Error("arena retains the compiled loop")
	}
	st := &a.st
	if st.L != nil || st.MD != nil || st.mrt != nil || st.obs != nil {
		t.Errorf("attempt state retains request refs: L=%v MD=%v mrt=%v obs=%v",
			st.L != nil, st.MD != nil, st.mrt != nil, st.obs != nil)
	}
	if st.evt != (Event{}) {
		t.Errorf("attempt state retains the event template: %+v", st.evt)
	}

	// Double release is a no-op: the gauges must not drift.
	a.Release()
	inUse2, rec2 := ArenaStats()
	if inUse2 != inUse1 || rec2 != rec1 {
		t.Errorf("double release moved the stats: inuse %d->%d recycled %d->%d",
			inUse1, inUse2, rec1, rec2)
	}
}

// TestArenaPoolRoundTrip proves a released arena really is reused and
// that reuse is invisible to the caller: two schedules of different
// loops through the same recycled arena match schedules on fresh
// arenas.
func TestArenaPoolRoundTrip(t *testing.T) {
	m := machine.Cydra()
	loops := fixture.All(m)
	for _, l := range loops {
		a := AcquireArena()
		got, err := Slack(Config{Arena: a}).Schedule(l)
		a.Release()
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		want, err := Slack(Config{NoPool: true}).Schedule(l)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if got.II() != want.II() {
			t.Errorf("%s: pooled II %d, fresh II %d", l.Name, got.II(), want.II())
		}
		for i, tm := range want.Schedule.Time {
			if got.Schedule.Time[i] != tm {
				t.Errorf("%s: op %d at %d via pool, %d fresh", l.Name, i, got.Schedule.Time[i], tm)
			}
		}
	}
}
