package sched

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/fixture"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/obs"
)

// bigChain builds a loop of n chained float adds off one invariant
// input — large enough that a single II attempt runs past the
// budget-check stride, so mid-attempt exhaustion and cancellation are
// observable deterministically (the small fixtures finish their
// attempts well before the first stride poll).
func bigChain(n int) *ir.Loop {
	m := machine.Cydra()
	l := ir.NewLoop("big-chain", m)
	a := l.NewValue("a", ir.GPR, ir.Float)
	prev := a
	for i := 0; i < n; i++ {
		v := l.NewValue("c", ir.RR, ir.Float)
		l.NewOp(machine.FAdd, []ir.Operand{{Val: prev.ID}, {Val: prev.ID}}, v.ID)
		prev = v
	}
	prev.LiveOut = true
	l.MustFinalize()
	return l
}

// A run whose central-iteration cap trips mid-attempt must close that
// attempt with the central-iterations outcome — the dimension the flat
// OK bit loses.
func TestAttemptOutcomeCentralIters(t *testing.T) {
	l := bigChain(2 * budgetCheckStride)
	rec := &recorder{}
	met := &Metrics{}
	cfg := Config{
		Observer: multiObserver{rec, met},
		Budget:   Budget{MaxCentralIters: 10},
	}
	_, err := Slack(cfg).ScheduleContext(context.Background(), l)
	var be *BudgetError
	if !errors.As(err, &be) || be.Reason != ReasonCentralIters {
		t.Fatalf("err = %v, want BudgetError(%s)", err, ReasonCentralIters)
	}
	last := rec.events[len(rec.events)-1]
	if last.Kind != EvAttemptEnd || last.OK || last.Outcome != AttemptCentralIters {
		t.Fatalf("last event %+v, want !OK attempt-end with outcome %s", last, AttemptCentralIters)
	}
	if met.AttemptOutcomes[AttemptCentralIters] != 1 {
		t.Fatalf("metrics outcomes %v, want one %s", met.OutcomeCounts(), AttemptCentralIters)
	}
}

// cancelOnFirstPlace cancels the context as soon as the attempt places
// its first operation, so the next stride poll sees a canceled context
// mid-attempt — deterministically, because the scheduler calls
// observers synchronously.
type cancelOnFirstPlace struct {
	cancel context.CancelFunc
	done   bool
}

func (c *cancelOnFirstPlace) Event(e Event) {
	if e.Kind == EvPlace && !c.done {
		c.done = true
		c.cancel()
	}
}

// Cancellation mid-attempt must be distinguishable from budget
// exhaustion in the outcome dimension.
func TestAttemptOutcomeCanceled(t *testing.T) {
	l := bigChain(2 * budgetCheckStride)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec := &recorder{}
	met := &Metrics{}
	canceler := &cancelOnFirstPlace{cancel: cancel}
	cfg := Config{Observer: multiObserver{canceler, rec, met}}
	_, err := Slack(cfg).ScheduleContext(ctx, l)
	var be *BudgetError
	if !errors.As(err, &be) || be.Reason != ReasonCanceled {
		t.Fatalf("err = %v, want BudgetError(%s)", err, ReasonCanceled)
	}
	last := rec.events[len(rec.events)-1]
	if last.Kind != EvAttemptEnd || last.Outcome != AttemptCanceled {
		t.Fatalf("last event %+v, want attempt-end with outcome %s", last, AttemptCanceled)
	}
	if met.AttemptOutcomes[AttemptCanceled] != 1 || met.AttemptOutcomes[AttemptCentralIters] != 0 {
		t.Fatalf("metrics outcomes %v: cancellation misfiled", met.OutcomeCounts())
	}
}

// A loop that backtracks through give-ups before succeeding files every
// attempt under exactly one outcome: give-ups plus one ok.
func TestAttemptOutcomeGiveUpAndOK(t *testing.T) {
	l := fixture.Divide(machine.Cydra())
	met := &Metrics{}
	cfg := tinyEject
	cfg.Observer = met
	res, err := Slack(cfg).Schedule(l)
	if err != nil || !res.OK() {
		t.Fatalf("schedule failed: %v", err)
	}
	if met.AttemptOutcomes[AttemptOK] != 1 {
		t.Fatalf("outcomes %v, want exactly one ok", met.OutcomeCounts())
	}
	if met.AttemptOutcomes[AttemptGiveUp] == 0 {
		t.Fatalf("outcomes %v: divide under tinyEject should give up at least once", met.OutcomeCounts())
	}
	var total int64
	for _, n := range met.AttemptOutcomes {
		total += n
	}
	if total != met.Attempts {
		t.Fatalf("outcome total %d != attempts %d", total, met.Attempts)
	}
}

// The list scheduler shares the outcome contract.
func TestListSchedulerStampsOutcomes(t *testing.T) {
	l := fixture.Daxpy(machine.Cydra())
	rec := &recorder{}
	res, err := ListSchedule(l, Config{Observer: rec})
	if err != nil || !res.OK() {
		t.Fatalf("list schedule failed: %v", err)
	}
	var ends int
	for _, e := range rec.events {
		if e.Kind == EvAttemptEnd {
			ends++
			want := AttemptGiveUp
			if e.OK {
				want = AttemptOK
			}
			if e.Outcome != want {
				t.Fatalf("attempt-end %+v: outcome/OK disagree", e)
			}
		}
	}
	if ends == 0 {
		t.Fatal("no attempt-end events observed")
	}
}

// The outcome names are the budget Reason strings, so spans, metrics
// and errors all speak one vocabulary; JSON renders the names.
func TestAttemptOutcomeNames(t *testing.T) {
	cases := map[AttemptOutcome]string{
		AttemptOK:           "ok",
		AttemptGiveUp:       "give-up",
		AttemptDeadline:     ReasonDeadline,
		AttemptCentralIters: ReasonCentralIters,
		AttemptIIAttempts:   ReasonIIAttempts,
		AttemptCanceled:     ReasonCanceled,
	}
	for o, want := range cases {
		if o.String() != want {
			t.Fatalf("%d.String() = %q, want %q", o, o.String(), want)
		}
		b, err := json.Marshal(o)
		if err != nil || string(b) != `"`+want+`"` {
			t.Fatalf("marshal %v: %s, %v", o, b, err)
		}
	}
	for reason, want := range map[string]AttemptOutcome{
		ReasonDeadline:     AttemptDeadline,
		ReasonCentralIters: AttemptCentralIters,
		ReasonIIAttempts:   AttemptIIAttempts,
		ReasonCanceled:     AttemptCanceled,
		"unknown":          AttemptGiveUp,
	} {
		if got := attemptOutcome(false, reason); got != want {
			t.Fatalf("attemptOutcome(false, %q) = %v, want %v", reason, got, want)
		}
	}
}

// A traced ScheduleContext records the pipeline spans: the MII bound,
// at least one MinDist build, and one attempt span per II attempt, with
// the culprit election pointing at the attempt when the budget trips
// inside it.
func TestScheduleContextRecordsSpans(t *testing.T) {
	l := fixture.Daxpy(machine.Cydra())
	tr := obs.NewTrace("t1", l.Name)
	ctx := obs.WithTrace(context.Background(), tr)
	res, err := Slack(Config{}).ScheduleContext(ctx, l)
	if err != nil || !res.OK() {
		t.Fatalf("schedule failed: %v", err)
	}
	byName := map[string]int{}
	for _, sp := range tr.Spans {
		byName[sp.Name]++
	}
	if byName["mii"] != 1 || byName["mindist"] == 0 || byName["attempt"] == 0 {
		t.Fatalf("spans %v, want mii + mindist + attempt", byName)
	}
	if byName["attempt"] != res.Stats.IIAttempts {
		t.Fatalf("%d attempt spans for %d II attempts", byName["attempt"], res.Stats.IIAttempts)
	}

	// Budget trips mid-attempt: that attempt span carries the exhaustion
	// outcome and wins the culprit election.
	big := bigChain(2 * budgetCheckStride)
	tr2 := obs.NewTrace("t2", big.Name)
	ctx2 := obs.WithTrace(context.Background(), tr2)
	cfg := Config{Budget: Budget{MaxCentralIters: 10}}
	if _, err := Slack(cfg).ScheduleContext(ctx2, big); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	tr2.Finish(obs.OutcomeCentralIters)
	if tr2.Culprit != "attempt" {
		t.Fatalf("culprit = %q, want attempt", tr2.Culprit)
	}
	var found bool
	for _, sp := range tr2.Spans {
		if sp.Name == "attempt" && sp.Outcome == obs.OutcomeCentralIters {
			found = true
		}
	}
	if !found {
		t.Fatalf("no attempt span with outcome %s: %+v", obs.OutcomeCentralIters, tr2.Spans)
	}
}
