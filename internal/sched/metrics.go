package sched

// Metrics is an aggregating Observer: it folds the typed event stream
// into counters and small histograms that merge deterministically —
// counts depend only on the (loop, policy, Config) triples observed,
// never on timing or worker interleaving, so a parallel sweep that
// gives each loop its own Metrics and merges them in loop order
// reproduces the serial aggregate exactly.
//
// A Metrics value is not safe for concurrent use; give each concurrent
// Schedule call its own and Merge afterwards.
type Metrics struct {
	// Events counts every event by kind, indexed by EventKind.
	Events [numEventKinds]int64 `json:"-"`

	// Attempts / AttemptsOK count II attempts and how many succeeded.
	Attempts   int64 `json:"attempts"`
	AttemptsOK int64 `json:"attempts_ok"`

	// AttemptOutcomes counts finished attempts by AttemptOutcome — the
	// dimension the flat OK bit loses: a budget-exhausted attempt
	// (deadline, central-iteration or II-attempt cap) is distinguishable
	// from a cancelled one and from an ordinary heuristic give-up.
	// Indexed by AttemptOutcome; see OutcomeCounts for the named view.
	AttemptOutcomes [numAttemptOutcomes]int64 `json:"-"`

	// ScanFailures counts EvPlace events whose window scan found no
	// conflict-free cycle (each is followed by a force or a give-up).
	ScanFailures int64 `json:"scan_failures"`

	// EjectionsPerAttempt histograms the ejection count of each
	// finished attempt into power-of-two buckets: bucket b counts
	// attempts with ejections in [2^(b-1), 2^b), bucket 0 counts
	// ejection-free attempts.
	EjectionsPerAttempt [16]int64 `json:"ejections_per_attempt"`

	// Degradations counts EvDegraded events (list-scheduler fallbacks).
	Degradations int64 `json:"degradations"`
}

// Event implements Observer.
func (m *Metrics) Event(e Event) {
	if int(e.Kind) < len(m.Events) {
		m.Events[e.Kind]++
	}
	switch e.Kind {
	case EvAttemptStart:
		m.Attempts++
	case EvPlace:
		if e.Cycle < 0 {
			m.ScanFailures++
		}
	case EvAttemptEnd:
		if e.OK {
			m.AttemptsOK++
		}
		if int(e.Outcome) < len(m.AttemptOutcomes) {
			m.AttemptOutcomes[e.Outcome]++
		}
		m.EjectionsPerAttempt[histBucket(e.Ejections)]++
	case EvDegraded:
		m.Degradations++
	}
}

// histBucket maps a count to its power-of-two bucket, saturating at the
// last bucket.
func histBucket(n int) int {
	b := 0
	for n > 0 {
		b++
		n >>= 1
	}
	if b >= 16 {
		b = 15
	}
	return b
}

// Merge folds other into m. Merging per-loop metrics in loop order is
// deterministic regardless of how the loops were scheduled across
// workers.
func (m *Metrics) Merge(other *Metrics) {
	if other == nil {
		return
	}
	for i := range m.Events {
		m.Events[i] += other.Events[i]
	}
	m.Attempts += other.Attempts
	m.AttemptsOK += other.AttemptsOK
	for i := range m.AttemptOutcomes {
		m.AttemptOutcomes[i] += other.AttemptOutcomes[i]
	}
	m.ScanFailures += other.ScanFailures
	for i := range m.EjectionsPerAttempt {
		m.EjectionsPerAttempt[i] += other.EjectionsPerAttempt[i]
	}
	m.Degradations += other.Degradations
}

// EventCounts returns the per-kind counters keyed by the kind's stable
// wire name (for JSON emission).
func (m *Metrics) EventCounts() map[string]int64 {
	out := make(map[string]int64, numEventKinds)
	for k := EventKind(0); k < numEventKinds; k++ {
		out[k.String()] = m.Events[k]
	}
	return out
}

// OutcomeCounts returns the finished-attempt counters keyed by the
// outcome's stable wire name (for JSON and Prometheus emission).
func (m *Metrics) OutcomeCounts() map[string]int64 {
	out := make(map[string]int64, numAttemptOutcomes)
	for o := AttemptOutcome(0); o < numAttemptOutcomes; o++ {
		out[o.String()] = m.AttemptOutcomes[o]
	}
	return out
}
