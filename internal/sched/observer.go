package sched

import (
	"fmt"
	"io"
)

// AttemptOutcome classifies how one II attempt ended; it is stamped on
// EvAttemptEnd events so aggregations can tell a heuristic give-up from
// a budget exhaustion, and a budget exhaustion from a cancellation.
type AttemptOutcome uint8

// The attempt outcomes.
const (
	// AttemptOK: the attempt produced a complete schedule.
	AttemptOK AttemptOutcome = iota
	// AttemptGiveUp: the ejection budget or iteration cap tripped and
	// the scheduler moves to a higher II (step 6).
	AttemptGiveUp
	// AttemptDeadline: the Budget's wall-clock deadline expired.
	AttemptDeadline
	// AttemptCentralIters: the Budget's central-iteration cap tripped.
	AttemptCentralIters
	// AttemptIIAttempts: the Budget's II-attempt cap tripped.
	AttemptIIAttempts
	// AttemptCanceled: the caller's context was canceled.
	AttemptCanceled

	numAttemptOutcomes // count; keep last
)

// String returns the outcome's stable wire name.
func (o AttemptOutcome) String() string {
	switch o {
	case AttemptOK:
		return "ok"
	case AttemptGiveUp:
		return "give-up"
	case AttemptDeadline:
		return ReasonDeadline
	case AttemptCentralIters:
		return ReasonCentralIters
	case AttemptIIAttempts:
		return ReasonIIAttempts
	case AttemptCanceled:
		return ReasonCanceled
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// MarshalJSON renders the wire name, keeping flight-recorder dumps and
// metrics JSON readable.
func (o AttemptOutcome) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", o.String())), nil
}

// attemptOutcome folds the engine's (ok, stopReason) pair into the
// typed outcome.
func attemptOutcome(ok bool, stopReason string) AttemptOutcome {
	switch stopReason {
	case "":
		if ok {
			return AttemptOK
		}
		return AttemptGiveUp
	case ReasonDeadline:
		return AttemptDeadline
	case ReasonCentralIters:
		return AttemptCentralIters
	case ReasonIIAttempts:
		return AttemptIIAttempts
	case ReasonCanceled:
		return AttemptCanceled
	}
	return AttemptGiveUp
}

// EventKind enumerates the structured events of one scheduling run. The
// stream for a given (loop, policy, Config) is deterministic: the
// scheduler itself is deterministic, so two runs — serial or inside a
// parallel sweep — produce byte-identical streams.
type EventKind uint8

// The event kinds, in the order the central loop can emit them.
const (
	// EvAttemptStart opens one II attempt (Event.II is the II tried).
	EvAttemptStart EventKind = iota
	// EvPlace reports step 1-2 of the central loop: an operation was
	// chosen and its issue window scanned. Event.Cycle is the
	// conflict-free cycle found, or ir.Unplaced when the scan failed
	// (an EvForce follows if ejection succeeds).
	EvPlace
	// EvForce reports step 3: the operation was forced into Event.Cycle
	// after ejecting its conflicts (the EvEject events precede it).
	EvForce
	// EvEject reports one operation leaving the partial schedule;
	// Event.Cycle is the cycle it was ejected from.
	EvEject
	// EvRestart reports step 6: the attempt's ejection budget was
	// exhausted and the scheduler moves to a higher II.
	EvRestart
	// EvAttemptEnd closes one II attempt; Event.OK reports success.
	EvAttemptEnd
	// EvDegraded reports that a budget-exhausted compilation fell back
	// to the no-backtracking list scheduler (core.Options.Degrade).
	EvDegraded

	numEventKinds // count; keep last
)

// String returns the kind's stable wire name.
func (k EventKind) String() string {
	switch k {
	case EvAttemptStart:
		return "attempt-start"
	case EvPlace:
		return "place"
	case EvForce:
		return "force"
	case EvEject:
		return "eject"
	case EvRestart:
		return "restart"
	case EvAttemptEnd:
		return "attempt-end"
	case EvDegraded:
		return "degraded"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// MarshalJSON renders the wire name, so flight-recorder dumps carry
// "place"/"force"/… instead of bare ordinals.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", k.String())), nil
}

// Event is one typed observation from a scheduling run. Loop, Policy and
// II identify the attempt; the remaining fields are meaningful per kind
// (see the EventKind constants).
type Event struct {
	Kind   EventKind
	Loop   string
	Policy string
	II     int

	Iter           int  // central-loop iteration within the attempt (EvPlace, EvForce)
	Op             int  // operation index, or StopIndex; -1 when not applicable
	Cycle          int  // issue cycle (EvPlace, EvForce, EvEject); ir.Unplaced for a failed scan
	Estart, Lstart int  // the op's bounds when chosen (EvPlace)
	Ejections      int  // ejections charged so far in this attempt (EvForce, EvEject, EvRestart, EvAttemptEnd)
	OK             bool // EvAttemptEnd: the attempt produced a complete schedule

	// Outcome classifies EvAttemptEnd beyond the OK bit: a heuristic
	// give-up (restart at higher II), a budget exhaustion (and which
	// bound), or a cancellation. AttemptOK iff OK.
	Outcome AttemptOutcome
}

// Observer receives the typed event stream of a scheduling run. The
// scheduler calls Event synchronously from its own goroutine; an
// observer shared across concurrent Schedule calls must synchronize
// itself (the bench harness instead uses one observer per loop and
// merges deterministically).
type Observer interface {
	Event(Event)
}

// multiObserver fans one stream out to several observers.
type multiObserver []Observer

func (m multiObserver) Event(e Event) {
	for _, o := range m {
		o.Event(e)
	}
}

// textObserver renders events in the legacy Config.Trace text format.
type textObserver struct {
	w io.Writer
}

// TextObserver returns an Observer that renders the event stream as the
// legacy -trace text: one "iter N: chose opX ..." line per EvPlace, one
// "  forced opX at C ..." line per EvForce, byte-compatible with what
// Config.Trace produced, plus a line per EvDegraded (which the legacy
// hook could never see). Other kinds render nothing.
func TextObserver(w io.Writer) Observer { return textObserver{w} }

func (t textObserver) Event(e Event) {
	switch e.Kind {
	case EvPlace:
		fmt.Fprintf(t.w, "iter %d: chose op%d estart=%d lstart=%d free=%d\n",
			e.Iter, e.Op, e.Estart, e.Lstart, e.Cycle)
	case EvForce:
		fmt.Fprintf(t.w, "  forced op%d at %d (ejections now %d)\n",
			e.Op, e.Cycle, e.Ejections)
	case EvDegraded:
		fmt.Fprintf(t.w, "degraded: %s budget exhausted at II=%d, falling back to list scheduling\n",
			e.Policy, e.II)
	}
}

// traceObserver adapts the deprecated Config.Trace hook to the event
// stream, preserving the exact legacy format strings and arguments.
type traceObserver struct {
	f func(format string, args ...any)
}

func (t traceObserver) Event(e Event) {
	switch e.Kind {
	case EvPlace:
		t.f("iter %d: chose op%d estart=%d lstart=%d free=%d",
			e.Iter, e.Op, e.Estart, e.Lstart, e.Cycle)
	case EvForce:
		t.f("  forced op%d at %d (ejections now %d)", e.Op, e.Cycle, e.Ejections)
	}
}

// EventSink resolves the configuration's effective observer: Observer,
// the deprecated Trace hook (adapted to the legacy text format), both
// chained, or nil when the run is unobserved — the engine's fast path.
func (c Config) EventSink() Observer {
	if c.Trace == nil {
		return c.Observer
	}
	t := traceObserver{c.Trace}
	if c.Observer == nil {
		return t
	}
	return multiObserver{c.Observer, t}
}
