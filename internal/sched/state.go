// Package sched implements the paper's operation-driven modulo-scheduling
// framework with limited backtracking (Section 4), parameterized by a
// Policy that supplies the two heuristic decisions of the central loop:
// which operation to place next (Section 4.3) and whether to search its
// issue cycles early-first or late-first (Section 5.2).
//
// Three policies are provided:
//
//   - Slack: the paper's contribution — dynamic slack priority with
//     bidirectional, lifetime-sensitive issue-cycle selection.
//   - SlackUnidirectional: the ablation of Section 7 — the same dynamic
//     priority but always scanning early-first.
//   - Cydrome: the baseline "Old Scheduler" of Section 8 — static
//     initial-slack priority, recurrence operations placed first, and
//     earliest-only placement.
//
// A fourth scheduler, List (listsched.go), is a classic no-backtracking
// list scheduler included to demonstrate why recurrence circuits defeat
// purely unidirectional approaches (Section 4).
package sched

import (
	"repro/internal/ir"
	"repro/internal/mindist"
	"repro/internal/mrt"
)

// State is one II attempt's scheduling state, visible to policies.
type State struct {
	L  *ir.Loop
	II int
	MD *mindist.Table

	n    int // number of real ops; Stop has index n
	mrt  *mrt.Table
	time []int // issue cycle per index (ops + Stop); ir.Unplaced if absent

	estart, lstart []int // bounds per index (ops + Stop)
	lastPlace      []int // most recent placement, or ir.Unplaced if never placed

	lstartStop int  // current Lstart(Stop) anchor (Section 4.2)
	contention bool // ResMII > 1

	critical []bool // per op: uses a critical resource at this II
	divider  []bool // per op: runs on the (non-pipelined) divider
	minLT    []int  // per value: MinLT at this II (RR values; 0 elsewhere)

	// Immediate dependence neighbours per op (deduplicated, no self
	// arcs) in compressed-sparse-row form: node x's predecessors are
	// predAdj[predOff[x]:predOff[x+1]], first-occurrence order. The
	// compact int32 encoding replaces the pointer-heavy [][]int of the
	// original representation on the hot analyses and is built once per
	// compile by the arena, not once per II attempt.
	predOff, succOff []int32
	predAdj, succAdj []int32
	brtop            int // index of the brtop op, or -1

	unplacedCount int
	ejections     int // ejections charged against this attempt's budget

	// esFrom/lsFrom witness each unplaced index's bound: the placed
	// index whose constraint determines it, or -1 when the
	// schedule-independent base (Start / the Stop anchor) does. An
	// ejection then invalidates only the bounds it witnessed.
	esFrom, lsFrom []int
	noIncremental  bool   // force the full recompute (differential testing)
	scratch        []bool // forceAt dedup scratch, n+1 wide, false between calls
	victimBuf      []int  // forceAt victim accumulator, reused across calls
	depBuf         []int  // depVictims accumulator, reused across calls
	policyBuf      []int  // PolicyScratch buffer, reused across attempts

	obs Observer // event sink, or nil (the unobserved fast path)
	evt Event    // template with Loop/Policy/II prefilled by the engine
}

// StopIndex returns the index representing the Stop pseudo-op, which is
// scheduled like any other operation (Section 4.1) but needs no
// resources.
func (st *State) StopIndex() int { return st.n }

// NumOps returns the number of real operations.
func (st *State) NumOps() int { return st.n }

// Placed reports whether index x (an op or Stop) is currently placed.
func (st *State) Placed(x int) bool { return st.time[x] != ir.Unplaced }

// Time returns the current issue cycle of x, or ir.Unplaced.
func (st *State) Time(x int) int { return st.time[x] }

// Estart and Lstart return the current bounds of x.
func (st *State) Estart(x int) int { return st.estart[x] }
func (st *State) Lstart(x int) int { return st.lstart[x] }

// Slack returns Lstart(x) − Estart(x); negative slack means the op cannot
// currently be placed without ejections.
func (st *State) Slack(x int) int { return st.lstart[x] - st.estart[x] }

// Critical reports whether op x uses a critical resource (Section 4.3).
func (st *State) Critical(x int) bool { return x < st.n && st.critical[x] }

// UsesDivider reports whether op x runs on the divider.
func (st *State) UsesDivider(x int) bool { return x < st.n && st.divider[x] }

// Contention reports whether the loop has any resource contention.
func (st *State) Contention() bool { return st.contention }

// MinLT returns the schedule-independent minimum lifetime of value v at
// this II (Section 5.1).
func (st *State) MinLT(v ir.ValueID) int { return st.minLT[v] }

// Preds and Succs return the immediate dependence neighbours of op x as
// int32 indices into the loop's op array.
func (st *State) Preds(x int) []int32 { return st.predAdj[st.predOff[x]:st.predOff[x+1]] }
func (st *State) Succs(x int) []int32 { return st.succAdj[st.succOff[x]:st.succOff[x+1]] }

// PolicyScratch returns an attempt-scoped int buffer of length n for
// policy use (e.g. static priorities). Contents are undefined; the
// buffer is reused across attempts, so policies must fully overwrite it.
func (st *State) PolicyScratch(n int) []int {
	st.policyBuf = growInts(st.policyBuf, n)
	return st.policyBuf
}

// newState builds the attempt state in a fresh unpooled arena. It is
// the slow, allocation-per-attempt path kept for direct unit tests; the
// engine goes through Arena.newState so scratch survives II retries.
func newState(l *ir.Loop, iiVal int, md *mindist.Table) *State {
	return new(Arena).newState(l, iiVal, md)
}

// stopAnchor returns Lstart(Stop) for the given Estart(Stop): the
// critical path itself when the loop has no resource contention (such a
// loop can always meet its critical path), else rounded up to a multiple
// of II — the "provision of extra slack" that lessens backtracking
// (Section 4.2).
func stopAnchor(estartStop, ii int, contention bool) int {
	if !contention {
		return estartStop
	}
	return (estartStop + ii - 1) / ii * ii
}

// dist returns MinDist between indices (ops or Stop).
func (st *State) dist(x, y int) int {
	xi, yi := x, y
	if x == st.n {
		xi = st.MD.Stop()
	}
	if y == st.n {
		yi = st.MD.Stop()
	}
	return st.MD.Dist(xi, yi)
}

// recomputeBounds rebuilds Estart/Lstart for every unplaced index from
// Start, the Lstart(Stop) anchor, and all placed indices — the O(p·u)
// recomputation of Section 4.4 — then maintains the Stop anchor, which
// may trigger a Stop ejection and another pass (Section 4.2).
func (st *State) recomputeBounds() {
	for {
		for x := 0; x <= st.n; x++ {
			if st.Placed(x) {
				st.estart[x] = st.time[x]
				st.lstart[x] = st.time[x]
				st.esFrom[x] = -1
				st.lsFrom[x] = -1
				continue
			}
			st.recomputeIndex(x)
		}
		if !st.maintainStop() {
			return
		}
	}
}

// recomputeIndex rebuilds one unplaced index's Estart and Lstart — and
// their witnesses — in a single pass over the placed ops.
func (st *State) recomputeIndex(x int) {
	es := 0
	if d := st.MD.Dist(st.MD.Start(), st.mdIndex(x)); d != mindist.NoPath {
		es = d
	}
	ls := st.lstartStop
	if d := st.dist(x, st.n); d != mindist.NoPath {
		ls = st.lstartStop - d
	}
	esFrom, lsFrom := -1, -1
	for y := 0; y <= st.n; y++ {
		if !st.Placed(y) || y == x {
			continue
		}
		ty := st.time[y]
		if d := st.dist(y, x); d != mindist.NoPath && ty+d > es {
			es = ty + d
			esFrom = y
		}
		if d := st.dist(x, y); d != mindist.NoPath && ty-d < ls {
			ls = ty - d
			lsFrom = y
		}
	}
	st.estart[x] = es
	st.esFrom[x] = esFrom
	st.lstart[x] = ls
	st.lsFrom[x] = lsFrom
}

// recomputeEstart rebuilds one unplaced index's Estart — and its witness
// — from Start and every placed index.
func (st *State) recomputeEstart(x int) {
	es := 0
	if d := st.MD.Dist(st.MD.Start(), st.mdIndex(x)); d != mindist.NoPath {
		es = d
	}
	from := -1
	for y := 0; y <= st.n; y++ {
		if !st.Placed(y) || y == x {
			continue
		}
		if d := st.dist(y, x); d != mindist.NoPath && st.time[y]+d > es {
			es = st.time[y] + d
			from = y
		}
	}
	st.estart[x] = es
	st.esFrom[x] = from
}

// recomputeLstart rebuilds one unplaced index's Lstart — and its witness
// — from the Stop anchor and every placed index.
func (st *State) recomputeLstart(x int) {
	ls := st.lstartStop
	if d := st.dist(x, st.n); d != mindist.NoPath {
		ls = st.lstartStop - d
	}
	from := -1
	for y := 0; y <= st.n; y++ {
		if !st.Placed(y) || y == x {
			continue
		}
		if d := st.dist(x, y); d != mindist.NoPath && st.time[y]-d < ls {
			ls = st.time[y] - d
			from = y
		}
	}
	st.lstart[x] = ls
	st.lsFrom[x] = from
}

// refreshBounds updates Estart/Lstart after placing x. A placement can
// only tighten bounds, and because MinDist is transitively closed a
// single O(u) sweep applying x's delta to every unplaced index
// reproduces the full recomputation exactly — Section 4.4's incremental
// maintenance. Only a Stop-anchor move (which loosens the Lstart base)
// still falls back to the full O(p·u) recomputeBounds; ejections are
// repaired eagerly by repairAfterEject.
func (st *State) refreshBounds(x int) {
	if st.noIncremental {
		st.recomputeBounds()
		return
	}
	t := st.time[x]
	st.estart[x] = t
	st.lstart[x] = t
	st.esFrom[x] = -1
	st.lsFrom[x] = -1
	for y := 0; y <= st.n; y++ {
		if y == x || st.Placed(y) {
			continue
		}
		if d := st.dist(x, y); d != mindist.NoPath && t+d > st.estart[y] {
			st.estart[y] = t + d
			st.esFrom[y] = x
		}
		if d := st.dist(y, x); d != mindist.NoPath && t-d < st.lstart[y] {
			st.lstart[y] = t - d
			st.lsFrom[y] = x
		}
	}
	if st.maintainStop() {
		st.recomputeBounds()
	}
}

// repairAfterEject restores the bounds invariant after y leaves the
// schedule: y's own bounds are rebuilt, and any unplaced index whose
// Estart or Lstart was witnessed by y is rebuilt in O(p). Bounds
// witnessed elsewhere (or by the schedule-independent base) still hold —
// an ejection can only loosen constraints, and only through the ejected
// op — so the common case costs a single O(u) witness scan. The Stop
// anchor never moves here: ejections only lower Estart(Stop), and the
// anchor resets only when pushed upward (Section 4.2).
func (st *State) repairAfterEject(y int) {
	st.recomputeIndex(y)
	for x := 0; x <= st.n; x++ {
		if x == y || st.Placed(x) {
			continue
		}
		switch {
		case st.esFrom[x] == y && st.lsFrom[x] == y:
			st.recomputeIndex(x)
		case st.esFrom[x] == y:
			st.recomputeEstart(x)
		case st.lsFrom[x] == y:
			st.recomputeLstart(x)
		}
	}
}

func (st *State) mdIndex(x int) int {
	if x == st.n {
		return st.MD.Stop()
	}
	return x
}

// maintainStop implements the Lstart(Stop) reset rule (Section 4.2):
// once set, the anchor moves only when Estart(Stop) is pushed beyond it
// or beyond Stop's current placement. Reports whether bounds must be
// recomputed.
func (st *State) maintainStop() bool {
	stop := st.n
	es := st.estart[stop]
	if st.Placed(stop) {
		es = 0
		if d := st.MD.Dist(st.MD.Start(), st.MD.Stop()); d != mindist.NoPath {
			es = d
		}
		for y := 0; y < st.n; y++ {
			if !st.Placed(y) {
				continue
			}
			if d := st.dist(y, stop); d != mindist.NoPath && st.time[y]+d > es {
				es = st.time[y] + d
			}
		}
		if es > st.time[stop] {
			st.eject(stop)
			st.lstartStop = stopAnchor(es, st.II, st.contention)
			return true
		}
		return false
	}
	if es > st.lstartStop {
		st.lstartStop = stopAnchor(es, st.II, st.contention)
		return true
	}
	return false
}

// place commits index x at the given cycle.
func (st *State) place(x, cycle int) {
	if x < st.n {
		st.mrt.Place(st.L.Ops[x], cycle)
	}
	st.time[x] = cycle
	st.lastPlace[x] = cycle
	st.unplacedCount--
}

// eject removes index x from the schedule and charges the budget.
// Removing a placement can loosen other bounds, but only bounds that x
// itself witnessed, so a targeted repair keeps the invariant without a
// full recomputation.
func (st *State) eject(x int) {
	if st.obs != nil {
		e := st.evt
		e.Kind = EvEject
		e.Op = x
		e.Cycle = st.time[x]
		e.Ejections = st.ejections + 1
		st.obs.Event(e)
	}
	if x < st.n {
		st.mrt.Eject(st.L.Ops[x])
	}
	st.time[x] = ir.Unplaced
	st.unplacedCount++
	st.ejections++
	// Under NoFastPaths every refreshBounds call recomputes from
	// scratch anyway, and no bound is read between an ejection and the
	// next refresh, so the direct path defers to it.
	if !st.noIncremental {
		st.repairAfterEject(x)
	}
}

// allPlaced reports whether every op and Stop have been placed.
func (st *State) allPlaced() bool { return st.unplacedCount == 0 }

// free reports whether x can sit at cycle without resource conflicts.
// Stop needs no resources.
func (st *State) free(x, cycle int) bool {
	if x == st.n {
		return true
	}
	return st.mrt.Free(st.L.Ops[x], cycle)
}

// resourceVictims returns the placed ops occupying x's slots at cycle.
func (st *State) resourceVictims(x, cycle int) []ir.OpID {
	if x == st.n {
		return nil
	}
	return st.mrt.Conflicts(st.L.Ops[x], cycle)
}

// depVictims returns the placed indices whose MinDist constraints against
// x sitting at cycle are violated. MinDist reflects the transitive
// closure of the successor relation, so this ejects beyond immediate
// successors, which the paper found reduces overall backtracking
// (Section 4.4).
// The returned slice aliases st.depBuf and is valid until the next call;
// forceAt copies it into its victim list immediately.
func (st *State) depVictims(x, cycle int) []int {
	out := st.depBuf[:0]
	for y := 0; y <= st.n; y++ {
		if y == x || !st.Placed(y) {
			continue
		}
		ty := st.time[y]
		if d := st.dist(x, y); d != mindist.NoPath && cycle+d > ty {
			out = append(out, y)
			continue
		}
		if d := st.dist(y, x); d != mindist.NoPath && ty+d > cycle {
			out = append(out, y)
		}
	}
	st.depBuf = out
	return out
}
