package sched

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/schedcheck"
)

// divCircuitLoop saturates the divider 100% (three 17-cycle divides at
// ResMII 51) with a recurrence circuit through two of them, so the three
// reservations must tile the divider exactly. A static-priority,
// always-early scheduler creeps its forced placements in lockstep — the
// relative configuration never changes — and gives up at every II, which
// is the failure mode behind the 14 loops Cydrome's scheduler could not
// pipeline (Table 4, footnote 8). The dynamic slack priority detects the
// fixed recurrence and succeeds at MII.
func divCircuitLoop() *ir.Loop {
	m := machine.Cydra()
	l := ir.NewLoop("divcircuit", m)
	v0 := l.NewValue("v0", ir.RR, ir.Float)
	v1 := l.NewValue("v1", ir.RR, ir.Float)
	v2 := l.NewValue("v2", ir.RR, ir.Float)
	v3 := l.NewValue("v3", ir.RR, ir.Float)
	l.NewOp(machine.IAdd, []ir.Operand{{Val: v3.ID, Omega: 1}, {Val: v3.ID, Omega: 1}}, v0.ID)
	l.NewOp(machine.FDiv, []ir.Operand{{Val: v0.ID}, {Val: v3.ID, Omega: 1}}, v1.ID)
	l.NewOp(machine.FDiv, []ir.Operand{{Val: v0.ID}, {Val: v0.ID}}, v2.ID)
	l.NewOp(machine.FDiv, []ir.Operand{{Val: v2.ID}, {Val: v3.ID, Omega: 1}}, v3.ID)
	l.MustFinalize()
	return l
}

func TestSlackSucceedsWhereCydromeFails(t *testing.T) {
	l := divCircuitLoop()

	rs, err := Slack(Config{}).Schedule(l)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.OK() {
		t.Fatalf("slack gave up on the divider circuit (stats %+v)", rs.Stats)
	}
	schedcheck.MustCheck(l, rs.Schedule)
	if rs.Schedule.II != rs.Bounds.MII {
		t.Errorf("slack II = %d, want MII %d", rs.Schedule.II, rs.Bounds.MII)
	}

	rc, err := Cydrome(Config{}).Schedule(l)
	if err != nil {
		t.Fatal(err)
	}
	if rc.OK() {
		// Not a failure of this repository — but it would no longer
		// reproduce the paper's qualitative contrast, so flag it.
		t.Logf("note: cydrome now schedules the divider circuit at II %d", rc.Schedule.II)
		schedcheck.MustCheck(l, rc.Schedule)
	} else {
		if rc.FailedII == 0 || rc.Stats.Restarts == 0 {
			t.Errorf("cydrome failure should report the last II attempted: %+v", rc.Stats)
		}
	}

	// The engine must terminate promptly either way.
	if rc.Stats.CentralIters > 1_000_000 {
		t.Errorf("cydrome spun too long: %+v", rc.Stats)
	}
}
