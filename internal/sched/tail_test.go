package sched

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/fixture"
	"repro/internal/machine"
	"repro/internal/obs"
)

// Golden reconstruction: the TextObserver rendering of a run must be
// byte-identical whether it watched the run live or replayed the run's
// flight-recorder tail. This is the property that makes the flight
// recorder a debugging tool rather than a summary — what it replays is
// what happened.
func TestTextTraceReconstructedFromTailByteIdentical(t *testing.T) {
	m := machine.Cydra()
	// tinyEject makes divide backtrack, covering "forced" lines; the
	// other fixtures cover the plain "chose" lines.
	for _, cfg := range []Config{{}, {EjectBudgetPerOp: 1, MinEjectBudget: 1}} {
		for _, l := range fixture.All(m) {
			var live bytes.Buffer
			tail := NewTailRecorder(1 << 16) // lossless for these runs
			c := cfg
			c.Observer = multiObserver{TextObserver(&live), tail}
			if _, err := Slack(c).Schedule(l); err != nil {
				t.Fatal(err)
			}
			if tail.Dropped() != 0 {
				t.Fatalf("%s: tail lossy (%d dropped); the golden test needs the whole stream", l.Name, tail.Dropped())
			}

			// Round-trip through the flight-recorder representation.
			tr := obs.NewTrace("req", l.Name)
			tail.AttachTail(tr)
			events := EventsFromTail(tr.Tail)
			var replayed bytes.Buffer
			Replay(events, TextObserver(&replayed))

			if live.Len() == 0 {
				t.Fatalf("%s: live trace produced nothing", l.Name)
			}
			if !bytes.Equal(live.Bytes(), replayed.Bytes()) {
				t.Fatalf("%s: replayed trace differs from live trace\nlive:\n%s\nreplayed:\n%s",
					l.Name, live.String(), replayed.String())
			}
		}
	}
}

// The ring keeps exactly the last N events, oldest-first, and accounts
// for what fell off the front.
func TestTailRecorderRing(t *testing.T) {
	full := &recorder{}
	ring := NewTailRecorder(32)
	l := fixture.Divide(machine.Cydra())
	cfg := tinyEject
	cfg.Observer = multiObserver{full, ring}
	if _, err := Slack(cfg).Schedule(l); err != nil {
		t.Fatal(err)
	}
	if len(full.events) <= 32 {
		t.Fatalf("run emitted only %d events; the ring test needs an overflow", len(full.events))
	}
	tail := ring.Tail()
	if len(tail) != 32 {
		t.Fatalf("tail holds %d events, want 32", len(tail))
	}
	if ring.Total() != len(full.events) {
		t.Fatalf("Total = %d, want %d", ring.Total(), len(full.events))
	}
	if ring.Dropped() != len(full.events)-32 {
		t.Fatalf("Dropped = %d, want %d", ring.Dropped(), len(full.events)-32)
	}
	if !reflect.DeepEqual(tail, full.events[len(full.events)-32:]) {
		t.Fatal("tail is not the last 32 events of the stream")
	}
}

// AttachTail on a nil trace is a no-op; EventsFromTail skips foreign
// values (a dump written by a different build, say).
func TestTailAttachEdgeCases(t *testing.T) {
	ring := NewTailRecorder(4)
	ring.Event(Event{Kind: EvPlace, Op: 1})
	ring.AttachTail(nil) // must not panic

	tr := obs.NewTrace("r", "l")
	ring.AttachTail(tr)
	if len(tr.Tail) != 1 || tr.TailDropped != 0 {
		t.Fatalf("tail = %d events dropped %d, want 1 and 0", len(tr.Tail), tr.TailDropped)
	}
	tr.Tail = append(tr.Tail, "not-an-event", 42)
	events := EventsFromTail(tr.Tail)
	if len(events) != 1 || events[0].Op != 1 {
		t.Fatalf("EventsFromTail = %+v, want the one real event", events)
	}
}
