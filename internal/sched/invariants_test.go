package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/mindist"
)

// instrumentedPolicy wraps the slack policy and checks engine invariants
// at every central-loop decision:
//
//   - placed ops sit inside their (frozen) Estart/Lstart bounds;
//   - for every unplaced op, Estart dominates all placed predecessors'
//     times plus MinDist, and Lstart respects all placed successors;
//   - the chosen op is indeed an unplaced one.
type instrumentedPolicy struct {
	SlackPolicy
	t     *testing.T
	fails int
}

func (p *instrumentedPolicy) ChooseOp(st *State) int {
	x := p.SlackPolicy.ChooseOp(st)
	if st.Placed(x) {
		p.t.Errorf("policy chose placed index %d", x)
	}
	for y := 0; y <= st.NumOps(); y++ {
		if st.Placed(y) {
			continue
		}
		es, ls := st.Estart(y), st.Lstart(y)
		for z := 0; z <= st.NumOps(); z++ {
			if !st.Placed(z) || z == y {
				continue
			}
			tz := st.Time(z)
			if d := st.distPublic(z, y); d != mindist.NoPath && tz+d > es {
				p.fails++
				p.t.Errorf("Estart(%d)=%d below placed %d@%d + dist %d", y, es, z, tz, d)
			}
			if d := st.distPublic(y, z); d != mindist.NoPath && tz-d < ls {
				p.fails++
				p.t.Errorf("Lstart(%d)=%d above placed %d@%d − dist %d", y, ls, z, tz, d)
			}
		}
	}
	return x
}

// distPublic exposes the internal MinDist lookup for the invariant test.
func (st *State) distPublic(x, y int) int { return st.dist(x, y) }

// TestEngineInvariants runs the instrumented policy over random loops:
// the bound-maintenance code must keep Estart/Lstart exact after every
// placement and ejection.
func TestEngineInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	codes := []machine.Opcode{machine.FAdd, machine.FMul, machine.Load, machine.FDiv}
	for trial := 0; trial < 25; trial++ {
		m := machine.Cydra()
		l := ir.NewLoop(fmt.Sprintf("inv%d", trial), m)
		n := 3 + rng.Intn(8)
		vals := make([]*ir.Value, n)
		for i := range vals {
			vals[i] = l.NewValue(fmt.Sprintf("v%d", i), ir.RR, ir.Float)
		}
		for i := 0; i < n; i++ {
			var args []ir.Operand
			if i > 0 {
				args = append(args, ir.Operand{Val: vals[rng.Intn(i)].ID})
			} else {
				args = append(args, ir.Operand{Val: vals[n-1].ID, Omega: 1})
			}
			if rng.Intn(2) == 0 {
				j := rng.Intn(n)
				w := 0
				if j >= i {
					w = 1 + rng.Intn(2)
				}
				args = append(args, ir.Operand{Val: vals[j].ID, Omega: w})
			} else {
				args = append(args, args[0])
			}
			code := codes[rng.Intn(len(codes))]
			if code == machine.Load {
				args = args[:1]
			}
			l.NewOp(code, args, vals[i].ID)
		}
		l.MustFinalize()

		pol := &instrumentedPolicy{t: t}
		res, err := New(pol, Config{}).Schedule(l)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK() {
			t.Fatalf("trial %d: gave up", trial)
		}
		if pol.fails > 0 {
			t.Fatalf("trial %d: %d invariant violations", trial, pol.fails)
		}
	}
}
