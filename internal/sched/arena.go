// Arena: pooled per-compile scratch. One modulo-scheduling run builds a
// MinDist table (plus the parametric frontier store on retries), an MRT,
// a dozen Estart/Lstart/witness tables, and lifetime vectors — all
// proportional to the loop, all dead the moment the compile returns.
// Allocating them per compile caps service throughput, so an Arena owns
// one reusable copy of everything and rides a sync.Pool between
// compiles: slices ratchet up to the largest loop served and are
// re-initialized (never re-allocated) per attempt.
//
// Ownership is single-threaded: an Arena belongs to exactly one compile
// from Acquire to Release. Release clears every reference to request
// data (the loop, observers, closures capturing contexts) so a pooled
// Arena retains only pointer-free backing stores, then returns itself to
// the pool. All exit paths — success, budget exhaustion, degradation,
// panic isolation — release through the same defer.
package sched

import (
	"sync"
	"sync/atomic"

	"repro/internal/ir"
	"repro/internal/lifetime"
	"repro/internal/machine"
	"repro/internal/mii"
	"repro/internal/mindist"
	"repro/internal/mrt"
)

// Arena holds the pooled scratch state of one compilation. The zero
// value is ready to use (and never pooled); AcquireArena hands out
// pooled instances that must be Released.
type Arena struct {
	pooled bool // return to the pool on Release
	held   bool // double-release guard

	st  State           // the one attempt state, re-initialized per II attempt
	md  mindist.Scratch // MinDist cache + parametric frontier store
	mrt mrt.Scratch     // modulo resource table rows + op span arrays
	lt  lifetime.Scratch

	// Per-compile loop preparation (see prepareLoop).
	preparedFor *ir.Loop
	pairSeen    []bool  // n×n dependence-pair dedup, all-false between compiles
	cursor      []int32 // CSR fill cursors
	fuBusy      []int32 // busy cycles per (kind, instance), for criticality
	maxFU       int

	// List-scheduler scratch.
	order, times []int
}

var arenaPool = sync.Pool{New: func() any { return new(Arena) }}

var (
	arenaInUse    atomic.Int64
	arenaRecycled atomic.Int64
)

// ArenaStats reports pool health: the number of arenas currently
// acquired and the cumulative count of arenas returned to the pool.
// The obs layer exports these as lsmsd_arena_inuse and
// lsmsd_arena_recycled_total.
func ArenaStats() (inUse, recycledTotal int64) {
	return arenaInUse.Load(), arenaRecycled.Load()
}

// AcquireArena returns an arena from the process-wide pool. The caller
// owns it until Release; arenas must not be shared across goroutines.
func AcquireArena() *Arena {
	a := arenaPool.Get().(*Arena)
	a.pooled = true
	a.held = true
	arenaInUse.Add(1)
	return a
}

// NewArena returns a fresh arena that Release never returns to the pool
// — the -nopool escape hatch: the same code path as pooled compiles, but
// every compile starts from virgin memory.
func NewArena() *Arena {
	a := new(Arena)
	a.held = true
	arenaInUse.Add(1)
	return a
}

// acquireArena picks the pool unless nopool.
func acquireArena(nopool bool) *Arena {
	if nopool {
		return NewArena()
	}
	return AcquireArena()
}

// Release ends the arena's compile: it drops every reference to
// per-request data — the loop, the MinDist cache's loop/poll/trace, the
// MRT's loop, the attempt state's observer and event strings — and, for
// pooled arenas, returns the backing stores to the pool. Double release
// is a no-op so a deferred Release composes with early manual ones.
func (a *Arena) Release() {
	if !a.held {
		return
	}
	a.held = false
	arenaInUse.Add(-1)

	a.preparedFor = nil
	a.md.Reset()
	a.mrt.Reset()
	st := &a.st
	st.L = nil
	st.MD = nil
	st.mrt = nil
	st.obs = nil
	st.evt = Event{}

	if a.pooled {
		arenaRecycled.Add(1)
		arenaPool.Put(a)
	}
}

// Lifetime returns the arena's pooled pressure-measurement scratch.
func (a *Arena) Lifetime() *lifetime.Scratch { return &a.lt }

// cacheFor returns the arena's MinDist cache rebound to l. Tables it
// hands out alias arena storage; publish them only via Table.Clone.
func (a *Arena) cacheFor(l *ir.Loop) *mindist.Cache { return a.md.CacheFor(l) }

// prepareLoop builds the per-compile, II-independent view of the loop:
// the compact CSR dependence adjacency (int32, first-occurrence order,
// deduplicated), the per-op divider marks and brtop index, the resource
// contention flag, and the per-(kind, instance) busy totals that
// criticality tests consult. Idempotent per loop, so the engine and a
// subsequent degrade fallback share one preparation.
func (a *Arena) prepareLoop(l *ir.Loop) {
	if a.preparedFor == l {
		return
	}
	a.preparedFor = l
	st := &a.st
	n := len(l.Ops)
	st.n = n

	st.divider = growBools(st.divider, n)
	st.brtop = -1
	for i, op := range l.Ops {
		st.divider[i] = l.Mach.NotPipelined(l.Mach.Info(op.Opcode).Kind)
		if op.Opcode == machine.BrTop {
			st.brtop = i
		}
	}
	st.contention = mii.HasResourceContention(l)

	// Busy cycles per functional-unit instance (criticality denominator),
	// sized by the machine's own class count.
	nk := l.Mach.NumKinds()
	maxFU := 0
	for k := 0; k < nk; k++ {
		if c := l.Mach.Count(machine.FUKind(k)); c > maxFU {
			maxFU = c
		}
	}
	a.maxFU = maxFU
	a.fuBusy = growI32(a.fuBusy, nk*maxFU)
	for i := range a.fuBusy {
		a.fuBusy[i] = 0
	}
	for _, op := range l.Ops {
		info := l.Mach.Info(op.Opcode)
		a.fuBusy[int(info.Kind)*maxFU+op.FU] += int32(info.Busy)
	}

	a.buildCSR(l, n)
}

// buildCSR packs the deduplicated immediate dependence neighbours into
// compressed-sparse-row int32 arrays, preserving the first-occurrence
// order of l.Deps per node (the order the old [][]int representation
// produced, which policy tie-breaks observe). The pairSeen matrix
// self-clears: pass one marks each pair's first occurrence, pass two
// unmarks it while filling, so the matrix is all-false again afterward.
func (a *Arena) buildCSR(l *ir.Loop, n int) {
	st := &a.st
	if cap(a.pairSeen) >= n*n {
		a.pairSeen = a.pairSeen[:n*n]
	} else {
		a.pairSeen = make([]bool, n*n)
	}
	st.predOff = growI32(st.predOff, n+1)
	st.succOff = growI32(st.succOff, n+1)
	for i := range st.predOff {
		st.predOff[i] = 0
		st.succOff[i] = 0
	}
	edges := 0
	for _, d := range l.Deps {
		if d.From == d.To {
			continue
		}
		idx := int(d.From)*n + int(d.To)
		if a.pairSeen[idx] {
			continue
		}
		a.pairSeen[idx] = true
		st.succOff[int(d.From)+1]++
		st.predOff[int(d.To)+1]++
		edges++
	}
	for i := 0; i < n; i++ {
		st.predOff[i+1] += st.predOff[i]
		st.succOff[i+1] += st.succOff[i]
	}
	st.predAdj = growI32(st.predAdj, edges)
	st.succAdj = growI32(st.succAdj, edges)
	a.cursor = growI32(a.cursor, 2*n)
	pc, sc := a.cursor[:n], a.cursor[n:2*n]
	copy(pc, st.predOff[:n])
	copy(sc, st.succOff[:n])
	for _, d := range l.Deps {
		if d.From == d.To {
			continue
		}
		idx := int(d.From)*n + int(d.To)
		if !a.pairSeen[idx] {
			continue
		}
		a.pairSeen[idx] = false
		st.succAdj[sc[d.From]] = int32(d.To)
		sc[d.From]++
		st.predAdj[pc[d.To]] = int32(d.From)
		pc[d.To]++
	}
}

// criticalInto recomputes the per-op criticality marks for one II:
// an op is critical when its functional-unit instance is busy at least
// 0.90·II cycles per iteration — 10·busy ≥ 9·II without floating point,
// the exact test mii.CriticalOps applies (the differential suite holds
// the two implementations together).
func (a *Arena) criticalInto(l *ir.Loop, ii int) {
	st := &a.st
	st.critical = growBools(st.critical, st.n)
	if !st.contention {
		for i := range st.critical {
			st.critical[i] = false
		}
		return
	}
	for i, op := range l.Ops {
		info := l.Mach.Info(op.Opcode)
		st.critical[i] = 10*a.fuBusy[int(info.Kind)*a.maxFU+op.FU] >= int32(9*ii)
	}
}

// newState re-initializes the arena's attempt state for one II attempt:
// the paper's initial bounds from MinDist, the Lstart(Stop) anchor with
// its extra slack (Section 4.2), per-attempt criticality (Section 4.3)
// and MinLT values (Section 5.1). Nothing allocates once the arena has
// served a loop at least this large.
func (a *Arena) newState(l *ir.Loop, iiVal int, md *mindist.Table) *State {
	a.prepareLoop(l)
	st := &a.st
	st.L, st.II, st.MD = l, iiVal, md
	n := st.n
	st.mrt = mrt.NewIn(l, iiVal, &a.mrt)

	st.time = growInts(st.time, n+1)
	st.estart = growInts(st.estart, n+1)
	st.lstart = growInts(st.lstart, n+1)
	st.lastPlace = growInts(st.lastPlace, n+1)
	st.esFrom = growInts(st.esFrom, n+1)
	st.lsFrom = growInts(st.lsFrom, n+1)
	st.scratch = growBools(st.scratch, n+1)
	for i := 0; i <= n; i++ {
		st.time[i] = ir.Unplaced
		st.lastPlace[i] = ir.Unplaced
		st.scratch[i] = false
	}
	st.victimBuf = st.victimBuf[:0]
	st.unplacedCount = n + 1
	st.ejections = 0
	st.noIncremental = false
	st.obs = nil
	st.evt = Event{}

	a.criticalInto(l, iiVal)

	st.minLT = growInts(st.minLT, len(l.Values))
	for i := range st.minLT {
		st.minLT[i] = 0
	}
	for _, v := range l.Values {
		if v.File == ir.RR && v.IsVariant() {
			st.minLT[v.ID] = mindist.MinLT(l, md, v.ID)
		}
	}

	cp := md.CriticalPath()
	st.lstartStop = stopAnchor(cp, iiVal, st.contention)
	st.recomputeBounds()
	return st
}

// mrtScratch exposes the arena's MRT storage to the list scheduler.
func (a *Arena) mrtScratch() *mrt.Scratch { return &a.mrt }

// listScratch returns the list scheduler's order/times buffers, sized n.
func (a *Arena) listScratch(n int) (order, times []int) {
	a.order = growInts(a.order, n)
	a.times = growInts(a.times, n)
	return a.order, a.times
}

func growInts(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

func growI32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}

func growBools(s []bool, n int) []bool {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]bool, n)
}
