package sched

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/fixture"
	"repro/internal/ir"
	"repro/internal/machine"
)

// recorder captures the typed event stream of one run.
type recorder struct {
	events []Event
}

func (r *recorder) Event(e Event) { r.events = append(r.events, e) }

// observedSchedulers runs every policy through its context entry point
// with the given config.
func observedSchedulers(cfg Config) map[string]func(*ir.Loop) (*Result, error) {
	return map[string]func(*ir.Loop) (*Result, error){
		"slack":    func(l *ir.Loop) (*Result, error) { return Slack(cfg).Schedule(l) },
		"slack-1d": func(l *ir.Loop) (*Result, error) { return SlackUnidirectional(cfg).Schedule(l) },
		"cydrome":  func(l *ir.Loop) (*Result, error) { return Cydrome(cfg).Schedule(l) },
		"list":     func(l *ir.Loop) (*Result, error) { return ListSchedule(l, cfg) },
	}
}

// The event stream of a (loop, policy, Config) triple is part of the
// observer contract: two runs must produce identical streams.
func TestEventStreamDeterministic(t *testing.T) {
	m := machine.Cydra()
	for _, l := range fixture.All(m) {
		var streams [][]Event
		for rep := 0; rep < 2; rep++ {
			rec := &recorder{}
			res, err := Slack(Config{Observer: rec}).Schedule(l)
			if err != nil || !res.OK() {
				t.Fatalf("%s: %v", l.Name, err)
			}
			streams = append(streams, rec.events)
		}
		if !reflect.DeepEqual(streams[0], streams[1]) {
			t.Fatalf("%s: event stream differs between identical runs", l.Name)
		}
		if len(streams[0]) == 0 {
			t.Fatalf("%s: no events observed", l.Name)
		}
	}
}

// Every policy emits a well-formed stream: attempts bracketed by
// AttemptStart/AttemptEnd, the last attempt successful, loop and policy
// stamped on every event.
func TestEventStreamWellFormed(t *testing.T) {
	m := machine.Cydra()
	for _, name := range []string{"slack", "slack-1d", "cydrome", "list"} {
		for _, l := range fixture.All(m) {
			rec := &recorder{}
			res, err := observedSchedulers(Config{Observer: rec})[name](l)
			if err != nil || !res.OK() {
				t.Fatalf("%s/%s: %v", name, l.Name, err)
			}
			depth := 0
			var last Event
			for _, e := range rec.events {
				if e.Loop != l.Name {
					t.Fatalf("%s/%s: event stamped with loop %q", name, l.Name, e.Loop)
				}
				switch e.Kind {
				case EvAttemptStart:
					if depth != 0 {
						t.Fatalf("%s/%s: nested attempt", name, l.Name)
					}
					depth++
				case EvAttemptEnd:
					if depth != 1 {
						t.Fatalf("%s/%s: unbalanced attempt end", name, l.Name)
					}
					depth--
				case EvPlace, EvForce, EvEject, EvRestart:
					if depth != 1 && e.Kind != EvRestart {
						t.Fatalf("%s/%s: %s outside an attempt", name, l.Name, e.Kind)
					}
				}
				last = e
			}
			if depth != 0 {
				t.Fatalf("%s/%s: attempt left open", name, l.Name)
			}
			if last.Kind != EvAttemptEnd || !last.OK {
				t.Fatalf("%s/%s: stream does not end with a successful attempt (last %s)", name, l.Name, last.Kind)
			}
		}
	}
}

// TextObserver must reproduce the deprecated Config.Trace output
// byte-for-byte from the typed events.
func TestTextObserverMatchesLegacyTrace(t *testing.T) {
	m := machine.Cydra()
	// A tiny ejection budget makes divide backtrack hard, covering the
	// "forced" lines as well as the "chose" lines.
	for _, cfg := range []Config{{}, {EjectBudgetPerOp: 1, MinEjectBudget: 1}} {
		for _, l := range fixture.All(m) {
			var legacy bytes.Buffer
			c1 := cfg
			c1.Trace = func(format string, args ...any) {
				fmt.Fprintf(&legacy, format+"\n", args...)
			}
			if _, err := Slack(c1).Schedule(l); err != nil {
				t.Fatal(err)
			}
			var text bytes.Buffer
			c2 := cfg
			c2.Observer = TextObserver(&text)
			if _, err := Slack(c2).Schedule(l); err != nil {
				t.Fatal(err)
			}
			if legacy.Len() == 0 {
				t.Fatalf("%s: legacy trace produced nothing", l.Name)
			}
			if !bytes.Equal(legacy.Bytes(), text.Bytes()) {
				t.Fatalf("%s: TextObserver output differs from legacy trace\nlegacy:\n%s\ntext:\n%s",
					l.Name, legacy.String(), text.String())
			}
		}
	}
}

// Concurrent runs with per-run observers see the same stream a serial
// run does — the bench harness's determinism requirement.
func TestEventStreamIdenticalUnderConcurrency(t *testing.T) {
	m := machine.Cydra()
	loops := fixture.All(m)
	serial := make([][]Event, len(loops))
	for i, l := range loops {
		rec := &recorder{}
		if _, err := Slack(Config{Observer: rec}).Schedule(l); err != nil {
			t.Fatal(err)
		}
		serial[i] = rec.events
	}
	concurrent := make([][]Event, len(loops))
	var wg sync.WaitGroup
	for i, l := range loops {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := &recorder{}
			if _, err := Slack(Config{Observer: rec}).Schedule(l); err != nil {
				t.Error(err)
				return
			}
			concurrent[i] = rec.events
		}()
	}
	wg.Wait()
	for i := range loops {
		if !reflect.DeepEqual(serial[i], concurrent[i]) {
			t.Fatalf("%s: concurrent event stream differs from serial", loops[i].Name)
		}
	}
}

// Metrics observers fed per-loop and merged in loop order must agree
// with one observer watching a serial sweep.
func TestMetricsMergeMatchesSerial(t *testing.T) {
	m := machine.Cydra()
	loops := fixture.All(m)
	whole := &Metrics{}
	for _, l := range loops {
		if _, err := Slack(Config{Observer: whole}).Schedule(l); err != nil {
			t.Fatal(err)
		}
	}
	merged := &Metrics{}
	for _, l := range loops {
		per := &Metrics{}
		if _, err := Slack(Config{Observer: per}).Schedule(l); err != nil {
			t.Fatal(err)
		}
		merged.Merge(per)
	}
	if !reflect.DeepEqual(whole, merged) {
		t.Fatalf("merged metrics differ from serial aggregate:\nserial %+v\nmerged %+v", whole, merged)
	}
	if merged.Attempts == 0 || merged.Events[EvPlace] == 0 {
		t.Fatalf("metrics did not count anything: %+v", merged)
	}
}

// The outcome dimension survives Merge and always reconciles with the
// flat Attempts/AttemptsOK counters — the dimension is additive, never
// an alternative count. (Mid-attempt exhaustion and cancellation
// specifics are covered in outcome_test.go.)
func TestMetricsOutcomeDimension(t *testing.T) {
	m := machine.Cydra()
	merged := &Metrics{}
	for _, l := range fixture.All(m) {
		per := &Metrics{}
		cfg := tinyEject
		cfg.Observer = per
		if _, err := Slack(cfg).Schedule(l); err != nil {
			t.Fatal(err)
		}
		merged.Merge(per)
	}
	var total int64
	for _, n := range merged.AttemptOutcomes {
		total += n
	}
	if total != merged.Attempts {
		t.Fatalf("outcome total %d != attempts %d", total, merged.Attempts)
	}
	if merged.AttemptOutcomes[AttemptOK] != merged.AttemptsOK {
		t.Fatalf("ok outcomes %d != AttemptsOK %d",
			merged.AttemptOutcomes[AttemptOK], merged.AttemptsOK)
	}
	counts := merged.OutcomeCounts()
	if counts[AttemptCentralIters.String()] != 0 || counts[AttemptCanceled.String()] != 0 {
		t.Fatalf("unbudgeted, uncancelled sweep filed budget/cancel outcomes: %v", counts)
	}
	if counts[AttemptGiveUp.String()] == 0 {
		t.Fatalf("tinyEject sweep recorded no give-ups: %v", counts)
	}
}
