package codegen

import (
	"strings"
	"testing"

	"repro/internal/fixture"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/sched"
)

func compile(t *testing.T, l *ir.Loop) *Kernel {
	t.Helper()
	res, err := sched.Slack(sched.Config{}).Schedule(l)
	if err != nil || !res.OK() {
		t.Fatalf("%s: scheduling failed", l.Name)
	}
	k, err := Generate(l, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// Structural invariants of the kernel-only schema: every op lands in the
// word of its schedule offset, with its schedule stage; specifier
// arithmetic matches the derivation dst = r+σ, src = r+ω+σ (mod N).
func TestKernelStructure(t *testing.T) {
	m := machine.Cydra()
	for _, l := range fixture.All(m) {
		res, err := sched.Slack(sched.Config{}).Schedule(l)
		if err != nil || !res.OK() {
			t.Fatalf("%s: scheduling failed", l.Name)
		}
		s := res.Schedule
		k, err := Generate(l, s)
		if err != nil {
			t.Fatal(err)
		}
		if len(k.Words) != s.II {
			t.Fatalf("%s: %d words, want II=%d", l.Name, len(k.Words), s.II)
		}
		count := 0
		for phi, word := range k.Words {
			for _, in := range word {
				count++
				if s.Offset(in.Op.ID) != phi {
					t.Errorf("%s: op%d in word %d, scheduled offset %d", l.Name, in.Op.ID, phi, s.Offset(in.Op.ID))
				}
				if s.Stage(in.Op.ID) != in.Stage {
					t.Errorf("%s: op%d stage mismatch", l.Name, in.Op.ID)
				}
				if in.Op.Result != ir.None && in.Dst == nil {
					t.Errorf("%s: op%d result lost", l.Name, in.Op.ID)
				}
				// Check specifier arithmetic against the allocation.
				if in.Dst != nil && in.Dst.File == ir.RR {
					want := mod(k.RR.Offset[in.Op.Result]+in.Stage, k.NRR)
					if in.Dst.Off != want {
						t.Errorf("%s: op%d dst spec %d, want %d", l.Name, in.Op.ID, in.Dst.Off, want)
					}
				}
				for j, sp := range in.Srcs {
					if sp.File != ir.RR {
						continue
					}
					a := in.Op.Args[j]
					want := mod(k.RR.Offset[a.Val]+a.Omega+in.Stage, k.NRR)
					if sp.Off != want {
						t.Errorf("%s: op%d src%d spec %d, want %d", l.Name, in.Op.ID, j, sp.Off, want)
					}
				}
			}
		}
		if count != len(l.Ops) {
			t.Errorf("%s: kernel holds %d ops, loop has %d", l.Name, count, len(l.Ops))
		}
	}
}

func TestIncompleteScheduleRejected(t *testing.T) {
	m := machine.Cydra()
	l := fixture.Sample(m)
	s := ir.NewSchedule(2, len(l.Ops))
	if _, err := Generate(l, s); err == nil {
		t.Error("incomplete schedule must be rejected")
	}
}

func TestPredicateSpecsResolved(t *testing.T) {
	m := machine.Cydra()
	k := compile(t, fixture.Conditional(m))
	preds := 0
	for _, word := range k.Words {
		for _, in := range word {
			if in.Pred != nil {
				preds++
				if in.Pred.File != ir.ICR {
					t.Errorf("guard of op%d resolved to %v, want ICR", in.Op.ID, in.Pred.File)
				}
			}
		}
	}
	if preds != 2 {
		t.Errorf("conditional fixture has 2 guarded ops, found %d", preds)
	}
	if k.NICR < 1 {
		t.Error("predicate value needs an ICR register")
	}
}

func TestStringRendering(t *testing.T) {
	m := machine.Cydra()
	k := compile(t, fixture.Sample(m))
	out := k.String()
	for _, want := range []string{"kernel sample", "II=2", "fadd", "RR["} {
		if !strings.Contains(out, want) {
			t.Errorf("kernel dump missing %q:\n%s", want, out)
		}
	}
}
