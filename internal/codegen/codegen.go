// Package codegen lowers a modulo schedule to kernel-only code for the
// rotating-register target (Sections 2.2–2.3; the "kernel-only" schema of
// Rau, Schlansker and Tirumalai, MICRO-25). The kernel has II instruction
// words; the operation scheduled at cycle t = σ·II + φ issues in word φ,
// guarded by the stage-σ iteration-control predicate, so no prologue or
// epilogue code is needed: stage predicates squash the ramp-up and
// ramp-down iterations.
//
// Register operands become rotating specifiers. With the iteration
// control pointer decrementing once per kernel pass, the instance of
// value v (allocation offset r_v) produced by iteration i lives at
// physical register (ICP₀ + r_v − i) mod N; the constant specifiers
//
//	destination: r_v + σ_def      source: r_v + ω + σ_use
//
// make every pass address the right instances (the concatenation of
// shifters in the paper's Figure 2).
package codegen

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/ir"
	"repro/internal/lifetime"
	"repro/internal/regalloc"
)

// Spec is one resolved register operand.
type Spec struct {
	File ir.RegFile
	// Off is the rotating specifier (RR/ICR files). Unused for GPR.
	Off int
	// Val is the original value, used for GPR lookup and for the
	// simulator's instance-tag checking.
	Val ir.ValueID
	// Omega is the read distance, kept so the simulator can compute the
	// expected instance.
	Omega int
}

// Inst is one kernel operation: the original op plus resolved operands
// and its stage.
type Inst struct {
	Op    *ir.Op
	Stage int
	Srcs  []Spec
	Dst   *Spec
	Pred  *Spec // if-conversion guard (sense in Op.PredNeg); nil if none
}

// Kernel is the generated loop body.
type Kernel struct {
	Loop   *ir.Loop
	II     int
	Stages int
	// NRR and NICR are the rotating file sizes consumed.
	NRR, NICR int
	// RR and ICR are the allocations behind the specifiers.
	RR, ICR regalloc.Allocation
	// Words[φ] lists the instructions issuing at kernel cycle φ.
	Words [][]*Inst
}

// Generate allocates rotating registers for the schedule and emits the
// kernel. The schedule must be complete and legal.
func Generate(l *ir.Loop, s *ir.Schedule) (*Kernel, error) {
	return GenerateContext(context.Background(), l, s)
}

// GenerateContext is Generate under a context: when the context carries
// an obs.Trace, the two rotating-register allocations (RR and ICR files)
// record "regalloc" spans.
func GenerateContext(ctx context.Context, l *ir.Loop, s *ir.Schedule) (*Kernel, error) {
	if !s.Complete() {
		return nil, fmt.Errorf("codegen: incomplete schedule for %s", l.Name)
	}
	rrRanges := lifetime.Ranges(l, s, ir.RR)
	icrRanges := lifetime.Ranges(l, s, ir.ICR)
	// Live-out values must survive until the epilogue reads them: extend
	// their allocation ranges to the iteration makespan so no later
	// instance of any value can reuse the final instance's register
	// before every in-flight write has landed. This is an allocation
	// cost only — the paper's MaxLive pressure metric (def to last
	// in-loop use) is reported unchanged by package lifetime.
	makespan := s.Makespan(l)
	extend := func(ranges []lifetime.Range) {
		for i := range ranges {
			if l.Value(ranges[i].Val).LiveOut && ranges[i].End < makespan {
				ranges[i].End = makespan
			}
		}
	}
	extend(rrRanges)
	extend(icrRanges)
	rr := regalloc.AllocateContext(ctx, rrRanges, s.II, regalloc.FirstFit, regalloc.StartTime)
	icr := regalloc.AllocateContext(ctx, icrRanges, s.II, regalloc.FirstFit, regalloc.StartTime)
	if err := regalloc.Verify(rrRanges, s.II, rr); err != nil {
		return nil, fmt.Errorf("codegen: RR allocation: %w", err)
	}
	if err := regalloc.Verify(icrRanges, s.II, icr); err != nil {
		return nil, fmt.Errorf("codegen: ICR allocation: %w", err)
	}

	k := &Kernel{
		Loop: l, II: s.II, Stages: s.Stages(),
		NRR: rr.N, NICR: icr.N,
		RR: rr, ICR: icr,
		Words: make([][]*Inst, s.II),
	}
	// File sizes must cover every specifier: off = r + ω + σ can reach
	// beyond N; the specifier arithmetic is modular, so N just needs to
	// be ≥ 1. Keep N at the allocation size (power-of-two rounding is a
	// hardware concern, not a correctness one).

	spec := func(o ir.Operand, stage int) (Spec, error) {
		v := l.Value(o.Val)
		if v.File == ir.GPR {
			return Spec{File: ir.GPR, Val: o.Val}, nil
		}
		alloc := &rr
		if v.File == ir.ICR {
			alloc = &icr
		}
		off, ok := alloc.Offset[o.Val]
		if !ok {
			return Spec{}, fmt.Errorf("codegen: value %s has no rotating allocation", v.Name)
		}
		n := alloc.N
		return Spec{
			File:  v.File,
			Off:   mod(off+o.Omega+stage, n),
			Val:   o.Val,
			Omega: o.Omega,
		}, nil
	}

	for _, op := range l.Ops {
		stage := s.Stage(op.ID)
		in := &Inst{Op: op, Stage: stage}
		for _, a := range op.Args {
			sp, err := spec(a, stage)
			if err != nil {
				return nil, err
			}
			in.Srcs = append(in.Srcs, sp)
		}
		if op.Pred != nil {
			sp, err := spec(*op.Pred, stage)
			if err != nil {
				return nil, err
			}
			in.Pred = &sp
		}
		if op.Result != ir.None {
			v := l.Value(op.Result)
			alloc := &rr
			if v.File == ir.ICR {
				alloc = &icr
			}
			off, ok := alloc.Offset[op.Result]
			if !ok {
				return nil, fmt.Errorf("codegen: result %s has no rotating allocation", v.Name)
			}
			sp := Spec{File: v.File, Off: mod(off+stage, alloc.N), Val: op.Result}
			in.Dst = &sp
		}
		phi := s.Offset(op.ID)
		k.Words[phi] = append(k.Words[phi], in)
	}
	return k, nil
}

func mod(a, m int) int {
	if m <= 0 {
		return 0
	}
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// String renders the kernel as annotated VLIW assembly.
func (k *Kernel) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel %s: II=%d stages=%d RR=%d ICR=%d\n",
		k.Loop.Name, k.II, k.Stages, k.NRR, k.NICR)
	for phi, word := range k.Words {
		fmt.Fprintf(&b, "  cycle %d:\n", phi)
		for _, in := range word {
			fmt.Fprintf(&b, "    [s%d] %s", in.Stage, k.Loop.FormatOp(in.Op))
			if in.Dst != nil {
				fmt.Fprintf(&b, "  dst=%s", specString(*in.Dst))
			}
			for i, s := range in.Srcs {
				fmt.Fprintf(&b, " src%d=%s", i, specString(s))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func specString(s Spec) string {
	if s.File == ir.GPR {
		return fmt.Sprintf("gpr(v%d)", s.Val)
	}
	return fmt.Sprintf("%v[icp+%d]", s.File, s.Off)
}
