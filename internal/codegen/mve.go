package codegen

import (
	"fmt"
	"strings"

	"repro/internal/ir"
	"repro/internal/lifetime"
)

// MVE implements the paper's alternative to rotating register files
// (Section 2.3): modulo variable expansion. Without hardware rotation, a
// value live longer than II cycles cannot target the same register in
// adjacent iterations, so the kernel is unrolled and the duplicate
// register specifiers renamed — "this modulo variable expansion
// technique can result in a large amount of code expansion", which the
// CodeExpansion experiment quantifies against the kernel-only schema.
//
// Each value v needs k_v = ⌈lifetime/II⌉ static registers; iteration i
// writes slot i mod k_v. The kernel is unrolled U = lcm(k_v) times so
// every unroll copy addresses fixed slots.

// MVEInst is one operation in one unroll copy, with static slot operands.
type MVEInst struct {
	Op    *ir.Op
	Stage int
	// Srcs[j] is the slot of value Op.Args[j] to read; SrcVals mirror
	// the value ids. Dst is the slot written (-1 if no result).
	Srcs []int
	Dst  int
	Pred int // predicate slot, -1 if unguarded
}

// MVEKernel is the unrolled, statically-renamed loop body.
type MVEKernel struct {
	Loop   *ir.Loop
	II     int
	Stages int
	Unroll int // U: the code expansion factor vs the kernel-only schema
	// Slots[v] is the number of static registers value v needs (k_v).
	Slots map[ir.ValueID]int
	// TotalRegs is Σ k_v over RR values: the static register cost.
	TotalRegs int
	// Words[u][φ] lists instructions at cycle φ of unroll copy u.
	Words [][][]*MVEInst
}

// MaxUnroll bounds the expansion; loops needing more (possible only with
// extreme lifetime mixes) are reported as errors rather than silently
// exploding the code.
const MaxUnroll = 256

// GenerateMVE lowers a schedule to modulo-variable-expanded code.
func GenerateMVE(l *ir.Loop, s *ir.Schedule) (*MVEKernel, error) {
	if !s.Complete() {
		return nil, fmt.Errorf("codegen: incomplete schedule for %s", l.Name)
	}
	slots := map[ir.ValueID]int{}
	total := 0
	for _, file := range []ir.RegFile{ir.RR, ir.ICR} {
		for _, r := range lifetime.Ranges(l, s, file) {
			k := (r.Len() + s.II - 1) / s.II
			if k < 1 {
				k = 1
			}
			slots[r.Val] = k
			if file == ir.RR {
				total += k
			}
		}
	}
	u := 1
	for _, k := range slots {
		u = lcm(u, k)
		if u > MaxUnroll {
			return nil, fmt.Errorf("codegen: MVE unroll factor exceeds %d for %s", MaxUnroll, l.Name)
		}
	}

	k := &MVEKernel{
		Loop: l, II: s.II, Stages: s.Stages(), Unroll: u,
		Slots: slots, TotalRegs: total,
		Words: make([][][]*MVEInst, u),
	}
	for copyU := 0; copyU < u; copyU++ {
		k.Words[copyU] = make([][]*MVEInst, s.II)
	}

	slot := func(v ir.ValueID, iter int) int {
		kv := slots[v]
		if kv == 0 {
			kv = 1
		}
		return mod(iter, kv)
	}

	for copyU := 0; copyU < u; copyU++ {
		for _, op := range l.Ops {
			stage := s.Stage(op.ID)
			// In kernel pass p ≡ copyU (mod U), this op executes
			// iteration i = p − stage ≡ copyU − stage (mod U).
			iter := copyU - stage
			in := &MVEInst{Op: op, Stage: stage, Dst: -1, Pred: -1}
			for _, a := range op.Args {
				v := l.Value(a.Val)
				if v.File == ir.GPR {
					in.Srcs = append(in.Srcs, -1) // static, no slot
					continue
				}
				in.Srcs = append(in.Srcs, slot(a.Val, iter-a.Omega))
			}
			if op.Pred != nil {
				in.Pred = slot(op.Pred.Val, iter-op.Pred.Omega)
			}
			if op.Result != ir.None {
				in.Dst = slot(op.Result, iter)
			}
			phi := s.Offset(op.ID)
			k.Words[copyU][phi] = append(k.Words[copyU][phi], in)
		}
	}
	return k, nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }

// String renders a summary plus the first unroll copy.
func (k *MVEKernel) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mve kernel %s: II=%d stages=%d unroll=%d staticRegs=%d (code %d words vs %d rotating)\n",
		k.Loop.Name, k.II, k.Stages, k.Unroll, k.TotalRegs, k.Unroll*k.II, k.II)
	for phi, word := range k.Words[0] {
		fmt.Fprintf(&b, "  copy0 cycle %d:\n", phi)
		for _, in := range word {
			fmt.Fprintf(&b, "    [s%d] %s dst=%d srcs=%v\n", in.Stage, k.Loop.FormatOp(in.Op), in.Dst, in.Srcs)
		}
	}
	return b.String()
}
