package bench

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
)

// panicOn is an Observer that panics while one specific loop is being
// scheduled — a fault injected into the middle of the compiler.
type panicOn struct{ loop string }

func (p panicOn) Event(e sched.Event) {
	if e.Loop == p.loop {
		panic("injected fault for " + p.loop)
	}
}

// A panic while compiling one loop must fail only that loop's record;
// the rest of the sweep completes normally, serial and parallel alike.
func TestPanicIsolatedToOneLoop(t *testing.T) {
	for _, workers := range []int{1, 8} {
		s := suite(t, 40)
		s.Parallel = workers
		infos, err := s.Infos()
		if err != nil {
			t.Fatal(err)
		}
		// Events are stamped with the IR loop's name, which can differ
		// from the workload entry's name.
		victim := infos[len(infos)/2].Name
		s.Configure(core.SchedSlack, sched.Config{Observer: panicOn{infos[len(infos)/2].Loop.Name}})
		rs, err := s.Runs(core.SchedSlack)
		if err != nil {
			t.Fatalf("sweep aborted: %v", err)
		}
		if len(rs) != len(infos) {
			t.Fatalf("sweep lost runs: %d of %d", len(rs), len(infos))
		}
		for _, r := range rs {
			if r.Info.Name == victim {
				var pe *LoopPanicError
				if !errors.As(r.Err, &pe) {
					t.Fatalf("victim %s: Err = %v, want *LoopPanicError", victim, r.Err)
				}
				if pe.Loop != victim || len(pe.Stack) == 0 {
					t.Fatalf("panic record incomplete: loop=%q stack=%d bytes", pe.Loop, len(pe.Stack))
				}
				if r.OK {
					t.Fatalf("victim %s still marked OK", victim)
				}
				continue
			}
			if r.Err != nil || !r.OK {
				t.Fatalf("%s (workers=%d): innocent loop affected: OK=%v err=%v", r.Info.Name, workers, r.OK, r.Err)
			}
		}
	}
}

// A ~0 deadline fails every loop with a budget error (never hanging the
// sweep); with Degrade the list scheduler rescues each one instead.
func TestBudgetedSweep(t *testing.T) {
	tight := sched.Config{Budget: sched.Budget{Deadline: time.Nanosecond}}

	s := suite(t, 40)
	for _, n := range core.Schedulers() {
		s.Configure(n, tight)
	}
	rs, err := s.RunsContext(context.Background(), core.SchedSlack)
	if err != nil {
		t.Fatalf("sweep aborted: %v", err)
	}
	for _, r := range rs {
		if !errors.Is(r.Err, sched.ErrBudgetExhausted) {
			t.Fatalf("%s: Err = %v, want ErrBudgetExhausted", r.Info.Name, r.Err)
		}
		if r.OK || r.Degraded {
			t.Fatalf("%s: exhausted run marked OK=%v Degraded=%v", r.Info.Name, r.OK, r.Degraded)
		}
	}

	d := suite(t, 40)
	d.Degrade = true
	for _, n := range core.Schedulers() {
		d.Configure(n, tight)
	}
	rs, err = d.RunsContext(context.Background(), core.SchedSlack)
	if err != nil {
		t.Fatalf("degraded sweep aborted: %v", err)
	}
	for _, r := range rs {
		if r.Err != nil {
			t.Fatalf("%s: degraded sweep still failed: %v", r.Info.Name, r.Err)
		}
		if !r.OK || !r.Degraded {
			t.Fatalf("%s: want a degraded OK run, got OK=%v Degraded=%v", r.Info.Name, r.OK, r.Degraded)
		}
	}
}

// A canceled context fails the sweep's loops with the context error
// rather than hanging or panicking.
func TestSweepCancellation(t *testing.T) {
	s := suite(t, 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rs, err := s.RunsContext(ctx, core.SchedSlack)
	if err != nil {
		t.Fatalf("sweep aborted: %v", err)
	}
	for _, r := range rs {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("%s: Err = %v, want context.Canceled", r.Info.Name, r.Err)
		}
	}
}

// The merged metrics report is identical for serial and wide-pool
// sweeps: per-loop observers are folded in loop order, so worker
// interleaving cannot show through.
func TestMetricsReportDeterministicAcrossPools(t *testing.T) {
	seq := suite(t, 60)
	seq.Parallel = 1
	par := suite(t, 60)
	par.Parallel = 8

	mr1, err := CollectMetrics(seq)
	if err != nil {
		t.Fatal(err)
	}
	mr2, err := CollectMetrics(par)
	if err != nil {
		t.Fatal(err)
	}
	mr1.Parallel, mr2.Parallel = 0, 0 // the pool size is the one legitimate difference
	if !reflect.DeepEqual(mr1, mr2) {
		t.Fatalf("metrics differ between pool sizes:\nserial   %+v\nparallel %+v", mr1, mr2)
	}
	if len(mr1.Policies) != len(core.Schedulers()) {
		t.Fatalf("got %d policies, want %d", len(mr1.Policies), len(core.Schedulers()))
	}
	for _, p := range mr1.Policies {
		if p.Counters.Attempts == 0 || p.Events[sched.EvPlace.String()] == 0 {
			t.Fatalf("%s: metrics counted nothing: %+v", p.Policy, p)
		}
	}
}

// The metrics observers must also agree with the legacy unobserved
// sweep on every visible outcome (II, OK) — observation cannot perturb
// scheduling.
func TestMetricsDoNotPerturbScheduling(t *testing.T) {
	plain := suite(t, 40)
	observed := suite(t, 40)
	observed.Metrics = true
	rp, err := plain.Runs(core.SchedSlack)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := observed.Runs(core.SchedSlack)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rp {
		if rp[i].OK != ro[i].OK || rp[i].II != ro[i].II || rp[i].MaxLive != ro[i].MaxLive {
			t.Fatalf("%s: observed run differs: %+v vs %+v", rp[i].Info.Name, rp[i], ro[i])
		}
		if ro[i].Metrics == nil {
			t.Fatalf("%s: no metrics attached", ro[i].Info.Name)
		}
	}
	if m := MergeMetrics(ro); m == nil || m.Attempts == 0 {
		t.Fatalf("merged metrics empty: %+v", MergeMetrics(ro))
	}
	if MergeMetrics(rp) != nil {
		t.Fatal("unobserved sweep should have no metrics to merge")
	}
}
