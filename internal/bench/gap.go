package bench

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/exact"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/stats"
)

// GapOptions configures the optimality-gap sweep: how large a corpus,
// which registered targets, and how much budget each exact search gets.
type GapOptions struct {
	Size     int
	Seed     int64
	Parallel int
	// Targets names the registered machines to sweep; empty means all.
	Targets []string
	// Deadline bounds one loop's exact search wall clock; default 2s.
	Deadline time.Duration
	// Nodes bounds one loop's search nodes
	// (sched.Budget.MaxCentralIters); default 1<<20.
	Nodes int64
}

// GapRow summarizes one target's slack-vs-exact comparison. Every
// corpus loop lands in exactly one of Solved, Exhausted, or Failed;
// Proven, SlackOptimal, IIWins, and MLWins partition further detail
// out of Solved.
type GapRow struct {
	Machine string
	Loops   int

	Solved    int // exact returned a schedule (proven or anytime)
	Proven    int // solved with optimality proven within budget
	Exhausted int // budget ran out before any schedule was found
	Failed    int // infeasible or internal failure

	SlackOptimal int // proven loops where slack already matched (II, MaxLive)
	IIWins       int // exact strictly lowered II
	MLWins       int // equal II, exact strictly lowered MaxLive

	SumSlackII int // ΣII of the slack seed over solved loops
	SumExactII int // ΣII of the exact result over the same loops

	// MLDelta is slack MaxLive − exact MaxLive over solved loops where
	// both achieved the same II (the lifetime-sensitivity headroom).
	MLDelta stats.Quantiles

	mlDeltas []int
}

// PctSlackOptimal is the share of proven loops where the slack
// heuristic was already exactly optimal — the paper's central quality
// claim, now measured against a proof instead of the MII proxy.
func (r *GapRow) PctSlackOptimal() float64 {
	if r.Proven == 0 {
		return 0
	}
	return 100 * float64(r.SlackOptimal) / float64(r.Proven)
}

// PctExhausted is the budget-timeout rate over the whole corpus.
func (r *GapRow) PctExhausted() float64 {
	if r.Loops == 0 {
		return 0
	}
	return 100 * float64(r.Exhausted) / float64(r.Loops)
}

// IIRatio is ΣII(slack) / ΣII(exact) over solved loops; 1.0 means the
// heuristic never pays an II penalty the exact search can recover.
func (r *GapRow) IIRatio() float64 {
	if r.SumExactII == 0 {
		return 0
	}
	return float64(r.SumSlackII) / float64(r.SumExactII)
}

// GapSweep measures the heuristic's optimality gap per target: every
// corpus loop is re-searched by the exact backend under the given
// budget, and the exact outcome's own slack seed (the identical
// warm-start the backend refines) is the baseline — so each row
// compares a heuristic answer and an exact answer produced under the
// same configuration. The corpus is regenerated per target, as in
// TargetSweep.
func GapSweep(opt GapOptions) ([]GapRow, error) {
	if opt.Deadline <= 0 {
		opt.Deadline = 2 * time.Second
	}
	if opt.Nodes <= 0 {
		opt.Nodes = 1 << 20
	}
	names := opt.Targets
	if len(names) == 0 {
		names = machine.Names()
	}
	var out []GapRow
	for _, name := range names {
		m, ok := machine.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown machine %q (registered: %v)", name, machine.Names())
		}
		s, err := NewSuite(loopgen.Options{Size: opt.Size, Seed: opt.Seed, Mach: m})
		if err != nil {
			return nil, err
		}
		s.Parallel = opt.Parallel
		row := GapRow{Machine: name, Loops: len(s.Loops)}
		type verdict struct {
			solved, proven, exhausted, failed bool
			slackII, exactII                  int
			mlDelta                           int // valid when solved && slackII == exactII
			iiWin, mlWin, slackOpt            bool
		}
		vs := make([]verdict, len(s.Loops))
		err = s.forEach(len(s.Loops), func(i int) error {
			l := s.Loops[i].CL.Loop
			cfg := sched.Config{Budget: sched.Budget{
				Deadline:        opt.Deadline,
				MaxCentralIters: opt.Nodes,
			}}
			res, err := exact.New(cfg).Search(context.Background(), l)
			v := &vs[i]
			switch {
			case err == nil && res != nil && res.Result != nil && res.Result.OK():
				v.solved = true
				v.proven = res.Proven
				v.slackII, v.exactII = res.SeedII, res.Result.Schedule.II
				if v.exactII < v.slackII {
					v.iiWin = true
				} else if res.MaxLive < res.SeedMaxLive {
					v.mlWin = true
				}
				if v.slackII == v.exactII {
					v.mlDelta = res.SeedMaxLive - res.MaxLive
				}
				v.slackOpt = res.Proven && !res.Improved
			case errors.Is(err, sched.ErrBudgetExhausted):
				v.exhausted = true
			default:
				v.failed = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		for i := range vs {
			v := &vs[i]
			switch {
			case v.solved:
				row.Solved++
				row.SumSlackII += v.slackII
				row.SumExactII += v.exactII
				if v.proven {
					row.Proven++
				}
				if v.slackOpt {
					row.SlackOptimal++
				}
				if v.iiWin {
					row.IIWins++
				}
				if v.mlWin {
					row.MLWins++
				}
				if v.slackII == v.exactII {
					row.mlDeltas = append(row.mlDeltas, v.mlDelta)
				}
			case v.exhausted:
				row.Exhausted++
			default:
				row.Failed++
			}
		}
		row.MLDelta = stats.Quants(row.mlDeltas)
		out = append(out, row)
	}
	return out, nil
}

// RenderGap formats the optimality-gap sweep for the console.
func RenderGap(rows []GapRow) string {
	t := stats.NewTable("Machine", "loops", "solved", "proven", "% slack opt",
		"II wins", "ML wins", "ΣII ratio", "ML Δ p50/max", "% timeout")
	for _, r := range rows {
		t.Row(r.Machine, r.Loops, r.Solved, r.Proven,
			fmt.Sprintf("%.1f", r.PctSlackOptimal()),
			r.IIWins, r.MLWins,
			fmt.Sprintf("%.3f", r.IIRatio()),
			fmt.Sprintf("%d/%d", r.MLDelta.P50, r.MLDelta.Max),
			fmt.Sprintf("%.1f", r.PctExhausted()))
	}
	return "Optimality gap — slack heuristic vs exact branch-and-bound, per target\n" + t.String()
}

// MarkdownGap renders the sweep as a GitHub table — the form
// EXPERIMENTS.md publishes.
func MarkdownGap(rows []GapRow) string {
	var b strings.Builder
	b.WriteString("| Machine | Loops | Solved | Proven | % slack optimal | II wins | ML wins | ΣII ratio | ML Δ p50/max | % timeout |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %.1f | %d | %d | %.3f | %d/%d | %.1f |\n",
			r.Machine, r.Loops, r.Solved, r.Proven, r.PctSlackOptimal(),
			r.IIWins, r.MLWins, r.IIRatio(), r.MLDelta.P50, r.MLDelta.Max, r.PctExhausted())
	}
	return b.String()
}
