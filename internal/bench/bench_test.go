package bench

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/loopgen"
	"repro/internal/machine"
)

func suite(t *testing.T, size int) *Suite {
	t.Helper()
	s, err := NewSuite(loopgen.Options{Size: size, Seed: 1993})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// The harness smoke test on a reduced workload: every experiment runs,
// and the paper's qualitative shape holds — the slack scheduler wins on
// optimality and pressure.
func TestExperimentsShape(t *testing.T) {
	s := suite(t, 250)

	t3, err := Table34(s, core.SchedSlack)
	if err != nil {
		t.Fatal(err)
	}
	t4, err := Table34(s, core.SchedCydrome)
	if err != nil {
		t.Fatal(err)
	}
	pctSlack := float64(t3.Total.Opt) / float64(t3.Total.All)
	pctCyd := float64(t4.Total.Opt) / float64(t4.Total.All)
	if pctSlack < 0.90 {
		t.Errorf("slack optimality %.1f%%, paper reports 96%%", 100*pctSlack)
	}
	if pctSlack < pctCyd {
		t.Errorf("slack optimality %.2f below cydrome %.2f — wrong winner", pctSlack, pctCyd)
	}
	ratioSlack := float64(t3.Total.SumII) / float64(t3.Total.SumMII)
	if ratioSlack > 1.05 {
		t.Errorf("slack ΣII/ΣMII = %.3f, paper reports 1.01", ratioSlack)
	}

	h, err := Headline(s)
	if err != nil {
		t.Fatal(err)
	}
	if h.SpeedupVsOld < 1.0 {
		t.Errorf("speedup vs old %.3f < 1: old scheduler should not win", h.SpeedupVsOld)
	}
	if h.PctWithin10 < 80 {
		t.Errorf("only %.1f%% within 10 RRs of MinAvg (paper: 93%%)", h.PctWithin10)
	}

	f5, err := Figure5(s)
	if err != nil {
		t.Fatal(err)
	}
	if f5.Pct("New Scheduler", 0) < f5.Pct("Old Scheduler", 0) {
		t.Errorf("old scheduler reaches the pressure bound more often (%.1f vs %.1f)",
			f5.Pct("Old Scheduler", 0), f5.Pct("New Scheduler", 0))
	}

	ab, err := Ablation(s)
	if err != nil {
		t.Fatal(err)
	}
	if ab.SumSlack > ab.SumUni || ab.SumSlack > ab.SumCydrome {
		t.Errorf("bidirectional pressure %d should undercut early-only %d / %d",
			ab.SumSlack, ab.SumUni, ab.SumCydrome)
	}
	// The ablation's point: early-only slack is close to Cydrome, and
	// clearly worse than bidirectional.
	if ab.SumSlack == ab.SumUni {
		t.Log("note: bidirectional made no aggregate difference on this sample")
	}

	t2, err := Table2(s)
	if err != nil {
		t.Fatal(err)
	}
	if t2.Rows["MII"].Max < t2.Rows["MII"].P50 {
		t.Error("quantiles inconsistent")
	}
	for _, exp := range []string{t2.String(), t3.String(), t4.String(), h.String(), f5.String(), ab.String()} {
		if len(strings.TrimSpace(exp)) == 0 {
			t.Error("empty rendering")
		}
	}
}

func TestEffortCounters(t *testing.T) {
	s := suite(t, 150)
	eSlack, err := Effort(s, core.SchedSlack)
	if err != nil {
		t.Fatal(err)
	}
	eCyd, err := Effort(s, core.SchedCydrome)
	if err != nil {
		t.Fatal(err)
	}
	if eSlack.NoBacktrack+eSlack.BacktrackLoops != s.Size() {
		t.Error("effort loop counts do not add up")
	}
	// Section 6: Cydrome's scheduler backtracked 3.7× as much; at least
	// require it not to backtrack less.
	if eCyd.Ejections < eSlack.Ejections {
		t.Errorf("cydrome ejections %d < slack %d — wrong shape", eCyd.Ejections, eSlack.Ejections)
	}
}

func TestFigures(t *testing.T) {
	s := suite(t, 120)
	for _, f := range []func(*Suite) (*FigureResult, error){Figure6, Figure7, Figure8} {
		r, err := f(s)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range r.Order {
			if len(r.Series[name]) == 0 {
				t.Errorf("%s: empty series %s", r.Title, name)
			}
		}
		// Cumulative percentages must be monotone.
		prev := -1.0
		for _, th := range r.Thresholds {
			p := r.Pct(r.Order[0], th)
			if p < prev {
				t.Errorf("%s: cumulative %% not monotone", r.Title)
			}
			prev = p
		}
	}
}

func TestRegallocExperiment(t *testing.T) {
	s := suite(t, 60)
	rs, err := Regalloc(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 || len(rs[0].Deltas) == 0 {
		t.Fatal("no allocation data")
	}
	// First-fit/start-time is the primary allocator; it must land within
	// +5 of the bound on at least 95% of loops (footnote 4's shape).
	primary := rs[0]
	within := 0
	for _, d := range primary.Deltas {
		if d < 0 {
			t.Fatalf("allocation below its own lower bound (Δ=%d)", d)
		}
		if d <= 5 {
			within++
		}
	}
	if pct := 100 * float64(within) / float64(len(primary.Deltas)); pct < 95 {
		t.Errorf("primary allocator within +5 on only %.1f%% of loops", pct)
	}
	out := RenderRegalloc(rs)
	if !strings.Contains(out, "first-fit") {
		t.Error("render missing strategies")
	}
}

func TestTable1Echo(t *testing.T) {
	out := Table1(machineCydra())
	for _, want := range []string{"MemPort", "Divider", "17", "21", "brtop"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 echo missing %q:\n%s", want, out)
		}
	}
}

func machineCydra() *machine.Desc { return machine.Cydra() }

// The two extension experiments must produce the documented shapes:
// MVE expands code (Section 2.3's motivation for rotating files), and
// bidirectional placement does not lose to early-only on straight-line
// code (Section 8's IPS conjecture).
func TestExtensionExperiments(t *testing.T) {
	s := suite(t, 120)
	exp, err := CodeExpansion(s)
	if err != nil {
		t.Fatal(err)
	}
	if exp.N < 100 {
		t.Fatalf("only %d loops measured", exp.N)
	}
	needExpansion := 0
	for _, u := range exp.Unrolls {
		if u > 1 {
			needExpansion++
		}
	}
	if needExpansion < exp.N/2 {
		t.Errorf("only %d/%d loops need unrolling; lifetimes exceeding II should be common", needExpansion, exp.N)
	}
	// Register costs of the two schemas are not directly comparable —
	// rotating N includes live-out epilogue protection, MVE's exclusive
	// per-value slots get it free — so only sanity-check positivity.
	for i := range exp.StaticRegs {
		if exp.StaticRegs[i] < 1 || exp.RotatingRegs[i] < 1 {
			t.Errorf("loop %d: degenerate register counts %d/%d", i, exp.StaticRegs[i], exp.RotatingRegs[i])
		}
	}

	sl, err := Straightline(s)
	if err != nil {
		t.Fatal(err)
	}
	if sl.SumBidir > sl.SumEarly {
		t.Errorf("bidirectional block pressure %d > early-only %d", sl.SumBidir, sl.SumEarly)
	}
	if sl.BidirWins < sl.EarlyWins {
		t.Errorf("early-only wins more blocks (%d vs %d)", sl.EarlyWins, sl.BidirWins)
	}
}
