package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/lifetime"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/regalloc"
	"repro/internal/sched"
	"repro/internal/stats"
)

// Table1 echoes the machine model (the paper's Table 1 is an input, not
// a result; printing it documents what the experiments ran on).
func Table1(m *machine.Desc) string {
	t := stats.NewTable("Pipeline", "No.", "Operations", "Latency", "Busy")
	rows := []struct {
		kind machine.FUKind
		ops  []machine.Opcode
		desc string
	}{
		{machine.MemPort, []machine.Opcode{machine.Load, machine.Store}, "load/store"},
		{machine.AddrALU, []machine.Opcode{machine.AAdd}, "addr add/sub/mult"},
		{machine.Adder, []machine.Opcode{machine.IAdd, machine.FAdd}, "int/float add,sub,logical"},
		{machine.Multiplier, []machine.Opcode{machine.IMul}, "int/float multiply"},
		{machine.Divider, []machine.Opcode{machine.FDiv, machine.FSqrt}, "div/mod | sqrt"},
		{machine.Branch, []machine.Opcode{machine.BrTop}, "brtop"},
	}
	for _, r := range rows {
		var lat, busy []string
		for _, o := range r.ops {
			in := m.Info(o)
			lat = append(lat, fmt.Sprint(in.Latency))
			busy = append(busy, fmt.Sprint(in.Busy))
		}
		t.Row(r.kind, m.Count(r.kind), r.desc, strings.Join(lat, "/"), strings.Join(busy, "/"))
	}
	return fmt.Sprintf("Table 1 — functional units of machine %q\n%s", m.Name, t)
}

// Table2Result carries the loop-complexity quantiles.
type Table2Result struct {
	N     int
	Rows  map[string]stats.Quantiles
	Order []string
}

// Table2 measures the workload's complexity (paper Table 2).
func Table2(s *Suite) (*Table2Result, error) {
	infos, err := s.Infos()
	if err != nil {
		return nil, err
	}
	col := func(f func(*LoopInfo) int) []int {
		out := make([]int, len(infos))
		for i, in := range infos {
			out[i] = f(in)
		}
		return out
	}
	res := &Table2Result{N: len(infos), Rows: map[string]stats.Quantiles{}}
	add := func(name string, f func(*LoopInfo) int) {
		res.Rows[name] = stats.Quants(col(f))
		res.Order = append(res.Order, name)
	}
	add("# Basic Blocks", func(i *LoopInfo) int { return i.NumBB })
	add("# Operations", func(i *LoopInfo) int { return i.Ops })
	add("# Critical Ops at MII", func(i *LoopInfo) int { return i.CriticalAtMII })
	add("# Ops on Recurrences", func(i *LoopInfo) int { return i.OpsOnRec })
	add("# Div/Mod/Sqrt Ops", func(i *LoopInfo) int { return i.DivOps })
	add("RecMII", func(i *LoopInfo) int { return i.Bounds.RecMII })
	add("ResMII", func(i *LoopInfo) int { return i.Bounds.ResMII })
	add("MII", func(i *LoopInfo) int { return i.Bounds.MII })
	add("MinAvg at MII", func(i *LoopInfo) int { return i.MinAvgAtMII })
	add("# GPRs", func(i *LoopInfo) int { return i.GPRs })
	return res, nil
}

func (r *Table2Result) String() string {
	t := stats.NewTable("Metric", "Min", "50%", "90%", "Max")
	for _, name := range r.Order {
		q := r.Rows[name]
		t.Row(name, q.Min, q.P50, q.P90, q.Max)
	}
	return fmt.Sprintf("Table 2 — measurements from all %d loops\n%s", r.N, t)
}

// ClassRow is one row of Tables 3/4.
type ClassRow struct {
	Class  Class
	Opt    int // loops scheduled at II == MII
	All    int
	SumII  int
	SumMII int
}

// Table34Result is the per-scheduler performance table.
type Table34Result struct {
	Scheduler core.SchedulerName
	Rows      []ClassRow
	Total     ClassRow
	Failures  int
	// Excess quantiles over the loops with II > MII.
	ExcessAbs   stats.Quantiles // II − MII
	ExcessCount int
}

// Table34 reproduces Table 3 (slack) or Table 4 (cydrome) for any
// scheduler.
func Table34(s *Suite, name core.SchedulerName) (*Table34Result, error) {
	runs, err := s.Runs(name)
	if err != nil {
		return nil, err
	}
	res := &Table34Result{Scheduler: name}
	byClass := map[Class]*ClassRow{}
	for _, c := range Classes() {
		byClass[c] = &ClassRow{Class: c}
	}
	var excess []int
	for _, r := range runs {
		row := byClass[r.Info.Class]
		row.All++
		row.SumII += r.II
		row.SumMII += r.Info.Bounds.MII
		if r.OK && r.II == r.Info.Bounds.MII {
			row.Opt++
		} else {
			excess = append(excess, r.II-r.Info.Bounds.MII)
		}
		if !r.OK {
			res.Failures++
		}
	}
	for _, c := range Classes() {
		res.Rows = append(res.Rows, *byClass[c])
		res.Total.All += byClass[c].All
		res.Total.Opt += byClass[c].Opt
		res.Total.SumII += byClass[c].SumII
		res.Total.SumMII += byClass[c].SumMII
	}
	res.Total.Class = -1
	res.ExcessAbs = stats.Quants(excess)
	res.ExcessCount = len(excess)
	return res, nil
}

func (r *Table34Result) String() string {
	t := stats.NewTable("Loop Class", "Opt", "All", "%", "ΣII", "ΣMII", "Ratio")
	row := func(c ClassRow, label string) {
		pct := 0.0
		ratio := 0.0
		if c.All > 0 {
			pct = 100 * float64(c.Opt) / float64(c.All)
		}
		if c.SumMII > 0 {
			ratio = float64(c.SumII) / float64(c.SumMII)
		}
		t.Row(label, c.Opt, c.All, fmt.Sprintf("%.0f", pct), c.SumII, c.SumMII, ratio)
	}
	for _, c := range r.Rows {
		row(c, c.Class.String())
	}
	row(r.Total, "All Loops")
	hdr := fmt.Sprintf("Scheduling performance — %s (failures: %d)\n", r.Scheduler, r.Failures)
	tail := fmt.Sprintf("For the %d loops with II > MII: II−MII min/50%%/90%%/max = %d/%d/%d/%d\n",
		r.ExcessCount, r.ExcessAbs.Min, r.ExcessAbs.P50, r.ExcessAbs.P90, r.ExcessAbs.Max)
	return hdr + t.String() + tail
}

// FigureResult is one cumulative register-distribution figure.
type FigureResult struct {
	Title      string
	Thresholds []int
	Series     map[string][]int
	Order      []string
}

func (f *FigureResult) String() string {
	return stats.Histogram(f.Title, f.Thresholds, f.Series, f.Order)
}

// Pct returns the percentage of the named series at or below the
// threshold.
func (f *FigureResult) Pct(series string, th int) float64 {
	return stats.PctAt(f.Series[series], th)
}

// Figure5 measures MaxLive − MinAvg, the distance from the
// schedule-independent pressure bound, for the new and old schedulers.
func Figure5(s *Suite) (*FigureResult, error) {
	newRuns, err := s.Runs(core.SchedSlack)
	if err != nil {
		return nil, err
	}
	oldRuns, err := s.Runs(core.SchedCydrome)
	if err != nil {
		return nil, err
	}
	gap := func(rs []Run) []int {
		var out []int
		for _, r := range rs {
			if r.OK {
				out = append(out, clampGap(r.MaxLive-r.MinAvg))
			}
		}
		return out
	}
	return &FigureResult{
		Title:      "Figure 5 — MaxLive − MinAvg (cumulative % of loops)",
		Thresholds: []int{0, 1, 2, 3, 5, 10, 20, 40},
		Series: map[string][]int{
			"New Scheduler": gap(newRuns),
			"Old Scheduler": gap(oldRuns),
		},
		Order: []string{"New Scheduler", "Old Scheduler"},
	}, nil
}

// Figure6 measures MaxLive (RR pressure) distributions.
func Figure6(s *Suite) (*FigureResult, error) {
	newRuns, err := s.Runs(core.SchedSlack)
	if err != nil {
		return nil, err
	}
	oldRuns, err := s.Runs(core.SchedCydrome)
	if err != nil {
		return nil, err
	}
	return &FigureResult{
		Title:      "Figure 6 — MaxLive (cumulative % of loops)",
		Thresholds: []int{8, 16, 24, 32, 48, 64, 96, 128},
		Series: map[string][]int{
			"New Scheduler": pressures(newRuns),
			"Old Scheduler": pressures(oldRuns),
		},
		Order: []string{"New Scheduler", "Old Scheduler"},
	}, nil
}

// Figure7 measures GPR usage and combined GPR + MaxLive pressure.
func Figure7(s *Suite) (*FigureResult, error) {
	newRuns, err := s.Runs(core.SchedSlack)
	if err != nil {
		return nil, err
	}
	oldRuns, err := s.Runs(core.SchedCydrome)
	if err != nil {
		return nil, err
	}
	var gprs, combNew, combOld []int
	for _, r := range newRuns {
		gprs = append(gprs, r.Info.GPRs)
		if r.OK {
			combNew = append(combNew, r.Info.GPRs+r.MaxLive)
		}
	}
	for _, r := range oldRuns {
		if r.OK {
			combOld = append(combOld, r.Info.GPRs+r.MaxLive)
		}
	}
	return &FigureResult{
		Title:      "Figure 7 — GPRs and GPRs + MaxLive (cumulative % of loops)",
		Thresholds: []int{8, 16, 24, 32, 48, 64, 96, 128},
		Series: map[string][]int{
			"GPRs":               gprs,
			"(New) GPRs+MaxLive": combNew,
			"(Old) GPRs+MaxLive": combOld,
		},
		Order: []string{"GPRs", "(New) GPRs+MaxLive", "(Old) GPRs+MaxLive"},
	}, nil
}

// Figure8 measures ICR predicate usage.
func Figure8(s *Suite) (*FigureResult, error) {
	newRuns, err := s.Runs(core.SchedSlack)
	if err != nil {
		return nil, err
	}
	var icr []int
	for _, r := range newRuns {
		if r.OK {
			icr = append(icr, r.ICR)
		}
	}
	return &FigureResult{
		Title:      "Figure 8 — ICR predicate usage (cumulative % of loops)",
		Thresholds: []int{2, 4, 8, 16, 32, 64},
		Series:     map[string][]int{"New Scheduler": icr},
		Order:      []string{"New Scheduler"},
	}, nil
}

// EffortResult carries the Section 6 scheduling-effort counters.
type EffortResult struct {
	Scheduler      core.SchedulerName
	NoBacktrack    int // loops needing no backtracking
	BacktrackLoops int
	OpsPlaced      int64 // placements in loops that backtracked
	CentralIters   int64
	Forces         int64
	Ejections      int64
	Restarts       int64
	Elapsed        time.Duration
}

// Effort aggregates the scheduling-effort counters for one policy.
func Effort(s *Suite, name core.SchedulerName) (*EffortResult, error) {
	runs, err := s.Runs(name)
	if err != nil {
		return nil, err
	}
	res := &EffortResult{Scheduler: name}
	for _, r := range runs {
		if r.Stats.Backtracked() {
			res.BacktrackLoops++
			res.OpsPlaced += r.Stats.Placements
		} else {
			res.NoBacktrack++
		}
		res.CentralIters += r.Stats.CentralIters
		res.Forces += r.Stats.Forces
		res.Ejections += r.Stats.Ejections
		res.Restarts += r.Stats.Restarts
		res.Elapsed += r.Stats.Elapsed
	}
	return res, nil
}

func (r *EffortResult) String() string {
	return fmt.Sprintf(
		"Scheduling effort — %s\n"+
			"  loops without backtracking: %d\n"+
			"  loops with backtracking:    %d (placed %d ops)\n"+
			"  central-loop iterations:    %d\n"+
			"  step-3 invocations (force): %d\n"+
			"  operations ejected:         %d\n"+
			"  step-6 invocations:         %d\n"+
			"  total scheduling time:      %v\n",
		r.Scheduler, r.NoBacktrack, r.BacktrackLoops, r.OpsPlaced,
		r.CentralIters, r.Forces, r.Ejections, r.Restarts, r.Elapsed)
}

// HeadlineResult carries Section 7's summary numbers.
type HeadlineResult struct {
	PctOptimal     float64 // % of loops at II == MII (slack)
	TimeVsMinimum  float64 // ΣII / ΣMII (slack)
	SpeedupVsOld   float64 // ΣII(cydrome) / ΣII(slack), loops where both scheduled
	PctPressureOpt float64 // % with MaxLive == MinAvg
	PctWithin10    float64 // % with MaxLive − MinAvg ≤ 10
	PctRRle32      float64 // % with MaxLive ≤ 32
	PctCombLe32    float64 // % with GPRs+MaxLive ≤ 32
	PctFitCydra    float64 // % fitting a real Cydra 5 file (64 rotating regs)
	OldFailures    int
}

// Headline computes the paper's summary claims.
func Headline(s *Suite) (*HeadlineResult, error) {
	newRuns, err := s.Runs(core.SchedSlack)
	if err != nil {
		return nil, err
	}
	oldRuns, err := s.Runs(core.SchedCydrome)
	if err != nil {
		return nil, err
	}
	res := &HeadlineResult{}
	opt, sumII, sumMII := 0, 0, 0
	var gaps, rr, comb []int
	for _, r := range newRuns {
		if r.OK && r.II == r.Info.Bounds.MII {
			opt++
		}
		sumII += r.II
		sumMII += r.Info.Bounds.MII
		if r.OK {
			gaps = append(gaps, clampGap(r.MaxLive-r.MinAvg))
			rr = append(rr, r.MaxLive)
			comb = append(comb, r.MaxLive+r.Info.GPRs)
		}
	}
	res.PctOptimal = 100 * float64(opt) / float64(len(newRuns))
	res.TimeVsMinimum = float64(sumII) / float64(sumMII)
	// Failures count at the last II attempted, the paper's Table 4
	// convention (footnote 8).
	sumOld, sumNew := 0, 0
	for i, r := range oldRuns {
		if !r.OK {
			res.OldFailures++
		}
		sumOld += r.II
		sumNew += newRuns[i].II
	}
	if sumNew > 0 {
		res.SpeedupVsOld = float64(sumOld) / float64(sumNew)
	}
	res.PctPressureOpt = stats.PctAt(gaps, 0)
	res.PctWithin10 = stats.PctAt(gaps, 10)
	res.PctRRle32 = stats.PctAt(rr, 32)
	res.PctCombLe32 = stats.PctAt(comb, 32)
	res.PctFitCydra = stats.PctAt(rr, 64)
	return res, nil
}

func (r *HeadlineResult) String() string {
	return fmt.Sprintf(
		"Headline (Section 7)                        paper      measured\n"+
			"  loops at II = MII                         96%%       %6.1f%%\n"+
			"  execution time vs minimum (ΣII/ΣMII)      1.01      %6.3f\n"+
			"  speedup over Cydrome's scheduler          1.11      %6.3f\n"+
			"  loops with MaxLive = MinAvg               46%%       %6.1f%%\n"+
			"  loops within 10 RRs of ideal              93%%       %6.1f%%\n"+
			"  loops using ≤ 32 RRs                      92%%       %6.1f%%\n"+
			"  loops with RRs+GPRs ≤ 32                  82%%       %6.1f%%\n"+
			"  loops fitting a real 64-reg rotating file (>99%%)   %6.1f%%\n"+
			"  loops Cydrome's scheduler failed to pipe  14        %6d\n",
		r.PctOptimal, r.TimeVsMinimum, r.SpeedupVsOld,
		r.PctPressureOpt, r.PctWithin10, r.PctRRle32, r.PctCombLe32,
		r.PctFitCydra, r.OldFailures)
}

// AblationResult compares total pressure across heuristic variants.
type AblationResult struct {
	SumSlack, SumUni, SumCydrome int
	N                            int
}

// Ablation reproduces Section 7's note: without the bidirectional
// heuristics the slack scheduler generates nearly the same register
// pressure as Cydrome's. Totals cover loops all three scheduled.
func Ablation(s *Suite) (*AblationResult, error) {
	a, err := s.Runs(core.SchedSlack)
	if err != nil {
		return nil, err
	}
	b, err := s.Runs(core.SchedSlackUni)
	if err != nil {
		return nil, err
	}
	c, err := s.Runs(core.SchedCydrome)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{}
	for i := range a {
		if !a[i].OK || !b[i].OK || !c[i].OK {
			continue
		}
		res.N++
		res.SumSlack += a[i].MaxLive
		res.SumUni += b[i].MaxLive
		res.SumCydrome += c[i].MaxLive
	}
	return res, nil
}

func (r *AblationResult) String() string {
	return fmt.Sprintf(
		"Bidirectional ablation — total MaxLive over %d loops\n"+
			"  slack (bidirectional):   %d\n"+
			"  slack (early-only):      %d\n"+
			"  cydrome (early-only):    %d\n",
		r.N, r.SumSlack, r.SumUni, r.SumCydrome)
}

// RegallocResult reports how close rotating-register allocation comes to
// the MaxLive bound (footnote 4's claim) per strategy.
type RegallocResult struct {
	Strategy string
	Deltas   []int // allocated N − MaxLive per loop
}

// Regalloc allocates every slack schedule with each strategy/order pair.
func Regalloc(s *Suite) ([]RegallocResult, error) {
	infos, err := s.Infos()
	if err != nil {
		return nil, err
	}
	type combo struct {
		strat regalloc.Strategy
		ord   regalloc.Order
	}
	combos := []combo{
		{regalloc.FirstFit, regalloc.StartTime},
		{regalloc.FirstFit, regalloc.Adjacency},
		{regalloc.EndFit, regalloc.Adjacency},
		{regalloc.BestFit, regalloc.StartTime},
	}
	out := make([]RegallocResult, len(combos))
	for i, c := range combos {
		out[i].Strategy = fmt.Sprintf("%v/%v", c.strat, c.ord)
	}
	for _, info := range infos {
		res, err := sched.Slack(sched.Config{}).Schedule(info.Loop)
		if err != nil || !res.OK() {
			continue
		}
		ranges := lifetime.Ranges(info.Loop, res.Schedule, ir.RR)
		bound := regalloc.LowerBound(ranges, res.Schedule.II)
		for i, c := range combos {
			// The probing strategies cost O(V·N²); restrict them to
			// loops of ordinary size (the primary first-fit allocator
			// runs everywhere).
			if c.strat != regalloc.FirstFit && len(ranges) > 60 {
				continue
			}
			a := regalloc.Allocate(ranges, res.Schedule.II, c.strat, c.ord)
			out[i].Deltas = append(out[i].Deltas, a.N-bound)
		}
	}
	return out, nil
}

// RenderRegalloc formats the allocation-quality experiment.
func RenderRegalloc(rs []RegallocResult) string {
	t := stats.NewTable("Strategy", "=bound", "≤+1", "≤+5", "max Δ")
	for _, r := range rs {
		q := stats.Quants(r.Deltas)
		t.Row(r.Strategy,
			fmt.Sprintf("%.1f%%", stats.PctAt(r.Deltas, 0)),
			fmt.Sprintf("%.1f%%", stats.PctAt(r.Deltas, 1)),
			fmt.Sprintf("%.1f%%", stats.PctAt(r.Deltas, 5)),
			q.Max)
	}
	return "Rotating-register allocation vs the MaxLive bound (Rau et al. claim: ≈always within +1)\n" + t.String()
}

// IIStepResult compares the paper's II increment (4%) with increment-by-1
// (footnote 6).
type IIStepResult struct {
	SumIIPct, SumIIOne     int
	CentralPct, CentralOne int64
}

// IIStep runs the slack scheduler under both increment policies.
func IIStep(opt loopgen.Options) (*IIStepResult, error) {
	s1, err := NewSuite(opt)
	if err != nil {
		return nil, err
	}
	s2, err := NewSuite(opt)
	if err != nil {
		return nil, err
	}
	s2.Configure(core.SchedSlack, sched.Config{IncrementByOne: true})
	a, err := s1.Runs(core.SchedSlack)
	if err != nil {
		return nil, err
	}
	b, err := s2.Runs(core.SchedSlack)
	if err != nil {
		return nil, err
	}
	res := &IIStepResult{}
	for i := range a {
		res.SumIIPct += a[i].II
		res.SumIIOne += b[i].II
		res.CentralPct += a[i].Stats.CentralIters
		res.CentralOne += b[i].Stats.CentralIters
	}
	return res, nil
}

func (r *IIStepResult) String() string {
	return fmt.Sprintf(
		"II increment policy (footnote 6)\n"+
			"  ΣII with max(⌊0.04·II⌋,1): %d (central iters %d)\n"+
			"  ΣII with increment-by-1:   %d (central iters %d)\n"+
			"  ΔΣII = %d, extra effort = %.1f%%\n",
		r.SumIIPct, r.CentralPct, r.SumIIOne, r.CentralOne,
		r.SumIIPct-r.SumIIOne,
		100*(float64(r.CentralOne)/float64(max64(r.CentralPct, 1))-1))
}

// clampGap floors MaxLive − MinAvg at zero: MinAvg rounds every
// lifetime up to whole registers (Σ⌈MinLT/II⌉), so loops with many
// sub-II lifetimes at a large II can sit a register below it; the bound
// is then trivially achieved.
func clampGap(g int) int {
	if g < 0 {
		return 0
	}
	return g
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// LatencyRow is one machine variant's summary (Section 8 robustness).
type LatencyRow struct {
	Machine    string
	PctOptimal float64
	Ratio      float64
	AvgMaxLive float64
}

// Latencies re-runs the headline on every machine variant.
func Latencies(size int, seed int64) ([]LatencyRow, error) {
	var out []LatencyRow
	for _, m := range machine.Variants() {
		s, err := NewSuite(loopgen.Options{Size: size, Seed: seed, Mach: m})
		if err != nil {
			return nil, err
		}
		runs, err := s.Runs(core.SchedSlack)
		if err != nil {
			return nil, err
		}
		opt, sumII, sumMII, sumML, okCount := 0, 0, 0, 0, 0
		for _, r := range runs {
			if r.OK && r.II == r.Info.Bounds.MII {
				opt++
			}
			sumII += r.II
			sumMII += r.Info.Bounds.MII
			if r.OK {
				sumML += r.MaxLive
				okCount++
			}
		}
		out = append(out, LatencyRow{
			Machine:    m.Name,
			PctOptimal: 100 * float64(opt) / float64(len(runs)),
			Ratio:      float64(sumII) / float64(sumMII),
			AvgMaxLive: float64(sumML) / float64(okCount),
		})
	}
	return out, nil
}

// RenderLatencies formats the robustness experiment.
func RenderLatencies(rows []LatencyRow) string {
	t := stats.NewTable("Machine", "% at MII", "ΣII/ΣMII", "avg MaxLive")
	for _, r := range rows {
		t.Row(r.Machine, fmt.Sprintf("%.1f", r.PctOptimal), r.Ratio, r.AvgMaxLive)
	}
	return "Latency robustness (Section 8: results should be similar across variants)\n" + t.String()
}

// TargetRow is one target's corpus summary in the multi-target sweep.
type TargetRow struct {
	Machine    string
	Loops      int
	Feasible   int
	PctAtMII   float64 // % of feasible loops scheduled at their MII
	IIRatio    float64 // ΣII / ΣMII over feasible loops
	AvgMaxLive float64
	MaxMaxLive int
}

// TargetSweep runs the slack scheduler's corpus sweep on every named
// registered target — the experiment the declarative machine model
// exists for. Where Latencies varies only the paper machine's
// latencies, this varies the machine itself: unit mixes, pipelining,
// even the number of unit classes. The corpus is regenerated per
// target (functional-unit pre-assignment depends on the machine), so
// the same source loops are scheduled against each.
func TargetSweep(size int, seed int64, parallel int, names []string) ([]TargetRow, error) {
	var out []TargetRow
	for _, name := range names {
		m, ok := machine.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown machine %q (registered: %v)", name, machine.Names())
		}
		s, err := NewSuite(loopgen.Options{Size: size, Seed: seed, Mach: m})
		if err != nil {
			return nil, err
		}
		s.Parallel = parallel
		runs, err := s.Runs(core.SchedSlack)
		if err != nil {
			return nil, err
		}
		row := TargetRow{Machine: name, Loops: len(runs)}
		atMII, sumII, sumMII, sumML := 0, 0, 0, 0
		for _, r := range runs {
			if !r.OK {
				continue
			}
			row.Feasible++
			if r.II == r.Info.Bounds.MII {
				atMII++
			}
			sumII += r.II
			sumMII += r.Info.Bounds.MII
			sumML += r.MaxLive
			if r.MaxLive > row.MaxMaxLive {
				row.MaxMaxLive = r.MaxLive
			}
		}
		if row.Feasible > 0 {
			row.PctAtMII = 100 * float64(atMII) / float64(row.Feasible)
			row.IIRatio = float64(sumII) / float64(sumMII)
			row.AvgMaxLive = float64(sumML) / float64(row.Feasible)
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderTargetSweep formats the multi-target sweep for the console.
func RenderTargetSweep(rows []TargetRow) string {
	t := stats.NewTable("Machine", "loops", "feasible", "% at MII", "ΣII/ΣMII", "avg MaxLive", "max MaxLive")
	for _, r := range rows {
		t.Row(r.Machine, r.Loops, r.Feasible, fmt.Sprintf("%.1f", r.PctAtMII), r.IIRatio, r.AvgMaxLive, r.MaxMaxLive)
	}
	return "Per-target corpus sweep (slack scheduler on each registered target)\n" + t.String()
}

// MarkdownTargetSweep renders the sweep as a GitHub table — the form
// EXPERIMENTS.md publishes.
func MarkdownTargetSweep(rows []TargetRow) string {
	var b strings.Builder
	b.WriteString("| Machine | Loops | Feasible | % at MII | ΣII/ΣMII | avg MaxLive | max MaxLive |\n")
	b.WriteString("|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %d | %d | %.1f | %.3f | %.1f | %d |\n",
			r.Machine, r.Loops, r.Feasible, r.PctAtMII, r.IIRatio, r.AvgMaxLive, r.MaxMaxLive)
	}
	return b.String()
}

// ExpansionResult quantifies Section 2.3's trade: rotating register
// files avoid the code expansion of modulo variable expansion.
type ExpansionResult struct {
	N            int   // loops measured
	Unrolls      []int // MVE unroll factor per loop
	RotatingRegs []int // rotating registers (kernel-only schema)
	StaticRegs   []int // static registers (MVE)
	Overflowed   int   // loops whose unroll exceeded the cap
}

// CodeExpansion compares kernel-only rotating code against modulo
// variable expansion over the slack schedules.
func CodeExpansion(s *Suite) (*ExpansionResult, error) {
	infos, err := s.Infos()
	if err != nil {
		return nil, err
	}
	res := &ExpansionResult{}
	for _, info := range infos {
		sr, err := sched.Slack(sched.Config{}).Schedule(info.Loop)
		if err != nil || !sr.OK() {
			continue
		}
		rot, err := codegen.Generate(info.Loop, sr.Schedule)
		if err != nil {
			return nil, err
		}
		mve, err := codegen.GenerateMVE(info.Loop, sr.Schedule)
		if err != nil {
			res.Overflowed++
			continue
		}
		res.N++
		res.Unrolls = append(res.Unrolls, mve.Unroll)
		res.RotatingRegs = append(res.RotatingRegs, rot.NRR)
		res.StaticRegs = append(res.StaticRegs, mve.TotalRegs)
	}
	return res, nil
}

func (r *ExpansionResult) String() string {
	uq := stats.Quants(r.Unrolls)
	rq := stats.Quants(r.RotatingRegs)
	sq := stats.Quants(r.StaticRegs)
	return fmt.Sprintf(
		"Code expansion — rotating kernel-only vs modulo variable expansion (%d loops, %d over the unroll cap)\n"+
			"  MVE unroll factor (code size multiplier):  min/50%%/90%%/max = %d/%d/%d/%d\n"+
			"  %% of loops needing no unrolling (U = 1):   %.1f%%\n"+
			"  rotating registers:                        min/50%%/90%%/max = %d/%d/%d/%d\n"+
			"  static registers under MVE:                min/50%%/90%%/max = %d/%d/%d/%d\n",
		r.N, r.Overflowed,
		uq.Min, uq.P50, uq.P90, uq.Max,
		stats.PctAt(r.Unrolls, 1),
		rq.Min, rq.P50, rq.P90, rq.Max,
		sq.Min, sq.P50, sq.P90, sq.Max)
}

// StraightlineResult compares block-level register pressure of
// bidirectional vs early-only placement on acyclic code.
type StraightlineResult struct {
	N         int
	SumBidir  int
	SumEarly  int
	BidirWins int // blocks where bidirectional pressure is strictly lower
	EarlyWins int
}

// Straightline runs Section 8's suggested "future experimentation": the
// slack framework applied to straight-line code, the setting where
// Integrated Prepass Scheduling was studied. Each loop body is scheduled
// as a single basic block — at an II large enough that the modulo
// constraint and every loop-carried dependence are inert — once with the
// bidirectional heuristic and once early-only, comparing peak register
// pressure within the block.
func Straightline(s *Suite) (*StraightlineResult, error) {
	infos, err := s.Infos()
	if err != nil {
		return nil, err
	}
	res := &StraightlineResult{}
	for _, info := range infos {
		big := 16
		for _, op := range info.Loop.Ops {
			big += info.Loop.Mach.Info(op.Opcode).Busy + info.Loop.Mach.Latency(op.Opcode)
		}
		cfg := sched.Config{StartII: big, MaxII: big}
		a, err := sched.Slack(cfg).Schedule(info.Loop)
		if err != nil || !a.OK() {
			continue
		}
		b, err := sched.SlackUnidirectional(cfg).Schedule(info.Loop)
		if err != nil || !b.OK() {
			continue
		}
		pa := lifetime.Measure(info.Loop, a.Schedule, ir.RR).MaxLive
		pb := lifetime.Measure(info.Loop, b.Schedule, ir.RR).MaxLive
		res.N++
		res.SumBidir += pa
		res.SumEarly += pb
		if pa < pb {
			res.BidirWins++
		} else if pb < pa {
			res.EarlyWins++
		}
	}
	return res, nil
}

func (r *StraightlineResult) String() string {
	return fmt.Sprintf(
		"Straight-line scheduling (Section 8's IPS context) — %d blocks\n"+
			"  peak block pressure, bidirectional: %d\n"+
			"  peak block pressure, early-only:    %d\n"+
			"  blocks where bidirectional is strictly lower: %d (early-only lower: %d)\n",
		r.N, r.SumBidir, r.SumEarly, r.BidirWins, r.EarlyWins)
}

// PredShareResult quantifies the register sharing the paper's compiler
// left on the table (Section 3.2: "Operations that execute under
// mutually exclusive predicates may use the same destination register…
// Unfortunately, the compiler does not perform the requisite analysis").
type PredShareResult struct {
	CondLoops  int // loops with conditionals measured
	SumPlain   int // Σ MaxLive, predicates assumed all-true (the paper)
	SumAware   int // Σ MaxLive with complementary-predicate sharing
	LoopsSaved int // loops where the analysis reduces MaxLive
}

// PredicateSharing measures plain vs predicate-aware MaxLive over the
// workload's conditional loops under slack schedules.
func PredicateSharing(s *Suite) (*PredShareResult, error) {
	infos, err := s.Infos()
	if err != nil {
		return nil, err
	}
	res := &PredShareResult{}
	for _, info := range infos {
		if !info.Loop.HasConditional {
			continue
		}
		sr, err := sched.Slack(sched.Config{}).Schedule(info.Loop)
		if err != nil || !sr.OK() {
			continue
		}
		plain := lifetime.Measure(info.Loop, sr.Schedule, ir.RR).MaxLive
		aware := lifetime.MeasurePredAware(info.Loop, sr.Schedule, ir.RR).MaxLive
		res.CondLoops++
		res.SumPlain += plain
		res.SumAware += aware
		if aware < plain {
			res.LoopsSaved++
		}
	}
	return res, nil
}

func (r *PredShareResult) String() string {
	pct := 0.0
	if r.SumPlain > 0 {
		pct = 100 * float64(r.SumPlain-r.SumAware) / float64(r.SumPlain)
	}
	return fmt.Sprintf(
		"Predicate-aware register sharing (the analysis Section 3.2 says the compiler lacked)\n"+
			"  conditional loops measured:        %d\n"+
			"  Σ MaxLive, all-predicates-true:    %d\n"+
			"  Σ MaxLive, complementary sharing:  %d (−%.1f%%)\n"+
			"  loops with any saving:             %d\n",
		r.CondLoops, r.SumPlain, r.SumAware, pct, r.LoopsSaved)
}
