// Package bench is the benchmark harness: it reproduces every table and
// figure of the paper's evaluation (Sections 6 and 7) on this
// repository's workload. Each experiment has a structured result and a
// renderer that prints rows shaped like the paper's, so EXPERIMENTS.md
// can put measured values next to published ones.
package bench

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/mii"
	"repro/internal/mindist"
	"repro/internal/obs"
	"repro/internal/sched"
)

// LoopPanicError isolates a panic raised while processing one loop: the
// worker recovers it, captures the stack, and records it against that
// loop alone, so one bad loop cannot kill a 1,525-loop sweep.
type LoopPanicError struct {
	Loop      string
	Recovered any
	Stack     []byte
}

func (e *LoopPanicError) Error() string {
	return fmt.Sprintf("bench: %s: panic: %v", e.Loop, e.Recovered)
}

// Class is the paper's loop classification (Tables 3 and 4). A loop
// "has a recurrence" when a recurrence circuit actually constrains its
// II (RecMII > 1); trivial self-arcs with unit ratio do not count
// (Section 4 calls those imposing "no scheduling constraints").
type Class int

// The four classes.
const (
	Neither Class = iota
	HasConditional
	HasRecurrence
	HasBoth
)

func (c Class) String() string {
	switch c {
	case HasConditional:
		return "Has Conditional"
	case HasRecurrence:
		return "Has Recurrence"
	case HasBoth:
		return "Has Both"
	}
	return "Has Neither"
}

// Classes lists the row order of Tables 3 and 4.
func Classes() []Class {
	return []Class{HasConditional, HasRecurrence, HasBoth, Neither}
}

// LoopInfo holds a loop's schedule-independent measurements (Table 2).
type LoopInfo struct {
	Name          string
	Loop          *ir.Loop
	NumBB         int
	Ops           int
	CriticalAtMII int
	OpsOnRec      int
	DivOps        int
	Bounds        mii.Bounds
	MinAvgAtMII   int
	GPRs          int
	Class         Class
}

// Run is one loop scheduled by one policy.
type Run struct {
	Info    *LoopInfo
	OK      bool
	II      int // achieved; last attempted on failure (Table 4 footnote 8)
	MaxLive int
	MinAvg  int // at the achieved II
	ICR     int
	Stats   sched.Stats

	// Degraded reports a budget-exhausted run rescued by the list
	// scheduler (Suite.Degrade).
	Degraded bool
	// Err is non-nil when this loop's compilation failed outright: a
	// *sched.BudgetError, a *LoopPanicError, or an internal error. An
	// infeasible loop (II ceiling exhausted) is not an Err — it is the
	// OK=false data the paper's Table 4 tabulates.
	Err error
	// Metrics is the loop's aggregated event stream (Suite.Metrics).
	Metrics *sched.Metrics
	// Trace is the loop's compile-pipeline span trace (Suite.Trace).
	Trace *obs.Trace
}

// Suite wraps the workload with cached analyses and runs. Suite methods
// are not safe for concurrent use, but Infos and Runs fan their own
// work out over Parallel goroutines (loops are independent).
type Suite struct {
	Mach  *machine.Desc
	Loops []*loopgen.Loop
	Seed  int64

	// Parallel bounds the worker pool used by Infos and Runs: 0 means
	// runtime.GOMAXPROCS(0), 1 disables concurrency.
	Parallel int

	// Degrade forwards core.Options.Degrade: budget-exhausted runs fall
	// back to the list scheduler instead of failing.
	Degrade bool
	// Metrics attaches one sched.Metrics observer per run; the per-loop
	// aggregates land in Run.Metrics and MergeMetrics folds them in
	// loop order, so the merged counters are identical for serial and
	// parallel sweeps.
	Metrics bool
	// Trace attaches an obs.Trace per run; the per-loop span traces land
	// in Run.Trace, ready for obs.WriteChromeTrace (lsms-bench -tracedir).
	Trace bool

	infos []*LoopInfo
	runs  map[core.SchedulerName][]Run
	cfgs  map[core.SchedulerName]sched.Config
}

// NewSuite builds the workload and prepares the harness.
func NewSuite(opt loopgen.Options) (*Suite, error) {
	w, err := loopgen.Build(opt)
	if err != nil {
		return nil, err
	}
	return &Suite{
		Mach:  w.Mach,
		Loops: w.Loops,
		Seed:  opt.Seed,
		runs:  map[core.SchedulerName][]Run{},
		cfgs:  map[core.SchedulerName]sched.Config{},
	}, nil
}

// workers resolves the pool size for n independent work items.
func (s *Suite) workers(n int) int {
	w := s.Parallel
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forEach applies fn to every index in [0, n), fanned out over the
// suite's worker pool. Each fn writes only into its own index slot, so
// results are deterministic regardless of pool size; on failure the
// lowest-index error is reported, matching the sequential order. A
// panic escaping fn is recovered into a *LoopPanicError for its index —
// the worker (and the sweep) survives it.
func (s *Suite) forEach(n int, fn func(i int) error) error {
	w := s.workers(n)
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := guarded(fn, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = guarded(fn, i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// guarded runs fn(i), converting a panic into a *LoopPanicError so a
// worker goroutine never dies.
func guarded(fn func(i int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &LoopPanicError{
				Loop:      fmt.Sprintf("index %d", i),
				Recovered: r,
				Stack:     debug.Stack(),
			}
		}
	}()
	return fn(i)
}

// Size returns the number of loops.
func (s *Suite) Size() int { return len(s.Loops) }

// Infos computes (once) the schedule-independent loop measurements,
// fanning the per-loop analyses out over the worker pool.
func (s *Suite) Infos() ([]*LoopInfo, error) {
	if s.infos != nil {
		return s.infos, nil
	}
	infos := make([]*LoopInfo, len(s.Loops))
	err := s.forEach(len(s.Loops), func(i int) error {
		wl := s.Loops[i]
		l := wl.CL.Loop
		b, err := mii.Compute(l)
		if err != nil {
			return fmt.Errorf("%s: %w", wl.Name, err)
		}
		md, err := mindist.Compute(l, b.MII)
		if err != nil {
			return fmt.Errorf("%s at MII: %w", wl.Name, err)
		}
		info := &LoopInfo{
			Name:        wl.Name,
			Loop:        l,
			NumBB:       l.NumBB,
			Ops:         len(l.Ops),
			OpsOnRec:    l.CountOps(func(op *ir.Op) bool { return op.OnRecurrence }),
			DivOps:      l.CountOps(func(op *ir.Op) bool { return mii.UsesDivider(l, op) }),
			Bounds:      b,
			MinAvgAtMII: mindist.MinAvg(l, md, ir.RR),
			GPRs:        l.GPRCount(),
		}
		if mii.HasResourceContention(l) {
			for _, c := range mii.CriticalOps(l, b.MII) {
				if c {
					info.CriticalAtMII++
				}
			}
		}
		hasR := b.RecMII > 1
		switch {
		case l.HasConditional && hasR:
			info.Class = HasBoth
		case l.HasConditional:
			info.Class = HasConditional
		case hasR:
			info.Class = HasRecurrence
		}
		infos[i] = info
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.infos = infos
	return s.infos, nil
}

// Configure overrides the scheduling configuration used for a policy
// (the II-step ablation); call before the first Runs for that policy.
func (s *Suite) Configure(name core.SchedulerName, cfg sched.Config) {
	s.cfgs[name] = cfg
	delete(s.runs, name)
}

// Runs schedules every loop with the given policy (cached), fanning the
// independent compilations out over the worker pool.
func (s *Suite) Runs(name core.SchedulerName) ([]Run, error) {
	return s.RunsContext(context.Background(), name)
}

// RunsContext is Runs under a context: cancellation and any
// sched.Budget in the policy's Config bound every per-loop compilation.
// Per-loop failures — budget exhaustion, a panic in the compiler, an
// internal error — land in that loop's Run.Err and never abort the
// sweep; only workload-level failures (Infos) return an error.
func (s *Suite) RunsContext(ctx context.Context, name core.SchedulerName) ([]Run, error) {
	if rs, ok := s.runs[name]; ok {
		return rs, nil
	}
	infos, err := s.Infos()
	if err != nil {
		return nil, err
	}
	cfg := s.cfgs[name]
	rs := make([]Run, len(infos))
	err = s.forEach(len(infos), func(i int) error {
		rs[i] = s.runOne(ctx, name, cfg, infos[i])
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.runs[name] = rs
	return rs, nil
}

// runOne compiles one loop for one policy, recovering panics and
// recording failures in the Run rather than propagating them.
func (s *Suite) runOne(ctx context.Context, name core.SchedulerName, cfg sched.Config, info *LoopInfo) (run Run) {
	run = Run{Info: info}
	defer func() {
		if r := recover(); r != nil {
			run.OK = false
			run.Err = &LoopPanicError{Loop: info.Name, Recovered: r, Stack: debug.Stack()}
		}
		run.Trace.Finish(runOutcome(run)) // nil-safe no-op unless Suite.Trace
	}()
	if s.Metrics {
		m := &sched.Metrics{}
		if prev := cfg.Observer; prev != nil {
			cfg.Observer = multiObserver{prev, m}
		} else {
			cfg.Observer = m
		}
		run.Metrics = m
	}
	if s.Trace {
		run.Trace = obs.NewTrace(info.Name, info.Name)
		ctx = obs.WithTrace(ctx, run.Trace)
	}
	c, err := core.CompileContext(ctx, info.Loop, core.Options{
		Scheduler:   name,
		Config:      cfg,
		SkipCodegen: true,
		Degrade:     s.Degrade,
	})
	if err != nil && !errors.Is(err, sched.ErrInfeasible) {
		// Budget exhaustion or an internal failure: this loop's record
		// only. The partial evidence (last II, effort) is kept when the
		// compiler returned it.
		run.Err = fmt.Errorf("%s/%s: %w", name, info.Name, err)
		if c != nil && c.Result != nil {
			run.II = c.Result.II()
			run.Stats = c.Result.Stats
		}
		return run
	}
	run.OK = c.OK()
	run.II = c.Result.II()
	run.Stats = c.Result.Stats
	run.Degraded = c.Degraded
	if c.OK() {
		run.MaxLive = c.RR.MaxLive
		run.MinAvg = c.MinAvg
		run.ICR = c.ICR
	}
	return run
}

// runOutcome names a finished run for its trace, reusing the budget
// Reason vocabulary so bench traces read like server flight-recorder
// entries.
func runOutcome(run Run) string {
	var be *sched.BudgetError
	var pe *LoopPanicError
	switch {
	case errors.As(run.Err, &pe):
		return obs.OutcomePanic
	case errors.As(run.Err, &be):
		if be.Reason != "" {
			return be.Reason
		}
		return obs.OutcomeBudgetExhausted
	case run.Err != nil:
		return obs.OutcomeError
	case run.Degraded:
		return obs.OutcomeDegraded
	case !run.OK:
		return obs.OutcomeInfeasible
	}
	return obs.OutcomeOK
}

// multiObserver chains observers for one run.
type multiObserver []sched.Observer

func (m multiObserver) Event(e sched.Event) {
	for _, o := range m {
		o.Event(e)
	}
}

// MergeMetrics folds the per-loop metrics of a sweep in loop order —
// deterministic regardless of the worker pool that produced them. It
// returns nil when the suite did not collect metrics.
func MergeMetrics(rs []Run) *sched.Metrics {
	var out *sched.Metrics
	for _, r := range rs {
		if r.Metrics == nil {
			continue
		}
		if out == nil {
			out = &sched.Metrics{}
		}
		out.Merge(r.Metrics)
	}
	return out
}

// pressures collects MaxLive over successful runs.
func pressures(rs []Run) []int {
	var out []int
	for _, r := range rs {
		if r.OK {
			out = append(out, r.MaxLive)
		}
	}
	return out
}
