// Package bench is the benchmark harness: it reproduces every table and
// figure of the paper's evaluation (Sections 6 and 7) on this
// repository's workload. Each experiment has a structured result and a
// renderer that prints rows shaped like the paper's, so EXPERIMENTS.md
// can put measured values next to published ones.
package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/mii"
	"repro/internal/mindist"
	"repro/internal/sched"
)

// Class is the paper's loop classification (Tables 3 and 4). A loop
// "has a recurrence" when a recurrence circuit actually constrains its
// II (RecMII > 1); trivial self-arcs with unit ratio do not count
// (Section 4 calls those imposing "no scheduling constraints").
type Class int

// The four classes.
const (
	Neither Class = iota
	HasConditional
	HasRecurrence
	HasBoth
)

func (c Class) String() string {
	switch c {
	case HasConditional:
		return "Has Conditional"
	case HasRecurrence:
		return "Has Recurrence"
	case HasBoth:
		return "Has Both"
	}
	return "Has Neither"
}

// Classes lists the row order of Tables 3 and 4.
func Classes() []Class {
	return []Class{HasConditional, HasRecurrence, HasBoth, Neither}
}

// LoopInfo holds a loop's schedule-independent measurements (Table 2).
type LoopInfo struct {
	Name          string
	Loop          *ir.Loop
	NumBB         int
	Ops           int
	CriticalAtMII int
	OpsOnRec      int
	DivOps        int
	Bounds        mii.Bounds
	MinAvgAtMII   int
	GPRs          int
	Class         Class
}

// Run is one loop scheduled by one policy.
type Run struct {
	Info    *LoopInfo
	OK      bool
	II      int // achieved; last attempted on failure (Table 4 footnote 8)
	MaxLive int
	MinAvg  int // at the achieved II
	ICR     int
	Stats   sched.Stats
}

// Suite wraps the workload with cached analyses and runs. Suite methods
// are not safe for concurrent use, but Infos and Runs fan their own
// work out over Parallel goroutines (loops are independent).
type Suite struct {
	Mach  *machine.Desc
	Loops []*loopgen.Loop
	Seed  int64

	// Parallel bounds the worker pool used by Infos and Runs: 0 means
	// runtime.GOMAXPROCS(0), 1 disables concurrency.
	Parallel int

	infos []*LoopInfo
	runs  map[core.SchedulerName][]Run
	cfgs  map[core.SchedulerName]sched.Config
}

// NewSuite builds the workload and prepares the harness.
func NewSuite(opt loopgen.Options) (*Suite, error) {
	w, err := loopgen.Build(opt)
	if err != nil {
		return nil, err
	}
	return &Suite{
		Mach:  w.Mach,
		Loops: w.Loops,
		Seed:  opt.Seed,
		runs:  map[core.SchedulerName][]Run{},
		cfgs:  map[core.SchedulerName]sched.Config{},
	}, nil
}

// workers resolves the pool size for n independent work items.
func (s *Suite) workers(n int) int {
	w := s.Parallel
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forEach applies fn to every index in [0, n), fanned out over the
// suite's worker pool. Each fn writes only into its own index slot, so
// results are deterministic regardless of pool size; on failure the
// lowest-index error is reported, matching the sequential order.
func (s *Suite) forEach(n int, fn func(i int) error) error {
	w := s.workers(n)
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Size returns the number of loops.
func (s *Suite) Size() int { return len(s.Loops) }

// Infos computes (once) the schedule-independent loop measurements,
// fanning the per-loop analyses out over the worker pool.
func (s *Suite) Infos() ([]*LoopInfo, error) {
	if s.infos != nil {
		return s.infos, nil
	}
	infos := make([]*LoopInfo, len(s.Loops))
	err := s.forEach(len(s.Loops), func(i int) error {
		wl := s.Loops[i]
		l := wl.CL.Loop
		b, err := mii.Compute(l)
		if err != nil {
			return fmt.Errorf("%s: %w", wl.Name, err)
		}
		md, err := mindist.Compute(l, b.MII)
		if err != nil {
			return fmt.Errorf("%s at MII: %w", wl.Name, err)
		}
		info := &LoopInfo{
			Name:        wl.Name,
			Loop:        l,
			NumBB:       l.NumBB,
			Ops:         len(l.Ops),
			OpsOnRec:    l.CountOps(func(op *ir.Op) bool { return op.OnRecurrence }),
			DivOps:      l.CountOps(func(op *ir.Op) bool { return mii.UsesDivider(l, op) }),
			Bounds:      b,
			MinAvgAtMII: mindist.MinAvg(l, md, ir.RR),
			GPRs:        l.GPRCount(),
		}
		if mii.HasResourceContention(l) {
			for _, c := range mii.CriticalOps(l, b.MII) {
				if c {
					info.CriticalAtMII++
				}
			}
		}
		hasR := b.RecMII > 1
		switch {
		case l.HasConditional && hasR:
			info.Class = HasBoth
		case l.HasConditional:
			info.Class = HasConditional
		case hasR:
			info.Class = HasRecurrence
		}
		infos[i] = info
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.infos = infos
	return s.infos, nil
}

// Configure overrides the scheduling configuration used for a policy
// (the II-step ablation); call before the first Runs for that policy.
func (s *Suite) Configure(name core.SchedulerName, cfg sched.Config) {
	s.cfgs[name] = cfg
	delete(s.runs, name)
}

// Runs schedules every loop with the given policy (cached), fanning the
// independent compilations out over the worker pool.
func (s *Suite) Runs(name core.SchedulerName) ([]Run, error) {
	if rs, ok := s.runs[name]; ok {
		return rs, nil
	}
	infos, err := s.Infos()
	if err != nil {
		return nil, err
	}
	cfg := s.cfgs[name]
	rs := make([]Run, len(infos))
	err = s.forEach(len(infos), func(i int) error {
		info := infos[i]
		c, err := core.Compile(info.Loop, core.Options{
			Scheduler:   name,
			Config:      cfg,
			SkipCodegen: true,
		})
		if err != nil {
			return fmt.Errorf("%s/%s: %w", name, info.Name, err)
		}
		r := Run{Info: info, OK: c.OK(), II: c.Result.II(), Stats: c.Result.Stats}
		if c.OK() {
			r.MaxLive = c.RR.MaxLive
			r.MinAvg = c.MinAvg
			r.ICR = c.ICR
		}
		rs[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.runs[name] = rs
	return rs, nil
}

// pressures collects MaxLive over successful runs.
func pressures(rs []Run) []int {
	var out []int
	for _, r := range rs {
		if r.OK {
			out = append(out, r.MaxLive)
		}
	}
	return out
}
