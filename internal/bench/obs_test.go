package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// The -metricsjson record must be byte-deterministic: same corpus, same
// JSON bytes, regardless of the worker pool. Map keys marshal sorted,
// policies in registry order, counters folded in loop order.
func TestMetricsJSONByteDeterministic(t *testing.T) {
	seq := suite(t, 60)
	seq.Parallel = 1
	par := suite(t, 60)
	par.Parallel = 8

	mr1, err := CollectMetrics(seq)
	if err != nil {
		t.Fatal(err)
	}
	mr2, err := CollectMetrics(par)
	if err != nil {
		t.Fatal(err)
	}
	mr1.Parallel, mr2.Parallel = 0, 0 // the pool size is the one legitimate difference
	b1, err := json.MarshalIndent(mr1, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.MarshalIndent(mr2, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("metrics JSON differs between pool sizes:\nserial:\n%s\nparallel:\n%s", b1, b2)
	}
	for _, p := range mr1.Policies {
		var total int64
		for _, n := range p.Outcomes {
			total += n
		}
		if total != p.Counters.Attempts {
			t.Fatalf("%s: outcome total %d != attempts %d", p.Policy, total, p.Counters.Attempts)
		}
	}
}

// A traced sweep attaches a finished span trace to every run, and the
// collected traces export as one valid Chrome trace_event document.
func TestSweepTracesExportToChrome(t *testing.T) {
	s := suite(t, 20)
	s.Trace = true
	rs, err := s.Runs(core.SchedSlack)
	if err != nil {
		t.Fatal(err)
	}
	traces := make([]*obs.Trace, 0, len(rs))
	for _, r := range rs {
		if r.Trace == nil {
			t.Fatalf("%s: no trace attached", r.Info.Name)
		}
		if r.Trace.Outcome == "" || r.Trace.Dur == 0 {
			t.Fatalf("%s: trace not finished: %+v", r.Info.Name, r.Trace)
		}
		if len(r.Trace.Spans) == 0 {
			t.Fatalf("%s: trace recorded no spans", r.Info.Name)
		}
		traces = append(traces, r.Trace)
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, traces); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace holds no events")
	}
}
