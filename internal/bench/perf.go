// Harness performance instrumentation: the full-suite scheduling sweep
// is the repository's compile-time hot path, and later PRs need a
// recorded trajectory to regress against. Perf times one sweep per
// policy and aggregates the Section 6 effort counters plus the
// MinDist/central-loop attribution; WriteJSON emits the machine-readable
// record (conventionally BENCH_sched.json at the repo root).
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
)

// PolicyPerf is one policy's full-suite scheduling cost.
type PolicyPerf struct {
	Policy       string  `json:"policy"`
	Loops        int     `json:"loops"`
	Failures     int     `json:"failures"`
	Errors       int     `json:"errors,omitempty"`   // per-loop Run.Err (budget, panic, internal)
	Degraded     int     `json:"degraded,omitempty"` // list-scheduler rescues (Suite.Degrade)
	WallMS       float64 `json:"wall_ms"`
	MinDistMS    float64 `json:"mindist_ms"` // of scheduling time: building MinDist tables
	CentralMS    float64 `json:"central_ms"` // of scheduling time: the central loop
	IIAttempts   int64   `json:"ii_attempts"`
	CentralIters int64   `json:"central_iters"`
	Placements   int64   `json:"placements"`
	Ejections    int64   `json:"ejections"`
}

// PerfReport is the machine-readable record of one benchmark sweep.
type PerfReport struct {
	Size       int          `json:"size"`
	Seed       int64        `json:"seed"`
	Parallel   int          `json:"parallel"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	FastPaths  bool         `json:"fast_paths"` // parametric MinDist + incremental bounds
	WallMS     float64      `json:"wall_ms"`    // whole sweep, all policies
	Policies   []PolicyPerf `json:"policies"`
}

// Perf schedules the whole workload once per policy, timing each sweep.
// Analyses shared across policies (Infos) are warmed outside the timed
// region; cached runs are discarded so every sweep is measured fresh.
func Perf(s *Suite) (*PerfReport, error) {
	if _, err := s.Infos(); err != nil {
		return nil, err
	}
	r := &PerfReport{
		Size:       s.Size(),
		Seed:       s.Seed,
		Parallel:   s.workers(s.Size()),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	sweepStart := time.Now()
	for _, name := range core.Schedulers() {
		r.FastPaths = r.FastPaths || !s.cfgs[name].NoFastPaths
		delete(s.runs, name)
		start := time.Now()
		rs, err := s.Runs(name)
		if err != nil {
			return nil, err
		}
		p := PolicyPerf{
			Policy: string(name),
			Loops:  len(rs),
			WallMS: ms(time.Since(start)),
		}
		var mdt, cat time.Duration
		for _, run := range rs {
			if !run.OK {
				p.Failures++
			}
			if run.Err != nil {
				p.Errors++
			}
			if run.Degraded {
				p.Degraded++
			}
			mdt += run.Stats.MinDistTime
			cat += run.Stats.CentralTime
			p.IIAttempts += int64(run.Stats.IIAttempts)
			p.CentralIters += run.Stats.CentralIters
			p.Placements += run.Stats.Placements
			p.Ejections += run.Stats.Ejections
		}
		p.MinDistMS = ms(mdt)
		p.CentralMS = ms(cat)
		r.Policies = append(r.Policies, p)
	}
	r.WallMS = ms(time.Since(sweepStart))
	return r, nil
}

// ms converts a duration to milliseconds at microsecond precision.
func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }

// WriteJSON records the report at path.
func (r *PerfReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// PolicyMetrics is one policy's merged event-stream aggregates plus the
// per-loop outcome tallies of the sweep that produced them.
type PolicyMetrics struct {
	Policy   string `json:"policy"`
	Loops    int    `json:"loops"`
	Failures int    `json:"failures"`           // infeasible loops (OK=false, no error)
	Errors   int    `json:"errors,omitempty"`   // per-loop Run.Err (budget, panic, internal)
	Degraded int    `json:"degraded,omitempty"` // list-scheduler rescues

	// Events counts the typed event stream by wire name, Outcomes the
	// finished attempts by their AttemptOutcome name; Counters carries
	// the rest of the sched.Metrics aggregate. Both maps marshal with
	// sorted keys (encoding/json's map ordering), so the JSON record is
	// byte-deterministic.
	Events   map[string]int64 `json:"events"`
	Outcomes map[string]int64 `json:"attempt_outcomes"`
	Counters *sched.Metrics   `json:"counters"`
}

// MetricsReport is the machine-readable event-stream record of one
// sweep, conventionally written alongside BENCH_sched.json. Each
// policy's per-loop metrics are merged in loop order, so the report is
// byte-identical for serial and parallel sweeps.
type MetricsReport struct {
	Size     int             `json:"size"`
	Seed     int64           `json:"seed"`
	Parallel int             `json:"parallel"`
	Policies []PolicyMetrics `json:"policies"`
}

// CollectMetrics sweeps every registered policy with a per-loop
// sched.Metrics observer attached and folds each policy's streams
// deterministically. It enables Suite.Metrics and re-runs any cached
// sweeps so every run carries its aggregate.
func CollectMetrics(s *Suite) (*MetricsReport, error) {
	s.Metrics = true
	r := &MetricsReport{Size: s.Size(), Seed: s.Seed, Parallel: s.workers(s.Size())}
	for _, name := range core.Schedulers() {
		delete(s.runs, name)
		rs, err := s.Runs(name)
		if err != nil {
			return nil, err
		}
		m := MergeMetrics(rs)
		if m == nil {
			m = &sched.Metrics{}
		}
		p := PolicyMetrics{
			Policy:   string(name),
			Loops:    len(rs),
			Events:   m.EventCounts(),
			Outcomes: m.OutcomeCounts(),
			Counters: m,
		}
		for _, run := range rs {
			switch {
			case run.Err != nil:
				p.Errors++
			case !run.OK:
				p.Failures++
			}
			if run.Degraded {
				p.Degraded++
			}
		}
		r.Policies = append(r.Policies, p)
	}
	return r, nil
}

// WriteJSON records the metrics report at path.
func (r *MetricsReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// String renders the human-readable metrics summary.
func (r *MetricsReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Event-stream metrics — %d loops (seed %d), %d worker(s)\n", r.Size, r.Seed, r.Parallel)
	fmt.Fprintf(&b, "%-22s %10s %10s %12s %10s %8s %8s %9s\n",
		"policy", "attempts", "ok", "places", "ejects", "fails", "errors", "degraded")
	for _, p := range r.Policies {
		fmt.Fprintf(&b, "%-22s %10d %10d %12d %10d %8d %8d %9d\n",
			p.Policy, p.Counters.Attempts, p.Counters.AttemptsOK,
			p.Events[sched.EvPlace.String()], p.Events[sched.EvEject.String()],
			p.Failures, p.Errors, p.Degraded)
	}
	return b.String()
}

// String renders the human-readable summary.
func (r *PerfReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scheduling sweep — %d loops (seed %d), %d worker(s), GOMAXPROCS %d, total %.0f ms\n",
		r.Size, r.Seed, r.Parallel, r.GOMAXPROCS, r.WallMS)
	fmt.Fprintf(&b, "%-22s %9s %10s %10s %12s %12s %9s %6s\n",
		"policy", "wall ms", "mindist ms", "central ms", "central iters", "placements", "ejections", "fails")
	for _, p := range r.Policies {
		fmt.Fprintf(&b, "%-22s %9.0f %10.0f %10.0f %12d %12d %9d %6d\n",
			p.Policy, p.WallMS, p.MinDistMS, p.CentralMS, p.CentralIters, p.Placements, p.Ejections, p.Failures)
	}
	return b.String()
}
