package bench

import (
	"testing"
	"time"
)

// TestGapSweepInvariants runs a small gap sweep on the paper machine
// and checks the structural guarantees: every loop is accounted for
// exactly once, and the exact backend's warm start makes "never worse
// than slack" a hard invariant of the row sums.
func TestGapSweepInvariants(t *testing.T) {
	rows, err := GapSweep(GapOptions{
		Size:     16,
		Seed:     7,
		Targets:  []string{"cydra"},
		Deadline: 10 * time.Second,
		Nodes:    1 << 18,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	r := rows[0]
	if r.Machine != "cydra" || r.Loops < 16 {
		t.Fatalf("row header: %+v", r)
	}
	if got := r.Solved + r.Exhausted + r.Failed; got != r.Loops {
		t.Errorf("loops partition: solved %d + exhausted %d + failed %d != %d",
			r.Solved, r.Exhausted, r.Failed, r.Loops)
	}
	if r.Solved == 0 {
		t.Fatal("no loop solved under a 10s budget")
	}
	if r.SumExactII > r.SumSlackII {
		t.Errorf("exact ΣII %d worse than slack ΣII %d", r.SumExactII, r.SumSlackII)
	}
	if ratio := r.IIRatio(); ratio < 1 {
		t.Errorf("IIRatio = %.3f, want >= 1 (warm start can never lose II)", ratio)
	}
	if r.MLDelta.Min < 0 {
		t.Errorf("negative MaxLive delta %d: exact worse than its own seed", r.MLDelta.Min)
	}
	if r.Proven > r.Solved || r.SlackOptimal > r.Proven {
		t.Errorf("nesting violated: proven %d ⊆ solved %d, slack-optimal %d ⊆ proven %d",
			r.Proven, r.Solved, r.SlackOptimal, r.Proven)
	}
	if r.IIWins+r.MLWins > r.Solved {
		t.Errorf("wins %d+%d exceed solved %d", r.IIWins, r.MLWins, r.Solved)
	}
	// Renderers must cover every row without panicking on empty deltas.
	if s := RenderGap(rows); s == "" {
		t.Error("empty console rendering")
	}
	if s := MarkdownGap(rows); s == "" {
		t.Error("empty markdown rendering")
	}
}

// TestGapSweepUnknownTarget: a bad target name is a loud error, not an
// empty row.
func TestGapSweepUnknownTarget(t *testing.T) {
	if _, err := GapSweep(GapOptions{Size: 1, Targets: []string{"nonesuch"}}); err == nil {
		t.Fatal("no error for unknown machine")
	}
}
