package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
)

// TestParallelSweepDeterministic builds the same workload twice and runs
// it sequentially and on a wide pool: the analyses and every per-loop
// run must be identical, order included.
func TestParallelSweepDeterministic(t *testing.T) {
	seq := suite(t, 120)
	seq.Parallel = 1
	par := suite(t, 120)
	par.Parallel = 8

	is, err := seq.Infos()
	if err != nil {
		t.Fatal(err)
	}
	ip, err := par.Infos()
	if err != nil {
		t.Fatal(err)
	}
	if len(is) != len(ip) {
		t.Fatalf("info count %d vs %d", len(is), len(ip))
	}
	for i := range is {
		if is[i].Name != ip[i].Name || is[i].Bounds != ip[i].Bounds ||
			is[i].MinAvgAtMII != ip[i].MinAvgAtMII || is[i].Class != ip[i].Class {
			t.Fatalf("info %d differs: %+v vs %+v", i, is[i], ip[i])
		}
	}
	for _, name := range core.Schedulers() {
		rs, err := seq.Runs(name)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := par.Runs(name)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rs {
			if rs[i].OK != rp[i].OK || rs[i].II != rp[i].II ||
				rs[i].MaxLive != rp[i].MaxLive || rs[i].MinAvg != rp[i].MinAvg ||
				rs[i].ICR != rp[i].ICR {
				t.Fatalf("%s run %d (%s) differs: seq %+v, par %+v",
					name, i, rs[i].Info.Name, rs[i], rp[i])
			}
		}
	}
}

// TestFastPathsMatchLegacyAcrossWorkload is the acceptance differential:
// for all four schedulers over a generated workload, the parametric
// MinDist + incremental bounds pipeline must produce identical IIs,
// MaxLive values and failure sets to the direct from-scratch paths.
func TestFastPathsMatchLegacyAcrossWorkload(t *testing.T) {
	size := 120
	if testing.Short() {
		size = 40
	}
	fast := suite(t, size)
	slow := suite(t, size)
	for _, name := range core.Schedulers() {
		slow.Configure(name, sched.Config{NoFastPaths: true})
	}
	for _, name := range core.Schedulers() {
		rf, err := fast.Runs(name)
		if err != nil {
			t.Fatal(err)
		}
		rl, err := slow.Runs(name)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rf {
			if rf[i].OK != rl[i].OK || rf[i].II != rl[i].II || rf[i].MaxLive != rl[i].MaxLive {
				t.Fatalf("%s/%s: fast OK=%v II=%d MaxLive=%d, direct OK=%v II=%d MaxLive=%d",
					name, rf[i].Info.Name, rf[i].OK, rf[i].II, rf[i].MaxLive,
					rl[i].OK, rl[i].II, rl[i].MaxLive)
			}
		}
	}
}

// TestPerfReport smoke-tests the JSON emitter: all policies present,
// counters populated, wall time attributed, file written.
func TestPerfReport(t *testing.T) {
	s := suite(t, 60)
	r, err := Perf(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Policies) != len(core.Schedulers()) {
		t.Fatalf("got %d policies, want %d", len(r.Policies), len(core.Schedulers()))
	}
	for _, p := range r.Policies {
		if p.Loops != s.Size() || p.Placements == 0 || p.CentralIters == 0 {
			t.Fatalf("%s: implausible counters %+v", p.Policy, p)
		}
	}
	if !r.FastPaths {
		t.Fatal("default sweep should use the fast paths")
	}
	path := filepath.Join(t.TempDir(), "BENCH_sched.json")
	if err := r.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back PerfReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Size != r.Size || len(back.Policies) != len(r.Policies) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, r)
	}
}
