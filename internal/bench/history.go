// Continuous benchmark trajectory: BENCH_sched.json is a single
// snapshot, so a perf win recorded there is invisible one PR later.
// History appends one record per PR (keyed by git SHA and date) to an
// append-only JSONL file — conventionally BENCH_history.jsonl at the
// repo root — each carrying ns/op, B/op, allocs/op per scheduling
// policy on the per-compile hot path plus the Section 6 effort
// counters of one deterministic sweep. cmd/benchdiff compares the head
// record against the last committed one and fails CI on regression.
package bench

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/sched"
)

// BenchRecord is one policy's per-compile cost: the testing.Benchmark
// measurements (per single compilation, not per sweep) plus the effort
// counters of one full deterministic sweep at the record's size/seed.
// The counters are schedule work, not wall clock, so they must be
// identical across machines — benchdiff treats any counter drift as a
// correctness alarm, not a perf regression.
type BenchRecord struct {
	Name        string  `json:"name"` // "compile/<policy>"
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`

	IIAttempts   int64 `json:"ii_attempts"`
	CentralIters int64 `json:"central_iters"`
	Placements   int64 `json:"placements"`
	Forces       int64 `json:"forces"`
	Ejections    int64 `json:"ejections"`
	Restarts     int64 `json:"restarts"`
}

// HistoryRecord is one line of BENCH_history.jsonl.
type HistoryRecord struct {
	SHA  string `json:"sha"`
	Date string `json:"date"` // YYYY-MM-DD
	Note string `json:"note,omitempty"`
	Go   string `json:"go"`
	Size int    `json:"size"`
	Seed int64  `json:"seed"`
	// Machine names the target the record was measured on; empty means
	// the paper machine (records predate the multi-target harness).
	// benchdiff never compares records across machines — counters and
	// costs are both per-target.
	Machine    string        `json:"machine,omitempty"`
	NoPool     bool          `json:"nopool,omitempty"`
	Benchmarks []BenchRecord `json:"benchmarks"`
}

// CompileBench measures the per-compile hot path for every registered
// policy on the sized workload: a testing.Benchmark whose op is one
// core.Compile (scheduling + pressure, no codegen — the lsmsd serving
// shape), round-robin over the corpus, plus one untimed sweep that
// aggregates the effort counters. Each policy yields two records:
// "compile/<policy>" (a fresh Compiled per op, the legacy entry point)
// and "compileinto/<policy>" (one Compiled recycled across ops via
// core.CompileInto — the allocation floor). The sweep counters are
// shared: both entry points perform identical scheduling work.
// A nil mach measures on the paper machine.
func CompileBench(size int, seed int64, cfg sched.Config, mach *machine.Desc) ([]BenchRecord, error) {
	w, err := loopgen.Build(loopgen.Options{Size: size, Seed: seed, Mach: mach})
	if err != nil {
		return nil, err
	}
	loops := w.Loops
	ctx := context.Background()
	var out []BenchRecord
	for _, name := range core.Schedulers() {
		opt := core.Options{Scheduler: name, Config: cfg, SkipCodegen: true}
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Compile(loops[i%len(loops)].CL.Loop, opt); err != nil {
					benchErr = fmt.Errorf("%s/%s: %w", name, loops[i%len(loops)].Name, err)
					b.FailNow()
				}
			}
		})
		if benchErr != nil {
			return nil, benchErr
		}
		rInto := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			var c core.Compiled
			for i := 0; i < b.N; i++ {
				err := core.CompileInto(ctx, &c, loops[i%len(loops)].CL.Loop, opt)
				if err != nil && !errors.Is(err, sched.ErrInfeasible) {
					benchErr = fmt.Errorf("%s/%s: %w", name, loops[i%len(loops)].Name, err)
					b.FailNow()
				}
			}
		})
		if benchErr != nil {
			return nil, benchErr
		}
		rec := BenchRecord{
			Name:        "compile/" + string(name),
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  float64(r.AllocedBytesPerOp()),
			AllocsPerOp: float64(r.AllocsPerOp()),
		}
		for _, l := range loops {
			c, err := core.Compile(l.CL.Loop, opt)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", name, l.Name, err)
			}
			st := c.Result.Stats
			rec.IIAttempts += int64(st.IIAttempts)
			rec.CentralIters += st.CentralIters
			rec.Placements += st.Placements
			rec.Forces += st.Forces
			rec.Ejections += st.Ejections
			rec.Restarts += st.Restarts
		}
		recInto := rec
		recInto.Name = "compileinto/" + string(name)
		recInto.NsPerOp = float64(rInto.NsPerOp())
		recInto.BytesPerOp = float64(rInto.AllocedBytesPerOp())
		recInto.AllocsPerOp = float64(rInto.AllocsPerOp())
		out = append(out, rec, recInto)
	}
	return out, nil
}

// NewHistoryRecord assembles one trajectory record. Date is the
// caller's (CI stamps UTC); Go is filled in here. An empty machine
// means the paper machine.
func NewHistoryRecord(sha, date, note string, size int, seed int64, mach string, nopool bool, benches []BenchRecord) *HistoryRecord {
	if mach == machine.PaperMachine {
		mach = "" // canonical form: the paper machine is the unmarked case
	}
	return &HistoryRecord{
		SHA: sha, Date: date, Note: note,
		Go:   runtime.Version(),
		Size: size, Seed: seed, Machine: mach, NoPool: nopool,
		Benchmarks: benches,
	}
}

// AppendHistory appends the record as one JSON line (creating the file
// if needed) — the append-only contract of BENCH_history.jsonl.
func AppendHistory(path string, r *HistoryRecord) error {
	data, err := json.Marshal(r)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadHistory parses every record of a JSONL history file, oldest
// first. Blank lines are skipped; a malformed line is an error (the
// file is append-only and machine-written, so damage means trouble).
func ReadHistory(path string) ([]*HistoryRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []*HistoryRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for ln := 1; sc.Scan(); ln++ {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		r := new(HistoryRecord)
		if err := json.Unmarshal(line, r); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, ln, err)
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// String renders the record as a one-line-per-benchmark summary.
func (r *HistoryRecord) String() string {
	s := fmt.Sprintf("%s %s size=%d seed=%d", r.SHA, r.Date, r.Size, r.Seed)
	if r.Machine != "" {
		s += " machine=" + r.Machine
	}
	if r.Note != "" {
		s += " (" + r.Note + ")"
	}
	for _, b := range r.Benchmarks {
		s += fmt.Sprintf("\n  %-28s %12.0f ns/op %12.0f B/op %8.1f allocs/op  iters=%d ejects=%d",
			b.Name, b.NsPerOp, b.BytesPerOp, b.AllocsPerOp, b.CentralIters, b.Ejections)
	}
	return s
}
