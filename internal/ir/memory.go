package ir

import "fmt"

// Memory is the flat data memory shared by the reference interpreter and
// the VLIW simulator: one Scalar per element, addressed by index. Array
// variables are laid out back to back by the test drivers and the
// frontend's runtime layout.
type Memory []Scalar

// Load returns the scalar at addr.
func (m Memory) Load(addr int64) (Scalar, error) {
	if addr < 0 || addr >= int64(len(m)) {
		return Scalar{}, fmt.Errorf("memory: load out of bounds: %d (size %d)", addr, len(m))
	}
	return m[addr], nil
}

// Store writes the scalar at addr.
func (m Memory) Store(addr int64, s Scalar) error {
	if addr < 0 || addr >= int64(len(m)) {
		return fmt.Errorf("memory: store out of bounds: %d (size %d)", addr, len(m))
	}
	m[addr] = s
	return nil
}
