package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Unplaced marks an op without an issue cycle in a Schedule.
const Unplaced = -1

// Schedule is the result of modulo scheduling a loop: an initiation
// interval and an issue cycle for every operation. Cycle t of op x means
// iteration i of the loop issues x at absolute time t + i·II.
type Schedule struct {
	II   int
	Time []int // indexed by OpID; Unplaced if the op was not scheduled
}

// NewSchedule returns an empty schedule for n ops at the given II.
func NewSchedule(ii, n int) *Schedule {
	s := &Schedule{II: ii, Time: make([]int, n)}
	for i := range s.Time {
		s.Time[i] = Unplaced
	}
	return s
}

// Complete reports whether every op has been placed.
func (s *Schedule) Complete() bool {
	for _, t := range s.Time {
		if t == Unplaced {
			return false
		}
	}
	return true
}

// Length returns the schedule length: one past the latest issue cycle.
// (The paper's Estart(Stop) additionally counts trailing latency; use
// Makespan for that.)
func (s *Schedule) Length() int {
	max := 0
	for _, t := range s.Time {
		if t != Unplaced && t+1 > max {
			max = t + 1
		}
	}
	return max
}

// Makespan returns the number of cycles one iteration needs from the
// first issue to the last result: max over ops of time + latency.
func (s *Schedule) Makespan(l *Loop) int {
	max := 0
	for id, t := range s.Time {
		if t == Unplaced {
			continue
		}
		end := t + l.Mach.Latency(l.Ops[id].Opcode)
		if end > max {
			max = end
		}
	}
	return max
}

// Stages returns the number of kernel stages: ⌈Length/II⌉, at least 1.
func (s *Schedule) Stages() int {
	n := (s.Length() + s.II - 1) / s.II
	if n < 1 {
		n = 1
	}
	return n
}

// Stage returns which stage an op issues in.
func (s *Schedule) Stage(id OpID) int { return s.Time[id] / s.II }

// Offset returns the op's issue cycle within the kernel (time mod II).
func (s *Schedule) Offset(id OpID) int { return s.Time[id] % s.II }

// String renders the schedule ordered by issue cycle.
func (s *Schedule) String() string {
	type row struct {
		t  int
		id OpID
	}
	var rows []row
	for id, t := range s.Time {
		rows = append(rows, row{t, OpID(id)})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].t != rows[j].t {
			return rows[i].t < rows[j].t
		}
		return rows[i].id < rows[j].id
	})
	var b strings.Builder
	fmt.Fprintf(&b, "II=%d len=%d stages=%d\n", s.II, s.Length(), s.Stages())
	for _, r := range rows {
		if r.t == Unplaced {
			fmt.Fprintf(&b, "  ----: op%d (unplaced)\n", int(r.id))
		} else {
			fmt.Fprintf(&b, "  %4d: op%d\n", r.t, int(r.id))
		}
	}
	return b.String()
}
