package ir

import (
	"strings"
	"testing"

	"repro/internal/machine"
)

func twoAddLoop(t *testing.T) *Loop {
	t.Helper()
	l := NewLoop("two", machine.Cydra())
	a := l.NewValue("a", RR, Float)
	b := l.NewValue("b", RR, Float)
	l.NewOp(machine.FAdd, []Operand{{Val: a.ID, Omega: 1}, {Val: a.ID, Omega: 1}}, a.ID)
	l.NewOp(machine.FMul, []Operand{{Val: a.ID}, {Val: a.ID}}, b.ID)
	if err := l.Finalize(); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestFlowDepsDerived(t *testing.T) {
	l := twoAddLoop(t)
	// a's def feeds itself (ω=1, twice) and the multiply (ω=0, twice).
	var selfArcs, fwdArcs int
	for _, d := range l.Deps {
		if d.Kind != DepFlow {
			continue
		}
		switch {
		case d.From == 0 && d.To == 0:
			selfArcs++
			if d.Omega != 1 || d.Latency != 1 {
				t.Errorf("self arc: %+v", d)
			}
		case d.From == 0 && d.To == 1:
			fwdArcs++
			if d.Omega != 0 {
				t.Errorf("forward arc: %+v", d)
			}
		}
	}
	if selfArcs != 2 || fwdArcs != 2 {
		t.Errorf("got %d self + %d forward flow arcs, want 2 + 2", selfArcs, fwdArcs)
	}
}

func TestRecurrenceMarking(t *testing.T) {
	l := twoAddLoop(t)
	// The ω=1 self arc is a trivial recurrence: no op should be marked.
	if l.Ops[0].OnRecurrence || l.Ops[1].OnRecurrence {
		t.Error("self arcs alone must not mark ops as on-recurrence")
	}
	if l.HasRecurrence() {
		t.Error("HasRecurrence should be false for self arcs only")
	}

	// Cross-coupled ops form a real circuit.
	l2 := NewLoop("cross", machine.Cydra())
	x := l2.NewValue("x", RR, Float)
	y := l2.NewValue("y", RR, Float)
	l2.NewOp(machine.FAdd, []Operand{{Val: y.ID, Omega: 1}, {Val: y.ID, Omega: 1}}, x.ID)
	l2.NewOp(machine.FAdd, []Operand{{Val: x.ID}, {Val: x.ID}}, y.ID)
	l2.MustFinalize()
	if !l2.Ops[0].OnRecurrence || !l2.Ops[1].OnRecurrence {
		t.Error("cross-coupled ops must be marked on-recurrence")
	}
}

func TestFUAssignmentRoundRobin(t *testing.T) {
	l := NewLoop("mem", machine.Cydra())
	p := l.NewValue("p", RR, Addr)
	v1 := l.NewValue("v1", RR, Float)
	v2 := l.NewValue("v2", RR, Float)
	v3 := l.NewValue("v3", RR, Float)
	l.NewOp(machine.Load, []Operand{{Val: p.ID, Omega: 1}}, v1.ID)
	l.NewOp(machine.Load, []Operand{{Val: p.ID, Omega: 1}}, v2.ID)
	l.NewOp(machine.Load, []Operand{{Val: p.ID, Omega: 1}}, v3.ID)
	one := l.Const("one", Addr, IntS(1))
	l.NewOp(machine.AAdd, []Operand{{Val: p.ID, Omega: 1}, {Val: one.ID}}, p.ID)
	l.MustFinalize()
	if l.Ops[0].FU != 0 || l.Ops[1].FU != 1 || l.Ops[2].FU != 0 {
		t.Errorf("loads should round-robin over 2 ports: got %d %d %d",
			l.Ops[0].FU, l.Ops[1].FU, l.Ops[2].FU)
	}
}

func TestValidateRejects(t *testing.T) {
	m := machine.Cydra()

	// Reading an invariant with ω > 0.
	l := NewLoop("bad1", m)
	g := l.NewValue("g", GPR, Float)
	s := l.NewValue("s", RR, Float)
	l.NewOp(machine.FAdd, []Operand{{Val: g.ID, Omega: 1}, {Val: g.ID}}, s.ID)
	if err := l.Finalize(); err == nil {
		t.Error("invariant read with omega > 0 must be rejected")
	}

	// Multi-def without predication.
	l2 := NewLoop("bad2", m)
	v := l2.NewValue("v", RR, Float)
	w := l2.NewValue("w", RR, Float)
	l2.NewOp(machine.FAdd, []Operand{{Val: w.ID, Omega: 1}, {Val: w.ID, Omega: 1}}, v.ID)
	l2.NewOp(machine.FSub, []Operand{{Val: w.ID, Omega: 1}, {Val: w.ID, Omega: 1}}, v.ID)
	l2.NewOp(machine.FCopy, []Operand{{Val: v.ID}}, w.ID)
	if err := l2.Finalize(); err == nil {
		t.Error("unpredicated multi-def must be rejected")
	}

	// Two brtops.
	l3 := NewLoop("bad3", m)
	u := l3.NewValue("u", RR, Float)
	l3.NewOp(machine.FAdd, []Operand{{Val: u.ID, Omega: 1}, {Val: u.ID, Omega: 1}}, u.ID)
	l3.NewOp(machine.BrTop, nil, None)
	l3.NewOp(machine.BrTop, nil, None)
	if err := l3.Finalize(); err == nil {
		t.Error("two brtops must be rejected")
	}

	// Empty loop.
	if err := NewLoop("bad4", m).Finalize(); err == nil {
		t.Error("empty body must be rejected")
	}
}

func TestAddDepRejectsFlow(t *testing.T) {
	l := twoAddLoop(t)
	defer func() {
		if recover() == nil {
			t.Error("AddDep(DepFlow) must panic")
		}
	}()
	l.AddDep(Dep{From: 0, To: 1, Kind: DepFlow})
}

func TestGPRCount(t *testing.T) {
	l := NewLoop("gpr", machine.Cydra())
	a := l.NewValue("a", GPR, Float)
	unused := l.NewValue("unused", GPR, Float)
	_ = unused
	s := l.NewValue("s", RR, Float)
	l.NewOp(machine.FMul, []Operand{{Val: s.ID, Omega: 1}, {Val: a.ID}}, s.ID)
	l.MustFinalize()
	if got := l.GPRCount(); got != 1 {
		t.Errorf("GPRCount = %d, want 1 (unused invariants don't count)", got)
	}
}

func TestStringRendering(t *testing.T) {
	l := twoAddLoop(t)
	out := l.String()
	for _, want := range []string{"loop two", "fadd", "fmul", "a[-1]"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestScheduleHelpers(t *testing.T) {
	s := NewSchedule(3, 4)
	if s.Complete() {
		t.Error("fresh schedule is not complete")
	}
	s.Time = []int{0, 2, 5, 7}
	if !s.Complete() {
		t.Error("all placed: complete")
	}
	if s.Length() != 8 {
		t.Errorf("Length = %d, want 8", s.Length())
	}
	if s.Stages() != 3 {
		t.Errorf("Stages = %d, want ⌈8/3⌉ = 3", s.Stages())
	}
	if s.Stage(2) != 1 || s.Offset(2) != 2 {
		t.Errorf("op2: stage %d offset %d, want 1,2", s.Stage(2), s.Offset(2))
	}
}
