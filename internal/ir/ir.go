// Package ir defines the loop intermediate representation consumed by the
// modulo schedulers: a branch-free, predicated loop body in (dynamic)
// static single assignment form, with dependence arcs labelled by latency
// and omega — the minimum number of iterations separating the two ends of
// the dependence (Sections 2.2, 3.1 and 5.1 of the paper).
//
// A Loop holds one loop body. Each Op is one machine operation; each
// Value is one loop variant (or loop-invariant live-in) with, normally, a
// unique defining operation. The single deliberate departure from strict
// SSA is if-converted merges: a Value may have several defining operations
// provided their predicates are mutually exclusive, which is exactly how
// predicated hardware such as the Cydra 5 implements a merge without a
// select instruction.
//
// Loop-carried uses are expressed by the Omega field of an operand: an
// operand (v, ω) reads the instance of v computed ω iterations earlier.
// An omega of zero reads the current iteration's instance.
package ir

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/machine"
)

// OpID names an operation within its Loop; IDs are dense indices into
// Loop.Ops.
type OpID int

// ValueID names a value within its Loop; IDs are dense indices into
// Loop.Values.
type ValueID int

// None marks a missing op or value reference.
const None = -1

// RegFile identifies which register file holds a value (Section 2.3).
type RegFile int

const (
	// RR is the rotating register file holding loop-variant addresses,
	// integers and floats. Register-pressure results concern this file.
	RR RegFile = iota
	// GPR is the static register file holding loop invariants.
	GPR
	// ICR is the rotating predicate file (1-bit iteration-control
	// registers) holding compare results and stage predicates.
	ICR
)

func (f RegFile) String() string {
	switch f {
	case RR:
		return "RR"
	case GPR:
		return "GPR"
	case ICR:
		return "ICR"
	}
	return fmt.Sprintf("RegFile(%d)", int(f))
}

// Type is the runtime type of a value, used by the interpreter, code
// generator and simulator.
type Type int

const (
	Int   Type = iota // 64-bit integer (also loop counters)
	Float             // 64-bit float (the paper normalizes scalars to one register)
	Addr              // address (array element index space)
	Pred              // 1-bit predicate
)

func (t Type) String() string {
	switch t {
	case Int:
		return "int"
	case Float:
		return "float"
	case Addr:
		return "addr"
	case Pred:
		return "pred"
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// Operand is a read of a value instance: the instance of Val computed
// Omega iterations before the iteration the reading op belongs to.
type Operand struct {
	Val   ValueID
	Omega int
}

// Value is one virtual register: a loop variant, a loop-invariant live-in,
// or a predicate.
type Value struct {
	ID   ValueID
	Name string
	File RegFile
	Type Type

	// Defs lists the defining operations. Empty for live-ins (loop
	// invariants, or loop-variant initial values fed in by the preheader
	// — a loop-variant live-in still has in-loop defs; a pure invariant
	// has none). Multiple defs arise only from if-converted merges and
	// must execute under mutually exclusive predicates.
	Defs []OpID

	// LiveOut records that the value is needed after the loop exits.
	LiveOut bool

	// Const holds a compile-time constant for def-less GPR values used as
	// literals; Valid distinguishes "constant zero" from "not a constant".
	Const      Scalar
	ConstValid bool
}

// IsVariant reports whether the value is computed inside the loop.
func (v *Value) IsVariant() bool { return len(v.Defs) > 0 }

// Scalar is a runtime scalar: exactly one of the fields is meaningful,
// selected by the Type of the value it instantiates.
type Scalar struct {
	I int64
	F float64
	B bool
}

// IntS, FloatS, PredS build Scalar constants.
func IntS(i int64) Scalar     { return Scalar{I: i} }
func FloatS(f float64) Scalar { return Scalar{F: f} }
func PredS(b bool) Scalar     { return Scalar{B: b} }

// Op is one machine operation of the loop body.
type Op struct {
	ID     OpID
	Opcode machine.Opcode

	// Args are the value operands, in opcode-defined order (e.g. Load
	// takes [addr]; Store takes [addr, data]; binary ops take [a, b]).
	Args []Operand

	// Result is the defined value, or None (stores, brtop).
	Result ValueID

	// Pred is the guarding predicate operand; nil means always execute.
	// PredNeg executes the op when the predicate is false (this lets
	// if-conversion guard an else-branch without waiting for a PNot).
	Pred    *Operand
	PredNeg bool

	// FU is the functional-unit instance (within the opcode's class) the
	// op was assigned to before scheduling. The paper's compiler performs
	// this pre-scheduling assignment, restricting each op to one issue
	// slot per cycle (Section 4.3).
	FU int

	// OnRecurrence marks ops that lie on a non-trivial recurrence
	// circuit; filled in by analysis (Table 2 reports the count).
	OnRecurrence bool
}

// DepKind classifies a dependence arc.
type DepKind int

const (
	// DepFlow is a true (read-after-write) register dependence; Val names
	// the value flowing along the arc. Flow arcs are derived from
	// operands by Loop.Finalize.
	DepFlow DepKind = iota
	// DepMem is a memory ordering dependence (store→load flow,
	// load→store anti, store→store output) discovered by dependence
	// analysis.
	DepMem
	// DepOrder is any other ordering constraint.
	DepOrder
)

func (k DepKind) String() string {
	switch k {
	case DepFlow:
		return "flow"
	case DepMem:
		return "mem"
	case DepOrder:
		return "order"
	}
	return fmt.Sprintf("DepKind(%d)", int(k))
}

// Dep is a dependence arc: in every feasible schedule,
//
//	time(To) + Omega·II ≥ time(From) + Latency.
//
// Omega (the paper's ω, the dependence distance) is the minimum number of
// iterations separating the two operations.
type Dep struct {
	From, To OpID
	Latency  int
	Omega    int
	Kind     DepKind
	Val      ValueID // value carried by a flow arc; None otherwise
}

// Loop is one schedulable loop body plus the metadata the experiments
// report.
type Loop struct {
	Name   string
	Mach   *machine.Desc
	Ops    []*Op
	Values []*Value

	// Deps holds every dependence arc, including the flow arcs derived
	// from operands by Finalize.
	Deps []Dep

	// extraDeps holds the arcs registered before Finalize (memory and
	// ordering arcs); kept so Finalize is idempotent.
	extraDeps []Dep

	// NumBB is the number of basic blocks the loop body had before
	// if-conversion (a Table 2 metric; 1 for straight-line bodies).
	NumBB int

	// TripCount is the known iteration count, or 0 if unknown at compile
	// time. The paper's compiler declines to pipeline loops with fewer
	// than 5 iterations.
	TripCount int

	// HasConditional records that the source body contained an IF
	// (Tables 3 and 4 classify loops by this and by HasRecurrence).
	HasConditional bool

	finalized bool
	gprCount  int // memoized by Finalize; see GPRCount
}

// NewLoop returns an empty loop body for the given machine.
func NewLoop(name string, m *machine.Desc) *Loop {
	return &Loop{Name: name, Mach: m, NumBB: 1}
}

// NewValue appends a value and returns it.
func (l *Loop) NewValue(name string, file RegFile, typ Type) *Value {
	v := &Value{ID: ValueID(len(l.Values)), Name: name, File: file, Type: typ}
	l.Values = append(l.Values, v)
	return v
}

// Const returns a fresh def-less GPR value holding a literal.
func (l *Loop) Const(name string, typ Type, s Scalar) *Value {
	v := l.NewValue(name, GPR, typ)
	v.Const = s
	v.ConstValid = true
	return v
}

// NewOp appends an operation defining result (which may be None) and
// returns it. Flow dependence arcs are derived later, by Finalize.
func (l *Loop) NewOp(code machine.Opcode, args []Operand, result ValueID) *Op {
	op := &Op{ID: OpID(len(l.Ops)), Opcode: code, Args: args, Result: result}
	l.Ops = append(l.Ops, op)
	if result != None {
		v := l.Values[result]
		v.Defs = append(v.Defs, op.ID)
	}
	return op
}

// AddDep registers a non-flow dependence arc (memory or ordering).
func (l *Loop) AddDep(d Dep) {
	if d.Kind == DepFlow {
		panic("ir: flow deps are derived from operands; do not add them")
	}
	d.Val = None
	l.extraDeps = append(l.extraDeps, d)
	l.finalized = false
}

// Op returns the operation with the given id.
func (l *Loop) Op(id OpID) *Op { return l.Ops[id] }

// Value returns the value with the given id.
func (l *Loop) Value(id ValueID) *Value { return l.Values[id] }

// reads returns every operand read by op, including its predicate.
func (op *Op) reads() []Operand {
	if op.Pred == nil {
		return op.Args
	}
	r := make([]Operand, 0, len(op.Args)+1)
	r = append(r, op.Args...)
	r = append(r, *op.Pred)
	return r
}

// Reads returns every operand read by op, including its predicate guard.
func (op *Op) Reads() []Operand { return op.reads() }

// Finalize derives flow dependence arcs from operands, assigns functional
// -unit instances round-robin within each class, marks recurrence
// membership, and validates the loop. It must be called (and succeed)
// before the loop is scheduled. Finalize is idempotent.
func (l *Loop) Finalize() error {
	if err := l.validate(); err != nil {
		return err
	}
	l.Deps = l.Deps[:0]
	// Flow arcs: def → use with the def's latency and the operand's omega.
	for _, op := range l.Ops {
		for _, rd := range op.reads() {
			v := l.Values[rd.Val]
			for _, def := range v.Defs {
				lat := l.Mach.Latency(l.Ops[def].Opcode)
				l.Deps = append(l.Deps, Dep{
					From: def, To: op.ID,
					Latency: lat, Omega: rd.Omega,
					Kind: DepFlow, Val: v.ID,
				})
			}
		}
	}
	l.Deps = append(l.Deps, l.extraDeps...)

	l.assignFUs()
	l.markRecurrences()
	l.gprCount = l.computeGPRCount()
	l.finalized = true
	return nil
}

// MustFinalize is Finalize for construction sites where an error is a
// programming bug (tests, the synthetic generator).
func (l *Loop) MustFinalize() {
	if err := l.Finalize(); err != nil {
		panic(err)
	}
}

// Finalized reports whether Finalize has run since the last mutation.
func (l *Loop) Finalized() bool { return l.finalized }

// assignFUs distributes ops round-robin over the instances of their unit
// class, mirroring the paper's pre-scheduling functional-unit assignment.
func (l *Loop) assignFUs() {
	next := make([]int, l.Mach.NumKinds())
	for _, op := range l.Ops {
		info := l.Mach.Info(op.Opcode)
		n := l.Mach.Count(info.Kind)
		op.FU = next[info.Kind] % n
		next[info.Kind]++
	}
}

// markRecurrences sets Op.OnRecurrence for every op lying on a
// non-trivial dependence circuit (a circuit through at least two ops).
// An op is on such a circuit exactly when, in the dependence graph minus
// self-arcs, some strongly connected component of size ≥ 2 contains it.
func (l *Loop) markRecurrences() {
	n := len(l.Ops)
	adj := make([][]int, n)
	for _, d := range l.Deps {
		if d.From != d.To {
			adj[d.From] = append(adj[d.From], int(d.To))
		}
	}
	comp := sccs(n, adj)
	size := map[int]int{}
	for _, c := range comp {
		size[c]++
	}
	for i, op := range l.Ops {
		op.OnRecurrence = size[comp[i]] >= 2
	}
}

// sccs computes strongly connected components with Tarjan's algorithm
// (iterative), returning the component index of each node.
func sccs(n int, adj [][]int) []int {
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	comp := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	next := 0
	ncomp := 0

	type frame struct{ v, ai int }
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames := []frame{{root, 0}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ai < len(adj[f.v]) {
				w := adj[f.v][f.ai]
				f.ai++
				if index[w] == unvisited {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp
}

// validate checks structural invariants; scheduling code relies on them.
func (l *Loop) validate() error {
	if l.Mach == nil {
		return fmt.Errorf("loop %s: no machine description", l.Name)
	}
	if len(l.Ops) == 0 {
		return fmt.Errorf("loop %s: empty body", l.Name)
	}
	brtops := 0
	for i, op := range l.Ops {
		if op.ID != OpID(i) {
			return fmt.Errorf("loop %s: op %d has id %d", l.Name, i, op.ID)
		}
		if !l.Mach.Supports(op.Opcode) {
			return &machine.UnsupportedOpError{Machine: l.Mach.Name, Op: op.Opcode}
		}
		if op.Opcode == machine.BrTop {
			brtops++
		}
		for _, rd := range op.reads() {
			if rd.Val < 0 || int(rd.Val) >= len(l.Values) {
				return fmt.Errorf("loop %s: op %v reads undefined value %d", l.Name, op.ID, rd.Val)
			}
			if rd.Omega < 0 {
				return fmt.Errorf("loop %s: op %v has negative omega", l.Name, op.ID)
			}
			v := l.Values[rd.Val]
			if rd.Omega > 0 && v.File == GPR {
				return fmt.Errorf("loop %s: op %v reads invariant %s with omega %d", l.Name, op.ID, v.Name, rd.Omega)
			}
			if len(v.Defs) == 0 && v.File != GPR {
				return fmt.Errorf("loop %s: op %v reads %s-file value %s that is never defined in the loop (loop-variant live-ins are recurrence values with preheader instances)", l.Name, op.ID, v.File, v.Name)
			}
		}
		if op.Pred != nil && l.Values[op.Pred.Val].Type != Pred {
			return fmt.Errorf("loop %s: op %v guarded by non-predicate %s", l.Name, op.ID, l.Values[op.Pred.Val].Name)
		}
		if op.Result != None {
			v := l.Values[op.Result]
			if v.File == GPR {
				return fmt.Errorf("loop %s: op %v writes loop-invariant file (value %s)", l.Name, op.ID, v.Name)
			}
			found := false
			for _, d := range v.Defs {
				if d == op.ID {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("loop %s: op %v not among defs of its result %s", l.Name, op.ID, v.Name)
			}
		}
	}
	if brtops > 1 {
		return fmt.Errorf("loop %s: %d brtop ops (at most one allowed)", l.Name, brtops)
	}
	for vi, v := range l.Values {
		if v.ID != ValueID(vi) {
			return fmt.Errorf("loop %s: value %d has id %d", l.Name, vi, v.ID)
		}
		if len(v.Defs) > 1 {
			// Multiple defs are legal only for predicated merges.
			for _, d := range v.Defs {
				if l.Ops[d].Pred == nil {
					return fmt.Errorf("loop %s: value %s has %d defs but def %v is unpredicated", l.Name, v.Name, len(v.Defs), d)
				}
			}
		}
	}
	for _, d := range l.extraDeps {
		if d.From < 0 || int(d.From) >= len(l.Ops) || d.To < 0 || int(d.To) >= len(l.Ops) {
			return fmt.Errorf("loop %s: dep arc references missing op", l.Name)
		}
		if d.Omega < 0 {
			return fmt.Errorf("loop %s: dep arc with negative omega", l.Name)
		}
	}
	return nil
}

// BrTop returns the loop-closing branch op, or nil if the body has none
// (synthetic scheduler-stress loops may omit it).
func (l *Loop) BrTop() *Op {
	for _, op := range l.Ops {
		if op.Opcode == machine.BrTop {
			return op
		}
	}
	return nil
}

// HasRecurrence reports whether any op lies on a non-trivial recurrence
// circuit. Valid after Finalize.
func (l *Loop) HasRecurrence() bool {
	for _, op := range l.Ops {
		if op.OnRecurrence {
			return true
		}
	}
	return false
}

// CountOps returns how many ops satisfy the predicate.
func (l *Loop) CountOps(pred func(*Op) bool) int {
	n := 0
	for _, op := range l.Ops {
		if pred(op) {
			n++
		}
	}
	return n
}

// GPRCount returns the number of loop-invariant registers the loop
// consumes: def-less GPR values actually read by some op (Figure 7).
// The count is memoized by Finalize, which every scheduled loop passes
// through, so the per-compile call is allocation-free.
func (l *Loop) GPRCount() int {
	if l.finalized {
		return l.gprCount
	}
	return l.computeGPRCount()
}

func (l *Loop) computeGPRCount() int {
	used := make([]bool, len(l.Values))
	for _, op := range l.Ops {
		for _, rd := range op.Args {
			used[rd.Val] = true
		}
		if op.Pred != nil {
			used[op.Pred.Val] = true
		}
	}
	n := 0
	for i, v := range l.Values {
		if v.File == GPR && used[i] {
			n++
		}
	}
	return n
}

// String renders the loop body as readable pseudo-assembly.
func (l *Loop) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loop %s (%d ops, %d values, %d bbs)\n", l.Name, len(l.Ops), len(l.Values), l.NumBB)
	for _, op := range l.Ops {
		b.WriteString("  ")
		b.WriteString(l.FormatOp(op))
		b.WriteByte('\n')
	}
	// Deterministic order for extra arcs.
	extras := append([]Dep(nil), l.extraDeps...)
	sort.Slice(extras, func(i, j int) bool {
		if extras[i].From != extras[j].From {
			return extras[i].From < extras[j].From
		}
		return extras[i].To < extras[j].To
	})
	for _, d := range extras {
		fmt.Fprintf(&b, "  dep %v->%v lat=%d omega=%d (%v)\n", d.From, d.To, d.Latency, d.Omega, d.Kind)
	}
	return b.String()
}

// FormatOp renders one op.
func (l *Loop) FormatOp(op *Op) string {
	var b strings.Builder
	if op.Pred != nil {
		neg := ""
		if op.PredNeg {
			neg = "!"
		}
		fmt.Fprintf(&b, "(%s%s) ", neg, l.operandString(*op.Pred))
	}
	if op.Result != None {
		fmt.Fprintf(&b, "%s = ", l.Values[op.Result].Name)
	}
	fmt.Fprintf(&b, "%v", op.Opcode)
	for i, a := range op.Args {
		if i == 0 {
			b.WriteByte(' ')
		} else {
			b.WriteString(", ")
		}
		b.WriteString(l.operandString(a))
	}
	fmt.Fprintf(&b, "   ; op%d %v.%d", int(op.ID), l.Mach.Info(op.Opcode).Kind, op.FU)
	return b.String()
}

func (l *Loop) operandString(o Operand) string {
	v := l.Values[o.Val]
	if o.Omega == 0 {
		return v.Name
	}
	return fmt.Sprintf("%s[-%d]", v.Name, o.Omega)
}
