package fixture

import (
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/rt"
)

// Runnable pairs a loop with a concrete execution environment, so the
// differential tests (interpreter vs generated kernel on the simulator)
// have well-defined inputs.
type Runnable struct {
	Loop  *ir.Loop
	Env   *rt.Env
	Trips int
}

// value looks a value up by name; fixture construction controls names.
func value(l *ir.Loop, name string) *ir.Value {
	for _, v := range l.Values {
		if v.Name == name {
			return v
		}
	}
	panic("fixture: no value named " + name)
}

// RunnableSample is the Figure 1 loop with both arrays materialized:
// x and y live at bases 0 and 64; the recurrences start from x(1), x(2),
// y(1), y(2) preheader instances, which also seed the memory image.
func RunnableSample(m *machine.Desc) Runnable {
	l := Sample(m)
	const trips = 40
	mem := make([]ir.Scalar, 128)
	// x(1)=0.25 x(2)=0.5 ; y(1)=1.5 y(2)=2.25 (indices 0,1 and 64,65).
	mem[0], mem[1] = ir.FloatS(0.25), ir.FloatS(0.5)
	mem[64], mem[65] = ir.FloatS(1.5), ir.FloatS(2.25)
	env := &rt.Env{
		Mem: mem,
		Init: map[rt.InstKey]ir.Scalar{
			{Val: value(l, "x").ID, Iter: -1}: ir.FloatS(0.5),
			{Val: value(l, "x").ID, Iter: -2}: ir.FloatS(0.25),
			{Val: value(l, "y").ID, Iter: -1}: ir.FloatS(2.25),
			{Val: value(l, "y").ID, Iter: -2}: ir.FloatS(1.5),
			// First stores land at x(3) → index 2 and y(3) → index 66.
			{Val: value(l, "px").ID, Iter: -1}: ir.IntS(1),
			{Val: value(l, "py").ID, Iter: -1}: ir.IntS(65),
		},
	}
	return Runnable{Loop: l, Env: env, Trips: trips}
}

// RunnableDaxpy streams y += a·x over 48 elements.
func RunnableDaxpy(m *machine.Desc) Runnable {
	l := Daxpy(m)
	const trips = 48
	mem := make([]ir.Scalar, 128)
	for i := 0; i < trips; i++ {
		mem[i] = ir.FloatS(float64(i) * 0.5)        // x
		mem[64+i] = ir.FloatS(10 + float64(i)*0.25) // y
	}
	env := &rt.Env{
		Mem: mem,
		GPR: map[ir.ValueID]ir.Scalar{value(l, "a").ID: ir.FloatS(3.0)},
		Init: map[rt.InstKey]ir.Scalar{
			{Val: value(l, "px").ID, Iter: -1}: ir.IntS(0),
			{Val: value(l, "py").ID, Iter: -1}: ir.IntS(64),
		},
	}
	return Runnable{Loop: l, Env: env, Trips: trips}
}

// RunnableReduction computes a dot product; the accumulator is live-out.
func RunnableReduction(m *machine.Desc) Runnable {
	l := Reduction(m)
	const trips = 32
	mem := make([]ir.Scalar, 96)
	for i := 0; i < trips; i++ {
		mem[i] = ir.FloatS(1 + float64(i%7))
		mem[48+i] = ir.FloatS(2 - float64(i%5)*0.5)
	}
	env := &rt.Env{
		Mem: mem,
		Init: map[rt.InstKey]ir.Scalar{
			{Val: value(l, "px").ID, Iter: -1}: ir.IntS(0),
			{Val: value(l, "py").ID, Iter: -1}: ir.IntS(48),
			{Val: value(l, "s").ID, Iter: -1}:  ir.FloatS(0),
		},
	}
	return Runnable{Loop: l, Env: env, Trips: trips}
}

// RunnableDivide exercises the non-pipelined divider end to end.
func RunnableDivide(m *machine.Desc) Runnable {
	l := Divide(m)
	const trips = 12
	mem := make([]ir.Scalar, 96)
	for i := 0; i < trips; i++ {
		mem[i] = ir.FloatS(float64(i + 1))      // y
		mem[32+i] = ir.FloatS(float64(2*i + 1)) // z
	}
	env := &rt.Env{
		Mem: mem,
		Init: map[rt.InstKey]ir.Scalar{
			{Val: value(l, "py").ID, Iter: -1}: ir.IntS(0),
			{Val: value(l, "pz").ID, Iter: -1}: ir.IntS(32),
			{Val: value(l, "px").ID, Iter: -1}: ir.IntS(64),
		},
	}
	return Runnable{Loop: l, Env: env, Trips: trips}
}

// RunnableConditional exercises predicated execution and the multi-def
// merge: positive elements scale by s1, the rest by s2.
func RunnableConditional(m *machine.Desc) Runnable {
	l := Conditional(m)
	const trips = 40
	mem := make([]ir.Scalar, 128)
	for i := 0; i < trips; i++ {
		sign := 1.0
		if i%3 == 0 {
			sign = -1.0
		}
		mem[i] = ir.FloatS(sign * float64(i+1) * 0.5)
	}
	env := &rt.Env{
		Mem: mem,
		GPR: map[ir.ValueID]ir.Scalar{
			value(l, "s1").ID: ir.FloatS(2.0),
			value(l, "s2").ID: ir.FloatS(-0.5),
		},
		Init: map[rt.InstKey]ir.Scalar{
			{Val: value(l, "px").ID, Iter: -1}: ir.IntS(0),
			{Val: value(l, "py").ID, Iter: -1}: ir.IntS(64),
		},
	}
	return Runnable{Loop: l, Env: env, Trips: trips}
}

// Runnables returns every runnable fixture on the given machine.
func Runnables(m *machine.Desc) []Runnable {
	return []Runnable{
		RunnableSample(m),
		RunnableDaxpy(m),
		RunnableReduction(m),
		RunnableDivide(m),
		RunnableConditional(m),
	}
}
