package fixture

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
)

func TestAllFixturesWellFormed(t *testing.T) {
	m := machine.Cydra()
	names := map[string]bool{}
	for _, l := range All(m) {
		if !l.Finalized() {
			t.Errorf("%s: not finalized", l.Name)
		}
		if names[l.Name] {
			t.Errorf("duplicate fixture name %s", l.Name)
		}
		names[l.Name] = true
		if l.BrTop() == nil && l.Name != "sample-core" {
			t.Errorf("%s: missing brtop", l.Name)
		}
	}
}

// Every runnable fixture's environment must keep all addresses in
// bounds for its full trip count — checked here statically against the
// recorded pointer initials, so an env regression fails fast rather
// than as an obscure interpreter error.
func TestRunnableEnvsInBounds(t *testing.T) {
	m := machine.Cydra()
	for _, r := range Runnables(m) {
		for key, val := range r.Env.Init {
			v := r.Loop.Value(key.Val)
			if v.Type != ir.Addr {
				continue
			}
			// Pointers advance one element per iteration.
			last := val.I + int64(r.Trips)
			if val.I < -1 || last > int64(len(r.Env.Mem)) {
				t.Errorf("%s: pointer %s spans [%d,%d] outside memory of %d",
					r.Loop.Name, v.Name, val.I, last, len(r.Env.Mem))
			}
		}
		if r.Trips < 1 {
			t.Errorf("%s: degenerate trip count", r.Loop.Name)
		}
	}
}

func TestSampleMatchesPaperStructure(t *testing.T) {
	m := machine.Cydra()
	l := Sample(m)
	// Figure 1 after load/store elimination: 2 adds, 2 stores, 2 address
	// bumps, brtop — and no loads at all.
	if n := l.CountOps(func(op *ir.Op) bool { return op.Opcode == machine.Load }); n != 0 {
		t.Errorf("sample loop should have no loads, got %d", n)
	}
	if len(l.Ops) != 7 {
		t.Errorf("sample loop has %d ops, want 7", len(l.Ops))
	}
	if !l.HasRecurrence() {
		t.Error("cross-coupled recurrence expected")
	}
}
