// Package fixture constructs well-understood loop bodies used across the
// test suites and examples, including the paper's running example
// (Figure 1), whose lifetimes, LiveVector and bounds the paper works out
// by hand — those hand-computed numbers anchor our analyses.
package fixture

import (
	"repro/internal/ir"
	"repro/internal/machine"
)

// Sample builds the loop of Figure 1 after load/store elimination:
//
//	do i = 3, n
//	  x(i) = x(i-1) + y(i-2)
//	  y(i) = y(i-1) + x(i-2)
//	end do
//
// The cross-iteration loads have been forwarded through registers
// (Section 2.3), so each iteration is two floating adds, two stores, two
// address increments, and the loop-closing brtop. With II = 2, scheduling
// the x-add at cycle 0 and the y-add at cycle 1 reproduces the paper's
// lifetimes: x(i) live over [0,5) and y(i) live over [1,4), giving
// LiveVector ⟨4,4⟩ (Figures 3 and 4).
func Sample(m *machine.Desc) *ir.Loop {
	l := ir.NewLoop("sample", m)
	x := l.NewValue("x", ir.RR, ir.Float)
	y := l.NewValue("y", ir.RR, ir.Float)
	px := l.NewValue("px", ir.RR, ir.Addr)
	py := l.NewValue("py", ir.RR, ir.Addr)
	one := l.Const("one", ir.Addr, ir.IntS(1))

	// x = x[-1] + y[-2]
	l.NewOp(machine.FAdd, []ir.Operand{{Val: x.ID, Omega: 1}, {Val: y.ID, Omega: 2}}, x.ID)
	// y = y[-1] + x[-2]
	l.NewOp(machine.FAdd, []ir.Operand{{Val: y.ID, Omega: 1}, {Val: x.ID, Omega: 2}}, y.ID)
	// px = px[-1] + 1 ; py = py[-1] + 1
	l.NewOp(machine.AAdd, []ir.Operand{{Val: px.ID, Omega: 1}, {Val: one.ID}}, px.ID)
	l.NewOp(machine.AAdd, []ir.Operand{{Val: py.ID, Omega: 1}, {Val: one.ID}}, py.ID)
	// store x -> (px) ; store y -> (py)
	l.NewOp(machine.Store, []ir.Operand{{Val: px.ID}, {Val: x.ID}}, ir.None)
	l.NewOp(machine.Store, []ir.Operand{{Val: py.ID}, {Val: y.ID}}, ir.None)
	l.NewOp(machine.BrTop, nil, ir.None)

	x.LiveOut = true
	y.LiveOut = true
	l.TripCount = 998
	l.MustFinalize()
	return l
}

// SampleCore builds just the two-add recurrence core of Figure 1 (no
// stores, pointers or brtop), the minimal body on which the paper works
// out lifetimes x:[0,5) and y:[1,4) at II = 2.
func SampleCore(m *machine.Desc) *ir.Loop {
	l := ir.NewLoop("sample-core", m)
	x := l.NewValue("x", ir.RR, ir.Float)
	y := l.NewValue("y", ir.RR, ir.Float)
	l.NewOp(machine.FAdd, []ir.Operand{{Val: x.ID, Omega: 1}, {Val: y.ID, Omega: 2}}, x.ID)
	l.NewOp(machine.FAdd, []ir.Operand{{Val: y.ID, Omega: 1}, {Val: x.ID, Omega: 2}}, y.ID)
	x.LiveOut = true
	y.LiveOut = true
	l.MustFinalize()
	return l
}

// Daxpy builds y(i) = y(i) + a*x(i): a recurrence-free streaming loop
// (loads, a multiply, an add, a store, pointer bumps, brtop). Its MII is
// purely resource-constrained.
func Daxpy(m *machine.Desc) *ir.Loop {
	l := ir.NewLoop("daxpy", m)
	a := l.NewValue("a", ir.GPR, ir.Float)
	px := l.NewValue("px", ir.RR, ir.Addr)
	py := l.NewValue("py", ir.RR, ir.Addr)
	xv := l.NewValue("xv", ir.RR, ir.Float)
	yv := l.NewValue("yv", ir.RR, ir.Float)
	ax := l.NewValue("ax", ir.RR, ir.Float)
	s := l.NewValue("s", ir.RR, ir.Float)
	one := l.Const("one", ir.Addr, ir.IntS(1))

	l.NewOp(machine.Load, []ir.Operand{{Val: px.ID, Omega: 1}}, xv.ID)
	l.NewOp(machine.Load, []ir.Operand{{Val: py.ID, Omega: 1}}, yv.ID)
	l.NewOp(machine.FMul, []ir.Operand{{Val: a.ID}, {Val: xv.ID}}, ax.ID)
	l.NewOp(machine.FAdd, []ir.Operand{{Val: yv.ID}, {Val: ax.ID}}, s.ID)
	st := l.NewOp(machine.Store, []ir.Operand{{Val: py.ID, Omega: 1}, {Val: s.ID}}, ir.None)
	ld := l.Ops[1]
	// The store to y(i) must stay ordered after the load of y(i) from
	// the same address in the same iteration (anti) and before the next
	// iteration's accesses only via distinct addresses (pointers bump),
	// so a single same-iteration anti arc suffices.
	l.AddDep(ir.Dep{From: ld.ID, To: st.ID, Latency: 0, Omega: 0, Kind: ir.DepMem})
	l.NewOp(machine.AAdd, []ir.Operand{{Val: px.ID, Omega: 1}, {Val: one.ID}}, px.ID)
	l.NewOp(machine.AAdd, []ir.Operand{{Val: py.ID, Omega: 1}, {Val: one.ID}}, py.ID)
	l.NewOp(machine.BrTop, nil, ir.None)
	l.TripCount = 1000
	l.MustFinalize()
	return l
}

// Reduction builds s = s + x(i)*y(i): a dot product with a self-recurrence
// accumulator that is not referenced until the loop exits — the example
// Section 5.2 gives of an operation with neither stretchable inputs nor
// outputs.
func Reduction(m *machine.Desc) *ir.Loop {
	l := ir.NewLoop("dot", m)
	px := l.NewValue("px", ir.RR, ir.Addr)
	py := l.NewValue("py", ir.RR, ir.Addr)
	xv := l.NewValue("xv", ir.RR, ir.Float)
	yv := l.NewValue("yv", ir.RR, ir.Float)
	p := l.NewValue("p", ir.RR, ir.Float)
	s := l.NewValue("s", ir.RR, ir.Float)
	one := l.Const("one", ir.Addr, ir.IntS(1))

	l.NewOp(machine.Load, []ir.Operand{{Val: px.ID, Omega: 1}}, xv.ID)
	l.NewOp(machine.Load, []ir.Operand{{Val: py.ID, Omega: 1}}, yv.ID)
	l.NewOp(machine.FMul, []ir.Operand{{Val: xv.ID}, {Val: yv.ID}}, p.ID)
	l.NewOp(machine.FAdd, []ir.Operand{{Val: s.ID, Omega: 1}, {Val: p.ID}}, s.ID)
	l.NewOp(machine.AAdd, []ir.Operand{{Val: px.ID, Omega: 1}, {Val: one.ID}}, px.ID)
	l.NewOp(machine.AAdd, []ir.Operand{{Val: py.ID, Omega: 1}, {Val: one.ID}}, py.ID)
	l.NewOp(machine.BrTop, nil, ir.None)
	s.LiveOut = true
	l.TripCount = 1000
	l.MustFinalize()
	return l
}

// Divide builds x(i) = y(i)/z(i) + sqrt(y(i)): a loop dominated by the
// non-pipelined divider, whose 17- and 21-cycle reservation patterns
// drive ResMII to 38 and exercise the divider slack-halving rule.
func Divide(m *machine.Desc) *ir.Loop {
	l := ir.NewLoop("divide", m)
	py := l.NewValue("py", ir.RR, ir.Addr)
	pz := l.NewValue("pz", ir.RR, ir.Addr)
	pxo := l.NewValue("px", ir.RR, ir.Addr)
	yv := l.NewValue("yv", ir.RR, ir.Float)
	zv := l.NewValue("zv", ir.RR, ir.Float)
	q := l.NewValue("q", ir.RR, ir.Float)
	r := l.NewValue("r", ir.RR, ir.Float)
	sum := l.NewValue("sum", ir.RR, ir.Float)
	one := l.Const("one", ir.Addr, ir.IntS(1))

	l.NewOp(machine.Load, []ir.Operand{{Val: py.ID, Omega: 1}}, yv.ID)
	l.NewOp(machine.Load, []ir.Operand{{Val: pz.ID, Omega: 1}}, zv.ID)
	l.NewOp(machine.FDiv, []ir.Operand{{Val: yv.ID}, {Val: zv.ID}}, q.ID)
	l.NewOp(machine.FSqrt, []ir.Operand{{Val: yv.ID}}, r.ID)
	l.NewOp(machine.FAdd, []ir.Operand{{Val: q.ID}, {Val: r.ID}}, sum.ID)
	l.NewOp(machine.Store, []ir.Operand{{Val: pxo.ID, Omega: 1}, {Val: sum.ID}}, ir.None)
	l.NewOp(machine.AAdd, []ir.Operand{{Val: py.ID, Omega: 1}, {Val: one.ID}}, py.ID)
	l.NewOp(machine.AAdd, []ir.Operand{{Val: pz.ID, Omega: 1}, {Val: one.ID}}, pz.ID)
	l.NewOp(machine.AAdd, []ir.Operand{{Val: pxo.ID, Omega: 1}, {Val: one.ID}}, pxo.ID)
	l.NewOp(machine.BrTop, nil, ir.None)
	l.TripCount = 500
	l.MustFinalize()
	return l
}

// Conditional builds an if-converted body:
//
//	if (x(i) > 0) then t = x(i)*s1 else t = x(i)*s2 ; y(i) = t
//
// The compare produces an ICR predicate; both multiplies are predicated
// (one on the false sense) and define the same merge value t, the
// multi-def form predicated hardware uses instead of a select.
func Conditional(m *machine.Desc) *ir.Loop {
	l := ir.NewLoop("conditional", m)
	px := l.NewValue("px", ir.RR, ir.Addr)
	pyo := l.NewValue("py", ir.RR, ir.Addr)
	xv := l.NewValue("xv", ir.RR, ir.Float)
	s1 := l.NewValue("s1", ir.GPR, ir.Float)
	s2 := l.NewValue("s2", ir.GPR, ir.Float)
	zero := l.Const("zero", ir.Float, ir.FloatS(0))
	p := l.NewValue("p", ir.ICR, ir.Pred)
	t := l.NewValue("t", ir.RR, ir.Float)
	one := l.Const("one", ir.Addr, ir.IntS(1))

	l.NewOp(machine.Load, []ir.Operand{{Val: px.ID, Omega: 1}}, xv.ID)
	l.NewOp(machine.FCmpGT, []ir.Operand{{Val: xv.ID}, {Val: zero.ID}}, p.ID)
	thenOp := l.NewOp(machine.FMul, []ir.Operand{{Val: xv.ID}, {Val: s1.ID}}, t.ID)
	thenOp.Pred = &ir.Operand{Val: p.ID}
	elseOp := l.NewOp(machine.FMul, []ir.Operand{{Val: xv.ID}, {Val: s2.ID}}, t.ID)
	elseOp.Pred = &ir.Operand{Val: p.ID}
	elseOp.PredNeg = true
	l.NewOp(machine.Store, []ir.Operand{{Val: pyo.ID, Omega: 1}, {Val: t.ID}}, ir.None)
	l.NewOp(machine.AAdd, []ir.Operand{{Val: px.ID, Omega: 1}, {Val: one.ID}}, px.ID)
	l.NewOp(machine.AAdd, []ir.Operand{{Val: pyo.ID, Omega: 1}, {Val: one.ID}}, pyo.ID)
	l.NewOp(machine.BrTop, nil, ir.None)
	l.NumBB = 4
	l.HasConditional = true
	l.TripCount = 1000
	l.MustFinalize()
	return l
}

// All returns every fixture loop on the given machine.
func All(m *machine.Desc) []*ir.Loop {
	return []*ir.Loop{Sample(m), SampleCore(m), Daxpy(m), Reduction(m), Divide(m), Conditional(m)}
}
