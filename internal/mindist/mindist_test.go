package mindist

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/fixture"
	"repro/internal/ir"
	"repro/internal/machine"
)

func sample(t *testing.T) *ir.Loop {
	t.Helper()
	return fixture.SampleCore(machine.Cydra())
}

// The paper's running example: two cross-coupled adds with ω=1 self
// recurrences and ω=2 cross recurrences, latency 1 each, at II=2.
func TestSampleCoreDistances(t *testing.T) {
	l := sample(t)
	md, err := Compute(l, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Direct self arc: latency 1 − 1·2 = −1, but MinDist(x,x) is 0 by
	// definition.
	if d := md.Dist(0, 0); d != 0 {
		t.Errorf("Dist(xadd,xadd) = %d, want 0", d)
	}
	// xadd → yadd: only the ω=2 flow arc x→(use in yadd): 1 − 2·2 = −3.
	if d := md.Dist(0, 1); d != -3 {
		t.Errorf("Dist(xadd,yadd) = %d, want -3", d)
	}
	if d := md.Dist(md.Start(), 0); d != 0 {
		t.Errorf("Dist(Start,xadd) = %d, want 0", d)
	}
	// Critical path: both adds can issue at cycle 0; latency 1.
	if got := md.CriticalPath(); got != 1 {
		t.Errorf("critical path = %d, want 1", got)
	}
}

func TestInfeasibleIIDetected(t *testing.T) {
	// At II=0 the framework panics; at II below RecMII Compute must
	// report a positive circuit. Build a circuit forcing II ≥ 3:
	// a→b lat 2 ω 0; b→a lat 1 ω 1 ⇒ L=3, Ω=1.
	l := ir.NewLoop("tight", machine.Cydra())
	v1 := l.NewValue("v1", ir.RR, ir.Float)
	v2 := l.NewValue("v2", ir.RR, ir.Float)
	a := l.NewOp(machine.FMul, []ir.Operand{{Val: v2.ID, Omega: 1}, {Val: v2.ID, Omega: 1}}, v1.ID)
	b := l.NewOp(machine.FAdd, []ir.Operand{{Val: v1.ID}, {Val: v1.ID}}, v2.ID)
	_ = a
	_ = b
	l.MustFinalize()
	if _, err := Compute(l, 2); err == nil {
		t.Fatal("want infeasibility at II=2 (RecMII=3)")
	} else {
		var inf *ErrInfeasible
		if !errors.As(err, &inf) {
			t.Fatalf("want ErrInfeasible, got %v", err)
		}
	}
	if _, err := Compute(l, 3); err != nil {
		t.Fatalf("II=3 should be feasible: %v", err)
	}
}

// MinLT on the paper's example at II=2: x's longest flow dependence is
// into the y-add two iterations later. MinDist(xadd,yadd) = −3, so
// MinLT(x) = 2·2 + (−3) = 1... plus the ω=1 self use: 1·2 + 0? The self
// use is from xadd to xadd: ω·II + MinDist = 2 + 0 = 2. The true bound
// must not exceed the achieved lifetime of 5 and must be at least the
// def latency.
func TestMinLTSampleCore(t *testing.T) {
	l := sample(t)
	md, err := Compute(l, 2)
	if err != nil {
		t.Fatal(err)
	}
	ltx := MinLT(l, md, 0) // value x
	if ltx < 1 || ltx > 5 {
		t.Errorf("MinLT(x) = %d, want within [1,5]", ltx)
	}
	// MinAvg = Σ ⌈MinLT/II⌉ over RR variants; with two values of MinLT 2
	// at II 2 that is 2.
	avg := MinAvg(l, md, ir.RR)
	if avg < 2 {
		t.Errorf("MinAvg = %d, want ≥ 2", avg)
	}
}

// Property: MinDist obeys the triangle inequality as a longest-path
// relation — Dist(x,z) ≥ Dist(x,y) + Dist(y,z) whenever both legs exist —
// and Dist(x,x) == 0 at feasible IIs, on random dependence graphs.
func TestMinDistProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		l := randomAcyclicLoop(rng)
		ii := 1 + rng.Intn(6)
		md, err := Compute(l, ii)
		if err != nil {
			// Random ω on back arcs can make small IIs infeasible: fine,
			// retry at a large II which must succeed for acyclic cores.
			md, err = Compute(l, 64)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
		n := md.N() + 2
		for x := 0; x < n; x++ {
			if md.Dist(x, x) != 0 {
				t.Fatalf("trial %d: Dist(%d,%d) = %d, want 0", trial, x, x, md.Dist(x, x))
			}
			for y := 0; y < n; y++ {
				dxy := md.Dist(x, y)
				if dxy == NoPath {
					continue
				}
				for z := 0; z < n; z++ {
					dyz := md.Dist(y, z)
					if dyz == NoPath {
						continue
					}
					if dxz := md.Dist(x, z); dxz < dxy+dyz {
						t.Fatalf("trial %d: triangle violated: d(%d,%d)=%d < %d+%d", trial, x, z, dxz, dxy, dyz)
					}
				}
			}
		}
	}
}

// randomAcyclicLoop builds a loop whose forward arcs are acyclic but
// whose operands may carry ω ≥ 1 back-references, the common shape of
// real loop bodies.
func randomAcyclicLoop(rng *rand.Rand) *ir.Loop {
	m := machine.Cydra()
	l := ir.NewLoop("rand", m)
	count := 3 + rng.Intn(8)
	vals := make([]*ir.Value, 0, count)
	for i := 0; i < count; i++ {
		v := l.NewValue("v", ir.RR, ir.Float)
		var args []ir.Operand
		if len(vals) > 0 && rng.Intn(3) > 0 {
			w := vals[rng.Intn(len(vals))]
			args = append(args, ir.Operand{Val: w.ID})
		}
		// occasional loop-carried self/backward use
		if rng.Intn(3) == 0 {
			args = append(args, ir.Operand{Val: v.ID, Omega: 1 + rng.Intn(2)})
		}
		if len(args) == 0 {
			args = append(args, ir.Operand{Val: v.ID, Omega: 1})
		}
		for len(args) < 2 {
			args = append(args, args[0])
		}
		l.NewOp(machine.FAdd, args[:2], v.ID)
		vals = append(vals, v)
	}
	l.MustFinalize()
	return l
}
