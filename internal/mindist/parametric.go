// Parametric MinDist: the scheduler retries a loop at increasing IIs,
// and every retry needs the full MinDist relation at the new II. The
// direct route recomputes the O(n³) Floyd–Warshall from scratch per II,
// yet the only II-dependence in the arc costs is linear: a path with
// total latency L and total distance Ω costs L − Ω·II at every II. A
// single Floyd–Warshall over Pareto-optimal (L, Ω) pairs therefore
// captures MinDist for all IIs at once, after which any particular table
// instantiates in O(n²·f) where f is the (tiny) frontier size.
//
// Correctness: pair (L₁, Ω₁) dominates (L₂, Ω₂) when L₁ ≥ L₂ and
// Ω₁ ≤ Ω₂ — then L₁ − Ω₁·II ≥ L₂ − Ω₂·II for every II ≥ 0, so pruning
// dominated pairs never loses the maximum. The frontier covers every
// simple path (the usual Floyd–Warshall induction, with dominance a
// congruence under path concatenation); at any feasible II all
// dependence circuits cost ≤ 0, so the best path is simple and the
// instantiated table equals the direct computation exactly. Diagonal
// frontiers cover every simple circuit, and a positive-cost circuit at
// some II implies a positive-cost *simple* circuit, so infeasibility
// detection is exact as well.
package mindist

import (
	"errors"

	"repro/internal/ir"
	"repro/internal/obs"
)

// DefaultFrontierCap bounds the Pareto frontier per op pair. Loops whose
// recurrence structure exceeds it (many circuits with incomparable
// latency/distance trade-offs) fall back to the direct computation.
const DefaultFrontierCap = 12

// ErrTooComplex reports that some pair's Pareto frontier exceeded the
// cap; callers should fall back to Compute.
var ErrTooComplex = errors.New("mindist: Pareto frontier exceeds cap")

// ErrStopped reports that a stop poll (Cache.SetStop) asked a
// long-running MinDist construction to abandon its work — the
// scheduler's budget plumbing, so a deadline bounds even the O(n³)
// analyses.
var ErrStopped = errors.New("mindist: computation stopped by the caller")

// stopCheckStride is how many Floyd–Warshall pivots run between stop
// polls: the poll reads the clock, so it stays off the inner loops.
const stopCheckStride = 8

// pathPair is one Pareto-optimal (Σlatency, Σω) over the paths between a
// pair of ops; its cost at a given II is lat − omega·II.
type pathPair struct {
	lat, omega int
}

// Parametric is the II-independent MinDist relation of one loop.
type Parametric struct {
	n     int // real ops; Start = n, Stop = n+1
	width int
	sets  [][]pathPair // Pareto frontier per (x, y), sorted by omega asc, lat asc
}

// insertPair folds one candidate into a frontier kept sorted by
// ascending omega with strictly ascending lat (any other order is
// dominated). It reports the updated frontier.
func insertPair(set []pathPair, p pathPair) []pathPair {
	// Find the insertion point; a pair with omega ≤ p.omega and
	// lat ≥ p.lat dominates p.
	i := 0
	for i < len(set) && set[i].omega < p.omega {
		i++
	}
	if i > 0 && set[i-1].lat >= p.lat {
		return set // dominated by a shorter-distance pair
	}
	if i < len(set) && set[i].omega == p.omega {
		if set[i].lat >= p.lat {
			return set
		}
		set[i].lat = p.lat
	} else {
		set = append(set, pathPair{})
		copy(set[i+1:], set[i:])
		set[i] = p
	}
	// Drop longer-distance pairs that p now dominates.
	j := i + 1
	for j < len(set) && set[j].lat <= set[i].lat {
		j++
	}
	if j > i+1 {
		set = append(set[:i+1], set[j:]...)
	}
	return set
}

// NewParametric runs the one-time all-IIs Floyd–Warshall. It returns
// ErrTooComplex when any frontier would exceed frontierCap (≤ 0 means
// DefaultFrontierCap).
func NewParametric(l *ir.Loop, frontierCap int) (*Parametric, error) {
	return newParametric(l, frontierCap, nil)
}

// newParametric is NewParametric with an optional stop poll consulted
// once per Floyd–Warshall pivot.
func newParametric(l *ir.Loop, frontierCap int, poll func() bool) (*Parametric, error) {
	return newParametricIn(l, frontierCap, poll, nil)
}

// newParametricIn is newParametric writing into reuse when non-nil: the
// outer sets slice and every frontier keep their capacity across runs,
// so a pooled scratch's one-time build allocates only when a frontier
// outgrows all previous loops'.
func newParametricIn(l *ir.Loop, frontierCap int, poll func() bool, reuse *Parametric) (*Parametric, error) {
	if !l.Finalized() {
		panic("mindist: loop not finalized")
	}
	if frontierCap <= 0 {
		frontierCap = DefaultFrontierCap
	}
	n := len(l.Ops)
	w := n + 2
	p := reuse
	if p == nil {
		p = &Parametric{}
	}
	p.n, p.width = n, w
	if cap(p.sets) >= w*w {
		p.sets = p.sets[:w*w]
		for i := range p.sets {
			p.sets[i] = p.sets[i][:0]
		}
	} else {
		p.sets = make([][]pathPair, w*w)
	}
	relax := func(x, y, lat, omega int) {
		p.sets[x*w+y] = insertPair(p.sets[x*w+y], pathPair{lat, omega})
	}
	for _, dep := range l.Deps {
		relax(int(dep.From), int(dep.To), dep.Latency, dep.Omega)
	}
	start, stop := n, n+1
	for i, op := range l.Ops {
		relax(start, i, 0, 0)
		relax(i, stop, l.Mach.Latency(op.Opcode), 0)
	}
	relax(start, stop, 0, 0)
	for x := 0; x < w; x++ {
		relax(x, x, 0, 0) // MinDist(x, x) = 0 by definition
	}

	// Floyd–Warshall over frontiers, maximizing at every II at once.
	for k := 0; k < w; k++ {
		if poll != nil && k%stopCheckStride == 0 && poll() {
			return nil, ErrStopped
		}
		for x := 0; x < w; x++ {
			if x == k {
				continue
			}
			a := p.sets[x*w+k]
			if len(a) == 0 {
				continue
			}
			for y := 0; y < w; y++ {
				if y == k {
					continue
				}
				b := p.sets[k*w+y]
				if len(b) == 0 {
					continue
				}
				set := p.sets[x*w+y]
				for _, pa := range a {
					for _, pb := range b {
						set = insertPair(set, pathPair{pa.lat + pb.lat, pa.omega + pb.omega})
					}
				}
				if len(set) > frontierCap {
					return nil, ErrTooComplex
				}
				p.sets[x*w+y] = set
			}
		}
	}
	return p, nil
}

// Instantiate evaluates the parametric relation at one II, writing into
// reuse when its backing store fits (pass nil to allocate). Like
// Compute, it reports ErrInfeasible when the II admits a positive-cost
// dependence circuit.
func (p *Parametric) Instantiate(ii int, reuse *Table) (*Table, error) {
	if ii < 1 {
		panic("mindist: II must be positive")
	}
	t := reuse
	if t == nil {
		t = &Table{}
	}
	t.sizeFor(p.n)
	t.II = ii
	for i, set := range p.sets {
		best := NoPath
		for _, pr := range set {
			if c := pr.lat - pr.omega*ii; c > best {
				best = c
			}
		}
		t.d[i] = best
	}
	for x := 0; x < p.width; x++ {
		if t.d[x*p.width+x] > 0 {
			return nil, &ErrInfeasible{II: ii}
		}
	}
	return t, nil
}

// Cache amortizes MinDist construction across the II retries of one
// scheduling run. The first request computes directly (a loop that
// schedules at its first II — the common case — pays nothing extra); a
// retry builds the parametric relation once and instantiates every
// later request in O(n²), falling back to direct computation when the
// loop is too complex for the frontier cap. The returned *Table's
// backing store is reused: each At call invalidates the previous one.
type Cache struct {
	l         *ir.Loop
	buf       *Table
	par       *Parametric
	parReuse  *Parametric // scratch store for the one-time build (may be nil)
	parFailed bool
	calls     int
	stop      func() bool
	tr        *obs.Trace
}

// NewCache returns an empty cache for the loop.
func NewCache(l *ir.Loop) *Cache { return &Cache{l: l} }

// Scratch is the pooled MinDist state of one compile: a cache whose
// instantiation buffer and parametric frontier store persist across
// compiles. CacheFor rebinds it to a loop; Reset drops every reference
// to per-compile data (the loop, the stop poll's captured context, the
// trace) while keeping the integer backing stores, so a pooled Scratch
// retains no request data between owners.
type Scratch struct {
	cache Cache
	par   Parametric // frontier store reused by the cache's one-time build
}

// CacheFor returns the scratch's cache rebound to l. The returned cache
// is owned by the scratch: tables it hands out are invalidated by the
// next CacheFor or Reset, so callers that publish a table must Clone it.
func (s *Scratch) CacheFor(l *ir.Loop) *Cache {
	c := &s.cache
	c.l = l
	c.par = nil
	c.parReuse = &s.par
	c.parFailed = false
	c.calls = 0
	c.stop = nil
	c.tr = nil
	return c
}

// Reset clears every per-compile reference (loop, poll closure, trace)
// and keeps the backing stores for the next owner.
func (s *Scratch) Reset() {
	c := &s.cache
	c.l = nil
	c.par = nil
	c.parReuse = nil
	c.parFailed = false
	c.calls = 0
	c.stop = nil
	c.tr = nil
}

// SetStop installs a poll consulted periodically during table
// construction; when it returns true the in-flight computation is
// abandoned and At returns ErrStopped. A nil poll (the default)
// disables the checks entirely. The scheduler wires its budget guard
// here so deadlines bound even the O(n³) MinDist work.
func (c *Cache) SetStop(stop func() bool) { c.stop = stop }

// SetTrace attaches an observability trace: each At call then records a
// "mindist" span carrying the II and the mode that answered it (direct
// Floyd–Warshall or parametric instantiation), and the one-time
// parametric build records its own "mindist-parametric" span. A nil
// trace (the default) records nothing.
func (c *Cache) SetTrace(tr *obs.Trace) { c.tr = tr }

// At returns the loop's MinDist table at ii, ErrInfeasible, or
// ErrStopped when the stop poll fired.
func (c *Cache) At(ii int) (*Table, error) {
	c.calls++
	if c.calls > 1 && c.par == nil && !c.parFailed {
		sp := c.tr.Start("mindist-parametric")
		p, err := newParametricIn(c.l, DefaultFrontierCap, c.stop, c.parReuse)
		switch {
		case err == ErrStopped:
			sp.End(obs.OutcomeBudgetExhausted)
			return nil, err
		case err != nil:
			sp.Str("fallback", "too-complex").End(obs.OutcomeGiveUp)
			c.parFailed = true
		default:
			sp.End(obs.OutcomeOK)
			c.par = p
		}
	}
	var (
		t   *Table
		err error
	)
	sp := c.tr.Start("mindist").Int("ii", int64(ii))
	if c.par != nil {
		sp.Str("mode", "parametric")
		t, err = c.par.Instantiate(ii, c.buf)
	} else {
		sp.Str("mode", "direct")
		t, err = computeInto(c.l, ii, c.buf, c.stop)
	}
	if err != nil {
		sp.End(cacheOutcome(err))
		return nil, err // c.buf keeps any previously allocated store
	}
	sp.End(obs.OutcomeOK)
	c.buf = t
	return t, nil
}

// cacheOutcome classifies an At error for its span.
func cacheOutcome(err error) string {
	if errors.Is(err, ErrStopped) {
		return obs.OutcomeBudgetExhausted
	}
	return obs.OutcomeInfeasible
}
