package mindist_test

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/fixture"
	"repro/internal/frontend"
	"repro/internal/ir"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/mii"
	"repro/internal/mindist"
)

// sameTable asserts every entry of the two tables matches.
func sameTable(t *testing.T, name string, ii int, want, got *mindist.Table) {
	t.Helper()
	if want.N() != got.N() {
		t.Fatalf("%s II=%d: size %d vs %d", name, ii, want.N(), got.N())
	}
	for x := 0; x <= want.N()+1; x++ {
		for y := 0; y <= want.N()+1; y++ {
			if want.Dist(x, y) != got.Dist(x, y) {
				t.Fatalf("%s II=%d: MinDist(%d,%d) direct %d, parametric %d",
					name, ii, x, y, want.Dist(x, y), got.Dist(x, y))
			}
		}
	}
}

// corpus returns every kernel loop plus a batch of seeded synthetics.
func corpus(t *testing.T) []*loopgen.Loop {
	t.Helper()
	m := machine.Cydra()
	ks, err := loopgen.Kernels(m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(271828))
	for i := 0; i < 40; i++ {
		src := loopgen.Generate(rng, "parsyn")
		_, loops, err := frontend.Compile(src, m)
		if err != nil {
			t.Fatalf("generated loop does not compile: %v", err)
		}
		for _, cl := range loops {
			if cl.Ineligible == nil {
				ks = append(ks, &loopgen.Loop{Name: "parsyn", Source: src, CL: cl})
			}
		}
	}
	return ks
}

// TestParametricMatchesDirect is the differential proof for the
// parametric MinDist: for every kernel and a batch of synthetics, the
// instantiated table equals the direct Floyd–Warshall at every II in
// [MII, MII+8], and both agree on infeasibility below RecMII.
func TestParametricMatchesDirect(t *testing.T) {
	fallbacks := 0
	loops := corpus(t)
	for _, wl := range loops {
		l := wl.CL.Loop
		b, err := mii.Compute(l)
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		p, err := mindist.NewParametric(l, mindist.DefaultFrontierCap)
		if err != nil {
			if !errors.Is(err, mindist.ErrTooComplex) {
				t.Fatalf("%s: %v", wl.Name, err)
			}
			fallbacks++
			continue
		}
		var reuse *mindist.Table
		for ii := b.MII; ii <= b.MII+8; ii++ {
			direct, derr := mindist.Compute(l, ii)
			if derr != nil {
				t.Fatalf("%s II=%d ≥ MII must be feasible: %v", wl.Name, ii, derr)
			}
			reuse, err = p.Instantiate(ii, reuse)
			if err != nil {
				t.Fatalf("%s II=%d: parametric infeasible, direct feasible", wl.Name, ii)
			}
			sameTable(t, wl.Name, ii, direct, reuse)
		}
		// Below RecMII both paths must report the positive circuit.
		for ii := 1; ii < b.RecMII; ii++ {
			_, derr := mindist.Compute(l, ii)
			_, perr := p.Instantiate(ii, nil)
			if (derr == nil) != (perr == nil) {
				t.Fatalf("%s II=%d: direct err %v, parametric err %v", wl.Name, ii, derr, perr)
			}
		}
	}
	if fallbacks > len(loops)/4 {
		t.Errorf("parametric fell back on %d of %d loops; cap too tight to matter", fallbacks, len(loops))
	}
}

// TestCacheMatchesDirect drives the scheduler-facing cache through an
// II-retry sequence and checks every answer against the direct path,
// including the first (direct) call and the infeasible prefix.
func TestCacheMatchesDirect(t *testing.T) {
	for _, wl := range corpus(t) {
		l := wl.CL.Loop
		b, err := mii.Compute(l)
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		c := mindist.NewCache(l)
		lo := b.RecMII - 1
		if lo < 1 {
			lo = 1
		}
		for ii := lo; ii <= b.MII+6; ii++ {
			direct, derr := mindist.Compute(l, ii)
			got, gerr := c.At(ii)
			if (derr == nil) != (gerr == nil) {
				t.Fatalf("%s II=%d: direct err %v, cache err %v", wl.Name, ii, derr, gerr)
			}
			if derr == nil {
				sameTable(t, wl.Name, ii, direct, got)
			}
		}
	}
}

// TestCacheMinLTStable checks that derived metrics (MinLT, MinAvg) agree
// between cached and direct tables — they read the table through the
// same API but are the scheduler's actual consumers.
func TestCacheMinLTStable(t *testing.T) {
	m := machine.Cydra()
	l := fixture.Sample(m)
	b, err := mii.Compute(l)
	if err != nil {
		t.Fatal(err)
	}
	c := mindist.NewCache(l)
	for ii := b.MII; ii <= b.MII+4; ii++ {
		direct, err := mindist.Compute(l, ii)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.At(ii)
		if err != nil {
			t.Fatal(err)
		}
		if a, bb := mindist.MinAvg(l, direct, ir.RR), mindist.MinAvg(l, got, ir.RR); a != bb {
			t.Fatalf("II=%d: MinAvg direct %d, cache %d", ii, a, bb)
		}
		for _, v := range l.Values {
			if a, bb := mindist.MinLT(l, direct, v.ID), mindist.MinLT(l, got, v.ID); a != bb {
				t.Fatalf("II=%d: MinLT(%s) direct %d, cache %d", ii, v.Name, a, bb)
			}
		}
	}
}

// BenchmarkComputeDirect is the per-II cost of the direct path on the
// largest fixture.
func BenchmarkComputeDirect(b *testing.B) {
	m := machine.Cydra()
	l := fixture.Divide(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mindist.Compute(l, 38+i%8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParametricBuild is the one-time cost of the all-IIs pass.
func BenchmarkParametricBuild(b *testing.B) {
	m := machine.Cydra()
	l := fixture.Divide(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mindist.NewParametric(l, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParametricInstantiate is the per-II cost after the build —
// the price of each II retry under the cache.
func BenchmarkParametricInstantiate(b *testing.B) {
	m := machine.Cydra()
	l := fixture.Divide(m)
	p, err := mindist.NewParametric(l, 0)
	if err != nil {
		b.Fatal(err)
	}
	var t *mindist.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err = p.Instantiate(38+i%8, t)
		if err != nil {
			b.Fatal(err)
		}
	}
}
