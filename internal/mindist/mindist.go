// Package mindist computes the paper's MinDist relation (Section 4.1):
// for each pair of operations x, y, MinDist(x, y) is the minimum number
// of cycles (possibly negative) by which x must precede y in any feasible
// schedule at a given II, or −∞ if the dependence graph has no path from
// x to y.
//
// Computing MinDist is an all-pairs longest-paths problem where a
// dependence arc from x to y with latency L and distance ω has cost
// L − ω·II. When II ≥ RecMII every circuit has non-positive cost, so the
// longest path is well defined; a positive-cost circuit means the II is
// infeasible and Compute reports it.
//
// Two pseudo-operations bracket the loop body (Section 4.1): Start, a
// zero-cost predecessor of every operation, fixed at cycle 0; and Stop, a
// successor of every operation at the operation's latency, so that
// MinDist(Start, Stop) is the critical-path length of one iteration.
package mindist

import (
	"fmt"

	"repro/internal/ir"
)

// NoPath is the distance reported when no dependence path exists. It is
// small enough that adding any legal arc cost cannot underflow.
const NoPath = -(1 << 40)

// Table holds the MinDist relation for one loop at one II.
type Table struct {
	II    int
	n     int // number of real ops; Start = n, Stop = n+1
	d     []int
	width int
}

// ErrInfeasible reports a positive-cost dependence circuit: the II is
// below the loop's recurrence-constrained minimum.
type ErrInfeasible struct {
	II int
}

func (e *ErrInfeasible) Error() string {
	return fmt.Sprintf("mindist: positive dependence circuit at II=%d (II < RecMII)", e.II)
}

// Compute builds the MinDist table for the loop at the given II.
func Compute(l *ir.Loop, ii int) (*Table, error) {
	return computeInto(l, ii, nil, nil)
}

// computeInto is Compute with an optional table whose backing store is
// reused when it fits (the scheduler retries the same loop at many IIs)
// and an optional stop poll (see Cache.SetStop) consulted once per
// Floyd–Warshall pivot.
func computeInto(l *ir.Loop, ii int, reuse *Table, poll func() bool) (*Table, error) {
	if !l.Finalized() {
		panic("mindist: loop not finalized")
	}
	if ii < 1 {
		panic("mindist: II must be positive")
	}
	n := len(l.Ops)
	w := n + 2
	t := reuse
	if t == nil {
		t = &Table{}
	}
	t.sizeFor(n)
	t.II = ii
	for i := range t.d {
		t.d[i] = NoPath
	}
	at := func(x, y int) int { return x*w + y }
	relax := func(x, y, c int) {
		if c > t.d[at(x, y)] {
			t.d[at(x, y)] = c
		}
	}
	for _, dep := range l.Deps {
		relax(int(dep.From), int(dep.To), dep.Latency-dep.Omega*ii)
	}
	start, stop := n, n+1
	for i, op := range l.Ops {
		relax(start, i, 0)
		relax(i, stop, l.Mach.Latency(op.Opcode))
	}
	relax(start, stop, 0)
	// MinDist(x, x) = 0 by definition; a self arc with negative cost
	// imposes nothing, and one with positive cost is caught below.
	for x := 0; x < w; x++ {
		relax(x, x, 0)
	}

	// Floyd–Warshall, maximizing.
	for k := 0; k < w; k++ {
		if poll != nil && k%stopCheckStride == 0 && poll() {
			return nil, ErrStopped
		}
		rowK := t.d[k*w : (k+1)*w]
		for x := 0; x < w; x++ {
			dxk := t.d[at(x, k)]
			if dxk == NoPath {
				continue
			}
			rowX := t.d[x*w : (x+1)*w]
			for y := 0; y < w; y++ {
				if c := rowK[y]; c != NoPath && dxk+c > rowX[y] {
					rowX[y] = dxk + c
				}
			}
		}
	}
	for x := 0; x < w; x++ {
		if t.d[at(x, x)] > 0 {
			return nil, &ErrInfeasible{II: ii}
		}
	}
	return t, nil
}

// sizeFor reshapes the table for a loop of n real ops, reusing the
// backing store whenever its capacity suffices — the pooled-arena
// contract: a scratch table ratchets up to the largest loop it has
// served and allocates nothing for smaller ones.
func (t *Table) sizeFor(n int) {
	w := n + 2
	t.n, t.width = n, w
	if cap(t.d) >= w*w {
		t.d = t.d[:w*w]
	} else {
		t.d = make([]int, w*w)
	}
}

// Clone returns an independent copy of the table. Schedulers that serve
// results out of pooled scratch clone the final table so Result.MinDist
// stays valid after the scratch is released.
func (t *Table) Clone() *Table {
	c := &Table{II: t.II, n: t.n, width: t.width, d: make([]int, len(t.d))}
	copy(c.d, t.d)
	return c
}

// CloneInto is Clone writing into a caller-owned table, reusing dst's
// backing storage when it is large enough — the alloc-free path of
// sched.Scheduler.ScheduleInto. It returns the populated table: dst,
// or a fresh table when dst is nil or t itself. dst's previous
// contents are destroyed.
func (t *Table) CloneInto(dst *Table) *Table {
	if dst == nil || dst == t {
		return t.Clone()
	}
	d := dst.d
	if cap(d) < len(t.d) {
		d = make([]int, len(t.d))
	} else {
		d = d[:len(t.d)]
	}
	copy(d, t.d)
	*dst = Table{II: t.II, n: t.n, width: t.width, d: d}
	return dst
}

// N returns the number of real operations.
func (t *Table) N() int { return t.n }

// Start returns the index of the Start pseudo-op.
func (t *Table) Start() int { return t.n }

// Stop returns the index of the Stop pseudo-op.
func (t *Table) Stop() int { return t.n + 1 }

// Dist returns MinDist(x, y), or NoPath. Indices are op ids, Start() or
// Stop().
func (t *Table) Dist(x, y int) int { return t.d[x*t.width+y] }

// CriticalPath returns MinDist(Start, Stop): the minimum length in cycles
// of one loop iteration.
func (t *Table) CriticalPath() int { return t.Dist(t.Start(), t.Stop()) }

// MinLT returns the schedule-independent lower bound on the lifetime of
// value v at this table's II (Section 5.1):
//
//	MinLT(v) = max over flow deps (d → u, ω) of ω·II + MinDist(d, u).
//
// For the rare multi-def merge values this generalizes to
// max over uses of (min over defs), which stays a valid lower bound. A
// value without in-loop readers is live for its defining latency.
func MinLT(l *ir.Loop, t *Table, v ir.ValueID) int {
	val := l.Value(v)
	if len(val.Defs) == 0 {
		return 0
	}
	best := 0
	maxDefLat := 0
	for _, d := range val.Defs {
		if lat := l.Mach.Latency(l.Op(d).Opcode); lat > maxDefLat {
			maxDefLat = lat
		}
	}
	hasUse := false
	for _, dep := range l.Deps {
		if dep.Kind != ir.DepFlow || dep.Val != v {
			continue
		}
		hasUse = true
		lt := NoPath
		// min over defs of ω·II + MinDist(def, use)
		for _, d := range val.Defs {
			md := t.Dist(int(d), int(dep.To))
			if md == NoPath {
				continue
			}
			cand := dep.Omega*t.II + md
			if lt == NoPath || cand < lt {
				lt = cand
			}
		}
		if lt != NoPath && lt > best {
			best = lt
		}
	}
	if !hasUse {
		return maxDefLat
	}
	if best < maxDefLat {
		best = maxDefLat
	}
	return best
}

// MinAvg returns the schedule-independent lower bound on the loop's
// average (and hence approximately peak) register pressure for the given
// register file at this table's II (Section 3.2):
//
//	MinAvg = Σ over values v of ⌈MinLT(v)/II⌉.
func MinAvg(l *ir.Loop, t *Table, file ir.RegFile) int {
	sum := 0
	for _, v := range l.Values {
		if v.File != file || !v.IsVariant() {
			continue
		}
		lt := MinLT(l, t, v.ID)
		sum += (lt + t.II - 1) / t.II
	}
	return sum
}
