// Package stats provides the small statistical and formatting toolkit
// the benchmark harness uses to print tables in the paper's shape:
// min / 50% / 90% / max rows (Tables 2-4) and cumulative "percent of all
// loops within N registers" series (Figures 5-8).
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Quantiles reports min, median, 90th percentile, and max — the columns
// the paper's tables use.
type Quantiles struct {
	Min, P50, P90, Max int
}

// Quants computes the paper's quantile columns. Percentiles use the
// nearest-rank method on the sorted data. Empty input yields zeros.
func Quants(xs []int) Quantiles {
	if len(xs) == 0 {
		return Quantiles{}
	}
	s := append([]int(nil), xs...)
	sort.Ints(s)
	rank := func(p float64) int {
		i := int(p*float64(len(s))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	return Quantiles{Min: s[0], P50: rank(0.50), P90: rank(0.90), Max: s[len(s)-1]}
}

func (q Quantiles) String() string {
	return fmt.Sprintf("%6d %6d %6d %6d", q.Min, q.P50, q.P90, q.Max)
}

// CumulativePct returns, for each threshold, the percentage of xs that
// are ≤ the threshold — the reading of the paper's cumulative figures.
func CumulativePct(xs []int, thresholds []int) []float64 {
	out := make([]float64, len(thresholds))
	if len(xs) == 0 {
		return out
	}
	for i, th := range thresholds {
		n := 0
		for _, x := range xs {
			if x <= th {
				n++
			}
		}
		out[i] = 100 * float64(n) / float64(len(xs))
	}
	return out
}

// PctAt returns the percentage of xs equal to or below the threshold.
func PctAt(xs []int, th int) float64 {
	return CumulativePct(xs, []int{th})[0]
}

// Histogram renders an ASCII cumulative-distribution table of values at
// the given thresholds, one series per named column.
func Histogram(title string, thresholds []int, series map[string][]int, order []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-10s", "≤ regs")
	for _, name := range order {
		fmt.Fprintf(&b, " %14s", name)
	}
	b.WriteByte('\n')
	for _, th := range thresholds {
		fmt.Fprintf(&b, "%-10d", th)
		for _, name := range order {
			fmt.Fprintf(&b, " %13.1f%%", PctAt(series[name], th))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table is a minimal fixed-width text table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for i, h := range t.header {
		fmt.Fprintf(&b, "%-*s  ", width[i], h)
	}
	b.WriteByte('\n')
	for i := range t.header {
		b.WriteString(strings.Repeat("-", width[i]) + "  ")
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		for i, c := range r {
			fmt.Fprintf(&b, "%-*s  ", width[i], c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
