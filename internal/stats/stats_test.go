package stats

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestQuantsKnown(t *testing.T) {
	q := Quants([]int{5, 1, 9, 3, 7})
	if q.Min != 1 || q.Max != 9 {
		t.Errorf("min/max: %+v", q)
	}
	if q.P50 != 5 {
		t.Errorf("P50 = %d, want 5", q.P50)
	}
	if q.P90 != 9 {
		t.Errorf("P90 = %d, want 9 (nearest rank of 5 values)", q.P90)
	}
}

func TestQuantsEmptyAndSingle(t *testing.T) {
	if q := Quants(nil); q != (Quantiles{}) {
		t.Errorf("empty: %+v", q)
	}
	if q := Quants([]int{42}); q.Min != 42 || q.P50 != 42 || q.P90 != 42 || q.Max != 42 {
		t.Errorf("single: %+v", q)
	}
}

// Property: quantiles are ordered and drawn from the data.
func TestQuantsProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		xs := make([]int, n)
		for i := range xs {
			xs[i] = rng.Intn(1000) - 500
		}
		q := Quants(xs)
		if !(q.Min <= q.P50 && q.P50 <= q.P90 && q.P90 <= q.Max) {
			return false
		}
		s := append([]int(nil), xs...)
		sort.Ints(s)
		member := func(v int) bool {
			i := sort.SearchInts(s, v)
			return i < len(s) && s[i] == v
		}
		return member(q.Min) && member(q.P50) && member(q.P90) && member(q.Max)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCumulativePct(t *testing.T) {
	xs := []int{1, 2, 2, 3, 10}
	got := CumulativePct(xs, []int{0, 2, 9, 10})
	want := []float64{0, 60, 80, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("threshold %d: %v, want %v", i, got[i], want[i])
		}
	}
	if PctAt(nil, 5) != 0 {
		t.Error("empty series should be 0%")
	}
}

func TestHistogramAndTableRender(t *testing.T) {
	h := Histogram("title", []int{1, 2}, map[string][]int{"a": {1, 2}, "b": {2, 2}}, []string{"a", "b"})
	for _, want := range []string{"title", "50.0%", "100.0%"} {
		if !strings.Contains(h, want) {
			t.Errorf("histogram missing %q:\n%s", want, h)
		}
	}
	tb := NewTable("X", "Y")
	tb.Row("hello", 3.14159)
	out := tb.String()
	if !strings.Contains(out, "hello") || !strings.Contains(out, "3.14") {
		t.Errorf("table render:\n%s", out)
	}
	if !strings.Contains(out, "X") || !strings.Contains(out, "--") {
		t.Errorf("table header/rule:\n%s", out)
	}
}
