package schedcheck

import (
	"strings"
	"testing"

	"repro/internal/fixture"
	"repro/internal/ir"
	"repro/internal/machine"
)

func legalSample(t *testing.T) (*ir.Loop, *ir.Schedule) {
	t.Helper()
	l := fixture.SampleCore(machine.Cydra())
	s := ir.NewSchedule(2, len(l.Ops))
	s.Time[0], s.Time[1] = 0, 1
	return l, s
}

func TestLegalScheduleAccepted(t *testing.T) {
	l, s := legalSample(t)
	if vs := Check(l, s); vs != nil {
		t.Errorf("legal schedule rejected: %v", vs)
	}
}

func TestUnplacedRejected(t *testing.T) {
	l, s := legalSample(t)
	s.Time[1] = ir.Unplaced
	vs := Check(l, s)
	if vs == nil || !strings.Contains(vs[0].Msg, "unplaced") {
		t.Errorf("want unplaced violation, got %v", vs)
	}
}

func TestDependenceViolationDetected(t *testing.T) {
	l := fixture.SampleCore(machine.Cydra())
	// At II=1 the ω=2 cross arcs need t_use + 2 ≥ t_def + 1; placing both
	// at cycle 0 is fine, but the resource conflict on the single adder
	// (both at cycle 0 mod 1) must trip. Instead violate a dependence:
	// II=2, y-add at 0 and x-add at 4: x reads y[-2]: 0-ok; y reads
	// x[-1]? No — craft directly: x-add at 4, y-add at 0:
	// arc x→y (ω=2, lat=1): 0 + 4 ≥ 4 + 1 fails.
	s := ir.NewSchedule(2, len(l.Ops))
	s.Time[0], s.Time[1] = 4, 0
	vs := Check(l, s)
	found := false
	for _, v := range vs {
		if strings.Contains(v.Msg, "dependence") {
			found = true
		}
	}
	if !found {
		t.Errorf("want dependence violation, got %v", vs)
	}
}

func TestResourceConflictDetected(t *testing.T) {
	l, s := legalSample(t)
	s.Time[1] = 2 // same adder, 2 ≡ 0 mod 2
	vs := Check(l, s)
	found := false
	for _, v := range vs {
		if strings.Contains(v.Msg, "resource conflict") {
			found = true
		}
	}
	if !found {
		t.Errorf("want resource conflict, got %v", vs)
	}
}

func TestDividerPatternConflict(t *testing.T) {
	l := fixture.Divide(machine.Cydra())
	s := ir.NewSchedule(38, len(l.Ops))
	// Put everything at distinct legal-looking cycles, but overlap the
	// div (17 busy) and sqrt (21 busy) reservations.
	for i := range s.Time {
		s.Time[i] = 100 + i // far enough to satisfy latencies loosely
	}
	var div, sqrt ir.OpID
	for _, op := range l.Ops {
		switch op.Opcode {
		case machine.FDiv:
			div = op.ID
		case machine.FSqrt:
			sqrt = op.ID
		}
	}
	s.Time[div] = 0
	s.Time[sqrt] = 10 // overlaps cycles 10..16 of the div reservation
	vs := Check(l, s)
	found := false
	for _, v := range vs {
		if strings.Contains(v.Msg, "resource conflict") && strings.Contains(v.Msg, "Divider") {
			found = true
		}
	}
	if !found {
		t.Errorf("want divider reservation conflict, got %v", vs)
	}
}

func TestBusyExceedsII(t *testing.T) {
	l := fixture.Divide(machine.Cydra())
	s := ir.NewSchedule(10, len(l.Ops))
	for i := range s.Time {
		s.Time[i] = i * 20
	}
	vs := Check(l, s)
	found := false
	for _, v := range vs {
		if strings.Contains(v.Msg, "busy pattern") {
			found = true
		}
	}
	if !found {
		t.Errorf("want busy-exceeds-II violation, got %v", vs)
	}
}

func TestMustCheckPanics(t *testing.T) {
	l, s := legalSample(t)
	s.Time[0] = ir.Unplaced
	defer func() {
		if recover() == nil {
			t.Error("MustCheck must panic on illegal schedules")
		}
	}()
	MustCheck(l, s)
}
