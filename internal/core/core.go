// Package core is the top-level API of the library: it takes a loop body
// and produces everything the paper's compiler produced — a modulo
// schedule at (or near) the minimum initiation interval, its lower
// bounds, register-pressure measurements against the schedule-independent
// MinAvg bound, a rotating-register allocation, and kernel-only VLIW
// code — plus a differential verifier that executes the generated kernel
// on the cycle-accurate simulator and compares it against the sequential
// reference interpreter.
package core

import (
	"fmt"

	"repro/internal/codegen"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lifetime"
	"repro/internal/mindist"
	"repro/internal/rt"
	"repro/internal/sched"
	"repro/internal/semantics"
	"repro/internal/vliw"
)

// SchedulerName selects a scheduling policy.
type SchedulerName string

// The available schedulers.
const (
	SchedSlack    SchedulerName = "slack" // the paper's bidirectional slack scheduler
	SchedSlackUni SchedulerName = "slack-unidirectional"
	SchedCydrome  SchedulerName = "cydrome" // the baseline "Old Scheduler"
	SchedList     SchedulerName = "list"    // no-backtracking list scheduler
)

// Schedulers lists every policy name, paper's first.
func Schedulers() []SchedulerName {
	return []SchedulerName{SchedSlack, SchedSlackUni, SchedCydrome, SchedList}
}

// Options configures a compilation.
type Options struct {
	Scheduler SchedulerName // default SchedSlack
	Config    sched.Config
	// SkipCodegen stops after scheduling and pressure measurement
	// (the benchmark harness schedules thousands of loops and does not
	// need kernels for most experiments).
	SkipCodegen bool
}

// Compiled is the result of compiling one loop.
type Compiled struct {
	Loop   *ir.Loop
	Result *sched.Result

	// Pressure measurements (only when scheduling succeeded).
	RR     lifetime.Pressure // RR-file pressure; RR.MaxLive is the paper's metric
	MinAvg int               // schedule-independent lower bound at the achieved II
	ICR    int               // ICR predicate usage (Figure 8)
	GPRs   int               // loop invariants (Figure 7)

	// Kernel is the generated code (nil when SkipCodegen or failure).
	Kernel *codegen.Kernel
}

// OK reports whether a feasible schedule was found.
func (c *Compiled) OK() bool { return c.Result != nil && c.Result.OK() }

// Compile schedules the loop and, by default, generates kernel code.
func Compile(l *ir.Loop, opt Options) (*Compiled, error) {
	if opt.Scheduler == "" {
		opt.Scheduler = SchedSlack
	}
	var (
		res *sched.Result
		err error
	)
	switch opt.Scheduler {
	case SchedSlack:
		res, err = sched.Slack(opt.Config).Schedule(l)
	case SchedSlackUni:
		res, err = sched.SlackUnidirectional(opt.Config).Schedule(l)
	case SchedCydrome:
		res, err = sched.Cydrome(opt.Config).Schedule(l)
	case SchedList:
		res, err = sched.ListSchedule(l, opt.Config)
	default:
		return nil, fmt.Errorf("core: unknown scheduler %q", opt.Scheduler)
	}
	if err != nil {
		return nil, err
	}
	c := &Compiled{Loop: l, Result: res, GPRs: l.GPRCount()}
	if !res.OK() {
		return c, nil
	}
	s := res.Schedule
	c.RR = lifetime.Measure(l, s, ir.RR)
	c.ICR = lifetime.ICRUsage(l, s)
	// Every scheduler plumbs the table at its final II through
	// res.MinDist, so on success the recompute below never triggers; it
	// remains as a defensive fallback for external Result producers.
	md := res.MinDist
	if md == nil || md.II != s.II {
		md, err = mindist.Compute(l, s.II)
		if err != nil {
			return nil, fmt.Errorf("core: recomputing MinDist: %w", err)
		}
	}
	c.MinAvg = mindist.MinAvg(l, md, ir.RR)
	if !opt.SkipCodegen {
		k, err := codegen.Generate(l, s)
		if err != nil {
			return nil, err
		}
		c.Kernel = k
	}
	return c, nil
}

// VerifyExecution runs the generated kernel on the VLIW simulator and
// the loop on the sequential interpreter, and reports any divergence in
// memory, live-out values, or executed-operation counts. It is the
// repository's end-to-end correctness check.
func VerifyExecution(c *Compiled, env *rt.Env, trips int) error {
	if c.Kernel == nil {
		return fmt.Errorf("core: no kernel to verify for %s", c.Loop.Name)
	}
	want, err := interp.Run(c.Loop, env, trips)
	if err != nil {
		return fmt.Errorf("core: interpreter: %w", err)
	}
	got, err := vliw.Run(c.Kernel, env, trips, vliw.Config{Paranoid: true})
	if err != nil {
		return fmt.Errorf("core: simulator: %w", err)
	}
	if len(want.Mem) != len(got.Mem) {
		return fmt.Errorf("core: memory size mismatch: %d vs %d", len(want.Mem), len(got.Mem))
	}
	for i := range want.Mem {
		if !semantics.Equal(want.Mem[i], got.Mem[i]) {
			return fmt.Errorf("core: %s: memory[%d] differs: interp %+v, vliw %+v",
				c.Loop.Name, i, want.Mem[i], got.Mem[i])
		}
	}
	for v, w := range want.LiveOut {
		g, ok := got.LiveOut[v]
		if !ok {
			return fmt.Errorf("core: %s: live-out %s missing from simulation", c.Loop.Name, c.Loop.Value(v).Name)
		}
		if !semantics.Equal(w, g) {
			return fmt.Errorf("core: %s: live-out %s differs: interp %+v, vliw %+v",
				c.Loop.Name, c.Loop.Value(v).Name, w, g)
		}
	}
	if want.Executed != got.Executed {
		return fmt.Errorf("core: %s: executed-op count differs: interp %d, vliw %d",
			c.Loop.Name, want.Executed, got.Executed)
	}
	return nil
}
