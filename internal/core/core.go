// Package core is the top-level API of the library: it takes a loop body
// and produces everything the paper's compiler produced — a modulo
// schedule at (or near) the minimum initiation interval, its lower
// bounds, register-pressure measurements against the schedule-independent
// MinAvg bound, a rotating-register allocation, and kernel-only VLIW
// code — plus a differential verifier that executes the generated kernel
// on the cycle-accurate simulator and compares it against the sequential
// reference interpreter.
//
// # Public API surface and stability
//
// The stable entry points are CompileContext (and its background-context
// wrapper Compile), the scheduler registry (Register, Lookup,
// Schedulers), and VerifyExecution. Scheduling policies are looked up by
// SchedulerName in a registry the four built-ins populate at init time,
// so new policies plug in without core edits. Failures are typed and
// matchable with errors.Is / errors.As:
//
//   - core.ErrUnknownScheduler — Options.Scheduler has no registration;
//   - sched.ErrInfeasible — the II ceiling was exhausted (carried by a
//     *sched.InfeasibleError; the partial *Compiled is still returned);
//   - sched.ErrBudgetExhausted — the sched.Budget or context ran out
//     (carried by a *sched.BudgetError with the effort evidence).
//
// With Options.Degrade set, a budget-exhausted compilation falls back to
// the no-backtracking list scheduler so callers still receive a feasible
// (if suboptimal) kernel; the result is marked Degraded and retains the
// triggering BudgetErr.
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/codegen"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lifetime"
	"repro/internal/mindist"
	"repro/internal/obs"
	"repro/internal/rt"
	"repro/internal/sched"
	"repro/internal/semantics"
	"repro/internal/vliw"
)

// Options configures a compilation.
type Options struct {
	Scheduler SchedulerName // default SchedSlack
	Config    sched.Config
	// SkipCodegen stops after scheduling and pressure measurement
	// (the benchmark harness schedules thousands of loops and does not
	// need kernels for most experiments).
	SkipCodegen bool
	// Degrade falls back to the no-backtracking list scheduler when the
	// configured scheduler exhausts its sched.Budget, so a budgeted
	// caller still gets a feasible (if suboptimal) kernel. The fallback
	// runs without a budget (the list scheduler's work is bounded) but
	// still honors context cancellation; the result is marked Degraded.
	Degrade bool
}

// Compiled is the result of compiling one loop.
type Compiled struct {
	Loop   *ir.Loop
	Result *sched.Result

	// Pressure measurements (only when scheduling succeeded).
	RR     lifetime.Pressure // RR-file pressure; RR.MaxLive is the paper's metric
	MinAvg int               // schedule-independent lower bound at the achieved II
	ICR    int               // ICR predicate usage (Figure 8)
	GPRs   int               // loop invariants (Figure 7)

	// Kernel is the generated code (nil when SkipCodegen or failure).
	Kernel *codegen.Kernel

	// Degraded reports that the configured scheduler exhausted its
	// budget and Result came from the list-scheduler fallback
	// (Options.Degrade); BudgetErr is the exhaustion that triggered it.
	Degraded  bool
	BudgetErr *sched.BudgetError
}

// OK reports whether a feasible schedule was found.
func (c *Compiled) OK() bool { return c.Result != nil && c.Result.OK() }

// Compile is CompileContext with a background context and the legacy
// give-up contract: an infeasible loop (II ceiling exhausted) returns
// (c, nil) with c.OK() false rather than an ErrInfeasible, matching the
// paper's Table 4 convention of tabulating failures as data. All other
// errors — including budget exhaustion — pass through unchanged.
func Compile(l *ir.Loop, opt Options) (*Compiled, error) {
	c, err := CompileContext(context.Background(), l, opt)
	if errors.Is(err, sched.ErrInfeasible) && c != nil {
		err = nil
	}
	return c, err
}

// CompileContext schedules the loop and, by default, generates kernel
// code. The context and Options.Config.Budget bound the scheduling
// search (see sched.Scheduler.ScheduleContext); on exhaustion the error
// matches sched.ErrBudgetExhausted unless Options.Degrade rescues the
// compilation with the list scheduler. When scheduling fails with
// ErrInfeasible or ErrBudgetExhausted, the returned *Compiled is still
// non-nil and carries the partial sched.Result as evidence.
func CompileContext(ctx context.Context, l *ir.Loop, opt Options) (*Compiled, error) {
	c := &Compiled{}
	err := CompileInto(ctx, c, l, opt)
	if c.Loop == nil {
		// CompileInto zeroed the destination: nothing was produced
		// (unknown scheduler, preflight failure, or a hard
		// mindist/codegen error) — the legacy nil-Compiled contract.
		return nil, err
	}
	return c, err
}

// CompileInto is CompileContext writing into a caller-owned Compiled:
// dst's previous contents are destroyed, but the result buffers they
// carry — dst.Result itself, its Schedule.Time slice, its MinDist
// backing array — are recycled, so a caller that reuses one Compiled
// across compilations (the lsmsd worker loop, the bench sweep) reaches
// the pipeline's allocation floor: zero result-object allocations per
// compile in steady state. The caller must not retain references into
// dst across calls.
//
// The outcome contract mirrors CompileContext exactly: on unknown
// scheduler, preflight failure, or a hard mindist/codegen error dst is
// zeroed (dst.Loop == nil) and the error returned; on scheduling
// failure dst carries the partial evidence alongside the typed error;
// on success (or a rescued Degrade) err is nil and dst is complete.
func CompileInto(ctx context.Context, dst *Compiled, l *ir.Loop, opt Options) error {
	// Recycle the result buffers the previous compilation left behind;
	// everything else resets.
	res := dst.Result
	if res == nil {
		res = &sched.Result{}
	}
	*dst = Compiled{}

	if opt.Scheduler == "" {
		opt.Scheduler = SchedSlack
	}
	factory, ok := Lookup(opt.Scheduler)
	if !ok {
		return fmt.Errorf("%w: %q (registered: %v)", ErrUnknownScheduler, opt.Scheduler, Schedulers())
	}
	// One pooled arena per compilation: the scheduler, a possible
	// degrade fallback, and the pressure measurements share its scratch.
	// The deferred release covers every exit path, including panics
	// isolated by callers (e.g. the lsmsd panic barrier and the bench
	// sweep's per-loop guard), so a crashing loop cannot strand scratch.
	arena := opt.Config.Arena
	if arena == nil {
		if opt.Config.NoPool {
			arena = sched.NewArena()
		} else {
			arena = sched.AcquireArena()
		}
		opt.Config.Arena = arena
		defer arena.Release()
	}
	tr := obs.FromContext(ctx)
	if tr != nil {
		tr.Scheduler = string(opt.Scheduler)
	}
	sp := tr.Start("schedule").Str("scheduler", string(opt.Scheduler))
	runner := factory(opt.Config)
	var err error
	if into, ok := runner.(IntoRunner); ok {
		err = into.ScheduleInto(ctx, l, res)
		if res.Loop == nil {
			res = nil // preflight failure: the zeroed buffer carries nothing
		}
	} else {
		// Runners without the Into extension pay the allocations they
		// always did; copy so dst still owns its result.
		var r *sched.Result
		r, err = runner.Schedule(ctx, l)
		if r != nil {
			*res = *r
		} else {
			res = nil
		}
	}
	if res != nil {
		sp.Int("ii", int64(res.II())).Int("mii", int64(res.Bounds.MII))
	}
	sp.End(scheduleOutcome(err))
	if res != nil {
		*dst = Compiled{Loop: l, Result: res, GPRs: l.GPRCount()}
	}
	if err != nil {
		var be *sched.BudgetError
		if errors.As(err, &be) && opt.Degrade && opt.Scheduler != SchedList && ctx.Err() == nil {
			dres, derr := degrade(ctx, l, opt, be)
			if derr != nil {
				// dst keeps the budget-exhausted partial as evidence.
				return derr
			}
			if res == nil {
				res = dres
			} else {
				*res = *dres
			}
			*dst = Compiled{Loop: l, Result: res, GPRs: l.GPRCount(), Degraded: true, BudgetErr: be}
		} else {
			return err
		}
	}
	if res == nil || !res.OK() {
		return nil
	}
	s := res.Schedule
	spp := tr.Start("pressure").Int("ii", int64(s.II))
	dst.RR = lifetime.MeasureIn(l, s, ir.RR, arena.Lifetime())
	dst.ICR = lifetime.ICRUsageIn(l, s, arena.Lifetime())
	// Every scheduler plumbs the table at its final II through
	// res.MinDist, so on success the recompute below never triggers; it
	// remains as a defensive fallback for external Result producers.
	md := res.MinDist
	if md == nil || md.II != s.II {
		md, err = mindist.Compute(l, s.II)
		if err != nil {
			*dst = Compiled{}
			return fmt.Errorf("core: recomputing MinDist: %w", err)
		}
	}
	dst.MinAvg = mindist.MinAvg(l, md, ir.RR)
	spp.Int("maxlive", int64(dst.RR.MaxLive)).Int("minavg", int64(dst.MinAvg)).End(obs.OutcomeOK)
	if !opt.SkipCodegen {
		spc := tr.Start("codegen").Int("ii", int64(s.II))
		k, err := codegen.GenerateContext(ctx, l, s)
		if err != nil {
			spc.End(obs.OutcomeError)
			*dst = Compiled{}
			return err
		}
		spc.Int("nrr", int64(k.NRR)).Int("nicr", int64(k.NICR)).End(obs.OutcomeOK)
		dst.Kernel = k
	}
	return nil
}

// scheduleOutcome classifies a scheduling error for the "schedule" span:
// budget errors carry the exhausted bound (the Reason strings are the
// obs outcome names), infeasibility and other failures map to their own
// outcomes.
func scheduleOutcome(err error) string {
	if err == nil {
		return obs.OutcomeOK // before declaring be: errors.As forces it to escape
	}
	var be *sched.BudgetError
	switch {
	case errors.As(err, &be):
		if be.Reason != "" {
			return be.Reason
		}
		return obs.OutcomeBudgetExhausted
	case errors.Is(err, sched.ErrInfeasible):
		return obs.OutcomeInfeasible
	default:
		return obs.OutcomeError
	}
}

// degrade runs the no-backtracking list scheduler after be exhausted
// the configured scheduler's budget. The fallback is unbudgeted — the
// list scheduler performs a bounded amount of work per II and never
// backtracks — but keeps the caller's observers informed via an
// EvDegraded event, and the context still cancels it. An infeasible
// fallback reports the original budget error: the budgeted scheduler's
// verdict is the more meaningful one.
func degrade(ctx context.Context, l *ir.Loop, opt Options, be *sched.BudgetError) (*sched.Result, error) {
	cfg := opt.Config
	cfg.Budget = sched.Budget{}
	if sink := cfg.EventSink(); sink != nil {
		sink.Event(sched.Event{
			Kind:   sched.EvDegraded,
			Loop:   l.Name,
			Policy: be.Policy,
			II:     be.LastII,
			Op:     -1,
		})
	}
	sp := obs.FromContext(ctx).Start("degrade").Str("from", be.Policy).Str("reason", be.Reason)
	res, err := sched.ListScheduleContext(ctx, l, cfg)
	if err != nil && !errors.Is(err, sched.ErrInfeasible) {
		sp.End(obs.OutcomeError)
		return res, err
	}
	if res == nil || !res.OK() {
		sp.End(obs.OutcomeInfeasible)
		return res, be
	}
	sp.Int("ii", int64(res.II())).End(obs.OutcomeOK)
	return res, nil
}

// VerifyExecution runs the generated kernel on the VLIW simulator and
// the loop on the sequential interpreter, and reports any divergence in
// memory, live-out values, or executed-operation counts. It is the
// repository's end-to-end correctness check.
func VerifyExecution(c *Compiled, env *rt.Env, trips int) error {
	if c.Kernel == nil {
		return fmt.Errorf("core: no kernel to verify for %s", c.Loop.Name)
	}
	want, err := interp.Run(c.Loop, env, trips)
	if err != nil {
		return fmt.Errorf("core: interpreter: %w", err)
	}
	got, err := vliw.Run(c.Kernel, env, trips, vliw.Config{Paranoid: true})
	if err != nil {
		return fmt.Errorf("core: simulator: %w", err)
	}
	if len(want.Mem) != len(got.Mem) {
		return fmt.Errorf("core: memory size mismatch: %d vs %d", len(want.Mem), len(got.Mem))
	}
	for i := range want.Mem {
		if !semantics.Equal(want.Mem[i], got.Mem[i]) {
			return fmt.Errorf("core: %s: memory[%d] differs: interp %+v, vliw %+v",
				c.Loop.Name, i, want.Mem[i], got.Mem[i])
		}
	}
	for v, w := range want.LiveOut {
		g, ok := got.LiveOut[v]
		if !ok {
			return fmt.Errorf("core: %s: live-out %s missing from simulation", c.Loop.Name, c.Loop.Value(v).Name)
		}
		if !semantics.Equal(w, g) {
			return fmt.Errorf("core: %s: live-out %s differs: interp %+v, vliw %+v",
				c.Loop.Name, c.Loop.Value(v).Name, w, g)
		}
	}
	if want.Executed != got.Executed {
		return fmt.Errorf("core: %s: executed-op count differs: interp %d, vliw %d",
			c.Loop.Name, want.Executed, got.Executed)
	}
	return nil
}
