package core

import (
	"fmt"

	"repro/internal/fixture"
	"repro/internal/machine"
)

// ExampleCompile compiles one loop end to end with the paper's
// lifetime-sensitive slack scheduler and reports the headline numbers:
// the achieved II against the MII lower bound, the register pressure
// against the schedule-independent MinAvg bound, and the kernel size.
func ExampleCompile() {
	l := fixture.Daxpy(machine.Cydra())
	c, err := Compile(l, Options{Scheduler: SchedSlack})
	if err != nil {
		fmt.Println("compile failed:", err)
		return
	}
	fmt.Printf("scheduled %s at II=%d (MII %d)\n", c.Loop.Name, c.Result.Schedule.II, c.Result.Bounds.MII)
	fmt.Printf("pressure: MaxLive=%d against MinAvg=%d\n", c.RR.MaxLive, c.MinAvg)
	fmt.Printf("kernel: %d cycle(s)\n", len(c.Kernel.Words))
	// Output:
	// scheduled daxpy at II=2 (MII 2)
	// pressure: MaxLive=25 against MinAvg=25
	// kernel: 2 cycle(s)
}
