package core

import (
	"math/rand"
	"testing"

	"repro/internal/codegen"
	"repro/internal/frontend"
	"repro/internal/interp"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/schedcheck"
	"repro/internal/semantics"
	"repro/internal/vliw"
)

// The capstone differential test: a few hundred *generated* loops run
// through the complete pipeline — frontend, slack scheduling, rotating-
// register allocation, kernel codegen, cycle-accurate simulation — and
// every one must compute exactly what the sequential interpreter
// computes. Environments come from loopgen.AutoBinding, so any loop the
// generator can emit is executable.
func TestGeneratedLoopsFullPipeline(t *testing.T) {
	m := machine.Cydra()
	rng := rand.New(rand.NewSource(20260704))
	ran := 0
	for i := 0; ran < 150 && i < 400; i++ {
		src := loopgen.Generate(rng, "gen")
		_, loops, err := frontend.Compile(src, m)
		if err != nil {
			t.Fatalf("loop %d does not compile: %v\n%s", i, err, src)
		}
		cl := loops[0]
		if cl.Ineligible != nil {
			continue
		}
		env, _, trips, err := cl.BuildEnv(loopgen.AutoBinding(cl))
		if err != nil {
			t.Fatalf("loop %d: binding: %v\n%s", i, err, src)
		}
		if trips > 24 {
			trips = 24 // bound simulation time on big-II loops
		}
		c, err := Compile(cl.Loop, Options{})
		if err != nil {
			t.Fatalf("loop %d: %v\n%s", i, err, src)
		}
		if !c.OK() {
			t.Fatalf("loop %d: slack gave up\n%s", i, src)
		}
		schedcheck.MustCheck(cl.Loop, c.Result.Schedule)
		if err := VerifyExecution(c, env, trips); err != nil {
			t.Fatalf("loop %d: %v\n%s%s", i, err, src, c.Kernel)
		}
		ran++
	}
	if ran < 100 {
		t.Fatalf("only %d eligible generated loops ran", ran)
	}
}

// The same sweep under the Cydrome baseline: schedules it produces must
// also execute correctly (the paper's comparison would be meaningless
// against a broken baseline).
func TestGeneratedLoopsBaselinePipeline(t *testing.T) {
	m := machine.Cydra()
	rng := rand.New(rand.NewSource(4))
	ran := 0
	for i := 0; ran < 60 && i < 200; i++ {
		src := loopgen.Generate(rng, "gen")
		_, loops, err := frontend.Compile(src, m)
		if err != nil {
			t.Fatal(err)
		}
		cl := loops[0]
		if cl.Ineligible != nil {
			continue
		}
		env, _, trips, err := cl.BuildEnv(loopgen.AutoBinding(cl))
		if err != nil {
			t.Fatalf("loop %d: binding: %v\n%s", i, err, src)
		}
		if trips > 20 {
			trips = 20
		}
		c, err := Compile(cl.Loop, Options{Scheduler: SchedCydrome})
		if err != nil {
			t.Fatal(err)
		}
		if !c.OK() {
			continue // legitimate baseline failure
		}
		if err := VerifyExecution(c, env, trips); err != nil {
			t.Fatalf("loop %d: %v\n%s", i, err, src)
		}
		ran++
	}
	if ran < 40 {
		t.Fatalf("only %d baseline loops ran", ran)
	}
}

// The MVE code path over generated loops: unrolled static-register code
// must match the interpreter too.
func TestGeneratedLoopsMVE(t *testing.T) {
	m := machine.Cydra()
	rng := rand.New(rand.NewSource(777))
	ran := 0
	for i := 0; ran < 60 && i < 200; i++ {
		src := loopgen.Generate(rng, "gen")
		_, loops, err := frontend.Compile(src, m)
		if err != nil {
			t.Fatal(err)
		}
		cl := loops[0]
		if cl.Ineligible != nil {
			continue
		}
		env, _, trips, err := cl.BuildEnv(loopgen.AutoBinding(cl))
		if err != nil {
			t.Fatal(err)
		}
		if trips > 20 {
			trips = 20
		}
		res, err := sched.Slack(sched.Config{}).Schedule(cl.Loop)
		if err != nil || !res.OK() {
			t.Fatalf("loop %d: scheduling failed", i)
		}
		k, err := codegen.GenerateMVE(cl.Loop, res.Schedule)
		if err != nil {
			continue // over the unroll cap: acceptable, counted by the bench
		}
		want, err := interp.Run(cl.Loop, env, trips)
		if err != nil {
			t.Fatal(err)
		}
		got, err := vliw.RunMVE(k, env, trips, vliw.Config{Paranoid: true})
		if err != nil {
			t.Fatalf("loop %d: %v\n%s", i, err, src)
		}
		for j := range want.Mem {
			if !semantics.Equal(want.Mem[j], got.Mem[j]) {
				t.Fatalf("loop %d: mem[%d] differs\n%s", i, j, src)
			}
		}
		ran++
	}
	if ran < 40 {
		t.Fatalf("only %d MVE loops ran", ran)
	}
}
