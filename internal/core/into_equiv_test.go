package core

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"repro/internal/loopgen"
	"repro/internal/sched"
	"repro/internal/wire"
)

// TestCompileIntoEquivalence is the correctness bar of the
// caller-owned-buffer entry point: over the full generator corpus and
// every registered policy, CompileInto writing into ONE Compiled that
// is recycled across all loops (so its Result, Schedule.Time, and
// MinDist buffers arrive dirty and wrongly-sized at every call) must
// produce results bit-identical to a fresh CompileContext, and must
// classify errors identically.
func TestCompileIntoEquivalence(t *testing.T) {
	size := 120
	if testing.Short() {
		size = 36
	}
	w, err := loopgen.Build(loopgen.Options{Size: size, Seed: 424})
	if err != nil {
		t.Fatalf("building workload: %v", err)
	}
	ctx := context.Background()
	for _, name := range Schedulers() {
		opt := Options{Scheduler: name, SkipCodegen: true}
		var buf Compiled // one buffer for the whole corpus — sizes vary per loop
		for _, wl := range w.Loops {
			fresh, ferr := CompileContext(ctx, wl.CL.Loop, opt)
			ierr := CompileInto(ctx, &buf, wl.CL.Loop, opt)
			if c1, c2 := errClass(ferr), errClass(ierr); c1 != c2 {
				t.Fatalf("%s/%s: error class diverges: CompileContext %q (%v), CompileInto %q (%v)",
					name, wl.Name, c1, ferr, c2, ierr)
			}
			if fresh == nil {
				if buf.Loop != nil {
					t.Fatalf("%s/%s: CompileContext produced nothing but CompileInto left dst populated",
						name, wl.Name)
				}
				continue
			}
			if buf.Loop == nil {
				t.Fatalf("%s/%s: CompileContext produced a result but CompileInto zeroed dst", name, wl.Name)
			}
			fh := compiledHash(t, name, wl.Name, fresh)
			ih := compiledHash(t, name, wl.Name, &buf)
			if fh != ih {
				t.Errorf("%s/%s: reused-buffer result diverges from fresh result: %s vs %s",
					name, wl.Name, ih, fh)
			}
		}
	}
}

// TestCompileIntoUnknownScheduler pins the zero-dst contract: a lookup
// failure must both return ErrUnknownScheduler and scrub whatever the
// previous compilation left in the buffer, so stale results cannot be
// mistaken for output.
func TestCompileIntoUnknownScheduler(t *testing.T) {
	w, err := loopgen.Build(loopgen.Options{Size: 4, Seed: 7})
	if err != nil {
		t.Fatalf("building workload: %v", err)
	}
	ctx := context.Background()
	var buf Compiled
	if err := CompileInto(ctx, &buf, w.Loops[0].CL.Loop, Options{SkipCodegen: true}); err != nil {
		t.Fatalf("priming compile: %v", err)
	}
	if buf.Loop == nil {
		t.Fatal("priming compile left dst empty")
	}
	err = CompileInto(ctx, &buf, w.Loops[0].CL.Loop, Options{Scheduler: "no-such-policy"})
	if !errors.Is(err, ErrUnknownScheduler) {
		t.Fatalf("want ErrUnknownScheduler, got %v", err)
	}
	if buf.Loop != nil || buf.Result != nil || buf.Kernel != nil {
		t.Fatalf("dst not zeroed after unknown scheduler: %+v", buf)
	}
}

// errClass buckets an error for cross-entry-point comparison without
// depending on message details (which carry timing-bearing stats).
func errClass(err error) string {
	switch {
	case err == nil:
		return "nil"
	case errors.Is(err, sched.ErrInfeasible):
		return "infeasible"
	case errors.Is(err, sched.ErrBudgetExhausted):
		return "budget"
	case errors.Is(err, ErrUnknownScheduler):
		return "unknown-scheduler"
	default:
		return "other"
	}
}

// compiledHash hashes the serialized wire form of every deterministic
// output a server response carries (the same projection as
// compileResultHash, but over an already-built Compiled).
func compiledHash(t *testing.T, name SchedulerName, loopName string, c *Compiled) string {
	t.Helper()
	b := c.Result.Bounds
	resp := wire.Response{
		Loop:      loopName,
		Scheduler: string(name),
		OK:        c.OK(),
		Bounds:    wire.Bounds{ResMII: b.ResMII, RecMII: b.RecMII, MII: b.MII},
		Effort:    wire.EffortOf(c.Result.Stats),
	}
	if c.OK() {
		s := c.Result.Schedule
		resp.II = s.II
		resp.Length = s.Length()
		resp.Stages = s.Stages()
		resp.Times = s.Time
		resp.MaxLive = c.RR.MaxLive
		resp.MinAvg = c.MinAvg
		resp.ICR = c.ICR
		resp.GPRs = c.GPRs
	}
	body, err := json.Marshal(&resp)
	if err != nil {
		t.Fatalf("%s/%s: %v", name, loopName, err)
	}
	return fmt.Sprintf("sha256:%x", sha256.Sum256(body))
}
