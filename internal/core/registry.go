package core

import (
	"context"
	"errors"
	"sort"
	"sync"

	"repro/internal/exact"
	"repro/internal/ir"
	"repro/internal/sched"
)

// SchedulerName selects a scheduling policy.
type SchedulerName string

// The built-in schedulers, self-registered at init time.
const (
	SchedSlack    SchedulerName = "slack" // the paper's bidirectional slack scheduler
	SchedSlackUni SchedulerName = "slack-unidirectional"
	SchedCydrome  SchedulerName = "cydrome" // the baseline "Old Scheduler"
	SchedList     SchedulerName = "list"    // no-backtracking list scheduler
	SchedExact    SchedulerName = "exact"   // branch-and-bound optimal (II, MaxLive)
)

// ErrUnknownScheduler reports a SchedulerName with no registered
// factory; Compile wraps it with the offending name, so match with
// errors.Is(err, core.ErrUnknownScheduler).
var ErrUnknownScheduler = errors.New("core: unknown scheduler")

// Runner schedules loops under a context; see
// sched.Scheduler.ScheduleContext for the error contract (typed
// *sched.InfeasibleError / *sched.BudgetError alongside a partial
// Result).
type Runner interface {
	Schedule(ctx context.Context, l *ir.Loop) (*sched.Result, error)
}

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc func(ctx context.Context, l *ir.Loop) (*sched.Result, error)

// Schedule implements Runner.
func (f RunnerFunc) Schedule(ctx context.Context, l *ir.Loop) (*sched.Result, error) {
	return f(ctx, l)
}

// IntoRunner is the optional buffer-reusing extension of Runner: a
// runner that can write its result into a caller-owned sched.Result
// (see sched.Scheduler.ScheduleInto for the contract). CompileInto
// type-asserts for it; runners without it still work through Schedule,
// at the cost of the per-compile result allocations. All built-in
// policies implement it.
type IntoRunner interface {
	ScheduleInto(ctx context.Context, l *ir.Loop, dst *sched.Result) error
}

// schedulerRunner adapts *sched.Scheduler to Runner and IntoRunner —
// the registration shape of the backtracking built-ins.
type schedulerRunner struct{ s *sched.Scheduler }

func (r schedulerRunner) Schedule(ctx context.Context, l *ir.Loop) (*sched.Result, error) {
	return r.s.ScheduleContext(ctx, l)
}

func (r schedulerRunner) ScheduleInto(ctx context.Context, l *ir.Loop, dst *sched.Result) error {
	return r.s.ScheduleInto(ctx, l, dst)
}

// listRunner adapts the function-shaped list scheduler the same way.
type listRunner struct{ cfg sched.Config }

func (r listRunner) Schedule(ctx context.Context, l *ir.Loop) (*sched.Result, error) {
	return sched.ListScheduleContext(ctx, l, r.cfg)
}

func (r listRunner) ScheduleInto(ctx context.Context, l *ir.Loop, dst *sched.Result) error {
	return sched.ListScheduleInto(ctx, l, r.cfg, dst)
}

// Factory builds a ready-to-run scheduler for one configuration.
type Factory func(cfg sched.Config) Runner

var registry = struct {
	sync.RWMutex
	m map[SchedulerName]Factory
}{m: map[SchedulerName]Factory{}}

// Register makes a scheduling policy available to Compile under the
// given name, replacing any previous registration. The four built-in
// policies self-register; external packages can add their own without
// touching core. Register panics on an empty name or nil factory.
func Register(name SchedulerName, f Factory) {
	if name == "" {
		panic("core: Register with empty scheduler name")
	}
	if f == nil {
		panic("core: Register with nil factory for " + string(name))
	}
	registry.Lock()
	defer registry.Unlock()
	registry.m[name] = f
}

// Lookup returns the factory registered under name.
func Lookup(name SchedulerName) (Factory, bool) {
	registry.RLock()
	defer registry.RUnlock()
	f, ok := registry.m[name]
	return f, ok
}

// Schedulers lists every registered policy name: the paper's policy
// (SchedSlack) first, the rest in sorted order.
func Schedulers() []SchedulerName {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]SchedulerName, 0, len(registry.m))
	for n := range registry.m {
		if n != SchedSlack {
			names = append(names, n)
		}
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	if _, ok := registry.m[SchedSlack]; ok {
		names = append([]SchedulerName{SchedSlack}, names...)
	}
	return names
}

func init() {
	Register(SchedSlack, func(cfg sched.Config) Runner {
		return schedulerRunner{sched.Slack(cfg)}
	})
	Register(SchedSlackUni, func(cfg sched.Config) Runner {
		return schedulerRunner{sched.SlackUnidirectional(cfg)}
	})
	Register(SchedCydrome, func(cfg sched.Config) Runner {
		return schedulerRunner{sched.Cydrome(cfg)}
	})
	Register(SchedList, func(cfg sched.Config) Runner {
		return listRunner{cfg}
	})
	Register(SchedExact, func(cfg sched.Config) Runner {
		return exact.New(cfg)
	})
}
