package core

import (
	"context"
	"errors"
	"sort"
	"testing"
	"time"

	"repro/internal/fixture"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/sched"
)

// The four built-ins self-register, with the paper's policy first and
// the rest sorted.
func TestSchedulersOrder(t *testing.T) {
	names := Schedulers()
	if len(names) < 4 {
		t.Fatalf("want at least the 4 built-ins, got %v", names)
	}
	if names[0] != SchedSlack {
		t.Fatalf("the paper's policy must lead: got %v", names)
	}
	rest := names[1:]
	if !sort.SliceIsSorted(rest, func(i, j int) bool { return rest[i] < rest[j] }) {
		t.Fatalf("tail not sorted: %v", names)
	}
	for _, want := range []SchedulerName{SchedSlack, SchedSlackUni, SchedCydrome, SchedList} {
		if _, ok := Lookup(want); !ok {
			t.Fatalf("built-in %q not registered", want)
		}
	}
}

func TestUnknownSchedulerError(t *testing.T) {
	l := fixture.Sample(machine.Cydra())
	_, err := CompileContext(context.Background(), l, Options{Scheduler: "no-such-policy"})
	if !errors.Is(err, ErrUnknownScheduler) {
		t.Fatalf("err = %v, want ErrUnknownScheduler", err)
	}
	if _, err := Compile(l, Options{Scheduler: "no-such-policy"}); !errors.Is(err, ErrUnknownScheduler) {
		t.Fatalf("Compile err = %v, want ErrUnknownScheduler", err)
	}
}

// An external policy registered at runtime is reachable through Compile
// and listed by Schedulers.
func TestRegisterCustomPolicy(t *testing.T) {
	const name SchedulerName = "zz-custom"
	calls := 0
	Register(name, func(cfg sched.Config) Runner {
		return RunnerFunc(func(ctx context.Context, l *ir.Loop) (*sched.Result, error) {
			calls++
			return sched.ListScheduleContext(ctx, l, cfg)
		})
	})
	defer func() { // the registry is process-global; leave it as found
		registry.Lock()
		delete(registry.m, name)
		registry.Unlock()
	}()

	found := false
	for _, n := range Schedulers() {
		if n == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("%q missing from Schedulers(): %v", name, Schedulers())
	}
	c, err := Compile(fixture.Sample(machine.Cydra()), Options{Scheduler: name, SkipCodegen: true})
	if err != nil || !c.OK() {
		t.Fatalf("custom policy compile: %v", err)
	}
	if calls != 1 {
		t.Fatalf("custom runner called %d times, want 1", calls)
	}
}

func TestRegisterPanics(t *testing.T) {
	for _, tc := range []struct {
		name SchedulerName
		f    Factory
	}{
		{"", func(sched.Config) Runner { return nil }},
		{"x", nil},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%q, %v) did not panic", tc.name, tc.f)
				}
			}()
			Register(tc.name, tc.f)
		}()
	}
}

// Degrade rescues a budget-exhausted compilation with the list
// scheduler, preserving the triggering error as evidence.
func TestCompileDegrade(t *testing.T) {
	l := fixture.Daxpy(machine.Cydra())
	opt := Options{
		Scheduler:   SchedSlack,
		Config:      sched.Config{Budget: sched.Budget{Deadline: time.Nanosecond}},
		SkipCodegen: true,
	}
	// Without Degrade: the typed error, with the partial result.
	c, err := CompileContext(context.Background(), l, opt)
	if !errors.Is(err, sched.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if c == nil || c.OK() {
		t.Fatalf("want a partial, not-OK result, got %+v", c)
	}

	opt.Degrade = true
	c, err = CompileContext(context.Background(), l, opt)
	if err != nil {
		t.Fatalf("degraded compile: %v", err)
	}
	if !c.OK() || !c.Degraded {
		t.Fatalf("want a feasible degraded result, got OK=%v Degraded=%v", c.OK(), c.Degraded)
	}
	if c.BudgetErr == nil || !errors.Is(c.BudgetErr, sched.ErrBudgetExhausted) {
		t.Fatalf("degraded result lost the triggering budget error: %v", c.BudgetErr)
	}
	if c.Result.Policy != "list" {
		t.Fatalf("degraded result produced by %q, want the list scheduler", c.Result.Policy)
	}
}

// A canceled context is not rescued by Degrade — the caller asked out.
func TestDegradeRespectsCancellation(t *testing.T) {
	l := fixture.Daxpy(machine.Cydra())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CompileContext(ctx, l, Options{Scheduler: SchedSlack, Degrade: true, SkipCodegen: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
