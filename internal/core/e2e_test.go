package core

import (
	"testing"

	"repro/internal/frontend"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/schedcheck"
)

// e2eCase is one mini-FORTRAN program compiled, scheduled, code
// generated, and executed on the VLIW simulator against the interpreter.
type e2eCase struct {
	name    string
	src     string
	binding frontend.Binding
}

func e2eCases() []e2eCase {
	fillRamp := func(array string, idx int) ir.Scalar { return ir.FloatS(float64(idx) + 0.5) }
	return []e2eCase{
		{
			name: "paper-sample",
			src: `
      subroutine sample(n, x, y)
      real x(200), y(200)
      integer n, i
      do i = 3, n
        x(i) = x(i-1) + y(i-2)
        y(i) = y(i-1) + x(i-2)
      end do
      end
`,
			binding: frontend.Binding{Ints: map[string]int64{"n": 40}, Fill: fillRamp},
		},
		{
			name: "lll1-hydro",
			src: `
      subroutine lll1(n, q, r, t, x, y, z)
      real x(1100), y(1100), z(1100)
      real q, r, t
      integer n, k
      do k = 1, n
        x(k) = q + y(k)*(r*z(k+10) + t*z(k+11))
      end do
      end
`,
			binding: frontend.Binding{
				Ints:  map[string]int64{"n": 60},
				Reals: map[string]float64{"q": 1.5, "r": 0.25, "t": 2.0},
				Fill:  fillRamp,
			},
		},
		{
			name: "lll5-tridiag",
			src: `
      subroutine lll5(n, x, y, z)
      real x(300), y(300), z(300)
      integer n, i
      do i = 2, n
        x(i) = z(i)*(y(i) - x(i-1))
      end do
      end
`,
			binding: frontend.Binding{Ints: map[string]int64{"n": 50}, Fill: fillRamp},
		},
		{
			name: "inner-product",
			src: `
      subroutine dot(n, q, x, y)
      real x(300), y(300), q
      integer n, i
      do i = 1, n
        q = q + x(i)*y(i)
      end do
      end
`,
			binding: frontend.Binding{
				Ints:  map[string]int64{"n": 64},
				Reals: map[string]float64{"q": 0.0},
				Fill:  fillRamp,
			},
		},
		{
			name: "conditional-clip",
			src: `
      subroutine clip(n, top, x, y)
      real x(300), y(300), top
      integer n, i
      do i = 1, n
        if (x(i) .gt. top) then
          y(i) = top
        else
          y(i) = x(i)
        end if
      end do
      end
`,
			binding: frontend.Binding{
				Ints:  map[string]int64{"n": 48},
				Reals: map[string]float64{"top": 20.0},
				Fill:  fillRamp,
			},
		},
		{
			name: "divide-sqrt",
			src: `
      subroutine dsq(n, x, y, z)
      real x(200), y(200), z(200)
      integer n, i
      do i = 1, n
        z(i) = sqrt(abs(x(i))) + x(i)/y(i)
      end do
      end
`,
			binding: frontend.Binding{Ints: map[string]int64{"n": 24}, Fill: fillRamp},
		},
		{
			name: "stencil-forwarding",
			src: `
      subroutine sten(n, a, b)
      real a(300), b(300)
      integer n, i
      do i = 2, n
        b(i) = 0.25*(a(i-1) + 2.0*a(i) + a(i+1))
      end do
      end
`,
			binding: frontend.Binding{Ints: map[string]int64{"n": 56}, Fill: fillRamp},
		},
		{
			name: "first-difference",
			src: `
      subroutine diff(n, x, y)
      real x(300), y(300)
      integer n, i
      do i = 1, n
        x(i) = y(i+1) - y(i)
      end do
      end
`,
			binding: frontend.Binding{Ints: map[string]int64{"n": 50}, Fill: fillRamp},
		},
		{
			name: "state-recurrence",
			src: `
      subroutine state(n, s, t, x)
      real x(300), s, t
      integer n, i
      do i = 1, n
        s = 0.5*s + t*x(i)
        x(i) = s
      end do
      end
`,
			binding: frontend.Binding{
				Ints:  map[string]int64{"n": 40},
				Reals: map[string]float64{"s": 1.0, "t": 0.75},
				Fill:  fillRamp,
			},
		},
		{
			name: "elseif-triage",
			src: `
      subroutine tri(n, lo2, hi2, x, y)
      integer n, i
      real x(300), y(300), lo2, hi2
      do i = 1, n
        if (x(i) .lt. lo2) then
          y(i) = lo2
        else if (x(i) .gt. hi2) then
          y(i) = hi2
        else
          y(i) = x(i)
        end if
      end do
      end
`,
			binding: frontend.Binding{
				Ints:  map[string]int64{"n": 40},
				Reals: map[string]float64{"lo2": 8.0, "hi2": 30.0},
				Fill:  fillRamp,
			},
		},
		{
			name: "gather-indirect",
			src: `
      subroutine gat(n, ind, a, b)
      integer n, i, ind(100)
      real a(100), b(100)
      do i = 1, n
        b(i) = 2.0*a(ind(i))
      end do
      end
`,
			binding: frontend.Binding{
				Ints: map[string]int64{"n": 30},
				Fill: func(array string, idx int) ir.Scalar {
					if array == "ind" {
						return ir.IntS(int64((idx*7)%100 + 1))
					}
					return ir.FloatS(float64(idx))
				},
			},
		},
	}
}

// The repository's capstone test: every frontend-compiled loop, under
// every scheduler that succeeds, executes identically on the generated
// rotating-register kernel and the sequential interpreter.
func TestFrontendDifferential(t *testing.T) {
	m := machine.Cydra()
	for _, tc := range e2eCases() {
		t.Run(tc.name, func(t *testing.T) {
			_, loops, err := frontend.Compile(tc.src, m)
			if err != nil {
				t.Fatal(err)
			}
			if len(loops) != 1 || loops[0].Ineligible != nil {
				t.Fatalf("compile: %d loops, first ineligible: %v", len(loops), loops[0].Ineligible)
			}
			cl := loops[0]
			env, _, trips, err := cl.BuildEnv(tc.binding)
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range Schedulers() {
				c, err := Compile(cl.Loop, Options{Scheduler: name})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !c.OK() {
					if name == SchedList || name == SchedCydrome {
						continue
					}
					t.Fatalf("%s: gave up", name)
				}
				schedcheck.MustCheck(cl.Loop, c.Result.Schedule)
				if err := VerifyExecution(c, env, trips); err != nil {
					t.Errorf("%s: %v", name, err)
				}
			}
		})
	}
}

// Frontend loops must reach their MII with the slack scheduler — these
// are exactly the simple scientific kernels the paper reports 96%+
// optimality on.
func TestFrontendLoopsReachMII(t *testing.T) {
	m := machine.Cydra()
	for _, tc := range e2eCases() {
		_, loops, err := frontend.Compile(tc.src, m)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Compile(loops[0].Loop, Options{SkipCodegen: true})
		if err != nil {
			t.Fatal(err)
		}
		if !c.OK() || c.Result.Schedule.II != c.Result.Bounds.MII {
			t.Errorf("%s: II %v vs MII %d", tc.name, c.Result.II(), c.Result.Bounds.MII)
		}
	}
}
