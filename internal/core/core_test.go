package core

import (
	"testing"

	"repro/internal/fixture"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/mindist"
	"repro/internal/schedcheck"
)

// The repository's central end-to-end property: for every runnable
// fixture, every scheduler that produces a schedule produces one whose
// generated kernel — rotating registers, stage predicates, exact
// latencies — computes exactly what the sequential loop computes.
func TestDifferentialAllSchedulers(t *testing.T) {
	m := machine.Cydra()
	for _, r := range fixture.Runnables(m) {
		for _, name := range Schedulers() {
			c, err := Compile(r.Loop, Options{Scheduler: name})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, r.Loop.Name, err)
			}
			if !c.OK() {
				if name == SchedList || name == SchedCydrome {
					continue // may legitimately give up (see sched tests)
				}
				t.Fatalf("%s/%s: scheduling gave up", name, r.Loop.Name)
			}
			schedcheck.MustCheck(r.Loop, c.Result.Schedule)
			if err := VerifyExecution(c, r.Env, r.Trips); err != nil {
				t.Errorf("%s/%s: %v\n%s", name, r.Loop.Name, err, c.Kernel)
			}
		}
	}
}

// Differential testing must hold on every machine variant, not just the
// paper's latencies (the Section 8 robustness claim, correctness side).
func TestDifferentialAcrossMachines(t *testing.T) {
	for _, m := range machine.Variants() {
		for _, r := range fixture.Runnables(m) {
			c, err := Compile(r.Loop, Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", m.Name, r.Loop.Name, err)
			}
			if !c.OK() {
				t.Fatalf("%s/%s: scheduling gave up", m.Name, r.Loop.Name)
			}
			if err := VerifyExecution(c, r.Env, r.Trips); err != nil {
				t.Errorf("%s/%s: %v", m.Name, r.Loop.Name, err)
			}
		}
	}
}

// Pressure bookkeeping: MaxLive can never undercut the exact average
// bound ⌈Σ MinLT / II⌉. (MinAvg itself rounds each lifetime up to whole
// registers — Σ⌈MinLT/II⌉ — so on loops with many sub-II lifetimes at a
// huge II, like the divider fixture, MaxLive may sit slightly below
// MinAvg; the paper's Figure 5 population made that case negligible.)
func TestPressureBounds(t *testing.T) {
	m := machine.Cydra()
	for _, r := range fixture.Runnables(m) {
		c, err := Compile(r.Loop, Options{})
		if err != nil || !c.OK() {
			t.Fatalf("%s: compile failed", r.Loop.Name)
		}
		md := c.Result.MinDist
		sumLT := 0
		for _, v := range r.Loop.Values {
			if v.File == ir.RR && v.IsVariant() {
				sumLT += mindist.MinLT(r.Loop, md, v.ID)
			}
		}
		ii := c.Result.Schedule.II
		floor := (sumLT + ii - 1) / ii
		if c.RR.MaxLive < floor {
			t.Errorf("%s: MaxLive %d < ⌈ΣMinLT/II⌉ = %d", r.Loop.Name, c.RR.MaxLive, floor)
		}
		if c.MinAvg <= 0 {
			t.Errorf("%s: MinAvg not populated", r.Loop.Name)
		}
		if c.Kernel == nil || c.Kernel.NRR < c.RR.MaxLive {
			t.Errorf("%s: allocation smaller than MaxLive", r.Loop.Name)
		}
	}
}

// Trip counts below, at, and above the stage count all must verify:
// ramp-up/ramp-down squashing is where kernel-only codegen goes wrong.
func TestShortTripCounts(t *testing.T) {
	m := machine.Cydra()
	r := fixture.RunnableDaxpy(m)
	c, err := Compile(r.Loop, Options{})
	if err != nil || !c.OK() {
		t.Fatal("compile failed")
	}
	for trips := 1; trips <= c.Kernel.Stages+2; trips++ {
		if err := VerifyExecution(c, r.Env, trips); err != nil {
			t.Errorf("trips=%d: %v", trips, err)
		}
	}
}

func TestZeroTrips(t *testing.T) {
	m := machine.Cydra()
	r := fixture.RunnableReduction(m)
	c, err := Compile(r.Loop, Options{})
	if err != nil || !c.OK() {
		t.Fatal("compile failed")
	}
	if err := VerifyExecution(c, r.Env, 0); err != nil {
		t.Errorf("zero-trip run must be a no-op on both engines: %v", err)
	}
}

func TestSkipCodegen(t *testing.T) {
	m := machine.Cydra()
	c, err := Compile(fixture.Sample(m), Options{SkipCodegen: true})
	if err != nil {
		t.Fatal(err)
	}
	if c.Kernel != nil {
		t.Error("SkipCodegen should not generate a kernel")
	}
	if err := VerifyExecution(c, fixture.RunnableSample(m).Env, 4); err == nil {
		t.Error("VerifyExecution without a kernel must fail")
	}
}

func TestUnknownScheduler(t *testing.T) {
	m := machine.Cydra()
	if _, err := Compile(fixture.Sample(m), Options{Scheduler: "magic"}); err == nil {
		t.Error("unknown scheduler must error")
	}
}
