package core

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/ir"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/wire"
)

// TestPooledEquivalence is the correctness bar of the arena work: over
// the full generator corpus and every registered policy, a compilation
// on pooled (dirty, reused) scratch must be bit-identical to one on
// virgin memory — same schedule, same pressure numbers, same effort
// counters, same serialized wire result. The pooled compiles run
// sequentially, so each one inherits arena state ratcheted and dirtied
// by a different loop; NoPool then rebuilds every result from fresh
// allocations for comparison.
func TestPooledEquivalence(t *testing.T) {
	size := 120
	if testing.Short() {
		size = 36
	}
	testPooledEquivalence(t, loopgen.Options{Size: size, Seed: 424})
}

// TestPooledEquivalenceCGRA runs the same differential on the cgra4
// target: its FU-kind table is a different size and shape than the
// paper family's, so pooled arenas handed from a cydra compile to a
// cgra4 compile (and vice versa, as the pool is shared) must resize
// their per-kind scratch rather than reuse stale widths.
func TestPooledEquivalenceCGRA(t *testing.T) {
	size := 60
	if testing.Short() {
		size = 24
	}
	m, ok := machine.Lookup("cgra4")
	if !ok {
		t.Fatal("cgra4 is not registered")
	}
	testPooledEquivalence(t, loopgen.Options{Size: size, Seed: 424, Mach: m})
}

func testPooledEquivalence(t *testing.T, opts loopgen.Options) {
	w, err := loopgen.Build(opts)
	if err != nil {
		t.Fatalf("building workload: %v", err)
	}
	for _, name := range Schedulers() {
		for _, wl := range w.Loops {
			pooled := compileResultHash(t, name, wl.Name, wl.CL.Loop, sched.Config{})
			virgin := compileResultHash(t, name, wl.Name, wl.CL.Loop, sched.Config{NoPool: true})
			if pooled != virgin {
				t.Errorf("%s/%s: pooled result diverges from no-pool result: %s vs %s",
					name, wl.Name, pooled, virgin)
			}
		}
	}
}

// compileResultHash compiles the loop and hashes the serialized wire
// form of every deterministic output a server response carries:
// feasibility, II, the full schedule, the pressure and bound numbers,
// and the effort counters.
func compileResultHash(t *testing.T, name SchedulerName, loopName string, l *ir.Loop, cfg sched.Config) string {
	t.Helper()
	c, err := Compile(l, Options{Scheduler: name, Config: cfg, SkipCodegen: true})
	if err != nil {
		t.Fatalf("%s/%s: %v", name, loopName, err)
	}
	b := c.Result.Bounds
	resp := wire.Response{
		Loop:      loopName,
		Scheduler: string(name),
		OK:        c.OK(),
		Bounds:    wire.Bounds{ResMII: b.ResMII, RecMII: b.RecMII, MII: b.MII},
		Effort:    wire.EffortOf(c.Result.Stats),
	}
	if c.OK() {
		s := c.Result.Schedule
		resp.II = s.II
		resp.Length = s.Length()
		resp.Stages = s.Stages()
		resp.Times = s.Time
		resp.MaxLive = c.RR.MaxLive
		resp.MinAvg = c.MinAvg
		resp.ICR = c.ICR
		resp.GPRs = c.GPRs
	}
	body, err := json.Marshal(&resp)
	if err != nil {
		t.Fatalf("%s/%s: %v", name, loopName, err)
	}
	return fmt.Sprintf("sha256:%x", sha256.Sum256(body))
}
