package frontend

import "strconv"

// Parse parses one subroutine.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.program()
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) skipNewlines() {
	for p.cur().Kind == TokNewline {
		p.pos++
	}
}

func (p *parser) expect(k TokKind, what string) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, errf(t.Line, "expected %s, found %s", what, t)
	}
	p.pos++
	return t, nil
}

func (p *parser) expectKw(kw string) error {
	t := p.cur()
	if t.Kind != TokKw || t.Text != kw {
		return errf(t.Line, "expected %q, found %s", kw, t)
	}
	p.pos++
	return nil
}

func (p *parser) atKw(kw string) bool {
	t := p.cur()
	return t.Kind == TokKw && t.Text == kw
}

func (p *parser) endOfStmt() error {
	t := p.cur()
	switch t.Kind {
	case TokNewline:
		p.pos++
		return nil
	case TokEOF:
		return nil
	}
	return errf(t.Line, "unexpected %s at end of statement", t)
}

func (p *parser) program() (*Program, error) {
	p.skipNewlines()
	if err := p.expectKw("subroutine"); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent, "subroutine name")
	if err != nil {
		return nil, err
	}
	prog := &Program{Name: name.Text}
	if p.cur().Kind == TokLParen {
		p.pos++
		for p.cur().Kind != TokRParen {
			id, err := p.expect(TokIdent, "parameter name")
			if err != nil {
				return nil, err
			}
			prog.Params = append(prog.Params, id.Text)
			if p.cur().Kind == TokComma {
				p.pos++
			}
		}
		p.pos++
	}
	if err := p.endOfStmt(); err != nil {
		return nil, err
	}
	p.skipNewlines()

	// Declarations.
	for p.atKw("integer") || p.atKw("real") || p.atKw("dimension") {
		d, err := p.decl()
		if err != nil {
			return nil, err
		}
		prog.Decls = append(prog.Decls, d)
		p.skipNewlines()
	}

	// Body.
	for {
		p.skipNewlines()
		t := p.cur()
		if t.Kind == TokEOF {
			break
		}
		if p.atKw("end") {
			p.pos++
			break
		}
		if p.atKw("return") || p.atKw("continue") {
			p.pos++
			if err := p.endOfStmt(); err != nil {
				return nil, err
			}
			continue
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		prog.Body = append(prog.Body, s)
	}
	return prog, nil
}

func (p *parser) decl() (*Decl, error) {
	t := p.next() // integer / real / dimension
	d := &Decl{Line: t.Line}
	switch t.Text {
	case "integer":
		d.Type = TInteger
	case "real", "dimension":
		d.Type = TReal
	}
	// Optional *4 / *8 width suffix on real.
	if p.cur().Kind == TokStar {
		p.pos++
		if _, err := p.expect(TokInt, "type width"); err != nil {
			return nil, err
		}
	}
	for {
		id, err := p.expect(TokIdent, "declared name")
		if err != nil {
			return nil, err
		}
		dn := DeclName{Name: id.Text}
		if p.cur().Kind == TokLParen {
			p.pos++
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			dn.Dim = e
			if _, err := p.expect(TokRParen, ")"); err != nil {
				return nil, err
			}
		}
		d.Names = append(d.Names, dn)
		if p.cur().Kind != TokComma {
			break
		}
		p.pos++
	}
	return d, p.endOfStmt()
}

func (p *parser) stmtBlock(terminators ...string) ([]Stmt, string, error) {
	var out []Stmt
	for {
		p.skipNewlines()
		t := p.cur()
		if t.Kind == TokEOF {
			return nil, "", errf(t.Line, "unexpected end of file inside block")
		}
		if t.Kind == TokKw {
			for _, term := range terminators {
				if t.Text == term {
					p.pos++
					return out, term, nil
				}
			}
			// "end do" / "end if" two-word forms.
			if t.Text == "end" {
				nt := p.toks[p.pos+1]
				if nt.Kind == TokKw && (nt.Text == "do" || nt.Text == "if") {
					for _, term := range terminators {
						if term == "end"+nt.Text {
							p.pos += 2
							return out, term, nil
						}
					}
				}
			}
			if t.Text == "continue" {
				p.pos++
				if err := p.endOfStmt(); err != nil {
					return nil, "", err
				}
				continue
			}
		}
		s, err := p.stmt()
		if err != nil {
			return nil, "", err
		}
		out = append(out, s)
	}
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.atKw("do"):
		return p.doStmt()
	case p.atKw("if"):
		return p.ifStmt()
	case t.Kind == TokIdent:
		lhs, err := p.primary()
		if err != nil {
			return nil, err
		}
		switch lhs.(type) {
		case *VarRef, *ArrayRef:
		default:
			return nil, errf(t.Line, "assignment target must be a variable or array element")
		}
		if _, err := p.expect(TokAssign, "="); err != nil {
			return nil, err
		}
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Lhs: lhs, Rhs: rhs, Line: t.Line}, p.endOfStmt()
	case t.Kind == TokKw && (t.Text == "call" || t.Text == "goto"):
		return nil, errf(t.Line, "%s statements cannot be modulo scheduled (paper, Section 6)", t.Text)
	}
	return nil, errf(t.Line, "unexpected %s", t)
}

func (p *parser) doStmt() (Stmt, error) {
	t := p.next() // do
	// Optional label form: "do 10 i = ..." with "10 continue" terminator
	// is not supported; use end do.
	if p.cur().Kind == TokInt {
		return nil, errf(t.Line, "labelled DO loops are not supported; use END DO")
	}
	v, err := p.expect(TokIdent, "loop variable")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign, "="); err != nil {
		return nil, err
	}
	lo, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokComma, ","); err != nil {
		return nil, err
	}
	hi, err := p.expr()
	if err != nil {
		return nil, err
	}
	var step Expr
	if p.cur().Kind == TokComma {
		p.pos++
		step, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if err := p.endOfStmt(); err != nil {
		return nil, err
	}
	body, _, err := p.stmtBlock("enddo")
	if err != nil {
		return nil, err
	}
	if err := p.endOfStmt(); err != nil {
		return nil, err
	}
	return &DoStmt{Var: v.Text, Lo: lo, Hi: hi, Step: step, Body: body, Line: t.Line}, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	t := p.next() // if
	if _, err := p.expect(TokLParen, "("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen, ")"); err != nil {
		return nil, err
	}
	if !p.atKw("then") {
		// Single-statement logical IF: if (cond) stmt
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &IfStmt{Cond: cond, Then: []Stmt{s}, Line: t.Line}, nil
	}
	p.pos++ // then
	if err := p.endOfStmt(); err != nil {
		return nil, err
	}
	thenBlk, term, err := p.stmtBlock("else", "elseif", "endif")
	if err != nil {
		return nil, err
	}
	var elseBlk []Stmt
	switch term {
	case "else":
		if p.atKw("if") {
			// ELSE IF chain: the nested IF is the entire else branch and
			// consumes the shared END IF.
			nested, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			return &IfStmt{Cond: cond, Then: thenBlk, Else: []Stmt{nested}, Line: t.Line}, nil
		}
		if err := p.endOfStmt(); err != nil {
			return nil, err
		}
		elseBlk, _, err = p.stmtBlock("endif")
		if err != nil {
			return nil, err
		}
	case "elseif":
		nested, err := p.elseifStmt()
		if err != nil {
			return nil, err
		}
		return &IfStmt{Cond: cond, Then: thenBlk, Else: []Stmt{nested}, Line: t.Line}, nil
	}
	if err := p.endOfStmt(); err != nil {
		return nil, err
	}
	return &IfStmt{Cond: cond, Then: thenBlk, Else: elseBlk, Line: t.Line}, nil
}

// elseifStmt parses the remainder of an ELSEIF (cond) THEN … chain; the
// ELSEIF keyword has already been consumed.
func (p *parser) elseifStmt() (Stmt, error) {
	t := p.toks[p.pos-1]
	if _, err := p.expect(TokLParen, "("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen, ")"); err != nil {
		return nil, err
	}
	if !p.atKw("then") {
		return nil, errf(t.Line, "elseif requires THEN")
	}
	p.pos++
	if err := p.endOfStmt(); err != nil {
		return nil, err
	}
	thenBlk, term, err := p.stmtBlock("else", "elseif", "endif")
	if err != nil {
		return nil, err
	}
	var elseBlk []Stmt
	switch term {
	case "else":
		if p.atKw("if") {
			nested, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			return &IfStmt{Cond: cond, Then: thenBlk, Else: []Stmt{nested}, Line: t.Line}, nil
		}
		if err := p.endOfStmt(); err != nil {
			return nil, err
		}
		elseBlk, _, err = p.stmtBlock("endif")
		if err != nil {
			return nil, err
		}
	case "elseif":
		nested, err := p.elseifStmt()
		if err != nil {
			return nil, err
		}
		return &IfStmt{Cond: cond, Then: thenBlk, Else: []Stmt{nested}, Line: t.Line}, nil
	}
	if err := p.endOfStmt(); err != nil {
		return nil, err
	}
	return &IfStmt{Cond: cond, Then: thenBlk, Else: elseBlk, Line: t.Line}, nil
}

// Expression grammar, loosest first:
//
//	expr   := orExpr
//	orExpr := andExpr (".or." andExpr)*
//	andExpr:= notExpr (".and." notExpr)*
//	notExpr:= [".not."] relExpr
//	relExpr:= addExpr [relop addExpr]
//	addExpr:= mulExpr (("+"|"-") mulExpr)*
//	mulExpr:= unary (("*"|"/") unary)*
//	unary  := ["-"] primary
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokOr {
		t := p.next()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "||", L: l, R: r, Line: t.Line}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokAnd {
		t := p.next()
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "&&", L: l, R: r, Line: t.Line}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.cur().Kind == TokNot {
		t := p.next()
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: "!", X: x, Line: t.Line}, nil
	}
	return p.relExpr()
}

func (p *parser) relExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == TokRelop {
		t := p.next()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: t.Text, L: l, R: r, Line: t.Line}, nil
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokPlus || p.cur().Kind == TokMinus {
		t := p.next()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		op := "+"
		if t.Kind == TokMinus {
			op = "-"
		}
		l = &BinExpr{Op: op, L: l, R: r, Line: t.Line}
	}
	return l, nil
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokStar || p.cur().Kind == TokSlash {
		t := p.next()
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		op := "*"
		if t.Kind == TokSlash {
			op = "/"
		}
		l = &BinExpr{Op: op, L: l, R: r, Line: t.Line}
	}
	return l, nil
}

func (p *parser) unary() (Expr, error) {
	if p.cur().Kind == TokMinus {
		t := p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: "-", X: x, Line: t.Line}, nil
	}
	if p.cur().Kind == TokPlus {
		p.pos++
		return p.unary()
	}
	return p.primary()
}

var intrinsics = map[string]int{
	"sqrt": 1, "abs": 1, "real": 1, "int": 1, "float": 1,
	"mod": 2, "max": 2, "min": 2, "amax1": 2, "amin1": 2,
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	// REAL(x) conversion: "real" lexes as a keyword but is an intrinsic
	// in expression position.
	if t.Kind == TokKw && t.Text == "real" && p.toks[p.pos+1].Kind == TokLParen {
		p.pos += 2
		arg, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, ")"); err != nil {
			return nil, err
		}
		return &CallExpr{Name: "real", Args: []Expr{arg}, Line: t.Line}, nil
	}
	switch t.Kind {
	case TokInt:
		p.pos++
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errf(t.Line, "bad integer literal %q", t.Text)
		}
		return &IntLit{Val: v, Line: t.Line}, nil
	case TokReal:
		p.pos++
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errf(t.Line, "bad real literal %q", t.Text)
		}
		return &RealLit{Val: v, Line: t.Line}, nil
	case TokLParen:
		p.pos++
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case TokIdent:
		p.pos++
		if p.cur().Kind != TokLParen {
			return &VarRef{Name: t.Text, Line: t.Line}, nil
		}
		p.pos++
		if arity, ok := intrinsics[t.Text]; ok {
			var args []Expr
			for {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.cur().Kind != TokComma {
					break
				}
				p.pos++
			}
			if _, err := p.expect(TokRParen, ")"); err != nil {
				return nil, err
			}
			if len(args) != arity {
				return nil, errf(t.Line, "%s takes %d argument(s), got %d", t.Text, arity, len(args))
			}
			return &CallExpr{Name: t.Text, Args: args, Line: t.Line}, nil
		}
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, ")"); err != nil {
			return nil, err
		}
		return &ArrayRef{Name: t.Text, Index: idx, Line: t.Line}, nil
	}
	return nil, errf(t.Line, "unexpected %s in expression", t)
}
