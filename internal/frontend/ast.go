package frontend

import "fmt"

// BaseType is a declared FORTRAN type.
type BaseType int

const (
	TInteger BaseType = iota
	TReal
)

func (t BaseType) String() string {
	if t == TInteger {
		return "integer"
	}
	return "real"
}

// Program is one parsed subroutine.
type Program struct {
	Name   string
	Params []string
	Decls  []*Decl
	Body   []Stmt // top-level statements (DO loops and assignments)
}

// Decl declares one or more names with a type; array names carry a
// dimension expression (a constant or a parameter name).
type Decl struct {
	Type  BaseType
	Names []DeclName
	Line  int
}

// DeclName is one declared identifier, with an optional array dimension.
type DeclName struct {
	Name string
	// Dim is nil for scalars; for arrays it is the declared extent.
	Dim Expr
}

// Stmt is a statement node.
type Stmt interface {
	stmtNode()
	Pos() int
}

// DoStmt is a DO loop: do Var = Lo, Hi [, Step] ... end do.
type DoStmt struct {
	Var  string
	Lo   Expr
	Hi   Expr
	Step Expr // nil means 1
	Body []Stmt
	Line int
}

// AssignStmt is lhs = rhs; Lhs is a VarRef or ArrayRef.
type AssignStmt struct {
	Lhs  Expr
	Rhs  Expr
	Line int
}

// IfStmt is a block IF with optional ELSE.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Line int
}

func (*DoStmt) stmtNode()     {}
func (*AssignStmt) stmtNode() {}
func (*IfStmt) stmtNode()     {}

func (s *DoStmt) Pos() int     { return s.Line }
func (s *AssignStmt) Pos() int { return s.Line }
func (s *IfStmt) Pos() int     { return s.Line }

// Expr is an expression node.
type Expr interface {
	exprNode()
	Pos() int
}

// IntLit is an integer literal.
type IntLit struct {
	Val  int64
	Line int
}

// RealLit is a real literal.
type RealLit struct {
	Val  float64
	Line int
}

// VarRef references a scalar variable (or the loop index).
type VarRef struct {
	Name string
	Line int
}

// ArrayRef references an array element.
type ArrayRef struct {
	Name  string
	Index Expr
	Line  int
}

// BinExpr is a binary operation; Op is one of + - * / and the relational
// and logical operators ("<", "<=", ">", ">=", "==", "/=", "&&", "||").
type BinExpr struct {
	Op   string
	L, R Expr
	Line int
}

// UnExpr is unary minus or .not. ("-" or "!").
type UnExpr struct {
	Op   string
	X    Expr
	Line int
}

// CallExpr is an intrinsic call: sqrt, abs, max, min, mod, real, int.
type CallExpr struct {
	Name string
	Args []Expr
	Line int
}

func (*IntLit) exprNode()   {}
func (*RealLit) exprNode()  {}
func (*VarRef) exprNode()   {}
func (*ArrayRef) exprNode() {}
func (*BinExpr) exprNode()  {}
func (*UnExpr) exprNode()   {}
func (*CallExpr) exprNode() {}

func (e *IntLit) Pos() int   { return e.Line }
func (e *RealLit) Pos() int  { return e.Line }
func (e *VarRef) Pos() int   { return e.Line }
func (e *ArrayRef) Pos() int { return e.Line }
func (e *BinExpr) Pos() int  { return e.Line }
func (e *UnExpr) Pos() int   { return e.Line }
func (e *CallExpr) Pos() int { return e.Line }

// Error is a positioned frontend diagnostic.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}
