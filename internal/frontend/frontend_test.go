package frontend

import (
	"math"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/mii"
	"repro/internal/rt"
	"repro/internal/semantics"
)

const sampleSrc = `
      subroutine sample(n, x, y)
      real x(1001), y(1001)
      integer n, i
      do i = 3, n
        x(i) = x(i-1) + y(i-2)
        y(i) = y(i-1) + x(i-2)
      end do
      end
`

func compileOne(t *testing.T, src string) *CompiledLoop {
	t.Helper()
	_, loops, err := Compile(src, machine.Cydra())
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 1 {
		t.Fatalf("want 1 loop, got %d", len(loops))
	}
	if loops[0].Ineligible != nil {
		t.Fatalf("loop rejected: %v", loops[0].Ineligible)
	}
	return loops[0]
}

// The paper's Figure 1 loop: load/store elimination must remove every
// load (all four array reads are covered by the two stores), leaving a
// body whose MII is 2 — exactly the paper's worked example.
func TestSampleLoopLSE(t *testing.T) {
	cl := compileOne(t, sampleSrc)
	loads := cl.Loop.CountOps(func(op *ir.Op) bool { return op.Opcode == machine.Load })
	if loads != 0 {
		t.Errorf("LSE should eliminate all 4 loads, %d remain\n%s", loads, cl.Loop)
	}
	stores := cl.Loop.CountOps(func(op *ir.Op) bool { return op.Opcode == machine.Store })
	if stores != 2 {
		t.Errorf("want 2 stores, got %d", stores)
	}
	b, err := mii.Compute(cl.Loop)
	if err != nil {
		t.Fatal(err)
	}
	if b.MII != 2 {
		t.Errorf("MII = %d, want 2 (the paper schedules this loop at II=2)\n%s", b.MII, cl.Loop)
	}
	if !cl.Loop.HasRecurrence() {
		t.Error("cross-coupled recurrences should be detected")
	}
	if cl.Loop.HasConditional {
		t.Error("no conditional in this loop")
	}
}

// End-to-end semantics through the interpreter: x/y follow the
// recurrence from the seeded boundary values.
func TestSampleLoopExecution(t *testing.T) {
	cl := compileOne(t, sampleSrc)
	env, layout, trips, err := cl.BuildEnv(Binding{
		Ints: map[string]int64{"n": 10},
		Fill: func(array string, idx int) ir.Scalar {
			if idx <= 2 {
				base := 1.0
				if array == "y" {
					base = 2.0
				}
				return ir.FloatS(base * float64(idx))
			}
			return ir.FloatS(0)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if trips != 8 {
		t.Fatalf("trips = %d, want 8", trips)
	}
	res, err := interp.Run(cl.Loop, env, trips)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: straightforward Go re-implementation.
	x := map[int]float64{1: 1, 2: 2}
	y := map[int]float64{1: 2, 2: 4}
	for i := 3; i <= 10; i++ {
		x[i] = x[i-1] + y[i-2]
		y[i] = y[i-1] + x[i-2]
	}
	for i := 3; i <= 10; i++ {
		if got := res.Mem[layout.Base["x"]+int64(i)-1].F; got != x[i] {
			t.Errorf("x(%d) = %v, want %v", i, got, x[i])
		}
		if got := res.Mem[layout.Base["y"]+int64(i)-1].F; got != y[i] {
			t.Errorf("y(%d) = %v, want %v", i, got, y[i])
		}
	}
}

func TestDaxpyParamBound(t *testing.T) {
	src := `
      subroutine daxpy(n, a, x, y)
      integer n, i
      real a, x(500), y(500)
      do i = 1, n
        y(i) = y(i) + a*x(i)
      end do
      end
`
	cl := compileOne(t, src)
	if cl.Trips != 0 {
		t.Errorf("trip count should be unknown (param bound), got %d", cl.Trips)
	}
	env, layout, trips, err := cl.BuildEnv(Binding{
		Ints:  map[string]int64{"n": 40},
		Reals: map[string]float64{"a": 2.5},
		Fill: func(array string, idx int) ir.Scalar {
			if array == "x" {
				return ir.FloatS(float64(idx))
			}
			return ir.FloatS(100 + float64(idx))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if trips != 40 {
		t.Fatalf("trips = %d", trips)
	}
	res, err := interp.Run(cl.Loop, env, trips)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 40; i++ {
		want := 100 + float64(i) + 2.5*float64(i)
		if got := res.Mem[layout.Base["y"]+int64(i)-1].F; got != want {
			t.Fatalf("y(%d) = %v, want %v", i, got, want)
		}
	}
}

// A reduction with a carried scalar and a conditional: exercises
// if-conversion, the predicated merge, and the scalar recipe.
func TestConditionalReduction(t *testing.T) {
	src := `
      subroutine condsum(n, x, s)
      integer n, i
      real x(300), s
      do i = 1, n
        if (x(i) .gt. 0.0) then
          s = s + x(i)
        else
          s = s - 1.0
        end if
      end do
      end
`
	cl := compileOne(t, src)
	if !cl.Loop.HasConditional {
		t.Error("HasConditional should be set")
	}
	if cl.Loop.NumBB < 3 {
		t.Errorf("NumBB = %d, want ≥ 3 for an if/else", cl.Loop.NumBB)
	}
	env, _, trips, err := cl.BuildEnv(Binding{
		Ints:  map[string]int64{"n": 30},
		Reals: map[string]float64{"s": 5.0},
		Fill: func(array string, idx int) ir.Scalar {
			if idx%3 == 0 {
				return ir.FloatS(-float64(idx))
			}
			return ir.FloatS(float64(idx))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(cl.Loop, env, trips)
	if err != nil {
		t.Fatal(err)
	}
	want := 5.0
	for i := 1; i <= 30; i++ {
		if i%3 == 0 {
			want -= 1.0
		} else {
			want += float64(i)
		}
	}
	got := res.LiveOut[cl.FinalScalar["s"]]
	if math.Abs(got.F-want) > 1e-9 {
		t.Errorf("s = %v, want %v", got.F, want)
	}
}

// Load-load forwarding: a 3-point stencil over a read-only array should
// load each element once and forward the other two reads in registers.
func TestStencilLoadForwarding(t *testing.T) {
	src := `
      subroutine stencil(n, a, b)
      integer n, i
      real a(400), b(400)
      do i = 2, n
        b(i) = a(i-1) + a(i) + a(i+1)
      end do
      end
`
	cl := compileOne(t, src)
	loads := cl.Loop.CountOps(func(op *ir.Op) bool { return op.Opcode == machine.Load })
	if loads != 1 {
		t.Errorf("want 1 leader load (a(i+1)), got %d\n%s", loads, cl.Loop)
	}
	env, layout, trips, err := cl.BuildEnv(Binding{
		Ints: map[string]int64{"n": 50},
		Fill: func(array string, idx int) ir.Scalar {
			if array == "a" {
				return ir.FloatS(float64(idx * idx))
			}
			return ir.FloatS(0)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(cl.Loop, env, trips)
	if err != nil {
		t.Fatal(err)
	}
	for i := 2; i <= 50; i++ {
		want := float64((i-1)*(i-1) + i*i + (i+1)*(i+1))
		if got := res.Mem[layout.Base["b"]+int64(i)-1].F; got != want {
			t.Fatalf("b(%d) = %v, want %v", i, got, want)
		}
	}
}

// Indirect addressing a(ind(i)) forces conservative dependences but must
// still compile and execute correctly.
func TestIndirectSubscript(t *testing.T) {
	src := `
      subroutine gather(n, ind, a, b)
      integer n, i, ind(200)
      real a(200), b(200)
      do i = 1, n
        b(i) = a(ind(i))
      end do
      end
`
	cl := compileOne(t, src)
	env, layout, trips, err := cl.BuildEnv(Binding{
		Ints: map[string]int64{"n": 20},
		Fill: func(array string, idx int) ir.Scalar {
			switch array {
			case "ind":
				return ir.IntS(int64(201 - idx - 180)) // 21-idx: reversal
			case "a":
				return ir.FloatS(float64(idx) * 3)
			}
			return ir.FloatS(0)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(cl.Loop, env, trips)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		want := float64(21-i) * 3
		if got := res.Mem[layout.Base["b"]+int64(i)-1].F; got != want {
			t.Fatalf("b(%d) = %v, want %v", i, got, want)
		}
	}
}

// The DO variable used as a value (not just a subscript) must become an
// integer recurrence with an IToF conversion.
func TestIndexAsValue(t *testing.T) {
	src := `
      subroutine ramp(n, x)
      integer n, i
      real x(300)
      do i = 1, n
        x(i) = real(i) * 0.5
      end do
      end
`
	cl := compileOne(t, src)
	env, layout, trips, err := cl.BuildEnv(Binding{Ints: map[string]int64{"n": 25}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(cl.Loop, env, trips)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 25; i++ {
		if got := res.Mem[layout.Base["x"]+int64(i)-1].F; got != float64(i)*0.5 {
			t.Fatalf("x(%d) = %v", i, got)
		}
	}
}

func TestEligibilityRejections(t *testing.T) {
	short := `
      subroutine short(x)
      real x(10)
      integer i
      do i = 1, 3
        x(i) = x(i) + 1.0
      end do
      end
`
	_, loops, err := Compile(short, machine.Cydra())
	if err != nil {
		t.Fatal(err)
	}
	if loops[0].Ineligible == nil || !strings.Contains(loops[0].Ineligible.Error(), "trip count") {
		t.Errorf("trip count 3 must be rejected, got %v", loops[0].Ineligible)
	}

	var b strings.Builder
	b.WriteString("      subroutine big(n, x)\n      real x(100)\n      integer n, i\n      do i = 1, n\n")
	for k := 0; k < 16; k++ {
		b.WriteString("        if (x(i) .gt. 0.0) then\n          x(i) = x(i) - 1.0\n        end if\n")
	}
	b.WriteString("      end do\n      end\n")
	_, loops, err = Compile(b.String(), machine.Cydra())
	if err != nil {
		t.Fatal(err)
	}
	if loops[0].Ineligible == nil || !strings.Contains(loops[0].Ineligible.Error(), "basic blocks") {
		t.Errorf("33 basic blocks must be rejected, got %v", loops[0].Ineligible)
	}
}

func TestNestedLoopPicksInnermost(t *testing.T) {
	src := `
      subroutine mm(n, a, b)
      integer n, i, j
      real a(100), b(100)
      do i = 1, n
        do j = 1, n
          a(j) = a(j) + b(j)
        end do
      end do
      end
`
	_, loops, err := Compile(src, machine.Cydra())
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 1 {
		t.Fatalf("want 1 innermost loop, got %d", len(loops))
	}
	if loops[0].Ineligible != nil {
		t.Fatalf("inner loop rejected: %v", loops[0].Ineligible)
	}
	if loops[0].Do.Var != "j" {
		t.Errorf("innermost variable = %s, want j", loops[0].Do.Var)
	}
	// Outer index i is invariant inside; it is simply unused here.
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"      subroutine s\n      do 10 i = 1, 5\n10    continue\n      end\n",
		"      subroutine s(x)\n      real x(5)\n      call foo(x)\n      end\n",
		"      subroutine s(x)\n      real x(5)\n      x(1) = x(2)**2\n      end\n",
	}
	for i, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d should fail to parse", i)
		}
	}
}

func TestLexerBasics(t *testing.T) {
	toks, err := Lex("x = a .lt. 1.5e2 ! comment\nC full comment line\n  y = .5")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	want := []TokKind{TokIdent, TokAssign, TokIdent, TokRelop, TokReal, TokNewline,
		TokIdent, TokAssign, TokReal, TokNewline, TokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("token kinds %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d: %v, want %v (all: %v)", i, kinds[i], want[i], toks)
		}
	}
}

// The differential harness in core_test covers fixtures; here we close
// the loop for frontend-generated IR: interp and the VLIW simulator must
// agree on a frontend-compiled loop (via the core facade's helpers is a
// cycle, so compare raw results).
func TestFrontendEndToEnd(t *testing.T) {
	cl := compileOne(t, sampleSrc)
	env, _, trips, err := cl.BuildEnv(Binding{
		Ints: map[string]int64{"n": 20},
		Fill: func(array string, idx int) ir.Scalar {
			return ir.FloatS(float64(idx) + 0.25)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := interp.Run(cl.Loop, env, trips)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := interp.Run(cl.Loop, cloneEnv(env), trips)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res1.Mem {
		if !semantics.Equal(res1.Mem[i], res2.Mem[i]) {
			t.Fatal("interpreter is not deterministic?!")
		}
	}
}

func cloneEnv(e *rt.Env) *rt.Env {
	c := &rt.Env{
		Mem:  append([]ir.Scalar(nil), e.Mem...),
		GPR:  map[ir.ValueID]ir.Scalar{},
		Init: map[rt.InstKey]ir.Scalar{},
	}
	for k, v := range e.GPR {
		c.GPR[k] = v
	}
	for k, v := range e.Init {
		c.Init[k] = v
	}
	return c
}

// ELSE IF chains lower to nested predicated regions with PAnd-combined
// guards.
func TestElseIfChain(t *testing.T) {
	src := `
      subroutine tri(n, lo2, hi2, x, y)
      integer n, i
      real x(300), y(300), lo2, hi2
      do i = 1, n
        if (x(i) .lt. lo2) then
          y(i) = lo2
        else if (x(i) .gt. hi2) then
          y(i) = hi2
        else
          y(i) = x(i)
        end if
      end do
      end
`
	cl := compileOne(t, src)
	env, layout, trips, err := cl.BuildEnv(Binding{
		Ints:  map[string]int64{"n": 30},
		Reals: map[string]float64{"lo2": 5.0, "hi2": 20.0},
		Fill: func(array string, idx int) ir.Scalar {
			return ir.FloatS(float64(idx))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(cl.Loop, env, trips)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 30; i++ {
		want := float64(i)
		if want < 5 {
			want = 5
		}
		if want > 20 {
			want = 20
		}
		if got := res.Mem[layout.Base["y"]+int64(i)-1].F; got != want {
			t.Fatalf("y(%d) = %v, want %v", i, got, want)
		}
	}
}
