package frontend

import (
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/machine"
)

// guard returns the current predicate operand (nil when unpredicated).
func (lo *lowerer) guard() (*ir.Operand, bool) {
	return lo.pred, lo.predNeg
}

// emit appends an op guarded by the current predicate and returns its
// result value id (ir.None for stores).
func (lo *lowerer) emit(code machine.Opcode, args []ir.Operand, name string, file ir.RegFile, typ ir.Type) ir.ValueID {
	var result ir.ValueID = ir.None
	if code != machine.Store {
		result = lo.l.NewValue(name, file, typ).ID
	}
	op := lo.l.NewOp(code, args, result)
	if p, neg := lo.guard(); p != nil {
		cp := *p
		op.Pred = &cp
		op.PredNeg = neg
	}
	return result
}

// emitUnpred appends an op with no guard regardless of context
// (speculative pure ops, condition cones, leader loads).
func (lo *lowerer) emitUnpred(code machine.Opcode, args []ir.Operand, name string, file ir.RegFile, typ ir.Type) ir.ValueID {
	savedP, savedN := lo.pred, lo.predNeg
	lo.pred, lo.predNeg = nil, false
	v := lo.emit(code, args, name, file, typ)
	lo.pred, lo.predNeg = savedP, savedN
	return v
}

// constVal interns a literal as a def-less GPR constant.
func (lo *lowerer) constVal(s ir.Scalar, typ ir.Type, name string) ir.Operand {
	key := s
	if v, ok := lo.constCache[key]; ok {
		return ir.Operand{Val: v}
	}
	v := lo.l.Const(name, typ, s)
	lo.constCache[key] = v.ID
	return ir.Operand{Val: v.ID}
}

// invariantScalar returns the GPR live-in for a scalar the loop never
// assigns (parameters, outer-loop indices, globals).
func (lo *lowerer) invariantScalar(name string) ir.Operand {
	if v, ok := lo.cl.Scalars[name]; ok {
		return ir.Operand{Val: v}
	}
	typ := ir.Float
	if lo.u.Syms[name].Type == TInteger {
		typ = ir.Int
	}
	v := lo.l.NewValue(name, ir.GPR, typ)
	lo.cl.Scalars[name] = v.ID
	return ir.Operand{Val: v.ID}
}

// stepOperand yields the loop step as an operand.
func (lo *lowerer) stepOperand() ir.Operand {
	if lo.stepKnown {
		return lo.constVal(ir.IntS(lo.step), ir.Addr, "step")
	}
	op, t, err := lo.expr(lo.do.Step)
	if err != nil || t != TInteger {
		// Step was type-checked already; non-integer cannot happen.
		panic("frontend: bad step")
	}
	return op
}

// indexValue materializes the DO variable as an address recurrence.
func (lo *lowerer) indexValue() ir.Operand {
	if lo.indexVal >= 0 {
		return ir.Operand{Val: lo.indexVal}
	}
	v := lo.l.NewValue("i."+lo.do.Var, ir.RR, ir.Int)
	lo.l.NewOp(machine.AAdd, []ir.Operand{{Val: v.ID, Omega: 1}, lo.stepOperand()}, v.ID)
	lo.indexVal = v.ID
	lo.cl.Recipes = append(lo.cl.Recipes, Recipe{Val: v.ID, Kind: RecipeIndex})
	return ir.Operand{Val: v.ID}
}

// pointerFor materializes the address recurrence for affine accesses
// a(i + c): one strength-reduced pointer per distinct (array, c).
func (lo *lowerer) pointerFor(array string, c int64) ir.Operand {
	key := ConstAddrKey{array, c}
	if v, ok := lo.pointers[key]; ok {
		return ir.Operand{Val: v}
	}
	v := lo.l.NewValue(fmt.Sprintf("p.%s%+d", array, c), ir.RR, ir.Addr)
	lo.l.NewOp(machine.AAdd, []ir.Operand{{Val: v.ID, Omega: 1}, lo.stepOperand()}, v.ID)
	lo.pointers[key] = v.ID
	lo.cl.Recipes = append(lo.cl.Recipes, Recipe{Val: v.ID, Kind: RecipeAffine, Array: array, C: c})
	return ir.Operand{Val: v.ID}
}

// constAddr returns the GPR live-in address of an invariant element.
func (lo *lowerer) constAddr(array string, idx int64) ir.Operand {
	key := ConstAddrKey{array, idx}
	if v, ok := lo.cl.ConstAddrs[key]; ok {
		return ir.Operand{Val: v}
	}
	v := lo.l.NewValue(fmt.Sprintf("addr.%s(%d)", array, idx), ir.GPR, ir.Addr)
	lo.cl.ConstAddrs[key] = v.ID
	return ir.Operand{Val: v.ID}
}

// arrayBase returns the GPR live-in base address of an array (used only
// for non-affine subscripts).
func (lo *lowerer) arrayBase(array string) ir.Operand {
	if v, ok := lo.cl.ArrayBases[array]; ok {
		return ir.Operand{Val: v}
	}
	v := lo.l.NewValue("base."+array, ir.GPR, ir.Addr)
	lo.cl.ArrayBases[array] = v.ID
	return ir.Operand{Val: v.ID}
}

// storePlaceholder returns (creating on demand) the placeholder value
// standing for "the value the array's single store writes", patched to
// the real stored value after lowering.
func (lo *lowerer) storePlaceholder(array string, typ ir.Type) ir.ValueID {
	if v, ok := lo.plan.storePlaceholder[array]; ok {
		return v
	}
	v := lo.l.NewValue("fwd."+array, ir.RR, typ)
	lo.plan.storePlaceholder[array] = v.ID
	return v.ID
}

// stmts lowers a statement list under the current guard.
func (lo *lowerer) stmts(list []Stmt) error {
	for _, s := range list {
		switch s := s.(type) {
		case *AssignStmt:
			if err := lo.assign(s); err != nil {
				return err
			}
		case *IfStmt:
			if err := lo.ifStmt(s); err != nil {
				return err
			}
		case *DoStmt:
			return errf(s.Pos(), "nested DO reached lowering (bug)")
		}
	}
	return nil
}

func (lo *lowerer) ifStmt(s *IfStmt) error {
	lo.numIf++
	cond, err := lo.cond(s.Cond)
	if err != nil {
		return err
	}
	parentP, parentN := lo.pred, lo.predNeg

	// Combined guards: with no parent the compare value itself guards
	// both branches (the else side via the negated sense); under a
	// parent we materialize parent∧p and parent∧¬p.
	setGuard := func(neg bool) error {
		if parentP == nil {
			lo.pred, lo.predNeg = &cond, neg
			return nil
		}
		parent := *parentP
		if parentN {
			// Materialize the positive sense of the parent.
			pv := lo.emitUnpred(machine.PNot, []ir.Operand{parent}, "np", ir.ICR, ir.Pred)
			parent = ir.Operand{Val: pv}
		}
		leaf := cond
		if neg {
			nv := lo.emitUnpred(machine.PNot, []ir.Operand{cond}, "nc", ir.ICR, ir.Pred)
			leaf = ir.Operand{Val: nv}
		}
		cv := lo.emitUnpred(machine.PAnd, []ir.Operand{parent, leaf}, "pp", ir.ICR, ir.Pred)
		lo.pred, lo.predNeg = &ir.Operand{Val: cv}, false
		return nil
	}

	if err := setGuard(false); err != nil {
		return err
	}
	if err := lo.stmts(s.Then); err != nil {
		return err
	}
	if len(s.Else) > 0 {
		if err := setGuard(true); err != nil {
			return err
		}
		if err := lo.stmts(s.Else); err != nil {
			return err
		}
	}
	lo.pred, lo.predNeg = parentP, parentN
	return nil
}

// cond lowers a condition expression to a predicate operand. Condition
// cones are evaluated speculatively (unpredicated): they read only
// always-defined values — loads issued fresh and unguarded, scalar
// merges, and invariants — so speculation is safe.
func (lo *lowerer) cond(e Expr) (ir.Operand, error) {
	savedP, savedN := lo.pred, lo.predNeg
	lo.pred, lo.predNeg = nil, false
	defer func() { lo.pred, lo.predNeg = savedP, savedN }()
	return lo.condIn(e)
}

func (lo *lowerer) condIn(e Expr) (ir.Operand, error) {
	switch e := e.(type) {
	case *BinExpr:
		switch e.Op {
		case "&&", "||":
			l, err := lo.condIn(e.L)
			if err != nil {
				return l, err
			}
			r, err := lo.condIn(e.R)
			if err != nil {
				return r, err
			}
			code := machine.PAnd
			if e.Op == "||" {
				code = machine.POr
			}
			return ir.Operand{Val: lo.emit(code, []ir.Operand{l, r}, "p", ir.ICR, ir.Pred)}, nil
		case "<", "<=", ">", ">=", "==", "/=":
			lop, lt, err := lo.expr(e.L)
			if err != nil {
				return lop, err
			}
			rop, rt, err := lo.expr(e.R)
			if err != nil {
				return rop, err
			}
			t := TInteger
			if lt == TReal || rt == TReal {
				t = TReal
				lop = lo.convert(lop, lt, TReal)
				rop = lo.convert(rop, rt, TReal)
			}
			var code machine.Opcode
			switch e.Op {
			case "<":
				code = pick(t, machine.ICmpLT, machine.FCmpLT)
			case "<=":
				code = pick(t, machine.ICmpLE, machine.FCmpLE)
			case ">":
				code = pick(t, machine.ICmpGT, machine.FCmpGT)
			case ">=":
				code = pick(t, machine.ICmpGE, machine.FCmpGE)
			case "==":
				code = pick(t, machine.ICmpEQ, machine.FCmpEQ)
			default:
				code = pick(t, machine.ICmpNE, machine.FCmpNE)
			}
			return ir.Operand{Val: lo.emit(code, []ir.Operand{lop, rop}, "p", ir.ICR, ir.Pred)}, nil
		}
	case *UnExpr:
		if e.Op == "!" {
			x, err := lo.condIn(e.X)
			if err != nil {
				return x, err
			}
			return ir.Operand{Val: lo.emit(machine.PNot, []ir.Operand{x}, "p", ir.ICR, ir.Pred)}, nil
		}
	}
	return ir.Operand{}, errf(e.Pos(), "condition must be a comparison or logical expression")
}

func pick(t BaseType, i, f machine.Opcode) machine.Opcode {
	if t == TInteger {
		return i
	}
	return f
}

func (lo *lowerer) convert(op ir.Operand, from, to BaseType) ir.Operand {
	if from == to {
		return op
	}
	if to == TReal {
		return ir.Operand{Val: lo.emit(machine.IToF, []ir.Operand{op}, "cvt", ir.RR, ir.Float)}
	}
	return ir.Operand{Val: lo.emit(machine.FToI, []ir.Operand{op}, "cvt", ir.RR, ir.Int)}
}

// expr lowers an expression, returning its operand and type. Ops emitted
// here carry the current guard.
func (lo *lowerer) expr(e Expr) (ir.Operand, BaseType, error) {
	switch e := e.(type) {
	case *IntLit:
		return lo.constVal(ir.IntS(e.Val), ir.Int, fmt.Sprintf("c%d", e.Val)), TInteger, nil
	case *RealLit:
		return lo.constVal(ir.FloatS(e.Val), ir.Float, fmt.Sprintf("c%g", e.Val)), TReal, nil
	case *VarRef:
		if e.Name == lo.do.Var {
			return lo.indexValue(), TInteger, nil
		}
		sym := lo.u.Syms[e.Name]
		if lo.assignedScalars[e.Name] {
			return lo.scalarRead(e.Name), sym.Type, nil
		}
		return lo.invariantScalar(e.Name), sym.Type, nil
	case *ArrayRef:
		return lo.arrayLoad(e)
	case *BinExpr:
		return lo.binExpr(e)
	case *UnExpr:
		if e.Op == "!" {
			return ir.Operand{}, TInteger, errf(e.Pos(), ".not. outside a condition")
		}
		x, t, err := lo.expr(e.X)
		if err != nil {
			return x, t, err
		}
		if t == TReal {
			return ir.Operand{Val: lo.emit(machine.FNeg, []ir.Operand{x}, "neg", ir.RR, ir.Float)}, TReal, nil
		}
		zero := lo.constVal(ir.IntS(0), ir.Int, "c0")
		return ir.Operand{Val: lo.emit(machine.ISub, []ir.Operand{zero, x}, "neg", ir.RR, ir.Int)}, TInteger, nil
	case *CallExpr:
		return lo.call(e)
	}
	return ir.Operand{}, TReal, errf(e.Pos(), "unsupported expression")
}

func (lo *lowerer) binExpr(e *BinExpr) (ir.Operand, BaseType, error) {
	switch e.Op {
	case "&&", "||", "<", "<=", ">", ">=", "==", "/=":
		return ir.Operand{}, TInteger, errf(e.Pos(), "logical expression used as a value")
	}
	l, lt, err := lo.expr(e.L)
	if err != nil {
		return l, lt, err
	}
	r, rt, err := lo.expr(e.R)
	if err != nil {
		return r, rt, err
	}
	t := TInteger
	if lt == TReal || rt == TReal {
		t = TReal
		l = lo.convert(l, lt, TReal)
		r = lo.convert(r, rt, TReal)
	}
	var code machine.Opcode
	switch e.Op {
	case "+":
		code = pick(t, machine.IAdd, machine.FAdd)
	case "-":
		code = pick(t, machine.ISub, machine.FSub)
	case "*":
		code = pick(t, machine.IMul, machine.FMul)
	case "/":
		code = pick(t, machine.IDiv, machine.FDiv)
	default:
		return ir.Operand{}, t, errf(e.Pos(), "unsupported operator %q", e.Op)
	}
	typ := ir.Int
	if t == TReal {
		typ = ir.Float
	}
	return ir.Operand{Val: lo.emit(code, []ir.Operand{l, r}, "t", ir.RR, typ)}, t, nil
}

func (lo *lowerer) call(e *CallExpr) (ir.Operand, BaseType, error) {
	args := make([]ir.Operand, len(e.Args))
	types := make([]BaseType, len(e.Args))
	for i, a := range e.Args {
		op, t, err := lo.expr(a)
		if err != nil {
			return op, t, err
		}
		args[i], types[i] = op, t
	}
	toReal := func(i int) ir.Operand { return lo.convert(args[i], types[i], TReal) }
	switch e.Name {
	case "sqrt":
		return ir.Operand{Val: lo.emit(machine.FSqrt, []ir.Operand{toReal(0)}, "t", ir.RR, ir.Float)}, TReal, nil
	case "abs":
		if types[0] == TInteger {
			return ir.Operand{}, TInteger, errf(e.Pos(), "integer abs is not supported; use real operands")
		}
		return ir.Operand{Val: lo.emit(machine.FAbs, args[:1], "t", ir.RR, ir.Float)}, TReal, nil
	case "real", "float":
		return lo.convert(args[0], types[0], TReal), TReal, nil
	case "int":
		return lo.convert(args[0], types[0], TInteger), TInteger, nil
	case "mod":
		if types[0] != TInteger || types[1] != TInteger {
			return ir.Operand{}, TInteger, errf(e.Pos(), "mod requires integer operands")
		}
		return ir.Operand{Val: lo.emit(machine.IMod, args, "t", ir.RR, ir.Int)}, TInteger, nil
	case "max", "amax1":
		return ir.Operand{Val: lo.emit(machine.FMax, []ir.Operand{toReal(0), toReal(1)}, "t", ir.RR, ir.Float)}, TReal, nil
	case "min", "amin1":
		return ir.Operand{Val: lo.emit(machine.FMin, []ir.Operand{toReal(0), toReal(1)}, "t", ir.RR, ir.Float)}, TReal, nil
	}
	return ir.Operand{}, TReal, errf(e.Pos(), "unknown intrinsic %s", e.Name)
}

// scalarRead reads a loop-assigned scalar: the current version if one
// exists this iteration, else the previous iteration's final version via
// a carried placeholder (patched later).
func (lo *lowerer) scalarRead(name string) ir.Operand {
	if cur, ok := lo.scalarCur[name]; ok {
		return cur
	}
	return ir.Operand{Val: lo.carriedPlaceholder(name)}
}

// carriedPlaceholder is patched to (final version, ω+1) by patchCarried.
func (lo *lowerer) carriedPlaceholder(name string) ir.ValueID {
	if v, ok := lo.carried[name]; ok {
		return v
	}
	typ := ir.Float
	if lo.u.Syms[name].Type == TInteger {
		typ = ir.Int
	}
	v := lo.l.NewValue("carry."+name, ir.RR, typ)
	lo.carried[name] = v.ID
	return v.ID
}

// assign lowers one assignment statement under the current guard.
func (lo *lowerer) assign(s *AssignStmt) error {
	switch lhs := s.Lhs.(type) {
	case *VarRef:
		if lhs.Name == lo.do.Var {
			return errf(s.Pos(), "assignment to the DO variable")
		}
		sym := lo.u.Syms[lhs.Name]
		rhs, rt, err := lo.expr(s.Rhs)
		if err != nil {
			return err
		}
		rhs = lo.convert(rhs, rt, sym.Type)
		if p, neg := lo.guard(); p != nil {
			// Predicated assignment: a merge value with two defs under
			// complementary senses — the Cydra way of joining branches.
			typ := ir.Float
			copyOp := machine.FCopy
			if sym.Type == TInteger {
				typ, copyOp = ir.Int, machine.Copy
			}
			merge := lo.l.NewValue("m."+lhs.Name, ir.RR, typ)
			old := lo.scalarRead(lhs.Name)
			d1 := lo.l.NewOp(copyOp, []ir.Operand{rhs}, merge.ID)
			cp1 := *p
			d1.Pred, d1.PredNeg = &cp1, neg
			d2 := lo.l.NewOp(copyOp, []ir.Operand{old}, merge.ID)
			cp2 := *p
			d2.Pred, d2.PredNeg = &cp2, !neg
			lo.scalarCur[lhs.Name] = ir.Operand{Val: merge.ID}
		} else {
			lo.scalarCur[lhs.Name] = rhs
		}
		return nil
	case *ArrayRef:
		sym := lo.u.Syms[lhs.Name]
		data, dt, err := lo.expr(s.Rhs)
		if err != nil {
			return err
		}
		data = lo.convert(data, dt, sym.Type)
		addr, aff, err := lo.address(lhs)
		if err != nil {
			return err
		}
		op := lo.l.NewOp(machine.Store, []ir.Operand{addr, data}, ir.None)
		if p, neg := lo.guard(); p != nil {
			cp := *p
			op.Pred, op.PredNeg = &cp, neg
		}
		lo.emitted = append(lo.emitted, &emittedAccess{op: op.ID, isStore: true, array: lhs.Name, aff: aff, order: len(lo.emitted)})
		// Remember the stored value for store-forwarded loads.
		if _, forwards := lo.plan.storePlaceholder[lhs.Name]; forwards || lo.mayForwardStore(lhs.Name) {
			lo.plan.storeVal[lhs.Name] = data.Val
			lo.plan.storeValOmega[lhs.Name] = data.Omega
		}
		return nil
	}
	return errf(s.Pos(), "bad assignment target")
}

// mayForwardStore reports whether some load of the array was planned to
// forward from its store.
func (lo *lowerer) mayForwardStore(array string) bool {
	for k := range lo.plan.storeForward {
		if k.Array == array {
			return true
		}
	}
	return false
}

// address lowers an array subscript to an address operand.
func (lo *lowerer) address(ref *ArrayRef) (ir.Operand, affineSub, error) {
	aff := lo.affineOf(ref.Index)
	switch {
	case aff.ok && aff.hasI:
		return lo.pointerFor(ref.Name, aff.c), aff, nil
	case aff.ok:
		return lo.constAddr(ref.Name, aff.c), aff, nil
	default:
		sub, t, err := lo.expr(ref.Index)
		if err != nil {
			return ir.Operand{}, aff, err
		}
		if t != TInteger {
			return ir.Operand{}, aff, errf(ref.Pos(), "subscript must be integer")
		}
		one := lo.constVal(ir.IntS(1), ir.Addr, "c1")
		off := lo.emit(machine.ASub, []ir.Operand{sub, one}, "off", ir.RR, ir.Addr)
		addr := lo.emit(machine.AAdd, []ir.Operand{lo.arrayBase(ref.Name), {Val: off}}, "addr", ir.RR, ir.Addr)
		return ir.Operand{Val: addr}, aff, nil
	}
}

// arrayLoad lowers an array read: a forwarded register read when load/
// store elimination applies, otherwise a Load (CSE'd when unguarded).
func (lo *lowerer) arrayLoad(ref *ArrayRef) (ir.Operand, BaseType, error) {
	sym := lo.u.Syms[ref.Name]
	typ := ir.Float
	if sym.Type == TInteger {
		typ = ir.Int
	}
	aff := lo.affineOf(ref.Index)
	key := ConstAddrKey{ref.Name, aff.c}
	if aff.ok && aff.hasI {
		if w, ok := lo.plan.storeForward[key]; ok {
			sp := lo.storePlaceholder(ref.Name, typ)
			return ir.Operand{Val: sp, Omega: w}, sym.Type, nil
		}
		if f, ok := lo.plan.loadForward[key]; ok {
			leader := lo.leaderLoad(ref.Name, f.leaderC, typ)
			return ir.Operand{Val: leader, Omega: f.omega}, sym.Type, nil
		}
	}
	// CSE only for unguarded loads; a guarded load may not execute.
	cacheable := lo.pred == nil && aff.ok
	if cacheable {
		if v, ok := lo.cseLoads[key]; ok {
			return ir.Operand{Val: v}, sym.Type, nil
		}
	}
	addr, aff, err := lo.address(ref)
	if err != nil {
		return ir.Operand{}, sym.Type, err
	}
	v := lo.emit(machine.Load, []ir.Operand{addr}, "ld."+ref.Name, ir.RR, typ)
	lo.emitted = append(lo.emitted, &emittedAccess{op: lo.l.Value(v).Defs[0], isStore: false, array: ref.Name, aff: aff, order: len(lo.emitted)})
	if cacheable {
		lo.cseLoads[key] = v
	}
	return ir.Operand{Val: v}, sym.Type, nil
}

// leaderLoad emits (once) the unguarded load every other read of the
// array forwards from, and records its preheader recipe.
func (lo *lowerer) leaderLoad(array string, c int64, typ ir.Type) ir.ValueID {
	key := ConstAddrKey{array, c}
	if v, ok := lo.plan.leaderVal[key]; ok {
		return v
	}
	addr := lo.pointerFor(array, c)
	v := lo.emitUnpred(machine.Load, []ir.Operand{addr}, "ld."+array, ir.RR, typ)
	lo.plan.leaderVal[key] = v
	lo.emitted = append(lo.emitted, &emittedAccess{op: lo.l.Value(v).Defs[0], isStore: false, array: array, aff: affineSub{ok: true, hasI: true, c: c}, order: len(lo.emitted)})
	lo.cl.Recipes = append(lo.cl.Recipes, Recipe{Val: v, Kind: RecipeMemLoad, Array: array, C: c})
	// The leader is also this (array, c)'s load for CSE purposes.
	if lo.pred == nil {
		lo.cseLoads[key] = v
	}
	return v
}

// patchCarried resolves carried placeholders: every read of
// "carry.name" becomes a read of the scalar's final version, one
// iteration back.
func (lo *lowerer) patchCarried() error {
	if len(lo.carried) == 0 {
		// Still record live-out final versions.
		return lo.finalizeScalars()
	}
	final := map[ir.ValueID]ir.Operand{} // placeholder → resolved final
	for name, ph := range lo.carried {
		op, err := lo.resolveFinal(name, map[string]bool{})
		if err != nil {
			return err
		}
		final[ph] = op
	}
	rewrite := func(o *ir.Operand) {
		if f, ok := final[o.Val]; ok {
			o.Val = f.Val
			o.Omega += f.Omega + 1
		}
	}
	for _, op := range lo.l.Ops {
		for i := range op.Args {
			rewrite(&op.Args[i])
		}
		if op.Pred != nil {
			rewrite(op.Pred)
		}
	}
	return lo.finalizeScalars()
}

// resolveFinal returns the value anchoring a scalar's end-of-iteration
// version: always a loop-variant read at distance 0, so that the
// scalar's carried read is exactly (final, ω=1) and its preheader
// instance at iteration −1 is exactly the variable's pre-loop value.
// Copies are materialized when the raw final version is an invariant, a
// forwarded (ω > 0) read, or another scalar's carried placeholder.
func (lo *lowerer) resolveFinal(name string, visiting map[string]bool) (ir.Operand, error) {
	if visiting[name] {
		return ir.Operand{}, errf(lo.do.Pos(), "unsupported mutual scalar recurrence through %s (swap pattern)", name)
	}
	visiting[name] = true
	defer delete(visiting, name)

	cur, ok := lo.scalarCur[name]
	if !ok {
		// Read but never assigned on any path this iteration — cannot
		// happen: assignedScalars gated the placeholder.
		return ir.Operand{}, errf(lo.do.Pos(), "scalar %s carried but never assigned", name)
	}
	// A final version that is another scalar's carried placeholder means
	// "this scalar ends the iteration holding that one's previous value".
	for other, ph := range lo.carried {
		if cur.Val == ph {
			r, err := lo.resolveFinal(other, visiting)
			if err != nil {
				return ir.Operand{}, err
			}
			cur = ir.Operand{Val: r.Val, Omega: cur.Omega + r.Omega + 1}
			break
		}
	}
	if v := lo.l.Value(cur.Val); !v.IsVariant() || cur.Omega > 0 {
		copyOp := machine.FCopy
		typ := ir.Float
		if lo.u.Syms[name].Type == TInteger {
			copyOp, typ = machine.Copy, ir.Int
		}
		nv := lo.emitUnpred(copyOp, []ir.Operand{cur}, "fin."+name, ir.RR, typ)
		cur = ir.Operand{Val: nv}
	}
	lo.scalarCur[name] = cur
	return cur, nil
}

// finalizeScalars anchors every assigned scalar's final version, records
// it for live-out marking, and registers a preheader recipe (BuildEnv
// seeds only the instances actually read).
func (lo *lowerer) finalizeScalars() error {
	names := make([]string, 0, len(lo.scalarCur))
	for name := range lo.scalarCur {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cur, err := lo.resolveFinal(name, map[string]bool{})
		if err != nil {
			return err
		}
		lo.cl.FinalScalar[name] = cur.Val
		lo.cl.Recipes = append(lo.cl.Recipes, Recipe{Val: cur.Val, Kind: RecipeScalar, Scalar: name})
	}
	return nil
}

// patchStoreForwards resolves "fwd.array" placeholders to the stored
// value and records their preheader recipes.
func (lo *lowerer) patchStoreForwards() error {
	if len(lo.plan.storePlaceholder) == 0 {
		return nil
	}
	for array, ph := range lo.plan.storePlaceholder {
		dv, ok := lo.plan.storeVal[array]
		if !ok {
			return errf(lo.do.Pos(), "forwarded load from %s found no store (bug)", array)
		}
		dOmega := lo.plan.storeValOmega[array]
		val := lo.l.Value(dv)
		if !val.IsVariant() || dOmega > 0 {
			// Stored value is a constant/invariant or itself a carried
			// read: anchor it with a copy so forwards have a variant.
			copyOp := machine.FCopy
			if val.Type == ir.Int || val.Type == ir.Addr {
				copyOp = machine.Copy
			}
			nv := lo.emitUnpred(copyOp, []ir.Operand{{Val: dv, Omega: dOmega}}, "fwd0."+array, ir.RR, val.Type)
			dv, dOmega = nv, 0
		}
		for _, op := range lo.l.Ops {
			for i := range op.Args {
				if op.Args[i].Val == ph {
					op.Args[i].Val = dv
					op.Args[i].Omega += dOmega
				}
			}
			if op.Pred != nil && op.Pred.Val == ph {
				op.Pred.Val = dv
				op.Pred.Omega += dOmega
			}
		}
		// The store's affine offset drives the preheader addresses.
		var storeC int64
		found := false
		for _, a := range lo.emitted {
			if a.isStore && a.array == array && a.aff.ok && a.aff.hasI {
				storeC, found = a.aff.c, true
			}
		}
		if !found {
			return errf(lo.do.Pos(), "store forwarding without affine store (bug)")
		}
		lo.cl.Recipes = append(lo.cl.Recipes, Recipe{Val: dv, Kind: RecipeMemLoad, Array: array, C: storeC})
	}
	return nil
}

// memDeps adds memory ordering arcs between the surviving accesses
// (Section 3.1: exact ω where dependence analysis can prove it,
// conservative lower bounds elsewhere). Accesses guarded by
// complementary senses of the same predicate came from the two sides of
// one IF: dependence analysis ran on the branchy CFG before
// if-conversion, where no path connects them, so they never conflict
// within an iteration — and the cross-iteration direction is kept.
func (lo *lowerer) memDeps() {
	storeLat := lo.m.Info(machine.Store).Latency
	complementary := func(x, y *ir.Op) bool {
		return x.Pred != nil && y.Pred != nil &&
			x.Pred.Val == y.Pred.Val && x.Pred.Omega == y.Pred.Omega &&
			x.PredNeg != y.PredNeg
	}
	for i, a := range lo.emitted {
		for j := i + 1; j < len(lo.emitted); j++ {
			b := lo.emitted[j]
			if a.array != b.array || (!a.isStore && !b.isStore) {
				continue
			}
			opA, opB := lo.l.Op(a.op), lo.l.Op(b.op)
			if complementary(opA, opB) {
				// Exclusive branches: only cross-iteration ordering in
				// both directions (an iteration may take either side).
				exact := a.aff.ok && b.aff.ok && a.aff.hasI && b.aff.hasI && lo.stepKnown
				if exact && (a.aff.c-b.aff.c)%lo.step != 0 {
					continue
				}
				latAB, latBA := 0, 0
				if a.isStore {
					latAB = storeLat
				}
				if b.isStore {
					latBA = storeLat
				}
				lo.l.AddDep(ir.Dep{From: a.op, To: b.op, Latency: latAB, Omega: 1, Kind: ir.DepMem})
				lo.l.AddDep(ir.Dep{From: b.op, To: a.op, Latency: latBA, Omega: 1, Kind: ir.DepMem})
				continue
			}
			latAB := 0
			if a.isStore {
				latAB = storeLat
			}
			latBA := 0
			if b.isStore {
				latBA = storeLat
			}
			exact := a.aff.ok && b.aff.ok && a.aff.hasI && b.aff.hasI && lo.stepKnown
			if exact {
				d := a.aff.c - b.aff.c
				if d%lo.step != 0 {
					continue // provably never alias
				}
				w := d / lo.step
				switch {
				case w > 0:
					// a@k aliases b@(k+w): a must precede b by w iterations.
					lo.l.AddDep(ir.Dep{From: a.op, To: b.op, Latency: latAB, Omega: int(w), Kind: ir.DepMem})
				case w < 0:
					lo.l.AddDep(ir.Dep{From: b.op, To: a.op, Latency: latBA, Omega: int(-w), Kind: ir.DepMem})
				default:
					// Same address every iteration pair (k,k): program
					// order within the iteration, conflict across
					// iterations in both directions.
					lo.l.AddDep(ir.Dep{From: a.op, To: b.op, Latency: latAB, Omega: 0, Kind: ir.DepMem})
					lo.l.AddDep(ir.Dep{From: b.op, To: a.op, Latency: latBA, Omega: 1, Kind: ir.DepMem})
				}
				continue
			}
			if a.aff.ok && b.aff.ok && a.aff.hasI == b.aff.hasI && !lo.stepKnown && a.aff.c != b.aff.c {
				// Same-shape affine subscripts with unknown step never
				// alias at distance 0, but may at unknown distances:
				// conservative both ways at ω ≥ 1... and the distance-0
				// case is excluded, so program order is free. Keep the
				// conservative arcs anyway: cheap and safe.
			}
			// Conservative: textual order now, and the reverse one
			// iteration later.
			lo.l.AddDep(ir.Dep{From: a.op, To: b.op, Latency: latAB, Omega: 0, Kind: ir.DepMem})
			lo.l.AddDep(ir.Dep{From: b.op, To: a.op, Latency: latBA, Omega: 1, Kind: ir.DepMem})
		}
	}
}
