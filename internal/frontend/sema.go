package frontend

import "fmt"

// Symbol is one resolved name.
type Symbol struct {
	Name    string
	Type    BaseType
	IsArray bool
	Dim     Expr // declared extent (nil for scalars)
	IsParam bool
	// Assigned marks symbols written somewhere in the subroutine.
	Assigned bool
}

// Unit is an analyzed subroutine.
type Unit struct {
	Prog *Program
	Syms map[string]*Symbol
}

// implicitType applies FORTRAN implicit typing: names starting with
// i..n are integer, everything else real.
func implicitType(name string) BaseType {
	if name != "" && name[0] >= 'i' && name[0] <= 'n' {
		return TInteger
	}
	return TReal
}

// Analyze resolves names, applies implicit typing to undeclared
// variables, and type-checks every statement.
func Analyze(prog *Program) (*Unit, error) {
	u := &Unit{Prog: prog, Syms: map[string]*Symbol{}}
	for _, p := range prog.Params {
		u.Syms[p] = &Symbol{Name: p, Type: implicitType(p), IsParam: true}
	}
	for _, d := range prog.Decls {
		for _, dn := range d.Names {
			sym, ok := u.Syms[dn.Name]
			if !ok {
				sym = &Symbol{Name: dn.Name}
				u.Syms[dn.Name] = sym
			}
			sym.Type = d.Type
			if dn.Dim != nil {
				sym.IsArray = true
				sym.Dim = dn.Dim
			}
		}
	}
	// Walk the body: create implicit symbols, check types, and record
	// assignments.
	var walkStmts func(stmts []Stmt) error
	var walkExpr func(e Expr) (BaseType, error)

	lookup := func(name string, line int) *Symbol {
		sym, ok := u.Syms[name]
		if !ok {
			sym = &Symbol{Name: name, Type: implicitType(name)}
			u.Syms[name] = sym
		}
		_ = line
		return sym
	}

	walkExpr = func(e Expr) (BaseType, error) {
		switch e := e.(type) {
		case *IntLit:
			return TInteger, nil
		case *RealLit:
			return TReal, nil
		case *VarRef:
			sym := lookup(e.Name, e.Pos())
			if sym.IsArray {
				return sym.Type, errf(e.Pos(), "array %s used without subscript", e.Name)
			}
			return sym.Type, nil
		case *ArrayRef:
			sym := lookup(e.Name, e.Pos())
			if !sym.IsArray {
				return sym.Type, errf(e.Pos(), "%s is not an array", e.Name)
			}
			it, err := walkExpr(e.Index)
			if err != nil {
				return sym.Type, err
			}
			if it != TInteger {
				return sym.Type, errf(e.Pos(), "subscript of %s must be integer", e.Name)
			}
			return sym.Type, nil
		case *BinExpr:
			lt, err := walkExpr(e.L)
			if err != nil {
				return lt, err
			}
			rt, err := walkExpr(e.R)
			if err != nil {
				return rt, err
			}
			switch e.Op {
			case "&&", "||":
				return TInteger, nil // logical; only valid inside IF conditions
			case "<", "<=", ">", ">=", "==", "/=":
				return TInteger, nil
			}
			if lt == TReal || rt == TReal {
				return TReal, nil
			}
			return TInteger, nil
		case *UnExpr:
			return walkExpr(e.X)
		case *CallExpr:
			for _, a := range e.Args {
				if _, err := walkExpr(a); err != nil {
					return TReal, err
				}
			}
			switch e.Name {
			case "sqrt", "real", "float", "amax1", "amin1":
				return TReal, nil
			case "int", "mod":
				return TInteger, nil
			case "abs", "max", "min":
				t, _ := walkExpr(e.Args[0])
				return t, nil
			}
			return TReal, fmt.Errorf("line %d: unknown intrinsic %s", e.Pos(), e.Name)
		}
		return TReal, fmt.Errorf("unreachable expression kind %T", e)
	}

	walkStmts = func(stmts []Stmt) error {
		for _, s := range stmts {
			switch s := s.(type) {
			case *AssignStmt:
				if _, err := walkExpr(s.Rhs); err != nil {
					return err
				}
				switch lhs := s.Lhs.(type) {
				case *VarRef:
					lookup(lhs.Name, lhs.Pos()).Assigned = true
				case *ArrayRef:
					sym := lookup(lhs.Name, lhs.Pos())
					if !sym.IsArray {
						return errf(lhs.Pos(), "%s is not an array", lhs.Name)
					}
					sym.Assigned = true
					if _, err := walkExpr(lhs.Index); err != nil {
						return err
					}
				}
			case *IfStmt:
				if _, err := walkExpr(s.Cond); err != nil {
					return err
				}
				if err := walkStmts(s.Then); err != nil {
					return err
				}
				if err := walkStmts(s.Else); err != nil {
					return err
				}
			case *DoStmt:
				sym := lookup(s.Var, s.Pos())
				if sym.Type != TInteger {
					return errf(s.Pos(), "loop variable %s must be integer", s.Var)
				}
				sym.Assigned = true
				for _, b := range []Expr{s.Lo, s.Hi, s.Step} {
					if b == nil {
						continue
					}
					t, err := walkExpr(b)
					if err != nil {
						return err
					}
					if t != TInteger {
						return errf(s.Pos(), "DO bounds must be integer")
					}
				}
				if err := walkStmts(s.Body); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walkStmts(prog.Body); err != nil {
		return nil, err
	}
	return u, nil
}

// TypeOf computes an expression's type after analysis (no new symbols).
func (u *Unit) TypeOf(e Expr) BaseType {
	switch e := e.(type) {
	case *IntLit:
		return TInteger
	case *RealLit:
		return TReal
	case *VarRef:
		return u.Syms[e.Name].Type
	case *ArrayRef:
		return u.Syms[e.Name].Type
	case *BinExpr:
		switch e.Op {
		case "&&", "||", "<", "<=", ">", ">=", "==", "/=":
			return TInteger
		}
		if u.TypeOf(e.L) == TReal || u.TypeOf(e.R) == TReal {
			return TReal
		}
		return TInteger
	case *UnExpr:
		return u.TypeOf(e.X)
	case *CallExpr:
		switch e.Name {
		case "sqrt", "real", "float", "amax1", "amin1":
			return TReal
		case "int", "mod":
			return TInteger
		default:
			return u.TypeOf(e.Args[0])
		}
	}
	return TReal
}

// InnermostLoops returns every innermost DO loop in the subroutine, in
// source order — the units the paper's compiler modulo schedules.
func (u *Unit) InnermostLoops() []*DoStmt {
	var out []*DoStmt
	var walk func(stmts []Stmt, enclosing *DoStmt)
	walk = func(stmts []Stmt, enclosing *DoStmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *DoStmt:
				before := len(out)
				walk(s.Body, s)
				if len(out) == before {
					// No nested DO: s is innermost.
					out = append(out, s)
				}
			case *IfStmt:
				walk(s.Then, enclosing)
				walk(s.Else, enclosing)
			}
		}
	}
	walk(u.Prog.Body, nil)
	return out
}
