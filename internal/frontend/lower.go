package frontend

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/mii"
)

// Recipe records how to reconstruct the preheader instance of a
// loop-carried value at a negative iteration, so runnable environments
// can be built for any binding (BuildEnv).
type Recipe struct {
	Val  ir.ValueID
	Kind RecipeKind
	// Affine/MemLoad: instance(iter) relates to address
	// base(Array) + lo + C − 1 + iter·step (1-based arrays, unit
	// elements). Affine yields the address itself; MemLoad yields the
	// initial memory contents at that address.
	Array string
	C     int64
	// Scalar: the instance is the variable's value before the loop.
	Scalar string
	// Index: instance(iter) = lo + iter·step (the DO variable itself).
}

// RecipeKind discriminates Recipe.
type RecipeKind int

const (
	RecipeAffine  RecipeKind = iota // address recurrences (pointers)
	RecipeMemLoad                   // values forwarded out of memory by LSE
	RecipeScalar                    // scalar recurrences
	RecipeIndex                     // the DO variable
)

// MaxForwardOmega caps load/store elimination distance: forwarding
// across many iterations trades one memory port for ⌈ω·II⌉-cycle
// lifetimes, and the preheader must materialize ω initial instances.
const MaxForwardOmega = 6

// CompiledLoop is one innermost DO loop lowered to schedulable IR.
type CompiledLoop struct {
	Loop *ir.Loop
	Do   *DoStmt
	Unit *Unit

	// Ineligible explains why the loop was not lowered (the paper's
	// Section 6 criteria); Loop is nil in that case.
	Ineligible error

	// Trips is the compile-time trip count, or 0 if unknown.
	Trips int

	// Scalars maps invariant scalar names to their GPR live-in values.
	Scalars map[string]ir.ValueID
	// ArrayBases maps array names to GPR base-address values (only for
	// arrays accessed through non-affine subscripts).
	ArrayBases map[string]ir.ValueID
	// ConstAddrs maps (array, subscript) GPR address live-ins for
	// loop-invariant element accesses.
	ConstAddrs map[ConstAddrKey]ir.ValueID
	// Recipes reconstruct preheader instances of loop-carried values.
	Recipes []Recipe
	// FinalScalar maps each loop-assigned scalar to the value holding
	// its end-of-iteration version (live-out).
	FinalScalar map[string]ir.ValueID
}

// ConstAddrKey identifies an invariant array element.
type ConstAddrKey struct {
	Array string
	Index int64
}

// Compile parses, analyzes, and lowers every innermost DO loop of the
// source, returning one CompiledLoop per loop (eligible or not) in
// source order.
func Compile(src string, m *machine.Desc) (*Unit, []*CompiledLoop, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, nil, err
	}
	u, err := Analyze(prog)
	if err != nil {
		return nil, nil, err
	}
	var out []*CompiledLoop
	for _, do := range u.InnermostLoops() {
		out = append(out, Lower(u, do, m))
	}
	return u, out, nil
}

// Lower lowers one innermost DO loop. Ineligible loops get a nil Loop
// and a reason.
func Lower(u *Unit, do *DoStmt, m *machine.Desc) *CompiledLoop {
	cl := &CompiledLoop{
		Do: do, Unit: u,
		Scalars:     map[string]ir.ValueID{},
		ArrayBases:  map[string]ir.ValueID{},
		ConstAddrs:  map[ConstAddrKey]ir.ValueID{},
		FinalScalar: map[string]ir.ValueID{},
	}
	lo := &lowerer{u: u, do: do, cl: cl, m: m}
	if err := lo.run(); err != nil {
		cl.Ineligible = err
		cl.Loop = nil
		return cl
	}
	return cl
}

// lowerer holds per-loop lowering state.
type lowerer struct {
	u  *Unit
	do *DoStmt
	cl *CompiledLoop
	m  *machine.Desc
	l  *ir.Loop

	stepKnown bool
	step      int64
	loKnown   bool
	loVal     int64

	// Predicate context: nil when unpredicated; otherwise the guard and
	// its sense.
	pred    *ir.Operand
	predNeg bool

	// Scalar versioning. A version is an operand (value + omega) because
	// forwarded loads hand out loop-carried reads directly.
	assignedScalars map[string]bool
	scalarCur       map[string]ir.Operand
	carried         map[string]ir.ValueID // placeholder for prev-iteration final

	// Index variable (materialized lazily).
	indexVal ir.ValueID

	// Literal/const caches.
	constCache map[ir.Scalar]ir.ValueID

	// Array machinery.
	pointers map[ConstAddrKey]ir.ValueID // affine address recurrences
	cseLoads map[ConstAddrKey]ir.ValueID // unpredicated loads this iteration
	plan     *accessPlan
	// accesses emitted, for the dependence pass.
	emitted []*emittedAccess

	numBB int
	numIf int
}

type emittedAccess struct {
	op      ir.OpID
	isStore bool
	array   string
	aff     affineSub
	order   int
}

type affineSub struct {
	ok   bool  // subscript is i + C
	hasI bool  // references the loop variable
	c    int64 // constant offset
}

// accessPlan is the pre-pass over array references deciding load/store
// elimination (Section 2.3's register forwarding of cross-iteration
// array flow).
type accessPlan struct {
	// forwarded maps a load's plan key to its source and distance.
	storeForward map[ConstAddrKey]int // load (array,c) → ω from the array's single store
	loadForward  map[ConstAddrKey]struct {
		leaderC int64
		omega   int
	}
	// storeVal is patched after lowering: the value each array's
	// unconditional store writes (with the omega of the stored operand).
	storeVal      map[string]ir.ValueID
	storeValOmega map[string]int
	// placeholders for store-forwarded reads, patched at the end.
	storePlaceholder map[string]ir.ValueID
	// leader load values by (array, c).
	leaderVal map[ConstAddrKey]ir.ValueID
}

func (lo *lowerer) run() error {
	do, u := lo.do, lo.u
	// Eligibility: basic-block census before if-conversion (Section 6:
	// at most 30 basic blocks).
	lo.numBB = 1 + countBBs(do.Body)
	if lo.numBB > 30 {
		return errf(do.Pos(), "loop has %d basic blocks before if-conversion (limit 30)", lo.numBB)
	}
	if hasNestedDo(do.Body) {
		return errf(do.Pos(), "not an innermost loop")
	}

	lo.l = ir.NewLoop(fmt.Sprintf("%s:%d", u.Prog.Name, do.Pos()), lo.m)
	lo.l.NumBB = lo.numBB
	lo.assignedScalars = map[string]bool{}
	lo.scalarCur = map[string]ir.Operand{}
	lo.carried = map[string]ir.ValueID{}
	lo.indexVal = -1
	lo.constCache = map[ir.Scalar]ir.ValueID{}
	lo.pointers = map[ConstAddrKey]ir.ValueID{}
	lo.cseLoads = map[ConstAddrKey]ir.ValueID{}

	if c, ok := constInt(do.Lo); ok {
		lo.loKnown, lo.loVal = true, c
	}
	step := int64(1)
	stepKnown := true
	if do.Step != nil {
		step, stepKnown = constInt(do.Step)
	}
	lo.step, lo.stepKnown = step, stepKnown
	if stepKnown && step == 0 {
		return errf(do.Pos(), "zero DO step")
	}

	// Trip count when all bounds are literals (Section 6: loops with
	// fewer than 5 iterations are not worth pipelining).
	if hi, ok := constInt(do.Hi); ok && lo.loKnown && stepKnown {
		t := (hi-lo.loVal)/step + 1
		if t < 0 {
			t = 0
		}
		lo.cl.Trips = int(t)
		lo.l.TripCount = int(t)
		if t < 5 {
			return errf(do.Pos(), "trip count %d < 5: not worth pipelining", t)
		}
	}

	collectAssigned(do.Body, lo.assignedScalars)
	delete(lo.assignedScalars, do.Var) // the index is ours, not a scalar

	lo.planAccesses()

	if err := lo.stmts(do.Body); err != nil {
		return err
	}
	if err := lo.patchCarried(); err != nil {
		return err
	}
	if err := lo.patchStoreForwards(); err != nil {
		return err
	}
	lo.memDeps()
	lo.l.NewOp(machine.BrTop, nil, ir.None)
	lo.l.HasConditional = lo.numIf > 0

	// Mark live-outs: every scalar the loop assigns survives it.
	for name, v := range lo.cl.FinalScalar {
		_ = name
		lo.l.Value(v).LiveOut = true
	}

	if err := lo.l.Finalize(); err != nil {
		return err
	}
	if res := mii.ResMII(lo.l); res > 500 {
		return errf(do.Pos(), "ResMII %d > 500: not worth pipelining", res)
	}
	lo.cl.Loop = lo.l
	return nil
}

func countBBs(stmts []Stmt) int {
	n := 0
	for _, s := range stmts {
		switch s := s.(type) {
		case *IfStmt:
			n += 2
			if len(s.Else) > 0 {
				n++
			}
			n += countBBs(s.Then) + countBBs(s.Else)
		case *DoStmt:
			n += 2 + countBBs(s.Body)
		}
	}
	return n
}

func hasNestedDo(stmts []Stmt) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *DoStmt:
			return true
		case *IfStmt:
			if hasNestedDo(s.Then) || hasNestedDo(s.Else) {
				return true
			}
		}
	}
	return false
}

func collectAssigned(stmts []Stmt, out map[string]bool) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *AssignStmt:
			if v, ok := s.Lhs.(*VarRef); ok {
				out[v.Name] = true
			}
		case *IfStmt:
			collectAssigned(s.Then, out)
			collectAssigned(s.Else, out)
		}
	}
}

func constInt(e Expr) (int64, bool) {
	switch e := e.(type) {
	case *IntLit:
		return e.Val, true
	case *UnExpr:
		if e.Op == "-" {
			if v, ok := constInt(e.X); ok {
				return -v, true
			}
		}
	case *BinExpr:
		l, lok := constInt(e.L)
		r, rok := constInt(e.R)
		if lok && rok {
			switch e.Op {
			case "+":
				return l + r, true
			case "-":
				return l - r, true
			case "*":
				return l * r, true
			}
		}
	}
	return 0, false
}

// affineOf classifies a subscript as i + c when possible.
func (lo *lowerer) affineOf(e Expr) affineSub {
	var walk func(e Expr) (hasI bool, c int64, ok bool)
	walk = func(e Expr) (bool, int64, bool) {
		switch e := e.(type) {
		case *IntLit:
			return false, e.Val, true
		case *VarRef:
			if e.Name == lo.do.Var {
				return true, 0, true
			}
			return false, 0, false
		case *UnExpr:
			if e.Op == "-" {
				h, c, ok := walk(e.X)
				if ok && !h {
					return false, -c, true
				}
			}
			return false, 0, false
		case *BinExpr:
			lh, lc, lok := walk(e.L)
			rh, rc, rok := walk(e.R)
			if !lok || !rok {
				return false, 0, false
			}
			switch e.Op {
			case "+":
				if lh && rh {
					return false, 0, false
				}
				return lh || rh, lc + rc, true
			case "-":
				if rh {
					return false, 0, false
				}
				return lh, lc - rc, true
			}
			return false, 0, false
		}
		return false, 0, false
	}
	h, c, ok := walk(e)
	return affineSub{ok: ok, hasI: h, c: c}
}

// planAccesses walks the body once, classifying array accesses and
// deciding forwarding.
func (lo *lowerer) planAccesses() {
	type acc struct {
		aff     affineSub
		isStore bool
		pred    bool
		order   int
	}
	order := 0
	byArray := map[string][]acc{}
	var walk func(stmts []Stmt, pred bool)
	var walkExpr func(e Expr, pred bool)
	walkExpr = func(e Expr, pred bool) {
		switch e := e.(type) {
		case *ArrayRef:
			order++
			byArray[e.Name] = append(byArray[e.Name], acc{lo.affineOf(e.Index), false, pred, order})
			walkExpr(e.Index, pred)
		case *BinExpr:
			walkExpr(e.L, pred)
			walkExpr(e.R, pred)
		case *UnExpr:
			walkExpr(e.X, pred)
		case *CallExpr:
			for _, a := range e.Args {
				walkExpr(a, pred)
			}
		}
	}
	walk = func(stmts []Stmt, pred bool) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *AssignStmt:
				walkExpr(s.Rhs, pred)
				if ar, ok := s.Lhs.(*ArrayRef); ok {
					order++
					byArray[ar.Name] = append(byArray[ar.Name], acc{lo.affineOf(ar.Index), true, pred, order})
					walkExpr(ar.Index, pred)
				}
			case *IfStmt:
				walkExpr(s.Cond, pred)
				walk(s.Then, true)
				walk(s.Else, true)
			}
		}
	}
	walk(lo.do.Body, false)

	plan := &accessPlan{
		storeForward: map[ConstAddrKey]int{},
		loadForward: map[ConstAddrKey]struct {
			leaderC int64
			omega   int
		}{},
		storeVal:         map[string]ir.ValueID{},
		storeValOmega:    map[string]int{},
		storePlaceholder: map[string]ir.ValueID{},
		leaderVal:        map[ConstAddrKey]ir.ValueID{},
	}
	lo.plan = plan
	if !lo.stepKnown {
		return
	}
	for array, accs := range byArray {
		allAffineI := true
		var stores []acc
		for _, a := range accs {
			if !a.aff.ok || !a.aff.hasI {
				allAffineI = false
			}
			if a.isStore {
				stores = append(stores, a)
			}
		}
		if !allAffineI {
			continue
		}
		switch {
		case len(stores) == 1 && !stores[0].pred:
			sc := stores[0].aff.c
			for _, a := range accs {
				if a.isStore {
					continue
				}
				d := sc - a.aff.c
				if d == 0 {
					// Same-iteration forward: legal only when every load
					// of this element follows the store (the plan key is
					// per-(array, offset), so one pre-store load, which
					// must read original memory, disables it).
					allAfter := true
					for _, b := range accs {
						if !b.isStore && b.aff.c == a.aff.c && b.order < stores[0].order {
							allAfter = false
						}
					}
					if allAfter {
						plan.storeForward[ConstAddrKey{array, a.aff.c}] = 0
					}
					continue
				}
				if d > 0 && d%lo.step == 0 {
					w := d / lo.step
					if w >= 1 && w <= MaxForwardOmega {
						plan.storeForward[ConstAddrKey{array, a.aff.c}] = int(w)
					}
				}
			}
		case len(stores) == 0:
			// Forward every load from the one reading farthest ahead.
			leader := accs[0].aff.c
			for _, a := range accs {
				if sign(lo.step)*(a.aff.c-leader) > 0 {
					leader = a.aff.c
				}
			}
			for _, a := range accs {
				d := leader - a.aff.c
				if d != 0 && d%lo.step == 0 {
					w := d / lo.step
					if w >= 1 && w <= MaxForwardOmega {
						plan.loadForward[ConstAddrKey{array, a.aff.c}] = struct {
							leaderC int64
							omega   int
						}{leader, int(w)}
					}
				}
			}
		}
	}
}

func sign(x int64) int64 {
	if x < 0 {
		return -1
	}
	return 1
}
