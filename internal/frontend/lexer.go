// Package frontend compiles a small FORTRAN-style loop language into the
// schedulable loop IR. It stands in for the Cydrome FORTRAN77 front end
// the paper used (Section 6): the subset it accepts — DO loops over
// scalars and one-dimensional arrays with IF/THEN/ELSE bodies, no calls,
// no gotos — is exactly the class of loops the paper's compiler modulo
// schedules, and the lowering performs the paper's named preparation
// passes: if-conversion to predicated form (Section 2.2), load/store
// elimination so cross-iteration array flow travels in registers
// (Section 2.3), strength-reduced address recurrences, static single
// assignment renaming (Section 5.1), and array dependence analysis that
// labels memory arcs with exact or conservative ω distances (Section 3.1).
package frontend

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies tokens.
type TokKind int

// Token kinds. Keywords are matched case-insensitively, FORTRAN style.
const (
	TokEOF TokKind = iota
	TokNewline
	TokIdent
	TokInt
	TokReal
	TokLParen
	TokRParen
	TokComma
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokAssign
	TokRelop // .lt. .le. .gt. .ge. .eq. .ne. and < <= > >= == /=
	TokAnd   // .and.
	TokOr    // .or.
	TokNot   // .not.
	TokKw    // keyword: subroutine, integer, real, do, if, then, else, end, enddo, endif, continue, call, goto
)

// Token is one lexeme with its source line for diagnostics.
type Token struct {
	Kind TokKind
	Text string // lower-cased for idents/keywords
	Line int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of file"
	case TokNewline:
		return "end of line"
	}
	return fmt.Sprintf("%q", t.Text)
}

var keywords = map[string]bool{
	"subroutine": true, "integer": true, "real": true, "do": true,
	"if": true, "then": true, "else": true, "elseif": true, "end": true,
	"enddo": true, "endif": true, "continue": true, "return": true,
	"call": true, "goto": true, "dimension": true, "parameter": true,
}

// Lex tokenizes the source. FORTRAN-style comment lines (leading C, c,
// or !) and '!' tail comments are skipped; statements end at newlines.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line := 1
	i := 0
	n := len(src)
	emit := func(k TokKind, text string) {
		toks = append(toks, Token{Kind: k, Text: text, Line: line})
	}
	lastNewline := true
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			if !lastNewline {
				emit(TokNewline, "\\n")
				lastNewline = true
			}
			line++
			i++
			continue
		case c == '!':
			for i < n && src[i] != '\n' {
				i++
			}
			continue
		case c == '&':
			// Continuation: swallow the rest of the line and the
			// newline, so the statement continues on the next line.
			for i < n && src[i] != '\n' {
				i++
			}
			if i < n {
				i++
				line++
			}
			continue
		case (c == 'c' || c == 'C' || c == '*') && lastNewline:
			// Classic FORTRAN comment line: starts at column 1.
			// Distinguish from code: treat as comment only if followed
			// by a space or another comment-ish char; identifiers like
			// "continue" appear after leading whitespace in our inputs.
			if c == '*' || i+1 >= n || src[i+1] == ' ' || src[i+1] == '\n' {
				for i < n && src[i] != '\n' {
					i++
				}
				continue
			}
		case c == ' ' || c == '\t' || c == '\r':
			i++
			continue
		}
		lastNewline = false
		switch {
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < n && (isAlnum(src[j]) || src[j] == '_') {
				j++
			}
			word := strings.ToLower(src[i:j])
			i = j
			if keywords[word] {
				emit(TokKw, word)
			} else {
				emit(TokIdent, word)
			}
		case unicode.IsDigit(rune(c)):
			j := i
			isReal := false
			for j < n && unicode.IsDigit(rune(src[j])) {
				j++
			}
			if j < n && src[j] == '.' && !isRelopStart(src[j:]) {
				isReal = true
				j++
				for j < n && unicode.IsDigit(rune(src[j])) {
					j++
				}
			}
			if j < n && (src[j] == 'e' || src[j] == 'E' || src[j] == 'd' || src[j] == 'D') {
				k := j + 1
				if k < n && (src[k] == '+' || src[k] == '-') {
					k++
				}
				if k < n && unicode.IsDigit(rune(src[k])) {
					isReal = true
					j = k
					for j < n && unicode.IsDigit(rune(src[j])) {
						j++
					}
				}
			}
			if isReal {
				emit(TokReal, strings.ToLower(strings.ReplaceAll(src[i:j], "d", "e")))
			} else {
				emit(TokInt, src[i:j])
			}
			i = j
		case c == '.':
			// .lt. style operators, .and., .or., .not., or a real like .5
			rest := strings.ToLower(src[i:minInt(i+6, n)])
			matched := false
			for _, op := range []struct {
				pat, text string
				kind      TokKind
			}{
				{".and.", "&&", TokAnd}, {".or.", "||", TokOr}, {".not.", "!", TokNot},
				{".lt.", "<", TokRelop}, {".le.", "<=", TokRelop},
				{".gt.", ">", TokRelop}, {".ge.", ">=", TokRelop},
				{".eq.", "==", TokRelop}, {".ne.", "/=", TokRelop},
			} {
				if strings.HasPrefix(rest, op.pat) {
					emit(op.kind, op.text)
					i += len(op.pat)
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			if i+1 < n && unicode.IsDigit(rune(src[i+1])) {
				j := i + 1
				for j < n && unicode.IsDigit(rune(src[j])) {
					j++
				}
				emit(TokReal, src[i:j])
				i = j
				continue
			}
			return nil, fmt.Errorf("line %d: stray '.'", line)
		case c == '(':
			emit(TokLParen, "(")
			i++
		case c == ')':
			emit(TokRParen, ")")
			i++
		case c == ',':
			emit(TokComma, ",")
			i++
		case c == '+':
			emit(TokPlus, "+")
			i++
		case c == '-':
			emit(TokMinus, "-")
			i++
		case c == '*':
			if i+1 < n && src[i+1] == '*' {
				return nil, fmt.Errorf("line %d: exponentiation (**) is not supported", line)
			}
			emit(TokStar, "*")
			i++
		case c == '/':
			if i+1 < n && src[i+1] == '=' {
				emit(TokRelop, "/=")
				i += 2
			} else {
				emit(TokSlash, "/")
				i++
			}
		case c == '=':
			if i+1 < n && src[i+1] == '=' {
				emit(TokRelop, "==")
				i += 2
			} else {
				emit(TokAssign, "=")
				i++
			}
		case c == '<':
			if i+1 < n && src[i+1] == '=' {
				emit(TokRelop, "<=")
				i += 2
			} else {
				emit(TokRelop, "<")
				i++
			}
		case c == '>':
			if i+1 < n && src[i+1] == '=' {
				emit(TokRelop, ">=")
				i += 2
			} else {
				emit(TokRelop, ">")
				i++
			}
		default:
			return nil, fmt.Errorf("line %d: unexpected character %q", line, string(c))
		}
	}
	if len(toks) > 0 && toks[len(toks)-1].Kind != TokNewline {
		emit(TokNewline, "\\n")
	}
	emit(TokEOF, "")
	return toks, nil
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func isRelopStart(s string) bool {
	for _, p := range []string{".lt.", ".le.", ".gt.", ".ge.", ".eq.", ".ne.", ".and.", ".or.", ".not."} {
		if strings.HasPrefix(strings.ToLower(s), p) {
			return true
		}
	}
	return false
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
