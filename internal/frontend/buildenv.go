package frontend

import (
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/rt"
)

// Binding supplies the runtime inputs of a compiled loop: parameter
// values, array extents (when not compile-time constants), and an
// element initializer for the memory image.
type Binding struct {
	Ints  map[string]int64
	Reals map[string]float64
	// Extents overrides/supplies array extents by name.
	Extents map[string]int
	// Fill initializes memory: called with the array name and 1-based
	// element index. Nil fills zeros.
	Fill func(array string, index int) ir.Scalar
}

func (b Binding) intOf(name string) (int64, bool) {
	v, ok := b.Ints[name]
	return v, ok
}

// Layout is the runtime placement of the loop's arrays.
type Layout struct {
	Base    map[string]int64
	Extent  map[string]int
	MemSize int
}

// evalBound evaluates a DO bound under the binding.
func (cl *CompiledLoop) evalBound(e Expr, b Binding) (int64, error) {
	if e == nil {
		return 1, nil
	}
	switch e := e.(type) {
	case *IntLit:
		return e.Val, nil
	case *VarRef:
		if v, ok := b.intOf(e.Name); ok {
			return v, nil
		}
		return 0, fmt.Errorf("frontend: binding missing integer %q", e.Name)
	case *UnExpr:
		if e.Op == "-" {
			v, err := cl.evalBound(e.X, b)
			return -v, err
		}
	case *BinExpr:
		l, err := cl.evalBound(e.L, b)
		if err != nil {
			return 0, err
		}
		r, err := cl.evalBound(e.R, b)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			if r == 0 {
				return 0, fmt.Errorf("frontend: zero divisor in bound")
			}
			return l / r, nil
		}
	}
	return 0, fmt.Errorf("frontend: unsupported bound expression")
}

// Arrays returns the names of all arrays the loop touches, sorted.
func (cl *CompiledLoop) Arrays() []string {
	set := map[string]bool{}
	for _, r := range cl.Recipes {
		if r.Array != "" {
			set[r.Array] = true
		}
	}
	for name := range cl.ArrayBases {
		set[name] = true
	}
	for key := range cl.ConstAddrs {
		set[key.Array] = true
	}
	// Arrays reached only through non-forwarded affine loads/stores show
	// up in value names (p.array±c); scan symbols instead: every array
	// symbol referenced by the loop's unit that appears in a value name
	// would be fragile, so the lowerer records them in Recipes (affine
	// pointers always get recipes). ConstAddrs and bases cover the rest.
	var out []string
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// BuildEnv lays out arrays, fills memory, and seeds GPR live-ins and
// preheader instances per the lowering's recipes, returning the
// environment and the concrete trip count.
func (cl *CompiledLoop) BuildEnv(b Binding) (*rt.Env, *Layout, int, error) {
	if cl.Loop == nil {
		return nil, nil, 0, fmt.Errorf("frontend: loop was not lowered: %v", cl.Ineligible)
	}
	lov, err := cl.evalBound(cl.Do.Lo, b)
	if err != nil {
		return nil, nil, 0, err
	}
	hiv, err := cl.evalBound(cl.Do.Hi, b)
	if err != nil {
		return nil, nil, 0, err
	}
	stepv, err := cl.evalBound(cl.Do.Step, b)
	if err != nil {
		return nil, nil, 0, err
	}
	if stepv == 0 {
		return nil, nil, 0, fmt.Errorf("frontend: zero step")
	}
	trips := int((hiv-lov)/stepv + 1)
	if trips < 0 {
		trips = 0
	}

	// Array layout.
	layout := &Layout{Base: map[string]int64{}, Extent: map[string]int{}}
	for _, name := range cl.Arrays() {
		sym := cl.Unit.Syms[name]
		extent := 0
		if sym != nil && sym.Dim != nil {
			if c, ok := constInt(sym.Dim); ok {
				extent = int(c)
			} else if v, err := cl.evalBound(sym.Dim, b); err == nil {
				extent = int(v)
			}
		}
		if e, ok := b.Extents[name]; ok {
			extent = e
		}
		if extent <= 0 {
			return nil, nil, 0, fmt.Errorf("frontend: no extent for array %q (declare a constant dimension or bind Extents)", name)
		}
		layout.Base[name] = int64(layout.MemSize)
		layout.Extent[name] = extent
		layout.MemSize += extent
	}

	mem := make([]ir.Scalar, layout.MemSize)
	if b.Fill != nil {
		for _, name := range cl.Arrays() {
			base := layout.Base[name]
			for idx := 1; idx <= layout.Extent[name]; idx++ {
				mem[base+int64(idx)-1] = b.Fill(name, idx)
			}
		}
	}

	env := &rt.Env{
		Mem:  mem,
		GPR:  map[ir.ValueID]ir.Scalar{},
		Init: map[rt.InstKey]ir.Scalar{},
	}

	// Invariant scalar live-ins.
	for name, vid := range cl.Scalars {
		sym := cl.Unit.Syms[name]
		if sym.Type == TInteger {
			v, ok := b.intOf(name)
			if !ok {
				return nil, nil, 0, fmt.Errorf("frontend: binding missing integer %q", name)
			}
			env.GPR[vid] = ir.IntS(v)
		} else {
			v, ok := b.Reals[name]
			if !ok {
				return nil, nil, 0, fmt.Errorf("frontend: binding missing real %q", name)
			}
			env.GPR[vid] = ir.FloatS(v)
		}
	}
	// Invariant element addresses and array bases.
	for key, vid := range cl.ConstAddrs {
		env.GPR[vid] = ir.IntS(layout.Base[key.Array] + key.Index - 1)
	}
	for name, vid := range cl.ArrayBases {
		env.GPR[vid] = ir.IntS(layout.Base[name])
	}

	// Preheader instances: seed iterations −1..−maxω per recipe, where
	// maxω is the deepest read of that value in the loop.
	maxOmega := map[ir.ValueID]int{}
	for _, op := range cl.Loop.Ops {
		for _, rd := range op.Reads() {
			if rd.Omega > maxOmega[rd.Val] {
				maxOmega[rd.Val] = rd.Omega
			}
		}
	}
	for _, r := range cl.Recipes {
		depth := maxOmega[r.Val]
		for j := 1; j <= depth; j++ {
			iter := int64(-j)
			key := rt.InstKey{Val: r.Val, Iter: -j}
			switch r.Kind {
			case RecipeAffine:
				env.Init[key] = ir.IntS(layout.Base[r.Array] + lov + r.C - 1 + iter*stepv)
			case RecipeMemLoad:
				addr := layout.Base[r.Array] + lov + r.C - 1 + iter*stepv
				if addr >= 0 && addr < int64(len(mem)) {
					env.Init[key] = mem[addr]
				} // else: reads before the array — stays zero
			case RecipeScalar:
				sym := cl.Unit.Syms[r.Scalar]
				if sym.Type == TInteger {
					v, ok := b.intOf(r.Scalar)
					if !ok {
						return nil, nil, 0, fmt.Errorf("frontend: binding missing initial value for %q", r.Scalar)
					}
					env.Init[key] = ir.IntS(v)
				} else {
					v, ok := b.Reals[r.Scalar]
					if !ok {
						return nil, nil, 0, fmt.Errorf("frontend: binding missing initial value for %q", r.Scalar)
					}
					env.Init[key] = ir.FloatS(v)
				}
			case RecipeIndex:
				env.Init[key] = ir.IntS(lov + iter*stepv)
			}
		}
	}
	return env, layout, trips, nil
}
