package loopgen

import (
	"repro/internal/frontend"
	"repro/internal/ir"
)

// AutoBinding builds a deterministic runtime binding for any workload
// loop: every invariant scalar, carried-scalar initial value, and array
// element gets a value derived from its name, so end-to-end differential
// tests can execute arbitrary generated loops without hand-written
// environments. Integer scalars (DO bounds like n or lw) get a modest
// trip-friendly value; reals get nonzero values bounded away from zero
// so divides stay finite.
func AutoBinding(cl *frontend.CompiledLoop) frontend.Binding {
	b := frontend.Binding{
		Ints:  map[string]int64{},
		Reals: map[string]float64{},
		Fill: func(array string, idx int) ir.Scalar {
			h := hash(array)
			v := 0.5 + float64((idx*7+int(h%13))%19)*0.25
			if (idx+int(h))%5 == 0 {
				v = -v
			}
			return ir.FloatS(v)
		},
	}
	bindScalar := func(name string, typ frontend.BaseType) {
		if typ == frontend.TInteger {
			if _, ok := b.Ints[name]; !ok {
				b.Ints[name] = 40 + int64(hash(name)%20)
			}
		} else {
			if _, ok := b.Reals[name]; !ok {
				b.Reals[name] = 0.75 + float64(hash(name)%8)*0.3
			}
		}
	}
	for name := range cl.Scalars {
		bindScalar(name, cl.Unit.Syms[name].Type)
	}
	for _, r := range cl.Recipes {
		if r.Kind == frontend.RecipeScalar {
			bindScalar(r.Scalar, cl.Unit.Syms[r.Scalar].Type)
		}
	}
	// DO bounds may reference scalars the loop body never reads.
	for _, e := range []frontend.Expr{cl.Do.Lo, cl.Do.Hi, cl.Do.Step} {
		bindBoundVars(cl, e, &b)
	}
	return b
}

func bindBoundVars(cl *frontend.CompiledLoop, e frontend.Expr, b *frontend.Binding) {
	switch e := e.(type) {
	case *frontend.VarRef:
		if _, ok := b.Ints[e.Name]; !ok {
			b.Ints[e.Name] = 40 + int64(hash(e.Name)%20)
		}
	case *frontend.BinExpr:
		bindBoundVars(cl, e.L, b)
		bindBoundVars(cl, e.R, b)
	case *frontend.UnExpr:
		bindBoundVars(cl, e.X, b)
	}
}

func hash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}
