// Package loopgen builds the benchmark workload. The paper evaluated on
// all 1,525 eligible DO loops from the Lawrence Livermore Loops, the
// SPEC89 FORTRAN benchmarks, and the Perfect Club — codes we do not
// have. The substitute (documented in DESIGN.md) is a corpus with the
// same population size and a comparable complexity profile: the
// embedded Livermore/classic kernels (public-domain algorithms written
// in the mini-FORTRAN dialect) plus seeded synthetic loops drawn from
// templates spanning the paper's loop classes — streaming bodies,
// stencils with register-forwarded reuse, reductions, first- and
// second-order recurrences, conditionals, divide/sqrt-heavy bodies, and
// indirect gathers — with the class mix calibrated to Tables 3 and 4
// (about 69% of loops have neither conditionals nor recurrences).
package loopgen

import (
	"embed"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/frontend"
	"repro/internal/machine"
)

//go:embed kernels/*.f
var kernelFS embed.FS

// Loop is one workload member.
type Loop struct {
	Name   string
	Source string
	CL     *frontend.CompiledLoop
}

// Suite is the full workload.
type Suite struct {
	Mach  *machine.Desc
	Loops []*Loop
	// Rejected counts generated-or-kernel loops that failed the paper's
	// eligibility tests (they are regenerated, so Loops has full size).
	Rejected int
}

// Options configures suite construction.
type Options struct {
	// Size is the number of loops; default 1525, the paper's count.
	Size int
	// Seed makes the synthetic portion reproducible.
	Seed int64
	// Mach is the target; default the paper's machine.
	Mach *machine.Desc
}

// Kernels compiles the embedded kernel corpus.
func Kernels(m *machine.Desc) ([]*Loop, error) {
	entries, err := kernelFS.ReadDir("kernels")
	if err != nil {
		return nil, err
	}
	var out []*Loop
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		src, err := kernelFS.ReadFile("kernels/" + name)
		if err != nil {
			return nil, err
		}
		_, loops, err := frontend.Compile(string(src), m)
		if err != nil {
			return nil, fmt.Errorf("kernel %s: %w", name, err)
		}
		for i, cl := range loops {
			if cl.Ineligible != nil {
				return nil, fmt.Errorf("kernel %s loop %d ineligible: %v", name, i, cl.Ineligible)
			}
			out = append(out, &Loop{
				Name:   strings.TrimSuffix(name, ".f"),
				Source: string(src),
				CL:     cl,
			})
		}
	}
	return out, nil
}

// Build constructs the workload: kernels first, then synthetics up to
// Size.
func Build(opt Options) (*Suite, error) {
	if opt.Size == 0 {
		opt.Size = 1525
	}
	if opt.Mach == nil {
		opt.Mach = machine.Cydra()
	}
	s := &Suite{Mach: opt.Mach}
	ks, err := Kernels(opt.Mach)
	if err != nil {
		return nil, err
	}
	s.Loops = append(s.Loops, ks...)
	rng := rand.New(rand.NewSource(opt.Seed))
	for len(s.Loops) < opt.Size {
		name := fmt.Sprintf("syn%04d", len(s.Loops))
		src := Generate(rng, name)
		_, loops, err := frontend.Compile(src, opt.Mach)
		if err != nil {
			return nil, fmt.Errorf("generated %s does not compile: %w\n%s", name, err, src)
		}
		ok := true
		for _, cl := range loops {
			if cl.Ineligible != nil {
				ok = false
			}
		}
		if !ok || len(loops) == 0 {
			s.Rejected++
			continue
		}
		for _, cl := range loops {
			if len(s.Loops) < opt.Size {
				s.Loops = append(s.Loops, &Loop{Name: name, Source: src, CL: cl})
			}
		}
	}
	return s, nil
}

// Generate emits one random mini-FORTRAN subroutine. The template mix
// approximates the paper's loop-class distribution (about 69% "Has
// Neither") and its complexity profile (Table 2: median ≈17 ops with a
// long tail past 250), including the shapes that differentiate the
// schedulers — imbalanced dataflow that punishes always-early placement,
// recurrences under resource pressure, and divider-saturated bodies.
func Generate(rng *rand.Rand, name string) string {
	g := &gen{rng: rng}
	r := rng.Float64()
	switch {
	case r < 0.26:
		return g.stream(name)
	case r < 0.38:
		return g.stencil(name)
	case r < 0.46:
		return g.imbalanced(name)
	case r < 0.53:
		return g.reduction(name)
	case r < 0.62:
		return g.recurrence(name)
	case r < 0.68:
		return g.recPressure(name)
	case r < 0.71:
		return g.multiRecurrence(name)
	case r < 0.77:
		return g.conditional(name)
	case r < 0.81:
		return g.condRecurrence(name)
	case r < 0.86:
		return g.divheavy(name)
	case r < 0.885:
		return g.divSaturated(name)
	case r < 0.94:
		return g.wide(name)
	case r < 0.955:
		return g.huge(name)
	default:
		return g.state(name)
	}
}

type gen struct {
	rng *rand.Rand
}

func (g *gen) intn(n int) int { return g.rng.Intn(n) }

func (g *gen) pickOp() string {
	return []string{"+", "-", "*"}[g.intn(3)]
}

// arrRef renders a(i+c) with a small random offset.
func (g *gen) arrRef(a string, maxOff int) string {
	c := g.intn(2*maxOff+1) - maxOff
	switch {
	case c > 0:
		return fmt.Sprintf("%s(i+%d)", a, c)
	case c < 0:
		return fmt.Sprintf("%s(i-%d)", a, -c)
	default:
		return a + "(i)"
	}
}

// expr builds a random arithmetic expression over the given operand
// atoms with the given node budget.
func (g *gen) expr(atoms []string, budget int) string {
	if budget <= 1 || g.intn(4) == 0 {
		return atoms[g.intn(len(atoms))]
	}
	l := g.expr(atoms, budget/2)
	r := g.expr(atoms, budget-budget/2)
	op := g.pickOp()
	return "(" + l + " " + op + " " + r + ")"
}

const header = "      subroutine %s(n, q, r, t, %s)\n      real %s\n      real q, r, t\n      integer n, i\n"

func decl(arrays []string, extent int) (params, decls string) {
	var ds []string
	for _, a := range arrays {
		ds = append(ds, fmt.Sprintf("%s(%d)", a, extent))
	}
	return strings.Join(arrays, ", "), strings.Join(ds, ", ")
}

func (g *gen) preamble(name string, arrays []string) string {
	p, d := decl(arrays, 1024)
	return fmt.Sprintf(header, name, p, d)
}

// stream: out(i) = expr(in arrays, invariants). The "neither" class.
func (g *gen) stream(name string) string {
	nin := 1 + g.intn(3)
	arrays := []string{"w"}
	atoms := []string{"q", "r", "t"}
	for k := 0; k < nin; k++ {
		a := string(rune('a' + k))
		arrays = append(arrays, a)
		atoms = append(atoms, a+"(i)")
	}
	var b strings.Builder
	b.WriteString(g.preamble(name, arrays))
	b.WriteString("      do i = 1, n\n")
	stmts := 1 + g.intn(3)
	for s := 0; s < stmts; s++ {
		// Scalar temporaries feed a single final store.
		if s < stmts-1 {
			b.WriteString(fmt.Sprintf("        s%d = %s\n", s, g.expr(atoms, 3+g.intn(5))))
			atoms = append(atoms, fmt.Sprintf("s%d", s))
		} else {
			b.WriteString("        w(i) = " + g.expr(atoms, 3+g.intn(6)) + "\n")
		}
	}
	b.WriteString("      end do\n      end\n")
	return b.String()
}

// stencil: reads at several offsets of one array (load-forwarded).
func (g *gen) stencil(name string) string {
	taps := 2 + g.intn(4)
	var atoms []string
	for k := 0; k < taps; k++ {
		atoms = append(atoms, fmt.Sprintf("a(i+%d)", k))
	}
	atoms = append(atoms, "q", "r")
	var b strings.Builder
	b.WriteString(g.preamble(name, []string{"w", "a"}))
	b.WriteString("      do i = 1, n\n")
	b.WriteString("        w(i) = " + g.expr(atoms, taps+2) + "\n")
	b.WriteString("      end do\n      end\n")
	return b.String()
}

// reduction: an accumulator (trivial self-recurrence only).
func (g *gen) reduction(name string) string {
	var b strings.Builder
	b.WriteString(g.preamble(name, []string{"a", "b"}))
	b.WriteString("      do i = 1, n\n")
	switch g.intn(3) {
	case 0:
		b.WriteString("        acc = acc + a(i)*b(i)\n")
	case 1:
		b.WriteString("        acc = acc + (a(i) + q)*(b(i) - r)\n")
	default:
		b.WriteString("        acc = amax1(acc, a(i)*b(i))\n")
	}
	b.WriteString("      end do\n      end\n")
	return b.String()
}

// recurrence: a genuine cross-operation circuit through memory
// forwarding, x(i) = f(x(i-d), ...).
func (g *gen) recurrence(name string) string {
	d := 1 + g.intn(3)
	var b strings.Builder
	b.WriteString(g.preamble(name, []string{"x", "y"}))
	b.WriteString("      do i = 4, n\n")
	switch g.intn(3) {
	case 0:
		fmt.Fprintf(&b, "        x(i) = y(i)*(q - x(i-%d))\n", d)
	case 1:
		fmt.Fprintf(&b, "        x(i) = x(i-%d) + r*y(i)\n", d)
	default:
		fmt.Fprintf(&b, "        x(i) = q*x(i-%d) + r*x(i-%d) + y(i)\n", d, d+1)
	}
	b.WriteString("      end do\n      end\n")
	return b.String()
}

// conditional: if-converted body, no recurrence.
func (g *gen) conditional(name string) string {
	var b strings.Builder
	b.WriteString(g.preamble(name, []string{"w", "a", "b"}))
	b.WriteString("      do i = 1, n\n")
	switch g.intn(3) {
	case 0:
		b.WriteString("        if (a(i) .gt. q) then\n")
		b.WriteString("          w(i) = a(i)*r\n")
		b.WriteString("        else\n")
		b.WriteString("          w(i) = b(i) + t\n")
		b.WriteString("        end if\n")
	case 1:
		b.WriteString("        w(i) = b(i)\n")
		b.WriteString("        if (a(i)*r .lt. t) w(i) = b(i)*q\n")
	default:
		b.WriteString("        if (a(i) .gt. q .and. b(i) .lt. r) then\n")
		b.WriteString("          w(i) = a(i) - b(i)\n")
		b.WriteString("        else\n")
		b.WriteString("          w(i) = a(i) + b(i)\n")
		b.WriteString("        end if\n")
	}
	b.WriteString("      end do\n      end\n")
	return b.String()
}

// condRecurrence: both a conditional and a recurrence ("Has Both").
func (g *gen) condRecurrence(name string) string {
	var b strings.Builder
	b.WriteString(g.preamble(name, []string{"x", "a"}))
	b.WriteString("      do i = 2, n\n")
	if g.intn(2) == 0 {
		b.WriteString("        if (a(i) .gt. q) then\n")
		b.WriteString("          acc = acc + a(i)\n")
		b.WriteString("        end if\n")
		b.WriteString("        x(i) = x(i-1)*r + acc\n")
	} else {
		b.WriteString("        if (x(i-1) .lt. t) then\n")
		b.WriteString("          x(i) = x(i-1) + a(i)\n")
		b.WriteString("        else\n")
		b.WriteString("          x(i) = x(i-1)*q\n")
		b.WriteString("        end if\n")
	}
	b.WriteString("      end do\n      end\n")
	return b.String()
}

// divheavy: divides and square roots on the non-pipelined divider.
func (g *gen) divheavy(name string) string {
	var b strings.Builder
	b.WriteString(g.preamble(name, []string{"w", "a", "b"}))
	b.WriteString("      do i = 1, n\n")
	switch g.intn(3) {
	case 0:
		b.WriteString("        w(i) = a(i)/b(i)\n")
	case 1:
		b.WriteString("        w(i) = sqrt(abs(a(i))) + b(i)/q\n")
	default:
		b.WriteString("        w(i) = a(i)/(b(i) + q) + b(i)/(a(i) + r)\n")
	}
	b.WriteString("      end do\n      end\n")
	return b.String()
}

// wide: many statements for the tail of the op-count distribution.
func (g *gen) wide(name string) string {
	nin := 3 + g.intn(3)
	arrays := []string{"w", "v"}
	atoms := []string{"q", "r", "t"}
	for k := 0; k < nin; k++ {
		a := string(rune('a' + k))
		arrays = append(arrays, a)
		atoms = append(atoms, a+"(i)")
	}
	var b strings.Builder
	b.WriteString(g.preamble(name, arrays))
	b.WriteString("      do i = 1, n\n")
	stmts := 4 + g.intn(12)
	for s := 0; s < stmts-2; s++ {
		fmt.Fprintf(&b, "        s%d = %s\n", s, g.expr(atoms, 4+g.intn(6)))
		atoms = append(atoms, fmt.Sprintf("s%d", s))
	}
	b.WriteString("        w(i) = " + g.expr(atoms, 6) + "\n")
	b.WriteString("        v(i) = " + g.expr(atoms, 6) + "\n")
	b.WriteString("      end do\n      end\n")
	return b.String()
}

// state: a stored scalar state recurrence.
func (g *gen) state(name string) string {
	var b strings.Builder
	b.WriteString(g.preamble(name, []string{"w", "a"}))
	b.WriteString("      do i = 1, n\n")
	b.WriteString("        acc = q*acc + r*a(i)\n")
	b.WriteString("        w(i) = acc\n")
	b.WriteString("      end do\n      end\n")
	return b.String()
}

// imbalanced: one long multiply/divide chain plus cheap loads whose
// values are consumed only at the end — early placement stretches the
// cheap values' lifetimes across the whole chain, the shape Section 5's
// bidirectional heuristic exists for.
func (g *gen) imbalanced(name string) string {
	depth := 3 + g.intn(4)
	arrays := []string{"w", "a"}
	for k := 0; k < depth; k++ {
		arrays = append(arrays, string(rune('b'+k)))
	}
	var b strings.Builder
	b.WriteString(g.preamble(name, arrays))
	b.WriteString("      do i = 1, n\n")
	// chain = b(i)*c(i)*d(i)*... ; result combined with a(i) at the end.
	chain := "b(i)"
	for k := 1; k < depth; k++ {
		chain = fmt.Sprintf("(%s * %s(i))", chain, string(rune('b'+k)))
	}
	fmt.Fprintf(&b, "        w(i) = a(i) + %s\n", chain)
	b.WriteString("      end do\n      end\n")
	return b.String()
}

// recPressure: a recurrence circuit surrounded by enough independent
// work to create resource contention — the mix where a static priority
// that places all recurrence ops first gives ground (Section 8).
func (g *gen) recPressure(name string) string {
	nin := 2 + g.intn(3)
	arrays := []string{"x", "y"}
	atoms := []string{"q", "r"}
	for k := 0; k < nin; k++ {
		a := string(rune('a' + k))
		arrays = append(arrays, a)
		atoms = append(atoms, a+"(i)")
	}
	var b strings.Builder
	b.WriteString(g.preamble(name, arrays))
	b.WriteString("      do i = 3, n\n")
	for s := 0; s < 1+g.intn(3); s++ {
		fmt.Fprintf(&b, "        s%d = %s\n", s, g.expr(atoms, 4+g.intn(5)))
		atoms = append(atoms, fmt.Sprintf("s%d", s))
	}
	d := 1 + g.intn(2)
	fmt.Fprintf(&b, "        x(i) = x(i-%d)*q + %s\n", d, g.expr(atoms, 3))
	fmt.Fprintf(&b, "        y(i) = %s\n", g.expr(atoms, 4))
	b.WriteString("      end do\n      end\n")
	return b.String()
}

// multiRecurrence: coupled recurrences sharing the adder/multiplier.
func (g *gen) multiRecurrence(name string) string {
	var b strings.Builder
	b.WriteString(g.preamble(name, []string{"x", "y", "a"}))
	b.WriteString("      do i = 3, n\n")
	switch g.intn(3) {
	case 0:
		b.WriteString("        x(i) = x(i-1) + y(i-2)\n")
		b.WriteString("        y(i) = y(i-1) + x(i-2)\n")
	case 1:
		b.WriteString("        x(i) = q*x(i-1) + a(i)\n")
		b.WriteString("        y(i) = y(i-1)*r + x(i-1)\n")
	default:
		b.WriteString("        x(i) = x(i-2) + a(i)*q\n")
		b.WriteString("        y(i) = y(i-1) - x(i)*r\n")
	}
	b.WriteString("      end do\n      end\n")
	return b.String()
}

// divSaturated: chained divides/square roots that saturate (or nearly
// saturate) the non-pipelined divider — the loops behind the paper's
// II > MII tail and the baseline's occasional failures.
func (g *gen) divSaturated(name string) string {
	var b strings.Builder
	b.WriteString(g.preamble(name, []string{"w", "a", "c"}))
	b.WriteString("      do i = 1, n\n")
	switch g.intn(3) {
	case 0:
		b.WriteString("        s0 = a(i)/c(i)\n")
		b.WriteString("        w(i) = c(i)/(sqrt(s0) + 1.0)\n")
	case 1:
		b.WriteString("        s0 = a(i)/(c(i) + q)\n")
		b.WriteString("        s1 = s0/(c(i) + r)\n")
		b.WriteString("        w(i) = s1/(a(i) + t)\n")
	default:
		b.WriteString("        w(i) = sqrt(a(i))/sqrt(c(i))\n")
	}
	b.WriteString("      end do\n      end\n")
	return b.String()
}

// huge: the far tail of the op-count distribution (Table 2's max 268).
func (g *gen) huge(name string) string {
	nin := 5 + g.intn(3)
	arrays := []string{"w", "v", "u"}
	atoms := []string{"q", "r", "t"}
	for k := 0; k < nin; k++ {
		a := string(rune('a' + k))
		arrays = append(arrays, a)
		atoms = append(atoms, a+"(i)")
	}
	var b strings.Builder
	b.WriteString(g.preamble(name, arrays))
	b.WriteString("      do i = 1, n\n")
	stmts := 20 + g.intn(25)
	for s := 0; s < stmts; s++ {
		fmt.Fprintf(&b, "        s%d = %s\n", s, g.expr(atoms, 3+g.intn(6)))
		atoms = append(atoms, fmt.Sprintf("s%d", s))
	}
	b.WriteString("        w(i) = " + g.expr(atoms, 8) + "\n")
	b.WriteString("        v(i) = " + g.expr(atoms, 8) + "\n")
	b.WriteString("        u(i) = " + g.expr(atoms, 8) + "\n")
	b.WriteString("      end do\n      end\n")
	return b.String()
}
