package loopgen

import (
	"math/rand"
	"testing"

	"repro/internal/frontend"
	"repro/internal/machine"
	"repro/internal/mii"
)

func TestKernelsCompile(t *testing.T) {
	ks, err := Kernels(machine.Cydra())
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) < 20 {
		t.Fatalf("kernel corpus too small: %d", len(ks))
	}
	seen := map[string]bool{}
	for _, k := range ks {
		if k.CL.Loop == nil {
			t.Errorf("%s: no IR", k.Name)
			continue
		}
		seen[k.Name] = true
		if _, err := mii.Compute(k.CL.Loop); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
	}
	for _, want := range []string{"lll01_hydro", "lll05_tridiag", "lll24_argmin", "daxpy"} {
		if !seen[want] {
			t.Errorf("missing kernel %s", want)
		}
	}
}

// Every generated source must parse and lower (ineligibility is
// acceptable — Build regenerates — but a frontend error is a generator
// bug).
func TestGeneratedLoopsCompile(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := machine.Cydra()
	ineligible := 0
	for i := 0; i < 250; i++ {
		src := Generate(rng, "g")
		_, loops, err := frontendCompile(src, m)
		if err != nil {
			t.Fatalf("generated source %d fails to compile: %v\n%s", i, err, src)
		}
		if len(loops) != 1 {
			t.Fatalf("generated source %d has %d loops\n%s", i, len(loops), src)
		}
		if loops[0].Ineligible != nil {
			ineligible++
		}
	}
	if ineligible > 25 {
		t.Errorf("%d/250 generated loops ineligible; generator wasteful", ineligible)
	}
}

func TestBuildSuite(t *testing.T) {
	s, err := Build(Options{Size: 300, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Loops) != 300 {
		t.Fatalf("suite size %d, want 300", len(s.Loops))
	}
	// Class mix sanity: most loops have neither conditionals nor
	// constraining recurrences, mirroring the paper's population (~69%
	// "Has Neither"); both other classes must be represented. A
	// recurrence "counts" when it constrains II (RecMII > 1), matching
	// the benchmark harness's classification.
	neither, cond, rec := 0, 0, 0
	for _, l := range s.Loops {
		b, err := mii.Compute(l.CL.Loop)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		hasC := l.CL.Loop.HasConditional
		hasR := b.RecMII > 1
		switch {
		case !hasC && !hasR:
			neither++
		case hasC && !hasR:
			cond++
		case hasR && !hasC:
			rec++
		}
	}
	if neither < 120 {
		t.Errorf("only %d/300 'neither' loops; class mix off", neither)
	}
	if cond == 0 || rec == 0 {
		t.Errorf("class mix missing conditionals (%d) or recurrences (%d)", cond, rec)
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(Options{Size: 60, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(Options{Size: 60, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Loops {
		if a.Loops[i].Source != b.Loops[i].Source {
			t.Fatalf("loop %d differs across identically seeded builds", i)
		}
	}
}

// frontendCompile keeps the test import surface tidy.
func frontendCompile(src string, m *machine.Desc) (any, []*clAlias, error) {
	u, loops, err := frontend.Compile(src, m)
	out := make([]*clAlias, len(loops))
	for i, l := range loops {
		out[i] = (*clAlias)(nil)
		_ = l
		out[i] = &clAlias{Ineligible: l.Ineligible}
	}
	return u, out, err
}

type clAlias struct{ Ineligible error }
