c Livermore kernel 6 (inner fragment): general linear recurrence with a
c fixed back distance.
      subroutine lll06(n, w, b)
      real w(1024), b(1024)
      integer n, i
      do i = 2, n
        w(i) = w(i) + b(i)*w(i-1)
      end do
      end
