c Livermore kernel 4: banded linear equations (innermost, stride 5).
      subroutine lll04(lw, xsum, x, y)
      real x(1001), y(1001), xsum
      integer lw, j
      do j = 7, lw, 5
        xsum = xsum + x(j)*y(j-6)
      end do
      end
