c Livermore kernel 9: integrate predictors (px(13,i) flattened to
c separate predictor arrays).
      subroutine lll09(n, dm22, dm23, dm24, dm25, dm26, dm27, dm28, &
                       c0, px1, px2, px3, px5, px6, px7, px8, &
                       px9, px10, px11, px12, px13)
      real px1(1001), px2(1001), px3(1001), px5(1001), px6(1001)
      real px7(1001), px8(1001), px9(1001), px10(1001), px11(1001)
      real px12(1001), px13(1001)
      real dm22, dm23, dm24, dm25, dm26, dm27, dm28, c0
      integer n, i
      do i = 1, n
        px1(i) = dm28*px13(i) + dm27*px12(i) + dm26*px11(i) + &
                 dm25*px10(i) + dm24*px9(i) + dm23*px8(i) + &
                 dm22*px7(i) + c0*(px5(i) + px6(i)) + px3(i)
      end do
      end
