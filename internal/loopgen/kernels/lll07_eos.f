c Livermore kernel 7: equation of state fragment.
      subroutine lll07(n, q, r, t, x, y, z, u)
      real x(1001), y(1001), z(1001), u(1021)
      real q, r, t
      integer n, k
      do k = 1, n
        x(k) = u(k) + r*(z(k) + r*y(k)) + &
               t*(u(k+3) + r*(u(k+2) + r*u(k+1)) + &
               t*(u(k+6) + q*(u(k+5) + q*u(k+4))))
      end do
      end
