c Livermore kernel 3: inner product.
      subroutine lll03(n, q, x, z)
      real x(1001), z(1001), q
      integer n, k
      do k = 1, n
        q = q + z(k)*x(k)
      end do
      end
