c Livermore kernel 21 (inner fragment): matrix product inner update,
c expressed along one row.
      subroutine lll21(n, scale, px, vy)
      real px(1024), vy(1024), scale
      integer n, k
      do k = 1, n
        px(k) = px(k) + scale*vy(k)
      end do
      end
