c Sum of squares (snrm2 without the final sqrt).
      subroutine ssum2(n, acc, x)
      real x(1024), acc
      integer n, i
      do i = 1, n
        acc = acc + x(i)*x(i)
      end do
      end
