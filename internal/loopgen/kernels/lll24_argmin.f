c Livermore kernel 24: location of first minimum (conditional scalar
c recurrence; the branchy original is if-converted).
      subroutine lll24(n, m, xm, x)
      real x(1001), xm
      integer n, k, m
      do k = 2, n
        if (x(k) .lt. xm) then
          m = k
          xm = x(k)
        end if
      end do
      end
