c Livermore kernel 19: general linear recurrence equations (forward).
      subroutine lll19(n, stb5, sa, sb, b5)
      real sa(1001), sb(1001), b5(1001), stb5
      integer n, k
      do k = 1, n
        b5(k) = sa(k) + stb5*sb(k)
        stb5 = b5(k) - stb5
      end do
      end
