c Five-point interpolation: wide fan-in, memory-port bound.
      subroutine interp5(n, w0, w1, w2, w3, w4, x, y)
      real x(1005), y(1001)
      real w0, w1, w2, w3, w4
      integer n, i
      do i = 1, n
        y(i) = w0*x(i) + w1*x(i+1) + w2*x(i+2) + w3*x(i+3) + w4*x(i+4)
      end do
      end
