c Livermore kernel 12: first difference.
      subroutine lll12(n, x, y)
      real x(1001), y(1002)
      integer n, k
      do k = 1, n
        x(k) = y(k+1) - y(k)
      end do
      end
