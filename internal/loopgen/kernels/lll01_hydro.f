c Livermore kernel 1: hydrodynamics fragment.
      subroutine lll01(n, q, r, t, x, y, z)
      real x(1001), y(1001), z(1012)
      real q, r, t
      integer n, k
      do k = 1, n
        x(k) = q + y(k)*(r*z(k+10) + t*z(k+11))
      end do
      end
