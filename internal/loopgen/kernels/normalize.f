c Per-element normalization: one divide per iteration.
      subroutine normalize(n, x, y, z)
      real x(1001), y(1001), z(1001)
      integer n, i
      do i = 1, n
        z(i) = x(i)/sqrt(y(i))
      end do
      end
