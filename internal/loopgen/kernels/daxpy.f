c BLAS daxpy: y = y + a*x.
      subroutine daxpy(n, a, x, y)
      real x(1001), y(1001), a
      integer n, i
      do i = 1, n
        y(i) = y(i) + a*x(i)
      end do
      end
