c Saturating clip with a two-sided conditional.
      subroutine clipcond(n, top, bot, x, y)
      real x(1001), y(1001), top, bot
      integer n, i
      do i = 1, n
        if (x(i) .gt. top) then
          y(i) = top
        else
          y(i) = amax1(x(i), bot)
        end if
      end do
      end
