c STREAM triad: a = b + q*c.
      subroutine triad(n, q, a, b, c)
      real a(1001), b(1001), c(1001), q
      integer n, i
      do i = 1, n
        a(i) = b(i) + q*c(i)
      end do
      end
