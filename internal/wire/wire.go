// Package wire defines the canonical serialized form of a compilation
// request: the loop IR (operations, predicates, dependence arcs with
// their (latency, ω) labels), the machine selection, the scheduling
// policy, and the governed-pipeline options of core.Options /
// sched.Config. The encoding is a deterministic, versioned JSON
// document — structs only, no maps, fields in declaration order — so
// the same request always serializes to the same bytes, and a SHA-256
// over the canonical bytes (see Hash) is a stable content address for
// the work the request describes. lsmsd keys its result cache and its
// singleflight deduplication on that hash; lsms -emit json prints it.
//
// # What is (and is not) encoded
//
// A Loop document carries exactly the inputs of scheduling: values
// (register file, type, live-out flags, literal constants), operations
// (opcode mnemonic, operand (value, ω) pairs, result, predicate guard),
// and the non-flow dependence arcs (memory and ordering, with latency
// and ω). Flow arcs, functional-unit assignments, and recurrence marks
// are deliberately omitted: ir.Loop.Finalize re-derives all three
// deterministically from the operands and the machine description, so
// encoding them would only create room for inconsistent documents.
// DecodeLoop therefore returns a finalized loop that schedules
// bit-identically to the original (the differential tests assert this
// over the loopgen corpus).
//
// # Versioning
//
// Version is "lsms-wire/2", which added machine_spec: a request may
// name a registered target or embed a declarative machine.Spec inline,
// and the spec is part of the canonical bytes — distinct machines can
// never share a content address. Decoders still accept "lsms-wire/1"
// envelopes (a strict subset: no machine_spec) and Normalize
// re-versions them to 2, so the v1 and v2 forms of the same request
// share one hash and one cache entry. Any further change to field
// names, field order, or canonicalization rules must bump the version.
// The golden fixtures under testdata/ pin version 2's exact bytes.
package wire

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/frontend"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/sched"
)

// Version is the wire-format version emitted by this package.
const Version = "lsms-wire/2"

// VersionV1 is the previous wire format, still accepted on decode.
// It differs from version 2 only by lacking machine_spec; Normalize
// canonicalizes v1 envelopes to Version.
const VersionV1 = "lsms-wire/1"

// Request is one compilation request. Exactly one of Source or Loop
// must be set: Source carries a mini-FORTRAN subroutine (LoopIndex
// selects which innermost loop; the server canonicalizes it to IR form
// before hashing, so the source- and IR-forms of the same loop share a
// content address), Loop carries the IR directly.
//
// The target is either Machine — the name of a machine registered with
// the server (see machine.Register, GET /v1/machines) — or
// MachineSpec, a full declarative description carried in the request,
// for targets the server has never heard of. When both are present
// Machine must equal the spec's name; the spec wins (it is what
// actually builds the desc) and is folded into the content hash.
type Request struct {
	Version     string        `json:"version"`
	Machine     string        `json:"machine"`
	MachineSpec *machine.Spec `json:"machine_spec,omitempty"`
	Scheduler   string        `json:"scheduler,omitempty"`
	Options     Options       `json:"options"`
	Source      string        `json:"source,omitempty"`
	LoopIndex   int           `json:"loop_index,omitempty"`
	Loop        *Loop         `json:"loop,omitempty"`
}

// Options is the serializable subset of sched.Config plus the
// core.Options knobs a remote caller may set. DeadlineMS is wall-clock
// and therefore excluded from the content hash (see Hash).
type Options struct {
	IncrementByOne   bool  `json:"increment_by_one,omitempty"`
	EjectBudgetPerOp int   `json:"eject_budget_per_op,omitempty"`
	MinEjectBudget   int   `json:"min_eject_budget,omitempty"`
	MaxII            int   `json:"max_ii,omitempty"`
	StartII          int   `json:"start_ii,omitempty"`
	NoFastPaths      bool  `json:"no_fast_paths,omitempty"`
	DeadlineMS       int64 `json:"deadline_ms,omitempty"`
	MaxCentralIters  int64 `json:"max_central_iters,omitempty"`
	MaxIIAttempts    int   `json:"max_ii_attempts,omitempty"`
	Degrade          bool  `json:"degrade,omitempty"`
}

// SchedConfig converts the wire options to a sched.Config (Observer
// and Trace are process-local and stay nil).
func (o Options) SchedConfig() sched.Config {
	return sched.Config{
		IncrementByOne:   o.IncrementByOne,
		EjectBudgetPerOp: o.EjectBudgetPerOp,
		MinEjectBudget:   o.MinEjectBudget,
		MaxII:            o.MaxII,
		StartII:          o.StartII,
		NoFastPaths:      o.NoFastPaths,
		Budget: sched.Budget{
			Deadline:        time.Duration(o.DeadlineMS) * time.Millisecond,
			MaxCentralIters: o.MaxCentralIters,
			MaxIIAttempts:   o.MaxIIAttempts,
		},
	}
}

// OptionsFrom captures the serializable parts of a sched.Config.
func OptionsFrom(cfg sched.Config, degrade bool) Options {
	return Options{
		IncrementByOne:   cfg.IncrementByOne,
		EjectBudgetPerOp: cfg.EjectBudgetPerOp,
		MinEjectBudget:   cfg.MinEjectBudget,
		MaxII:            cfg.MaxII,
		StartII:          cfg.StartII,
		NoFastPaths:      cfg.NoFastPaths,
		DeadlineMS:       cfg.Budget.Deadline.Milliseconds(),
		MaxCentralIters:  cfg.Budget.MaxCentralIters,
		MaxIIAttempts:    cfg.Budget.MaxIIAttempts,
		Degrade:          degrade,
	}
}

// Loop is the wire form of an ir.Loop.
type Loop struct {
	Name           string  `json:"name"`
	NumBB          int     `json:"num_bb,omitempty"`
	TripCount      int     `json:"trip_count,omitempty"`
	HasConditional bool    `json:"has_conditional,omitempty"`
	Values         []Value `json:"values"`
	Ops            []Op    `json:"ops"`
	// Deps holds only the non-flow arcs (memory and ordering); flow
	// arcs are re-derived from operands by ir.Loop.Finalize.
	Deps []Dep `json:"deps,omitempty"`
}

// Value is the wire form of an ir.Value. Defs are derived from the ops.
type Value struct {
	Name    string `json:"name"`
	File    string `json:"file"` // "RR" | "GPR" | "ICR"
	Type    string `json:"type"` // "int" | "float" | "addr" | "pred"
	LiveOut bool   `json:"live_out,omitempty"`
	Const   *Const `json:"const,omitempty"` // present iff ConstValid
}

// Const is a literal; the field matching the value's type is the
// meaningful one (zero values are omitted — absence means zero).
type Const struct {
	I int64   `json:"i,omitempty"`
	F float64 `json:"f,omitempty"`
	B bool    `json:"b,omitempty"`
}

// Op is the wire form of an ir.Op. Result is a value index or -1.
type Op struct {
	Opcode  string    `json:"opcode"`
	Args    []Operand `json:"args,omitempty"`
	Result  int       `json:"result"`
	Pred    *Operand  `json:"pred,omitempty"`
	PredNeg bool      `json:"pred_neg,omitempty"`
}

// Operand is a (value index, omega) read.
type Operand struct {
	Val   int `json:"val"`
	Omega int `json:"omega,omitempty"`
}

// Dep is a non-flow dependence arc.
type Dep struct {
	From    int    `json:"from"`
	To      int    `json:"to"`
	Latency int    `json:"latency"`
	Omega   int    `json:"omega,omitempty"`
	Kind    string `json:"kind"` // "mem" | "order"
}

var fileByName = map[string]ir.RegFile{
	ir.RR.String(): ir.RR, ir.GPR.String(): ir.GPR, ir.ICR.String(): ir.ICR,
}

var typeByName = map[string]ir.Type{
	ir.Int.String(): ir.Int, ir.Float.String(): ir.Float,
	ir.Addr.String(): ir.Addr, ir.Pred.String(): ir.Pred,
}

var depKindByName = map[string]ir.DepKind{
	ir.DepMem.String(): ir.DepMem, ir.DepOrder.String(): ir.DepOrder,
}

// EncodeLoop converts a finalized ir.Loop to its wire form.
func EncodeLoop(l *ir.Loop) (*Loop, error) {
	if !l.Finalized() {
		return nil, fmt.Errorf("wire: loop %s not finalized", l.Name)
	}
	w := &Loop{
		Name:           l.Name,
		NumBB:          l.NumBB,
		TripCount:      l.TripCount,
		HasConditional: l.HasConditional,
	}
	for _, v := range l.Values {
		wv := Value{
			Name:    v.Name,
			File:    v.File.String(),
			Type:    v.Type.String(),
			LiveOut: v.LiveOut,
		}
		if v.ConstValid {
			wv.Const = &Const{I: v.Const.I, F: v.Const.F, B: v.Const.B}
		}
		w.Values = append(w.Values, wv)
	}
	for _, op := range l.Ops {
		wo := Op{
			Opcode:  op.Opcode.String(),
			Result:  int(op.Result),
			PredNeg: op.PredNeg,
		}
		for _, a := range op.Args {
			wo.Args = append(wo.Args, Operand{Val: int(a.Val), Omega: a.Omega})
		}
		if op.Pred != nil {
			wo.Pred = &Operand{Val: int(op.Pred.Val), Omega: op.Pred.Omega}
		}
		w.Ops = append(w.Ops, wo)
	}
	for _, d := range l.Deps {
		if d.Kind == ir.DepFlow {
			continue // re-derived by Finalize
		}
		w.Deps = append(w.Deps, Dep{
			From: int(d.From), To: int(d.To),
			Latency: d.Latency, Omega: d.Omega,
			Kind: d.Kind.String(),
		})
	}
	return w, nil
}

// DecodeLoop rebuilds (and finalizes) an ir.Loop from its wire form.
// The returned loop schedules bit-identically to the loop EncodeLoop
// consumed: flow arcs, FU assignment, and recurrence marks are
// re-derived deterministically from the document and the machine.
func (w *Loop) DecodeLoop(m *machine.Desc) (*ir.Loop, error) {
	if w == nil {
		return nil, fmt.Errorf("wire: no loop document")
	}
	l := ir.NewLoop(w.Name, m)
	if w.NumBB > 0 {
		l.NumBB = w.NumBB
	}
	l.TripCount = w.TripCount
	l.HasConditional = w.HasConditional
	for i, wv := range w.Values {
		file, ok := fileByName[wv.File]
		if !ok {
			return nil, fmt.Errorf("wire: value %d (%s): unknown register file %q", i, wv.Name, wv.File)
		}
		typ, ok := typeByName[wv.Type]
		if !ok {
			return nil, fmt.Errorf("wire: value %d (%s): unknown type %q", i, wv.Name, wv.Type)
		}
		v := l.NewValue(wv.Name, file, typ)
		v.LiveOut = wv.LiveOut
		if wv.Const != nil {
			v.Const = ir.Scalar{I: wv.Const.I, F: wv.Const.F, B: wv.Const.B}
			v.ConstValid = true
		}
	}
	nv := len(l.Values)
	checkOperand := func(opIdx int, o Operand) error {
		if o.Val < 0 || o.Val >= nv {
			return fmt.Errorf("wire: op %d reads out-of-range value %d", opIdx, o.Val)
		}
		return nil
	}
	for i, wo := range w.Ops {
		code, ok := machine.OpcodeByName(wo.Opcode)
		if !ok || code == machine.Nop {
			return nil, fmt.Errorf("wire: op %d: unknown opcode %q", i, wo.Opcode)
		}
		if !m.Supports(code) {
			// The decode boundary is where "this target cannot run these
			// ops" becomes a client error; the typed verdict lets servers
			// answer 422 instead of treating it as an internal failure.
			return nil, &machine.UnsupportedOpError{Machine: m.Name, Op: code}
		}
		args := make([]ir.Operand, 0, len(wo.Args))
		for _, a := range wo.Args {
			if err := checkOperand(i, a); err != nil {
				return nil, err
			}
			args = append(args, ir.Operand{Val: ir.ValueID(a.Val), Omega: a.Omega})
		}
		result := ir.ValueID(wo.Result)
		if wo.Result != int(ir.None) && (wo.Result < 0 || wo.Result >= nv) {
			return nil, fmt.Errorf("wire: op %d defines out-of-range value %d", i, wo.Result)
		}
		op := l.NewOp(code, args, result)
		if wo.Pred != nil {
			if err := checkOperand(i, *wo.Pred); err != nil {
				return nil, err
			}
			op.Pred = &ir.Operand{Val: ir.ValueID(wo.Pred.Val), Omega: wo.Pred.Omega}
			op.PredNeg = wo.PredNeg
		}
	}
	for i, d := range w.Deps {
		kind, ok := depKindByName[d.Kind]
		if !ok {
			return nil, fmt.Errorf("wire: dep %d: unknown kind %q", i, d.Kind)
		}
		if d.From < 0 || d.From >= len(l.Ops) || d.To < 0 || d.To >= len(l.Ops) {
			return nil, fmt.Errorf("wire: dep %d references missing op", i)
		}
		l.AddDep(ir.Dep{
			From: ir.OpID(d.From), To: ir.OpID(d.To),
			Latency: d.Latency, Omega: d.Omega, Kind: kind,
		})
	}
	if err := l.Finalize(); err != nil {
		return nil, fmt.Errorf("wire: decoded loop invalid: %w", err)
	}
	return l, nil
}

// NewRequest builds an IR-form request for one finalized loop. If the
// loop's machine is not registered under its name — a custom target
// loaded from a spec file, say — and it carries a declarative spec,
// the spec is embedded so any server can build the target from the
// request alone.
func NewRequest(l *ir.Loop, scheduler string, opt Options) (*Request, error) {
	wl, err := EncodeLoop(l)
	if err != nil {
		return nil, err
	}
	r := &Request{
		Version:   Version,
		Machine:   l.Mach.Name,
		Scheduler: scheduler,
		Options:   opt,
		Loop:      wl,
	}
	if _, ok := machine.Lookup(l.Mach.Name); !ok {
		r.MachineSpec = l.Mach.Spec()
	}
	return r, nil
}

// Desc resolves the request's target: the inline spec if present
// (built and validated), the registry otherwise.
func (r *Request) Desc() (*machine.Desc, error) {
	if r.MachineSpec != nil {
		if r.Machine != "" && r.Machine != r.MachineSpec.Name {
			return nil, fmt.Errorf("wire: machine %q does not match inline spec %q", r.Machine, r.MachineSpec.Name)
		}
		return r.MachineSpec.Build()
	}
	m, ok := machine.Lookup(r.Machine)
	if !ok {
		return nil, fmt.Errorf("wire: unknown machine %q", r.Machine)
	}
	return m, nil
}

// Validate checks the request's envelope (version, machine or inline
// spec, exactly one payload form) without touching the payload.
func (r *Request) Validate() error {
	switch r.Version {
	case Version:
	case VersionV1:
		if r.MachineSpec != nil {
			return fmt.Errorf("wire: inline machine specs require version %q (request is %q)", Version, r.Version)
		}
	default:
		return fmt.Errorf("wire: unsupported version %q (want %q)", r.Version, Version)
	}
	if _, err := r.Desc(); err != nil {
		return err
	}
	if (r.Source == "") == (r.Loop == nil) {
		return fmt.Errorf("wire: exactly one of source or loop must be set")
	}
	return nil
}

// Normalize resolves the request to IR form: a source-form request is
// compiled (frontend) and its LoopIndex-th innermost loop replaces the
// source, so source- and IR-form requests for the same loop
// canonicalize — and content-hash — identically. An IR-form request is
// round-tripped through DecodeLoop to validate it. The envelope is
// canonicalized too — a v1 version string becomes Version, and an
// inline spec fills the machine name — so every accepted way of
// writing a request converges on one set of canonical bytes. The
// receiver is not modified.
func (r *Request) Normalize() (*Request, *ir.Loop, error) {
	if err := r.Validate(); err != nil {
		return nil, nil, err
	}
	m, err := r.Desc()
	if err != nil {
		return nil, nil, err
	}
	n := *r
	n.Version = Version
	n.Machine = m.Name
	if r.Source != "" {
		_, loops, err := frontend.Compile(r.Source, m)
		if err != nil {
			return nil, nil, fmt.Errorf("wire: compiling source: %w", err)
		}
		if r.LoopIndex < 0 || r.LoopIndex >= len(loops) {
			return nil, nil, fmt.Errorf("wire: loop_index %d out of range (%d innermost loops)", r.LoopIndex, len(loops))
		}
		cl := loops[r.LoopIndex]
		if cl.Ineligible != nil {
			return nil, nil, fmt.Errorf("wire: loop %d not modulo-schedulable: %w", r.LoopIndex, cl.Ineligible)
		}
		wl, err := EncodeLoop(cl.Loop)
		if err != nil {
			return nil, nil, err
		}
		n.Source, n.LoopIndex, n.Loop = "", 0, wl
		return &n, cl.Loop, nil
	}
	l, err := r.Loop.DecodeLoop(m)
	if err != nil {
		return nil, nil, err
	}
	return &n, l, nil
}

// Canonical returns the canonical bytes of the request: the JSON
// encoding of its normalized (IR) form. Two requests describing the
// same work — regardless of source vs IR form — have identical
// canonical bytes.
func (r *Request) Canonical() ([]byte, error) {
	n, _, err := r.Normalize()
	if err != nil {
		return nil, err
	}
	return json.Marshal(n)
}
