package wire

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"repro/internal/sched"
)

// Hash returns the request's content address: "sha256:" plus the hex
// SHA-256 of the canonical bytes with the wall-clock deadline zeroed.
//
// Canonicalization rules (DESIGN.md §5c):
//
//   - The request is normalized to IR form first, so the source- and
//     IR-forms of the same loop hash identically.
//   - DeadlineMS is excluded (zeroed): a wall-clock deadline changes
//     only whether a compilation finishes, never what it computes, and
//     lsmsd refuses to cache budget-exhausted outcomes — so requests
//     that differ only in deadline may share a cached success.
//   - The deterministic work caps (MaxCentralIters, MaxIIAttempts) ARE
//     included: they change the outcome reproducibly.
//   - Scheduler, machine, Degrade, and every remaining Option are
//     included: each changes the schedule the request denotes. An
//     inline machine_spec is included whole — two requests carrying
//     different target descriptions can never share a cache entry —
//     and the version string is canonicalized first, so v1 and v2
//     envelopes of the same request hash identically.
func (r *Request) Hash() (string, error) {
	n, _, err := r.Normalize()
	if err != nil {
		return "", err
	}
	h := *n
	h.Options.DeadlineMS = 0
	b, err := json.Marshal(&h)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}

// Effort is the deterministic subset of sched.Stats: the Section 6
// counters without the wall-clock fields, so two runs of the same
// request compare bit-identically.
type Effort struct {
	IIAttempts   int   `json:"ii_attempts"`
	CentralIters int64 `json:"central_iters"`
	Placements   int64 `json:"placements"`
	Forces       int64 `json:"forces"`
	Ejections    int64 `json:"ejections"`
	Restarts     int64 `json:"restarts"`
}

// EffortOf extracts the deterministic counters of a run.
func EffortOf(st sched.Stats) Effort {
	return Effort{
		IIAttempts:   st.IIAttempts,
		CentralIters: st.CentralIters,
		Placements:   st.Placements,
		Forces:       st.Forces,
		Ejections:    st.Ejections,
		Restarts:     st.Restarts,
	}
}

// Bounds mirrors mii.Bounds on the wire.
type Bounds struct {
	ResMII int `json:"res_mii"`
	RecMII int `json:"rec_mii"`
	MII    int `json:"mii"`
}

// Response is lsmsd's reply to POST /v1/compile. On success (and on a
// deterministic infeasible verdict) the body is cacheable and replayed
// byte-identically for later identical requests; the X-Lsmsd-Cache
// response header — not the body — distinguishes hit from miss.
type Response struct {
	Hash      string `json:"hash"`
	Loop      string `json:"loop"`
	Machine   string `json:"machine"`
	Scheduler string `json:"scheduler"`
	OK        bool   `json:"ok"`
	Degraded  bool   `json:"degraded,omitempty"`
	Bounds    Bounds `json:"bounds"`
	II        int    `json:"ii,omitempty"`
	Length    int    `json:"length,omitempty"`
	Stages    int    `json:"stages,omitempty"`
	// Times is the issue cycle of each op (indexed like Loop.Ops).
	Times   []int  `json:"times,omitempty"`
	MaxLive int    `json:"max_live,omitempty"`
	MinAvg  int    `json:"min_avg,omitempty"`
	ICR     int    `json:"icr,omitempty"`
	GPRs    int    `json:"gprs,omitempty"`
	Effort  Effort `json:"effort"`
	// Refined marks a response whose schedule was upgraded in place by
	// lsmsd's background exact-refinement tier: same request hash,
	// strictly better (II, MaxLive) than the synchronous answer.
	Refined bool   `json:"refined,omitempty"`
	Error   *Error `json:"error,omitempty"`
}

// The Error.Kind values and their HTTP status mapping (README
// "Running the service").
const (
	ErrKindBadRequest       = "bad-request"       // 400
	ErrKindUnknownScheduler = "unknown-scheduler" // 400
	ErrKindUnsupportedOp    = "unsupported-op"    // 422
	ErrKindInfeasible       = "infeasible"        // 422
	ErrKindBudgetExhausted  = "budget-exhausted"  // 504
	ErrKindOverloaded       = "overloaded"        // 429
	ErrKindPanic            = "panic"             // 500
	ErrKindInternal         = "internal"          // 500
	ErrKindShuttingDown     = "shutting-down"     // 503
)

// Error reports a failed compilation with its typed evidence.
type Error struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
	Reason  string `json:"reason,omitempty"` // sched.BudgetError reason
	MII     int    `json:"mii,omitempty"`
	LastII  int    `json:"last_ii,omitempty"`
}
