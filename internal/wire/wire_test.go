package wire

import (
	"bytes"
	"encoding/json"
	"os"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/ir"
	"repro/internal/machine"
)

// compile schedules a loop the way lsmsd does (no codegen) and returns
// the deterministic observables.
func compile(t *testing.T, l *ir.Loop, scheduler string) (ii int, times []int, maxLive int, eff Effort) {
	t.Helper()
	c, err := core.Compile(l, core.Options{
		Scheduler:   core.SchedulerName(scheduler),
		SkipCodegen: true,
	})
	if err != nil {
		t.Fatalf("compile %s: %v", l.Name, err)
	}
	if !c.OK() {
		t.Fatalf("compile %s: gave up at II=%d", l.Name, c.Result.FailedII)
	}
	return c.Result.Schedule.II, c.Result.Schedule.Time, c.RR.MaxLive, EffortOf(c.Result.Stats)
}

func TestRoundTripIdentity(t *testing.T) {
	m := machine.Cydra()
	for _, l := range fixture.All(m) {
		w, err := EncodeLoop(l)
		if err != nil {
			t.Fatalf("%s: encode: %v", l.Name, err)
		}
		l2, err := w.DecodeLoop(m)
		if err != nil {
			t.Fatalf("%s: decode: %v", l.Name, err)
		}
		w2, err := EncodeLoop(l2)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", l.Name, err)
		}
		b1, _ := json.Marshal(w)
		b2, _ := json.Marshal(w2)
		if !bytes.Equal(b1, b2) {
			t.Errorf("%s: decode∘encode is not the identity:\n%s\nvs\n%s", l.Name, b1, b2)
		}
		// The derived structures must match too: the decoded loop is
		// indistinguishable from the original to the scheduler.
		if !reflect.DeepEqual(l.Deps, l2.Deps) {
			t.Errorf("%s: dependence arcs differ after round trip", l.Name)
		}
		for i := range l.Ops {
			if l.Ops[i].FU != l2.Ops[i].FU || l.Ops[i].OnRecurrence != l2.Ops[i].OnRecurrence {
				t.Errorf("%s: op %d derived fields differ after round trip", l.Name, i)
			}
		}
	}
}

func TestRoundTripRecompiles(t *testing.T) {
	m := machine.Cydra()
	for _, l := range fixture.All(m) {
		w, err := EncodeLoop(l)
		if err != nil {
			t.Fatalf("%s: encode: %v", l.Name, err)
		}
		l2, err := w.DecodeLoop(m)
		if err != nil {
			t.Fatalf("%s: decode: %v", l.Name, err)
		}
		ii1, t1, p1, e1 := compile(t, l, "slack")
		ii2, t2, p2, e2 := compile(t, l2, "slack")
		if ii1 != ii2 || p1 != p2 || e1 != e2 || !reflect.DeepEqual(t1, t2) {
			t.Errorf("%s: decoded loop compiles differently: II %d vs %d, MaxLive %d vs %d, effort %+v vs %+v",
				l.Name, ii1, ii2, p1, p2, e1, e2)
		}
	}
}

func TestHashCanonicalization(t *testing.T) {
	l := fixture.Daxpy(machine.Cydra())
	base, err := NewRequest(l, "slack", Options{})
	if err != nil {
		t.Fatal(err)
	}
	h0, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}

	// The wall-clock deadline is excluded from the content address.
	dl := *base
	dl.Options.DeadlineMS = 5000
	if h, _ := dl.Hash(); h != h0 {
		t.Errorf("deadline changed the hash: %s vs %s", h, h0)
	}

	// Deterministic work caps are included.
	caps := *base
	caps.Options.MaxIIAttempts = 3
	if h, _ := caps.Hash(); h == h0 {
		t.Error("MaxIIAttempts did not change the hash")
	}

	// So are scheduler, machine, and degrade.
	for name, mut := range map[string]func(*Request){
		"scheduler": func(r *Request) { r.Scheduler = "cydrome" },
		"machine":   func(r *Request) { r.Machine = "shortmem" },
		"degrade":   func(r *Request) { r.Options.Degrade = true },
	} {
		r := *base
		mut(&r)
		if h, _ := r.Hash(); h == h0 {
			t.Errorf("%s did not change the hash", name)
		}
	}
}

func TestSourceAndIRFormsHashIdentically(t *testing.T) {
	src := `      subroutine triad(n, q, a, b, c)
      real a(1001), b(1001), c(1001), q
      integer n, i
      do i = 1, 1000
        a(i) = b(i) + q*c(i)
      end do
      end
`
	srcReq := &Request{
		Version:   Version,
		Machine:   "cydra",
		Scheduler: "slack",
		Source:    src,
	}
	hs, err := srcReq.Hash()
	if err != nil {
		t.Fatalf("source-form hash: %v", err)
	}
	_, l, err := srcReq.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	irReq, err := NewRequest(l, "slack", Options{})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := irReq.Hash()
	if err != nil {
		t.Fatalf("IR-form hash: %v", err)
	}
	if hs != hi {
		t.Errorf("source form hashes %s but IR form hashes %s", hs, hi)
	}
}

func TestValidateRejectsBadEnvelopes(t *testing.T) {
	l := fixture.Daxpy(machine.Cydra())
	good, err := NewRequest(l, "slack", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, mut := range map[string]func(*Request){
		"version": func(r *Request) { r.Version = "lsms-wire/0" },
		"machine": func(r *Request) { r.Machine = "pdp11" },
		"both":    func(r *Request) { r.Source = "x" },
		"neither": func(r *Request) { r.Loop = nil },
	} {
		r := *good
		mut(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: bad envelope accepted", name)
		}
	}
}

func TestDecodeRejectsBadDocuments(t *testing.T) {
	m := machine.Cydra()
	l := fixture.Daxpy(m)
	base, err := EncodeLoop(l)
	if err != nil {
		t.Fatal(err)
	}
	clone := func() *Loop {
		b, _ := json.Marshal(base)
		var c Loop
		_ = json.Unmarshal(b, &c)
		return &c
	}
	for name, mut := range map[string]func(*Loop){
		"opcode":   func(w *Loop) { w.Ops[0].Opcode = "frobnicate" },
		"file":     func(w *Loop) { w.Values[0].File = "XR" },
		"type":     func(w *Loop) { w.Values[0].Type = "complex" },
		"depkind":  func(w *Loop) { w.Deps[0].Kind = "flow" },
		"arg":      func(w *Loop) { w.Ops[0].Args[0].Val = 99 },
		"result":   func(w *Loop) { w.Ops[0].Result = 99 },
		"deprange": func(w *Loop) { w.Deps[0].To = 99 },
	} {
		w := clone()
		mut(w)
		if _, err := w.DecodeLoop(m); err == nil {
			t.Errorf("%s: bad document decoded", name)
		}
	}
}

// goldenHash pins the content address of the golden fixture; it can
// only change together with the wire version.
const goldenHash = "sha256:071327d14c486a52b7552e215aaffc185a2f26c5b8e9281042e2f764a6ab9844"

func TestGoldenFixture(t *testing.T) {
	b, err := os.ReadFile("testdata/daxpy.wire.json")
	if err != nil {
		t.Fatalf("golden fixture missing: %v", err)
	}
	var r Request
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatalf("golden fixture does not parse: %v", err)
	}
	canon, err := r.Canonical()
	if err != nil {
		t.Fatalf("golden fixture does not canonicalize: %v", err)
	}
	if got := bytes.TrimRight(b, "\n"); !bytes.Equal(canon, got) {
		t.Errorf("golden fixture is not in canonical form:\nfile: %s\ncanonical: %s", got, canon)
	}
	h, err := r.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h != goldenHash {
		t.Errorf("golden hash drifted: got %s, want %s (a deliberate format change must bump wire.Version)", h, goldenHash)
	}
	// The pinned document must still decode to the fixture loop and
	// compile identically to it.
	_, l, err := r.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	ii1, t1, p1, e1 := compile(t, l, "slack")
	ii2, t2, p2, e2 := compile(t, fixture.Daxpy(machine.Cydra()), "slack")
	if ii1 != ii2 || p1 != p2 || e1 != e2 || !reflect.DeepEqual(t1, t2) {
		t.Errorf("golden loop compiles differently from fixture.Daxpy: II %d vs %d", ii1, ii2)
	}
}
