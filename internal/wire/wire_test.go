package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/ir"
	"repro/internal/machine"
)

// compile schedules a loop the way lsmsd does (no codegen) and returns
// the deterministic observables.
func compile(t *testing.T, l *ir.Loop, scheduler string) (ii int, times []int, maxLive int, eff Effort) {
	t.Helper()
	c, err := core.Compile(l, core.Options{
		Scheduler:   core.SchedulerName(scheduler),
		SkipCodegen: true,
	})
	if err != nil {
		t.Fatalf("compile %s: %v", l.Name, err)
	}
	if !c.OK() {
		t.Fatalf("compile %s: gave up at II=%d", l.Name, c.Result.FailedII)
	}
	return c.Result.Schedule.II, c.Result.Schedule.Time, c.RR.MaxLive, EffortOf(c.Result.Stats)
}

func TestRoundTripIdentity(t *testing.T) {
	m := machine.Cydra()
	for _, l := range fixture.All(m) {
		w, err := EncodeLoop(l)
		if err != nil {
			t.Fatalf("%s: encode: %v", l.Name, err)
		}
		l2, err := w.DecodeLoop(m)
		if err != nil {
			t.Fatalf("%s: decode: %v", l.Name, err)
		}
		w2, err := EncodeLoop(l2)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", l.Name, err)
		}
		b1, _ := json.Marshal(w)
		b2, _ := json.Marshal(w2)
		if !bytes.Equal(b1, b2) {
			t.Errorf("%s: decode∘encode is not the identity:\n%s\nvs\n%s", l.Name, b1, b2)
		}
		// The derived structures must match too: the decoded loop is
		// indistinguishable from the original to the scheduler.
		if !reflect.DeepEqual(l.Deps, l2.Deps) {
			t.Errorf("%s: dependence arcs differ after round trip", l.Name)
		}
		for i := range l.Ops {
			if l.Ops[i].FU != l2.Ops[i].FU || l.Ops[i].OnRecurrence != l2.Ops[i].OnRecurrence {
				t.Errorf("%s: op %d derived fields differ after round trip", l.Name, i)
			}
		}
	}
}

func TestRoundTripRecompiles(t *testing.T) {
	m := machine.Cydra()
	for _, l := range fixture.All(m) {
		w, err := EncodeLoop(l)
		if err != nil {
			t.Fatalf("%s: encode: %v", l.Name, err)
		}
		l2, err := w.DecodeLoop(m)
		if err != nil {
			t.Fatalf("%s: decode: %v", l.Name, err)
		}
		ii1, t1, p1, e1 := compile(t, l, "slack")
		ii2, t2, p2, e2 := compile(t, l2, "slack")
		if ii1 != ii2 || p1 != p2 || e1 != e2 || !reflect.DeepEqual(t1, t2) {
			t.Errorf("%s: decoded loop compiles differently: II %d vs %d, MaxLive %d vs %d, effort %+v vs %+v",
				l.Name, ii1, ii2, p1, p2, e1, e2)
		}
	}
}

func TestHashCanonicalization(t *testing.T) {
	l := fixture.Daxpy(machine.Cydra())
	base, err := NewRequest(l, "slack", Options{})
	if err != nil {
		t.Fatal(err)
	}
	h0, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}

	// The wall-clock deadline is excluded from the content address.
	dl := *base
	dl.Options.DeadlineMS = 5000
	if h, _ := dl.Hash(); h != h0 {
		t.Errorf("deadline changed the hash: %s vs %s", h, h0)
	}

	// Deterministic work caps are included.
	caps := *base
	caps.Options.MaxIIAttempts = 3
	if h, _ := caps.Hash(); h == h0 {
		t.Error("MaxIIAttempts did not change the hash")
	}

	// So are scheduler, machine, and degrade.
	for name, mut := range map[string]func(*Request){
		"scheduler": func(r *Request) { r.Scheduler = "cydrome" },
		"machine":   func(r *Request) { r.Machine = "shortmem" },
		"degrade":   func(r *Request) { r.Options.Degrade = true },
	} {
		r := *base
		mut(&r)
		if h, _ := r.Hash(); h == h0 {
			t.Errorf("%s did not change the hash", name)
		}
	}
}

func TestSourceAndIRFormsHashIdentically(t *testing.T) {
	src := `      subroutine triad(n, q, a, b, c)
      real a(1001), b(1001), c(1001), q
      integer n, i
      do i = 1, 1000
        a(i) = b(i) + q*c(i)
      end do
      end
`
	srcReq := &Request{
		Version:   Version,
		Machine:   "cydra",
		Scheduler: "slack",
		Source:    src,
	}
	hs, err := srcReq.Hash()
	if err != nil {
		t.Fatalf("source-form hash: %v", err)
	}
	_, l, err := srcReq.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	irReq, err := NewRequest(l, "slack", Options{})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := irReq.Hash()
	if err != nil {
		t.Fatalf("IR-form hash: %v", err)
	}
	if hs != hi {
		t.Errorf("source form hashes %s but IR form hashes %s", hs, hi)
	}
}

func TestValidateRejectsBadEnvelopes(t *testing.T) {
	l := fixture.Daxpy(machine.Cydra())
	good, err := NewRequest(l, "slack", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, mut := range map[string]func(*Request){
		"version": func(r *Request) { r.Version = "lsms-wire/0" },
		"machine": func(r *Request) { r.Machine = "pdp11" },
		"both":    func(r *Request) { r.Source = "x" },
		"neither": func(r *Request) { r.Loop = nil },
		"v1 with inline spec": func(r *Request) {
			r.Version = VersionV1
			r.MachineSpec = machine.FamilySpec("cydra", machine.CydraLatencies())
		},
		"spec name mismatch": func(r *Request) {
			r.MachineSpec = machine.FamilySpec("other", machine.CydraLatencies())
		},
		"invalid inline spec": func(r *Request) {
			r.Machine = ""
			r.MachineSpec = &machine.Spec{Name: "broken"}
		},
	} {
		r := *good
		mut(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: bad envelope accepted", name)
		}
	}
}

func TestDecodeRejectsBadDocuments(t *testing.T) {
	m := machine.Cydra()
	l := fixture.Daxpy(m)
	base, err := EncodeLoop(l)
	if err != nil {
		t.Fatal(err)
	}
	clone := func() *Loop {
		b, _ := json.Marshal(base)
		var c Loop
		_ = json.Unmarshal(b, &c)
		return &c
	}
	for name, mut := range map[string]func(*Loop){
		"opcode":   func(w *Loop) { w.Ops[0].Opcode = "frobnicate" },
		"file":     func(w *Loop) { w.Values[0].File = "XR" },
		"type":     func(w *Loop) { w.Values[0].Type = "complex" },
		"depkind":  func(w *Loop) { w.Deps[0].Kind = "flow" },
		"arg":      func(w *Loop) { w.Ops[0].Args[0].Val = 99 },
		"result":   func(w *Loop) { w.Ops[0].Result = 99 },
		"deprange": func(w *Loop) { w.Deps[0].To = 99 },
	} {
		w := clone()
		mut(w)
		if _, err := w.DecodeLoop(m); err == nil {
			t.Errorf("%s: bad document decoded", name)
		}
	}
}

// goldenHash pins the content address of the golden fixture; it can
// only change together with the wire version.
const goldenHash = "sha256:6c63adf6c6a63a24d3bfc5222cb4b63e9d2625f28fd23d31865a6caf5b97759a"

func TestGoldenFixture(t *testing.T) {
	b, err := os.ReadFile("testdata/daxpy.wire.json")
	if err != nil {
		t.Fatalf("golden fixture missing: %v", err)
	}
	var r Request
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatalf("golden fixture does not parse: %v", err)
	}
	canon, err := r.Canonical()
	if err != nil {
		t.Fatalf("golden fixture does not canonicalize: %v", err)
	}
	if got := bytes.TrimRight(b, "\n"); !bytes.Equal(canon, got) {
		t.Errorf("golden fixture is not in canonical form:\nfile: %s\ncanonical: %s", got, canon)
	}
	h, err := r.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h != goldenHash {
		t.Errorf("golden hash drifted: got %s, want %s (a deliberate format change must bump wire.Version)", h, goldenHash)
	}
	// The pinned document must still decode to the fixture loop and
	// compile identically to it.
	_, l, err := r.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	ii1, t1, p1, e1 := compile(t, l, "slack")
	ii2, t2, p2, e2 := compile(t, fixture.Daxpy(machine.Cydra()), "slack")
	if ii1 != ii2 || p1 != p2 || e1 != e2 || !reflect.DeepEqual(t1, t2) {
		t.Errorf("golden loop compiles differently from fixture.Daxpy: II %d vs %d", ii1, ii2)
	}
}

// TestV1EnvelopeCompat: a version-1 envelope (no machine_spec — the
// formats are otherwise identical) still decodes, and canonicalizes to
// the same bytes — and therefore the same content address — as its v2
// form, so clients straddling the version bump share cache entries.
func TestV1EnvelopeCompat(t *testing.T) {
	b, err := os.ReadFile("testdata/daxpy.wire.json")
	if err != nil {
		t.Fatal(err)
	}
	v1 := bytes.Replace(b, []byte(Version), []byte(VersionV1), 1)
	if bytes.Equal(v1, b) {
		t.Fatal("version replacement did not take")
	}
	var r Request
	if err := json.Unmarshal(v1, &r); err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("v1 envelope rejected: %v", err)
	}
	n, _, err := r.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Version != Version {
		t.Errorf("Normalize left version %q, want %q", n.Version, Version)
	}
	h, err := r.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h != goldenHash {
		t.Errorf("v1 form hashes %s, v2 form %s; they must share a cache entry", h, goldenHash)
	}
}

// goldenSpecHash pins the content address of the inline-spec fixture:
// a request carrying its own declarative target (an unregistered
// single-memory-port Cydra derivative).
const goldenSpecHash = "sha256:4818bc096802e7519eabc2c0bd6b214f0190d6e323be716aca7d8b0618a9322a"

func TestGoldenSpecFixture(t *testing.T) {
	b, err := os.ReadFile("testdata/daxpy.spec.wire.json")
	if err != nil {
		t.Fatalf("golden fixture missing: %v", err)
	}
	var r Request
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatalf("golden fixture does not parse: %v", err)
	}
	if r.MachineSpec == nil {
		t.Fatal("fixture carries no inline machine spec")
	}
	canon, err := r.Canonical()
	if err != nil {
		t.Fatalf("golden fixture does not canonicalize: %v", err)
	}
	if got := bytes.TrimRight(b, "\n"); !bytes.Equal(canon, got) {
		t.Errorf("golden fixture is not in canonical form:\nfile: %s\ncanonical: %s", got, canon)
	}
	h, err := r.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h != goldenSpecHash {
		t.Errorf("golden spec hash drifted: got %s, want %s (a deliberate format change must bump wire.Version)", h, goldenSpecHash)
	}
	if h == goldenHash {
		t.Error("inline-spec request shares a content address with the registered-cydra request")
	}
	// The embedded target must build and the loop compile on it; one
	// memory port doubles ResMII for daxpy (2 mem ops / 1 port ≥ 2).
	_, l, err := r.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if l.Mach.Name != "daxpy-box" || l.Mach.Count(machine.MemPort) != 1 {
		t.Fatalf("decoded machine %s with %d mem ports, want daxpy-box with 1", l.Mach.Name, l.Mach.Count(machine.MemPort))
	}
	ii, _, _, _ := compile(t, l, "slack")
	refII, _, _, _ := compile(t, fixture.Daxpy(machine.Cydra()), "slack")
	if ii <= refII {
		t.Errorf("halving memory ports did not raise daxpy's II (%d vs cydra's %d)", ii, refII)
	}
}

// TestNewRequestEmbedsUnregisteredSpec: NewRequest embeds the spec
// exactly when the loop's machine is not registered under its name —
// registered targets travel by name alone.
func TestNewRequestEmbedsUnregisteredSpec(t *testing.T) {
	reg, err := NewRequest(fixture.Daxpy(machine.Cydra()), "slack", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if reg.MachineSpec != nil {
		t.Error("registered machine traveled with an inline spec")
	}
	spec := machine.FamilySpec("unregistered-box", machine.CydraLatencies())
	custom, err := NewRequest(fixture.Daxpy(spec.MustBuild()), "slack", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if custom.MachineSpec == nil {
		t.Fatal("unregistered machine traveled without its spec")
	}
	if custom.Machine != "unregistered-box" || custom.MachineSpec.Name != custom.Machine {
		t.Errorf("name mismatch: machine %q, spec %q", custom.Machine, custom.MachineSpec.Name)
	}
	if _, _, err := custom.Normalize(); err != nil {
		t.Fatalf("inline-spec request does not normalize: %v", err)
	}
}

// TestDecodeUnsupportedOp: a loop whose ops the target cannot execute
// fails the decode boundary with the typed verdict servers map to 422.
func TestDecodeUnsupportedOp(t *testing.T) {
	m := machine.Cydra()
	w, err := EncodeLoop(fixture.Daxpy(m))
	if err != nil {
		t.Fatal(err)
	}
	noMul := (&machine.Spec{
		Name:  "no-mul",
		Units: []machine.UnitSpec{{Name: "ALU", Count: 4}, {Name: "Mem", Count: 2}},
		Profiles: []machine.ProfileSpec{
			{Ops: []string{"load", "store"}, Unit: "Mem", Latency: 2},
			{Ops: []string{"fadd", "aadd", "brtop"}, Unit: "ALU", Latency: 1},
		},
	}).MustBuild()
	_, err = w.DecodeLoop(noMul)
	var ue *machine.UnsupportedOpError
	if !errors.As(err, &ue) {
		t.Fatalf("decode error %v is not an UnsupportedOpError", err)
	}
	if ue.Machine != "no-mul" || ue.Op != machine.FMul {
		t.Errorf("verdict %+v, want no-mul/fmul", ue)
	}
}
