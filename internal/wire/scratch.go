package wire

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/machine"
)

// Reset clears the request envelope for reuse by json.Unmarshal, which
// merges into existing values rather than starting fresh: a key absent
// from the next document leaves the old field contents in place. Every
// envelope field is therefore zeroed — in particular Loop drops to nil,
// because a stale non-nil pointer would make a source-form request look
// like it also carried an IR payload. The Request struct itself owns no
// slices, so a plain zeroing loses no capacity; loop-document reuse
// lives in Scratch / (*Loop).Reset.
func (r *Request) Reset() { *r = Request{} }

// Reset deep-zeroes the loop document while keeping every slice's
// capacity, making it safe to json.Unmarshal the next document into it.
// Unmarshal reuses slice backing arrays up to capacity without clearing
// the elements first, so anything short of a deep zero leaks one
// document's fields into the next: a stale Operand.Omega, LiveOut flag,
// or Const literal would silently change the decoded loop — and its
// content hash. Pointers (Op.Pred, Value.Const) are nil'd for the same
// reason an absent key must read as absent, not as the previous value.
func (w *Loop) Reset() {
	values := w.Values[:cap(w.Values)]
	for i := range values {
		values[i] = Value{}
	}
	ops := w.Ops[:cap(w.Ops)]
	for i := range ops {
		args := ops[i].Args[:cap(ops[i].Args)]
		for j := range args {
			args[j] = Operand{}
		}
		ops[i] = Op{Args: args[:0]}
	}
	deps := w.Deps[:cap(w.Deps)]
	for i := range deps {
		deps[i] = Dep{}
	}
	*w = Loop{Values: values[:0], Ops: ops[:0], Deps: deps[:0]}
}

// envelope mirrors Request field-for-field but defers the loop document
// to a RawMessage, so a decode can tell "loop absent" from "loop
// present" while still funnelling the (large) document into pooled
// storage. Field names and order must match Request exactly; the
// differential test in scratch_test.go holds the two together.
type envelope struct {
	Version     string          `json:"version"`
	Machine     string          `json:"machine"`
	MachineSpec json.RawMessage `json:"machine_spec"`
	Scheduler   string          `json:"scheduler"`
	Options     Options         `json:"options"`
	Source      string          `json:"source"`
	LoopIndex   int             `json:"loop_index"`
	Loop        json.RawMessage `json:"loop"`
}

// Scratch is pooled request-decode storage: the envelope's raw-message
// buffer, the loop document, and the request struct all keep their
// capacity across decodes, so a server worker that has seen a loop of
// size n decodes the next size-≤n request without allocating document
// storage. One Scratch serves one decode at a time.
type Scratch struct {
	env envelope
	doc Loop
	req Request
}

// Reset drops every reference the scratch holds to the last request —
// decoded strings, the raw loop bytes, the document contents — while
// keeping all buffer capacity for the next decode. Pools call this on
// release so an idle scratch retains no request data.
func (s *Scratch) Reset() {
	s.env = envelope{Loop: s.env.Loop[:0], MachineSpec: s.env.MachineSpec[:0]}
	s.doc.Reset()
	s.req.Reset()
}

var jsonNull = []byte("null")

// DecodeRequest parses body into the scratch-backed request. The
// returned *Request — and the loop document it points at — alias the
// scratch and are valid only until the next DecodeRequest call; decoded
// strings are immutable and may outlive it. The decode is semantically
// identical to json.Unmarshal into a fresh Request (the differential
// test asserts canonical-byte equality over the corpus).
func (s *Scratch) DecodeRequest(body []byte) (*Request, error) {
	s.env = envelope{Loop: s.env.Loop[:0], MachineSpec: s.env.MachineSpec[:0]}
	if err := json.Unmarshal(body, &s.env); err != nil {
		return nil, fmt.Errorf("parsing request: %w", err)
	}
	s.req.Reset()
	s.req.Version = s.env.Version
	s.req.Machine = s.env.Machine
	if len(s.env.MachineSpec) > 0 && !bytes.Equal(s.env.MachineSpec, jsonNull) {
		// Inline specs decode into a fresh document, not pooled storage:
		// the built Desc keeps a reference to the spec, so reusing a
		// buffer here would let one request's target leak into the next.
		// They are also the rare path — named targets carry no spec.
		spec := new(machine.Spec)
		if err := json.Unmarshal(s.env.MachineSpec, spec); err != nil {
			return nil, fmt.Errorf("parsing request machine_spec: %w", err)
		}
		s.req.MachineSpec = spec
	}
	s.req.Scheduler = s.env.Scheduler
	s.req.Options = s.env.Options
	s.req.Source = s.env.Source
	s.req.LoopIndex = s.env.LoopIndex
	if len(s.env.Loop) > 0 && !bytes.Equal(s.env.Loop, jsonNull) {
		s.doc.Reset()
		if err := json.Unmarshal(s.env.Loop, &s.doc); err != nil {
			return nil, fmt.Errorf("parsing request loop: %w", err)
		}
		s.req.Loop = &s.doc
	}
	return &s.req, nil
}
