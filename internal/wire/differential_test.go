package wire

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/loopgen"
)

// TestDifferentialLoopgen runs generator loops through the full wire
// path — encode → canonical JSON → parse → normalize (decode) →
// CompileContext — and asserts the schedule, II, MaxLive, and the
// deterministic effort counters match the direct compilation of the
// original loop, for both the paper's scheduler and the baseline.
func TestDifferentialLoopgen(t *testing.T) {
	size := 120
	if testing.Short() {
		size = 36
	}
	w, err := loopgen.Build(loopgen.Options{Size: size, Seed: 2026})
	if err != nil {
		t.Fatalf("building workload: %v", err)
	}
	for _, sn := range []string{"slack", "cydrome"} {
		for _, wl := range w.Loops {
			l := wl.CL.Loop
			req, err := NewRequest(l, sn, Options{})
			if err != nil {
				t.Fatalf("%s: %v", wl.Name, err)
			}
			canon, err := req.Canonical()
			if err != nil {
				t.Fatalf("%s: canonical: %v", wl.Name, err)
			}
			var parsed Request
			if err := json.Unmarshal(canon, &parsed); err != nil {
				t.Fatalf("%s: reparse: %v", wl.Name, err)
			}
			_, decoded, err := parsed.Normalize()
			if err != nil {
				t.Fatalf("%s: normalize: %v", wl.Name, err)
			}

			direct := compileAny(t, sn, wl.Name, l)
			viaWire := compileAny(t, sn, wl.Name, decoded)
			if !reflect.DeepEqual(direct, viaWire) {
				t.Errorf("%s/%s: wire path diverges:\ndirect: %+v\nwire:   %+v", sn, wl.Name, direct, viaWire)
			}
		}
	}
}

// outcome captures everything deterministic about one compilation,
// success or give-up.
type outcome struct {
	OK      bool
	II      int
	Times   []int
	MaxLive int
	MinAvg  int
	Effort  Effort
}

func compileAny(t *testing.T, scheduler, name string, l *ir.Loop) outcome {
	t.Helper()
	c, err := core.Compile(l, core.Options{
		Scheduler:   core.SchedulerName(scheduler),
		SkipCodegen: true,
	})
	if err != nil {
		t.Fatalf("%s/%s: %v", scheduler, name, err)
	}
	out := outcome{OK: c.OK(), II: c.Result.II(), Effort: EffortOf(c.Result.Stats)}
	if c.OK() {
		out.Times = c.Result.Schedule.Time
		out.MaxLive = c.RR.MaxLive
		out.MinAvg = c.MinAvg
	}
	return out
}
