package wire

import (
	"encoding/json"
	"testing"

	"repro/internal/loopgen"
)

// TestScratchDecodeMatchesFresh is the reuse differential: decoding a
// sequence of requests through one Scratch — each decode merging into
// the previous request's recycled storage — must be indistinguishable
// from decoding each into a fresh Request. Loops of shrinking and
// growing sizes interleave so slice-capacity reuse (the stale-element
// hazard Reset exists to kill) is actually exercised, and a source-form
// request rides along to prove a stale Loop pointer cannot survive into
// it. Equality is judged on canonical bytes and content hash — the
// currencies the server trades in.
func TestScratchDecodeMatchesFresh(t *testing.T) {
	size := 60
	if testing.Short() {
		size = 24
	}
	w, err := loopgen.Build(loopgen.Options{Size: size, Seed: 77})
	if err != nil {
		t.Fatalf("building workload: %v", err)
	}
	bodies := make([][]byte, 0, len(w.Loops)+1)
	for i, wl := range w.Loops {
		opt := Options{}
		if i%3 == 1 {
			// Vary the options so absent keys in the next document must
			// not inherit these values.
			opt = Options{MaxII: 100, NoFastPaths: true, Degrade: true}
		}
		req, err := NewRequest(wl.CL.Loop, []string{"slack", ""}[i%2], opt)
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		b, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		bodies = append(bodies, b)
	}
	src, _ := json.Marshal(&Request{
		Version: Version,
		Machine: "cydra",
		Source: `      subroutine saxpy(n, a, x, y)
      real a, x(1001), y(1001)
      integer n, i
      do i = 1, n
        y(i) = a*x(i) + y(i)
      end do
      end`,
	})
	// The source-form request lands right after an IR-form one: a Reset
	// that leaked the previous Loop pointer would make it fail Validate.
	bodies = append(bodies[:len(bodies)/2:len(bodies)/2],
		append([][]byte{src}, bodies[len(bodies)/2:]...)...)

	var scr Scratch
	for i, body := range bodies {
		var fresh Request
		if err := json.Unmarshal(body, &fresh); err != nil {
			t.Fatalf("request %d: fresh decode: %v", i, err)
		}
		reused, err := scr.DecodeRequest(body)
		if err != nil {
			t.Fatalf("request %d: scratch decode: %v", i, err)
		}
		wantCanon, err := fresh.Canonical()
		if err != nil {
			t.Fatalf("request %d: fresh canonical: %v", i, err)
		}
		gotCanon, err := reused.Canonical()
		if err != nil {
			t.Fatalf("request %d: scratch canonical: %v", i, err)
		}
		if string(wantCanon) != string(gotCanon) {
			t.Fatalf("request %d: canonical bytes diverge after scratch reuse:\nfresh:   %s\nscratch: %s",
				i, wantCanon, gotCanon)
		}
		wantHash, err := fresh.Hash()
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		gotHash, err := reused.Hash()
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if wantHash != gotHash {
			t.Fatalf("request %d: content hash diverges after scratch reuse: %s vs %s", i, wantHash, gotHash)
		}
	}
}

// TestScratchReleaseRetainsNoRequestData asserts the release-path
// invariant: after Reset, the scratch holds capacity but no decoded
// strings, loop contents, or raw bytes from the request it served.
func TestScratchReleaseRetainsNoRequestData(t *testing.T) {
	w, err := loopgen.Build(loopgen.Options{Size: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	req, err := NewRequest(w.Loops[0].CL.Loop, "slack", Options{MaxII: 9})
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(req)
	var scr Scratch
	if _, err := scr.DecodeRequest(body); err != nil {
		t.Fatal(err)
	}
	scr.Reset()
	if scr.req != (Request{}) {
		t.Errorf("request envelope retained after Reset: %+v", scr.req)
	}
	if got := scr.env; got.Version != "" || got.Machine != "" || got.Source != "" ||
		got.Options != (Options{}) || len(got.Loop) != 0 {
		t.Errorf("raw envelope retained after Reset: %+v", got)
	}
	if d := &scr.doc; d.Name != "" || len(d.Values) != 0 || len(d.Ops) != 0 || len(d.Deps) != 0 {
		t.Errorf("loop document retained after Reset: %+v", d)
	}
	for _, v := range scr.doc.Values[:cap(scr.doc.Values)] {
		if v != (Value{}) {
			t.Fatalf("stale value beyond len after Reset: %+v", v)
		}
	}
	for _, op := range scr.doc.Ops[:cap(scr.doc.Ops)] {
		if op.Opcode != "" || op.Pred != nil || op.Result != 0 || op.PredNeg || len(op.Args) != 0 {
			t.Fatalf("stale op beyond len after Reset: %+v", op)
		}
	}
}
