package exact_test

import (
	"context"
	"testing"

	"repro/internal/exact"
	"repro/internal/fixture"
	"repro/internal/ir"
	"repro/internal/lifetime"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/mii"
	"repro/internal/sched"
)

// oracleNodes bounds the exhaustive oracle's enumeration: generous
// enough that every small-loop oracle run in this file completes.
const oracleNodes = 20_000_000

// oracleVerdict runs the exhaustive differential oracle: the first
// feasible II from MII upward (FindAtII), then the minimum MaxLive at
// that II (BestAtII). complete is false when the oracle itself hit its
// node cap, in which case the verdict is unusable.
func oracleVerdict(t *testing.T, l *ir.Loop, mII int) (ii, maxLive int, complete bool) {
	t.Helper()
	for ii = mII; ; ii++ {
		s, err := sched.FindAtII(l, ii, -1, oracleNodes)
		if err != nil {
			t.Fatalf("%s: FindAtII(%d): %v", l.Name, ii, err)
		}
		if s != nil {
			break
		}
		if ii > mII+64 {
			t.Fatalf("%s: oracle found no feasible II in [%d, %d]", l.Name, mII, ii)
		}
	}
	best, ml, complete, err := sched.BestAtII(l, ii, -1, oracleNodes)
	if err != nil {
		t.Fatalf("%s: BestAtII(%d): %v", l.Name, ii, err)
	}
	if best == nil {
		t.Fatalf("%s: FindAtII found a schedule at II=%d but BestAtII did not", l.Name, ii)
	}
	return ii, ml, complete
}

// TestExactMatchesOracleOnFixtures pins the acceptance criterion: on
// every small fixture loop the exact backend's (II, MaxLive) is
// bit-identical to the exhaustive oracle's, and the backend reports the
// result proven.
func TestExactMatchesOracleOnFixtures(t *testing.T) {
	m := machine.Cydra()
	cfg := sched.Config{Budget: sched.Budget{MaxCentralIters: 50_000_000}}
	for _, l := range fixture.All(m) {
		if len(l.Ops) > 12 {
			continue
		}
		if b, err := mii.Compute(l); err != nil || b.MII > 16 {
			// The divider fixture's II (and with it the horizon) is so large
			// that the deliberately naive oracle cannot enumerate the space;
			// the corpus differential and never-worse invariants cover it.
			t.Logf("%s: MII beyond the oracle's reach, skipping", l.Name)
			continue
		}
		out, err := exact.New(cfg).Search(context.Background(), l)
		if err != nil {
			t.Fatalf("%s: exact: %v", l.Name, err)
		}
		if !out.Proven {
			t.Errorf("%s: exact did not prove optimality within the budget", l.Name)
		}
		oII, oML, complete := oracleVerdict(t, l, out.Result.Bounds.MII)
		if !complete {
			t.Fatalf("%s: oracle incomplete at II=%d — raise oracleNodes", l.Name, oII)
		}
		if got := out.Result.Schedule.II; got != oII || out.MaxLive != oML {
			t.Errorf("%s: exact (II=%d, MaxLive=%d) != oracle (II=%d, MaxLive=%d)",
				l.Name, got, out.MaxLive, oII, oML)
		}
	}
}

// TestExactMatchesOracleOnCorpus extends the differential to the small
// loops of a generated corpus slice.
func TestExactMatchesOracleOnCorpus(t *testing.T) {
	suite, err := loopgen.Build(loopgen.Options{Size: 48, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sched.Config{Budget: sched.Budget{MaxCentralIters: 50_000_000}}
	checked := 0
	for _, wl := range suite.Loops {
		l := wl.CL.Loop
		if len(l.Ops) > 10 || checked >= 12 {
			continue
		}
		out, err := exact.New(cfg).Search(context.Background(), l)
		if err != nil {
			t.Fatalf("%s: exact: %v", wl.Name, err)
		}
		if !out.Proven {
			t.Logf("%s: unproven within budget, skipping oracle comparison", wl.Name)
			continue
		}
		oII, oML, complete := oracleVerdict(t, l, out.Result.Bounds.MII)
		if !complete {
			t.Logf("%s: oracle incomplete, skipping", wl.Name)
			continue
		}
		if got := out.Result.Schedule.II; got != oII || out.MaxLive != oML {
			t.Errorf("%s: exact (II=%d, MaxLive=%d) != oracle (II=%d, MaxLive=%d)",
				wl.Name, got, out.MaxLive, oII, oML)
		}
		checked++
	}
	if checked < 4 {
		t.Fatalf("only %d corpus loops were small enough to check — widen the filter", checked)
	}
}

// TestExactNeverWorseThanSlack pins the warm-start invariant over a
// corpus slice: wherever slack succeeds, exact succeeds with a
// lexicographically no-worse (II, MaxLive).
func TestExactNeverWorseThanSlack(t *testing.T) {
	suite, err := loopgen.Build(loopgen.Options{Size: 60, Seed: 1993})
	if err != nil {
		t.Fatal(err)
	}
	improved := 0
	for _, wl := range suite.Loops {
		l := wl.CL.Loop
		sres, serr := sched.Slack(sched.Config{}).ScheduleContext(context.Background(), l)
		if serr != nil || !sres.OK() {
			continue
		}
		sML := lifetime.Measure(l, sres.Schedule, ir.RR).MaxLive
		out, err := exact.New(sched.Config{}).Search(context.Background(), l)
		if err != nil {
			t.Fatalf("%s: slack succeeded but exact failed: %v", wl.Name, err)
		}
		eII, eML := out.Result.Schedule.II, out.MaxLive
		if eII > sres.Schedule.II || (eII == sres.Schedule.II && eML > sML) {
			t.Errorf("%s: exact (II=%d, ML=%d) worse than slack (II=%d, ML=%d)",
				wl.Name, eII, eML, sres.Schedule.II, sML)
		}
		if out.Improved {
			improved++
			t.Logf("improved %s: slack (II=%d, ML=%d) -> exact (II=%d, ML=%d), proven=%v",
				wl.Name, sres.Schedule.II, sML, eII, eML, out.Proven)
		}
	}
	t.Logf("%d loops strictly improved by exact", improved)
}
