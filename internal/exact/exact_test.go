package exact_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/fixture"
	"repro/internal/ir"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/sched"
)

// TestExactBudgetErrorTyped: a budget too small to find anything must
// surface as a *sched.BudgetError with partial evidence, never a hang
// or an untyped failure.
func TestExactBudgetErrorTyped(t *testing.T) {
	// The engine polls its budget every 256 central iterations, so on a
	// loop small enough to schedule inside one stride the slack seed
	// succeeds even under MaxCentralIters=1 and exact's anytime contract
	// returns the incumbent instead of an error. Pick a corpus loop big
	// enough that the seed itself is starved.
	suite, err := loopgen.Build(loopgen.Options{Size: 60, Seed: 1993})
	if err != nil {
		t.Fatal(err)
	}
	var l *ir.Loop
	for _, wl := range suite.Loops {
		sres, serr := sched.Slack(sched.Config{}).ScheduleContext(context.Background(), wl.CL.Loop)
		if serr == nil && sres.OK() && sres.Stats.CentralIters > 300 {
			l = wl.CL.Loop
			break
		}
	}
	if l == nil {
		t.Fatal("no corpus loop needs >300 central iterations — shrink the stride assumption")
	}
	cfg := sched.Config{Budget: sched.Budget{MaxCentralIters: 1}}
	out, err := exact.New(cfg).Search(context.Background(), l)
	var be *sched.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *sched.BudgetError, got %T: %v", err, err)
	}
	if !errors.Is(err, sched.ErrBudgetExhausted) {
		t.Errorf("errors.Is(err, ErrBudgetExhausted) = false")
	}
	if be.Reason != sched.ReasonCentralIters {
		t.Errorf("Reason = %q, want %q", be.Reason, sched.ReasonCentralIters)
	}
	if be.Policy != exact.PolicyName {
		t.Errorf("Policy = %q, want %q", be.Policy, exact.PolicyName)
	}
	if out == nil || out.Result == nil || out.Result.OK() {
		t.Errorf("want partial-evidence Result without a schedule, got %+v", out)
	}
}

// TestExactDeadlineTyped: an expired wall-clock deadline is a typed
// budget error too.
func TestExactDeadlineTyped(t *testing.T) {
	l := fixture.Sample(machine.Cydra())
	cfg := sched.Config{Budget: sched.Budget{Deadline: time.Nanosecond}}
	_, err := exact.New(cfg).Search(context.Background(), l)
	var be *sched.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *sched.BudgetError, got %T: %v", err, err)
	}
	if be.Reason != sched.ReasonDeadline {
		t.Errorf("Reason = %q, want %q", be.Reason, sched.ReasonDeadline)
	}
}

// TestExactCanceled: a canceled context fails fast and the error
// matches context.Canceled, whichever stage it tripped in.
func TestExactCanceled(t *testing.T) {
	l := fixture.Sample(machine.Cydra())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := exact.New(sched.Config{}).Search(ctx, l)
	if err == nil {
		t.Fatal("want error from canceled context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false: %v", err)
	}
}

// TestExactAnytime: when the seed succeeds but the node budget is too
// small to finish the search, exact still returns the incumbent with a
// nil error and Proven=false — the anytime contract the lsmsd refiner
// relies on.
func TestExactAnytime(t *testing.T) {
	m := machine.Cydra()
	for _, l := range fixture.All(m) {
		// Enough nodes for the slack seed's central loop, too few for the
		// exact search to prove anything.
		sres, serr := sched.Slack(sched.Config{}).ScheduleContext(context.Background(), l)
		if serr != nil || !sres.OK() {
			continue
		}
		cfg := sched.Config{Budget: sched.Budget{MaxCentralIters: sres.Stats.CentralIters + 2}}
		out, err := exact.New(cfg).Search(context.Background(), l)
		if err != nil {
			t.Fatalf("%s: anytime contract violated: %v", l.Name, err)
		}
		if !out.Result.OK() {
			t.Fatalf("%s: no schedule despite a feasible seed", l.Name)
		}
		if out.Result.Policy != exact.PolicyName {
			t.Errorf("%s: Policy = %q", l.Name, out.Result.Policy)
		}
		if out.Proven {
			t.Errorf("%s: Proven=true under a starvation budget", l.Name)
		}
		return // one loop is enough
	}
	t.Skip("no fixture loop schedulable by slack")
}

// TestExactDeterminism: two identical runs agree on the schedule and
// every deterministic effort counter (the property benchdiff and the
// wire cache rely on).
func TestExactDeterminism(t *testing.T) {
	m := machine.Cydra()
	for _, l := range fixture.All(m) {
		a, errA := exact.New(sched.Config{}).Search(context.Background(), l)
		b, errB := exact.New(sched.Config{}).Search(context.Background(), l)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: error divergence: %v vs %v", l.Name, errA, errB)
		}
		if errA != nil {
			continue
		}
		if a.Result.Schedule.II != b.Result.Schedule.II || a.MaxLive != b.MaxLive || a.Proven != b.Proven {
			t.Fatalf("%s: verdict divergence", l.Name)
		}
		for i, ta := range a.Result.Schedule.Time {
			if b.Result.Schedule.Time[i] != ta {
				t.Fatalf("%s: op %d placed at %d then %d", l.Name, i, ta, b.Result.Schedule.Time[i])
			}
		}
		sa, sb := a.Result.Stats, b.Result.Stats
		if sa.IIAttempts != sb.IIAttempts || sa.CentralIters != sb.CentralIters ||
			sa.Placements != sb.Placements {
			t.Fatalf("%s: counter divergence: %+v vs %+v", l.Name, sa, sb)
		}
	}
}

// TestExactRegistered: the backend is reachable through the core
// registry, so every entry point (CLI, daemon, bench) can name it.
func TestExactRegistered(t *testing.T) {
	if _, ok := core.Lookup(core.SchedExact); !ok {
		t.Fatal("exact not in the core scheduler registry")
	}
	names := core.Schedulers()
	found := false
	for _, n := range names {
		if n == core.SchedExact {
			found = true
		}
	}
	if !found {
		t.Fatalf("Schedulers() = %v, missing %q", names, core.SchedExact)
	}
	c, err := core.Compile(fixture.Sample(machine.Cydra()), core.Options{Scheduler: core.SchedExact})
	if err != nil {
		t.Fatalf("core.Compile(exact): %v", err)
	}
	if !c.Result.OK() || c.Result.Policy != exact.PolicyName {
		t.Fatalf("compile result not from exact: %+v", c.Result)
	}
}

// TestExactScheduleInto: the IntoRunner contract — reused dst matches a
// fresh Schedule call, and preflight failure zeroes dst.
func TestExactScheduleInto(t *testing.T) {
	m := machine.Cydra()
	var dst sched.Result
	for _, l := range fixture.All(m) {
		fresh, errA := exact.New(sched.Config{}).Schedule(context.Background(), l)
		errB := exact.New(sched.Config{}).ScheduleInto(context.Background(), l, &dst)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: error divergence: %v vs %v", l.Name, errA, errB)
		}
		if errA != nil || fresh == nil {
			continue
		}
		if fresh.Schedule.II != dst.Schedule.II {
			t.Fatalf("%s: II divergence %d vs %d", l.Name, fresh.Schedule.II, dst.Schedule.II)
		}
		for i, ta := range fresh.Schedule.Time {
			if dst.Schedule.Time[i] != ta {
				t.Fatalf("%s: op %d placed at %d vs %d", l.Name, i, ta, dst.Schedule.Time[i])
			}
		}
	}
}
