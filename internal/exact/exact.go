// Package exact implements an exact modulo scheduler: a pure-Go
// branch-and-bound search over the MinDist precedence system and the
// modulo reservation table, minimizing the lexicographic objective
// (II, MaxLive) — first the initiation interval, then the RR-file
// register pressure at that interval (DESIGN.md §5h).
//
// The search is warm-started by the paper's slack scheduler: its
// schedule seeds the incumbent, so the branch-and-bound only has to
// search II values in [MII, slack II] and, at the slack II, schedules
// with strictly lower MaxLive. Consequently the backend is *anytime*:
// whenever the slack seed succeeds, Schedule returns a feasible result
// even if the budget expires mid-search — the result is then the best
// schedule found so far and Outcome.Proven reports false. Typed errors
// are reserved for runs that produce nothing at all: a
// *sched.BudgetError when the budget or context ran out first, a
// *sched.InfeasibleError when every II up to the ceiling is provably
// infeasible within the search horizon.
//
// Optimality is relative to the same horizon convention as the
// exhaustive oracle (sched.FindAtII / sched.BestAtII): issue cycles in
// [0, CriticalPath + 3·II + 1). The differential tests in this package
// pin (II, MaxLive) bit-identity between the two on small loops.
//
// Budgets: Config.Budget.MaxCentralIters caps search nodes (the
// deterministic bound — one node is one branch of the placement tree),
// Deadline and context cancellation are polled every
// nodeCheckStride nodes. An unbudgeted call runs under
// DefaultNodeBudget so registry-wide sweeps (bench, CI) always
// terminate, with deterministic effort counters; exhausting that
// internal default is not an error, it only marks the outcome
// unproven.
package exact

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/ir"
	"repro/internal/lifetime"
	"repro/internal/mii"
	"repro/internal/mindist"
	"repro/internal/mrt"
	"repro/internal/sched"
)

// PolicyName is the name the backend reports in sched.Result.Policy
// and registers under in the core scheduler registry.
const PolicyName = "exact"

// DefaultNodeBudget caps search nodes when Config.Budget sets no
// MaxCentralIters: large enough to prove optimality on small loops,
// small enough that an unbudgeted corpus sweep stays interactive. The
// cap is deterministic, so effort counters are machine-independent.
const DefaultNodeBudget = 1 << 17

// nodeCheckStride is the node interval between wall-clock/cancellation
// polls, mirroring the engine's budgetCheckStride.
const nodeCheckStride = 256

// Scheduler is the exact backend configured once; safe for sequential
// reuse, not for concurrent Schedule calls (matching sched.Scheduler).
type Scheduler struct {
	cfg sched.Config
}

// New returns an exact scheduler with the given configuration. The
// fields the backend honors: Budget (MaxCentralIters = search nodes,
// MaxIIAttempts = II values branch-and-bounded, Deadline), StartII,
// MaxII, Observer/Trace (attempt-level events), Arena/NoPool (passed to
// the slack seed run).
func New(cfg sched.Config) *Scheduler { return &Scheduler{cfg: cfg} }

// Outcome is the full verdict of one exact search — Schedule's result
// plus the evidence the gap experiment and the lsmsd refiner need.
type Outcome struct {
	Result  *sched.Result // best schedule found (Policy "exact")
	MaxLive int           // RR MaxLive of Result.Schedule
	Proven  bool          // (II, MaxLive) proven optimal within the horizon
	// The slack seed's incumbent, for gap accounting; SeedII == 0 means
	// the seed itself failed and the search ran cold.
	SeedII      int
	SeedMaxLive int
	// Improved reports that the search strictly beat the seed (lower II,
	// or equal II with lower MaxLive).
	Improved bool
}

// Schedule runs the search with a background context.
func (s *Scheduler) Schedule(ctx context.Context, l *ir.Loop) (*sched.Result, error) {
	o, err := s.Search(ctx, l)
	if o == nil {
		return nil, err
	}
	return o.Result, err
}

// ScheduleInto is Schedule writing into a caller-owned Result,
// honoring the core.IntoRunner contract: dst is zeroed on preflight
// failure, carries partial evidence on typed errors, and is complete on
// success. The exact backend allocates its search state per call, so
// Into reuse saves only the Result shell itself.
func (s *Scheduler) ScheduleInto(ctx context.Context, l *ir.Loop, dst *sched.Result) error {
	o, err := s.Search(ctx, l)
	if o == nil || o.Result == nil {
		*dst = sched.Result{}
		return err
	}
	*dst = *o.Result
	return err
}

// Search runs the exact search and returns the full Outcome. On typed
// failure (budget exhausted with nothing found, or proven infeasible)
// the Outcome still carries the partial evidence in Result.
func (s *Scheduler) Search(ctx context.Context, l *ir.Loop) (*Outcome, error) {
	if !l.Finalized() {
		return nil, fmt.Errorf("exact: loop %s not finalized", l.Name)
	}
	start := time.Now()
	bounds, err := mii.ComputeContext(ctx, l)
	if err != nil {
		return nil, fmt.Errorf("exact: %s: %w", l.Name, err)
	}

	e := &searcher{
		l:      l,
		cfg:    s.cfg,
		obs:    s.cfg.EventSink(),
		bounds: bounds,
	}
	e.guard = newGuard(ctx, s.cfg.Budget)
	e.nodeBudget = s.cfg.Budget.MaxCentralIters
	if e.nodeBudget <= 0 {
		e.nodeBudget = DefaultNodeBudget
	}

	// Warm start: the slack scheduler's result seeds the incumbent and
	// caps the II range the branch-and-bound must cover. Its budget is
	// shared — the seed runs under the same Config, and the guard's
	// wall clock keeps ticking across it.
	seedCfg := s.cfg
	seedRes, seedErr := sched.Slack(seedCfg).ScheduleContext(ctx, l)
	var incumbent *sched.Result
	incumbentML := 0
	if seedErr == nil && seedRes != nil && seedRes.OK() {
		incumbent = seedRes
		incumbentML = lifetime.Measure(l, seedRes.Schedule, ir.RR).MaxLive
	}

	ceiling := s.cfg.MaxII
	if ceiling <= 0 {
		// A generous derived ceiling, only reached when the seed failed:
		// past 2·MII + the busy sum every loop in the corpus fits.
		sumBusy := 0
		for _, op := range l.Ops {
			if b := l.Mach.Info(op.Opcode).Busy; b > 1 {
				sumBusy += b
			} else {
				sumBusy++
			}
		}
		ceiling = 2*bounds.MII + 16 + sumBusy
	}
	if incumbent != nil && incumbent.Schedule.II < ceiling {
		ceiling = incumbent.Schedule.II
	}
	startII := bounds.MII
	if s.cfg.StartII > startII {
		startII = s.cfg.StartII
	}

	proven := true
	improved := false
	var bestTimes []int
	var bestMD *mindist.Table
	bestII, bestML := 0, 0
	lastII := startII
	stopReason := ""

	for ii := startII; ii <= ceiling; ii++ {
		lastII = ii
		if s.cfg.Budget.MaxIIAttempts > 0 && e.stats.IIAttempts >= s.cfg.Budget.MaxIIAttempts {
			stopReason, proven = sched.ReasonIIAttempts, false
			break
		}
		if r := e.guard.exceeded(); r != "" {
			stopReason, proven = r, false
			break
		}
		bound := math.MaxInt
		if incumbent != nil && ii == incumbent.Schedule.II {
			bound = incumbentML
		}
		found, ml, md, complete := e.bbAtII(ii, bound)
		e.stats.IIAttempts++
		if found != nil {
			bestTimes, bestII, bestML, bestMD = found, ii, ml, md
			improved = true
			if !complete {
				proven = false
				stopReason = e.stopReason
			}
			break
		}
		if !complete {
			// Could neither find a schedule nor prove this II infeasible:
			// the node budget or wall clock ran out mid-tree.
			proven = false
			stopReason = e.stopReason
			break
		}
	}

	e.stats.Elapsed = time.Since(start)
	stats := e.stats
	if incumbent != nil {
		// Fold the seed's effort in: the counters report the total work
		// of one exact compile, deterministically.
		ss := incumbent.Stats
		stats.IIAttempts += ss.IIAttempts
		stats.CentralIters += ss.CentralIters
		stats.Placements += ss.Placements
		stats.Forces += ss.Forces
		stats.Ejections += ss.Ejections
		stats.Restarts += ss.Restarts
	}

	out := &Outcome{Proven: proven, Improved: improved}
	if incumbent != nil {
		out.SeedII = incumbent.Schedule.II
		out.SeedMaxLive = incumbentML
	}
	switch {
	case bestTimes != nil:
		sc := ir.NewSchedule(bestII, len(l.Ops))
		copy(sc.Time, bestTimes)
		out.Result = &sched.Result{
			Loop: l, Policy: PolicyName, Bounds: bounds,
			Schedule: sc, MinDist: bestMD, Stats: stats,
		}
		out.MaxLive = bestML
		return out, nil
	case incumbent != nil:
		// The seed survives as the exact answer — either proven optimal
		// (the search exhausted every improvement) or best-known (budget).
		res := *incumbent
		res.Policy = PolicyName
		res.Stats = stats
		out.Result = &res
		out.MaxLive = incumbentML
		return out, nil
	case stopReason != "":
		out.Proven = false
		out.Result = &sched.Result{
			Loop: l, Policy: PolicyName, Bounds: bounds,
			Stats: stats, FailedII: lastII,
		}
		be := &sched.BudgetError{
			Loop: l.Name, Policy: PolicyName, Reason: stopReason,
			MII: bounds.MII, LastII: lastII, Stats: stats,
		}
		if stopReason == sched.ReasonCanceled {
			be.Cause = ctx.Err()
		}
		return out, be
	default:
		out.Result = &sched.Result{
			Loop: l, Policy: PolicyName, Bounds: bounds,
			Stats: stats, FailedII: lastII,
		}
		return out, &sched.InfeasibleError{
			Loop: l.Name, Policy: PolicyName, MII: bounds.MII,
			MaxII: ceiling, LastII: lastII, Stats: stats,
		}
	}
}

// guard is the search's budget state: wall clock and cancellation
// (node caps are counted by the searcher itself). It mirrors the
// engine's budgetGuard semantics.
type guard struct {
	ctx      context.Context
	deadline time.Time
	active   bool
}

func newGuard(ctx context.Context, b sched.Budget) guard {
	g := guard{ctx: ctx}
	if b.Deadline > 0 {
		g.deadline = time.Now().Add(b.Deadline)
	}
	if d, ok := ctx.Deadline(); ok && (g.deadline.IsZero() || d.Before(g.deadline)) {
		g.deadline = d
	}
	g.active = ctx.Done() != nil || !g.deadline.IsZero()
	return g
}

func (g *guard) exceeded() string {
	if !g.active {
		return ""
	}
	if g.ctx.Err() != nil {
		return sched.ReasonCanceled
	}
	if !g.deadline.IsZero() && !time.Now().Before(g.deadline) {
		return sched.ReasonDeadline
	}
	return ""
}

// valState tracks one RR value's contribution to the pressure lower
// bound during the search.
type valState struct {
	id    ir.ValueID
	minLT int
	cur   int // current lower bound on this value's lifetime
	defs  []int32
	uses  []valUse
}

type valUse struct {
	op    int32
	omega int32
}

// searcher is the per-call branch-and-bound state.
type searcher struct {
	l      *ir.Loop
	cfg    sched.Config
	obs    sched.Observer
	bounds mii.Bounds
	guard  guard
	stats  sched.Stats

	nodeBudget int64
	stopReason string // why the last attempt stopped incomplete

	// Per-II attempt state.
	ii      int
	horizon int
	md      *mindist.Table
	table   *mrt.Table
	times   []int
	order   []int
	vals    []valState
	valsOf  [][]int32 // value-state indexes whose bound op x can move
	lbSum   int       // Σ vals[i].cur
	bound   int       // strict upper bound: seeking MaxLive < bound
	floor   int       // static averaging floor at this II
	best    []int
	bestML  int
	leaf    *ir.Schedule
	scr     lifetime.Scratch
	trail   []trailEntry
	stop    bool // budget tripped: unwind
	atBest  bool // bound reached the floor: provably optimal, unwind
}

type trailEntry struct {
	val int32
	old int32
}

// bbAtII runs one branch-and-bound attempt: find the minimum-MaxLive
// schedule at exactly ii with MaxLive < bound. Returns the best times
// found (nil if none beat the bound), its MaxLive, the MinDist table at
// ii, and whether the attempt was complete — a complete attempt with a
// nil result proves no such schedule exists within the horizon.
func (e *searcher) bbAtII(ii, bound int) (times []int, maxLive int, md *mindist.Table, complete bool) {
	if e.obs != nil {
		e.obs.Event(sched.Event{
			Kind: sched.EvAttemptStart, Loop: e.l.Name, Policy: PolicyName, II: ii, Op: -1,
		})
	}
	found, ml, table, comp := e.runAttempt(ii, bound)
	if e.obs != nil {
		out := sched.AttemptOK
		switch {
		case found != nil:
			// A schedule beat the bound; the attempt counts as OK even if
			// the enumeration below it was cut short.
		case comp:
			out = sched.AttemptGiveUp // proven: nothing below the bound here
		default:
			out = e.attemptOutcome()
		}
		e.obs.Event(sched.Event{
			Kind: sched.EvAttemptEnd, Loop: e.l.Name, Policy: PolicyName, II: ii, Op: -1,
			OK: found != nil, Outcome: out,
		})
	}
	return found, ml, table, comp
}

// attemptOutcome maps the stop reason onto the observer's typed
// attempt outcome.
func (e *searcher) attemptOutcome() sched.AttemptOutcome {
	switch e.stopReason {
	case sched.ReasonDeadline:
		return sched.AttemptDeadline
	case sched.ReasonCanceled:
		return sched.AttemptCanceled
	case sched.ReasonCentralIters:
		return sched.AttemptCentralIters
	}
	return sched.AttemptGiveUp
}

func (e *searcher) runAttempt(ii, bound int) (times []int, maxLive int, md *mindist.Table, complete bool) {
	var err error
	e.md, err = mindist.Compute(e.l, ii)
	if err != nil {
		return nil, 0, nil, true // II below RecMII: provably infeasible
	}
	e.ii = ii
	e.horizon = e.md.CriticalPath() + 3*ii + 1
	n := len(e.l.Ops)

	// Value states: per-RR-value floors, def/use lists, and the per-op
	// index of which values a placement can tighten.
	e.vals = e.vals[:0]
	byValue := make(map[ir.ValueID]int32, len(e.l.Values))
	ltSum := 0
	for _, v := range e.l.Values {
		if v.File != ir.RR || !v.IsVariant() {
			continue
		}
		lt := mindist.MinLT(e.l, e.md, v.ID)
		vs := valState{id: v.ID, minLT: lt, cur: lt}
		for _, d := range v.Defs {
			vs.defs = append(vs.defs, int32(d))
		}
		byValue[v.ID] = int32(len(e.vals))
		e.vals = append(e.vals, vs)
		ltSum += lt
	}
	for _, op := range e.l.Ops {
		for _, rd := range op.Args {
			if i, ok := byValue[rd.Val]; ok {
				e.vals[i].uses = append(e.vals[i].uses, valUse{op: int32(op.ID), omega: int32(rd.Omega)})
			}
		}
		if rd := op.Pred; rd != nil {
			if i, ok := byValue[rd.Val]; ok {
				e.vals[i].uses = append(e.vals[i].uses, valUse{op: int32(op.ID), omega: int32(rd.Omega)})
			}
		}
	}
	e.valsOf = make([][]int32, n)
	for i := range e.vals {
		vs := &e.vals[i]
		seen := map[int32]bool{}
		for _, d := range vs.defs {
			if !seen[d] {
				seen[d] = true
				e.valsOf[d] = append(e.valsOf[d], int32(i))
			}
		}
		for _, u := range vs.uses {
			if !seen[u.op] {
				seen[u.op] = true
				e.valsOf[u.op] = append(e.valsOf[u.op], int32(i))
			}
		}
	}
	e.lbSum = ltSum
	e.floor = ceilDiv(ltSum, ii)
	if bound <= e.floor {
		// The incumbent already sits at (or below) the static floor:
		// no schedule at this II can strictly beat it.
		return nil, 0, e.md, true
	}

	e.table = mrt.New(e.l, ii)
	if cap(e.times) < n {
		e.times = make([]int, n)
	}
	e.times = e.times[:n]
	for i := range e.times {
		e.times[i] = ir.Unplaced
	}
	e.order = orderByWindow(e.md, n, e.horizon, e.order)
	e.bound = bound
	e.best = nil
	e.leaf = ir.NewSchedule(ii, n)
	e.stop = false
	e.atBest = false
	e.stopReason = ""
	e.dfs(0)
	md = e.md
	if e.best == nil {
		return nil, 0, md, !e.stop
	}
	return e.best, e.bestML, md, !e.stop || e.atBest
}

// orderByWindow sorts op indexes by ascending initial window size:
// most-constrained first, the same order as the exhaustive oracle.
func orderByWindow(md *mindist.Table, n, horizon int, buf []int) []int {
	if cap(buf) < n {
		buf = make([]int, n)
	}
	order := buf[:n]
	for i := range order {
		order[i] = i
	}
	window := func(x int) int {
		lo := 0
		if d := md.Dist(md.Start(), x); d != mindist.NoPath {
			lo = d
		}
		return horizon - lo
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && window(order[j]) < window(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// dfs is the branch-and-bound core: one node per (op, remaining
// candidates) branch point, with MinDist window propagation against the
// placed prefix, MRT conflicts, and the incremental averaging bound.
func (e *searcher) dfs(k int) {
	if e.stop || e.atBest {
		return
	}
	n := len(e.l.Ops)
	// Every dfs entry is one node — leaves included, because a leaf runs
	// a full lifetime measurement and a single interior node can spawn a
	// horizon's worth of them; an interior-only cap would leave the
	// dominant cost unbounded.
	e.stats.CentralIters++
	if e.stats.CentralIters >= e.nodeBudget {
		e.stop = true
		e.stopReason = sched.ReasonCentralIters
		return
	}
	if e.stats.CentralIters%nodeCheckStride == 0 {
		if r := e.guard.exceeded(); r != "" {
			e.stop = true
			e.stopReason = r
			return
		}
	}
	if k == n {
		copy(e.leaf.Time, e.times)
		ml := lifetime.MeasureIn(e.l, e.leaf, ir.RR, &e.scr).MaxLive
		if ml < e.bound {
			e.bound = ml
			e.bestML = ml
			if e.best == nil {
				e.best = make([]int, n)
			}
			copy(e.best, e.times)
			if e.bound <= e.floor {
				e.atBest = true
			}
		}
		return
	}

	x := e.order[k]
	lo := 0
	if d := e.md.Dist(e.md.Start(), x); d != mindist.NoPath {
		lo = d
	}
	hi := e.horizon - 1
	for y := 0; y < n; y++ {
		if e.times[y] == ir.Unplaced {
			continue
		}
		if d := e.md.Dist(y, x); d != mindist.NoPath && e.times[y]+d > lo {
			lo = e.times[y] + d
		}
		if d := e.md.Dist(x, y); d != mindist.NoPath && e.times[y]-d < hi {
			hi = e.times[y] - d
		}
	}
	op := e.l.Ops[x]
	for c := lo; c <= hi; c++ {
		if !e.table.Free(op, c) {
			continue
		}
		e.table.Place(op, c)
		e.times[x] = c
		e.stats.Placements++
		mark := len(e.trail)
		if e.tighten(x) {
			e.dfs(k + 1)
		}
		e.unwind(mark)
		e.table.Eject(op)
		e.times[x] = ir.Unplaced
		if e.stop || e.atBest {
			return
		}
	}
}

// tighten recomputes the pressure lower bound of every value op x
// defines or reads, records the old contributions on the trail, and
// reports whether the subtree can still beat the bound.
func (e *searcher) tighten(x int) bool {
	ok := true
	for _, vi := range e.valsOf[x] {
		vs := &e.vals[vi]
		cur := vs.minLT
		start := -1
		for _, d := range vs.defs {
			if t := e.times[d]; t != ir.Unplaced && (start == -1 || t < start) {
				start = t
			}
		}
		if start >= 0 {
			end := -1
			for _, u := range vs.uses {
				if t := e.times[u.op]; t != ir.Unplaced {
					if v := t + int(u.omega)*e.ii; v > end {
						end = v
					}
				}
			}
			if end >= 0 && end-start > cur {
				cur = end - start
			}
		}
		if cur != vs.cur {
			e.trail = append(e.trail, trailEntry{val: vi, old: int32(vs.cur)})
			e.lbSum += cur - vs.cur
			vs.cur = cur
		}
		// A single value needs ⌈cur/II⌉ simultaneously live copies.
		if ceilDiv(cur, e.ii) >= e.bound {
			ok = false
		}
	}
	if ceilDiv(e.lbSum, e.ii) >= e.bound {
		ok = false
	}
	return ok
}

// unwind restores the trail to the given mark.
func (e *searcher) unwind(mark int) {
	for i := len(e.trail) - 1; i >= mark; i-- {
		t := e.trail[i]
		vs := &e.vals[t.val]
		e.lbSum += int(t.old) - vs.cur
		vs.cur = int(t.old)
	}
	e.trail = e.trail[:mark]
}
