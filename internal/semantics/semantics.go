// Package semantics defines the arithmetic meaning of every opcode, in
// one place, so the sequential reference interpreter and the VLIW
// simulator cannot drift apart: both call Eval for anything that is not
// a memory access or branch.
package semantics

import (
	"fmt"
	"math"

	"repro/internal/ir"
	"repro/internal/machine"
)

// Eval computes a pure (non-memory, non-branch) operation on scalar
// arguments. Integer division and modulo by zero yield zero — the
// hardware traps, but a total function keeps differential testing on
// randomly generated loops well defined; floating division follows IEEE.
func Eval(op machine.Opcode, args []ir.Scalar) (ir.Scalar, error) {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("semantics: %v expects %d args, got %d", op, n, len(args))
		}
		return nil
	}
	bin := func() (ir.Scalar, ir.Scalar, error) {
		if err := need(2); err != nil {
			return ir.Scalar{}, ir.Scalar{}, err
		}
		return args[0], args[1], nil
	}
	switch op {
	case machine.AAdd, machine.IAdd:
		a, b, err := bin()
		return ir.IntS(a.I + b.I), err
	case machine.ASub, machine.ISub:
		a, b, err := bin()
		return ir.IntS(a.I - b.I), err
	case machine.AMul, machine.IMul:
		a, b, err := bin()
		return ir.IntS(a.I * b.I), err
	case machine.IAnd:
		a, b, err := bin()
		return ir.IntS(a.I & b.I), err
	case machine.IOr:
		a, b, err := bin()
		return ir.IntS(a.I | b.I), err
	case machine.IXor:
		a, b, err := bin()
		return ir.IntS(a.I ^ b.I), err
	case machine.IDiv:
		a, b, err := bin()
		if b.I == 0 {
			return ir.IntS(0), err
		}
		return ir.IntS(a.I / b.I), err
	case machine.IMod:
		a, b, err := bin()
		if b.I == 0 {
			return ir.IntS(0), err
		}
		return ir.IntS(a.I % b.I), err

	case machine.FAdd:
		a, b, err := bin()
		return ir.FloatS(a.F + b.F), err
	case machine.FSub:
		a, b, err := bin()
		return ir.FloatS(a.F - b.F), err
	case machine.FMul:
		a, b, err := bin()
		return ir.FloatS(a.F * b.F), err
	case machine.FDiv:
		a, b, err := bin()
		return ir.FloatS(a.F / b.F), err
	case machine.FSqrt:
		if err := need(1); err != nil {
			return ir.Scalar{}, err
		}
		return ir.FloatS(math.Sqrt(args[0].F)), nil
	case machine.FNeg:
		if err := need(1); err != nil {
			return ir.Scalar{}, err
		}
		return ir.FloatS(-args[0].F), nil
	case machine.FAbs:
		if err := need(1); err != nil {
			return ir.Scalar{}, err
		}
		return ir.FloatS(math.Abs(args[0].F)), nil
	case machine.FMax:
		a, b, err := bin()
		return ir.FloatS(math.Max(a.F, b.F)), err
	case machine.FMin:
		a, b, err := bin()
		return ir.FloatS(math.Min(a.F, b.F)), err

	case machine.ICmpEQ:
		a, b, err := bin()
		return ir.PredS(a.I == b.I), err
	case machine.ICmpNE:
		a, b, err := bin()
		return ir.PredS(a.I != b.I), err
	case machine.ICmpLT:
		a, b, err := bin()
		return ir.PredS(a.I < b.I), err
	case machine.ICmpLE:
		a, b, err := bin()
		return ir.PredS(a.I <= b.I), err
	case machine.ICmpGT:
		a, b, err := bin()
		return ir.PredS(a.I > b.I), err
	case machine.ICmpGE:
		a, b, err := bin()
		return ir.PredS(a.I >= b.I), err
	case machine.FCmpEQ:
		a, b, err := bin()
		return ir.PredS(a.F == b.F), err
	case machine.FCmpNE:
		a, b, err := bin()
		return ir.PredS(a.F != b.F), err
	case machine.FCmpLT:
		a, b, err := bin()
		return ir.PredS(a.F < b.F), err
	case machine.FCmpLE:
		a, b, err := bin()
		return ir.PredS(a.F <= b.F), err
	case machine.FCmpGT:
		a, b, err := bin()
		return ir.PredS(a.F > b.F), err
	case machine.FCmpGE:
		a, b, err := bin()
		return ir.PredS(a.F >= b.F), err

	case machine.PNot:
		if err := need(1); err != nil {
			return ir.Scalar{}, err
		}
		return ir.PredS(!args[0].B), nil
	case machine.PAnd:
		a, b, err := bin()
		return ir.PredS(a.B && b.B), err
	case machine.POr:
		a, b, err := bin()
		return ir.PredS(a.B || b.B), err

	case machine.Copy, machine.FCopy:
		if err := need(1); err != nil {
			return ir.Scalar{}, err
		}
		return args[0], nil

	case machine.IToF:
		if err := need(1); err != nil {
			return ir.Scalar{}, err
		}
		return ir.FloatS(float64(args[0].I)), nil
	case machine.FToI:
		if err := need(1); err != nil {
			return ir.Scalar{}, err
		}
		return ir.IntS(int64(args[0].F)), nil
	}
	return ir.Scalar{}, fmt.Errorf("semantics: %v is not a pure operation", op)
}

// Equal compares scalars for differential testing: integers and booleans
// exactly, floats bit-for-bit except that two NaNs compare equal.
func Equal(a, b ir.Scalar) bool {
	if a.I != b.I || a.B != b.B {
		return false
	}
	if math.IsNaN(a.F) && math.IsNaN(b.F) {
		return true
	}
	return math.Float64bits(a.F) == math.Float64bits(b.F)
}
