package semantics

import (
	"math"
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
)

func TestIntegerOps(t *testing.T) {
	cases := []struct {
		op   machine.Opcode
		a, b int64
		want int64
	}{
		{machine.IAdd, 3, 4, 7},
		{machine.ISub, 3, 4, -1},
		{machine.IMul, 3, 4, 12},
		{machine.IDiv, 17, 5, 3},
		{machine.IDiv, 17, 0, 0}, // total function: /0 → 0
		{machine.IMod, 17, 5, 2},
		{machine.IMod, 17, 0, 0},
		{machine.IAnd, 0b1100, 0b1010, 0b1000},
		{machine.IOr, 0b1100, 0b1010, 0b1110},
		{machine.IXor, 0b1100, 0b1010, 0b0110},
		{machine.AAdd, 100, 1, 101},
		{machine.ASub, 100, 1, 99},
		{machine.AMul, 7, 3, 21},
	}
	for _, c := range cases {
		got, err := Eval(c.op, []ir.Scalar{ir.IntS(c.a), ir.IntS(c.b)})
		if err != nil || got.I != c.want {
			t.Errorf("%v(%d,%d) = %v (%v), want %d", c.op, c.a, c.b, got.I, err, c.want)
		}
	}
}

func TestFloatOps(t *testing.T) {
	bin := func(op machine.Opcode, a, b, want float64) {
		t.Helper()
		got, err := Eval(op, []ir.Scalar{ir.FloatS(a), ir.FloatS(b)})
		if err != nil || got.F != want {
			t.Errorf("%v(%v,%v) = %v (%v), want %v", op, a, b, got.F, err, want)
		}
	}
	bin(machine.FAdd, 1.5, 2.25, 3.75)
	bin(machine.FSub, 1.5, 2.25, -0.75)
	bin(machine.FMul, 1.5, 2.0, 3.0)
	bin(machine.FDiv, 3.0, 2.0, 1.5)
	bin(machine.FMax, 1.0, 2.0, 2.0)
	bin(machine.FMin, 1.0, 2.0, 1.0)

	un := func(op machine.Opcode, a, want float64) {
		t.Helper()
		got, err := Eval(op, []ir.Scalar{ir.FloatS(a)})
		if err != nil || got.F != want {
			t.Errorf("%v(%v) = %v (%v), want %v", op, a, got.F, err, want)
		}
	}
	un(machine.FSqrt, 9.0, 3.0)
	un(machine.FNeg, 2.5, -2.5)
	un(machine.FAbs, -2.5, 2.5)

	if got, _ := Eval(machine.FDiv, []ir.Scalar{ir.FloatS(1), ir.FloatS(0)}); !math.IsInf(got.F, 1) {
		t.Errorf("1/0 should be +Inf (IEEE), got %v", got.F)
	}
}

func TestCompares(t *testing.T) {
	cases := []struct {
		op   machine.Opcode
		args []ir.Scalar
		want bool
	}{
		{machine.ICmpEQ, []ir.Scalar{ir.IntS(2), ir.IntS(2)}, true},
		{machine.ICmpNE, []ir.Scalar{ir.IntS(2), ir.IntS(2)}, false},
		{machine.ICmpLT, []ir.Scalar{ir.IntS(1), ir.IntS(2)}, true},
		{machine.ICmpLE, []ir.Scalar{ir.IntS(2), ir.IntS(2)}, true},
		{machine.ICmpGT, []ir.Scalar{ir.IntS(1), ir.IntS(2)}, false},
		{machine.ICmpGE, []ir.Scalar{ir.IntS(2), ir.IntS(2)}, true},
		{machine.FCmpLT, []ir.Scalar{ir.FloatS(1.5), ir.FloatS(2)}, true},
		{machine.FCmpGE, []ir.Scalar{ir.FloatS(1.5), ir.FloatS(2)}, false},
	}
	for _, c := range cases {
		got, err := Eval(c.op, c.args)
		if err != nil || got.B != c.want {
			t.Errorf("%v(%v) = %v (%v), want %v", c.op, c.args, got.B, err, c.want)
		}
	}
}

func TestPredicateOps(t *testing.T) {
	if got, _ := Eval(machine.PNot, []ir.Scalar{ir.PredS(true)}); got.B {
		t.Error("PNot(true) should be false")
	}
	if got, _ := Eval(machine.PAnd, []ir.Scalar{ir.PredS(true), ir.PredS(false)}); got.B {
		t.Error("PAnd(true,false) should be false")
	}
	if got, _ := Eval(machine.Copy, []ir.Scalar{ir.IntS(9)}); got.I != 9 {
		t.Error("Copy should be identity")
	}
}

func TestErrors(t *testing.T) {
	if _, err := Eval(machine.Load, nil); err == nil {
		t.Error("Load is not a pure op")
	}
	if _, err := Eval(machine.IAdd, []ir.Scalar{ir.IntS(1)}); err == nil {
		t.Error("arity mismatch must error")
	}
}

func TestEqualNaN(t *testing.T) {
	nan := ir.FloatS(math.NaN())
	if !Equal(nan, ir.FloatS(math.NaN())) {
		t.Error("NaN must equal NaN for differential testing")
	}
	if Equal(ir.FloatS(1), ir.FloatS(2)) {
		t.Error("distinct floats must differ")
	}
	if Equal(ir.IntS(1), ir.IntS(2)) {
		t.Error("distinct ints must differ")
	}
	negZero := ir.FloatS(math.Copysign(0, -1))
	if Equal(negZero, ir.FloatS(0)) {
		t.Error("-0 and +0 differ bitwise; Equal is bit-exact")
	}
}
