package mrt

import (
	"math/rand"
	"testing"

	"repro/internal/fixture"
	"repro/internal/ir"
	"repro/internal/machine"
)

func TestPlaceConflictEject(t *testing.T) {
	l := fixture.Sample(machine.Cydra())
	tb := New(l, 2)
	// Ops 0 and 1 are the two FAdds on the single Adder.
	add0, add1 := l.Ops[0], l.Ops[1]
	if !tb.Free(add0, 0) {
		t.Fatal("empty table should accept add0 at cycle 0")
	}
	tb.Place(add0, 0)
	if tb.Free(add1, 0) {
		t.Error("same adder, same cycle mod II: conflict expected")
	}
	if tb.Free(add1, 2) {
		t.Error("cycle 2 ≡ 0 mod 2: conflict expected")
	}
	if !tb.Free(add1, 1) {
		t.Error("cycle 1 should be free")
	}
	cf := tb.Conflicts(add1, 0)
	if len(cf) != 1 || cf[0] != add0.ID {
		t.Errorf("Conflicts = %v, want [op0]", cf)
	}
	tb.Eject(add0)
	if !tb.Free(add1, 0) {
		t.Error("after eject the slot must be free")
	}
}

func TestDividerReservationPattern(t *testing.T) {
	l := fixture.Divide(machine.Cydra())
	var div, sqrt *ir.Op
	for _, op := range l.Ops {
		switch op.Opcode {
		case machine.FDiv:
			div = op
		case machine.FSqrt:
			sqrt = op
		}
	}
	tb := New(l, 38)
	tb.Place(div, 0) // occupies divider cycles 0..16
	for c := 0; c < 17; c++ {
		if tb.Free(sqrt, c) {
			t.Errorf("sqrt at %d overlaps the div's 17-cycle reservation", c)
		}
	}
	if !tb.Free(sqrt, 17) {
		t.Error("sqrt at 17 should fit: 17..37 is free")
	}
	if tb.Free(sqrt, 18) {
		t.Error("sqrt at 18 wraps into cycle 0..? 18+21=39 > 38 wraps to 0 which div holds")
	}
}

func TestBusyExceedingIIUnplaceable(t *testing.T) {
	l := fixture.Divide(machine.Cydra())
	var div *ir.Op
	for _, op := range l.Ops {
		if op.Opcode == machine.FDiv {
			div = op
		}
	}
	tb := New(l, 10) // 17 busy cycles can never fit in II=10
	if tb.Free(div, 0) {
		t.Error("a 17-cycle pattern cannot fit II=10")
	}
	cf := tb.Conflicts(div, 3)
	if len(cf) != 1 || cf[0] != div.ID {
		t.Errorf("Conflicts should report the op as its own blocker, got %v", cf)
	}
}

// Property: place/eject round-trips restore the table exactly; random
// sequences of placements and ejections never corrupt slots.
func TestPlaceEjectRoundTrip(t *testing.T) {
	l := fixture.Sample(machine.Cydra())
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		ii := 2 + rng.Intn(6)
		tb := New(l, ii)
		placedAt := map[ir.OpID]int{}
		for step := 0; step < 200; step++ {
			op := l.Ops[rng.Intn(len(l.Ops))]
			if c, ok := placedAt[op.ID]; ok {
				if tb.Cycle(op.ID) != c {
					t.Fatalf("cycle mismatch for op%d", op.ID)
				}
				tb.Eject(op)
				delete(placedAt, op.ID)
				continue
			}
			c := rng.Intn(3 * ii)
			if tb.Free(op, c) {
				tb.Place(op, c)
				placedAt[op.ID] = c
			} else if len(tb.Conflicts(op, c)) == 0 {
				t.Fatalf("not free but no conflicts: op%d at %d", op.ID, c)
			}
		}
		// Cross-check occupancy against an independent reconstruction.
		s := tb.Schedule()
		for id, c := range placedAt {
			if s.Time[id] != c {
				t.Fatalf("schedule extraction lost op%d", id)
			}
		}
	}
}

func TestPlacePanicsOnConflict(t *testing.T) {
	l := fixture.Sample(machine.Cydra())
	tb := New(l, 2)
	tb.Place(l.Ops[0], 0)
	defer func() {
		if recover() == nil {
			t.Error("conflicting Place must panic")
		}
	}()
	tb.Place(l.Ops[1], 2)
}
