// Package mrt implements the modulo resource table (Section 1 of the
// paper): a table with II entries, each tracking which machine resources
// are reserved during that cycle modulo II. Placing an operation at cycle
// t commits its functional unit for cycles t+k·II for all k; for the
// non-pipelined divider the reservation spans the op's full latency.
//
// Operations were assigned to specific functional-unit instances before
// scheduling, so a slot is identified by (unit class, instance, cycle mod
// II) and holds at most one operation.
package mrt

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/machine"
)

// noOp marks an empty slot.
const noOp ir.OpID = -1

// Table is a modulo resource table for one loop at one II.
//
// The reservation shape of each op — unit class, instance, busy span —
// is precomputed into compact per-op arrays at construction, so the hot
// Free/Place/Eject/Conflicts calls index three flat arrays instead of
// chasing the opcode through the machine description.
type Table struct {
	ii    int
	loop  *ir.Loop
	slots [][]ir.OpID // [kind][instance*ii + cycle]
	at    []int       // issue cycle per op, ir.Unplaced if absent

	opKind []uint8 // functional-unit class per op
	opFU   []int32 // pre-assigned instance per op
	opBusy []int32 // busy cycles per op

	cbuf []ir.OpID // Conflicts result buffer, reused across calls
}

// Scratch is pooled MRT storage: one table whose slot rows, placement
// array, and per-op span arrays keep their capacity across II attempts
// and across compiles. Reset drops the loop reference so a pooled
// Scratch retains no per-request data.
type Scratch struct {
	t Table
}

// Reset clears the per-compile loop reference, keeping backing stores.
func (s *Scratch) Reset() { s.t.loop = nil }

// New returns an empty table for the loop at the given II.
func New(l *ir.Loop, ii int) *Table {
	return (&Table{}).init(l, ii)
}

// NewIn is New writing into pooled scratch: the returned table reuses
// the scratch's backing stores, so it is invalidated by the next NewIn
// on the same scratch.
func NewIn(l *ir.Loop, ii int, s *Scratch) *Table {
	return s.t.init(l, ii)
}

func (t *Table) init(l *ir.Loop, ii int) *Table {
	if ii < 1 {
		panic("mrt: II must be positive")
	}
	n := len(l.Ops)
	t.ii, t.loop = ii, l
	t.at = growInts(t.at, n)
	nk := l.Mach.NumKinds()
	if cap(t.slots) >= nk {
		t.slots = t.slots[:nk]
	} else {
		t.slots = make([][]ir.OpID, nk)
	}
	for k := range t.slots {
		cnt := l.Mach.Count(machine.FUKind(k))
		t.slots[k] = growOps(t.slots[k], cnt*ii)
		for i := range t.slots[k] {
			t.slots[k][i] = noOp
		}
	}
	for i := range t.at {
		t.at[i] = ir.Unplaced
	}
	t.opKind = growU8(t.opKind, n)
	t.opFU = growI32(t.opFU, n)
	t.opBusy = growI32(t.opBusy, n)
	for i, op := range l.Ops {
		info := l.Mach.Info(op.Opcode)
		t.opKind[i] = uint8(info.Kind)
		t.opFU[i] = int32(op.FU)
		t.opBusy[i] = int32(info.Busy)
	}
	return t
}

func growInts(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

func growI32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}

func growU8(s []uint8, n int) []uint8 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]uint8, n)
}

func growOps(s []ir.OpID, n int) []ir.OpID {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]ir.OpID, n)
}

// II returns the table's initiation interval.
func (t *Table) II() int { return t.ii }

// Placed reports whether the op currently occupies the table.
func (t *Table) Placed(id ir.OpID) bool { return t.at[id] != ir.Unplaced }

// Cycle returns the op's issue cycle, or ir.Unplaced.
func (t *Table) Cycle(id ir.OpID) int { return t.at[id] }

func (t *Table) span(op *ir.Op) (kind machine.FUKind, fu, busy int) {
	return machine.FUKind(t.opKind[op.ID]), int(t.opFU[op.ID]), int(t.opBusy[op.ID])
}

// Conflicts returns the distinct ops whose reservations collide with
// placing op at the given cycle. An empty result means the placement is
// conflict-free. If the op's reservation pattern cannot fit at any cycle
// (busy > II, impossible once II ≥ ResMII), Conflicts reports the op
// itself as its own blocker.
//
// The returned slice is a table-owned buffer, valid until the next
// Conflicts call on the same table; callers that keep victims across
// calls must copy them out first.
func (t *Table) Conflicts(op *ir.Op, cycle int) []ir.OpID {
	kind, fu, busy := t.span(op)
	out := t.cbuf[:0]
	if busy > t.ii {
		out = append(out, op.ID)
		t.cbuf = out
		return out
	}
	row := t.slots[kind]
	for i := 0; i < busy; i++ {
		c := mod(cycle+i, t.ii)
		o := row[fu*t.ii+c]
		if o == noOp || o == op.ID {
			continue
		}
		dup := false
		for _, p := range out {
			if p == o {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, o)
		}
	}
	t.cbuf = out
	return out
}

// Free reports whether op can be placed at cycle without any conflict.
func (t *Table) Free(op *ir.Op, cycle int) bool {
	kind, fu, busy := t.span(op)
	if busy > t.ii {
		return false
	}
	row := t.slots[kind]
	for i := 0; i < busy; i++ {
		c := mod(cycle+i, t.ii)
		if o := row[fu*t.ii+c]; o != noOp && o != op.ID {
			return false
		}
	}
	return true
}

// Place records op at the given issue cycle. It panics on conflict or if
// the op is already placed: schedulers must eject first.
func (t *Table) Place(op *ir.Op, cycle int) {
	if t.at[op.ID] != ir.Unplaced {
		panic(fmt.Sprintf("mrt: op%d already placed", op.ID))
	}
	if !t.Free(op, cycle) {
		panic(fmt.Sprintf("mrt: op%d conflicts at cycle %d", op.ID, cycle))
	}
	kind, fu, busy := t.span(op)
	for i := 0; i < busy; i++ {
		c := mod(cycle+i, t.ii)
		t.slots[kind][fu*t.ii+c] = op.ID
	}
	t.at[op.ID] = cycle
}

// Eject removes a placed op from the table.
func (t *Table) Eject(op *ir.Op) {
	cycle := t.at[op.ID]
	if cycle == ir.Unplaced {
		panic(fmt.Sprintf("mrt: op%d not placed", op.ID))
	}
	kind, fu, busy := t.span(op)
	for i := 0; i < busy; i++ {
		c := mod(cycle+i, t.ii)
		if t.slots[kind][fu*t.ii+c] != op.ID {
			panic(fmt.Sprintf("mrt: corrupt slot for op%d", op.ID))
		}
		t.slots[kind][fu*t.ii+c] = noOp
	}
	t.at[op.ID] = ir.Unplaced
}

// Schedule extracts the current placements.
func (t *Table) Schedule() *ir.Schedule {
	s := ir.NewSchedule(t.ii, len(t.at))
	copy(s.Time, t.at)
	return s
}

// ScheduleInto extracts the current placements into dst, reusing its
// Time slice when it is large enough; a nil dst allocates (equivalent
// to Schedule). Returns the populated schedule.
func (t *Table) ScheduleInto(dst *ir.Schedule) *ir.Schedule {
	if dst == nil {
		return t.Schedule()
	}
	dst.II = t.ii
	if cap(dst.Time) < len(t.at) {
		dst.Time = make([]int, len(t.at))
	} else {
		dst.Time = dst.Time[:len(t.at)]
	}
	copy(dst.Time, t.at)
	return dst
}

func mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}
