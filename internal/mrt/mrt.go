// Package mrt implements the modulo resource table (Section 1 of the
// paper): a table with II entries, each tracking which machine resources
// are reserved during that cycle modulo II. Placing an operation at cycle
// t commits its functional unit for cycles t+k·II for all k; for the
// non-pipelined divider the reservation spans the op's full latency.
//
// Operations were assigned to specific functional-unit instances before
// scheduling, so a slot is identified by (unit class, instance, cycle mod
// II) and holds at most one operation.
package mrt

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/machine"
)

// noOp marks an empty slot.
const noOp ir.OpID = -1

// Table is a modulo resource table for one loop at one II.
type Table struct {
	ii    int
	loop  *ir.Loop
	slots [][]ir.OpID // [kind][instance*ii + cycle]
	at    []int       // issue cycle per op, ir.Unplaced if absent
}

// New returns an empty table for the loop at the given II.
func New(l *ir.Loop, ii int) *Table {
	if ii < 1 {
		panic("mrt: II must be positive")
	}
	t := &Table{ii: ii, loop: l, at: make([]int, len(l.Ops))}
	t.slots = make([][]ir.OpID, machine.NumFUKinds)
	for k := range t.slots {
		n := l.Mach.Count(machine.FUKind(k))
		t.slots[k] = make([]ir.OpID, n*ii)
		for i := range t.slots[k] {
			t.slots[k][i] = noOp
		}
	}
	for i := range t.at {
		t.at[i] = ir.Unplaced
	}
	return t
}

// II returns the table's initiation interval.
func (t *Table) II() int { return t.ii }

// Placed reports whether the op currently occupies the table.
func (t *Table) Placed(id ir.OpID) bool { return t.at[id] != ir.Unplaced }

// Cycle returns the op's issue cycle, or ir.Unplaced.
func (t *Table) Cycle(id ir.OpID) int { return t.at[id] }

func (t *Table) span(op *ir.Op) (kind machine.FUKind, fu, busy int) {
	info := t.loop.Mach.Info(op.Opcode)
	return info.Kind, op.FU, info.Busy
}

// Conflicts returns the distinct ops whose reservations collide with
// placing op at the given cycle. A nil result means the placement is
// conflict-free. If the op's reservation pattern cannot fit at any cycle
// (busy > II, impossible once II ≥ ResMII), Conflicts reports the op
// itself as its own blocker.
func (t *Table) Conflicts(op *ir.Op, cycle int) []ir.OpID {
	kind, fu, busy := t.span(op)
	if busy > t.ii {
		return []ir.OpID{op.ID}
	}
	var out []ir.OpID
	seen := map[ir.OpID]bool{}
	for i := 0; i < busy; i++ {
		c := mod(cycle+i, t.ii)
		if o := t.slots[kind][fu*t.ii+c]; o != noOp && o != op.ID && !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	return out
}

// Free reports whether op can be placed at cycle without any conflict.
func (t *Table) Free(op *ir.Op, cycle int) bool {
	kind, fu, busy := t.span(op)
	if busy > t.ii {
		return false
	}
	for i := 0; i < busy; i++ {
		c := mod(cycle+i, t.ii)
		if o := t.slots[kind][fu*t.ii+c]; o != noOp && o != op.ID {
			return false
		}
	}
	return true
}

// Place records op at the given issue cycle. It panics on conflict or if
// the op is already placed: schedulers must eject first.
func (t *Table) Place(op *ir.Op, cycle int) {
	if t.at[op.ID] != ir.Unplaced {
		panic(fmt.Sprintf("mrt: op%d already placed", op.ID))
	}
	if !t.Free(op, cycle) {
		panic(fmt.Sprintf("mrt: op%d conflicts at cycle %d", op.ID, cycle))
	}
	kind, fu, busy := t.span(op)
	for i := 0; i < busy; i++ {
		c := mod(cycle+i, t.ii)
		t.slots[kind][fu*t.ii+c] = op.ID
	}
	t.at[op.ID] = cycle
}

// Eject removes a placed op from the table.
func (t *Table) Eject(op *ir.Op) {
	cycle := t.at[op.ID]
	if cycle == ir.Unplaced {
		panic(fmt.Sprintf("mrt: op%d not placed", op.ID))
	}
	kind, fu, busy := t.span(op)
	for i := 0; i < busy; i++ {
		c := mod(cycle+i, t.ii)
		if t.slots[kind][fu*t.ii+c] != op.ID {
			panic(fmt.Sprintf("mrt: corrupt slot for op%d", op.ID))
		}
		t.slots[kind][fu*t.ii+c] = noOp
	}
	t.at[op.ID] = ir.Unplaced
}

// Schedule extracts the current placements.
func (t *Table) Schedule() *ir.Schedule {
	s := ir.NewSchedule(t.ii, len(t.at))
	copy(s.Time, t.at)
	return s
}

func mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}
