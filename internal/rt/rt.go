// Package rt defines the runtime-state types shared by the sequential
// reference interpreter and the VLIW simulator: the environment a loop
// runs in and the observable outcome of a run. Keeping them here lets
// fixtures, tests, and both execution engines agree on one vocabulary.
package rt

import "repro/internal/ir"

// InstKey names one value instance: the one computed by iteration Iter
// (negative iterations are preheader live-ins).
type InstKey struct {
	Val  ir.ValueID
	Iter int
}

// Env is the initial machine state for a run.
type Env struct {
	// Mem is the initial memory image (copied by the engines, never
	// mutated).
	Mem []ir.Scalar
	// GPR supplies loop-invariant live-in values; compile-time constants
	// (ir.Value.ConstValid) need not appear.
	GPR map[ir.ValueID]ir.Scalar
	// Init supplies loop-variant instances for iterations < 0 — the
	// preheader state of recurrences. Missing entries read as zero,
	// matching a zeroed rotating register file.
	Init map[InstKey]ir.Scalar
}

// Result is the observable outcome of a run.
type Result struct {
	Mem ir.Memory
	// LiveOut holds the final (last-iteration) instance of every value
	// marked LiveOut; empty for zero-trip runs.
	LiveOut map[ir.ValueID]ir.Scalar
	// Executed counts operations that actually ran (predicated-off and
	// stage-squashed ops are not counted) — a cheap cross-check between
	// engines.
	Executed int64
}
