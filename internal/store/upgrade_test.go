package store

import (
	"bytes"
	"testing"
)

// TestDiskRefinedRoundTrip: the refined flag survives the disk tier,
// including a reopen — a restarted daemon keeps labeling upgraded
// records.
func TestDiskRefinedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	d.Put("plain", Record{Status: 200, Machine: "cydra", Body: []byte(`{"ii":4}`)})
	d.Put("better", Record{Status: 200, Machine: "cydra", Body: []byte(`{"ii":3}`), Refined: true})
	check := func(d *Disk, stage string) {
		t.Helper()
		if rec, ok := d.Get("plain"); !ok || rec.Refined || rec.Status != 200 {
			t.Fatalf("%s: plain = %+v ok=%v", stage, rec, ok)
		}
		if rec, ok := d.Get("better"); !ok || !rec.Refined || rec.Status != 200 {
			t.Fatalf("%s: better = %+v ok=%v", stage, rec, ok)
		}
	}
	check(d, "live")
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	check(d2, "reopened")
	if loaded, rejected := d2.LoadReport(); loaded != 2 || rejected != 0 {
		t.Fatalf("reopen load report: loaded=%d rejected=%d", loaded, rejected)
	}
}

// TestDiskUpgradeSupersedes: re-Putting a key with a flipped refined
// flag must not hit the idempotent-re-Put fast path; the new record
// wins, in place and across restart.
func TestDiskUpgradeSupersedes(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := "loop"
	orig := []byte(`{"ii":5,"max_live":9}`)
	refined := []byte(`{"ii":5,"max_live":8,"refined":true}`)
	d.Put(k, Record{Status: 200, Machine: "cydra", Body: orig})
	// Identical re-Put is still free.
	d.Put(k, Record{Status: 200, Machine: "cydra", Body: orig})
	d.Put(k, Record{Status: 200, Machine: "cydra", Body: refined, Refined: true})
	rec, ok := d.Get(k)
	if !ok || !rec.Refined || !bytes.Equal(rec.Body, refined) {
		t.Fatalf("after upgrade: %+v ok=%v", rec, ok)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	rec, ok = d2.Get(k)
	if !ok || !rec.Refined || !bytes.Equal(rec.Body, refined) {
		t.Fatalf("after restart: %+v ok=%v", rec, ok)
	}
}

// TestTieredUpgrade: Upgrade writes back to front through every tier,
// so both the memory and the disk tier serve the refined record and a
// subsequent promotion cannot resurrect the old one.
func TestTieredUpgrade(t *testing.T) {
	mem := NewMemory(16)
	disk, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	tiered := NewTiered(mem, disk)
	k := "loop"
	tiered.Put(k, Record{Status: 200, Machine: "cydra", Body: []byte(`v1`)})
	tiered.Upgrade(k, Record{Status: 200, Machine: "cydra", Body: []byte(`v2`), Refined: true})
	for i, tier := range tiered.Tiers() {
		rec, ok := tier.Get(k)
		if !ok || !rec.Refined || !bytes.Equal(rec.Body, []byte(`v2`)) {
			t.Fatalf("tier %d after upgrade: %+v ok=%v", i, rec, ok)
		}
	}
	rec, tierIdx, ok := tiered.GetTier(k)
	if !ok || tierIdx != 0 || !rec.Refined {
		t.Fatalf("GetTier after upgrade: %+v tier=%d ok=%v", rec, tierIdx, ok)
	}
}
