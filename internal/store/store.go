// Package store is lsmsd's tiered result store: content-addressed
// records of canonical compile-response bytes, keyed by the lsms-wire/2
// content hash. The determinism guarantee of the wire format — same
// request, same machine, same effort counters, same bytes — is what
// makes the store sound: a record is not an approximation of a compile,
// it IS the compile, so replaying it from any tier (including across
// process restarts) is byte-identical to rescheduling it.
//
// Two implementations exist:
//
//   - Memory, a per-node LRU over whole records (the old private
//     server cache, promoted to the public first tier);
//   - Disk, a crash-safe append-only log with a per-record checksum,
//     verified-on-load (a corrupt, truncated, or wrong-version record
//     is skipped and counted, never served) and size-bounded log
//     compaction — the tier that survives restarts.
//
// Tiered composes them: Get consults tiers front to back and promotes
// lower-tier hits upward, Put writes through every tier, Len is the sum
// over tiers. lsmsd mounts a Memory→Disk pair and exposes the disk
// tier's health as lsmsd_store_{hits,misses,rejects}_total and
// lsmsd_store_records.
package store

import (
	"sync/atomic"
)

// Record is one stored compile outcome: the exact serialized response
// bytes, the HTTP status they were served with, and the machine the
// compile targeted (diagnostic: the hash already pins the machine).
// Body must be treated as immutable by every tier and every caller.
// Refined marks a record upgraded in place by lsmsd's background
// refinement tier (the body then carries the refined schedule); it
// survives the disk tier, so a restarted daemon keeps serving the
// refined bytes and keeps labeling them refined.
type Record struct {
	Status  int
	Machine string
	Body    []byte
	Refined bool
}

// Tier is one level of the result store. Implementations must be safe
// for concurrent use.
//
// Get returns the record stored under key, or ok=false — a tier that
// cannot produce the original bytes verbatim (corruption, eviction)
// must miss, never guess. Put stores a record; tiers may drop it
// (eviction, size bounds) without error. Len reports the number of
// retrievable records. Close flushes and releases any resources; a
// closed tier misses on Get and drops every Put.
type Tier interface {
	Get(key string) (Record, bool)
	Put(key string, rec Record)
	Len() int
	Close() error
}

// Stats counts a tier's traffic: Hits and Misses are Get outcomes,
// Rejects counts records that failed verification (checksum mismatch,
// truncation, unsupported version) and were skipped rather than
// served. All three are cumulative since the tier was opened.
type Stats struct {
	Hits    int64
	Misses  int64
	Rejects int64
}

// StatsReporter is optionally implemented by tiers that count their
// traffic; lsmsd's store metrics read it.
type StatsReporter interface {
	Stats() Stats
}

// counters is the shared atomic implementation behind each tier's
// StatsReporter.
type counters struct {
	hits    atomic.Int64
	misses  atomic.Int64
	rejects atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Rejects: c.rejects.Load(),
	}
}
