package store

import (
	"container/list"
	"sync"
)

// Memory is a content-addressed LRU of records — the per-node front
// tier. Values are stored whole (the response bytes are shared, not
// copied), so a hit replays the original response byte-identically.
type Memory struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	m       map[string]*list.Element
	closed  bool
	counter counters
}

type memEntry struct {
	key string
	rec Record
}

// NewMemory returns an LRU tier bounded to max records. A max <= 0
// disables the tier: every Get misses and every Put is dropped (it
// still satisfies Tier, so a disabled cache needs no special-casing).
func NewMemory(max int) *Memory {
	return &Memory{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

// Get returns the record stored under key, refreshing its recency.
func (c *Memory) Get(key string) (Record, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok || c.closed {
		c.counter.misses.Add(1)
		return Record{}, false
	}
	c.ll.MoveToFront(el)
	c.counter.hits.Add(1)
	return el.Value.(*memEntry).rec, true
}

// Put stores a record, evicting the least recently used entry when the
// tier is full.
func (c *Memory) Put(key string, rec Record) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*memEntry).rec = rec
		return
	}
	c.m[key] = c.ll.PushFront(&memEntry{key: key, rec: rec})
	for c.ll.Len() > c.max {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.m, el.Value.(*memEntry).key)
	}
}

// Len reports the number of cached records.
func (c *Memory) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0
	}
	return c.ll.Len()
}

// Close empties the tier; subsequent Gets miss and Puts are dropped.
func (c *Memory) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	c.ll.Init()
	c.m = map[string]*list.Element{}
	return nil
}

// Stats implements StatsReporter. A memory tier never rejects: it
// either holds the record it was given or has evicted it entirely.
func (c *Memory) Stats() Stats { return c.counter.snapshot() }
