package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// The verified-on-load contract, exercised per corruption class: a
// damaged record is skipped and counted in Stats().Rejects — never
// served — and every surviving record is served byte-identically.

// writeCorpus fills a fresh store with n records and returns the
// directory, the expected bodies, and the per-record (offset, size)
// layout of the closed log, oldest first.
func writeCorpus(t *testing.T, n int) (dir string, want map[string]Record, layout []diskEntry) {
	t.Helper()
	dir = t.TempDir()
	d, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	want = map[string]Record{}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("corpus-key-%02d", i)
		r := Record{Status: 200, Machine: "cydra",
			Body: []byte(fmt.Sprintf(`{"loop":"loop%02d","ii":%d,"times":[0,1,2]}`, i, i+2))}
		want[k] = r
		d.Put(k, r)
	}
	layout = make([]diskEntry, 0, n)
	for _, k := range d.keysBySeq() {
		layout = append(layout, d.index[k])
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, want, layout
}

// corrupt applies f to the log bytes and writes them back.
func corrupt(t *testing.T, dir string, f func(b []byte) []byte) {
	t.Helper()
	path := filepath.Join(dir, logName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, f(b), 0o644); err != nil {
		t.Fatal(err)
	}
}

// checkSurvivors opens the store and asserts that exactly the keys in
// want survive, byte-identical, and that wantRejects records were
// counted as rejected on load.
func checkSurvivors(t *testing.T, dir string, want map[string]Record, lost []string, wantRejects int64) {
	t.Helper()
	d, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	loaded, rejected := d.LoadReport()
	if rejected != wantRejects {
		t.Fatalf("rejected = %d, want %d", rejected, wantRejects)
	}
	if loaded != len(want)-len(lost) {
		t.Fatalf("loaded = %d, want %d", loaded, len(want)-len(lost))
	}
	lostSet := map[string]bool{}
	for _, k := range lost {
		lostSet[k] = true
	}
	for k, w := range want {
		got, ok := d.Get(k)
		if lostSet[k] {
			if ok {
				t.Fatalf("%s: corrupted record was served", k)
			}
			continue
		}
		if !ok {
			t.Fatalf("%s: surviving record missed", k)
		}
		if got.Status != w.Status || got.Machine != w.Machine || !bytes.Equal(got.Body, w.Body) {
			t.Fatalf("%s: served bytes differ: got %+v, want %+v", k, got, w)
		}
	}
}

func TestCorruptTruncatedTail(t *testing.T) {
	dir, want, layout := writeCorpus(t, 8)
	last := layout[len(layout)-1]
	corrupt(t, dir, func(b []byte) []byte {
		return b[:last.off+last.size/2] // half the final record survives
	})
	checkSurvivors(t, dir, want, []string{"corpus-key-07"}, 1)
}

func TestCorruptBitFlippedBody(t *testing.T) {
	dir, want, layout := writeCorpus(t, 8)
	victim := layout[3]
	corrupt(t, dir, func(b []byte) []byte {
		b[victim.off+victim.size-1] ^= 0x40 // flip one bit in the body
		return b
	})
	checkSurvivors(t, dir, want, []string{"corpus-key-03"}, 1)
}

func TestCorruptWrongVersionHeader(t *testing.T) {
	dir, want, layout := writeCorpus(t, 8)
	victim := layout[5]
	corrupt(t, dir, func(b []byte) []byte {
		binary.LittleEndian.PutUint16(b[victim.off+4:], diskVersion+7)
		return b
	})
	checkSurvivors(t, dir, want, []string{"corpus-key-05"}, 1)
}

// TestCorruptHeaderResync smashes a whole header (magic included): the
// loader must resynchronize on the next record's magic marker instead
// of abandoning the rest of the log.
func TestCorruptHeaderResync(t *testing.T) {
	dir, want, layout := writeCorpus(t, 8)
	victim := layout[2]
	corrupt(t, dir, func(b []byte) []byte {
		for i := int64(0); i < headerSize; i++ {
			b[victim.off+i] = 0xAA
		}
		return b
	})
	checkSurvivors(t, dir, want, []string{"corpus-key-02"}, 1)
}

// TestCorruptAfterOpen flips a byte after the store is open: the
// per-read verification catches it, the record becomes a miss, and the
// reject is counted.
func TestCorruptAfterOpen(t *testing.T) {
	dir, want, _ := writeCorpus(t, 4)
	d, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	e := d.index["corpus-key-01"]
	// Overwrite one body byte in place through a second descriptor.
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, e.off+e.size-1); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, ok := d.Get("corpus-key-01"); ok {
		t.Fatal("corrupted record was served after open")
	}
	if st := d.Stats(); st.Rejects != 1 {
		t.Fatalf("rejects = %d, want 1", st.Rejects)
	}
	// The intact neighbors still serve byte-identically.
	for _, k := range []string{"corpus-key-00", "corpus-key-02", "corpus-key-03"} {
		got, ok := d.Get(k)
		if !ok || !bytes.Equal(got.Body, want[k].Body) {
			t.Fatalf("%s: intact record lost", k)
		}
	}
}
