package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// Disk is the persistent tier: an append-only log of checksummed
// records in a single file, with an in-memory index from key to file
// offset. It is crash-safe by construction rather than by fsync
// discipline: the log is only ever appended to (compaction writes a
// fresh file and renames it into place), and every record carries a
// CRC over its header fields and payload, so a torn or bit-flipped
// record is detected — on open and again on every read — counted in
// Stats.Rejects, and treated as a miss. The store can lose the tail
// written during a crash; it can never serve wrong bytes.
//
// Record layout (little-endian), defined by diskVersion:
//
//	magic   [4]byte "lsrc"
//	version uint16
//	status  uint16   HTTP status the body was served with
//	keyLen  uint16
//	machLen uint16
//	bodyLen uint32
//	crc     uint32   CRC-32C over version..bodyLen, key, machine, body
//	key     [keyLen]byte
//	machine [machLen]byte
//	body    [bodyLen]byte
//
// Re-Putting a key appends a fresh record that supersedes the old one
// (last write wins on load, matching append order). When the log
// exceeds MaxBytes the live records are compacted into a new file,
// oldest records evicted first if compaction alone is not enough.
type Disk struct {
	mu       sync.Mutex
	path     string
	f        *os.File
	size     int64 // bytes in the log file
	live     int64 // bytes of the records the index points at
	maxBytes int64
	seq      int64 // insertion order stamp, for eviction and compaction
	index    map[string]diskEntry
	closed   bool
	counter  counters

	loadRejects int64 // rejects counted while opening (subset of counter.rejects)
	loaded      int   // records surviving verification at open
}

type diskEntry struct {
	off     int64
	size    int64 // whole record, header included
	seq     int64
	refined bool
}

const (
	diskVersion = 1
	headerSize  = 20
	// refinedBit marks a record upgraded by the background refiner. It
	// rides in the high bit of the on-disk status field (real HTTP
	// statuses stay below 600), so the layout and version are unchanged
	// and logs written before the refiner existed load as unrefined.
	refinedBit     = 0x8000
	maxKeyBytes    = 1 << 10
	maxMachBytes   = 1 << 10
	maxRecordBytes = 64 << 20
	// logName is the log file inside the store directory.
	logName = "lsmsd.store"
)

var (
	diskMagic = [4]byte{'l', 's', 'r', 'c'}
	castTable = crc32.MakeTable(crc32.Castagnoli)
)

// Open opens (creating if needed) the disk tier rooted at dir. Every
// record in the existing log is verified before it is indexed: a
// record whose checksum does not match, whose header names an
// unsupported version, or which is cut off by the end of the file is
// skipped and counted in Stats().Rejects — the surviving records serve
// byte-identically, the damaged ones miss. maxBytes > 0 bounds the log
// size via compaction and oldest-first eviction; 0 means unbounded.
func Open(dir string, maxBytes int64) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	d := &Disk{
		path:     filepath.Join(dir, logName),
		maxBytes: maxBytes,
		index:    make(map[string]diskEntry),
	}
	f, err := os.OpenFile(d.path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	d.f = f
	if err := d.load(); err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

// load scans the log, verifying every record and indexing the last
// (live) record of each key. Framing is trusted as far as the header
// sanity checks allow: a record with a bad checksum or an unsupported
// version but sane lengths is skipped exactly; a record whose header
// is itself implausible triggers a byte-wise rescan for the next magic
// marker, so one corrupt header cannot take out the rest of the log.
func (d *Disk) load() error {
	buf, err := os.ReadFile(d.path)
	if err != nil {
		return fmt.Errorf("store: reading log: %w", err)
	}
	d.size = int64(len(buf))
	off := 0
	reject := func() { d.counter.rejects.Add(1); d.loadRejects++ }
	for off < len(buf) {
		rec := buf[off:]
		if len(rec) < headerSize {
			reject() // truncated tail: a crash mid-append
			break
		}
		if [4]byte(rec[:4]) != diskMagic {
			// Corrupt header: resync on the next magic marker.
			reject()
			off += nextMagic(rec[1:]) + 1
			continue
		}
		version := binary.LittleEndian.Uint16(rec[4:6])
		keyLen := int(binary.LittleEndian.Uint16(rec[8:10]))
		machLen := int(binary.LittleEndian.Uint16(rec[10:12]))
		bodyLen := int(binary.LittleEndian.Uint32(rec[12:16]))
		crc := binary.LittleEndian.Uint32(rec[16:20])
		size := headerSize + keyLen + machLen + bodyLen
		if keyLen == 0 || keyLen > maxKeyBytes || machLen > maxMachBytes ||
			bodyLen > maxRecordBytes {
			// Implausible lengths: the header itself is damaged, so its
			// framing cannot be trusted either. Resync.
			reject()
			off += nextMagic(rec[1:]) + 1
			continue
		}
		if size > len(rec) {
			reject() // truncated tail record
			break
		}
		ok := version == diskVersion &&
			crc == recordCRC(rec[4:16], rec[headerSize:size])
		if !ok {
			// Wrong version or checksum mismatch: framing is sane, so
			// skip this record exactly and keep the rest of the log.
			reject()
			off += size
			continue
		}
		key := string(rec[headerSize : headerSize+keyLen])
		d.seq++
		if old, dup := d.index[key]; dup {
			d.live -= old.size
		}
		refined := binary.LittleEndian.Uint16(rec[6:8])&refinedBit != 0
		d.index[key] = diskEntry{off: int64(off), size: int64(size), seq: d.seq, refined: refined}
		d.live += int64(size)
		off += size
	}
	if int64(off) < d.size {
		// The scan stopped inside a torn tail (a crash mid-append).
		// Truncate it away so new appends are contiguous with the last
		// parseable record instead of being stranded behind garbage.
		if err := d.f.Truncate(int64(off)); err != nil {
			return fmt.Errorf("store: truncating torn tail: %w", err)
		}
		d.size = int64(off)
	}
	d.loaded = len(d.index)
	return nil
}

// nextMagic returns the offset of the next magic marker in b, or
// len(b) when none remains.
func nextMagic(b []byte) int {
	for i := 0; i+4 <= len(b); i++ {
		if [4]byte(b[i:i+4]) == diskMagic {
			return i
		}
	}
	return len(b)
}

// recordCRC computes the per-record checksum: the header fields after
// the magic (version through bodyLen) plus the payload.
func recordCRC(header, payload []byte) uint32 {
	crc := crc32.Update(0, castTable, header)
	return crc32.Update(crc, castTable, payload)
}

// Get returns the record stored under key. The checksum is re-verified
// on every read — file corruption after open is detected here — and a
// record that fails verification is dropped from the index, counted in
// Stats().Rejects, and reported as a miss.
func (d *Disk) Get(key string) (Record, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		d.counter.misses.Add(1)
		return Record{}, false
	}
	e, ok := d.index[key]
	if !ok {
		d.counter.misses.Add(1)
		return Record{}, false
	}
	rec, ok := d.readAt(e)
	if !ok || string(rec.key) != key {
		d.counter.rejects.Add(1)
		d.counter.misses.Add(1)
		delete(d.index, key)
		d.live -= e.size
		return Record{}, false
	}
	d.counter.hits.Add(1)
	return Record{Status: rec.status, Machine: string(rec.machine), Body: rec.body, Refined: rec.refined}, true
}

// rawRecord is one verified on-disk record, borrowed or copied.
type rawRecord struct {
	status  int
	refined bool
	key     []byte
	machine []byte
	body    []byte
}

// readAt reads and verifies the record at e. The returned slices are
// freshly allocated (they escape into responses and upper tiers).
func (d *Disk) readAt(e diskEntry) (rawRecord, bool) {
	if e.size < headerSize || e.size > maxRecordBytes+headerSize+maxKeyBytes+maxMachBytes {
		return rawRecord{}, false
	}
	buf := make([]byte, e.size)
	if _, err := d.f.ReadAt(buf, e.off); err != nil {
		return rawRecord{}, false
	}
	if [4]byte(buf[:4]) != diskMagic ||
		binary.LittleEndian.Uint16(buf[4:6]) != diskVersion {
		return rawRecord{}, false
	}
	keyLen := int(binary.LittleEndian.Uint16(buf[8:10]))
	machLen := int(binary.LittleEndian.Uint16(buf[10:12]))
	bodyLen := int(binary.LittleEndian.Uint32(buf[12:16]))
	if headerSize+keyLen+machLen+bodyLen != int(e.size) {
		return rawRecord{}, false
	}
	if binary.LittleEndian.Uint32(buf[16:20]) != recordCRC(buf[4:16], buf[headerSize:]) {
		return rawRecord{}, false
	}
	p := buf[headerSize:]
	status := binary.LittleEndian.Uint16(buf[6:8])
	return rawRecord{
		status:  int(status &^ refinedBit),
		refined: status&refinedBit != 0,
		key:     p[:keyLen],
		machine: p[keyLen : keyLen+machLen],
		body:    p[keyLen+machLen:],
	}, true
}

// Put appends a record for key. An identical live record is left in
// place (idempotent re-Puts cost nothing); otherwise the new record
// supersedes any previous one for the key, and the log is compacted if
// it has outgrown MaxBytes.
func (d *Disk) Put(key string, rec Record) {
	if len(key) == 0 || len(key) > maxKeyBytes || len(rec.Machine) > maxMachBytes ||
		len(rec.Body) > maxRecordBytes {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	if e, ok := d.index[key]; ok && e.refined == rec.Refined {
		// The hash is a content address of deterministic work: a live
		// record for the key with the same refinement generation already
		// holds these bytes. A differing flag is the refiner superseding
		// (or a promotion racing an upgrade) — append so last write wins.
		return
	}
	if err := d.append(key, rec); err != nil {
		// An append that failed midway leaves a torn record that the
		// next load (and any Get) rejects by checksum; resize the
		// bookkeeping to what the file claims and carry on serving.
		d.counter.rejects.Add(1)
		if st, serr := d.f.Stat(); serr == nil {
			d.size = st.Size()
		}
		return
	}
	d.maybeCompact()
}

// append marshals and writes one record at the end of the log and
// indexes it.
func (d *Disk) append(key string, rec Record) error {
	size := headerSize + len(key) + len(rec.Machine) + len(rec.Body)
	buf := make([]byte, size)
	copy(buf[:4], diskMagic[:])
	binary.LittleEndian.PutUint16(buf[4:6], diskVersion)
	status := uint16(rec.Status)
	if rec.Refined {
		status |= refinedBit
	}
	binary.LittleEndian.PutUint16(buf[6:8], status)
	binary.LittleEndian.PutUint16(buf[8:10], uint16(len(key)))
	binary.LittleEndian.PutUint16(buf[10:12], uint16(len(rec.Machine)))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(len(rec.Body)))
	p := buf[headerSize:]
	copy(p, key)
	copy(p[len(key):], rec.Machine)
	copy(p[len(key)+len(rec.Machine):], rec.Body)
	binary.LittleEndian.PutUint32(buf[16:20], recordCRC(buf[4:16], p))
	if _, err := d.f.WriteAt(buf, d.size); err != nil {
		return err
	}
	d.seq++
	if old, dup := d.index[key]; dup {
		d.live -= old.size
	}
	d.index[key] = diskEntry{off: d.size, size: int64(size), seq: d.seq, refined: rec.Refined}
	d.live += int64(size)
	d.size += int64(size)
	return nil
}

// maybeCompact rewrites the log when it has outgrown maxBytes,
// dropping superseded and damaged records; if the live set alone still
// exceeds the bound, the oldest records are evicted until it fits (at
// least one record is always kept). Called with d.mu held.
func (d *Disk) maybeCompact() {
	if d.maxBytes <= 0 || d.size <= d.maxBytes {
		return
	}
	// Oldest-first eviction plan over the live set.
	keys := d.keysBySeq()
	total := d.live
	evict := 0
	for evict < len(keys)-1 && total > d.maxBytes {
		total -= d.index[keys[evict]].size
		evict++
	}
	if err := d.compact(keys[evict:]); err != nil {
		// Compaction is an optimization: on failure keep serving from
		// the old (oversized) log rather than dropping records.
		return
	}
}

// keysBySeq returns the live keys oldest-first.
func (d *Disk) keysBySeq() []string {
	keys := make([]string, 0, len(d.index))
	for k := range d.index {
		keys = append(keys, k)
	}
	// Insertion sort by seq: compaction is rare and the live set small
	// enough that avoiding a sort.Slice closure is not worth it, but
	// determinism is — eviction order must not depend on map order.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && d.index[keys[j]].seq < d.index[keys[j-1]].seq; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// compact writes the records for keep (oldest-first, so relative age
// survives) into a fresh log and atomically replaces the current one.
// Called with d.mu held.
func (d *Disk) compact(keep []string) error {
	tmpPath := d.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer os.Remove(tmpPath) // no-op after a successful rename
	newIndex := make(map[string]diskEntry, len(keep))
	var off, live int64
	var seq int64
	for _, key := range keep {
		raw, ok := d.readAt(d.index[key])
		if !ok || string(raw.key) != key {
			d.counter.rejects.Add(1)
			continue
		}
		buf := make([]byte, d.index[key].size)
		if _, err := d.f.ReadAt(buf, d.index[key].off); err != nil {
			d.counter.rejects.Add(1)
			continue
		}
		if _, err := tmp.WriteAt(buf, off); err != nil {
			tmp.Close()
			return err
		}
		seq++
		newIndex[key] = diskEntry{off: off, size: int64(len(buf)), seq: seq}
		off += int64(len(buf))
		live += int64(len(buf))
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := os.Rename(tmpPath, d.path); err != nil {
		tmp.Close()
		return err
	}
	d.f.Close()
	d.f = tmp
	d.index = newIndex
	d.size, d.live, d.seq = off, live, seq
	return nil
}

// Len reports the number of live (verified-at-open, not since
// rejected) records.
func (d *Disk) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0
	}
	return len(d.index)
}

// Close syncs and closes the log. A closed tier misses on Get and
// drops every Put.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	if err := d.f.Sync(); err != nil {
		d.f.Close()
		return fmt.Errorf("store: sync: %w", err)
	}
	if err := d.f.Close(); err != nil {
		return fmt.Errorf("store: close: %w", err)
	}
	return nil
}

// Stats implements StatsReporter.
func (d *Disk) Stats() Stats { return d.counter.snapshot() }

// LoadReport describes what Open found: how many records survived
// verification and how many were rejected (skipped, counted, never
// served). lsmsd logs it at boot.
func (d *Disk) LoadReport() (loaded int, rejected int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.loaded, d.loadRejects
}

// SizeBytes reports the log file's current size (diagnostic).
func (d *Disk) SizeBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.size
}
