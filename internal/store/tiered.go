package store

import "errors"

// Tiered composes tiers front (fastest) to back (most durable) into
// one Tier. Get consults each tier in order and promotes a lower-tier
// hit into every tier above it, so a key served from disk once is
// served from memory after; Put writes through every tier; Len is the
// sum over tiers — the value Server.CacheLen reports.
type Tiered struct {
	tiers []Tier
}

// NewTiered builds the composition; nil tiers are skipped. An empty
// composition is valid: every Get misses and every Put is dropped.
func NewTiered(tiers ...Tier) *Tiered {
	t := &Tiered{}
	for _, tier := range tiers {
		if tier != nil {
			t.tiers = append(t.tiers, tier)
		}
	}
	return t
}

// Tiers returns the composed tiers, front first.
func (t *Tiered) Tiers() []Tier { return t.tiers }

// Get implements Tier.
func (t *Tiered) Get(key string) (Record, bool) {
	rec, _, ok := t.GetTier(key)
	return rec, ok
}

// GetTier is Get plus the index of the tier that answered (0 = front),
// so callers can label hits by depth — lsmsd's "hit" vs "hit-disk"
// response header and its hits-by-tier counters.
func (t *Tiered) GetTier(key string) (Record, int, bool) {
	for i, tier := range t.tiers {
		rec, ok := tier.Get(key)
		if !ok {
			continue
		}
		for j := 0; j < i; j++ {
			t.tiers[j].Put(key, rec)
		}
		return rec, i, true
	}
	return Record{}, -1, false
}

// Put writes the record through every tier.
func (t *Tiered) Put(key string, rec Record) {
	for _, tier := range t.tiers {
		tier.Put(key, rec)
	}
}

// Upgrade replaces the record under key in every tier, writing back to
// front — the durable tier first — so a concurrent GetTier promotion
// cannot resurrect the superseded record over the upgraded one in the
// back tiers: by the time the front tier serves the new record, the
// tiers a promotion copies from already hold it. (A promotion racing
// mid-upgrade can still briefly re-front the old record; the next Get
// after the upgrade completes re-promotes the new one — last write
// wins, and both versions are valid responses for the key.) lsmsd's
// refiner is the caller: same key, strictly better schedule in the
// body.
func (t *Tiered) Upgrade(key string, rec Record) {
	for i := len(t.tiers) - 1; i >= 0; i-- {
		t.tiers[i].Put(key, rec)
	}
}

// Len reports the total records over all tiers. A key resident in two
// tiers counts twice: the number reflects stored records, not distinct
// keys.
func (t *Tiered) Len() int {
	n := 0
	for _, tier := range t.tiers {
		n += tier.Len()
	}
	return n
}

// Close closes every tier, front to back, and joins their errors.
func (t *Tiered) Close() error {
	var errs []error
	for _, tier := range t.tiers {
		if err := tier.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
