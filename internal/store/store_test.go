package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func rec(status int, body string) Record {
	return Record{Status: status, Machine: "cydra", Body: []byte(body)}
}

func TestMemoryLRU(t *testing.T) {
	m := NewMemory(2)
	m.Put("a", rec(200, "A"))
	m.Put("b", rec(200, "B"))
	if _, ok := m.Get("a"); !ok {
		t.Fatal("a missing")
	}
	m.Put("c", rec(200, "C")) // evicts b (a was refreshed)
	if _, ok := m.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if got, ok := m.Get("a"); !ok || string(got.Body) != "A" {
		t.Fatalf("a = %q, %v", got.Body, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	st := m.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Rejects != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get("a"); ok || m.Len() != 0 {
		t.Fatal("closed tier must miss")
	}
}

func TestMemoryDisabled(t *testing.T) {
	m := NewMemory(0)
	m.Put("a", rec(200, "A"))
	if _, ok := m.Get("a"); ok {
		t.Fatal("disabled tier must miss")
	}
}

func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := Record{Status: 422, Machine: "cgra4", Body: []byte(`{"ok":false}`)}
	d.Put("k1", want)
	got, ok := d.Get("k1")
	if !ok || got.Status != want.Status || got.Machine != want.Machine || !bytes.Equal(got.Body, want.Body) {
		t.Fatalf("got %+v ok=%v, want %+v", got, ok, want)
	}
	if _, ok := d.Get("absent"); ok {
		t.Fatal("absent key must miss")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDiskPersistence is the restart story at the tier level: records
// Put before Close are served byte-identically by a fresh Open of the
// same directory.
func TestDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	bodies := map[string]Record{}
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("key-%02d", i)
		r := rec(200, fmt.Sprintf(`{"loop":"l%02d","ii":%d}`, i, i+3))
		bodies[k] = r
		d.Put(k, r)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if loaded, rejected := d2.LoadReport(); loaded != 20 || rejected != 0 {
		t.Fatalf("LoadReport = %d loaded, %d rejected; want 20, 0", loaded, rejected)
	}
	for k, want := range bodies {
		got, ok := d2.Get(k)
		if !ok || !bytes.Equal(got.Body, want.Body) || got.Status != want.Status {
			t.Fatalf("%s: got %+v ok=%v, want %+v", k, got, ok, want)
		}
	}
}

func TestDiskIdempotentPut(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.Put("k", rec(200, "body"))
	size := d.SizeBytes()
	d.Put("k", rec(200, "body")) // content-addressed: second Put is free
	if d.SizeBytes() != size {
		t.Fatalf("idempotent Put grew the log: %d -> %d", size, d.SizeBytes())
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
}

func TestDiskCompaction(t *testing.T) {
	dir := t.TempDir()
	// Each record is ~20+5+5+100 bytes; cap the log so ~8 fit.
	d, err := Open(dir, 1024)
	if err != nil {
		t.Fatal(err)
	}
	body := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 40; i++ {
		d.Put(fmt.Sprintf("ck-%02d", i), Record{Status: 200, Machine: "cydra", Body: body})
	}
	if d.SizeBytes() > 1024 {
		t.Fatalf("log size %d exceeds the 1024 bound after compaction", d.SizeBytes())
	}
	// The newest record always survives.
	if got, ok := d.Get("ck-39"); !ok || !bytes.Equal(got.Body, body) {
		t.Fatalf("newest record lost: ok=%v", ok)
	}
	// The oldest records were evicted.
	if _, ok := d.Get("ck-00"); ok {
		t.Fatal("oldest record should have been evicted")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Compaction preserved a loadable log.
	d2, err := Open(dir, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if _, rejected := d2.LoadReport(); rejected != 0 {
		t.Fatalf("compacted log rejected %d records on reload", rejected)
	}
	if got, ok := d2.Get("ck-39"); !ok || !bytes.Equal(got.Body, body) {
		t.Fatal("newest record lost across reopen")
	}
}

func TestTieredPromotion(t *testing.T) {
	dir := t.TempDir()
	disk, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemory(8)
	tt := NewTiered(mem, disk)
	defer tt.Close()

	disk.Put("deep", rec(200, "from-disk"))
	got, tier, ok := tt.GetTier("deep")
	if !ok || tier != 1 || string(got.Body) != "from-disk" {
		t.Fatalf("GetTier = %+v tier=%d ok=%v", got, tier, ok)
	}
	// The hit was promoted: now it answers from the memory tier.
	if _, tier, ok := tt.GetTier("deep"); !ok || tier != 0 {
		t.Fatalf("promotion failed: tier=%d ok=%v", tier, ok)
	}

	tt.Put("both", rec(200, "write-through"))
	if _, ok := mem.Get("both"); !ok {
		t.Fatal("write-through missed the memory tier")
	}
	if _, ok := disk.Get("both"); !ok {
		t.Fatal("write-through missed the disk tier")
	}
	if tt.Len() != mem.Len()+disk.Len() {
		t.Fatalf("Len = %d, want sum %d", tt.Len(), mem.Len()+disk.Len())
	}
}

func TestTieredEmpty(t *testing.T) {
	tt := NewTiered(nil, nil)
	tt.Put("k", rec(200, "x"))
	if _, ok := tt.Get("k"); ok {
		t.Fatal("empty composition must miss")
	}
	if tt.Len() != 0 || tt.Close() != nil {
		t.Fatal("empty composition misbehaves")
	}
}

// TestDiskCrashTornAppend simulates a crash mid-append: the log ends
// with a torn record, which the next Open rejects while serving every
// record before it.
func TestDiskCrashTornAppend(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	d.Put("good", rec(200, "good-bytes"))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, logName)
	// Append half a record's worth of garbage — a torn tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(append(diskMagic[:], bytes.Repeat([]byte{0x7}, 9)...)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	d2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if loaded, rejected := d2.LoadReport(); loaded != 1 || rejected != 1 {
		t.Fatalf("LoadReport = %d loaded, %d rejected; want 1, 1", loaded, rejected)
	}
	if got, ok := d2.Get("good"); !ok || string(got.Body) != "good-bytes" {
		t.Fatal("record before the torn tail must survive")
	}
	// The torn tail was truncated away, so new appends land contiguous
	// with the last good record and survive another restart.
	d2.Put("after", rec(200, "after-bytes"))
	if got, ok := d2.Get("after"); !ok || string(got.Body) != "after-bytes" {
		t.Fatal("append after torn tail failed")
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	d3, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if loaded, rejected := d3.LoadReport(); loaded != 2 || rejected != 0 {
		t.Fatalf("third generation LoadReport = %d loaded, %d rejected; want 2, 0", loaded, rejected)
	}
}
