// Package lifetime measures the register pressure of a modulo schedule
// (Section 3.2 of the paper).
//
// A value defined at cycle t_d and last read at cycle t_u by an operation
// ω iterations later is live over [t_d, t_u + ω·II): the register is
// reserved when the defining operation issues and may not be overwritten
// until the last use issues (Figure 3). Because the schedule repeats
// every II cycles, lifetimes from adjacent iterations overlap; wrapping
// the first iteration's lifetimes around a vector of II columns gives the
// LiveVector (Figure 4), whose maximum entry, MaxLive, bounds the
// schedule's register pressure from below — and, per Rau et al. (PLDI
// 1992), rotating-register allocation almost always achieves it, so this
// repository (like the paper) uses MaxLive as the schedule's pressure.
package lifetime

import (
	"fmt"

	"repro/internal/ir"
)

// Range is the live interval of one value in one iteration, in absolute
// cycles of that iteration's schedule: [Start, End).
type Range struct {
	Val   ir.ValueID
	Start int
	End   int
}

// Len returns the lifetime length in cycles.
func (r Range) Len() int { return r.End - r.Start }

// Ranges computes the live interval of every loop-variant value in the
// given register file under the schedule. A value's interval starts at
// its (earliest) def's issue cycle and ends at the latest use, counting a
// use ω iterations later at its issue cycle plus ω·II; a value with no
// in-loop reader is live for its defining latency (it still occupies a
// register until written back).
func Ranges(l *ir.Loop, s *ir.Schedule, file ir.RegFile) []Range {
	return rangesInto(l, s, file, nil)
}

// rangesInto is Ranges appending into buf (pass nil to allocate).
func rangesInto(l *ir.Loop, s *ir.Schedule, file ir.RegFile, buf []Range) []Range {
	out := buf
	for _, v := range l.Values {
		if v.File != file || !v.IsVariant() {
			continue
		}
		r, ok := rangeOf(l, s, v)
		if ok {
			out = append(out, r)
		}
	}
	return out
}

// Scratch is pooled measurement storage: the range list and the live
// vector keep their capacity across compiles. It holds no references to
// loop or schedule data, so pooled reuse needs no reset.
type Scratch struct {
	ranges []Range
	vec    []int
}

// MeasureIn is Measure using pooled scratch buffers.
func MeasureIn(l *ir.Loop, s *ir.Schedule, file ir.RegFile, scr *Scratch) Pressure {
	if scr == nil {
		return Measure(l, s, file)
	}
	scr.ranges = rangesInto(l, s, file, scr.ranges[:0])
	if cap(scr.vec) >= s.II {
		scr.vec = scr.vec[:s.II]
		for i := range scr.vec {
			scr.vec[i] = 0
		}
	} else {
		scr.vec = make([]int, s.II)
	}
	liveVectorInto(scr.ranges, s.II, scr.vec)
	return pressureOf(scr.vec, s.II)
}

// ICRUsageIn is ICRUsage using pooled scratch buffers.
func ICRUsageIn(l *ir.Loop, s *ir.Schedule, scr *Scratch) int {
	return MeasureIn(l, s, ir.ICR, scr).MaxLive + s.Stages()
}

func rangeOf(l *ir.Loop, s *ir.Schedule, v *ir.Value) (Range, bool) {
	start := -1
	lat := 0
	for _, d := range v.Defs {
		t := s.Time[d]
		if t == ir.Unplaced {
			return Range{}, false
		}
		if start == -1 || t < start {
			start = t
		}
		if dl := l.Mach.Latency(l.Op(d).Opcode); dl > lat {
			lat = dl
		}
	}
	end := start + lat
	for _, op := range l.Ops {
		t := s.Time[op.ID]
		if t == ir.Unplaced {
			continue
		}
		// Walk Args and the predicate directly rather than through
		// op.Reads(), which copies the operand slice for predicated ops
		// — this loop runs per (value, op) pair on the compile hot path.
		for _, rd := range op.Args {
			if rd.Val != v.ID {
				continue
			}
			if u := t + rd.Omega*s.II; u > end {
				end = u
			}
		}
		if rd := op.Pred; rd != nil && rd.Val == v.ID {
			if u := t + rd.Omega*s.II; u > end {
				end = u
			}
		}
	}
	return Range{Val: v.ID, Start: start, End: end}, true
}

// LiveVector wraps the lifetimes around a vector of II columns: entry c
// counts the values live at cycles congruent to c modulo II (Figure 4).
func LiveVector(ranges []Range, ii int) []int {
	vec := make([]int, ii)
	liveVectorInto(ranges, ii, vec)
	return vec
}

// liveVectorInto accumulates the live vector into a zeroed vec of len ii.
func liveVectorInto(ranges []Range, ii int, vec []int) {
	for _, r := range ranges {
		n := r.Len()
		if n <= 0 {
			continue
		}
		full := n / ii
		for c := range vec {
			vec[c] += full
		}
		for i := 0; i < n%ii; i++ {
			vec[(r.Start+full*ii+i)%ii]++
		}
	}
}

// Pressure summarizes a schedule's register pressure for one file.
type Pressure struct {
	MaxLive int     // max entry of the LiveVector: the paper's pressure measure
	AvgLive float64 // total lifetime length / II
}

// Measure computes MaxLive and AvgLive for the given file.
func Measure(l *ir.Loop, s *ir.Schedule, file ir.RegFile) Pressure {
	ranges := Ranges(l, s, file)
	vec := LiveVector(ranges, s.II)
	return pressureOf(vec, s.II)
}

func pressureOf(vec []int, ii int) Pressure {
	max, sum := 0, 0
	for _, c := range vec {
		sum += c
		if c > max {
			max = c
		}
	}
	return Pressure{MaxLive: max, AvgLive: float64(sum) / float64(ii)}
}

// MaxLive is shorthand for Measure(...).MaxLive on the RR file, the
// paper's headline pressure number.
func MaxLive(l *ir.Loop, s *ir.Schedule) int {
	return Measure(l, s, ir.RR).MaxLive
}

// ICRUsage returns the ICR predicate pressure of a schedule (Figure 8):
// the peak number of live predicate values plus one iteration-control
// (stage) predicate per kernel stage, since the kernel-only code schema
// guards each stage's operations with a rotating stage predicate.
func ICRUsage(l *ir.Loop, s *ir.Schedule) int {
	return Measure(l, s, ir.ICR).MaxLive + s.Stages()
}

func (p Pressure) String() string {
	return fmt.Sprintf("MaxLive=%d AvgLive=%.2f", p.MaxLive, p.AvgLive)
}
