package lifetime

import "repro/internal/ir"

// Predicate-aware pressure. Section 3.2 of the paper: "Operations that
// execute under mutually exclusive predicates may use the same
// destination register without interfering with each other.
// Unfortunately, the compiler does not perform the requisite analysis.
// Therefore the compiler allocates registers, and computes lower bounds,
// as if all predicates may be true." This file implements that missing
// analysis — to quantify what it would have saved, not to change the
// paper-faithful MaxLive metric.
//
// Two values may share a register when every def of one executes under
// the complementary sense of the same guard as every def of the other:
// at runtime at most one of them materializes per iteration. The
// predicate-aware MaxLive counts, per LiveVector column, live values
// minus a maximum matching of complementary live pairs (greedy; the
// conflict structure is bipartite per guard, so greedy is exact per
// predicate).

// guardOf returns the (predicate value, sense) a value's defs all share,
// or ok=false when the value has an unguarded def or mixed guards.
func guardOf(l *ir.Loop, v *ir.Value) (ir.ValueID, bool, bool) {
	var pv ir.ValueID = ir.None
	neg := false
	for i, d := range v.Defs {
		op := l.Op(d)
		if op.Pred == nil {
			return ir.None, false, false
		}
		if i == 0 {
			pv, neg = op.Pred.Val, op.PredNeg
		} else if op.Pred.Val != pv || op.PredNeg != neg {
			return ir.None, false, false
		}
	}
	if pv == ir.None {
		return ir.None, false, false
	}
	return pv, neg, true
}

// MeasurePredAware computes MaxLive with complementary-predicate
// sharing: per column, each (guard, sense) pair contributes
// max(#true-side, #false-side) instead of their sum.
func MeasurePredAware(l *ir.Loop, s *ir.Schedule, file ir.RegFile) Pressure {
	ranges := Ranges(l, s, file)

	type guard struct {
		p   ir.ValueID
		neg bool
	}
	guards := map[ir.ValueID]guard{}
	guarded := map[ir.ValueID]bool{}
	for _, r := range ranges {
		v := l.Value(r.Val)
		if p, neg, ok := guardOf(l, v); ok {
			guards[r.Val] = guard{p, neg}
			guarded[r.Val] = true
		}
	}

	// Per column: sum each value's wrap-around multiplicity (exactly the
	// LiveVector contributions); for guarded values, bucket by
	// (predicate, sense) and credit back min(true, false) per predicate.
	cols := make([]int, s.II)
	type bucket struct{ pos, negN int }
	for c := range cols {
		perPred := map[ir.ValueID]*bucket{}
		count := 0
		for _, r := range ranges {
			k := columnContrib(r, c, s.II)
			if k == 0 {
				continue
			}
			count += k
			if g, ok := guards[r.Val]; ok {
				b := perPred[g.p]
				if b == nil {
					b = &bucket{}
					perPred[g.p] = b
				}
				if g.neg {
					b.negN += k
				} else {
					b.pos += k
				}
			}
		}
		saved := 0
		for _, b := range perPred {
			if b.pos < b.negN {
				saved += b.pos
			} else {
				saved += b.negN
			}
		}
		cols[c] = count - saved
	}
	max, sum := 0, 0
	for _, c := range cols {
		sum += c
		if c > max {
			max = c
		}
	}
	return Pressure{MaxLive: max, AvgLive: float64(sum) / float64(s.II)}
}

// columnContrib returns how many instances of the range are live at
// cycles ≡ c (mod ii) — the range's LiveVector contribution.
func columnContrib(r Range, c, ii int) int {
	n := r.Len()
	if n <= 0 {
		return 0
	}
	k := n / ii
	for j := 0; j < n%ii; j++ {
		if (r.Start+k*ii+j)%ii == c {
			k++
			break
		}
	}
	return k
}
