package lifetime

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fixture"
	"repro/internal/ir"
	"repro/internal/machine"
)

// Reproduce the paper's hand-worked example exactly (Figures 3 and 4):
// with the x-add at cycle 0 and the y-add at cycle 1 at II = 2, x(i) is
// live over [0,5), y(i) over [1,4), and the LiveVector is ⟨4,4⟩.
func TestPaperFigure34(t *testing.T) {
	l := fixture.SampleCore(machine.Cydra())
	s := ir.NewSchedule(2, len(l.Ops))
	s.Time[0] = 0 // x-add
	s.Time[1] = 1 // y-add

	ranges := Ranges(l, s, ir.RR)
	if len(ranges) != 2 {
		t.Fatalf("want 2 RR lifetimes, got %d", len(ranges))
	}
	byVal := map[ir.ValueID]Range{}
	for _, r := range ranges {
		byVal[r.Val] = r
	}
	x, y := byVal[0], byVal[1]
	if x.Start != 0 || x.End != 5 {
		t.Errorf("x lifetime = [%d,%d), want [0,5)", x.Start, x.End)
	}
	if y.Start != 1 || y.End != 4 {
		t.Errorf("y lifetime = [%d,%d), want [1,4)", y.Start, y.End)
	}

	vec := LiveVector(ranges, 2)
	if vec[0] != 4 || vec[1] != 4 {
		t.Errorf("LiveVector = %v, want [4 4]", vec)
	}
	p := Measure(l, s, ir.RR)
	if p.MaxLive != 4 {
		t.Errorf("MaxLive = %d, want 4", p.MaxLive)
	}
	if p.AvgLive != 4 {
		t.Errorf("AvgLive = %v, want 4", p.AvgLive)
	}
}

// The paper notes an optimal allocation uses four rotating registers for
// the sample loop; swapping the two adds' cycles must keep MaxLive ≥ the
// average, and the average equals total lifetime / II regardless of
// placement shifts within the same lifetimes.
func TestMaxLiveAtLeastCeilAvg(t *testing.T) {
	l := fixture.SampleCore(machine.Cydra())
	for t0 := 0; t0 < 4; t0++ {
		for t1 := 0; t1 < 4; t1++ {
			s := ir.NewSchedule(2, len(l.Ops))
			s.Time[0], s.Time[1] = t0, t1
			p := Measure(l, s, ir.RR)
			if float64(p.MaxLive) < p.AvgLive {
				t.Errorf("t0=%d t1=%d: MaxLive %d < AvgLive %v", t0, t1, p.MaxLive, p.AvgLive)
			}
		}
	}
}

func TestNoReaderValueLiveForLatency(t *testing.T) {
	m := machine.Cydra()
	l := ir.NewLoop("noreader", m)
	p := l.NewValue("p", ir.RR, ir.Addr)
	v := l.NewValue("v", ir.RR, ir.Float)
	l.NewOp(machine.Load, []ir.Operand{{Val: p.ID, Omega: 1}}, v.ID)
	one := l.Const("one", ir.Addr, ir.IntS(1))
	l.NewOp(machine.AAdd, []ir.Operand{{Val: p.ID, Omega: 1}, {Val: one.ID}}, p.ID)
	l.MustFinalize()
	s := ir.NewSchedule(1, len(l.Ops))
	s.Time[0], s.Time[1] = 0, 0
	for _, r := range Ranges(l, s, ir.RR) {
		if r.Val == v.ID && r.Len() != 13 {
			t.Errorf("unread load result live %d cycles, want its 13-cycle latency", r.Len())
		}
	}
}

// Property: for any interval set and II, sum(LiveVector) equals the total
// lifetime length, and MaxLive ≥ ⌈total/II⌉ — wrapping never loses or
// invents live cycles.
func TestLiveVectorConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ii := 1 + rng.Intn(16)
		nr := rng.Intn(12)
		total := 0
		ranges := make([]Range, nr)
		for i := range ranges {
			start := rng.Intn(40)
			length := rng.Intn(60)
			ranges[i] = Range{Val: ir.ValueID(i), Start: start, End: start + length}
			total += length
		}
		vec := LiveVector(ranges, ii)
		sum, max := 0, 0
		for _, c := range vec {
			sum += c
			if c > max {
				max = c
			}
		}
		if sum != total {
			return false
		}
		return max >= (total+ii-1)/ii || total == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestICRUsageCountsStages(t *testing.T) {
	l := fixture.Conditional(machine.Cydra())
	s := ir.NewSchedule(2, len(l.Ops))
	// Lay out ops sequentially two per cycle-ish; exact times irrelevant,
	// only that stages = ceil(len/II) enter the ICR usage.
	for i := range s.Time {
		s.Time[i] = i
	}
	u := ICRUsage(l, s)
	if u < s.Stages() {
		t.Errorf("ICR usage %d must include %d stage predicates", u, s.Stages())
	}
}

func TestUnplacedValueSkipped(t *testing.T) {
	l := fixture.SampleCore(machine.Cydra())
	s := ir.NewSchedule(2, len(l.Ops))
	s.Time[0] = 0 // y-add unplaced
	if got := len(Ranges(l, s, ir.RR)); got != 1 {
		t.Errorf("partial schedule should yield 1 complete lifetime, got %d", got)
	}
}

// Predicate-aware sharing (the analysis the paper's compiler lacked):
// the conditional fixture's two multiply results execute under
// complementary senses of one compare and define the same merge value —
// but a variant with two *distinct* merge targets shows the saving.
func TestMeasurePredAware(t *testing.T) {
	m := machine.Cydra()
	l := ir.NewLoop("predshare", m)
	p := l.NewValue("p", ir.ICR, ir.Pred)
	a := l.NewValue("a", ir.RR, ir.Float)
	t1 := l.NewValue("t1", ir.RR, ir.Float)
	t2 := l.NewValue("t2", ir.RR, ir.Float)
	out := l.NewValue("out", ir.RR, ir.Float)
	l.NewOp(machine.FAdd, []ir.Operand{{Val: a.ID, Omega: 1}, {Val: a.ID, Omega: 1}}, a.ID)
	l.NewOp(machine.FCmpGT, []ir.Operand{{Val: a.ID}, {Val: a.ID}}, p.ID)
	d1 := l.NewOp(machine.FMul, []ir.Operand{{Val: a.ID}, {Val: a.ID}}, t1.ID)
	d1.Pred = &ir.Operand{Val: p.ID}
	d2 := l.NewOp(machine.FMul, []ir.Operand{{Val: a.ID}, {Val: a.ID}}, t2.ID)
	d2.Pred = &ir.Operand{Val: p.ID}
	d2.PredNeg = true
	// A single consumer reads both sides (pressure analysis only; this
	// schedule is never executed).
	l.NewOp(machine.FAdd, []ir.Operand{{Val: t1.ID}, {Val: t2.ID}}, out.ID)
	l.MustFinalize()

	// Peak column holds exactly {a, t1, t2}: the complementary pair
	// shares, so aware pressure drops from 3 to 2.
	s := ir.NewSchedule(7, len(l.Ops))
	copy(s.Time, []int{0, 1, 2, 3, 5})
	plain := Measure(l, s, ir.RR)
	aware := MeasurePredAware(l, s, ir.RR)
	if aware.MaxLive >= plain.MaxLive {
		t.Errorf("predicate-aware MaxLive %d should undercut plain %d (t1/t2 are complementary)",
			aware.MaxLive, plain.MaxLive)
	}
	if aware.MaxLive < 1 {
		t.Errorf("degenerate aware pressure %d", aware.MaxLive)
	}
}

// Without complementary defs the two measures agree.
func TestPredAwareNoOpOnUnpredicated(t *testing.T) {
	l := fixture.SampleCore(machine.Cydra())
	s := ir.NewSchedule(2, len(l.Ops))
	s.Time[0], s.Time[1] = 0, 1
	if a, b := Measure(l, s, ir.RR), MeasurePredAware(l, s, ir.RR); a.MaxLive != b.MaxLive {
		t.Errorf("unpredicated loop: %d vs %d", a.MaxLive, b.MaxLive)
	}
}
