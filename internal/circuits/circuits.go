// Package circuits enumerates the elementary circuits of a dependence
// graph and computes the recurrence-constrained lower bound on the
// initiation interval (Section 3.1 of the paper).
//
// A recurrence circuit with total latency L and total distance Ω forces
// II ≥ ⌈L/Ω⌉. RecMII is the maximum such ratio over all elementary
// circuits. The paper scans each circuit (citing Tiernan); this package
// uses Johnson's output-sensitive algorithm, which is equivalent but
// asymptotically better, and caps the census for pathological graphs.
// As a cross-checked alternative it also computes RecMII indirectly, as
// the smallest II at which the graph with arc costs latency − ω·II has no
// positive-cost circuit (the minimum cost-to-time ratio formulation the
// paper attributes to Lawler).
package circuits

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/ir"
)

// Circuit is one elementary dependence circuit.
type Circuit struct {
	Ops     []ir.OpID // in traversal order; Ops[0] is the smallest id
	Latency int       // total latency around the circuit
	Omega   int       // total dependence distance around the circuit
}

// RecMII returns ⌈Latency/Omega⌉, the II this circuit forces.
func (c *Circuit) RecMII() int {
	return (c.Latency + c.Omega - 1) / c.Omega
}

func (c *Circuit) String() string {
	return fmt.Sprintf("circuit(ops=%v L=%d Ω=%d → %d)", c.Ops, c.Latency, c.Omega, c.RecMII())
}

// ErrZeroOmega reports a dependence circuit with total distance zero: a
// combinational cycle no schedule can satisfy. Well-formed loop bodies
// never contain one.
var ErrZeroOmega = errors.New("circuits: dependence circuit with zero total omega")

// ErrTooMany reports that enumeration stopped at the cap; callers should
// fall back to RecMIIByRatio.
var ErrTooMany = errors.New("circuits: elementary circuit cap exceeded")

// DefaultCap bounds enumeration; graphs can contain exponentially many
// elementary circuits but, as the paper notes, real loop bodies have few.
const DefaultCap = 200000

type arc struct {
	to      int
	latency int
	omega   int
}

// Enumerate lists the elementary circuits of the loop's dependence graph,
// up to cap circuits (cap ≤ 0 means DefaultCap). Self-arcs (trivial
// recurrences) are included as single-op circuits.
func Enumerate(l *ir.Loop, cap int) ([]Circuit, error) {
	if cap <= 0 {
		cap = DefaultCap
	}
	n := len(l.Ops)
	// Deduplicate parallel arcs keeping each (not merging: different
	// (latency, omega) pairs along parallel arcs can both matter).
	adj := make([][]arc, n)
	for _, d := range l.Deps {
		adj[d.From] = append(adj[d.From], arc{int(d.To), d.Latency, d.Omega})
	}

	var out []Circuit
	// Trivial self-circuits first.
	for v := 0; v < n; v++ {
		for _, a := range adj[v] {
			if a.to == v {
				if a.omega == 0 {
					return nil, ErrZeroOmega
				}
				out = append(out, Circuit{Ops: []ir.OpID{ir.OpID(v)}, Latency: a.latency, Omega: a.omega})
			}
		}
	}

	// Johnson's algorithm over non-self arcs, rooted at increasing s;
	// only vertices ≥ s participate, so each circuit is found once, at
	// its smallest vertex.
	blocked := make([]bool, n)
	bsets := make([][]int, n)
	var stack []int
	var latSum, omgSum []int

	var unblock func(v int)
	unblock = func(v int) {
		blocked[v] = false
		for _, w := range bsets[v] {
			if blocked[w] {
				unblock(w)
			}
		}
		bsets[v] = bsets[v][:0]
	}

	overflow := false
	var circuit func(v, s int) bool
	circuit = func(v, s int) bool {
		found := false
		stack = append(stack, v)
		blocked[v] = true
		for _, a := range adj[v] {
			w := a.to
			if w < s || w == v {
				continue
			}
			if w == s {
				if len(out) >= cap {
					overflow = true
					continue
				}
				ops := make([]ir.OpID, len(stack))
				L, W := a.latency, a.omega
				for i, u := range stack {
					ops[i] = ir.OpID(u)
					if i+1 < len(stack) {
						// cost accumulated below via latSum
					}
				}
				L += latSum[len(stack)-1]
				W += omgSum[len(stack)-1]
				if W == 0 {
					// propagate a real error
					out = append(out, Circuit{Ops: ops, Latency: L, Omega: 0})
				} else {
					out = append(out, Circuit{Ops: ops, Latency: L, Omega: W})
				}
				found = true
			} else if !blocked[w] {
				latSum = append(latSum, latSum[len(latSum)-1]+a.latency)
				omgSum = append(omgSum, omgSum[len(omgSum)-1]+a.omega)
				if circuit(w, s) {
					found = true
				}
				latSum = latSum[:len(latSum)-1]
				omgSum = omgSum[:len(omgSum)-1]
			}
		}
		if found {
			unblock(v)
		} else {
			for _, a := range adj[v] {
				w := a.to
				if w < s || w == v {
					continue
				}
				dup := false
				for _, x := range bsets[w] {
					if x == v {
						dup = true
						break
					}
				}
				if !dup {
					bsets[w] = append(bsets[w], v)
				}
			}
		}
		stack = stack[:len(stack)-1]
		return found
	}

	for s := 0; s < n && !overflow; s++ {
		for v := s; v < n; v++ {
			blocked[v] = false
			bsets[v] = bsets[v][:0]
		}
		latSum = latSum[:0]
		omgSum = omgSum[:0]
		latSum = append(latSum, 0)
		omgSum = append(omgSum, 0)
		circuit(s, s)
	}

	for _, c := range out {
		if c.Omega == 0 {
			return nil, ErrZeroOmega
		}
	}
	if overflow {
		return out, ErrTooMany
	}
	return out, nil
}

// RecMII computes the recurrence-constrained lower bound on II by
// scanning elementary circuits, falling back to the cost-to-time-ratio
// method if the census overflows. A loop with no circuits has RecMII 1.
//
// RecMII runs on every compile, so it uses a count-only variant of the
// same Johnson traversal as Enumerate: circuits are folded into the
// running maximum ratio as they close, never materialized, and the
// traversal workspace comes from a package pool. The visit order, the
// census cap, and the error semantics are identical to Enumerate's —
// the differential tests compare the two directly.
func RecMII(l *ir.Loop) (int, error) {
	rec, err := recMIICounting(l, 0)
	if errors.Is(err, ErrTooMany) {
		return RecMIIByRatio(l)
	}
	if err != nil {
		return 0, err
	}
	return rec, nil
}

// recWS is the pooled traversal workspace of recMIICounting.
type recWS struct {
	adj     [][]arc
	blocked []bool
	bsets   [][]int
	stack   []int
	latSum  []int
	omgSum  []int
}

var recPool = sync.Pool{New: func() any { return new(recWS) }}

func (w *recWS) sizeFor(n int) {
	if cap(w.adj) >= n {
		w.adj = w.adj[:n]
		w.blocked = w.blocked[:n]
		w.bsets = w.bsets[:n]
	} else {
		w.adj = make([][]arc, n)
		w.blocked = make([]bool, n)
		w.bsets = make([][]int, n)
	}
	for v := 0; v < n; v++ {
		w.adj[v] = w.adj[v][:0]
		w.blocked[v] = false
		w.bsets[v] = w.bsets[v][:0]
	}
	w.stack = w.stack[:0]
	w.latSum = w.latSum[:0]
	w.omgSum = w.omgSum[:0]
}

// recMIICounting mirrors Enumerate's traversal exactly but only counts
// circuits and folds each one's ⌈L/Ω⌉ into the result. It reports
// ErrZeroOmega and ErrTooMany under the same conditions Enumerate does
// (a zero-omega circuit found within the cap wins over overflow).
func recMIICounting(l *ir.Loop, cap_ int) (int, error) {
	if cap_ <= 0 {
		cap_ = DefaultCap
	}
	n := len(l.Ops)
	w := recPool.Get().(*recWS)
	defer recPool.Put(w)
	w.sizeFor(n)
	for _, d := range l.Deps {
		w.adj[d.From] = append(w.adj[d.From], arc{int(d.To), d.Latency, d.Omega})
	}

	rec := 1
	count := 0
	sawZero := false
	fold := func(lat, omega int) {
		count++
		if omega == 0 {
			sawZero = true
			return
		}
		if r := (lat + omega - 1) / omega; r > rec {
			rec = r
		}
	}
	for v := 0; v < n; v++ {
		for _, a := range w.adj[v] {
			if a.to == v {
				if a.omega == 0 {
					return 0, ErrZeroOmega
				}
				fold(a.latency, a.omega)
			}
		}
	}

	var unblock func(v int)
	unblock = func(v int) {
		w.blocked[v] = false
		for _, x := range w.bsets[v] {
			if w.blocked[x] {
				unblock(x)
			}
		}
		w.bsets[v] = w.bsets[v][:0]
	}

	overflow := false
	var circuit func(v, s int) bool
	circuit = func(v, s int) bool {
		found := false
		w.stack = append(w.stack, v)
		w.blocked[v] = true
		for _, a := range w.adj[v] {
			to := a.to
			if to < s || to == v {
				continue
			}
			if to == s {
				if count >= cap_ {
					overflow = true
					continue
				}
				fold(a.latency+w.latSum[len(w.stack)-1], a.omega+w.omgSum[len(w.stack)-1])
				found = true
			} else if !w.blocked[to] {
				w.latSum = append(w.latSum, w.latSum[len(w.latSum)-1]+a.latency)
				w.omgSum = append(w.omgSum, w.omgSum[len(w.omgSum)-1]+a.omega)
				if circuit(to, s) {
					found = true
				}
				w.latSum = w.latSum[:len(w.latSum)-1]
				w.omgSum = w.omgSum[:len(w.omgSum)-1]
			}
		}
		if found {
			unblock(v)
		} else {
			for _, a := range w.adj[v] {
				to := a.to
				if to < s || to == v {
					continue
				}
				dup := false
				for _, x := range w.bsets[to] {
					if x == v {
						dup = true
						break
					}
				}
				if !dup {
					w.bsets[to] = append(w.bsets[to], v)
				}
			}
		}
		w.stack = w.stack[:len(w.stack)-1]
		return found
	}

	for s := 0; s < n && !overflow; s++ {
		for v := s; v < n; v++ {
			w.blocked[v] = false
			w.bsets[v] = w.bsets[v][:0]
		}
		w.latSum = append(w.latSum[:0], 0)
		w.omgSum = append(w.omgSum[:0], 0)
		circuit(s, s)
	}

	if sawZero {
		return 0, ErrZeroOmega
	}
	if overflow {
		return 0, ErrTooMany
	}
	return rec, nil
}

// RecMIIByRatio computes RecMII as the smallest II ≥ 1 such that the
// dependence graph with arc costs latency − ω·II has no positive-cost
// circuit. Positivity is monotone non-increasing in II, so binary search
// applies; each feasibility probe is a Bellman–Ford longest-path pass
// with positive-circuit detection.
func RecMIIByRatio(l *ir.Loop) (int, error) {
	n := len(l.Ops)
	hasPositive := func(ii int) bool {
		dist := make([]int, n)
		// Longest paths from a virtual source connected to all nodes at 0.
		for pass := 0; pass < n; pass++ {
			changed := false
			for _, d := range l.Deps {
				c := d.Latency - d.Omega*ii
				if dist[d.From]+c > dist[d.To] {
					dist[d.To] = dist[d.From] + c
					changed = true
				}
			}
			if !changed {
				return false
			}
		}
		for _, d := range l.Deps {
			c := d.Latency - d.Omega*ii
			if dist[d.From]+c > dist[d.To] {
				return true
			}
		}
		return false
	}

	hi := 1
	for _, d := range l.Deps {
		if d.Latency > 0 {
			hi += d.Latency
		}
	}
	if hasPositive(hi) {
		// Even II = Σ latencies fails: some circuit has Ω = 0.
		return 0, ErrZeroOmega
	}
	lo := 1
	for lo < hi {
		mid := (lo + hi) / 2
		if hasPositive(mid) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, nil
}
