package circuits

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/fixture"
	"repro/internal/ir"
	"repro/internal/machine"
)

func TestSampleCoreCircuits(t *testing.T) {
	l := fixture.SampleCore(machine.Cydra())
	cs, err := Enumerate(l, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Two self circuits (ω=1 each) and one 2-op circuit (ω=4 total: the
	// two ω=2 cross arcs).
	var selfs, pairs int
	for _, c := range cs {
		switch len(c.Ops) {
		case 1:
			selfs++
			if c.Omega != 1 || c.Latency != 1 {
				t.Errorf("self circuit %v: want L=1 Ω=1", c)
			}
		case 2:
			pairs++
			if c.Omega != 4 || c.Latency != 2 {
				t.Errorf("pair circuit %v: want L=2 Ω=4", c)
			}
		default:
			t.Errorf("unexpected circuit %v", c)
		}
	}
	if selfs != 2 || pairs != 1 {
		t.Errorf("got %d self + %d pair circuits, want 2 + 1", selfs, pairs)
	}
	rec, err := RecMII(l)
	if err != nil {
		t.Fatal(err)
	}
	if rec != 1 {
		t.Errorf("RecMII = %d, want 1", rec)
	}
}

func TestZeroOmegaCircuitRejected(t *testing.T) {
	m := machine.Cydra()
	l := ir.NewLoop("combinational", m)
	a := l.NewValue("a", ir.RR, ir.Float)
	b := l.NewValue("b", ir.RR, ir.Float)
	l.NewOp(machine.FAdd, []ir.Operand{{Val: b.ID}, {Val: b.ID}}, a.ID)
	l.NewOp(machine.FSub, []ir.Operand{{Val: a.ID}, {Val: a.ID}}, b.ID)
	l.MustFinalize()
	if _, err := Enumerate(l, 0); err == nil {
		t.Error("zero-omega circuit must be rejected by Enumerate")
	}
	if _, err := RecMIIByRatio(l); err == nil {
		t.Error("zero-omega circuit must be rejected by RecMIIByRatio")
	}
}

// Property: the enumeration method and the min-cost-to-time-ratio method
// must agree on RecMII for random cyclic graphs.
func TestRecMIIMethodsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		l := randomCyclicLoop(rng)
		byEnum, err1 := RecMII(l)
		byRatio, err2 := RecMIIByRatio(l)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: error disagreement: %v vs %v", trial, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if byEnum != byRatio {
			t.Fatalf("trial %d: enumeration says %d, ratio says %d\n%s", trial, byEnum, byRatio, l)
		}
	}
}

// Property: the count-only traversal behind RecMII must agree with a
// full Enumerate — same maximum ratio, same census count, same errors —
// on random cyclic graphs and on tiny caps that force overflow.
func TestRecMIICountingMatchesEnumerate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 120; trial++ {
		l := randomCyclicLoop(rng)
		for _, cap_ := range []int{0, 1, 2, 5} {
			cs, err1 := Enumerate(l, cap_)
			rec2, err2 := recMIICounting(l, cap_)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("trial %d cap %d: error disagreement: %v vs %v", trial, cap_, err1, err2)
			}
			if err1 != nil {
				if errors.Is(err1, ErrTooMany) != errors.Is(err2, ErrTooMany) ||
					errors.Is(err1, ErrZeroOmega) != errors.Is(err2, ErrZeroOmega) {
					t.Fatalf("trial %d cap %d: error kind disagreement: %v vs %v", trial, cap_, err1, err2)
				}
				continue
			}
			rec1 := 1
			for i := range cs {
				if r := cs[i].RecMII(); r > rec1 {
					rec1 = r
				}
			}
			if rec1 != rec2 {
				t.Fatalf("trial %d cap %d: Enumerate says %d, counting says %d\n%s", trial, cap_, rec1, rec2, l)
			}
		}
	}
}

func TestCircuitRecMIIRounding(t *testing.T) {
	c := Circuit{Latency: 7, Omega: 2}
	if c.RecMII() != 4 {
		t.Errorf("⌈7/2⌉ = %d, want 4", c.RecMII())
	}
	c = Circuit{Latency: 6, Omega: 2}
	if c.RecMII() != 3 {
		t.Errorf("⌈6/2⌉ = %d, want 3", c.RecMII())
	}
}

// randomCyclicLoop builds small graphs rich in circuits: a backbone chain
// with random back arcs carrying ω ≥ 1.
func randomCyclicLoop(rng *rand.Rand) *ir.Loop {
	m := machine.Cydra()
	l := ir.NewLoop("cyc", m)
	n := 2 + rng.Intn(6)
	vals := make([]*ir.Value, n)
	for i := range vals {
		vals[i] = l.NewValue("v", ir.RR, ir.Float)
	}
	codes := []machine.Opcode{machine.FAdd, machine.FMul, machine.FSub, machine.Load}
	for i := 0; i < n; i++ {
		var args []ir.Operand
		if i > 0 {
			args = append(args, ir.Operand{Val: vals[i-1].ID})
		} else {
			args = append(args, ir.Operand{Val: vals[n-1].ID, Omega: 1 + rng.Intn(3)})
		}
		// Random extra back arc.
		if rng.Intn(2) == 0 {
			j := rng.Intn(n)
			w := 0
			if j >= i {
				w = 1 + rng.Intn(3)
			}
			args = append(args, ir.Operand{Val: vals[j].ID, Omega: w})
		}
		code := codes[rng.Intn(len(codes))]
		if code == machine.Load {
			args = args[:1]
		}
		for len(args) < 2 && code != machine.Load {
			args = append(args, args[0])
		}
		l.NewOp(code, args, vals[i].ID)
	}
	l.MustFinalize()
	return l
}
