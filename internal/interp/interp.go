// Package interp executes a loop body sequentially, iteration by
// iteration, with exact dependence semantics. It is the oracle for
// differential testing: a modulo schedule, after code generation, must
// leave memory and live-out values exactly as the interpreter does.
//
// Loop-carried reads (omega > 0) see the instance computed that many
// iterations earlier; instances from before the first iteration come
// from Env.Init, the loop's preheader state.
package interp

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/rt"
	"repro/internal/semantics"
)

// Run executes trips iterations of the loop and returns the outcome.
func Run(l *ir.Loop, env *rt.Env, trips int) (*rt.Result, error) {
	if trips < 0 {
		return nil, fmt.Errorf("interp: negative trip count")
	}
	order, err := topoOrder(l)
	if err != nil {
		return nil, err
	}
	mem := make(ir.Memory, len(env.Mem))
	copy(mem, env.Mem)

	// Instance store: a sliding window would do, but loops are small and
	// trip counts modest in tests; keep every instance for simplicity
	// and strong checking.
	inst := make(map[rt.InstKey]ir.Scalar, len(l.Values)*(trips+2))
	for k, v := range env.Init {
		inst[k] = v
	}
	readVal := func(o ir.Operand, iter int) (ir.Scalar, error) {
		v := l.Value(o.Val)
		if v.ConstValid {
			return v.Const, nil
		}
		if v.File == ir.GPR {
			s, ok := env.GPR[o.Val]
			if !ok {
				return ir.Scalar{}, fmt.Errorf("interp: no live-in for invariant %s", v.Name)
			}
			return s, nil
		}
		return inst[rt.InstKey{Val: o.Val, Iter: iter - o.Omega}], nil
	}

	res := &rt.Result{LiveOut: map[ir.ValueID]ir.Scalar{}}
	for i := 0; i < trips; i++ {
		for _, op := range order {
			if op.Opcode == machine.BrTop {
				continue // iteration control is the driver's job
			}
			if op.Pred != nil {
				p, err := readVal(*op.Pred, i)
				if err != nil {
					return nil, err
				}
				if p.B == op.PredNeg {
					continue
				}
			}
			res.Executed++
			args := make([]ir.Scalar, len(op.Args))
			for j, a := range op.Args {
				s, err := readVal(a, i)
				if err != nil {
					return nil, err
				}
				args[j] = s
			}
			switch op.Opcode {
			case machine.Load:
				s, err := mem.Load(args[0].I)
				if err != nil {
					return nil, fmt.Errorf("interp: op%d iter %d: %w", op.ID, i, err)
				}
				inst[rt.InstKey{Val: op.Result, Iter: i}] = s
			case machine.Store:
				if err := mem.Store(args[0].I, args[1]); err != nil {
					return nil, fmt.Errorf("interp: op%d iter %d: %w", op.ID, i, err)
				}
			default:
				s, err := semantics.Eval(op.Opcode, args)
				if err != nil {
					return nil, err
				}
				if op.Result != ir.None {
					inst[rt.InstKey{Val: op.Result, Iter: i}] = s
				}
			}
		}
	}
	res.Mem = mem
	for _, v := range l.Values {
		if v.LiveOut && v.IsVariant() && trips > 0 {
			res.LiveOut[v.ID] = inst[rt.InstKey{Val: v.ID, Iter: trips - 1}]
		}
	}
	return res, nil
}

// topoOrder orders ops so that every same-iteration (ω = 0) dependence
// goes forward. Cross-iteration arcs impose nothing within an iteration.
func topoOrder(l *ir.Loop) ([]*ir.Op, error) {
	n := len(l.Ops)
	indeg := make([]int, n)
	adj := make([][]int, n)
	for _, d := range l.Deps {
		if d.Omega != 0 || d.From == d.To {
			continue
		}
		adj[d.From] = append(adj[d.From], int(d.To))
		indeg[d.To]++
	}
	var queue []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	var out []*ir.Op
	for len(queue) > 0 {
		// Pop the smallest id for determinism.
		min := 0
		for i := range queue {
			if queue[i] < queue[min] {
				min = i
			}
		}
		x := queue[min]
		queue = append(queue[:min], queue[min+1:]...)
		out = append(out, l.Ops[x])
		for _, y := range adj[x] {
			indeg[y]--
			if indeg[y] == 0 {
				queue = append(queue, y)
			}
		}
	}
	if len(out) != n {
		return nil, fmt.Errorf("interp: loop %s has a zero-omega dependence cycle", l.Name)
	}
	return out, nil
}
