package interp

import (
	"math"
	"testing"

	"repro/internal/fixture"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/rt"
)

// The Figure 1 recurrence has a closed form we can check by hand for the
// first few iterations: x_i = x_{i-1} + y_{i-2}, y_i = y_{i-1} + x_{i-2}.
func TestSampleRecurrenceByHand(t *testing.T) {
	r := fixture.RunnableSample(machine.Cydra())
	res, err := Run(r.Loop, r.Env, 3)
	if err != nil {
		t.Fatal(err)
	}
	// x_{-2}=0.25 x_{-1}=0.5 y_{-2}=1.5 y_{-1}=2.25
	// i=0: x0 = 0.5+1.5 = 2.0    y0 = 2.25+0.25 = 2.5
	// i=1: x1 = 2.0+2.25 = 4.25  y1 = 2.5+0.5 = 3.0
	// i=2: x2 = 4.25+2.5 = 6.75  y2 = 3.0+2.0 = 5.0
	x := res.LiveOut[0] // value x has id 0 in the fixture
	y := res.LiveOut[1]
	if x.F != 6.75 || y.F != 5.0 {
		t.Errorf("after 3 iterations: x=%v y=%v, want 6.75, 5.0", x.F, y.F)
	}
	// Stores: mem[2]=x0, mem[3]=x1, mem[4]=x2; mem[66..68] = y0..y2.
	for i, want := range []float64{2.0, 4.25, 6.75} {
		if got := res.Mem[2+i].F; got != want {
			t.Errorf("mem[%d] = %v, want %v", 2+i, got, want)
		}
	}
	for i, want := range []float64{2.5, 3.0, 5.0} {
		if got := res.Mem[66+i].F; got != want {
			t.Errorf("mem[%d] = %v, want %v", 66+i, got, want)
		}
	}
}

func TestDaxpySemantics(t *testing.T) {
	r := fixture.RunnableDaxpy(machine.Cydra())
	res, err := Run(r.Loop, r.Env, r.Trips)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r.Trips; i++ {
		x := float64(i) * 0.5
		y := 10 + float64(i)*0.25
		want := y + 3.0*x
		if got := res.Mem[64+i].F; got != want {
			t.Fatalf("y[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestReductionSemantics(t *testing.T) {
	r := fixture.RunnableReduction(machine.Cydra())
	res, err := Run(r.Loop, r.Env, r.Trips)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for i := 0; i < r.Trips; i++ {
		want += (1 + float64(i%7)) * (2 - float64(i%5)*0.5)
	}
	s := res.LiveOut[value(t, r.Loop, "s")]
	if math.Abs(s.F-want) > 1e-12 {
		t.Errorf("dot = %v, want %v", s.F, want)
	}
}

func TestConditionalPredication(t *testing.T) {
	r := fixture.RunnableConditional(machine.Cydra())
	res, err := Run(r.Loop, r.Env, r.Trips)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r.Trips; i++ {
		x := r.Env.Mem[i].F
		want := x * 2.0
		if !(x > 0) {
			want = x * -0.5
		}
		if got := res.Mem[64+i].F; got != want {
			t.Fatalf("out[%d] = %v, want %v (x=%v)", i, got, want, x)
		}
	}
	// Exactly one of the two predicated multiplies runs per iteration.
	// Ops: load, cmp, 2 muls (one squashed), store, 2 aadds = 6 per iter.
	if res.Executed != int64(6*r.Trips) {
		t.Errorf("executed %d ops, want %d", res.Executed, 6*r.Trips)
	}
}

func TestMissingInvariantIsError(t *testing.T) {
	r := fixture.RunnableDaxpy(machine.Cydra())
	env := *r.Env
	env.GPR = nil
	if _, err := Run(r.Loop, &env, 1); err == nil {
		t.Error("missing GPR live-in must error")
	}
}

func TestOutOfBoundsIsError(t *testing.T) {
	r := fixture.RunnableDaxpy(machine.Cydra())
	env := *r.Env
	env.Init = map[rt.InstKey]ir.Scalar{}
	for k, v := range r.Env.Init {
		env.Init[k] = v
	}
	env.Init[rt.InstKey{Val: value(t, r.Loop, "px"), Iter: -1}] = ir.IntS(1 << 30)
	if _, err := Run(r.Loop, &env, 1); err == nil {
		t.Error("wild load must error, not wrap")
	}
}

func TestZeroOmegaCycleRejected(t *testing.T) {
	m := machine.Cydra()
	l := ir.NewLoop("cyc0", m)
	a := l.NewValue("a", ir.RR, ir.Float)
	b := l.NewValue("b", ir.RR, ir.Float)
	l.NewOp(machine.FAdd, []ir.Operand{{Val: b.ID}, {Val: b.ID}}, a.ID)
	l.NewOp(machine.FSub, []ir.Operand{{Val: a.ID}, {Val: a.ID}}, b.ID)
	l.MustFinalize()
	if _, err := Run(l, &rt.Env{}, 1); err == nil {
		t.Error("zero-omega dependence cycle must be rejected")
	}
}

func value(t *testing.T, l *ir.Loop, name string) ir.ValueID {
	t.Helper()
	for _, v := range l.Values {
		if v.Name == name {
			return v.ID
		}
	}
	t.Fatalf("no value %q", name)
	return ir.None
}
