package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestParseTraceparentValid(t *testing.T) {
	h := "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01"
	sc, err := ParseTraceparent(h)
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.TraceID.String(); got != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("trace ID %s", got)
	}
	if got := sc.SpanID.String(); got != "0123456789abcdef" {
		t.Fatalf("span ID %s", got)
	}
	if !sc.Sampled {
		t.Fatal("flags 01 should mean sampled")
	}
	if sc.Traceparent() != h {
		t.Fatalf("round trip: %s != %s", sc.Traceparent(), h)
	}
	sc2, err := ParseTraceparent("00-0123456789abcdef0123456789abcdef-0123456789abcdef-00")
	if err != nil {
		t.Fatal(err)
	}
	if sc2.Sampled {
		t.Fatal("flags 00 should mean unsampled")
	}
}

func TestParseTraceparentFutureVersion(t *testing.T) {
	// Per spec, a higher version with extra trailing data still parses
	// as long as the version-00 prefix is well-formed.
	sc, err := ParseTraceparent("cc-0123456789abcdef0123456789abcdef-0123456789abcdef-01-extra")
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Sampled {
		t.Fatal("sampled flag lost")
	}
}

func TestParseTraceparentInvalid(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"short":             "00-abc",
		"version ff":        "ff-0123456789abcdef0123456789abcdef-0123456789abcdef-01",
		"zero trace id":     "00-00000000000000000000000000000000-0123456789abcdef-01",
		"zero span id":      "00-0123456789abcdef0123456789abcdef-0000000000000000-01",
		"bad separators":    "00_0123456789abcdef0123456789abcdef_0123456789abcdef_01",
		"non-hex trace id":  "00-0123456789abcdeg0123456789abcdef-0123456789abcdef-01",
		"v00 trailing data": "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01-x",
	}
	for name, h := range cases {
		if _, err := ParseTraceparent(h); err == nil {
			t.Errorf("%s: %q parsed without error", name, h)
		}
	}
}

func TestNewIDsNonZeroAndDistinct(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		id := NewTraceID()
		if id.IsZero() {
			t.Fatal("zero trace ID")
		}
		s := id.String()
		if seen[s] {
			t.Fatalf("trace ID %s repeated", s)
		}
		seen[s] = true
	}
	if NewSpanID().IsZero() {
		t.Fatal("zero span ID")
	}
}

func TestSampleDeterministic(t *testing.T) {
	id := NewTraceID()
	if Sample(id, 0) || Sample(id, -5) {
		t.Fatal("n <= 0 must never sample")
	}
	if !Sample(id, 1) {
		t.Fatal("n == 1 must always sample")
	}
	// The verdict is a pure function of the ID: every call agrees.
	for n := 2; n < 10; n++ {
		first := Sample(id, n)
		for i := 0; i < 5; i++ {
			if Sample(id, n) != first {
				t.Fatalf("Sample(%d) flapped", n)
			}
		}
	}
	// 1-in-2 over many fresh IDs lands somewhere sane.
	hits := 0
	for i := 0; i < 1000; i++ {
		if Sample(NewTraceID(), 2) {
			hits++
		}
	}
	if hits < 350 || hits > 650 {
		t.Fatalf("1-in-2 sampling hit %d/1000", hits)
	}
}

func TestDeriveSpanIDStableAndDistinct(t *testing.T) {
	root := NewSpanID()
	seen := map[string]bool{root.String(): true}
	for i := 0; i < 100; i++ {
		a, b := deriveSpanID(root, i), deriveSpanID(root, i)
		if a != b {
			t.Fatalf("derivation %d not deterministic", i)
		}
		if a.IsZero() {
			t.Fatalf("derivation %d produced zero", i)
		}
		if seen[a.String()] {
			t.Fatalf("derivation %d collided", i)
		}
		seen[a.String()] = true
	}
}

func TestSpanContextJSONRoundTrip(t *testing.T) {
	sc, err := ParseTraceparent("00-0123456789abcdef0123456789abcdef-0123456789abcdef-01")
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace("req-1", "loop")
	tr.Ctx = SpanContext{TraceID: sc.TraceID, SpanID: NewSpanID(), Sampled: true}
	tr.Parent = sc
	tr.Finish(OutcomeOK)
	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), sc.TraceID.String()) {
		t.Fatalf("trace ID missing from JSON: %s", b)
	}
	var back Trace
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Ctx.TraceID != tr.Ctx.TraceID || back.Parent.SpanID != sc.SpanID {
		t.Fatal("span context did not survive the round trip")
	}
}
