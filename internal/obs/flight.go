package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// DefaultFlightEntries is the flight recorder's default ring capacity.
const DefaultFlightEntries = 64

// FlightRecorder keeps the last N finished compile traces in a ring
// buffer. Record is lock-cheap — one mutex acquisition guarding two
// pointer-sized stores — so it sits on the per-request path of a
// saturated server without showing up in profiles. Traces must be
// finished (immutable) before they are recorded; Snapshot then shares
// them without copying.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []*Trace
	next  int
	total uint64
}

// NewFlightRecorder returns a recorder holding the last n traces
// (DefaultFlightEntries when n <= 0).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultFlightEntries
	}
	return &FlightRecorder{buf: make([]*Trace, n)}
}

// Record adds a finished trace, evicting the oldest when full.
func (r *FlightRecorder) Record(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	r.total++
	r.mu.Unlock()
}

// Len reports how many traces the ring currently holds.
func (r *FlightRecorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := int(r.total)
	if n > len(r.buf) {
		n = len(r.buf)
	}
	return n
}

// Total reports how many traces have ever been recorded.
func (r *FlightRecorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns the retained traces oldest-first. The traces are
// shared, not copied — they are immutable after Finish.
func (r *FlightRecorder) Snapshot() []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, 0, len(r.buf))
	for i := 0; i < len(r.buf); i++ {
		if t := r.buf[(r.next+i)%len(r.buf)]; t != nil {
			out = append(out, t)
		}
	}
	return out
}

// flightDump is the JSON shape of a recorder dump.
type flightDump struct {
	Total   uint64   `json:"total_recorded"`
	Entries []*Trace `json:"entries"`
}

// WriteJSON dumps the retained traces (oldest-first) as indented JSON —
// the payload of GET /debug/flightrecorder and of lsmsd's SIGQUIT dump.
func (r *FlightRecorder) WriteJSON(w io.Writer) error {
	return r.WriteJSONFilter(w, nil)
}

// WriteJSONFilter is WriteJSON keeping only traces keep accepts (nil
// keeps everything). Total still reports every trace ever recorded —
// the filter narrows the dump, not the history. Backs the
// /debug/flightrecorder?trace=<id> lookup: a slow request found via a
// latency exemplar is greppable in the ring by its TraceID.
func (r *FlightRecorder) WriteJSONFilter(w io.Writer, keep func(*Trace) bool) error {
	entries := r.Snapshot()
	if keep != nil {
		kept := entries[:0]
		for _, t := range entries {
			if keep(t) {
				kept = append(kept, t)
			}
		}
		entries = kept
	}
	dump := flightDump{Total: r.Total(), Entries: entries}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dump)
}
