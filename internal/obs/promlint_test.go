package obs

import (
	"strings"
	"testing"
)

func TestLintAcceptsExemplars(t *testing.T) {
	good := "# TYPE app_h histogram\n" +
		"app_h_bucket{le=\"1\"} 1 # {trace_id=\"0123456789abcdef0123456789abcdef\"} 0.4\n" +
		"app_h_bucket{le=\"+Inf\"} 2 # {trace_id=\"0123456789abcdef0123456789abcdef\"} 1.5\n" +
		"app_h_sum 3\napp_h_count 2\n" +
		"# TYPE app_x_total counter\n" +
		"app_x_total 5 # {trace_id=\"0123456789abcdef0123456789abcdef\"} 1 1700000000.5\n"
	if errs := LintExposition(strings.NewReader(good)); len(errs) > 0 {
		t.Fatalf("lint rejected valid exemplars: %v", errs)
	}
}

func TestLintRejectsBadExemplars(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"exemplar on gauge", "# TYPE app_g gauge\napp_g 1 # {trace_id=\"ab\"} 1\n"},
		{"exemplar on sum", "# TYPE app_h histogram\napp_h_bucket{le=\"+Inf\"} 1\napp_h_sum 1 # {trace_id=\"ab\"} 1\napp_h_count 1\n"},
		{"no label set", "# TYPE app_x_total counter\napp_x_total 1 # 0.5\n"},
		{"missing value", "# TYPE app_x_total counter\napp_x_total 1 # {trace_id=\"ab\"}\n"},
		{"bad value", "# TYPE app_x_total counter\napp_x_total 1 # {trace_id=\"ab\"} banana\n"},
		{"bad label name", "# TYPE app_x_total counter\napp_x_total 1 # {9id=\"ab\"} 1\n"},
		{"unterminated labels", "# TYPE app_x_total counter\napp_x_total 1 # {trace_id=\"ab 1\n"},
		{"empty after hash", "# TYPE app_x_total counter\napp_x_total 1 #\n"},
		{"trailing junk", "# TYPE app_x_total counter\napp_x_total 1 # {trace_id=\"ab\"} 1 2 3\n"},
		{"over 128 runes", "# TYPE app_x_total counter\napp_x_total 1 # {trace_id=\"" +
			strings.Repeat("a", 130) + "\"} 1\n"},
	}
	for _, c := range cases {
		if errs := LintExposition(strings.NewReader(c.in)); len(errs) == 0 {
			t.Errorf("%s: lint accepted bad exemplar:\n%s", c.name, c.in)
		}
	}
}

// TestLintRejectsUnboundedCardinality pins the rule that keeps trace
// IDs out of the label space: they belong in exemplars, where they
// don't mint a new series per request.
func TestLintRejectsUnboundedCardinality(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"trace_id label name", "# TYPE app_x_total counter\napp_x_total{trace_id=\"x\"} 1\n"},
		{"span_id label name", "# TYPE app_x_total counter\napp_x_total{span_id=\"x\"} 1\n"},
		{"traceparent label name", "# TYPE app_x_total counter\napp_x_total{traceparent=\"x\"} 1\n"},
		{"request_id label name", "# TYPE app_x_total counter\napp_x_total{request_id=\"x\"} 1\n"},
		{"32-hex label value", "# TYPE app_x_total counter\napp_x_total{loop=\"0123456789abcdef0123456789abcdef\"} 1\n"},
		{"16-hex label value", "# TYPE app_x_total counter\napp_x_total{loop=\"0123456789abcdef\"} 1\n"},
	}
	for _, c := range cases {
		if errs := LintExposition(strings.NewReader(c.in)); len(errs) == 0 {
			t.Errorf("%s: lint accepted unbounded-cardinality labels:\n%s", c.name, c.in)
		}
	}
	// le values on buckets are hex-ish sometimes (e.g. le="1e16" is not,
	// but make sure normal short values and le stay legal).
	good := "# TYPE app_h histogram\napp_h_bucket{le=\"0.5\"} 1\napp_h_bucket{le=\"+Inf\"} 1\n" +
		"app_h_sum 1\napp_h_count 1\n" +
		"# TYPE app_x_total counter\napp_x_total{scheduler=\"slack\"} 1\n"
	if errs := LintExposition(strings.NewReader(good)); len(errs) > 0 {
		t.Fatalf("lint rejected bounded labels: %v", errs)
	}
}

// TestObserveExemplarRendersLintClean checks the full loop: a histogram
// fed through ObserveExemplar writes an OpenMetrics exposition the
// linter accepts, with the exemplar attached to the right bucket lines
// — while the classic 0.0.4 render suppresses exemplars entirely
// (exemplar syntax is illegal there; a stock Prometheus parser would
// fail the whole scrape on it).
func TestObserveExemplarRendersLintClean(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("app_lat_seconds", "Latency.", []float64{0.1, 1}, "outcome")
	h.ObserveExemplar(0.05, "trace_id", "0123456789abcdef0123456789abcdef", "ok")
	h.ObserveExemplar(0.5, "trace_id", "fedcba9876543210fedcba9876543210", "ok")
	h.ObserveExemplar(2, "trace_id", "", "ok") // unsampled: no exemplar
	var b strings.Builder
	if err := r.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `le="0.1"} 1 # {trace_id="0123456789abcdef0123456789abcdef"} 0.05`) {
		t.Fatalf("first bucket missing its exemplar:\n%s", out)
	}
	if !strings.Contains(out, `le="1"} 2 # {trace_id="fedcba9876543210fedcba9876543210"} 0.5`) {
		t.Fatalf("second bucket missing its exemplar:\n%s", out)
	}
	if strings.Contains(out, `le="+Inf"} 3 #`) {
		t.Fatalf("unsampled observation grew an exemplar:\n%s", out)
	}
	if errs := LintExposition(strings.NewReader(out + "# EOF\n")); len(errs) > 0 {
		t.Fatalf("ObserveExemplar output fails lint: %v\n%s", errs, out)
	}

	var classic strings.Builder
	if err := r.WriteText(&classic); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(classic.String(), "trace_id") {
		t.Fatalf("classic 0.0.4 render leaked an exemplar:\n%s", classic.String())
	}
}

// TestLintAcceptsOpenMetricsCounters: the OpenMetrics counter
// convention — family declared bare, samples suffixed _total — and the
// trailing # EOF both lint clean, while a counter sample without the
// suffix still fails under either declaration style.
func TestLintAcceptsOpenMetricsCounters(t *testing.T) {
	good := "# HELP app_requests Requests.\n# TYPE app_requests counter\napp_requests_total 3\n# EOF\n"
	if errs := LintExposition(strings.NewReader(good)); len(errs) > 0 {
		t.Fatalf("lint rejected OpenMetrics counter naming: %v", errs)
	}
	bad := "# TYPE app_requests counter\napp_requests 3\n"
	if errs := LintExposition(strings.NewReader(bad)); len(errs) == 0 {
		t.Fatal("lint accepted a counter sample without _total")
	}
}
