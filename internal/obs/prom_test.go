package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	req := r.Counter("app_requests_total", "Requests received.")
	byOut := r.Counter("app_compiles_total", "Compiles by outcome.", "scheduler", "outcome")
	r.Gauge("app_running", "Active workers.").Set(3)
	r.GaugeFunc("app_cache_entries", "Cache size.", func() float64 { return 42 })
	lat := r.Histogram("app_compile_seconds", "Latency.", []float64{0.01, 0.1, 1})

	req.Inc()
	req.Add(2)
	byOut.Inc("slack", "ok")
	byOut.Inc("slack", "ok")
	byOut.Inc("cydrome", "infeasible")
	lat.Observe(0.005)
	lat.Observe(0.5)
	lat.Observe(30)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE app_requests_total counter\napp_requests_total 3\n",
		`app_compiles_total{scheduler="cydrome",outcome="infeasible"} 1`,
		`app_compiles_total{scheduler="slack",outcome="ok"} 2`,
		"app_running 3",
		"app_cache_entries 42",
		`app_compile_seconds_bucket{le="0.01"} 1`,
		`app_compile_seconds_bucket{le="0.1"} 1`,
		`app_compile_seconds_bucket{le="1"} 2`,
		`app_compile_seconds_bucket{le="+Inf"} 3`,
		"app_compile_seconds_sum 30.505",
		"app_compile_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if errs := LintExposition(strings.NewReader(out)); len(errs) > 0 {
		t.Fatalf("registry output fails its own lint: %v\n%s", errs, out)
	}
	if got := req.Value(); got != 3 {
		t.Fatalf("Value = %v, want 3", got)
	}
}

// A never-incremented unlabelled counter still exposes a zero sample.
func TestRegistryZeroSample(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_panics_total", "Panics.")
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "app_panics_total 0\n") {
		t.Fatalf("zero counter not exposed:\n%s", b.String())
	}
}

// The registry is one lock: concurrent mutation during scrapes must be
// race-free (run under -race) and never lose a count.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("app_ops_total", "Ops.", "kind")
	h := r.Histogram("app_lat_seconds", "Latency.", ExpBuckets(0.001, 10, 4))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Inc("a")
				h.Observe(float64(i) / 100)
				if i%100 == 0 {
					var b strings.Builder
					if err := r.WriteText(&b); err != nil {
						t.Error(err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.Value("a"); got != 4000 {
		t.Fatalf("counter = %v, want 4000", got)
	}
	if got := h.Value(); got != 4000 {
		t.Fatalf("histogram count = %v, want 4000", got)
	}
}

func TestLintCatchesBadExposition(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"no type", "app_x_total 1\n"},
		{"bad type", "# TYPE app_x_total wibble\napp_x_total 1\n"},
		{"counter name", "# TYPE app_x counter\napp_x 1\n"},
		{"bad value", "# TYPE app_x_total counter\napp_x_total banana\n"},
		{"duplicate", "# TYPE app_x_total counter\napp_x_total 1\napp_x_total 2\n"},
		{"unterminated labels", "# TYPE app_x_total counter\napp_x_total{a=\"b 1\n"},
		{"unquoted label", "# TYPE app_x_total counter\napp_x_total{a=b} 1\n"},
		{"missing inf", "# TYPE app_h histogram\napp_h_bucket{le=\"1\"} 1\napp_h_sum 1\napp_h_count 1\n"},
		{"bad label name", "# TYPE app_x_total counter\napp_x_total{0a=\"b\"} 1\n"},
	}
	for _, c := range cases {
		if errs := LintExposition(strings.NewReader(c.in)); len(errs) == 0 {
			t.Errorf("%s: lint accepted bad input:\n%s", c.name, c.in)
		}
	}
	good := "# HELP app_x_total Fine.\n# TYPE app_x_total counter\napp_x_total{a=\"b\\\"c\"} 1\n" +
		"# TYPE app_h histogram\napp_h_bucket{le=\"1\"} 1\napp_h_bucket{le=\"+Inf\"} 2\napp_h_sum 3\napp_h_count 2\n"
	if errs := LintExposition(strings.NewReader(good)); len(errs) > 0 {
		t.Fatalf("lint rejected good input: %v", errs)
	}
}
