package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// fakeClock drives the SLO ring deterministically.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1700000000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func approx(got, want float64) bool { return math.Abs(got-want) < 1e-9 }

func TestSLOWindowsAndBurnRates(t *testing.T) {
	clk := newFakeClock()
	s := NewSLO(SLOConfig{Objective: 0.99, LatencyObjective: 100 * time.Millisecond, now: clk.Now})
	for i := 0; i < 98; i++ {
		s.Record(true, 10*time.Millisecond)
	}
	s.Record(false, 10*time.Millisecond)
	s.Record(true, 250*time.Millisecond) // slow but successful
	snap := s.Snapshot()
	for _, w := range []SLOWindow{snap.Short, snap.Long} {
		if w.Total != 100 || w.Errors != 1 || w.Slow != 1 {
			t.Fatalf("window counts %+v", w)
		}
		if !approx(w.SuccessRate, 0.99) {
			t.Fatalf("success rate %v", w.SuccessRate)
		}
		// error rate 0.01 over budget 0.01 = burning at exactly pace 1.
		if !approx(w.ErrorBurnRate, 1) || !approx(w.LatencyBurnRate, 1) {
			t.Fatalf("burn rates %+v", w)
		}
		if !approx(w.BurnRate(), 1) {
			t.Fatalf("governing burn %v", w.BurnRate())
		}
	}
	if snap.Objective != 0.99 || snap.LatencyObjectiveMS != 100 {
		t.Fatalf("snapshot config %+v", snap)
	}
}

func TestSLOEmptyWindowIsHealthy(t *testing.T) {
	s := NewSLO(SLOConfig{now: newFakeClock().Now})
	snap := s.Snapshot()
	if snap.Short.SuccessRate != 1 || snap.Long.BurnRate() != 0 {
		t.Fatalf("empty tracker unhealthy: %+v", snap)
	}
	if s.Burning(1) {
		t.Fatal("empty tracker burning")
	}
}

// TestSLOMultiWindowRule is the flap-guard: a fresh error burst pushes
// the 5-minute window hot, but an hour of earlier successes keeps the
// 1-hour window cool, so Burning stays false until the burst has eaten
// real budget at the hour scale too.
func TestSLOMultiWindowRule(t *testing.T) {
	clk := newFakeClock()
	s := NewSLO(SLOConfig{Objective: 0.99, now: clk.Now})
	// 50 minutes of clean traffic, spread so it stays inside the long
	// window but outside the short one.
	for i := 0; i < 50; i++ {
		for j := 0; j < 20; j++ {
			s.Record(true, time.Millisecond)
		}
		clk.Advance(time.Minute)
	}
	// A hot burst right now: 20 failures.
	for i := 0; i < 20; i++ {
		s.Record(false, time.Millisecond)
	}
	snap := s.Snapshot()
	if snap.Short.BurnRate() < 10 {
		t.Fatalf("short window should be hot, burn %v", snap.Short.BurnRate())
	}
	// Long window: 20 errors over 1020 requests ≈ 2% error rate → burn ~2.
	if snap.Long.BurnRate() >= 10 {
		t.Fatalf("long window should still be cool, burn %v", snap.Long.BurnRate())
	}
	if s.Burning(10) {
		t.Fatal("multi-window rule fired on a blip")
	}
	// Sustained burn: keep failing for 10 more minutes.
	for i := 0; i < 10; i++ {
		for j := 0; j < 100; j++ {
			s.Record(false, time.Millisecond)
		}
		clk.Advance(time.Minute)
	}
	if !s.Burning(10) {
		snap = s.Snapshot()
		t.Fatalf("sustained burn not detected: short %v long %v",
			snap.Short.BurnRate(), snap.Long.BurnRate())
	}
}

func TestSLORingRecyclesStaleBuckets(t *testing.T) {
	clk := newFakeClock()
	s := NewSLO(SLOConfig{now: clk.Now})
	s.Record(false, time.Millisecond)
	clk.Advance(SLOLongWindow + time.Second)
	// The old error's bucket second is now outside the long window; a
	// fresh success in the recycled slot must not inherit it.
	s.Record(true, time.Millisecond)
	snap := s.Snapshot()
	if snap.Long.Total != 1 || snap.Long.Errors != 0 {
		t.Fatalf("stale bucket leaked: %+v", snap.Long)
	}
}

func TestSLONilAndThresholdGuards(t *testing.T) {
	var s *SLO
	s.Record(true, time.Second) // must not panic
	if s.Burning(1) {
		t.Fatal("nil tracker burning")
	}
	if snap := s.Snapshot(); snap.Short.Total != 0 {
		t.Fatalf("nil snapshot %+v", snap)
	}
	real := NewSLO(SLOConfig{now: newFakeClock().Now})
	real.Record(false, time.Second)
	if real.Burning(0) || real.Burning(-1) {
		t.Fatal("threshold <= 0 must disable the check")
	}
}
