package obs

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies the running binary — the labels of the
// lsmsd_build_info gauge, so a fleet dashboard can tell which nodes run
// which revision without shelling into them.
type BuildInfo struct {
	// Version is the main module's version ("(devel)" for local
	// builds), falling back to the VCS revision when the module version
	// is unset.
	Version string
	// GoVersion is the toolchain that built the binary.
	GoVersion string
}

// ReadBuildInfo extracts the binary's identity from the embedded build
// metadata. Never fails: a binary built without module info reports
// "unknown".
func ReadBuildInfo() BuildInfo {
	bi := BuildInfo{Version: "unknown", GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	if v := info.Main.Version; v != "" {
		bi.Version = v
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" && len(s.Value) >= 7 {
			bi.Version = s.Value[:7]
		}
	}
	return bi
}

// RegisterBuildInfo registers the conventional *_build_info gauge: a
// constant 1 whose labels carry the identity. extraNames/extraVals add
// deployment-specific labels (lsmsd adds the registered-machine count).
func RegisterBuildInfo(r *Registry, name, help string, extraNames, extraVals []string) {
	bi := ReadBuildInfo()
	names := append([]string{"version", "go_version"}, extraNames...)
	vals := append([]string{bi.Version, bi.GoVersion}, extraVals...)
	r.Gauge(name, help, names...).Set(1, vals...)
}
