package obs

import (
	"bytes"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite the lsms-trace/1 golden fixture")

// goldenTrace builds a fully deterministic finished trace: fixed clock,
// fixed IDs, fixed span offsets. Everything MarshalTrace emits for it is
// a pure function of these values.
func goldenTrace() *Trace {
	began := time.Unix(1700000000, 0).UTC()
	tr := &Trace{
		ID:        "req-000042",
		Name:      "triad",
		Scheduler: "slack",
		Began:     began,
		Dur:       1500 * time.Microsecond,
		Outcome:   OutcomeOK,
	}
	copy(tr.Ctx.TraceID[:], []byte("0123456789abcdef"))
	copy(tr.Ctx.SpanID[:], []byte("fedcba98"))
	tr.Ctx.Sampled = true
	copy(tr.Parent.TraceID[:], []byte("0123456789abcdef"))
	copy(tr.Parent.SpanID[:], []byte("89abcdef"))
	tr.Parent.Sampled = true
	var link SpanContext
	copy(link.TraceID[:], []byte("fedcba9876543210"))
	copy(link.SpanID[:], []byte("01234567"))
	tr.Links = []SpanContext{link}
	tr.Spans = []*Span{
		{Name: "schedule", Start: 10 * time.Microsecond, Dur: 900 * time.Microsecond, Outcome: OutcomeOK,
			Attrs: []Attr{{Key: "ii", Int: 4}, {Key: "policy", Str: "slack"}}},
		{Name: "pressure", Start: 950 * time.Microsecond, Dur: 200 * time.Microsecond, Outcome: OutcomeOK},
		{Name: "store-put", Start: 1200 * time.Microsecond, Dur: 250 * time.Microsecond, Outcome: OutcomeOK,
			Attrs: []Attr{{Key: "body_bytes", Int: 512}}},
	}
	return tr
}

// TestMarshalTraceGolden pins the lsms-trace/1 byte layout: the same
// trace must marshal to the committed fixture byte for byte (child span
// IDs are derived, timestamps fixed), and the fixture must parse back
// through UnmarshalTraceDoc with structure intact.
func TestMarshalTraceGolden(t *testing.T) {
	doc, err := MarshalTrace(goldenTrace())
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, doc, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(doc, want) {
		t.Fatalf("lsms-trace/1 output drifted from the golden fixture.\ngot:\n%s\nwant:\n%s", doc, want)
	}

	parsed, err := UnmarshalTraceDoc(want)
	if err != nil {
		t.Fatal(err)
	}
	spans := parsed.ResourceSpans[0].ScopeSpans[0].Spans
	if len(spans) != 4 {
		t.Fatalf("want root + 3 children, got %d spans", len(spans))
	}
	root := spans[0]
	if root.Name != "compile-request" || root.Kind != 2 {
		t.Fatalf("bad root span: %+v", root)
	}
	if root.ParentSpanID == "" {
		t.Fatal("root should carry the caller's parentSpanId")
	}
	if len(root.Links) != 1 {
		t.Fatalf("root links: %+v", root.Links)
	}
	for _, child := range spans[1:] {
		if child.TraceID != root.TraceID {
			t.Fatalf("child %s left the trace", child.Name)
		}
		if child.ParentSpanID != root.SpanID {
			t.Fatalf("child %s not parented to the root", child.Name)
		}
	}
}

func TestUnmarshalTraceDocRejectsOtherFormats(t *testing.T) {
	if _, err := UnmarshalTraceDoc([]byte(`{"format":"lsms-trace/2","resourceSpans":[]}`)); err == nil {
		t.Fatal("future format tag accepted")
	}
	if _, err := UnmarshalTraceDoc([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestExporterSpoolsToDir(t *testing.T) {
	dir := t.TempDir()
	e, err := NewExporter(ExporterConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tr := goldenTrace()
	if !e.Export(tr) {
		t.Fatal("export rejected")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "trace-*.json"))
	if err != nil || len(names) != 1 {
		t.Fatalf("spool files %v (err %v)", names, err)
	}
	if !strings.Contains(names[0], tr.Ctx.TraceID.String()) {
		t.Fatalf("spool name %s missing the trace ID", names[0])
	}
	b, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalTraceDoc(b); err != nil {
		t.Fatalf("spooled document does not round-trip: %v", err)
	}
	if st := e.Stats(); st.Exported != 1 || st.Dropped != 0 || st.Failed != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestExporterUnwritableSpoolFailsFast(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("root writes anywhere")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	if _, err := NewExporter(ExporterConfig{Dir: filepath.Join(dir, "spool")}); err == nil {
		t.Fatal("unwritable spool accepted")
	}
}

// TestExporterDropCounting pins the load-shedding contract: a full
// queue drops the trace and counts it, it never blocks the caller. The
// collector handler blocks until released, so the queue state at each
// Export call is deterministic.
func TestExporterDropCounting(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	col := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
	}))
	defer col.Close()

	e, err := NewExporter(ExporterConfig{URL: col.URL, Queue: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Export(goldenTrace()) {
		t.Fatal("first export rejected")
	}
	<-entered // worker holds trace 1 in-flight; the queue is empty again
	if !e.Export(goldenTrace()) {
		t.Fatal("second export should occupy the queue slot")
	}
	for i := 0; i < 3; i++ {
		if e.Export(goldenTrace()) {
			t.Fatalf("export %d accepted with a full queue", i+3)
		}
	}
	if st := e.Stats(); st.Dropped != 3 {
		t.Fatalf("dropped %d, want 3", st.Dropped)
	}
	close(release)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Exported != 2 || st.Dropped != 3 || st.Failed != 0 {
		t.Fatalf("final stats %+v", st)
	}
}

func TestExporterCountsDeliveryFailures(t *testing.T) {
	col := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no", http.StatusServiceUnavailable)
	}))
	defer col.Close()
	e, err := NewExporter(ExporterConfig{URL: col.URL})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		e.Export(goldenTrace())
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Failed != 3 || st.Exported != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestExporterExportAfterClose pins the shutdown contract: Export on a
// closed exporter returns false and counts a drop — it must never panic
// on the closed channel, because Server.Shutdown closes the exporter
// while late handlers and warm-start goroutines may still offer traces.
func TestExporterExportAfterClose(t *testing.T) {
	e, err := NewExporter(ExporterConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if e.Export(goldenTrace()) {
		t.Fatal("closed exporter accepted a trace")
	}
	if st := e.Stats(); st.Dropped != 1 {
		t.Fatalf("late export not counted as a drop: %+v", st)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err) // Close stays idempotent
	}
}

// TestExporterCloseExportRace races Export against Close (meaningful
// under -race): no send may hit the closed channel, and every offer is
// accounted for as exported or dropped.
func TestExporterCloseExportRace(t *testing.T) {
	e, err := NewExporter(ExporterConfig{Dir: t.TempDir(), Queue: 4})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 100
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < per; i++ {
				e.Export(goldenTrace())
			}
		}()
	}
	close(start)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if st := e.Stats(); st.Exported+st.Dropped+st.Failed != workers*per {
		t.Fatalf("accounting leak after racing Close: %+v over %d offers", st, workers*per)
	}
}

// TestExporterConcurrent hammers Export and Stats from many goroutines
// (meaningful under -race): every offered trace is accounted for as
// exported or dropped, never lost.
func TestExporterConcurrent(t *testing.T) {
	dir := t.TempDir()
	e, err := NewExporter(ExporterConfig{Dir: dir, Queue: 8})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr := NewTrace(fmt.Sprintf("req-%d-%d", w, i), "loop")
				tr.Ctx = NewSpanContext()
				tr.Ctx.Sampled = true
				sp := tr.Start("schedule")
				sp.End(OutcomeOK)
				tr.Finish(OutcomeOK)
				e.Export(tr)
				e.Stats()
			}
		}(w)
	}
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Exported+st.Dropped != workers*per {
		t.Fatalf("accounting leak: %+v over %d offers", st, workers*per)
	}
	names, _ := filepath.Glob(filepath.Join(dir, "trace-*.json"))
	if uint64(len(names)) != st.Exported {
		t.Fatalf("%d spool files for %d exported", len(names), st.Exported)
	}
}
