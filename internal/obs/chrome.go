package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Chrome trace_event export: renders traces in the JSON Object Format
// the Perfetto UI (and chrome://tracing) accepts — one "complete" (ph
// "X") event per span, one thread per trace, timestamps in microseconds
// relative to the earliest trace. Open the file at ui.perfetto.dev.

// chromeEvent is one trace_event record.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the traces as one trace_event JSON document.
// Each trace becomes its own thread (named after the trace) inside pid
// 1, so a bench sweep's loops stack vertically in the Perfetto UI while
// one loop's phases nest on a single track.
func WriteChromeTrace(w io.Writer, traces []*Trace) error {
	var events []chromeEvent
	var base *Trace
	for _, t := range traces {
		if t == nil {
			continue
		}
		if base == nil || t.Began.Before(base.Began) {
			base = t
		}
	}
	tid := 0
	for _, t := range traces {
		if t == nil {
			continue
		}
		tid++
		offset := t.Began.Sub(base.Began)
		label := t.Name
		if t.ID != "" && t.ID != t.Name {
			label = fmt.Sprintf("%s (%s)", t.Name, t.ID)
		}
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": label},
		})
		args := map[string]any{"outcome": t.Outcome}
		if t.Scheduler != "" {
			args["scheduler"] = t.Scheduler
		}
		if t.Err != "" {
			args["err"] = t.Err
		}
		events = append(events, chromeEvent{
			Name: "compile", Cat: "compile", Ph: "X",
			TS: us(offset), Dur: us(t.Dur), PID: 1, TID: tid, Args: args,
		})
		for _, s := range t.Spans {
			sa := make(map[string]any, len(s.Attrs)+1)
			if s.Outcome != "" {
				sa["outcome"] = s.Outcome
			}
			for _, a := range s.Attrs {
				if a.Str != "" {
					sa[a.Key] = a.Str
				} else {
					sa[a.Key] = a.Int
				}
			}
			events = append(events, chromeEvent{
				Name: s.Name, Cat: "phase", Ph: "X",
				TS: us(offset + s.Start), Dur: us(s.Dur), PID: 1, TID: tid, Args: sa,
			})
		}
	}
	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		Unit        string        `json:"displayTimeUnit"`
	}{TraceEvents: events, Unit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// us converts a duration to trace_event microseconds.
func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
