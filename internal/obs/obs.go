// Package obs is the observability layer of the compile pipeline: a
// span-based tracer threaded through frontend → mindist → mii/circuits
// → per-II scheduling attempts → regalloc → codegen, a flight recorder
// holding the last N compile traces, a Chrome trace_event exporter, and
// a dependency-free Prometheus exposition registry.
//
// The tracer is built for a hot path that almost never traces: every
// entry point is nil-safe, so code under measurement holds a *Trace
// (usually from FromContext) and calls Start/End unconditionally — when
// no trace is attached the calls are no-ops costing one nil check. A
// disabled pipeline therefore pays one context lookup per compile and
// nothing per placement, which is what keeps the lsms-bench full-sweep
// regression under the 2% budget.
//
// A Trace and its Spans belong to one compilation and are mutated from
// that compilation's goroutine only; once Finish has been called the
// trace is immutable and may be shared freely (the FlightRecorder's
// contract).
package obs

import (
	"context"
	"time"
)

// Outcome values stamped on spans and traces. Span outcomes reuse the
// scheduler's budget-reason strings so a flight-recorder entry names
// the exhaustion the same way the BudgetError does.
const (
	OutcomeOK              = "ok"
	OutcomeInfeasible      = "infeasible"
	OutcomeGiveUp          = "give-up"
	OutcomeDegraded        = "degraded"
	OutcomeError           = "error"
	OutcomePanic           = "panic"
	OutcomeDeadline        = "deadline"
	OutcomeCentralIters    = "central-iterations"
	OutcomeIIAttempts      = "ii-attempts"
	OutcomeCanceled        = "canceled"
	OutcomeBudgetExhausted = "budget-exhausted"
)

// Attr is one key/value annotation on a span. Values are int64 or
// string; the two-field split keeps span annotation allocation-free for
// the common counter case.
type Attr struct {
	Key string `json:"key"`
	Int int64  `json:"int,omitempty"`
	Str string `json:"str,omitempty"`
}

// Span is one timed phase of a compilation. Start/Dur are offsets from
// the owning trace's Began time, so spans serialize compactly and
// export to trace_event without clock arithmetic.
type Span struct {
	Name    string        `json:"name"`
	Start   time.Duration `json:"start_us"`
	Dur     time.Duration `json:"dur_us"`
	Outcome string        `json:"outcome,omitempty"`
	Attrs   []Attr        `json:"attrs,omitempty"`

	began time.Time // absolute start, for computing Dur at End
}

// Int annotates the span with an integer attribute. Nil-safe.
func (s *Span) Int(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Int: v})
	return s
}

// Str annotates the span with a string attribute. Nil-safe.
func (s *Span) Str(key, v string) *Span {
	if s == nil {
		return nil
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Str: v})
	return s
}

// End closes the span with an outcome. Nil-safe; a second End is
// ignored so defer-based closing composes with early explicit closes.
func (s *Span) End(outcome string) {
	if s == nil || s.Dur != 0 {
		return
	}
	s.Dur = time.Since(s.began)
	if s.Dur == 0 {
		s.Dur = 1 // distinguish "closed instantly" from "never closed"
	}
	s.Outcome = outcome
}

// Trace is the record of one compilation: identity, the span list in
// start order, the overall outcome, and (for failed or degraded runs)
// the tail of the scheduler's typed event stream.
type Trace struct {
	// ID is the request or run identifier (server request ID, or the
	// loop name for CLI runs).
	ID string `json:"id"`
	// Name is the compiled loop's name.
	Name string `json:"name"`
	// Scheduler is the policy that ran (may be empty pre-compile).
	Scheduler string    `json:"scheduler,omitempty"`
	Began     time.Time `json:"began"`
	// Dur is the whole-trace wall time, set by Finish.
	Dur     time.Duration `json:"dur_us"`
	Outcome string        `json:"outcome,omitempty"`
	Err     string        `json:"err,omitempty"`
	// Culprit names the span that consumed the budget (or otherwise
	// matches the failing outcome); see Finish.
	Culprit string  `json:"culprit,omitempty"`
	Spans   []*Span `json:"spans"`

	// Ctx is the trace's W3C span context — the TraceID shared with the
	// caller (or minted at the boundary), the root span's SpanID, and
	// the sampling verdict. Zero for purely local traces (CLI runs).
	Ctx SpanContext `json:"ctx,omitzero"`
	// Parent is the caller's span context when the request arrived with
	// a traceparent header: the exported root span's parentSpanId.
	Parent SpanContext `json:"parent,omitzero"`
	// Links are span links attached to the root span: the originating
	// request contexts of async work (refine-pool re-searches,
	// warm-start compiles), so an upgrade is attributable to the
	// request that caused it without pretending to be nested under it.
	Links []SpanContext `json:"links,omitempty"`

	// Tail is the bounded tail of the scheduler's event stream,
	// attached by the producer for failed or degraded runs only (the
	// flight recorder's retention rule). Elements are sched.Event
	// values; obs stays dependency-free by not naming the type.
	Tail []any `json:"tail,omitempty"`
	// TailDropped counts events that fell off the front of the tail.
	TailDropped int `json:"tail_dropped,omitempty"`
}

// NewTrace starts a trace. The zero cost of *not* calling it is the
// disabled path: a nil *Trace accepts every method below.
func NewTrace(id, name string) *Trace {
	return &Trace{ID: id, Name: name, Began: time.Now()}
}

// Start opens a span. Nil-safe: returns nil (itself accepting Int/Str/
// End) when the trace is nil.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	now := time.Now()
	s := &Span{Name: name, Start: now.Sub(t.Began), began: now}
	t.Spans = append(t.Spans, s)
	return s
}

// Finish closes the trace: stamps the outcome and total duration, and
// elects the culprit span — the most recent span whose outcome matches
// the trace's (the phase that was running when a budget tripped), or
// the longest span when none matches. Nil-safe.
func (t *Trace) Finish(outcome string) {
	if t == nil {
		return
	}
	t.Dur = time.Since(t.Began)
	t.Outcome = outcome
	for i := len(t.Spans) - 1; i >= 0; i-- {
		if t.Spans[i].Outcome == outcome {
			t.Culprit = t.Spans[i].Name
			return
		}
	}
	var longest *Span
	for _, s := range t.Spans {
		if longest == nil || s.Dur > longest.Dur {
			longest = s
		}
	}
	if longest != nil {
		t.Culprit = longest.Name
	}
}

// ctxKey is the context key Trace travels under.
type ctxKey struct{}

// WithTrace attaches the trace to the context; the pipeline's stages
// recover it with FromContext.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the attached trace, or nil — and every Trace and
// Span method accepts nil, so callers never branch on it.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
