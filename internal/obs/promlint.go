package obs

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// Promtool-style linter for the text exposition formats — classic
// 0.0.4 and OpenMetrics (exemplars, bare counter family names, "# EOF")
// both pass. CI scrapes the live /metrics endpoint and fails the build
// when the output stops parsing — catching the classic regressions
// (unescaped label values, samples with no TYPE, histograms missing
// their +Inf bucket, duplicated series) before a real Prometheus does.

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	// traceIDishRe matches values shaped like W3C trace (32 hex) or
	// span (16 hex) IDs — the canonical unbounded-cardinality label
	// mistake. Such values belong in exemplars, never in labels.
	traceIDishRe = regexp.MustCompile(`^[0-9a-f]{16}([0-9a-f]{16})?$`)
)

// forbiddenLabelNames are series label names that always indicate a
// per-request identifier leaking into the label space.
var forbiddenLabelNames = map[string]bool{
	"trace_id": true, "span_id": true, "traceparent": true, "request_id": true,
}

// promFamily is the linter's view of one declared family.
type promFamily struct {
	kind    string
	samples int
	infSeen map[string]bool // histogram: label-set key → +Inf bucket seen
}

// LintExposition validates a text-format exposition payload, returning
// every problem found (nil for a clean payload). Rules, in the spirit
// of promtool check metrics:
//
//   - HELP/TYPE comments are well-formed and TYPE precedes samples;
//   - metric and label names match the Prometheus grammar;
//   - every sample belongs to a declared family (histograms may add
//     _bucket/_sum/_count suffixes) and its value parses;
//   - counter samples are named *_total; the family may be declared
//     with the suffix (classic 0.0.4) or without it (OpenMetrics);
//   - no series (name + label set) appears twice;
//   - every histogram series has a +Inf bucket.
func LintExposition(r io.Reader) []error {
	var errs []error
	fail := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}
	fams := map[string]*promFamily{}
	seen := map[string]bool{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 3 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				continue // free-form comment: legal
			}
			name := parts[2]
			if !metricNameRe.MatchString(name) {
				fail(n, "invalid metric name %q in %s comment", name, parts[1])
				continue
			}
			if parts[1] == "TYPE" {
				if len(parts) != 4 {
					fail(n, "TYPE comment for %q missing a type", name)
					continue
				}
				switch parts[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					fail(n, "unknown type %q for %q", parts[3], name)
					continue
				}
				if f, ok := fams[name]; ok && f.samples > 0 {
					fail(n, "TYPE for %q declared after its samples", name)
				}
				fams[name] = &promFamily{kind: parts[3], infSeen: map[string]bool{}}
			}
			continue
		}
		name, labels, value, exemplar, err := parseSample(line)
		if err != nil {
			fail(n, "%v", err)
			continue
		}
		fam, base := lookupFamily(fams, name)
		if fam == nil {
			fail(n, "sample %q has no preceding TYPE declaration", name)
			continue
		}
		fam.samples++
		if _, err := strconv.ParseFloat(value, 64); err != nil && value != "+Inf" && value != "-Inf" && value != "NaN" {
			fail(n, "sample %q has unparseable value %q", name, value)
		}
		if fam.kind == "counter" && !strings.HasSuffix(name, "_total") {
			fail(n, "counter sample %q should end in _total", name)
		}
		if exemplar != "" {
			if !strings.HasSuffix(name, "_bucket") && !strings.HasSuffix(name, "_total") {
				fail(n, "sample %q carries an exemplar; exemplars are only valid on _bucket and _total samples", name)
			} else if err := lintExemplar(exemplar); err != nil {
				fail(n, "sample %q exemplar: %v", name, err)
			}
		}
		var le string
		var rest []string
		for _, kv := range labels {
			if !labelNameRe.MatchString(kv[0]) {
				fail(n, "sample %q has invalid label name %q", name, kv[0])
			}
			if forbiddenLabelNames[kv[0]] {
				fail(n, "sample %q uses per-request identifier %q as a label; trace correlation belongs in exemplars", name, kv[0])
			}
			if kv[0] != "le" && traceIDishRe.MatchString(kv[1]) {
				fail(n, "sample %q label %s=%q looks like a trace/span ID — unbounded cardinality; use an exemplar", name, kv[0], kv[1])
			}
			if kv[0] == "le" && strings.HasSuffix(name, "_bucket") {
				le = kv[1]
				continue
			}
			rest = append(rest, kv[0]+"="+kv[1])
		}
		key := name + "{" + strings.Join(rest, ",") + ",le=" + le + "}"
		if seen[key] {
			fail(n, "duplicate series %s", key)
		}
		seen[key] = true
		if fam.kind == "histogram" && strings.HasSuffix(name, "_bucket") {
			if le == "" {
				fail(n, "histogram bucket %q missing le label", name)
			}
			if le == "+Inf" {
				fam.infSeen[base+"{"+strings.Join(rest, ",")+"}"] = true
			} else {
				setKey := base + "{" + strings.Join(rest, ",") + "}"
				if !fam.infSeen[setKey] {
					fam.infSeen[setKey] = false
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, fmt.Errorf("reading exposition: %w", err))
	}
	for name, f := range fams {
		if f.kind == "histogram" {
			for set, ok := range f.infSeen {
				if !ok {
					errs = append(errs, fmt.Errorf("histogram %s series %s has no +Inf bucket", name, set))
				}
			}
		}
	}
	return errs
}

// lookupFamily resolves a sample name to its declared family, peeling
// histogram/summary suffixes and the OpenMetrics counter convention (a
// family declared bare whose samples carry _total); it returns the
// family and the base name.
func lookupFamily(fams map[string]*promFamily, name string) (*promFamily, string) {
	if f, ok := fams[name]; ok {
		return f, name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if f, ok := fams[base]; ok && (f.kind == "histogram" || f.kind == "summary") {
			return f, base
		}
	}
	if base := strings.TrimSuffix(name, "_total"); base != name {
		if f, ok := fams[base]; ok && f.kind == "counter" {
			return f, base
		}
	}
	return nil, ""
}

// parseSample splits one sample line into name, label pairs, the value
// text, and (when present) the OpenMetrics exemplar section following
// "#". The '#' separator is unambiguous here: it can only appear inside
// a quoted label value, and the label set has already been consumed by
// the time the tail is scanned.
func parseSample(line string) (name string, labels [][2]string, value, exemplar string, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, "", "", fmt.Errorf("malformed sample %q", line)
	}
	name = rest[:i]
	if !metricNameRe.MatchString(name) {
		return "", nil, "", "", fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		labels, rest, err = parseLabelSet(rest)
		if err != nil {
			return "", nil, "", "", fmt.Errorf("%v in %q", err, line)
		}
	}
	if h := strings.Index(rest, "#"); h >= 0 {
		exemplar = strings.TrimSpace(rest[h+1:])
		rest = rest[:h]
		if exemplar == "" {
			return "", nil, "", "", fmt.Errorf("empty exemplar section in %q", line)
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // value [timestamp]
		return "", nil, "", "", fmt.Errorf("malformed sample tail in %q", line)
	}
	return name, labels, fields[0], exemplar, nil
}

// parseLabelSet parses a leading {k="v",...} group, returning the pairs
// and the remainder after the closing brace. s must start with '{'.
func parseLabelSet(s string) (labels [][2]string, rest string, err error) {
	end := -1
	inQuote := false
	for j := 1; j < len(s); j++ {
		switch {
		case inQuote && s[j] == '\\':
			j++
		case s[j] == '"':
			inQuote = !inQuote
		case !inQuote && s[j] == '}':
			end = j
		}
		if end >= 0 {
			break
		}
	}
	if end < 0 {
		return nil, "", fmt.Errorf("unterminated label set")
	}
	body := s[1:end]
	rest = s[end+1:]
	for len(body) > 0 {
		eq := strings.Index(body, "=")
		if eq < 0 {
			return nil, "", fmt.Errorf("malformed label")
		}
		lname := strings.TrimSpace(body[:eq])
		body = strings.TrimSpace(body[eq+1:])
		if len(body) == 0 || body[0] != '"' {
			return nil, "", fmt.Errorf("unquoted label value")
		}
		closeQ := -1
		for j := 1; j < len(body); j++ {
			if body[j] == '\\' {
				j++
				continue
			}
			if body[j] == '"' {
				closeQ = j
				break
			}
		}
		if closeQ < 0 {
			return nil, "", fmt.Errorf("unterminated label value")
		}
		lval, uerr := strconv.Unquote(body[:closeQ+1])
		if uerr != nil {
			return nil, "", fmt.Errorf("bad label value escaping")
		}
		labels = append(labels, [2]string{lname, lval})
		body = strings.TrimSpace(body[closeQ+1:])
		body = strings.TrimPrefix(body, ",")
		body = strings.TrimSpace(body)
	}
	return labels, rest, nil
}

// lintExemplar validates one exemplar section (the text after "#"):
// OpenMetrics syntax {label="value",...} value [timestamp], label
// names legal, the combined label length within the spec's 128-rune
// cap, and the exemplar value parseable.
func lintExemplar(s string) error {
	if s == "" || s[0] != '{' {
		return fmt.Errorf("must start with a {label} set, got %q", s)
	}
	labels, rest, err := parseLabelSet(s)
	if err != nil {
		return err
	}
	runes := 0
	for _, kv := range labels {
		if !labelNameRe.MatchString(kv[0]) {
			return fmt.Errorf("invalid exemplar label name %q", kv[0])
		}
		runes += len([]rune(kv[0])) + len([]rune(kv[1]))
	}
	if runes > 128 {
		return fmt.Errorf("exemplar label set is %d runes, above the 128-rune cap", runes)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // value [timestamp]
		return fmt.Errorf("malformed exemplar tail %q", rest)
	}
	if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
		return fmt.Errorf("unparseable exemplar value %q", fields[0])
	}
	return nil
}
