package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceFormat names the export document format: OTLP/JSON's
// resourceSpans shape under an explicit version tag, so a future
// lsms-trace/2 can change the layout without ambiguity. Any OTLP-aware
// tool that accepts ExportTraceServiceRequest JSON can ingest the
// resourceSpans value as-is.
const TraceFormat = "lsms-trace/1"

// Exporter ships finished traces out of the process in the background:
// to a spool directory (one lsms-trace/1 JSON file per trace) or to an
// HTTP collector endpoint. Export is non-blocking and never touches
// the request path's latency — a full queue drops the trace and counts
// the drop, the same load-shedding discipline the admission layer
// applies to compiles. Only sampled traces should be offered (the
// caller owns the head-sampling decision; see Sample).
type Exporter struct {
	dir    string
	url    string
	client *http.Client

	ch       chan *Trace
	wg       sync.WaitGroup
	seq      atomic.Uint64
	exported atomic.Uint64
	dropped  atomic.Uint64
	failed   atomic.Uint64

	// mu serializes Export's channel send against Close's close(ch):
	// senders hold it shared, Close holds it exclusive while flipping
	// closed, so no send can race the close and panic. Late Exports
	// (shutdown overlaps in-flight handlers and warm-start goroutines)
	// see closed and count a drop instead.
	mu        sync.RWMutex
	closed    bool
	closeOnce sync.Once
}

// ExporterConfig configures an Exporter; exactly one of Dir or URL
// should be set (Dir wins when both are).
type ExporterConfig struct {
	// Dir is the spool directory; each trace becomes
	// trace-<seq>-<traceid>.json.
	Dir string
	// URL is an HTTP collector endpoint; each trace is POSTed as one
	// lsms-trace/1 JSON document.
	URL string
	// Queue bounds the export backlog; default 256. A full queue drops.
	Queue int
	// Client overrides the HTTP client used for URL mode (tests).
	Client *http.Client
}

// NewExporter starts the background export worker. Dir mode fails fast
// when the spool directory cannot be created or written — like an
// unopenable store directory, a misconfigured spool should fail the
// boot, not silently drop every trace.
func NewExporter(cfg ExporterConfig) (*Exporter, error) {
	if cfg.Dir == "" && cfg.URL == "" {
		return nil, fmt.Errorf("obs: exporter needs a spool dir or a collector URL")
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("obs: trace spool: %w", err)
		}
		probe := filepath.Join(cfg.Dir, ".probe")
		if err := os.WriteFile(probe, nil, 0o644); err != nil {
			return nil, fmt.Errorf("obs: trace spool not writable: %w", err)
		}
		os.Remove(probe)
	}
	q := cfg.Queue
	if q <= 0 {
		q = 256
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	e := &Exporter{dir: cfg.Dir, url: cfg.URL, client: client, ch: make(chan *Trace, q)}
	e.wg.Add(1)
	go e.run()
	return e, nil
}

// Export offers a finished trace to the background worker. Non-blocking
// and nil-safe (a nil exporter absorbs everything): returns false and
// counts a drop when the queue is full or the exporter is closed.
func (e *Exporter) Export(t *Trace) bool {
	if e == nil || t == nil {
		return false
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		e.dropped.Add(1)
		return false
	}
	select {
	case e.ch <- t:
		return true
	default:
		e.dropped.Add(1)
		return false
	}
}

// ExportStats is a snapshot of the exporter's lifetime counters.
type ExportStats struct {
	// Exported counts traces successfully written or posted.
	Exported uint64
	// Dropped counts traces rejected because the queue was full.
	Dropped uint64
	// Failed counts traces dequeued but not delivered (write or POST
	// error); each failure is also logged nowhere — the counter is the
	// signal, scraped as lsmsd_trace_export_failures_total.
	Failed uint64
}

// Stats returns the lifetime counters.
func (e *Exporter) Stats() ExportStats {
	if e == nil {
		return ExportStats{}
	}
	return ExportStats{
		Exported: e.exported.Load(),
		Dropped:  e.dropped.Load(),
		Failed:   e.failed.Load(),
	}
}

// Close drains the queue, delivers what it can, and stops the worker.
// Export calls that arrive during or after Close return false and count
// a drop — they never panic on the closed channel. Idempotent.
func (e *Exporter) Close() error {
	if e == nil {
		return nil
	}
	e.closeOnce.Do(func() {
		e.mu.Lock()
		e.closed = true
		close(e.ch)
		e.mu.Unlock()
	})
	e.wg.Wait()
	return nil
}

func (e *Exporter) run() {
	defer e.wg.Done()
	for t := range e.ch {
		if err := e.deliver(t); err != nil {
			e.failed.Add(1)
		} else {
			e.exported.Add(1)
		}
	}
}

func (e *Exporter) deliver(t *Trace) error {
	doc, err := MarshalTrace(t)
	if err != nil {
		return err
	}
	if e.dir != "" {
		name := fmt.Sprintf("trace-%06d-%s.json", e.seq.Add(1), t.Ctx.TraceID)
		return os.WriteFile(filepath.Join(e.dir, name), doc, 0o644)
	}
	resp, err := e.client.Post(e.url, "application/json", bytes.NewReader(doc))
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("obs: collector returned %d", resp.StatusCode)
	}
	return nil
}

// The lsms-trace/1 document shape: OTLP/JSON resourceSpans with the
// fields this pipeline populates. Field names and nesting match
// opentelemetry-proto's JSON mapping (camelCase, stringified uint64
// nanos) so the documents load into OTLP tooling unmodified.

// TraceDoc is one exported trace.
type TraceDoc struct {
	Format        string          `json:"format"`
	ResourceSpans []ResourceSpans `json:"resourceSpans"`
}

// ResourceSpans groups the spans of one resource (here: one process).
type ResourceSpans struct {
	Resource   Resource     `json:"resource"`
	ScopeSpans []ScopeSpans `json:"scopeSpans"`
}

// Resource carries process-identifying attributes.
type Resource struct {
	Attributes []KeyValue `json:"attributes,omitempty"`
}

// ScopeSpans groups spans produced by one instrumentation scope.
type ScopeSpans struct {
	Scope Scope      `json:"scope"`
	Spans []SpanData `json:"spans"`
}

// Scope names the instrumentation that produced the spans.
type Scope struct {
	Name string `json:"name"`
}

// SpanData is one OTLP span.
type SpanData struct {
	TraceID      string     `json:"traceId"`
	SpanID       string     `json:"spanId"`
	ParentSpanID string     `json:"parentSpanId,omitempty"`
	Name         string     `json:"name"`
	Kind         int        `json:"kind,omitempty"` // 2 = SPAN_KIND_SERVER
	StartNano    string     `json:"startTimeUnixNano"`
	EndNano      string     `json:"endTimeUnixNano"`
	Attributes   []KeyValue `json:"attributes,omitempty"`
	Links        []SpanLink `json:"links,omitempty"`
	Status       SpanStatus `json:"status"`
}

// SpanLink points at a span in another trace.
type SpanLink struct {
	TraceID string `json:"traceId"`
	SpanID  string `json:"spanId"`
}

// SpanStatus is the OTLP status enum (JSON mapping uses the code
// number: 0 unset, 1 ok, 2 error).
type SpanStatus struct {
	Code    int    `json:"code"`
	Message string `json:"message,omitempty"`
}

// KeyValue is one OTLP attribute.
type KeyValue struct {
	Key   string   `json:"key"`
	Value AnyValue `json:"value"`
}

// AnyValue is the OTLP attribute value union (the two arms this
// pipeline uses).
type AnyValue struct {
	Str *string `json:"stringValue,omitempty"`
	Int *string `json:"intValue,omitempty"` // OTLP JSON stringifies int64
}

func strAttr(k, v string) KeyValue {
	return KeyValue{Key: k, Value: AnyValue{Str: &v}}
}

func intAttr(k string, v int64) KeyValue {
	s := strconv.FormatInt(v, 10)
	return KeyValue{Key: k, Value: AnyValue{Int: &s}}
}

func nano(t time.Time) string {
	return strconv.FormatInt(t.UnixNano(), 10)
}

// statusOf maps a span/trace outcome onto the OTLP status enum: ok and
// still-acceptable verdicts (degraded, infeasible — the service
// answered correctly) are OK; budget exhaustions, errors, and panics
// are ERROR with the outcome as the message.
func statusOf(outcome string) SpanStatus {
	switch outcome {
	case OutcomeOK, OutcomeDegraded, OutcomeInfeasible, "":
		return SpanStatus{Code: 1}
	default:
		return SpanStatus{Code: 2, Message: outcome}
	}
}

// MarshalTrace renders one finished trace as an lsms-trace/1 document:
// a root span for the whole request and one child span per pipeline
// phase, all under the trace's W3C context. Child span IDs are derived
// deterministically from the root span ID, so re-exporting the same
// trace yields byte-identical output (the golden-fixture contract).
// Traces without a span context (purely local runs) get a zero trace
// ID and are still valid documents — but servers only export traces
// they gave a context to.
func MarshalTrace(t *Trace) ([]byte, error) {
	if t == nil {
		return nil, fmt.Errorf("obs: cannot export a nil trace")
	}
	root := SpanData{
		TraceID:   t.Ctx.TraceID.String(),
		SpanID:    t.Ctx.SpanID.String(),
		Name:      "compile-request",
		Kind:      2, // SPAN_KIND_SERVER
		StartNano: nano(t.Began),
		EndNano:   nano(t.Began.Add(t.Dur)),
		Status:    statusOf(t.Outcome),
	}
	if !t.Parent.IsZero() {
		root.ParentSpanID = t.Parent.SpanID.String()
	}
	root.Attributes = append(root.Attributes,
		strAttr("lsms.request_id", t.ID),
		strAttr("lsms.loop", t.Name),
	)
	if t.Scheduler != "" {
		root.Attributes = append(root.Attributes, strAttr("lsms.scheduler", t.Scheduler))
	}
	if t.Outcome != "" {
		root.Attributes = append(root.Attributes, strAttr("lsms.outcome", t.Outcome))
	}
	if t.Culprit != "" {
		root.Attributes = append(root.Attributes, strAttr("lsms.culprit", t.Culprit))
	}
	if t.Err != "" {
		root.Attributes = append(root.Attributes, strAttr("lsms.err", t.Err))
	}
	for _, link := range t.Links {
		root.Links = append(root.Links, SpanLink{
			TraceID: link.TraceID.String(),
			SpanID:  link.SpanID.String(),
		})
	}
	spans := make([]SpanData, 0, len(t.Spans)+1)
	spans = append(spans, root)
	for i, s := range t.Spans {
		sd := SpanData{
			TraceID:      root.TraceID,
			SpanID:       deriveSpanID(t.Ctx.SpanID, i).String(),
			ParentSpanID: root.SpanID,
			Name:         s.Name,
			StartNano:    nano(t.Began.Add(s.Start)),
			EndNano:      nano(t.Began.Add(s.Start + s.Dur)),
			Status:       statusOf(s.Outcome),
		}
		for _, a := range s.Attrs {
			if a.Str != "" {
				sd.Attributes = append(sd.Attributes, strAttr(a.Key, a.Str))
			} else {
				sd.Attributes = append(sd.Attributes, intAttr(a.Key, a.Int))
			}
		}
		spans = append(spans, sd)
	}
	doc := TraceDoc{
		Format: TraceFormat,
		ResourceSpans: []ResourceSpans{{
			Resource: Resource{Attributes: []KeyValue{strAttr("service.name", "lsmsd")}},
			ScopeSpans: []ScopeSpans{{
				Scope: Scope{Name: "repro/internal/obs"},
				Spans: spans,
			}},
		}},
	}
	return json.MarshalIndent(&doc, "", "  ")
}

// UnmarshalTraceDoc parses an lsms-trace/1 document, rejecting other
// format tags — the round-trip half of the export contract.
func UnmarshalTraceDoc(b []byte) (*TraceDoc, error) {
	var doc TraceDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("obs: parsing trace document: %w", err)
	}
	if doc.Format != TraceFormat {
		return nil, fmt.Errorf("obs: trace document format %q, want %q", doc.Format, TraceFormat)
	}
	return &doc, nil
}
