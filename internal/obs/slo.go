package obs

import (
	"sync"
	"time"
)

// SLO tracks the service's health against quantitative targets: a
// success-rate objective and a latency objective, each evaluated over
// rolling 5-minute and 1-hour windows, with the burn rate — how fast
// the error budget is being consumed relative to its sustainable pace —
// computed per window. The multi-window rule (both the short AND the
// long window burning hot) is what /readyz keys off: the short window
// makes the verdict responsive, the long window keeps a brief blip from
// flapping readiness.
//
// The implementation is a ring of per-second buckets covering the long
// window. Record is O(1) under one mutex; Snapshot walks the ring
// (3600 buckets) per call, which is scrape-rate work, not request-rate
// work.

// Window lengths, fixed by the multi-window burn-rate design.
const (
	SLOShortWindow = 5 * time.Minute
	SLOLongWindow  = time.Hour
)

// SLOConfig sets the objectives; the zero value gets defaults.
type SLOConfig struct {
	// Objective is the success-rate target in (0,1); default 0.99.
	// The error budget is 1-Objective.
	Objective float64
	// LatencyObjective is the per-request latency target; requests
	// slower than this consume the latency error budget (same budget
	// size as the success objective). Default 500ms.
	LatencyObjective time.Duration
	// now overrides the clock (tests).
	now func() time.Time
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Objective <= 0 || c.Objective >= 1 {
		c.Objective = 0.99
	}
	if c.LatencyObjective <= 0 {
		c.LatencyObjective = 500 * time.Millisecond
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// sloBucket is one second of observations.
type sloBucket struct {
	sec   int64 // unix second this bucket currently holds
	total uint32
	errs  uint32
	slow  uint32
}

// SLO is the tracker. Create with NewSLO; methods are safe for
// concurrent use.
type SLO struct {
	mu      sync.Mutex
	cfg     SLOConfig
	buckets []sloBucket
}

// NewSLO returns a tracker with the given objectives.
func NewSLO(cfg SLOConfig) *SLO {
	return &SLO{
		cfg:     cfg.withDefaults(),
		buckets: make([]sloBucket, int(SLOLongWindow/time.Second)),
	}
}

// Record folds one finished request in: ok is the success verdict
// (the server counts 5xx as failures — 4xx are the caller's fault and
// spend no budget), latency the request's wall time.
func (s *SLO) Record(ok bool, latency time.Duration) {
	if s == nil {
		return
	}
	sec := s.cfg.now().Unix()
	s.mu.Lock()
	b := &s.buckets[int(sec%int64(len(s.buckets)))]
	if b.sec != sec {
		*b = sloBucket{sec: sec}
	}
	b.total++
	if !ok {
		b.errs++
	}
	if latency > s.cfg.LatencyObjective {
		b.slow++
	}
	s.mu.Unlock()
}

// SLOWindow is one window's aggregate.
type SLOWindow struct {
	// Window is the window length in seconds (300 or 3600).
	Window int64 `json:"window_seconds"`
	// Total / Errors / Slow are the raw counts inside the window.
	Total  int64 `json:"total"`
	Errors int64 `json:"errors"`
	Slow   int64 `json:"slow"`
	// SuccessRate is 1 - Errors/Total (1 when the window is empty: no
	// traffic has violated nothing).
	SuccessRate float64 `json:"success_rate"`
	// ErrorBurnRate is (Errors/Total) / (1-Objective): 1.0 means the
	// error budget is being spent exactly at the sustainable pace, 10
	// means ten times too fast. 0 for an empty window.
	ErrorBurnRate float64 `json:"error_burn_rate"`
	// LatencyBurnRate is the same computation over the slow fraction.
	LatencyBurnRate float64 `json:"latency_burn_rate"`
}

// BurnRate is the window's governing burn: the worse of the error and
// latency burns — the number /readyz compares against its threshold.
func (w SLOWindow) BurnRate() float64 {
	if w.ErrorBurnRate > w.LatencyBurnRate {
		return w.ErrorBurnRate
	}
	return w.LatencyBurnRate
}

// SLOSnapshot is the full tracker state, the /debug/slo payload.
type SLOSnapshot struct {
	Objective          float64   `json:"objective"`
	LatencyObjectiveMS float64   `json:"latency_objective_ms"`
	Short              SLOWindow `json:"short"`
	Long               SLOWindow `json:"long"`
}

// Snapshot aggregates both windows at the current instant.
func (s *SLO) Snapshot() SLOSnapshot {
	if s == nil {
		return SLOSnapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.now().Unix()
	shortCut := now - int64(SLOShortWindow/time.Second)
	var short, long SLOWindow
	for i := range s.buckets {
		b := &s.buckets[i]
		// A bucket is live if its stamped second is inside the long
		// window ending now; stale ring slots still hold older seconds.
		if b.sec <= now-int64(len(s.buckets)) || b.sec > now {
			continue
		}
		long.Total += int64(b.total)
		long.Errors += int64(b.errs)
		long.Slow += int64(b.slow)
		if b.sec > shortCut {
			short.Total += int64(b.total)
			short.Errors += int64(b.errs)
			short.Slow += int64(b.slow)
		}
	}
	budget := 1 - s.cfg.Objective
	finish := func(w *SLOWindow, secs int64) {
		w.Window = secs
		w.SuccessRate = 1
		if w.Total > 0 {
			w.SuccessRate = 1 - float64(w.Errors)/float64(w.Total)
			w.ErrorBurnRate = (float64(w.Errors) / float64(w.Total)) / budget
			w.LatencyBurnRate = (float64(w.Slow) / float64(w.Total)) / budget
		}
	}
	finish(&short, int64(SLOShortWindow/time.Second))
	finish(&long, int64(SLOLongWindow/time.Second))
	return SLOSnapshot{
		Objective:          s.cfg.Objective,
		LatencyObjectiveMS: float64(s.cfg.LatencyObjective.Microseconds()) / 1000,
		Short:              short,
		Long:               long,
	}
}

// Burning reports whether the multi-window rule fires at the given
// threshold: both the short and the long window burning above it. A
// threshold <= 0 never fires.
func (s *SLO) Burning(threshold float64) bool {
	if s == nil || threshold <= 0 {
		return false
	}
	snap := s.Snapshot()
	return snap.Short.BurnRate() >= threshold && snap.Long.BurnRate() >= threshold
}
